#ifndef TGSIM_SAMPLING_SAMPLERS_H_
#define TGSIM_SAMPLING_SAMPLERS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"

namespace tgsim::sampling {

/// Vose/Walker alias table: O(n) deterministic build, O(1) draw.
///
/// Use it whenever the distribution is fixed across many draws — start
/// distributions, activity rates, score-matrix edge weights. Each draw
/// consumes exactly two values from the `Rng` stream (a slot index and a
/// coin), independent of n, and the table itself is a pure deterministic
/// function of the input weights: the same weights always produce the same
/// `prob()`/`alias()` arrays, so a table rebuilt from serialized weights
/// draws bit-identically to the original.
///
/// Zero-weight entries are never returned: their slot probability is
/// exactly 0 and their alias points at a positive-weight entry.
class AliasTable {
 public:
  /// Empty table; `Draw` is illegal until a non-empty one is assigned.
  AliasTable() = default;

  /// Builds the table from non-negative weights. Requires a positive total
  /// unless `weights` is empty (which yields an empty table).
  explicit AliasTable(std::span<const double> weights);

  /// Reassembles a table from previously extracted `prob()`/`alias()`
  /// arrays — the artifact-load path that skips the O(n) rebuild. Returns
  /// InvalidArgument on mismatched sizes, probabilities outside [0, 1], or
  /// alias indices outside [0, n).
  static Result<AliasTable> FromParts(std::vector<double> prob,
                                      std::vector<int64_t> alias);

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// O(1) draw of an index in [0, size()). Requires a non-empty table.
  size_t Draw(Rng& rng) const {
    TGSIM_DCHECK(!prob_.empty());
    size_t i = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(prob_.size())));
    return rng.Uniform() < prob_[i] ? i : static_cast<size_t>(alias_[i]);
  }

  /// Slot acceptance probabilities / alias targets, for serialization.
  const std::vector<double>& prob() const { return prob_; }
  const std::vector<int64_t>& alias() const { return alias_; }

 private:
  std::vector<double> prob_;
  std::vector<int64_t> alias_;
};

/// Complete-binary-tree prefix-sum sampler: O(n) build, O(log n) draw and
/// O(log n) single-weight update.
///
/// This is the without-replacement workhorse: draw an index, then
/// `Update(i, 0.0)` to consume it. Internal sums are recomputed exactly
/// from the children on every update, so once every leaf is zero `total()`
/// is exactly 0.0 — callers can loop on `total() > 0` without an epsilon.
/// A draw consumes exactly one `Rng::Uniform()` and always lands on a
/// positive-weight leaf (zero-sum subtrees are never descended into).
class TreeSampler {
 public:
  TreeSampler() = default;

  explicit TreeSampler(std::span<const double> weights) { Assign(weights); }

  /// (Re)builds the tree from non-negative weights.
  void Assign(std::span<const double> weights);

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Exact sum of the current leaf weights (0.0 when empty/consumed).
  double total() const { return n_ == 0 ? 0.0 : tree_[1]; }

  /// Current weight of leaf i.
  double weight(size_t i) const {
    TGSIM_DCHECK(i < n_);
    return tree_[cap_ + i];
  }

  /// Draws an index in [0, size()) with probability proportional to its
  /// current weight. Requires total() > 0.
  size_t Draw(Rng& rng) const;

  /// Sets leaf i's weight to `w` (>= 0) and refreshes the path sums.
  void Update(size_t i, double w);

 private:
  size_t n_ = 0;    // number of leaves in use
  size_t cap_ = 0;  // power-of-two leaf capacity; leaves live at [cap_, cap_+n_)
  std::vector<double> tree_;
};

/// Samples an index in [0, weights.size()) with probability proportional
/// to weights[i] — the span-based twin of `Rng::WeightedChoice`, for
/// callers holding contiguous rows (e.g. `Tensor::RowSpan`) rather than a
/// `std::vector`. Same contract and same Rng consumption (one `Uniform()`),
/// including the drift guard: on floating-point overshoot it falls back to
/// the last positive-weight index, never a zero-weight one.
size_t WeightedPick(std::span<const double> weights, Rng& rng);

}  // namespace tgsim::sampling

#endif  // TGSIM_SAMPLING_SAMPLERS_H_
