#include "sampling/samplers.h"

#include <string>
#include <utility>

namespace tgsim::sampling {

AliasTable::AliasTable(std::span<const double> weights) {
  const size_t n = weights.size();
  if (n == 0) return;
  double total = 0.0;
  for (double w : weights) {
    TGSIM_DCHECK(w >= 0.0);
    total += w;
  }
  TGSIM_CHECK_GT(total, 0.0);

  prob_.assign(n, 1.0);
  alias_.resize(n);
  // Vose's method. Scale every weight so the mean slot mass is 1, then
  // repeatedly pair an under-full slot with an over-full one. Stacks are
  // filled in ascending index order and processed LIFO, so the resulting
  // table is a deterministic function of the weights alone.
  // Scale as (w / total) * n — dividing first keeps the ratio in [0, 1],
  // so a denormal total cannot overflow the scale factor to inf (which
  // would turn zero weights into 0 * inf = NaN and misfile them into the
  // over-full stack as drawable slots).
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i)
    scaled[i] = (weights[i] / total) * static_cast<double>(n);

  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  size_t last_positive = 0;
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] > 0.0) last_positive = i;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = static_cast<int64_t>(l);
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers hold (up to rounding) exactly one unit of mass: their slot is
  // all their own. A zero-weight leftover is impossible short of extreme
  // drift, but guard anyway — such a slot must never win a draw.
  for (size_t l : large) alias_[l] = static_cast<int64_t>(l);
  for (size_t s : small) {
    if (weights[s] > 0.0) {
      alias_[s] = static_cast<int64_t>(s);
    } else {
      prob_[s] = 0.0;
      alias_[s] = static_cast<int64_t>(last_positive);
    }
  }
}

Result<AliasTable> AliasTable::FromParts(std::vector<double> prob,
                                         std::vector<int64_t> alias) {
  if (prob.size() != alias.size()) {
    return Status::InvalidArgument(
        "alias table parts disagree: " + std::to_string(prob.size()) +
        " probabilities vs " + std::to_string(alias.size()) + " aliases");
  }
  const int64_t n = static_cast<int64_t>(prob.size());
  for (size_t i = 0; i < prob.size(); ++i) {
    if (!(prob[i] >= 0.0 && prob[i] <= 1.0)) {
      return Status::InvalidArgument(
          "alias table probability out of [0, 1] at slot " +
          std::to_string(i));
    }
    if (alias[i] < 0 || alias[i] >= n) {
      return Status::InvalidArgument("alias index out of range at slot " +
                                     std::to_string(i));
    }
  }
  AliasTable table;
  table.prob_ = std::move(prob);
  table.alias_ = std::move(alias);
  return table;
}

void TreeSampler::Assign(std::span<const double> weights) {
  n_ = weights.size();
  if (n_ == 0) {
    cap_ = 0;
    tree_.clear();
    return;
  }
  cap_ = 1;
  while (cap_ < n_) cap_ <<= 1;
  tree_.assign(2 * cap_, 0.0);
  for (size_t i = 0; i < n_; ++i) {
    TGSIM_DCHECK(weights[i] >= 0.0);
    tree_[cap_ + i] = weights[i];
  }
  for (size_t node = cap_ - 1; node >= 1; --node)
    tree_[node] = tree_[2 * node] + tree_[2 * node + 1];
}

size_t TreeSampler::Draw(Rng& rng) const {
  TGSIM_CHECK_GT(total(), 0.0);
  double r = rng.Uniform() * tree_[1];
  size_t node = 1;
  while (node < cap_) {
    const double left = tree_[2 * node];
    // Descend left on r < left; also force left when the right subtree is
    // empty (floating-point drift can push r past every positive leaf, and
    // the padding leaves beyond n_ are always zero). The symmetric case —
    // left empty — falls through naturally since r >= 0 >= left.
    if (r < left || !(tree_[2 * node + 1] > 0.0)) {
      node = 2 * node;
    } else {
      r -= left;
      node = 2 * node + 1;
    }
  }
  size_t idx = node - cap_;
  TGSIM_DCHECK(idx < n_);
  return idx;
}

void TreeSampler::Update(size_t i, double w) {
  TGSIM_CHECK(i < n_);
  TGSIM_DCHECK(w >= 0.0);
  size_t node = cap_ + i;
  tree_[node] = w;
  for (node >>= 1; node >= 1; node >>= 1)
    tree_[node] = tree_[2 * node] + tree_[2 * node + 1];
}

size_t WeightedPick(std::span<const double> weights, Rng& rng) {
  TGSIM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TGSIM_DCHECK(w >= 0.0);
    total += w;
  }
  TGSIM_CHECK_GT(total, 0.0);
  double r = rng.Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Drift guard, mirroring Rng::WeightedChoice: never return a zero-weight
  // entry — zero marks an already-consumed slot in without-replacement
  // loops, and returning it would emit a duplicate.
  for (size_t i = weights.size(); i-- > 0;)
    if (weights[i] > 0.0) return i;
  return weights.size() - 1;  // Unreachable: total > 0 was checked above.
}

}  // namespace tgsim::sampling
