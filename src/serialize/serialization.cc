#include "serialize/serialization.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <locale>
#include <ostream>
#include <utility>

namespace tgsim::serialize {

namespace {

constexpr char kArchiveMagic[] = "tgsim-archive";
constexpr char kCheckpointMagic[] = "tgsim-checkpoint";
constexpr int kCheckpointVersion = 1;

/// Field name of the i-th parameter tensor ("p0", "p1", ...). Built by
/// appending (not `"p" + std::to_string(i)`) to sidestep a GCC 12
/// -Wrestrict false positive on const char* + std::string&&.
std::string ParamFieldName(size_t i) {
  std::string name = "p";
  name += std::to_string(i);
  return name;
}

/// Reads one double token. std::from_chars instead of stream extraction:
/// it is locale-independent and accepts the "nan"/"inf" tokens operator<<
/// emits for non-finite values, which classic-locale `>>` rejects — a
/// diverged model must round-trip, not fail to load as "truncated".
bool ReadDoubleToken(std::istream& in, double& value) {
  std::string token;
  if (!(in >> token)) return false;
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(token.data(), end, value);
  return ec == std::errc() && ptr == end;
}

/// Section/field names are single tokens so the line-oriented grammar
/// stays unambiguous.
bool IsToken(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name)
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  return true;
}

}  // namespace

ArchiveWriter::ArchiveWriter(std::ostream& out) : out_(out) {
  // Classic locale: "%.17g" doubles must never pick up a ',' decimal
  // separator, or the archive corrupts under e.g. de_DE.UTF-8. The
  // caller's locale/precision come back in Finish() (or the destructor),
  // so writing an archive into a long-lived stream leaves no residue.
  caller_locale_ = out_.imbue(std::locale::classic());
  caller_precision_ = out_.precision(17);
  out_ << kArchiveMagic << " " << kArchiveFormatVersion << "\n";
}

ArchiveWriter::~ArchiveWriter() {
  if (!finished_) RestoreStreamState();
}

void ArchiveWriter::RestoreStreamState() {
  out_.imbue(caller_locale_);
  out_.precision(caller_precision_);
}

void ArchiveWriter::BeginSection(const std::string& name) {
  TGSIM_CHECK(!finished_);
  TGSIM_CHECK(IsToken(name));
  out_ << "section " << name << "\n";
  in_section_ = true;
}

void ArchiveWriter::WriteInt(const std::string& name, int64_t value) {
  TGSIM_CHECK(in_section_ && !finished_);
  TGSIM_CHECK(IsToken(name));
  out_ << "i64 " << name << " " << value << "\n";
}

void ArchiveWriter::WriteDouble(const std::string& name, double value) {
  TGSIM_CHECK(in_section_ && !finished_);
  TGSIM_CHECK(IsToken(name));
  out_ << "f64 " << name << " " << value << "\n";
}

void ArchiveWriter::WriteString(const std::string& name,
                                const std::string& value) {
  TGSIM_CHECK(in_section_ && !finished_);
  TGSIM_CHECK(IsToken(name));
  out_ << "str " << name << " " << value.size() << "\n";
  out_.write(value.data(), static_cast<std::streamsize>(value.size()));
  out_ << "\n";
}

void ArchiveWriter::WriteIntVector(const std::string& name,
                                   const std::vector<int64_t>& values) {
  TGSIM_CHECK(in_section_ && !finished_);
  TGSIM_CHECK(IsToken(name));
  out_ << "vi64 " << name << " " << values.size();
  for (int64_t v : values) out_ << " " << v;
  out_ << "\n";
}

void ArchiveWriter::WriteDoubleVector(const std::string& name,
                                      const std::vector<double>& values) {
  TGSIM_CHECK(in_section_ && !finished_);
  TGSIM_CHECK(IsToken(name));
  out_ << "vf64 " << name << " " << values.size();
  for (double v : values) out_ << " " << v;
  out_ << "\n";
}

void ArchiveWriter::WriteTensor(const std::string& name,
                                const nn::Tensor& tensor) {
  TGSIM_CHECK(in_section_ && !finished_);
  TGSIM_CHECK(IsToken(name));
  out_ << "tensor " << name << " " << tensor.rows() << " " << tensor.cols();
  for (int64_t i = 0; i < tensor.size(); ++i) out_ << " " << tensor.data()[i];
  out_ << "\n";
}

Status ArchiveWriter::Finish() {
  TGSIM_CHECK(!finished_);
  finished_ = true;
  out_ << "end\n";
  out_.flush();
  RestoreStreamState();
  if (!out_.good()) return Status::IoError("archive write failed");
  return Status::Ok();
}

Result<ArchiveReader> ArchiveReader::Parse(std::istream& in) {
  // Parse under the classic locale, restoring the caller's on every exit
  // path (the stream may carry non-archive payload before and after).
  struct LocaleGuard {
    std::istream& stream;
    std::locale caller = stream.imbue(std::locale::classic());
    ~LocaleGuard() { stream.imbue(caller); }
  } locale_guard{in};
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kArchiveMagic)
    return Status::InvalidArgument(
        "not a tgsim archive (expected a '" + std::string(kArchiveMagic) +
        " <version>' header)");
  if (version != kArchiveFormatVersion)
    return Status::InvalidArgument(
        "unsupported archive format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kArchiveFormatVersion) +
        "; regenerate the artifact with a matching tgsim)");

  ArchiveReader reader;
  std::string current;
  std::map<std::string, Field>* fields = nullptr;
  auto context = [&](const std::string& name) {
    return current.empty() ? name : current + "." + name;
  };

  std::string tag;
  while (in >> tag) {
    if (tag == "end") return reader;
    if (tag == "section") {
      std::string name;
      if (!(in >> name))
        return Status::InvalidArgument("truncated archive: section name");
      if (reader.sections_.count(name) != 0)
        return Status::InvalidArgument("corrupt archive: duplicate section '" +
                                       name + "'");
      current = name;
      reader.section_order_.push_back(name);
      fields = &reader.sections_[name];
      continue;
    }

    // Every remaining tag is a field and needs an enclosing section.
    std::string name;
    if (!(in >> name))
      return Status::InvalidArgument("truncated archive: field name after '" +
                                     tag + "'");
    if (fields == nullptr)
      return Status::InvalidArgument("corrupt archive: field '" + name +
                                     "' appears before any section");
    if (fields->count(name) != 0)
      return Status::InvalidArgument("corrupt archive: duplicate field '" +
                                     context(name) + "'");
    Field field;
    if (tag == "i64") {
      field.kind = FieldKind::kInt;
      if (!(in >> field.i))
        return Status::InvalidArgument("truncated archive: field '" +
                                       context(name) + "'");
    } else if (tag == "f64") {
      field.kind = FieldKind::kDouble;
      if (!ReadDoubleToken(in, field.d))
        return Status::InvalidArgument("truncated archive: field '" +
                                       context(name) + "'");
    } else if (tag == "str") {
      field.kind = FieldKind::kString;
      int64_t length = 0;
      if (!(in >> length) || length < 0)
        return Status::InvalidArgument("truncated archive: field '" +
                                       context(name) + "'");
      in.get();  // The single separator after the byte count.
      // Chunked read: the declared length is untrusted (a corrupt byte
      // count must yield a Status, not a std::length_error), so allocate
      // only as much as the stream actually delivers.
      char buffer[1 << 16];
      int64_t remaining = length;
      while (remaining > 0) {
        int64_t chunk = std::min<int64_t>(
            remaining, static_cast<int64_t>(sizeof(buffer)));
        in.read(buffer, chunk);
        if (in.gcount() != chunk)
          return Status::InvalidArgument("truncated archive: field '" +
                                         context(name) +
                                         "' string payload");
        field.s.append(buffer, static_cast<size_t>(chunk));
        remaining -= chunk;
      }
    } else if (tag == "vi64" || tag == "vf64") {
      field.kind =
          tag == "vi64" ? FieldKind::kIntVector : FieldKind::kDoubleVector;
      int64_t count = 0;
      if (!(in >> count) || count < 0)
        return Status::InvalidArgument("truncated archive: field '" +
                                       context(name) + "'");
      for (int64_t i = 0; i < count; ++i) {
        bool ok = field.kind == FieldKind::kIntVector
                      ? static_cast<bool>(in >> field.iv.emplace_back())
                      : ReadDoubleToken(in, field.dv.emplace_back());
        if (!ok)
          return Status::InvalidArgument(
              "truncated archive: field '" + context(name) + "' entry " +
              std::to_string(i) + " of " + std::to_string(count));
      }
    } else if (tag == "tensor") {
      field.kind = FieldKind::kTensor;
      if (!(in >> field.tensor_rows >> field.tensor_cols) ||
          field.tensor_rows < 0 || field.tensor_cols < 0)
        return Status::InvalidArgument("truncated archive: field '" +
                                       context(name) + "' tensor header");
      int64_t count = static_cast<int64_t>(field.tensor_rows) *
                      field.tensor_cols;
      // No up-front reserve: corrupt dims must exhaust the stream into a
      // truncation Status, not trigger a giant allocation.
      for (int64_t i = 0; i < count; ++i) {
        if (!ReadDoubleToken(in, field.dv.emplace_back()))
          return Status::InvalidArgument(
              "truncated archive: field '" + context(name) + "' entry " +
              std::to_string(i) + " of " + std::to_string(count));
      }
    } else {
      return Status::InvalidArgument("corrupt archive: unknown record tag '" +
                                     tag + "'");
    }
    fields->emplace(name, std::move(field));
  }
  return Status::InvalidArgument(
      "truncated archive: missing 'end' terminator");
}

bool ArchiveReader::HasSection(const std::string& section) const {
  return sections_.count(section) != 0;
}

bool ArchiveReader::HasField(const std::string& section,
                             const std::string& name) const {
  return Find(section, name) != nullptr;
}

std::vector<std::string> ArchiveReader::SectionNames() const {
  return section_order_;
}

const ArchiveReader::Field* ArchiveReader::Find(
    const std::string& section, const std::string& name) const {
  auto sec = sections_.find(section);
  if (sec == sections_.end()) return nullptr;
  auto field = sec->second.find(name);
  if (field == sec->second.end()) return nullptr;
  return &field->second;
}

Status ArchiveReader::Missing(const std::string& section,
                              const std::string& name) const {
  std::string have;
  for (const std::string& s : section_order_)
    have += (have.empty() ? "" : ", ") + s;
  return Status::NotFound("archive has no field '" + section + "." + name +
                          "' (sections: " + (have.empty() ? "none" : have) +
                          ")");
}

Result<int64_t> ArchiveReader::GetInt(const std::string& section,
                                      const std::string& name) const {
  const Field* f = Find(section, name);
  if (f == nullptr) return Missing(section, name);
  if (f->kind != FieldKind::kInt)
    return Status::InvalidArgument("field '" + section + "." + name +
                                   "' is not an i64");
  return f->i;
}

Result<double> ArchiveReader::GetDouble(const std::string& section,
                                        const std::string& name) const {
  const Field* f = Find(section, name);
  if (f == nullptr) return Missing(section, name);
  if (f->kind != FieldKind::kDouble)
    return Status::InvalidArgument("field '" + section + "." + name +
                                   "' is not an f64");
  return f->d;
}

Result<std::string> ArchiveReader::GetString(const std::string& section,
                                             const std::string& name) const {
  const Field* f = Find(section, name);
  if (f == nullptr) return Missing(section, name);
  if (f->kind != FieldKind::kString)
    return Status::InvalidArgument("field '" + section + "." + name +
                                   "' is not a string");
  return f->s;
}

Result<std::vector<int64_t>> ArchiveReader::GetIntVector(
    const std::string& section, const std::string& name) const {
  const Field* f = Find(section, name);
  if (f == nullptr) return Missing(section, name);
  if (f->kind != FieldKind::kIntVector)
    return Status::InvalidArgument("field '" + section + "." + name +
                                   "' is not a vi64");
  return f->iv;
}

Result<std::vector<double>> ArchiveReader::GetDoubleVector(
    const std::string& section, const std::string& name) const {
  const Field* f = Find(section, name);
  if (f == nullptr) return Missing(section, name);
  if (f->kind != FieldKind::kDoubleVector)
    return Status::InvalidArgument("field '" + section + "." + name +
                                   "' is not a vf64");
  return f->dv;
}

Result<nn::Tensor> ArchiveReader::GetTensor(const std::string& section,
                                            const std::string& name) const {
  const Field* f = Find(section, name);
  if (f == nullptr) return Missing(section, name);
  if (f->kind != FieldKind::kTensor)
    return Status::InvalidArgument("field '" + section + "." + name +
                                   "' is not a tensor");
  return nn::Tensor(f->tensor_rows, f->tensor_cols, f->dv);
}

Status ArchiveReader::ReadTensorInto(const std::string& section,
                                     const std::string& name,
                                     nn::Tensor& dst) const {
  const Field* f = Find(section, name);
  if (f == nullptr) return Missing(section, name);
  if (f->kind != FieldKind::kTensor)
    return Status::InvalidArgument("field '" + section + "." + name +
                                   "' is not a tensor");
  if (f->tensor_rows != dst.rows() || f->tensor_cols != dst.cols())
    return Status::InvalidArgument(
        "tensor '" + section + "." + name + "' is " +
        std::to_string(f->tensor_rows) + "x" +
        std::to_string(f->tensor_cols) + " but the model expects " +
        std::to_string(dst.rows()) + "x" + std::to_string(dst.cols()) +
        " — was the model built with the same configuration?");
  for (int64_t i = 0; i < dst.size(); ++i)
    dst.data()[i] = f->dv[static_cast<size_t>(i)];
  return Status::Ok();
}

void WriteAliasTable(ArchiveWriter& writer, const std::string& prefix,
                     const sampling::AliasTable& table) {
  writer.WriteDoubleVector(prefix + "_prob", table.prob());
  writer.WriteIntVector(prefix + "_alias", table.alias());
}

Result<sampling::AliasTable> ReadAliasTable(const ArchiveReader& reader,
                                            const std::string& section,
                                            const std::string& prefix) {
  Result<std::vector<double>> prob =
      reader.GetDoubleVector(section, prefix + "_prob");
  if (!prob.ok()) return prob.status();
  Result<std::vector<int64_t>> alias =
      reader.GetIntVector(section, prefix + "_alias");
  if (!alias.ok()) return alias.status();
  return sampling::AliasTable::FromParts(std::move(prob).value(),
                                         std::move(alias).value());
}

void WriteParams(ArchiveWriter& writer, const std::vector<nn::Var>& params) {
  writer.WriteInt("count", static_cast<int64_t>(params.size()));
  for (size_t i = 0; i < params.size(); ++i)
    writer.WriteTensor(ParamFieldName(i), params[i].value());
}

Status ReadParamsInto(const ArchiveReader& reader,
                      const std::string& section,
                      std::vector<nn::Var>& params) {
  Result<int64_t> count = reader.GetInt(section, "count");
  if (!count.ok()) return count.status();
  if (count.value() != static_cast<int64_t>(params.size()))
    return Status::InvalidArgument(
        "archive section '" + section + "' has " +
        std::to_string(count.value()) + " tensors, the model has " +
        std::to_string(params.size()) +
        " — was the model built with the same configuration?");
  for (size_t i = 0; i < params.size(); ++i) {
    Status s = reader.ReadTensorInto(section, ParamFieldName(i),
                                     params[i].mutable_value());
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status SaveParameters(const std::vector<nn::Var>& params,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot write: " + path);
  // Classic locale: under e.g. de_DE.UTF-8 the global locale renders
  // doubles with ',' separators, which silently corrupts the checkpoint.
  out.imbue(std::locale::classic());
  out << kCheckpointMagic << " " << kCheckpointVersion << "\n";
  out << params.size() << "\n";
  out.precision(17);
  for (const nn::Var& p : params) {
    const nn::Tensor& t = p.value();
    out << t.rows() << " " << t.cols();
    for (int64_t i = 0; i < t.size(); ++i) out << " " << t.data()[i];
    out << "\n";
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadParameters(std::vector<nn::Var>& params, const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  in.imbue(std::locale::classic());
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kCheckpointMagic)
    return Status::InvalidArgument("not a tgsim checkpoint: " + path);
  if (version != kCheckpointVersion)
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  size_t count = 0;
  if (!(in >> count)) return Status::InvalidArgument("truncated header");
  if (count != params.size())
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()) +
        " — was the model built with the same configuration?");
  for (nn::Var& p : params) {
    int rows = 0, cols = 0;
    if (!(in >> rows >> cols))
      return Status::InvalidArgument("truncated tensor header");
    nn::Tensor& t = p.mutable_value();
    if (rows != t.rows() || cols != t.cols())
      return Status::InvalidArgument(
          "tensor shape mismatch: checkpoint " + std::to_string(rows) + "x" +
          std::to_string(cols) + " vs model " + std::to_string(t.rows()) +
          "x" + std::to_string(t.cols()));
    for (int64_t i = 0; i < t.size(); ++i) {
      if (!ReadDoubleToken(in, t.data()[i]))
        return Status::InvalidArgument("truncated tensor data");
    }
  }
  return Status::Ok();
}

}  // namespace tgsim::serialize
