#ifndef TGSIM_SERIALIZE_SERIALIZATION_H_
#define TGSIM_SERIALIZE_SERIALIZATION_H_

#include <cstdint>
#include <ios>
#include <iosfwd>
#include <locale>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/autograd.h"
#include "nn/tensor.h"
#include "sampling/samplers.h"

/// Model-artifact serialization (serialize tier; see ROADMAP layering:
/// common -> ... -> nn -> serialize -> baselines -> core). The sectioned
/// archive below is the on-disk format of every generator's fitted state,
/// so a simulator can be trained once and shipped as a self-describing
/// artifact that regenerates graphs without the training data.

namespace tgsim::serialize {

/// Version written into (and accepted from) the archive header. Bump it
/// whenever a field's meaning or encoding changes incompatibly; readers
/// reject newer versions with an actionable message instead of
/// misinterpreting bytes.
inline constexpr int kArchiveFormatVersion = 1;

/// Streams a versioned, sectioned, line-oriented text archive:
///
///   tgsim-archive 1
///   section <name>
///   i64 <field> <value>
///   f64 <field> <value>              (%.17g — exact double round trip)
///   vi64 <field> <count> v v ...
///   vf64 <field> <count> v v ...
///   tensor <field> <rows> <cols> v v ...
///   str <field> <byte-count>
///   <raw bytes>
///   ...
///   end
///
/// The writer imbues the classic "C" locale on the stream so numeric
/// fields round-trip under any process locale (a comma decimal separator
/// would corrupt the file); the caller's locale and precision are
/// restored by Finish() (or the destructor). Write calls never throw and
/// never report errors individually; Finish() writes the terminator and
/// returns the stream verdict, mirroring the std::ostream error model.
class ArchiveWriter {
 public:
  /// Writes the header. Section/field names must be non-empty single
  /// tokens (no whitespace) — violations are programming errors.
  explicit ArchiveWriter(std::ostream& out);
  ~ArchiveWriter();

  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  /// Starts a named section; subsequent Write calls land in it. Names must
  /// be unique within one archive.
  void BeginSection(const std::string& name);

  void WriteInt(const std::string& name, int64_t value);
  void WriteDouble(const std::string& name, double value);
  /// Arbitrary bytes (length-prefixed; newlines and spaces are fine).
  void WriteString(const std::string& name, const std::string& value);
  void WriteIntVector(const std::string& name,
                      const std::vector<int64_t>& values);
  void WriteDoubleVector(const std::string& name,
                         const std::vector<double>& values);
  void WriteTensor(const std::string& name, const nn::Tensor& tensor);

  /// Writes the `end` terminator and returns IoError if any write failed.
  /// Call exactly once; the stream is left positioned after the archive so
  /// another archive (or trailing payload) can follow in the same file.
  Status Finish();

 private:
  void RestoreStreamState();

  std::ostream& out_;
  std::locale caller_locale_;
  std::streamsize caller_precision_;
  bool in_section_ = false;
  bool finished_ = false;
};

/// Parses one archive eagerly into memory and serves typed field lookups.
///
/// Errors are Status-typed, never a crash: bad magic and version mismatch
/// are InvalidArgument, truncation/corruption name the offending section
/// and field, and a missing section/field is NotFound (listing what the
/// archive does contain). Parse stops at the `end` terminator, leaving the
/// stream positioned for any payload that follows.
class ArchiveReader {
 public:
  static Result<ArchiveReader> Parse(std::istream& in);

  bool HasSection(const std::string& section) const;
  bool HasField(const std::string& section, const std::string& name) const;
  std::vector<std::string> SectionNames() const;

  /// Typed getters: NotFound for a missing section/field, InvalidArgument
  /// when the field holds a different type.
  Result<int64_t> GetInt(const std::string& section,
                         const std::string& name) const;
  Result<double> GetDouble(const std::string& section,
                           const std::string& name) const;
  Result<std::string> GetString(const std::string& section,
                                const std::string& name) const;
  Result<std::vector<int64_t>> GetIntVector(const std::string& section,
                                            const std::string& name) const;
  Result<std::vector<double>> GetDoubleVector(const std::string& section,
                                              const std::string& name) const;
  Result<nn::Tensor> GetTensor(const std::string& section,
                               const std::string& name) const;

  /// Copies a tensor field into `dst`, rejecting shape mismatches with a
  /// message that names both shapes (the config-vs-artifact guard).
  Status ReadTensorInto(const std::string& section, const std::string& name,
                        nn::Tensor& dst) const;

 private:
  enum class FieldKind { kInt, kDouble, kString, kIntVector, kDoubleVector,
                         kTensor };
  struct Field {
    FieldKind kind = FieldKind::kInt;
    int64_t i = 0;
    double d = 0.0;
    std::string s;
    std::vector<int64_t> iv;
    std::vector<double> dv;
    int tensor_rows = 0;
    int tensor_cols = 0;  // Tensor payload lives in `dv`, row-major.
  };

  ArchiveReader() = default;
  const Field* Find(const std::string& section,
                    const std::string& name) const;
  Status Missing(const std::string& section, const std::string& name) const;

  std::vector<std::string> section_order_;
  std::map<std::string, std::map<std::string, Field>> sections_;
};

/// Writes an alias table's slot arrays as two vector fields of the
/// archive's current section (`<prefix>_prob` / `<prefix>_alias`), so a
/// fitted generator's fixed sampling distribution ships inside the
/// artifact and LoadState can skip the O(n) rebuild. Pair with
/// ReadAliasTable.
void WriteAliasTable(ArchiveWriter& writer, const std::string& prefix,
                     const sampling::AliasTable& table);

/// Reassembles an alias table written by WriteAliasTable. NotFound when
/// the fields are absent (older artifacts — callers fall back to
/// rebuilding from the serialized weights), InvalidArgument on corrupt
/// slot data. Because the alias build is deterministic and the archive
/// round-trips doubles exactly, a loaded table draws bit-identically to
/// one rebuilt from the weights.
Result<sampling::AliasTable> ReadAliasTable(const ArchiveReader& reader,
                                            const std::string& section,
                                            const std::string& prefix);

/// Writes a parameter set as consecutive tensor fields (`count`, `p0`,
/// `p1`, ...) of the archive's current section. Pair with ReadParamsInto.
void WriteParams(ArchiveWriter& writer, const std::vector<nn::Var>& params);

/// Loads tensors written by WriteParams into an existing parameter set.
/// The parameter count and every shape must match (the model must have
/// been built with the same configuration).
Status ReadParamsInto(const ArchiveReader& reader,
                      const std::string& section,
                      std::vector<nn::Var>& params);

/// Portable text checkpoint for a trained parameter set (the legacy
/// single-purpose format behind TgaeGenerator::SaveCheckpoint; the
/// sectioned archive above is the general mechanism).
///
/// Format (line-oriented, whitespace-separated):
///   tgsim-checkpoint 1
///   <num_tensors>
///   <rows> <cols> v v v ...      (one line per tensor, row-major, %.17g)
///
/// The parameter *order and shapes* are the contract: loading into a model
/// built with a different configuration is rejected with InvalidArgument.
/// Both directions imbue the classic "C" locale so checkpoints round-trip
/// under non-C process locales.
Status SaveParameters(const std::vector<nn::Var>& params,
                      const std::string& path);

/// Loads a checkpoint into an *existing* parameter set (shapes must match).
Status LoadParameters(std::vector<nn::Var>& params, const std::string& path);

}  // namespace tgsim::serialize

#endif  // TGSIM_SERIALIZE_SERIALIZATION_H_
