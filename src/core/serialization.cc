#include "core/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tgsim::core {

namespace {
constexpr char kMagic[] = "tgsim-checkpoint";
constexpr int kVersion = 1;
}  // namespace

Status SaveParameters(const std::vector<nn::Var>& params,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot write: " + path);
  out << kMagic << " " << kVersion << "\n";
  out << params.size() << "\n";
  out.precision(17);
  for (const nn::Var& p : params) {
    const nn::Tensor& t = p.value();
    out << t.rows() << " " << t.cols();
    for (int64_t i = 0; i < t.size(); ++i) out << " " << t.data()[i];
    out << "\n";
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadParameters(std::vector<nn::Var>& params, const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open: " + path);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic)
    return Status::InvalidArgument("not a tgsim checkpoint: " + path);
  if (version != kVersion)
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  size_t count = 0;
  if (!(in >> count)) return Status::InvalidArgument("truncated header");
  if (count != params.size())
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()) +
        " — was the model built with the same configuration?");
  for (nn::Var& p : params) {
    int rows = 0, cols = 0;
    if (!(in >> rows >> cols))
      return Status::InvalidArgument("truncated tensor header");
    nn::Tensor& t = p.mutable_value();
    if (rows != t.rows() || cols != t.cols())
      return Status::InvalidArgument(
          "tensor shape mismatch: checkpoint " + std::to_string(rows) + "x" +
          std::to_string(cols) + " vs model " + std::to_string(t.rows()) +
          "x" + std::to_string(t.cols()));
    for (int64_t i = 0; i < t.size(); ++i) {
      if (!(in >> t.data()[i]))
        return Status::InvalidArgument("truncated tensor data");
    }
  }
  return Status::Ok();
}

}  // namespace tgsim::core
