#ifndef TGSIM_CORE_TGAE_H_
#define TGSIM_CORE_TGAE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/generator.h"
#include "common/status.h"
#include "config/param_map.h"
#include "core/tgat_encoder.h"
#include "graph/ego_sampler.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace tgsim::core {

/// The ablation variants of the paper's Table VII.
enum class TgaeVariant {
  kFull,              // TGAE
  kRandomWalk,        // TGAE-g: ego-graph sampling degraded to chains
  kNoTruncation,      // TGAE-t: neighbor threshold disabled
  kUniformSampling,   // TGAE-n: uniform initial node sampling
  kNonProbabilistic,  // TGAE-p: Z = MLP_mu(X), no KL term
};

/// Hyper-parameters of TGAE (paper Section IV).
struct TgaeConfig {
  /// d_in: dimension of the learned node/time input features.
  int embedding_dim = 32;
  /// d_enc: hidden dimension after temporal graph attention.
  int hidden_dim = 32;
  /// h_tga: number of attention heads (Eq. 3).
  int num_heads = 2;
  /// k: ego-graph radius = number of stacked TGAT layers.
  int radius = 2;
  /// th: neighbor truncation threshold (Alg. 1); 0 disables truncation
  /// (TGAE-t), 1 degenerates ego-graphs to random walks (TGAE-g).
  int neighbor_threshold = 10;
  /// t_N: time-window radius of the temporal neighborhood (Def. 3) used
  /// for ego-graph sampling and encoding.
  int time_window = 2;
  /// t_N used for the generation-time categorical support N(u^t) (paper
  /// Section IV-G normalizes scores over the temporal neighborhood).
  int generation_time_window = 1;
  /// Temporal-proximity prior at generation: multiplier applied to support
  /// neighbors from the window ring (|dt| > 0). The decoder's output
  /// classes are per-node — TGAE's complexity advantage over temporal-walk
  /// state spaces — so exact-time preference is supplied as a prior rather
  /// than learned (DESIGN.md §2).
  double generation_ring_weight = 0.005;
  /// n_s: sampled initial temporal nodes per training step (Eq. 7).
  int batch_centers = 32;
  int epochs = 50;
  double learning_rate = 1e-2;
  double kl_weight = 1e-3;
  /// Eq. 2 degree-proportional initial sampling; false = TGAE-n.
  bool degree_weighted_sampling = true;
  /// Variational decoder; false = TGAE-p (Eq. 8/9).
  bool probabilistic = true;
  /// Ties W_dec to the node embedding table (logits = (h+z) E^T + b), so
  /// the attention encoder can raise a neighbor's logit by copying its
  /// embedding into the center representation. Halves decoder parameters
  /// and substantially sharpens the decoded rows.
  bool tie_decoder = true;
  /// Sparse decode path. Training scores each decoded row only on its
  /// candidate set (the batch's positives plus `negative_samples` shared
  /// negatives) via SampledSoftmaxCrossEntropy, making the reconstruction
  /// term O(positives + negatives) per row; generation decodes logits only
  /// over the union of support columns per chunk, O(support) per row. The
  /// dense n-wide decode stays the default (and the `preset=paper`
  /// behavior); `preset=fast` flips this on.
  bool sparse_decoder = false;
  /// Shared negative samples per training batch (sparse decoder only):
  /// uniform node draws appended to the candidate set so the sampled
  /// softmax sees columns outside the batch's positive support.
  int negative_samples = 64;
  /// Center-batch chunk size during generation (bounds peak memory).
  int generation_chunk = 256;
  /// Name shown in tables ("TGAE", "TGAE-g", ...).
  std::string display_name = "TGAE";

  /// Canonical configuration of an ablation variant.
  static TgaeConfig ForVariant(TgaeVariant v);

  /// Typed parameter surface (config/param_map.h): binds every tunable
  /// field except display_name/variant, which the registry owns.
  void DefineParams(config::ParamBinder& binder);
  Status ApplyParams(const config::ParamMap& params);
  static config::ParamSchema Schema();
};

/// First-parent array of the Alg. 2 path-sum recursion: parent[j] is the
/// ego-node index whose path the decoder row of node j extends (-1 for the
/// center and for nodes with no shallower-depth parent). Strictly layered
/// edges (depth[c] == depth[p] + 1) win; nodes whose strictly-layered chain
/// is broken fall back to any shallower-depth parent so their path sum
/// still reaches the center instead of silently degrading to "own z only".
/// Exposed for the hand-built ego-graph pin test.
std::vector<int> PathSumParents(const graphs::EgoGraph& ego);

/// First node index >= `start` (cyclically) with taken[v] == false; returns
/// `start` if every node is taken. Used by the generation empty-support
/// fallback so a collision never lands on a taken node (or the source node
/// itself) after a single step. Exposed for the regression test.
int NextUntakenNode(const std::vector<bool>& taken, int start);

/// Temporal Graph Autoencoder — the paper's contribution.
///
/// Fit(): samples degree-weighted temporal ego-graphs (Alg. 1), merges them
/// into k-bipartite computation graphs (Fig. 4), encodes with stacked TGAT
/// layers (Eq. 3–5), decodes per-node categorical edge rows through a
/// variational head (Alg. 2), and optimizes the approximate loss of Eq. 7
/// with Adam.
///
/// Generate(): per timestamp, decodes the categorical edge distribution of
/// every active temporal node and samples its observed number of edges
/// without replacement, so the generated graph matches the observed edge
/// budget exactly (paper Section IV-G).
class TgaeGenerator : public baselines::TemporalGraphGenerator {
 public:
  explicit TgaeGenerator(TgaeConfig config = {});
  ~TgaeGenerator() override;

  std::string name() const override { return config_.display_name; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;

  /// Incremental fit: merges `delta` into the owned support graph, rebuilds
  /// the samplers, and takes a bounded number of warm-start epochs whose
  /// training centers are drawn with a recency-biased variant of the Eq. 2
  /// initial distribution (later timestamps up-weighted), so the fitted
  /// parameters absorb the new observations without a full refit.
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;

  /// Paper Section IV-D: training space is O(n (T + n_s)); TGAE never hits
  /// the 32 GB budget on the paper's datasets.
  int64_t EstimatePaperMemoryBytes(int64_t n, int64_t /*m*/,
                                   int64_t t) const override {
    return 8 * n * (t + 256);
  }

  double last_epoch_loss() const { return last_epoch_loss_; }
  const TgaeConfig& config() const { return config_; }

  /// Serializes the complete fitted state — shape, generation support
  /// graph, trained parameters — so LoadState regenerates without the
  /// training data (unlike the parameter-only checkpoint below).
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  int64_t ResidentStateBytes() const override;

  /// Persists the trained parameters as a portable text checkpoint
  /// (serialize/serialization.h). Requires a prior Fit().
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores parameters saved by SaveCheckpoint into this model. The
  /// model must already be Fit() on a graph of the same shape with the
  /// same configuration (Fit builds the parameter structures; the
  /// checkpoint overwrites the learned values).
  Status LoadCheckpoint(const std::string& path);

 private:
  /// Encoded (and optionally decoded) rows for a batch of ego-graphs.
  struct DecodedBatch {
    nn::Var rows;    // R x d_enc decoder inputs (h_center + path-sum z).
    nn::Var logits;  // Filled by DecodeLogits: R x n (dense decode) or
                     // R x |candidates| (sparse decode).
    std::vector<graphs::TemporalNodeRef> row_nodes;
    nn::Var mu;      // Variational head outputs (for the KL term).
    nn::Var logvar;
  };

  /// Runs the encoder on a batch of ego-graphs and assembles the decoder
  /// input rows (h_center + Alg. 2 path-sum z). With `centers_only` only
  /// the ego centers receive rows (generation); otherwise every ego node
  /// does (training). `stochastic` toggles the reparameterized sample vs.
  /// the posterior mean. Does not decode: call DecodeLogits next.
  DecodedBatch Encode(const std::vector<graphs::EgoGraph>& egos,
                      bool centers_only, bool stochastic, Rng& rng) const;

  /// Fills `batch.logits`. With `candidates == nullptr` this is the dense
  /// n-wide decode; otherwise only the candidate columns are scored
  /// (GatherCols on the decoder weight), making the matmul
  /// O(rows x |candidates|).
  void DecodeLogits(DecodedBatch& batch,
                    const std::vector<int>* candidates) const;

  /// Learned input features (node embedding + time embedding).
  nn::Var InputFeatures(
      const std::vector<graphs::TemporalNodeRef>& nodes) const;

  /// Normalized adjacency target rows at each row node's timestamp, as a
  /// sparse (node index, weight) representation in global column space.
  nn::SparseRowTargets TargetRows(
      const std::vector<graphs::TemporalNodeRef>& row_nodes) const;

  /// Dense logits of one decoded row (b + rows.row(r) . W_dec), used by
  /// the sparse generation path's empty-support fallback only. Matches the
  /// dense decode bit for bit: the k-major decode panel keeps one
  /// ascending-k accumulation chain per output column (kernels::DotPanel4
  /// runs four such chains at once).
  std::vector<nn::Scalar> DenseLogitsRow(const nn::Tensor& rows,
                                         int r) const;

  /// Lazily (re)packs the decoder weight into the k-major 4-column-block
  /// panel DenseLogitsRow reads: panel[(block*d + k)*4 + j] holds column
  /// 4*block+j of W_dec (or of the tied embedding table, transposed) at
  /// depth k, with zero padding past n. Built on the generation (caller)
  /// thread; invalidated whenever the decoder weights change.
  const std::vector<nn::Scalar>& DecodePanel(int d) const;

  /// Rebuilds the ego/initial samplers over the owned support graph
  /// (shared by Fit and LoadState).
  void BuildSamplers();

  /// The Fit training loop: `epochs` optimizer steps drawing batch centers
  /// from `centers` (shared by Fit and the Update warm start, which passes
  /// a recency-biased sampler).
  void TrainEpochs(int epochs, const graphs::InitialNodeSampler& centers,
                   Rng& rng);

  /// Constructs embeddings, encoder, variational heads and the decoder
  /// from config_ + shape_ and fills params_ in the fixed order (shared by
  /// Fit and LoadState; LoadState overwrites the values afterwards).
  void BuildModel(Rng& rng);

  TgaeConfig config_;
  /// Owned copy of the observed graph: training targets, ego sampling and
  /// the generation-time categorical support all walk it, so it is part
  /// of the fitted state (and of the serialized artifact).
  std::unique_ptr<graphs::TemporalGraph> support_;
  baselines::ObservedShape shape_;
  std::unique_ptr<graphs::EgoGraphSampler> ego_sampler_;
  std::unique_ptr<graphs::InitialNodeSampler> initial_sampler_;

  std::unique_ptr<nn::Embedding> node_emb_;
  std::unique_ptr<nn::Embedding> time_emb_;
  std::unique_ptr<TgatEncoder> encoder_;
  std::unique_ptr<nn::Mlp> mlp_mu_;
  std::unique_ptr<nn::Mlp> mlp_sigma_;
  nn::Var w_dec_;
  nn::Var b_dec_;
  std::vector<nn::Var> params_;  // All trainable parameters, fixed order.

  /// Cached k-major decode panel (see DecodePanel). Mutable: it is a pure
  /// memoization of the decoder weights, rebuilt on first use after every
  /// train/load, and only touched from the single generation thread.
  mutable std::vector<nn::Scalar> decode_panel_;
  mutable bool decode_panel_valid_ = false;

  double last_epoch_loss_ = 0.0;
};

}  // namespace tgsim::core

#endif  // TGSIM_CORE_TGAE_H_
