#include "core/tgat_encoder.h"

namespace tgsim::core {

TgatLayer::TgatLayer(Rng& rng, int in_dim, int out_dim, int num_heads)
    : out_dim_(out_dim), num_heads_(num_heads) {
  TGSIM_CHECK_GE(num_heads, 1);
  head_dim_ = std::max(1, out_dim / num_heads);
  for (int h = 0; h < num_heads_; ++h) {
    w_head_.push_back(
        AddParam(nn::Tensor::GlorotUniform(rng, in_dim, head_dim_)));
    a_head_.push_back(
        AddParam(nn::Tensor::GlorotUniform(rng, 2 * head_dim_, 1)));
  }
  w_out_ = AddParam(
      nn::Tensor::GlorotUniform(rng, num_heads_ * head_dim_, out_dim));
}

nn::Var TgatLayer::Forward(const nn::Var& src_feats,
                           const graphs::BipartiteLayer& edges,
                           const std::vector<int>& dst_copy_in_src) const {
  const int n_dst = static_cast<int>(dst_copy_in_src.size());
  TGSIM_CHECK(!edges.src.empty());
  // All head projections in one blocked matmul against the concatenated
  // head weights; per-head views are column slices. Column j of the batched
  // product is the same dot products in the same order as the per-head
  // matmul, so head outputs are bit-identical to the unbatched form. The
  // concat node is rebuilt per forward pass so its grad buffer is fresh.
  nn::Var proj_all =
      num_heads_ == 1
          ? nn::MatMul(src_feats, w_head_[0])
          : nn::MatMul(src_feats, nn::ConcatCols(w_head_));
  std::vector<nn::Var> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  for (int h = 0; h < num_heads_; ++h) {
    nn::Var proj = num_heads_ == 1
                       ? proj_all
                       : nn::SliceCols(proj_all, h * head_dim_,
                                       (h + 1) * head_dim_);
    // Queries: the target node's own projection (its copy in the source
    // layer — the paper's self-loops).
    nn::Var q_dst = nn::GatherRows(proj, dst_copy_in_src);
    nn::Var hs = nn::GatherRows(proj, edges.src);
    nn::Var hd = nn::GatherRows(q_dst, edges.dst);
    nn::Var scores = nn::LeakyRelu(
        nn::MatMul(nn::ConcatCols({hs, hd}), a_head_[static_cast<size_t>(h)]),
        0.2);
    nn::Var alpha = nn::SegmentSoftmax(scores, edges.dst, n_dst);
    nn::Var agg =
        nn::SegmentSum(nn::MulColBroadcast(hs, alpha), edges.dst, n_dst);
    heads.push_back(nn::LeakyRelu(agg, 0.2));
  }
  nn::Var cat = heads.size() == 1 ? heads[0] : nn::ConcatCols(heads);
  return nn::MatMul(cat, w_out_);
}

TgatEncoder::TgatEncoder(Rng& rng, int input_dim, int hidden_dim,
                         int num_heads, int radius)
    : hidden_dim_(hidden_dim) {
  TGSIM_CHECK_GE(radius, 1);
  // layers_[l] maps S_{l+1} features to S_l features; the outermost layer
  // (l = radius-1) consumes the raw input features of S_k.
  for (int l = 0; l < radius; ++l) {
    int in = l == radius - 1 ? input_dim : hidden_dim;
    layers_.push_back(
        std::make_unique<TgatLayer>(rng, in, hidden_dim, num_heads));
    AbsorbParams(*layers_.back());
  }
}

nn::Var TgatEncoder::Forward(const graphs::BipartiteStack& stack,
                             const nn::Var& sk_feats) const {
  const int k = stack.radius();
  TGSIM_CHECK_EQ(static_cast<int>(layers_.size()), k);
  // Start from the periphery (S_k) and move inward (paper: messages pass
  // from peripheral nodes to the central node).
  nn::Var h = sk_feats;
  for (int l = k - 1; l >= 0; --l) {
    h = layers_[static_cast<size_t>(l)]->Forward(
        h, stack.layers[static_cast<size_t>(l)],
        stack.copy_in_next[static_cast<size_t>(l)]);
  }
  return h;  // Features of S_0.
}

}  // namespace tgsim::core
