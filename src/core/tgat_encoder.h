#ifndef TGSIM_CORE_TGAT_ENCODER_H_
#define TGSIM_CORE_TGAT_ENCODER_H_

#include <memory>
#include <vector>

#include "graph/bipartite.h"
#include "nn/layers.h"

namespace tgsim::core {

/// One multi-head temporal graph attention layer (paper Eq. 3–5).
///
/// Messages flow over a bipartite computation graph from source nodes
/// (layer l+1 of the stack) to target nodes (layer l). Per head i the edge
/// importance is alpha_i = segment-softmax(LeakyReLU(a_i^T [h_src || h_dst]))
/// normalized over each target's incoming edges, and the head output is
/// sigma(sum alpha_i * W_i h_src). Heads are concatenated and projected
/// with W_o.
class TgatLayer : public nn::Module {
 public:
  TgatLayer(Rng& rng, int in_dim, int out_dim, int num_heads);

  /// `src_feats`: features of the source layer (S_{l+1}).
  /// `edges`: bipartite edges (src index into src layer, dst index into
  ///   target layer).
  /// `dst_copy_in_src`: for each target node, its index inside the source
  ///   layer (used to build the attention query).
  /// Returns target-layer features [n_dst x out_dim].
  nn::Var Forward(const nn::Var& src_feats,
                  const graphs::BipartiteLayer& edges,
                  const std::vector<int>& dst_copy_in_src) const;

  int out_dim() const { return out_dim_; }

 private:
  int out_dim_;
  int num_heads_;
  int head_dim_;
  std::vector<nn::Var> w_head_;  // per head: in_dim x head_dim
  std::vector<nn::Var> a_head_;  // per head: 2*head_dim x 1
  nn::Var w_out_;                // heads*head_dim x out_dim
};

/// The stacked k-layer TGAT encoder: consumes a bipartite stack plus input
/// features per layer and produces hidden variables for the center set S_0
/// (paper Section IV.C, Fig. 4).
class TgatEncoder : public nn::Module {
 public:
  TgatEncoder(Rng& rng, int input_dim, int hidden_dim, int num_heads,
              int radius);

  /// `sk_feats` holds input features of the outermost layer S_k
  /// (stack.layer_nodes[k]); every inner layer's features are produced by
  /// attention. Returns hidden variables of S_0 [|S_0| x hidden_dim].
  nn::Var Forward(const graphs::BipartiteStack& stack,
                  const nn::Var& sk_feats) const;

  int radius() const { return static_cast<int>(layers_.size()); }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  std::vector<std::unique_ptr<TgatLayer>> layers_;
};

}  // namespace tgsim::core

#endif  // TGSIM_CORE_TGAT_ENCODER_H_
