#ifndef TGSIM_CORE_SERIALIZATION_H_
#define TGSIM_CORE_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/autograd.h"

namespace tgsim::core {

/// Portable text checkpoint for a trained parameter set.
///
/// Format (line-oriented, whitespace-separated):
///   tgsim-checkpoint 1
///   <num_tensors>
///   <rows> <cols> v v v ...      (one line per tensor, row-major, %.17g)
///
/// The parameter *order and shapes* are the contract: loading into a model
/// built with a different configuration is rejected with InvalidArgument.
/// Used by TgaeGenerator::SaveCheckpoint / LoadCheckpoint so a trained
/// simulator can be shipped without the training data.
Status SaveParameters(const std::vector<nn::Var>& params,
                      const std::string& path);

/// Loads a checkpoint into an *existing* parameter set (shapes must match).
Status LoadParameters(std::vector<nn::Var>& params, const std::string& path);

}  // namespace tgsim::core

#endif  // TGSIM_CORE_SERIALIZATION_H_
