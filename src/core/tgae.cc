#include "core/tgae.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "baselines/state_io.h"
#include "graph/bipartite.h"
#include "nn/kernels.h"
#include "sampling/samplers.h"
#include "serialize/serialization.h"

namespace tgsim::core {

namespace {

/// Insertion-ordered node -> dense-column map for the sparse decode paths:
/// `Add` assigns the next column to a first-seen node, `slot_of` answers
/// lookups in O(1). Shared by the training candidate set and the
/// generation support union.
class CandidateSet {
 public:
  explicit CandidateSet(int num_nodes)
      : slot_(static_cast<size_t>(num_nodes), -1) {}

  void Add(int v) {
    if (slot_[static_cast<size_t>(v)] < 0) {
      slot_[static_cast<size_t>(v)] = static_cast<int>(columns_.size());
      columns_.push_back(v);
    }
  }

  int slot_of(int v) const { return slot_[static_cast<size_t>(v)]; }
  const std::vector<int>& columns() const { return columns_; }

 private:
  std::vector<int> slot_;
  std::vector<int> columns_;
};

}  // namespace

TgaeConfig TgaeConfig::ForVariant(TgaeVariant v) {
  TgaeConfig c;
  switch (v) {
    case TgaeVariant::kFull:
      c.display_name = "TGAE";
      break;
    case TgaeVariant::kRandomWalk:
      c.neighbor_threshold = 1;
      c.display_name = "TGAE-g";
      break;
    case TgaeVariant::kNoTruncation:
      c.neighbor_threshold = 0;
      c.display_name = "TGAE-t";
      break;
    case TgaeVariant::kUniformSampling:
      c.degree_weighted_sampling = false;
      c.display_name = "TGAE-n";
      break;
    case TgaeVariant::kNonProbabilistic:
      c.probabilistic = false;
      c.display_name = "TGAE-p";
      break;
  }
  return c;
}

void TgaeConfig::DefineParams(config::ParamBinder& binder) {
  binder.Bind("embedding_dim", &embedding_dim,
              "d_in: node/time input feature dimension");
  binder.Bind("hidden_dim", &hidden_dim,
              "d_enc: hidden dimension after temporal graph attention");
  binder.Bind("num_heads", &num_heads, "attention heads (Eq. 3)");
  binder.Bind("radius", &radius, "k: ego-graph radius / stacked TGAT layers");
  binder.Bind("neighbor_threshold", &neighbor_threshold,
              "th: neighbor truncation threshold (0 disables, 1 = chains)");
  binder.Bind("time_window", &time_window,
              "t_N: temporal neighborhood radius for sampling/encoding");
  binder.Bind("generation_time_window", &generation_time_window,
              "t_N of the generation-time categorical support");
  binder.Bind("generation_ring_weight", &generation_ring_weight,
              "temporal-proximity prior on window-ring support neighbors");
  binder.Bind("batch_centers", &batch_centers,
              "n_s: sampled initial temporal nodes per step (Eq. 7)");
  binder.Bind("epochs", &epochs, "training epochs");
  binder.Bind("learning_rate", &learning_rate, "Adam learning rate");
  binder.Bind("kl_weight", &kl_weight, "KL term weight (Eq. 7)");
  binder.Bind("degree_weighted_sampling", &degree_weighted_sampling,
              "Eq. 2 degree-proportional initial sampling (false = TGAE-n)");
  binder.Bind("probabilistic", &probabilistic,
              "variational decoder (false = TGAE-p)");
  binder.Bind("tie_decoder", &tie_decoder,
              "tie W_dec to the node embedding table");
  binder.Bind("sparse_decoder", &sparse_decoder,
              "candidate-set decode: sampled-softmax training, "
              "support-union generation (dense n-wide decode when false)");
  binder.Bind("negative_samples", &negative_samples,
              "shared negative samples per batch for the sampled-softmax "
              "loss (sparse_decoder only)");
  binder.Bind("generation_chunk", &generation_chunk,
              "center-batch chunk size during generation");
}

TGSIM_CONFIG_IMPLEMENT_PARAMS(TgaeConfig)

std::vector<int> PathSumParents(const graphs::EgoGraph& ego) {
  // First-parent tree for the Alg. 2 path sums. Strictly layered edges
  // (depth[c] == depth[p] + 1) define the tree so paths cannot cycle.
  std::vector<int> parent(static_cast<size_t>(ego.size()), -1);
  for (auto [p, c] : ego.edges) {
    if (ego.depth[static_cast<size_t>(c)] !=
        ego.depth[static_cast<size_t>(p)] + 1)
      continue;
    if (parent[static_cast<size_t>(c)] == -1)
      parent[static_cast<size_t>(c)] = p;
  }
  // A node reachable only through non-strictly-layered edges has no tree
  // parent, which would silently degrade its path sum to "own z only".
  // Anchor it to any shallower-depth parent instead: depth still strictly
  // decreases along the chain, so the path reaches the center acyclically.
  for (auto [p, c] : ego.edges) {
    if (c == 0) continue;
    if (parent[static_cast<size_t>(c)] == -1 &&
        ego.depth[static_cast<size_t>(p)] <
            ego.depth[static_cast<size_t>(c)])
      parent[static_cast<size_t>(c)] = p;
  }
  return parent;
}

int NextUntakenNode(const std::vector<bool>& taken, int start) {
  const int n = static_cast<int>(taken.size());
  TGSIM_CHECK_GT(n, 0);
  TGSIM_CHECK(start >= 0 && start < n);
  for (int step = 0; step < n; ++step) {
    int v = start + step;
    if (v >= n) v -= n;
    if (!taken[static_cast<size_t>(v)]) return v;
  }
  return start;
}

TgaeGenerator::TgaeGenerator(TgaeConfig config) : config_(config) {}

TgaeGenerator::~TgaeGenerator() = default;

nn::Var TgaeGenerator::InputFeatures(
    const std::vector<graphs::TemporalNodeRef>& nodes) const {
  std::vector<int> node_idx(nodes.size());
  std::vector<int> time_idx(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    node_idx[i] = nodes[i].node;
    time_idx[i] = nodes[i].t;
  }
  return nn::Add(node_emb_->Forward(node_idx), time_emb_->Forward(time_idx));
}

TgaeGenerator::DecodedBatch TgaeGenerator::Encode(
    const std::vector<graphs::EgoGraph>& egos, bool centers_only,
    bool stochastic, Rng& rng) const {
  TGSIM_CHECK(!egos.empty());
  graphs::BipartiteStack stack =
      graphs::BuildBipartiteStack(egos, config_.radius);
  nn::Var sk_feats = InputFeatures(
      stack.layer_nodes[static_cast<size_t>(config_.radius)]);
  nn::Var h0 = encoder_->Forward(stack, sk_feats);  // |S_0| x d_enc.

  // Flatten the decoded node set: centers only, or every ego node.
  DecodedBatch batch;
  std::vector<int> center_of_row;      // Row -> index into h0.
  std::vector<int> z_src;              // Gather indices into Z.
  std::vector<int> z_dst;              // Row receiving that Z contribution.
  std::vector<graphs::TemporalNodeRef> z_nodes;  // Z row definitions.

  if (centers_only) {
    for (size_t e = 0; e < egos.size(); ++e) {
      batch.row_nodes.push_back(egos[e].center);
      center_of_row.push_back(stack.center_index[e]);
      // Row = h_center + z_center.
      z_src.push_back(static_cast<int>(z_nodes.size()));
      z_dst.push_back(static_cast<int>(batch.row_nodes.size()) - 1);
      z_nodes.push_back(egos[e].center);
    }
  } else {
    for (size_t e = 0; e < egos.size(); ++e) {
      const graphs::EgoGraph& ego = egos[e];
      std::vector<int> parent = PathSumParents(ego);
      int z_base = static_cast<int>(z_nodes.size());
      for (int j = 0; j < ego.size(); ++j)
        z_nodes.push_back(ego.nodes[static_cast<size_t>(j)]);
      for (int j = 0; j < ego.size(); ++j) {
        int row = static_cast<int>(batch.row_nodes.size());
        batch.row_nodes.push_back(ego.nodes[static_cast<size_t>(j)]);
        center_of_row.push_back(stack.center_index[e]);
        if (j == 0) {
          z_src.push_back(z_base);  // Center row: h_center + z_center.
          z_dst.push_back(row);
        } else {
          // Accumulate z along the path center -> j (excluding center).
          int cur = j;
          int guard = 0;
          while (cur > 0 && guard++ <= ego.size()) {
            z_src.push_back(z_base + cur);
            z_dst.push_back(row);
            cur = parent[static_cast<size_t>(cur)];
            if (cur < 0) break;
          }
        }
      }
    }
  }

  // Variational head over the Z node set (Alg. 2: MLP_mu / MLP_sigma).
  nn::Var x_z = InputFeatures(z_nodes);
  batch.mu = mlp_mu_->Forward(x_z);
  if (config_.probabilistic) {
    batch.logvar = mlp_sigma_->Forward(x_z);
  }
  nn::Var z = batch.mu;
  if (config_.probabilistic && stochastic) {
    nn::Var noise = nn::Var::Constant(
        nn::Tensor::Randn(rng, batch.mu.rows(), batch.mu.cols()));
    z = nn::Add(batch.mu,
                nn::Mul(nn::Exp(nn::Scale(batch.logvar, 0.5)), noise));
  }

  const int num_rows = static_cast<int>(batch.row_nodes.size());
  nn::Var rows_h = nn::GatherRows(h0, center_of_row);
  nn::Var z_contrib =
      nn::SegmentSum(nn::GatherRows(z, z_src), z_dst, num_rows);
  batch.rows = nn::Add(rows_h, z_contrib);
  return batch;
}

void TgaeGenerator::DecodeLogits(DecodedBatch& batch,
                                 const std::vector<int>* candidates) const {
  if (candidates == nullptr) {
    if (config_.tie_decoder) {
      batch.logits = nn::Add(
          nn::MatMul(batch.rows, nn::Transpose(node_emb_->table())), b_dec_);
    } else {
      batch.logits = nn::Add(nn::MatMul(batch.rows, w_dec_), b_dec_);
    }
    return;
  }
  // Candidate-set decode: slice the candidate columns out of the decoder
  // weight, so the matmul costs O(rows x |candidates| x d_enc). For the
  // tied decoder a row gather + transpose stays O(|candidates| x d_enc)
  // instead of transposing the whole n-row table. Both produce the exact
  // column values of the dense decode (same ascending-k accumulation).
  nn::Var w_cols =
      config_.tie_decoder
          ? nn::Transpose(nn::GatherRows(node_emb_->table(), *candidates))
          : nn::GatherCols(w_dec_, *candidates);
  batch.logits = nn::Add(nn::MatMul(batch.rows, w_cols),
                         nn::GatherCols(b_dec_, *candidates));
}

nn::SparseRowTargets TgaeGenerator::TargetRows(
    const std::vector<graphs::TemporalNodeRef>& row_nodes) const {
  nn::SparseRowTargets targets;
  targets.offsets.reserve(row_nodes.size() + 1);
  // Node -> entry slot of the current row; touched slots are reset after
  // each row so hub-sized neighborhoods dedup in O(k), not O(k^2).
  std::vector<int> slot(static_cast<size_t>(shape_.num_nodes), -1);
  for (size_t i = 0; i < row_nodes.size(); ++i) {
    // Directed adjacency row A_{u^t} (Eq. 6); temporal nodes that only
    // appear as destinations fall back to their full temporal neighborhood
    // so every decoded row receives signal.
    std::vector<graphs::TemporalNeighbor> nbrs = support_->OutNeighborhood(
        row_nodes[i].node, row_nodes[i].t, /*time_window=*/0);
    if (nbrs.empty()) {
      nbrs = support_->TemporalNeighborhood(row_nodes[i].node,
                                            row_nodes[i].t,
                                            /*time_window=*/0);
    }
    if (!nbrs.empty()) {
      double w = 1.0 / static_cast<double>(nbrs.size());
      const int row_begin = static_cast<int>(targets.cols.size());
      for (const auto& nb : nbrs) {
        // Repeated neighbors accumulate +w per occurrence, reproducing the
        // dense adjacency-row build bit for bit when scattered.
        int& e = slot[static_cast<size_t>(nb.node)];
        if (e < 0) {
          e = static_cast<int>(targets.cols.size());
          targets.AppendEntry(nb.node, w);
        } else {
          targets.weights[static_cast<size_t>(e)] += w;
        }
      }
      for (int e = row_begin; e < static_cast<int>(targets.cols.size());
           ++e)
        slot[static_cast<size_t>(targets.cols[static_cast<size_t>(e)])] = -1;
    }
    targets.FinishRow();
  }
  return targets;
}

const std::vector<nn::Scalar>& TgaeGenerator::DecodePanel(int d) const {
  const int n = shape_.num_nodes;
  const int blocks = (n + 3) / 4;
  if (decode_panel_valid_) return decode_panel_;
  decode_panel_.assign(static_cast<size_t>(blocks) * d * 4, 0.0);
  if (config_.tie_decoder) {
    // Tied decoder: column v of W_dec is row v of the embedding table.
    const nn::Tensor& table = node_emb_->table().value();
    for (int v = 0; v < n; ++v) {
      const nn::Scalar* col = table.row(v);
      nn::Scalar* block = decode_panel_.data() +
                          static_cast<size_t>(v / 4) * d * 4 + (v % 4);
      for (int k = 0; k < d; ++k) block[4 * k] = col[k];
    }
  } else {
    const nn::Tensor& w = w_dec_.value();
    for (int k = 0; k < d; ++k) {
      const nn::Scalar* wk = w.row(k);
      for (int v = 0; v < n; ++v)
        decode_panel_[static_cast<size_t>(v / 4) * d * 4 +
                      static_cast<size_t>(k) * 4 + (v % 4)] = wk[v];
    }
  }
  decode_panel_valid_ = true;
  return decode_panel_;
}

std::vector<nn::Scalar> TgaeGenerator::DenseLogitsRow(const nn::Tensor& rows,
                                                      int r) const {
  const int n = shape_.num_nodes;
  const int d = rows.cols();
  const nn::Scalar* h = rows.row(r);
  const nn::Tensor& bias = b_dec_.value();
  // One DotPanel4 call scores four columns from a contiguous k-major
  // panel block: each output keeps its own ascending-k chain, so the
  // logits stay bit-identical to the strided per-column loop — and to the
  // MatMul columns of the dense decode (the sparse-vs-dense generation
  // pin depends on it) — while the loads run contiguous and four chains
  // overlap instead of one.
  const std::vector<nn::Scalar>& panel = DecodePanel(d);
  std::vector<nn::Scalar> out(static_cast<size_t>(4 * ((n + 3) / 4)), 0.0);
  for (int v = 0; v < n; v += 4)
    nn::kernels::DotPanel4(h,
                           panel.data() + static_cast<size_t>(v / 4) * d * 4,
                           d, out.data() + v);
  out.resize(static_cast<size_t>(n));  // drop the zero-padded tail columns
  nn::kernels::AddRow(out.data(), bias.row(0), n);
  return out;
}

void TgaeGenerator::BuildSamplers() {
  graphs::EgoGraphConfig ego_cfg;
  ego_cfg.radius = config_.radius;
  ego_cfg.neighbor_threshold = config_.neighbor_threshold;
  ego_cfg.time_window = config_.time_window;
  ego_sampler_ =
      std::make_unique<graphs::EgoGraphSampler>(support_.get(), ego_cfg);
  initial_sampler_ = std::make_unique<graphs::InitialNodeSampler>(
      support_.get(), config_.time_window,
      /*uniform=*/!config_.degree_weighted_sampling);
}

void TgaeGenerator::BuildModel(Rng& rng) {
  const int n = shape_.num_nodes;
  node_emb_ = std::make_unique<nn::Embedding>(rng, n, config_.embedding_dim);
  time_emb_ = std::make_unique<nn::Embedding>(rng, shape_.num_timestamps,
                                              config_.embedding_dim);
  encoder_ = std::make_unique<TgatEncoder>(
      rng, config_.embedding_dim, config_.hidden_dim, config_.num_heads,
      config_.radius);
  mlp_mu_ = std::make_unique<nn::Mlp>(
      rng,
      std::vector<int>{config_.embedding_dim, config_.hidden_dim,
                       config_.hidden_dim},
      nn::Activation::kTanh);
  mlp_sigma_ = std::make_unique<nn::Mlp>(
      rng,
      std::vector<int>{config_.embedding_dim, config_.hidden_dim,
                       config_.hidden_dim},
      nn::Activation::kTanh);
  Rng init = rng.Fork();
  if (config_.tie_decoder) {
    // Tied decoder shares the node embedding table; the row representation
    // and the embeddings must live in the same space.
    TGSIM_CHECK_EQ(config_.hidden_dim, config_.embedding_dim);
  } else {
    w_dec_ = nn::Var::Param(
        nn::Tensor::GlorotUniform(init, config_.hidden_dim, n));
  }
  b_dec_ = nn::Var::Param(nn::Tensor::Zeros(1, n));

  params_.clear();
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(node_emb_.get()),
        static_cast<const nn::Module*>(time_emb_.get()),
        static_cast<const nn::Module*>(encoder_.get()),
        static_cast<const nn::Module*>(mlp_mu_.get()),
        static_cast<const nn::Module*>(mlp_sigma_.get())})
    params_.insert(params_.end(), m->params().begin(), m->params().end());
  if (!config_.tie_decoder) params_.push_back(w_dec_);
  params_.push_back(b_dec_);
}

void TgaeGenerator::Fit(const graphs::TemporalGraph& observed, Rng& rng) {
  // The support copy backs training targets, ego sampling and generation;
  // the caller's graph is not referenced after Fit returns.
  support_ = std::make_unique<graphs::TemporalGraph>(observed);
  shape_.CaptureFrom(*support_);
  BuildSamplers();
  BuildModel(rng);
  TrainEpochs(config_.epochs, *initial_sampler_, rng);
}

void TgaeGenerator::TrainEpochs(int epochs,
                                const graphs::InitialNodeSampler& center_dist,
                                Rng& rng) {
  const int n = shape_.num_nodes;
  nn::Adam opt(params_, config_.learning_rate);

  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::vector<graphs::TemporalNodeRef> centers =
        center_dist.Sample(config_.batch_centers, rng);
    std::vector<graphs::EgoGraph> egos;
    egos.reserve(centers.size());
    for (const auto& c : centers) egos.push_back(ego_sampler_->Sample(c, rng));

    opt.ZeroGrad();
    DecodedBatch batch = Encode(egos, /*centers_only=*/false,
                                /*stochastic=*/true, rng);
    nn::SparseRowTargets targets = TargetRows(batch.row_nodes);
    nn::Var loss;
    if (config_.sparse_decoder) {
      // Candidate set: the batch's positives plus `negative_samples`
      // shared uniform negatives, so the sampled softmax scores each row
      // on O(positives + negatives) columns instead of all n.
      CandidateSet candidates(n);
      for (int c : targets.cols) candidates.Add(c);
      for (int s = 0; s < config_.negative_samples; ++s)
        candidates.Add(static_cast<int>(rng.UniformInt(n)));
      // Remap the targets from global node ids to candidate space.
      for (int& c : targets.cols) c = candidates.slot_of(c);
      DecodeLogits(batch, &candidates.columns());
      loss = nn::SampledSoftmaxCrossEntropy(batch.logits, targets);
    } else {
      DecodeLogits(batch, /*candidates=*/nullptr);
      nn::Tensor dense(static_cast<int>(batch.row_nodes.size()), n);
      for (int r = 0; r < targets.rows(); ++r) {
        for (int e = targets.offsets[static_cast<size_t>(r)];
             e < targets.offsets[static_cast<size_t>(r) + 1]; ++e)
          dense.at(r, targets.cols[static_cast<size_t>(e)]) =
              targets.weights[static_cast<size_t>(e)];
      }
      loss = nn::RowCrossEntropyWithLogits(batch.logits, dense);
    }
    if (config_.probabilistic) {
      loss = nn::Add(loss, nn::Scale(nn::KlToStandardNormal(
                                         batch.mu, batch.logvar),
                                     config_.kl_weight));
    }
    nn::Backward(loss);
    opt.ClipGradNorm(5.0);
    opt.Step();
    last_epoch_loss_ = loss.item();
  }
  decode_panel_valid_ = false;  // decoder weights moved; repack lazily
}

Status TgaeGenerator::Update(const graphs::TemporalGraph& delta, Rng& rng) {
  Status ok =
      baselines::RequireUpdatable(support_ != nullptr, delta, shape_, name());
  if (!ok.ok()) return ok;
  if (delta.num_edges() == 0) return Status::Ok();

  support_ = std::make_unique<graphs::TemporalGraph>(
      baselines::MergeSupportGraph(*support_, delta));
  shape_.CaptureFrom(*support_);
  BuildSamplers();

  // Warm start on the merged support: a bounded number of epochs whose
  // batch centers come from a recency-biased variant of the Eq. 2 initial
  // distribution — occurrence weights are scaled by exp((t - (T-1)) / tau),
  // so the updated (recent) snapshots dominate the gradient signal while
  // earlier snapshots still appear and guard against forgetting.
  const std::vector<graphs::TemporalNodeRef>& occ =
      initial_sampler_->occurrences();
  const std::vector<double>& base = initial_sampler_->weights();
  const double tau =
      std::max(1.0, static_cast<double>(shape_.num_timestamps) / 4.0);
  const double horizon = static_cast<double>(shape_.num_timestamps - 1);
  std::vector<double> biased(occ.size());
  for (size_t i = 0; i < occ.size(); ++i) {
    const double w = config_.degree_weighted_sampling ? base[i] : 1.0;
    biased[i] =
        w * std::exp((static_cast<double>(occ[i].t) - horizon) / tau);
  }
  graphs::InitialNodeSampler recent(occ, std::move(biased));

  const int warm_epochs = std::max(
      1, std::min(config_.epochs, baselines::kUpdateWarmSnapshotLimit));
  TrainEpochs(warm_epochs, recent, rng);
  return Status::Ok();
}

int64_t TgaeGenerator::ResidentStateBytes() const {
  int64_t total = static_cast<int64_t>(sizeof(*this)) +
                  baselines::ParamsResidentBytes(params_) +
                  static_cast<int64_t>(shape_.edges_per_timestamp.capacity() *
                                       sizeof(int64_t));
  if (support_) {
    total += static_cast<int64_t>(support_->num_edges()) *
             static_cast<int64_t>(sizeof(graphs::TemporalEdge) +
                                  2 * sizeof(int64_t));
  }
  if (initial_sampler_) {
    total += static_cast<int64_t>(
        initial_sampler_->occurrences().capacity() *
            sizeof(graphs::TemporalNodeRef) +
        initial_sampler_->weights().capacity() * sizeof(double) +
        initial_sampler_->alias().size() *
            (sizeof(double) + sizeof(int64_t)));
  }
  return total;
}

Status TgaeGenerator::SaveCheckpoint(const std::string& path) const {
  if (params_.empty())
    return Status::InvalidArgument("SaveCheckpoint requires a prior Fit()");
  return serialize::SaveParameters(params_, path);
}

Status TgaeGenerator::LoadCheckpoint(const std::string& path) {
  if (params_.empty())
    return Status::InvalidArgument(
        "LoadCheckpoint requires a prior Fit() to build the parameter "
        "structures");
  decode_panel_valid_ = false;
  return serialize::LoadParameters(params_, path);
}

Status TgaeGenerator::SaveState(std::ostream& out) const {
  Status fitted = baselines::RequireFitted(support_ != nullptr, name());
  if (!fitted.ok()) return fitted;
  serialize::ArchiveWriter writer(out);
  baselines::WriteShape(writer, shape_);
  baselines::WriteSupportGraph(writer, "support", *support_);
  writer.BeginSection("params");
  serialize::WriteParams(writer, params_);
  return writer.Finish();
}

Status TgaeGenerator::LoadState(std::istream& in) {
  Result<serialize::ArchiveReader> parsed =
      serialize::ArchiveReader::Parse(in);
  if (!parsed.ok()) return parsed.status();
  const serialize::ArchiveReader& reader = parsed.value();
  baselines::ObservedShape shape;
  Status s = baselines::ReadShape(reader, shape);
  if (!s.ok()) return s;
  Result<graphs::TemporalGraph> support =
      baselines::ReadSupportGraph(reader, "support");
  if (!support.ok()) return support.status();

  shape_ = std::move(shape);
  support_ =
      std::make_unique<graphs::TemporalGraph>(std::move(support).value());
  BuildSamplers();
  // Values come from the archive; the init rng only shapes the modules.
  Rng init(0);
  BuildModel(init);
  decode_panel_valid_ = false;
  return serialize::ReadParamsInto(reader, "params", params_);
}

graphs::TemporalGraph TgaeGenerator::Generate(Rng& rng) {
  TGSIM_CHECK(support_ != nullptr);  // Requires a Fit() or LoadState().
  const int n = shape_.num_nodes;
  graphs::TemporalGraph out(n, shape_.num_timestamps);

  for (int t = 0; t < shape_.num_timestamps; ++t) {
    // Active temporal nodes at t with their observed out-edge budgets
    // (generation stops exactly at the observed edge amount, Section IV-G).
    std::vector<graphs::TemporalNodeRef> occ;
    std::vector<int> budget;
    {
      auto span = support_->EdgesAt(static_cast<graphs::Timestamp>(t));
      std::vector<int> count(static_cast<size_t>(n), 0);
      for (const auto& e : span) ++count[static_cast<size_t>(e.u)];
      for (int u = 0; u < n; ++u) {
        if (count[static_cast<size_t>(u)] > 0) {
          occ.push_back({static_cast<graphs::NodeId>(u),
                         static_cast<graphs::Timestamp>(t)});
          budget.push_back(count[static_cast<size_t>(u)]);
        }
      }
    }
    // Chunked decoding keeps peak memory at O(chunk x n) dense,
    // O(chunk x |support union|) sparse.
    for (size_t base = 0; base < occ.size();
         base += static_cast<size_t>(config_.generation_chunk)) {
      size_t end = std::min(
          occ.size(), base + static_cast<size_t>(config_.generation_chunk));
      std::vector<graphs::EgoGraph> egos;
      for (size_t i = base; i < end; ++i)
        egos.push_back(ego_sampler_->Sample(occ[i], rng));

      // Support sets first (pure observed-graph lookups, no rng): paper
      // Section IV-G normalizes the categorical over the temporal
      // neighborhood N(u^t) — scores outside the neighborhood support are
      // not eligible. The support is directed (the row's budget is the
      // observed out-degree). Neighbors from the surrounding window ring
      // carry a fixed temporal-proximity discount: the decoder's output
      // classes are per-node (that is TGAE's O(n^2 T) advantage over
      // TagGen's O(n^2 T^2) state space), so within-window time preference
      // cannot be learned and is supplied as a prior (DESIGN.md §2).
      const size_t chunk_rows = end - base;
      std::vector<std::vector<graphs::NodeId>> supports(chunk_rows);
      std::vector<std::vector<bool>> exacts(chunk_rows);
      for (size_t i = base; i < end; ++i) {
        const graphs::NodeId u = occ[i].node;
        std::vector<graphs::NodeId>& support = supports[i - base];
        std::vector<bool>& is_exact = exacts[i - base];
        std::vector<graphs::TemporalNeighbor> nbrs =
            support_->OutNeighborhood(u, occ[i].t,
                                       config_.generation_time_window);
        std::unordered_set<graphs::NodeId> seen;
        for (const auto& nb : nbrs) {
          if (nb.node == u) continue;
          auto [it, inserted] = seen.insert(nb.node);
          if (inserted) {
            support.push_back(nb.node);
            is_exact.push_back(nb.t == occ[i].t);
          } else if (nb.t == occ[i].t) {
            for (size_t c = 0; c < support.size(); ++c)
              if (support[c] == nb.node) is_exact[c] = true;
          }
        }
      }

      DecodedBatch batch = Encode(egos, /*centers_only=*/true,
                                  /*stochastic=*/false, rng);
      // Sparse decode scores only the union of the chunk's support
      // columns. The dense decode scores all n columns (the paper-preset
      // default).
      CandidateSet candidates(config_.sparse_decoder ? n : 0);
      if (config_.sparse_decoder) {
        for (const auto& support : supports)
          for (graphs::NodeId v : support) candidates.Add(v);
        DecodeLogits(batch, &candidates.columns());
      } else {
        DecodeLogits(batch, /*candidates=*/nullptr);
      }
      const nn::Tensor& logits = batch.logits.value();

      for (size_t i = base; i < end; ++i) {
        const int row = static_cast<int>(i - base);
        const graphs::NodeId u = occ[i].node;
        const std::vector<graphs::NodeId>& support = supports[i - base];
        const std::vector<bool>& is_exact = exacts[i - base];

        // Support logits come out of the decoded tensor either way: the
        // sparse decode scored exactly the support-union columns, and its
        // values match the dense decode's columns bit for bit.
        std::vector<nn::Scalar> sup_logits(support.size());
        for (size_t c = 0; c < support.size(); ++c)
          sup_logits[c] = config_.sparse_decoder
                              ? logits.at(row, candidates.slot_of(support[c]))
                              : logits.at(row, support[c]);

        // The categorical is normalized on the support directly: a
        // stabilized exp over the support logits times the ring prior. (A
        // full-row softmax restricted to the support renormalizes to the
        // same distribution; this skips the n-wide pass.)
        auto support_weights = [&]() {
          std::vector<double> w(support.size());
          if (!support.empty()) {
            const int count = static_cast<int>(support.size());
            const nn::Scalar m = nn::kernels::RowMax(sup_logits.data(),
                                                     count);
            nn::kernels::ExpRow(sup_logits.data(), m, w.data(), count);
            for (size_t c = 0; c < support.size(); ++c)
              if (!is_exact[c]) w[c] *= config_.generation_ring_weight;
          }
          return w;
        };
        // Full-row probabilities, needed only by the empty-support
        // fallback: the dense decode already holds the row; the sparse
        // path reconstructs it on demand (O(n d) for the rare row instead
        // of every row).
        auto full_row_probs = [&]() {
          std::span<const nn::Scalar> logit_row = logits.RowSpan(row);
          std::vector<nn::Scalar> p =
              config_.sparse_decoder
                  ? DenseLogitsRow(batch.rows.value(), row)
                  : std::vector<nn::Scalar>(logit_row.begin(),
                                            logit_row.end());
          const int count = static_cast<int>(p.size());
          const nn::Scalar m = nn::kernels::RowMax(p.data(), count);
          // ExpRowSum in place (x == dst is full-alias-safe).
          const nn::Scalar z = nn::kernels::ExpRowSum(p.data(), m, p.data(),
                                                      count);
          nn::kernels::DivRow(p.data(), z, count);
          return p;
        };

        // Categorical sampling without replacement (paper Section IV-G);
        // budgets beyond the support fall back to the full score row.
        std::vector<double> weights = support_weights();
        int wanted = std::min(budget[i], n - 1);
        int from_support =
            std::min(wanted, static_cast<int>(support.size()));
        std::vector<bool> taken(static_cast<size_t>(n), false);
        taken[static_cast<size_t>(u)] = true;
        // Sum-tree draws: O(log s) per draw + consume, replacing the old
        // O(s) WeightedChoice scan followed by an O(s) all-zero rescan on
        // every draw. Internal sums are exact child sums, so total()
        // reaches exactly 0.0 once every entry is consumed — the loop
        // needs no epsilon and no rescan.
        sampling::TreeSampler tree(weights);
        for (int d = 0; d < from_support; ++d) {
          size_t pick = tree.Draw(rng);
          graphs::NodeId v = support[pick];
          out.AddEdge(u, v, static_cast<graphs::Timestamp>(t));
          taken[static_cast<size_t>(v)] = true;
          tree.Update(pick, 0.0);
          if (!(tree.total() > 0.0)) {
            from_support = d + 1;
            break;
          }
        }
        if (from_support < wanted) {
          // The observed stream can carry more edges at (u, t) than there
          // are distinct neighbors (repeated interactions). Once the
          // support is exhausted, the remainder re-samples the support
          // with replacement, reproducing duplicate temporal edges; only
          // an empty support falls back to the full score row.
          if (!support.empty()) {
            const sampling::TreeSampler replay(support_weights());
            for (int d = from_support; d < wanted; ++d) {
              graphs::NodeId v = support[replay.Draw(rng)];
              out.AddEdge(u, v, static_cast<graphs::Timestamp>(t));
            }
          } else {
            std::vector<nn::Scalar> probs = full_row_probs();
            std::vector<double> full(static_cast<size_t>(n));
            // Running remaining-mass counter: subtracting each consumed
            // entry replaces the old O(n) re-sum before every draw.
            double remaining = 0.0;
            for (int v = 0; v < n; ++v) {
              const double w = taken[static_cast<size_t>(v)]
                                   ? 0.0
                                   : probs[static_cast<size_t>(v)];
              full[static_cast<size_t>(v)] = w;
              remaining += w;
            }
            for (int d = from_support; d < wanted; ++d) {
              graphs::NodeId v;
              if (remaining <= 1e-15) {
                // All remaining probability mass sits on taken nodes:
                // draw uniformly and scan to the next untaken node, so a
                // collision can never emit a duplicate destination or a
                // self-loop (u itself is marked taken).
                v = static_cast<graphs::NodeId>(NextUntakenNode(
                    taken,
                    static_cast<int>(rng.UniformInt(static_cast<int64_t>(n)))));
              } else {
                v = static_cast<graphs::NodeId>(
                    sampling::WeightedPick(full, rng));
              }
              out.AddEdge(u, v, static_cast<graphs::Timestamp>(t));
              taken[static_cast<size_t>(v)] = true;
              remaining -= full[static_cast<size_t>(v)];
              full[static_cast<size_t>(v)] = 0.0;
            }
          }
        }
      }
    }
  }
  out.Finalize();
  return out;
}

}  // namespace tgsim::core
