#ifndef TGSIM_EVAL_ARTIFACT_H_
#define TGSIM_EVAL_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "baselines/generator.h"
#include "common/rng.h"
#include "common/status.h"
#include "config/param_map.h"

namespace tgsim::eval {

/// Registry-backed model artifacts: a fitted generator saved as one
/// self-describing file. The artifact embeds the registry method name and
/// the parameter overlay the generator was constructed with, followed by
/// the generator's own fitted state (SaveState), so LoadArtifact rebuilds
/// a serving-ready generator with nothing but the file — fit once, ship
/// the artifact, generate many times (no training data needed).
///
/// File layout: two serialize:: archives back to back. The first holds the
/// descriptor (section "artifact": format version, method, params); the
/// second is whatever the method's SaveState writes.

/// Bump when the descriptor layout changes incompatibly. Method-state
/// compatibility is governed by serialize::kArchiveFormatVersion plus each
/// generator's own section contract. Version history:
///   1 — method + parameter overlay.
///   2 — adds the update lineage (base fit seed, update count/epochs);
///       version-1 readers reject version-2 artifacts by the exact-match
///       gate below, and vice versa.
inline constexpr int kArtifactVersion = 2;

/// Update provenance carried by every artifact: which seed produced the
/// base fit, and how many Update(delta) batches have been absorbed since.
/// A freshly fitted artifact has update_count == 0. `update_epochs` totals
/// the warm-start epoch budget granted across those updates
/// (kUpdateWarmSnapshotLimit per batch; the statistical family's updates
/// are closed-form merges that ignore the budget).
struct UpdateLineage {
  uint64_t base_fit_seed = 0;
  int64_t update_count = 0;
  int64_t update_epochs = 0;
};

/// A loaded artifact: the descriptor plus the reconstructed generator.
struct LoadedArtifact {
  std::string method;       // Registry name, e.g. "TGAE".
  config::ParamMap params;  // Construction overlay (may carry `preset`).
  UpdateLineage lineage;    // Fit/update provenance (descriptor v2).
  std::unique_ptr<baselines::TemporalGraphGenerator> generator;
};

/// Saves `gen` (which must have been fitted) to `path`. `method` must be
/// the registered name the generator was built from and `params` the
/// parameter overlay passed to MakeGenerator — LoadArtifact replays both
/// to reconstruct an identically configured generator. Unknown method
/// names return NotFound with a nearest-name suggestion; an unfitted
/// generator surfaces the method's own InvalidArgument. `lineage` records
/// the update provenance; `tgsim fit` passes the fit seed with zero
/// updates, `tgsim update` rewrites it with the incremented counters.
Status SaveArtifact(const baselines::TemporalGraphGenerator& gen,
                    const std::string& method,
                    const config::ParamMap& params, const std::string& path,
                    const UpdateLineage& lineage = {});

/// Loads an artifact written by SaveArtifact: reads the descriptor,
/// constructs the generator through the registry (NotFound with a
/// suggestion for unknown methods — never a CHECK) and restores its state.
/// The loaded generator's Generate(seed) is bit-identical to the fitted
/// original's.
Result<LoadedArtifact> LoadArtifact(const std::string& path);

/// Independent deterministic streams for the fit and generate halves of a
/// run, derived as Rng(seed).Split(2). `tgsim fit` consumes only the fit
/// stream; `tgsim generate --model` and the serve daemon consume only the
/// generate stream — which is what makes fit-once + generate-from-artifact
/// byte-reproduce a single in-process fit+generate run with the same seed,
/// whether the generate half runs in the CLI or behind `tgsim serve`.
struct SeedStreams {
  Rng fit;
  Rng generate;
};

SeedStreams MakeSeedStreams(uint64_t seed);

}  // namespace tgsim::eval

#endif  // TGSIM_EVAL_ARTIFACT_H_
