#include "eval/runner.h"

#include <cstdio>

#include "common/memory_tracker.h"
#include "common/stopwatch.h"
#include "metrics/motifs.h"

namespace tgsim::eval {

RunResult RunMethod(const std::string& method,
                    const graphs::TemporalGraph& observed,
                    const RunOptions& options) {
  RunResult result;
  result.method = method;

  std::unique_ptr<baselines::TemporalGraphGenerator> generator =
      MakeGenerator(method, options.effort);

  if (options.paper_scale.has_value()) {
    const datasets::DatasetSpec& spec = *options.paper_scale;
    int64_t estimate = generator->EstimatePaperMemoryBytes(
        spec.num_nodes, spec.num_edges, spec.num_timestamps);
    if (estimate > options.memory_budget_bytes) {
      result.oom = true;
      return result;
    }
  }

  Rng rng(options.seed);
  MemoryUsageScope mem_scope;

  Stopwatch fit_watch;
  generator->Fit(observed, rng);
  result.fit_seconds = fit_watch.ElapsedSeconds();

  Stopwatch gen_watch;
  graphs::TemporalGraph generated = generator->Generate(rng);
  result.generate_seconds = gen_watch.ElapsedSeconds();
  result.peak_mib = mem_scope.PeakMiB();

  if (options.compute_graph_scores) {
    result.scores = metrics::ScoreAllMetrics(observed, generated,
                                             options.metric_stride);
  }
  if (options.compute_motif_mmd) {
    result.motif_mmd =
        metrics::MotifMmd(observed, generated, options.motif_delta,
                          options.mmd_sigma, options.motif_max_triples);
  }
  return result;
}

std::string FormatCell(double value, bool oom) {
  if (oom) return "OOM";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2E", value);
  return buf;
}

}  // namespace tgsim::eval
