#include "eval/runner.h"

#include <cstdio>

#include "common/memory_tracker.h"
#include "common/stopwatch.h"
#include "metrics/motifs.h"
#include "parallel/parallel_for.h"

namespace tgsim::eval {

RunResult RunMethod(const std::string& method,
                    const graphs::TemporalGraph& observed,
                    const RunOptions& options) {
  Rng rng(options.seed);
  return RunMethod(method, observed, options, rng);
}

RunResult RunMethod(const std::string& method,
                    const graphs::TemporalGraph& observed,
                    const RunOptions& options, Rng& rng) {
  RunResult result;
  result.method = method;

  std::unique_ptr<baselines::TemporalGraphGenerator> generator =
      MakeGenerator(method, options.effort);

  if (options.paper_scale.has_value()) {
    const datasets::DatasetSpec& spec = *options.paper_scale;
    int64_t estimate = generator->EstimatePaperMemoryBytes(
        spec.num_nodes, spec.num_edges, spec.num_timestamps);
    if (estimate > options.memory_budget_bytes) {
      result.oom = true;
      return result;
    }
  }

  MemoryUsageScope mem_scope;

  Stopwatch fit_watch;
  generator->Fit(observed, rng);
  result.fit_seconds = fit_watch.ElapsedSeconds();

  Stopwatch gen_watch;
  graphs::TemporalGraph generated = generator->Generate(rng);
  result.generate_seconds = gen_watch.ElapsedSeconds();
  result.peak_mib = mem_scope.PeakMiB();

  if (options.compute_graph_scores) {
    result.scores = metrics::ScoreAllMetrics(observed, generated,
                                             options.metric_stride);
  }
  if (options.compute_motif_mmd) {
    result.motif_mmd =
        metrics::MotifMmd(observed, generated, options.motif_delta,
                          options.mmd_sigma, options.motif_max_triples);
  }
  return result;
}

std::vector<RunResult> RunCells(const std::vector<RunCell>& cells,
                                uint64_t master_seed) {
  const int64_t n = static_cast<int64_t>(cells.size());
  std::vector<RunResult> results(cells.size());
  if (n == 0) return results;
  // Split the master stream up front (serial, order-fixed), then run cells
  // concurrently with grain 1: cell i always consumes stream i and writes
  // slot i, so the result vector is bit-identical to the serial loop.
  std::vector<Rng> rngs = Rng(master_seed).Split(cells.size());
  parallel::ParallelFor(0, n, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      const RunCell& cell = cells[static_cast<size_t>(i)];
      TGSIM_CHECK(cell.observed != nullptr);
      results[static_cast<size_t>(i)] =
          RunMethod(cell.method, *cell.observed, cell.options,
                    rngs[static_cast<size_t>(i)]);
    }
  });
  return results;
}

std::string FormatCell(double value, bool oom) {
  if (oom) return "OOM";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2E", value);
  return buf;
}

}  // namespace tgsim::eval
