#include "eval/runner.h"

#include <cstdio>
#include <utility>

#include "common/memory_tracker.h"
#include "common/stopwatch.h"
#include "metrics/motifs.h"
#include "parallel/parallel_for.h"

namespace tgsim::eval {

namespace {

/// Resolves the registry parameters of one run: explicit method_params win,
/// options.preset fills in the preset when none is given.
Result<std::unique_ptr<baselines::TemporalGraphGenerator>> BuildGenerator(
    const std::string& method, const RunOptions& options) {
  config::ParamMap params = options.method_params;
  if (!params.Has("preset")) params.Override("preset", options.preset);
  return MakeGenerator(method, params);
}

/// The fit+generate+score body shared by RunMethod and RunCells, applied to
/// an already-constructed generator.
RunResult RunConstructed(baselines::TemporalGraphGenerator& generator,
                         const std::string& method,
                         const graphs::TemporalGraph& observed,
                         const RunOptions& options, Rng& rng) {
  RunResult result;
  result.method = method;

  if (options.paper_scale.has_value()) {
    const datasets::DatasetSpec& spec = *options.paper_scale;
    int64_t estimate = generator.EstimatePaperMemoryBytes(
        spec.num_nodes, spec.num_edges, spec.num_timestamps);
    if (estimate > options.memory_budget_bytes) {
      result.oom = true;
      return result;
    }
  }

  MemoryUsageScope mem_scope;

  Stopwatch fit_watch;
  generator.Fit(observed, rng);
  result.fit_seconds = fit_watch.ElapsedSeconds();

  Stopwatch gen_watch;
  graphs::TemporalGraph generated = generator.Generate(rng);
  result.generate_seconds = gen_watch.ElapsedSeconds();
  result.peak_mib = mem_scope.PeakMiB();

  if (options.compute_graph_scores) {
    result.scores = metrics::ScoreAllMetrics(observed, generated,
                                             options.metric_stride);
  }
  if (options.compute_motif_mmd) {
    result.motif_mmd =
        metrics::MotifMmd(observed, generated, options.motif_delta,
                          options.mmd_sigma, options.motif_max_triples);
  }
  return result;
}

}  // namespace

Result<RunResult> RunMethod(const std::string& method,
                            const graphs::TemporalGraph& observed,
                            const RunOptions& options) {
  Rng rng(options.seed);
  return RunMethod(method, observed, options, rng);
}

Result<RunResult> RunMethod(const std::string& method,
                            const graphs::TemporalGraph& observed,
                            const RunOptions& options, Rng& rng) {
  auto generator = BuildGenerator(method, options);
  if (!generator.ok()) return generator.status();
  return RunConstructed(*generator.value(), method, observed, options, rng);
}

Result<std::vector<RunResult>> RunCells(const std::vector<RunCell>& cells,
                                        uint64_t master_seed) {
  const int64_t n = static_cast<int64_t>(cells.size());
  std::vector<RunResult> results(cells.size());
  if (n == 0) return results;

  // Construct every generator serially up front: the whole matrix is
  // validated through the registry before any cell spends time fitting,
  // and the parallel region below never touches the registration table.
  std::vector<std::unique_ptr<baselines::TemporalGraphGenerator>> generators;
  generators.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    TGSIM_CHECK(cells[i].observed != nullptr);
    auto generator = BuildGenerator(cells[i].method, cells[i].options);
    if (!generator.ok())
      return Status(generator.status().code(),
                    "cell " + std::to_string(i) + ": " +
                        generator.status().message());
    generators.push_back(std::move(generator).value());
  }

  // Split the master stream up front (serial, order-fixed), then run cells
  // concurrently with grain 1: cell i always consumes stream i and writes
  // slot i, so the result vector is bit-identical to the serial loop.
  std::vector<Rng> rngs = Rng(master_seed).Split(cells.size());
  parallel::ParallelFor(0, n, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      const RunCell& cell = cells[static_cast<size_t>(i)];
      results[static_cast<size_t>(i)] = RunConstructed(
          *generators[static_cast<size_t>(i)], cell.method, *cell.observed,
          cell.options, rngs[static_cast<size_t>(i)]);
    }
  });
  return results;
}

std::string FormatCell(double value, bool oom) {
  if (oom) return "OOM";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2E", value);
  return buf;
}

}  // namespace tgsim::eval
