#include "eval/artifact.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "eval/registry.h"
#include "serialize/serialization.h"

namespace tgsim::eval {

namespace {

/// Descriptor field names of the i-th parameter entry. Built by appending
/// (not `"..." + std::to_string(i)`) to sidestep a GCC 12 -Wrestrict
/// false positive on const char* + std::string&&.
std::string ParamKeyField(int64_t i) {
  std::string name = "param_key";
  name += std::to_string(i);
  return name;
}

std::string ParamValueField(int64_t i) {
  std::string name = "param_value";
  name += std::to_string(i);
  return name;
}

/// Writes the descriptor + generator state; split out so SaveArtifact can
/// close the stream before cleaning up a half-written file on error.
Status WriteArtifactFile(const baselines::TemporalGraphGenerator& gen,
                         const std::string& method,
                         const config::ParamMap& params,
                         const std::string& path,
                         const UpdateLineage& lineage) {
  std::ofstream out(path);
  if (!out.is_open())
    return Status::IoError("cannot write artifact: " + path);

  serialize::ArchiveWriter writer(out);
  writer.BeginSection("artifact");
  writer.WriteInt("artifact_version", kArtifactVersion);
  writer.WriteString("method", method);
  // v2 lineage: fit/update provenance (see UpdateLineage).
  writer.WriteInt("base_fit_seed",
                  static_cast<int64_t>(lineage.base_fit_seed));
  writer.WriteInt("update_count", lineage.update_count);
  writer.WriteInt("update_epochs", lineage.update_epochs);
  // One key/value string pair per parameter: values are length-prefixed
  // raw bytes, so overlays survive whitespace (and anything else) intact.
  std::vector<std::string> keys = params.Keys();
  writer.WriteInt("param_count", static_cast<int64_t>(keys.size()));
  for (size_t i = 0; i < keys.size(); ++i) {
    writer.WriteString(ParamKeyField(static_cast<int64_t>(i)), keys[i]);
    writer.WriteString(ParamValueField(static_cast<int64_t>(i)),
                       *params.FindRaw(keys[i]));
  }
  Status descriptor = writer.Finish();
  if (!descriptor.ok()) return descriptor;

  // The generator's own archive follows in the same stream.
  Status state = gen.SaveState(out);
  if (!state.ok()) return state;
  out.flush();
  if (!out.good()) return Status::IoError("artifact write failed: " + path);
  return Status::Ok();
}

}  // namespace

Status SaveArtifact(const baselines::TemporalGraphGenerator& gen,
                    const std::string& method,
                    const config::ParamMap& params, const std::string& path,
                    const UpdateLineage& lineage) {
  if (FindMethod(method) == nullptr) {
    std::string message = "cannot save artifact: unknown method '" + method +
                          "'";
    std::string suggestion =
        config::NearestName(method, RegisteredMethodNames());
    if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
    return Status::NotFound(message);
  }
  Status written = WriteArtifactFile(gen, method, params, path, lineage);
  // Never leave a half-written artifact behind: a later load would fail
  // with a confusing truncation error instead of "no such artifact".
  if (!written.ok()) std::remove(path.c_str());
  return written;
}

SeedStreams MakeSeedStreams(uint64_t seed) {
  std::vector<Rng> split = Rng(seed).Split(2);
  return SeedStreams{split[0], split[1]};
}

Result<LoadedArtifact> LoadArtifact(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open())
    return Status::IoError("cannot open artifact: " + path);

  Result<serialize::ArchiveReader> descriptor =
      serialize::ArchiveReader::Parse(in);
  if (!descriptor.ok())
    return Status(descriptor.status().code(),
                  "artifact '" + path + "': " + descriptor.status().message());
  const serialize::ArchiveReader& reader = descriptor.value();
  Result<int64_t> version = reader.GetInt("artifact", "artifact_version");
  if (!version.ok()) return version.status();
  if (version.value() != kArtifactVersion)
    return Status::InvalidArgument(
        "artifact '" + path + "' has artifact version " +
        std::to_string(version.value()) + " (this build reads version " +
        std::to_string(kArtifactVersion) +
        "; regenerate it with a matching tgsim)");
  Result<std::string> method = reader.GetString("artifact", "method");
  if (!method.ok()) return method.status();
  UpdateLineage lineage;
  {
    Result<int64_t> fit_seed = reader.GetInt("artifact", "base_fit_seed");
    if (!fit_seed.ok()) return fit_seed.status();
    lineage.base_fit_seed = static_cast<uint64_t>(fit_seed.value());
    Result<int64_t> update_count = reader.GetInt("artifact", "update_count");
    if (!update_count.ok()) return update_count.status();
    lineage.update_count = update_count.value();
    Result<int64_t> update_epochs =
        reader.GetInt("artifact", "update_epochs");
    if (!update_epochs.ok()) return update_epochs.status();
    lineage.update_epochs = update_epochs.value();
  }
  Result<int64_t> param_count = reader.GetInt("artifact", "param_count");
  if (!param_count.ok()) return param_count.status();
  config::ParamMap params;
  for (int64_t i = 0; i < param_count.value(); ++i) {
    Result<std::string> key =
        reader.GetString("artifact", ParamKeyField(i));
    if (!key.ok()) return key.status();
    Result<std::string> value =
        reader.GetString("artifact", ParamValueField(i));
    if (!value.ok()) return value.status();
    Status set = params.Set(key.value(), value.value());
    if (!set.ok())
      return Status(set.code(), "artifact '" + path +
                                    "' parameter overlay: " + set.message());
  }

  // The registry owns construction: unknown names get the usual NotFound
  // with a nearest-name suggestion, parameter errors surface as-is.
  Result<std::unique_ptr<baselines::TemporalGraphGenerator>> generator =
      MakeGenerator(method.value(), params);
  if (!generator.ok()) return generator.status();

  Status state = generator.value()->LoadState(in, path);
  if (!state.ok())
    return Status(state.code(),
                  "artifact '" + path + "' state: " + state.message());

  LoadedArtifact loaded;
  loaded.method = std::move(method).value();
  loaded.params = std::move(params);
  loaded.lineage = lineage;
  loaded.generator = std::move(generator).value();
  return loaded;
}

}  // namespace tgsim::eval
