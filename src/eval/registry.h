#ifndef TGSIM_EVAL_REGISTRY_H_
#define TGSIM_EVAL_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/generator.h"
#include "common/status.h"
#include "config/param_map.h"

namespace tgsim::eval {

/// Builds a generator from a fully resolved parameter map (presets already
/// expanded). Returns InvalidArgument on unknown keys or unparsable values.
using GeneratorFactory = std::function<
    Result<std::unique_ptr<baselines::TemporalGraphGenerator>>(
        const config::ParamMap& params)>;

/// One row of the generator registration table: the registry owns all
/// method construction (ROADMAP layering rule), so everything a driver
/// needs — factory, parameter schema, preset definitions, table membership —
/// lives here.
struct MethodSpec {
  /// Table name, e.g. "TagGen" (the registry key; case-sensitive).
  std::string name;
  /// One-line description shown by `tgsim methods`.
  std::string summary;
  /// Member of the paper's Tables IV-VI method columns.
  bool in_main_table = false;
  /// Member of the Table VII ablation columns.
  bool in_ablation_table = false;
  /// The generator implements Update(delta) — `tgsim update` and the serve
  /// `update` op work on its artifacts. Every built-in method sets this;
  /// external registrations default to the safe answer (the base-class
  /// Update reports Unimplemented).
  bool supports_update = false;
  /// Tunable parameters (paper defaults) of the method's config struct.
  config::ParamSchema schema;
  /// Parameter overrides the `preset=fast` profile applies on top of the
  /// paper defaults (`preset=paper` is always the empty overlay).
  config::ParamMap fast_preset;
  GeneratorFactory factory;
};

/// Adds a method to the registry. Fails on an empty/duplicate name or a
/// null factory. The built-in methods register themselves on first registry
/// use; additional registrations must happen before MakeGenerator is called
/// concurrently (the table takes no locks — ROADMAP threading rules).
Status RegisterGenerator(MethodSpec spec);

/// Registered spec by name, or nullptr. The pointer stays valid across
/// later RegisterGenerator calls (the table has stable references).
const MethodSpec* FindMethod(const std::string& name);

/// Every registered method name, in registration order.
std::vector<std::string> RegisteredMethodNames();

/// Main-table method names in the paper's column order:
/// TGAE, TIGGER, DYMOND, TGGAN, TagGen, NetGAN, E-R, B-A, VGAE, Graphite,
/// SBMGNN. Derived from the registration table.
std::vector<std::string> AllMethodNames();

/// Ablation variant names of Table VII (TGAE, TGAE-g, TGAE-t, TGAE-n,
/// TGAE-p). Derived from the registration table.
std::vector<std::string> AblationMethodNames();

/// Instantiates a generator by its table name through the registration
/// table. `params` may carry a `preset` key ("paper" = defaults, "fast" =
/// the method's smoke-test profile) plus per-method overrides, which win
/// over the preset. Unknown names return NotFound with a nearest-name
/// suggestion; unknown/ill-typed parameters return InvalidArgument.
Result<std::unique_ptr<baselines::TemporalGraphGenerator>> MakeGenerator(
    const std::string& name, const config::ParamMap& params = {});

}  // namespace tgsim::eval

#endif  // TGSIM_EVAL_REGISTRY_H_
