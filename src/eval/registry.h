#ifndef TGSIM_EVAL_REGISTRY_H_
#define TGSIM_EVAL_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/generator.h"

namespace tgsim::eval {

/// Effort profile for the learned generators: "fast" shrinks epochs/walks
/// for smoke tests, "paper" uses the defaults the benches report.
enum class Effort { kFast, kPaper };

/// All method names in the paper's table column order:
/// TGAE, TIGGER, DYMOND, TGGAN, TagGen, NetGAN, E-R, B-A, VGAE, Graphite,
/// SBMGNN.
const std::vector<std::string>& AllMethodNames();

/// Ablation variant names of Table VII (TGAE, TGAE-g, TGAE-t, TGAE-n,
/// TGAE-p).
const std::vector<std::string>& AblationMethodNames();

/// Instantiates a generator by its table name (either list above).
/// Checks-fails on unknown names.
std::unique_ptr<baselines::TemporalGraphGenerator> MakeGenerator(
    const std::string& name, Effort effort = Effort::kPaper);

}  // namespace tgsim::eval

#endif  // TGSIM_EVAL_REGISTRY_H_
