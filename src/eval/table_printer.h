#ifndef TGSIM_EVAL_TABLE_PRINTER_H_
#define TGSIM_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace tgsim::eval {

/// Minimal fixed-width table renderer for the bench binaries: prints a
/// header row and data rows padded to the widest cell per column.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders the table (header, separator, rows) to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tgsim::eval

#endif  // TGSIM_EVAL_TABLE_PRINTER_H_
