#include "eval/table_printer.h"

#include <cstdio>

#include "common/check.h"

namespace tgsim::eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TGSIM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c)
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string sep(total > 2 ? total - 2 : total, '-');
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tgsim::eval
