#include "eval/registry.h"

#include <deque>
#include <utility>

#include "baselines/dymond.h"
#include "baselines/er_ba.h"
#include "baselines/netgan.h"
#include "baselines/sbmgnn.h"
#include "baselines/taggen.h"
#include "baselines/tggan.h"
#include "baselines/tigger.h"
#include "baselines/vgae.h"
#include "common/check.h"
#include "core/tgae.h"

namespace tgsim::eval {

namespace {

using baselines::TemporalGraphGenerator;
using GeneratorPtr = std::unique_ptr<TemporalGraphGenerator>;

/// Factory for a {Config, Generator} pair: paper-default config, apply the
/// resolved params, construct.
template <typename Generator, typename Config>
GeneratorFactory ConfiguredFactory() {
  return [](const config::ParamMap& params) -> Result<GeneratorPtr> {
    Config cfg;
    Status s = cfg.ApplyParams(params);
    if (!s.ok()) return s;
    return GeneratorPtr(std::make_unique<Generator>(cfg));
  };
}

/// Factory for a parameterless method: any key is an error.
template <typename Generator>
GeneratorFactory PlainFactory(const std::string& name) {
  return [name](const config::ParamMap& params) -> Result<GeneratorPtr> {
    if (!params.empty())
      return Status::InvalidArgument("method '" + name +
                                     "' takes no parameters (got '" +
                                     params.Keys().front() + "')");
    return GeneratorPtr(std::make_unique<Generator>());
  };
}

config::ParamMap Tokens(const std::vector<std::string>& tokens) {
  Result<config::ParamMap> map = config::ParamMap::FromTokens(tokens);
  TGSIM_CHECK(map.ok());  // Preset definitions are compile-time literals.
  return std::move(map).value();
}

MethodSpec TgaeSpec(const std::string& name, core::TgaeVariant variant,
                    std::string summary, bool in_main_table) {
  MethodSpec spec;
  spec.name = name;
  spec.summary = std::move(summary);
  spec.in_main_table = in_main_table;
  spec.in_ablation_table = true;
  spec.supports_update = true;
  spec.schema = core::TgaeConfig::Schema();
  // The fast profile also flips on the sparse candidate-set decoder;
  // preset=paper keeps the dense n-wide decode (the paper's formulation).
  spec.fast_preset =
      Tokens({"epochs=5", "batch_centers=16", "sparse_decoder=true"});
  spec.factory = [variant](const config::ParamMap& params)
      -> Result<GeneratorPtr> {
    core::TgaeConfig cfg = core::TgaeConfig::ForVariant(variant);
    Status s = cfg.ApplyParams(params);
    if (!s.ok()) return s;
    return GeneratorPtr(std::make_unique<core::TgaeGenerator>(cfg));
  };
  return spec;
}

template <typename Generator, typename Config>
MethodSpec ConfiguredSpec(const std::string& name, std::string summary,
                          const std::vector<std::string>& fast_tokens) {
  MethodSpec spec;
  spec.name = name;
  spec.summary = std::move(summary);
  spec.in_main_table = true;
  spec.supports_update = true;
  spec.schema = Config::Schema();
  spec.fast_preset = Tokens(fast_tokens);
  spec.factory = ConfiguredFactory<Generator, Config>();
  return spec;
}

template <typename Generator>
MethodSpec PlainSpec(const std::string& name, std::string summary) {
  MethodSpec spec;
  spec.name = name;
  spec.summary = std::move(summary);
  spec.in_main_table = true;
  spec.supports_update = true;
  spec.factory = PlainFactory<Generator>(name);
  return spec;
}

/// The registration table. Built-ins register in the constructor, in the
/// paper's column order; user registrations append. Function-local static
/// gives thread-safe lazy construction.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry();
    return *instance;
  }

  Status Register(MethodSpec spec) {
    if (spec.name.empty())
      return Status::InvalidArgument("method name must be non-empty");
    if (spec.factory == nullptr)
      return Status::InvalidArgument("method '" + spec.name +
                                     "' needs a factory");
    if (Find(spec.name) != nullptr)
      return Status::InvalidArgument("method '" + spec.name +
                                     "' is already registered");
    specs_.push_back(std::move(spec));
    return Status::Ok();
  }

  const MethodSpec* Find(const std::string& name) const {
    for (const MethodSpec& spec : specs_)
      if (spec.name == name) return &spec;
    return nullptr;
  }

  const std::deque<MethodSpec>& specs() const { return specs_; }

 private:
  Registry() {
    // Paper Tables IV-VI column order.
    Reg(TgaeSpec("TGAE", core::TgaeVariant::kFull,
                 "temporal graph autoencoder (the paper's method)",
                 /*in_main_table=*/true));
    Reg(ConfiguredSpec<baselines::TiggerGenerator, baselines::TiggerConfig>(
        "TIGGER", "autoregressive temporal-walk model (AAAI'22)",
        {"epochs=3", "walks_per_epoch=40"}));
    Reg(PlainSpec<baselines::DymondGenerator>(
        "DYMOND", "dynamic motif-based generative model (WWW'21)"));
    Reg(ConfiguredSpec<baselines::TgganGenerator, baselines::TgganConfig>(
        "TGGAN", "adversarial temporal-walk generation (WWW'21)",
        {"iterations=8", "batch_walks=12"}));
    Reg(ConfiguredSpec<baselines::TagGenGenerator, baselines::TagGenConfig>(
        "TagGen", "learned temporal-walk reassembly (KDD'20)",
        {"epochs=4", "walks_per_epoch=60"}));
    Reg(ConfiguredSpec<baselines::NetGanGenerator, baselines::NetGanConfig>(
        "NetGAN", "low-rank walk-logit factorization per snapshot (ICML'18)",
        {"epochs=15", "score_topk=64"}));
    Reg(PlainSpec<baselines::ErdosRenyiGenerator>(
        "E-R", "Erdos-Renyi snapshots with observed edge counts"));
    Reg(PlainSpec<baselines::BarabasiAlbertGenerator>(
        "B-A", "preferential attachment with observed edge budget"));
    Reg(ConfiguredSpec<baselines::VgaeGenerator, baselines::VgaeConfig>(
        "VGAE", "variational graph autoencoder per snapshot (NeurIPS'16)",
        {"epochs=10", "score_topk=64"}));
    Reg(ConfiguredSpec<baselines::GraphiteGenerator, baselines::VgaeConfig>(
        "Graphite", "VGAE with iteratively refined decoder (ICML'19)",
        {"epochs=10", "score_topk=64"}));
    Reg(ConfiguredSpec<baselines::SbmGnnGenerator, baselines::SbmGnnConfig>(
        "SBMGNN", "GNN-parameterized stochastic blockmodel (ICML'19)",
        {"epochs=10", "score_topk=64"}));
    // Table VII ablation variants (TGAE itself is registered above).
    Reg(TgaeSpec("TGAE-g", core::TgaeVariant::kRandomWalk,
                 "TGAE ablation: ego-graphs degraded to random-walk chains",
                 /*in_main_table=*/false));
    Reg(TgaeSpec("TGAE-t", core::TgaeVariant::kNoTruncation,
                 "TGAE ablation: neighbor truncation disabled",
                 /*in_main_table=*/false));
    Reg(TgaeSpec("TGAE-n", core::TgaeVariant::kUniformSampling,
                 "TGAE ablation: uniform initial node sampling",
                 /*in_main_table=*/false));
    Reg(TgaeSpec("TGAE-p", core::TgaeVariant::kNonProbabilistic,
                 "TGAE ablation: non-probabilistic decoder",
                 /*in_main_table=*/false));
  }

  void Reg(MethodSpec spec) { TGSIM_CHECK(Register(std::move(spec)).ok()); }

  // Deque, not vector: FindMethod hands out MethodSpec pointers, which
  // must survive later RegisterGenerator appends.
  std::deque<MethodSpec> specs_;
};

}  // namespace

Status RegisterGenerator(MethodSpec spec) {
  return Registry::Instance().Register(std::move(spec));
}

const MethodSpec* FindMethod(const std::string& name) {
  return Registry::Instance().Find(name);
}

std::vector<std::string> RegisteredMethodNames() {
  std::vector<std::string> names;
  for (const MethodSpec& spec : Registry::Instance().specs())
    names.push_back(spec.name);
  return names;
}

std::vector<std::string> AllMethodNames() {
  std::vector<std::string> names;
  for (const MethodSpec& spec : Registry::Instance().specs())
    if (spec.in_main_table) names.push_back(spec.name);
  return names;
}

std::vector<std::string> AblationMethodNames() {
  std::vector<std::string> names;
  for (const MethodSpec& spec : Registry::Instance().specs())
    if (spec.in_ablation_table) names.push_back(spec.name);
  return names;
}

Result<std::unique_ptr<baselines::TemporalGraphGenerator>> MakeGenerator(
    const std::string& name, const config::ParamMap& params) {
  const MethodSpec* spec = FindMethod(name);
  if (spec == nullptr) {
    std::string message = "unknown method '" + name + "'";
    std::string suggestion =
        config::NearestName(name, RegisteredMethodNames());
    if (!suggestion.empty())
      message += "; did you mean '" + suggestion + "'?";
    message += " (run `tgsim methods` for the registered list)";
    return Status::NotFound(message);
  }

  std::string preset = "paper";
  if (params.Has("preset")) preset = params.GetString("preset").value();

  config::ParamMap effective;
  if (preset == "fast") {
    effective = spec->fast_preset;
  } else if (preset != "paper") {
    return Status::InvalidArgument("unknown preset '" + preset + "' for '" +
                                   name + "': expected 'fast' or 'paper'");
  }
  // Explicit parameters win over the preset profile.
  for (const std::string& key : params.Keys()) {
    if (key == "preset") continue;
    effective.Override(key, *params.FindRaw(key));
  }
  return spec->factory(effective);
}

}  // namespace tgsim::eval
