#include "eval/registry.h"

#include "baselines/dymond.h"
#include "baselines/er_ba.h"
#include "baselines/netgan.h"
#include "baselines/sbmgnn.h"
#include "baselines/taggen.h"
#include "baselines/tggan.h"
#include "baselines/tigger.h"
#include "baselines/vgae.h"
#include "common/check.h"
#include "core/tgae.h"

namespace tgsim::eval {

const std::vector<std::string>& AllMethodNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "TGAE",   "TIGGER", "DYMOND", "TGGAN",    "TagGen", "NetGAN",
      "E-R",    "B-A",    "VGAE",   "Graphite", "SBMGNN"};
  return *kNames;
}

const std::vector<std::string>& AblationMethodNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "TGAE", "TGAE-g", "TGAE-t", "TGAE-n", "TGAE-p"};
  return *kNames;
}

std::unique_ptr<baselines::TemporalGraphGenerator> MakeGenerator(
    const std::string& name, Effort effort) {
  const bool fast = effort == Effort::kFast;
  if (name == "TGAE" || name.rfind("TGAE-", 0) == 0) {
    core::TgaeVariant variant = core::TgaeVariant::kFull;
    if (name == "TGAE-g") variant = core::TgaeVariant::kRandomWalk;
    if (name == "TGAE-t") variant = core::TgaeVariant::kNoTruncation;
    if (name == "TGAE-n") variant = core::TgaeVariant::kUniformSampling;
    if (name == "TGAE-p") variant = core::TgaeVariant::kNonProbabilistic;
    core::TgaeConfig cfg = core::TgaeConfig::ForVariant(variant);
    if (fast) {
      cfg.epochs = 5;
      cfg.batch_centers = 16;
    }
    return std::make_unique<core::TgaeGenerator>(cfg);
  }
  if (name == "TIGGER") {
    baselines::TiggerConfig cfg;
    if (fast) {
      cfg.epochs = 3;
      cfg.walks_per_epoch = 40;
    }
    return std::make_unique<baselines::TiggerGenerator>(cfg);
  }
  if (name == "DYMOND")
    return std::make_unique<baselines::DymondGenerator>();
  if (name == "TGGAN") {
    baselines::TgganConfig cfg;
    if (fast) {
      cfg.iterations = 8;
      cfg.batch_walks = 12;
    }
    return std::make_unique<baselines::TgganGenerator>(cfg);
  }
  if (name == "TagGen") {
    baselines::TagGenConfig cfg;
    if (fast) {
      cfg.epochs = 4;
      cfg.walks_per_epoch = 60;
    }
    return std::make_unique<baselines::TagGenGenerator>(cfg);
  }
  if (name == "NetGAN") {
    baselines::NetGanConfig cfg;
    if (fast) cfg.epochs = 15;
    return std::make_unique<baselines::NetGanGenerator>(cfg);
  }
  if (name == "E-R")
    return std::make_unique<baselines::ErdosRenyiGenerator>();
  if (name == "B-A")
    return std::make_unique<baselines::BarabasiAlbertGenerator>();
  if (name == "VGAE") {
    baselines::VgaeConfig cfg;
    if (fast) cfg.epochs = 10;
    return std::make_unique<baselines::VgaeGenerator>(cfg);
  }
  if (name == "Graphite") {
    baselines::VgaeConfig cfg;
    if (fast) cfg.epochs = 10;
    return std::make_unique<baselines::GraphiteGenerator>(cfg);
  }
  if (name == "SBMGNN") {
    baselines::SbmGnnConfig cfg;
    if (fast) cfg.epochs = 10;
    return std::make_unique<baselines::SbmGnnGenerator>(cfg);
  }
  TGSIM_CHECK(false);
  return nullptr;
}

}  // namespace tgsim::eval
