#ifndef TGSIM_EVAL_RUNNER_H_
#define TGSIM_EVAL_RUNNER_H_

#include <optional>
#include <string>
#include <vector>

#include "config/param_map.h"
#include "datasets/synthetic.h"
#include "eval/registry.h"
#include "graph/temporal_graph.h"
#include "metrics/temporal_scores.h"

namespace tgsim::eval {

/// Options for one fit+generate+score run.
struct RunOptions {
  /// Seed of the fresh Rng the single-run RunMethod overload creates.
  /// IGNORED by the Rng-consuming overload and by RunCells (each cell
  /// draws its Rng::Split stream from the batch's master seed; see
  /// RunCells).
  uint64_t seed = 7;
  /// Generator construction profile: "paper" (the defaults the benches
  /// report) or "fast" (the smoke-test shrink). Forwarded to the registry
  /// as `preset=<value>` unless method_params already sets one.
  std::string preset = "paper";
  /// Per-method parameter overrides (registry schema keys) layered on top
  /// of the preset, e.g. {"epochs=5"}.
  config::ParamMap method_params;
  /// Device budget for the paper-scale OOM emulation; 32 GB = the V100 of
  /// the paper's testbed (DESIGN.md §2).
  int64_t memory_budget_bytes = 32LL * 1024 * 1024 * 1024;
  /// Paper-scale shape used for the OOM decision. When unset, OOM
  /// emulation is disabled (everything runs).
  std::optional<datasets::DatasetSpec> paper_scale;
  /// Snapshot-metric timestamp stride (1 = every timestamp).
  int metric_stride = 1;
  /// Temporal motif window delta and MMD kernel bandwidth (Table VI).
  int motif_delta = 4;
  double mmd_sigma = 1.0;
  /// Cap on enumerated motif triples per census (guards dense graphs).
  int64_t motif_max_triples = 4000000;
  bool compute_graph_scores = true;
  bool compute_motif_mmd = false;
};

/// Outcome of one method on one dataset.
struct RunResult {
  std::string method;
  bool oom = false;
  double fit_seconds = 0.0;
  double generate_seconds = 0.0;
  double peak_mib = 0.0;  // Tracked allocator peak during fit+generate.
  /// f_avg/f_med per metric, ordered like metrics::AllGraphMetrics().
  std::vector<metrics::TemporalScore> scores;
  double motif_mmd = 0.0;
};

/// Fits `method` on `observed`, generates one graph, and scores it. The
/// generator is constructed through the registry factory
/// (`options.preset` + `options.method_params`), so an unknown method or a
/// bad parameter returns an error instead of crashing. If
/// `options.paper_scale` is set and the method's analytic paper-scale
/// memory model exceeds the budget, the run is skipped and marked OOM
/// (matching the paper's table presentation). Seeds a fresh Rng from
/// `options.seed`.
Result<RunResult> RunMethod(const std::string& method,
                            const graphs::TemporalGraph& observed,
                            const RunOptions& options);

/// Same, but consumes the caller-provided Rng stream instead of seeding
/// one (`options.seed` is ignored) — the building block RunCells uses to
/// hand each cell an independent Rng::Split child.
Result<RunResult> RunMethod(const std::string& method,
                            const graphs::TemporalGraph& observed,
                            const RunOptions& options, Rng& rng);

/// One (method, dataset) cell of an evaluation matrix. `observed` must
/// outlive the RunCells call.
struct RunCell {
  std::string method;
  const graphs::TemporalGraph* observed = nullptr;
  RunOptions options;
};

/// Runs every cell, concurrently on the global thread pool when it has
/// more than one thread. All generators are constructed serially up front
/// through the registry factory; the first invalid method name or
/// parameter fails the whole batch (annotated with the cell index) before
/// any cell runs.
///
/// Randomness contract: cell i consumes the i-th child of
/// Rng(master_seed).Split(cells.size()), so scores, motif MMDs, OOM flags
/// and per-cell peak memory are bit-identical to the serial run for any
/// thread count (wall-clock timings, as always, are not). Per-cell
/// `options.seed` is therefore IGNORED — only `master_seed` moves the
/// results (pinned by RunCellsTest.PerCellSeedIsIgnored).
Result<std::vector<RunResult>> RunCells(const std::vector<RunCell>& cells,
                                        uint64_t master_seed);

/// Formats a score the way the paper's tables do (e.g. "2.41E-3"), or
/// "OOM".
std::string FormatCell(double value, bool oom);

}  // namespace tgsim::eval

#endif  // TGSIM_EVAL_RUNNER_H_
