#ifndef TGSIM_SERVE_PROTOCOL_H_
#define TGSIM_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/json.h"

namespace tgsim::serve {

/// The tgsim serve wire protocol: one JSON object per line ("frame") in
/// each direction over a local stream socket; the same Request/reply pair
/// backs the in-process Server::Handle API.
///
/// Requests:
///   {"op":"generate","model":NAME,"seed":N}   seed optional (default 7)
///   {"op":"update","model":NAME,"input":PATH,"seed":N}
///     absorbs the delta edge list at PATH (server-local path) into the
///     served model and swaps it in atomically; in-flight generates finish
///     on the old state. seed optional (default 7).
///   {"op":"stats"} | {"op":"list"} | {"op":"shutdown"}
///   Every request may carry "protocol":N; a request speaking a newer
///   protocol than this build is rejected (Status-typed reply, never a
///   guess at compatibility).
///
/// Replies always carry "ok" (bool) and "protocol" (int). Success replies
/// add op-specific fields ("payload" holds generate's edge-list bytes,
/// byte-identical to a `tgsim generate --model` output file). Error
/// replies carry "code" (a StatusCodeName) and "error" (the message); the
/// server never closes the connection on a handled error and never
/// crashes on malformed input.

/// Bump on any incompatible change to request or reply layout (ROADMAP
/// invariant; readers reject newer versions with Status errors). Version
/// history: 1 — generate/stats/list/shutdown; 2 — adds the update op.
inline constexpr int kServeProtocolVersion = 2;

/// Hard cap on one request frame; a longer line is answered with a
/// ResourceExhausted reply and the connection is closed (the stream can no
/// longer be framed reliably).
inline constexpr size_t kDefaultMaxFrameBytes = size_t{1} << 20;

enum class RequestOp { kGenerate, kStats, kList, kShutdown, kUpdate };

/// Wire name of an op ("generate", "stats", "list", "shutdown", "update").
std::string RequestOpName(RequestOp op);

struct Request {
  RequestOp op = RequestOp::kList;
  std::string model;  // generate/update: configured model name.
  std::string input;  // update only: server-local delta edge-list path.
  uint64_t seed = 7;  // generate/update.
};

/// Parses one request frame. Enforces the frame-size cap, full JSON
/// validity, known op names (nearest-name suggestion on typos), known keys
/// only, typed fields, and the protocol version gate. Never throws.
Result<Request> ParseRequest(const std::string& frame,
                             size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Renders a request as one frame (no trailing newline).
std::string RenderRequest(const Request& request);

/// {"ok":true,"protocol":1} — callers Set() op-specific fields onto it.
Json MakeOkReply();

/// {"ok":false,"protocol":1,"code":...,"error":...}.
Json MakeErrorReply(const Status& status);

/// Client-side reply check: parses the frame, then converts an ok:false
/// reply into its embedded Status. Malformed reply frames are IoError.
Result<Json> ParseReply(const std::string& frame);

}  // namespace tgsim::serve

#endif  // TGSIM_SERVE_PROTOCOL_H_
