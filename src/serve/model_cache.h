#ifndef TGSIM_SERVE_MODEL_CACHE_H_
#define TGSIM_SERVE_MODEL_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/generator.h"
#include "parallel/sync.h"

namespace tgsim::serve {

/// One served model as configured at startup: a serving name bound to a
/// `tgsim fit` artifact on disk.
struct ModelSpec {
  std::string name;  // Request-facing name (cache key), e.g. "dblp-tgae".
  std::string path;  // Artifact file SaveArtifact wrote.
};

/// A resident model. Callers hold the shared_ptr for the duration of a
/// request, so eviction (which only drops the cache's reference) never
/// destroys a model mid-generate. `mu` serializes Generate on this
/// instance — generators are fit-once/serve-many but their Generate
/// mutates scratch state, so two requests for the *same* model run back to
/// back while different models run concurrently.
struct CachedModel {
  parallel::Mutex mu;
  std::unique_ptr<baselines::TemporalGraphGenerator> generator;
  std::string method;  // Registry name from the artifact descriptor.
  int64_t bytes = 0;   // Footprint charged against the budget.
};

/// Serving-side counters of one configured model (returned by Snapshot;
/// all cumulative since server start).
struct ModelStats {
  std::string name;
  std::string method;       // Empty until first loaded.
  bool resident = false;
  int64_t bytes = 0;        // Last known footprint (0 until first loaded).
  int64_t requests = 0;     // Generate acquisitions (the traffic signal).
  int64_t loads = 0;        // Artifact loads from disk (preload + reload).
  int64_t evictions = 0;    // Times this model was evicted.
  int64_t generates = 0;    // Completed generate requests.
  double busy_seconds = 0;  // Total generate latency.
};

/// Thread-safe artifact cache with byte-budget admission and least-traffic
/// eviction (the samgraph CachePolicy idiom applied to whole models: keep
/// the hottest models resident, reload colder ones from disk on demand).
///
/// A model's footprint is charged as the generator's reported
/// ResidentStateBytes() when available — block-backed artifacts keep their
/// score blocks mmap-backed on disk, so their charge is far below the file
/// size — and falls back to the artifact file size for methods that do not
/// report one (for inline state the payload *is* the footprint). Admission:
/// a model whose footprint alone exceeds the budget is rejected with
/// ResourceExhausted.
/// Eviction: when an admit would overflow the budget, resident models are
/// evicted in ascending (requests, last-use sequence) order — strictly
/// least traffic first, ties broken least-recently-used — until the new
/// model fits. All of that is deterministic, and pinned by
/// tests/serve_test.cc.
class ModelCache {
 public:
  /// `byte_budget` > 0. Duplicate model names are rejected by Preload.
  ModelCache(std::vector<ModelSpec> models, int64_t byte_budget);

  /// Validates the configuration and loads every configured model (in
  /// configuration order, evicting under the budget as it goes). Any
  /// missing/corrupt artifact or over-budget admission fails the preload.
  Status Preload();

  /// Resident model by name, loading it from disk if it was evicted (a
  /// reload counts toward `loads` and re-runs admission). Counts one
  /// request of traffic. Unknown names: NotFound with a nearest-name
  /// suggestion over the configured names.
  Result<std::shared_ptr<CachedModel>> Acquire(const std::string& name);

  /// Adds one completed generate and its latency to `name`'s counters.
  void RecordGenerate(const std::string& name, double seconds);

  /// Configured artifact path of `name` (NotFound with a suggestion for
  /// unknown names). The serve update op rebuilds the model from this path
  /// outside the cache lock, then installs the result with Swap().
  Result<std::string> ArtifactPath(const std::string& name) const;

  /// Atomically replaces `name`'s resident instance with `generator`
  /// (admitting its footprint under the budget, evicting other models as
  /// needed). In-flight requests holding the old shared_ptr finish on the
  /// old state — the swap never destroys a model mid-generate. Counts one
  /// load; the replaced instance does not count as an eviction.
  Status Swap(const std::string& name,
              std::unique_ptr<baselines::TemporalGraphGenerator> generator,
              const std::string& method);

  /// Counter snapshot in configuration order.
  std::vector<ModelStats> Snapshot() const;

  /// Sum of resident footprints (never exceeds the budget).
  int64_t resident_bytes() const;

  int64_t byte_budget() const { return byte_budget_; }

  /// Configured model names in configuration order.
  std::vector<std::string> ModelNames() const;

 private:
  struct Slot {
    ModelSpec spec;
    std::shared_ptr<CachedModel> resident;  // Null when evicted.
    ModelStats stats;
    int64_t last_use_seq = 0;
  };

  /// Loads `slot`'s artifact and admits it under the budget (evicting
  /// others as needed). Requires mu_ held; the disk read happens under the
  /// lock — simple over clever: admission order stays deterministic.
  Status LoadSlotLocked(Slot& slot);
  Slot* FindSlotLocked(const std::string& name);

  /// Evicts strictly-least-traffic residents until `charge` more bytes fit
  /// the budget. Requires mu_ held and charge <= byte_budget_.
  void EvictUntilFitsLocked(int64_t charge);

  /// Installs `model` as `slot`'s resident instance (replacing any current
  /// one without an eviction charge) and updates the counters. Requires
  /// mu_ held and model->bytes admitted.
  void InstallLocked(Slot& slot, std::shared_ptr<CachedModel> model);

  const int64_t byte_budget_;
  mutable parallel::Mutex mu_;
  std::vector<Slot> slots_;
  int64_t use_counter_ = 0;
  int64_t resident_bytes_ = 0;
};

}  // namespace tgsim::serve

#endif  // TGSIM_SERVE_MODEL_CACHE_H_
