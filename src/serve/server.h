#ifndef TGSIM_SERVE_SERVER_H_
#define TGSIM_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "parallel/sync.h"
#include "parallel/task_queue.h"
#include "serve/model_cache.h"
#include "serve/protocol.h"

namespace tgsim::serve {

/// Configuration of one serve daemon.
struct ServeOptions {
  std::vector<ModelSpec> models;
  /// Model-cache byte budget (artifact-size accounting; see ModelCache).
  int64_t cache_budget_bytes = int64_t{1} << 30;
  /// Concurrent request workers (one long-lived connection each).
  int workers = 4;
  /// Bounded accepted-connection backlog on the worker queue.
  size_t max_pending = 64;
  /// Per-frame byte cap (oversized frames get an error reply + close).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// The `tgsim serve` daemon core (GraphLab-style engine/core separation:
/// this request engine is fully separated from the generator runtime it
/// drives, and tests exercise it in-process without any socket).
///
/// Concurrency model: Handle() is thread-safe and runs on whatever thread
/// calls it. The socket front end accepts connections on a 1-worker
/// listener TaskQueue and serves each connection on a `workers`-sized
/// TaskQueue — all threads are owned by src/parallel primitives, per the
/// ROADMAP layering rule. Requests for different models generate
/// concurrently; requests for one model serialize on the model's mutex
/// (identical results either way — generation depends only on the seed).
///
/// Lifecycle: Create() preloads the cache (fails fast on bad artifacts).
/// A shutdown request — or Stop() — starts the drain: new requests get an
/// error reply, in-flight requests finish, the listener closes, Wait()
/// returns. The daemon never crashes on malformed input: every protocol
/// error is a Status-typed error reply.
class Server {
 public:
  /// Validates options and preloads every configured model.
  static Result<std::unique_ptr<Server>> Create(ServeOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// In-process request API: never throws, never crashes — errors are
  /// error replies. Thread-safe.
  Json Handle(const Request& request);

  /// Frame in, frame out (no trailing newline): ParseRequest + Handle +
  /// Serialize, with parse failures rendered as error replies.
  std::string HandleFrame(const std::string& frame);

  /// Binds a Unix-domain stream socket at `path` (replacing a stale file)
  /// and starts accepting connections. One call per server.
  Status Listen(const std::string& socket_path);

  /// Blocks until a shutdown request (or Stop) begins the drain.
  void Wait();

  /// Begins the drain if needed, closes the listener, joins all serving
  /// threads and removes the socket file. Idempotent; called by the
  /// destructor.
  void Stop();

  /// True once a shutdown request or Stop() was observed.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  const ModelCache& cache() const { return *cache_; }
  const ServeOptions& options() const { return options_; }

  int64_t total_requests() const {
    return total_requests_.load(std::memory_order_relaxed);
  }
  int64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

 private:
  explicit Server(ServeOptions options);

  Json HandleGenerate(const Request& request);
  Json HandleUpdate(const Request& request);
  Json HandleStats();
  Json HandleList();
  Json HandleShutdown();

  /// Marks the server draining and unblocks Wait()/the accept loop.
  void BeginDrain();

  /// Listener-task body: accept until draining, handing connections to
  /// conn_queue_.
  void AcceptLoop();
  /// Connection-task body: frame loop on one accepted socket.
  void ServeConnection(int fd);

  ServeOptions options_;
  std::unique_ptr<ModelCache> cache_;
  Stopwatch uptime_;

  std::atomic<bool> draining_{false};
  std::atomic<int64_t> total_requests_{0};
  std::atomic<int64_t> protocol_errors_{0};

  parallel::Mutex drain_mu_;
  parallel::CondVar drain_cv_;

  std::string socket_path_;
  std::atomic<int> listen_fd_{-1};
  std::unique_ptr<parallel::TaskQueue> listener_queue_;
  std::unique_ptr<parallel::TaskQueue> conn_queue_;
  bool stopped_ = false;  // Guarded by drain_mu_.
};

}  // namespace tgsim::serve

#endif  // TGSIM_SERVE_SERVER_H_
