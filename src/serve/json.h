#ifndef TGSIM_SERVE_JSON_H_
#define TGSIM_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tgsim::serve {

/// Minimal JSON document model for the serve wire protocol (no external
/// dependency; the container image pins the toolchain). Supports the full
/// JSON value grammar — null, bool, number (int64 vs double preserved),
/// string with escapes, array, object — with a recursion-depth cap so a
/// hostile frame cannot blow the parser's stack. Object members keep
/// insertion order, so Serialize() output is stable and testable.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Int(int64_t i);
  static Json Double(double d);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors (TGSIM_CHECK on type mismatch — protocol code must
  /// test the type first; see the As*Or helpers for the lenient forms).
  bool AsBool() const;
  int64_t AsInt() const;      // kInt only.
  double AsDouble() const;    // kInt or kDouble.
  const std::string& AsString() const;
  const std::vector<Json>& Items() const;                          // Array.
  const std::vector<std::pair<std::string, Json>>& Members() const;  // Object.

  /// Lenient accessors: the fallback when the type does not match.
  bool AsBoolOr(bool fallback) const { return is_bool() ? b_ : fallback; }
  int64_t AsIntOr(int64_t fallback) const { return is_int() ? i_ : fallback; }
  double AsDoubleOr(double fallback) const {
    return is_number() ? AsDouble() : fallback;
  }
  std::string AsStringOr(std::string fallback) const {
    return is_string() ? s_ : std::move(fallback);
  }

  /// Object member by key, or nullptr (also nullptr on non-objects).
  const Json* Find(const std::string& key) const;

  /// Array append (CHECKs array type).
  void Append(Json value);

  /// Object insert-or-replace (CHECKs object type; keeps first-insert
  /// position on replace).
  void Set(const std::string& key, Json value);

  /// Compact serialization: no whitespace, members in insertion order,
  /// doubles via %.17g (round-trip exact), strings minimally escaped.
  std::string Serialize() const;

  /// Parses exactly one JSON value spanning the whole input (trailing
  /// non-whitespace is an error). InvalidArgument errors carry the byte
  /// offset. Nesting deeper than 64 levels is rejected.
  static Result<Json> Parse(const std::string& text);

 private:
  Type type_;
  bool b_ = false;
  int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace tgsim::serve

#endif  // TGSIM_SERVE_JSON_H_
