#include "serve/protocol.h"

#include <limits>
#include <vector>

#include "config/param_map.h"

namespace tgsim::serve {

namespace {

const std::vector<std::string>& KnownOps() {
  static const std::vector<std::string>* kOps =
      new std::vector<std::string>{"generate", "stats", "list", "shutdown",
                                   "update"};
  return *kOps;
}

Status UnknownKeyError(const std::string& key,
                       const std::vector<std::string>& known) {
  std::string message = "unknown request key '" + key + "'";
  std::string suggestion = config::NearestName(key, known);
  if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
  return Status::InvalidArgument(message);
}

}  // namespace

std::string RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kGenerate:
      return "generate";
    case RequestOp::kStats:
      return "stats";
    case RequestOp::kList:
      return "list";
    case RequestOp::kShutdown:
      return "shutdown";
    case RequestOp::kUpdate:
      return "update";
  }
  return "unknown";
}

Result<Request> ParseRequest(const std::string& frame,
                             size_t max_frame_bytes) {
  if (frame.size() > max_frame_bytes)
    return Status::ResourceExhausted(
        "request frame of " + std::to_string(frame.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte limit");
  Result<Json> parsed = Json::Parse(frame);
  if (!parsed.ok())
    return Status::InvalidArgument("malformed request: " +
                                   parsed.status().message());
  const Json& root = parsed.value();
  if (!root.is_object())
    return Status::InvalidArgument(
        "malformed request: frame must be a JSON object");

  // The version gate comes first so a newer client's request is rejected
  // for the right reason even if it also carries keys we do not know.
  if (const Json* protocol = root.Find("protocol")) {
    if (!protocol->is_int())
      return Status::InvalidArgument(
          "request field 'protocol' must be an integer");
    if (protocol->AsInt() > kServeProtocolVersion)
      return Status::InvalidArgument(
          "request speaks protocol version " +
          std::to_string(protocol->AsInt()) + "; this server speaks " +
          std::to_string(kServeProtocolVersion));
  }

  const Json* op_field = root.Find("op");
  if (op_field == nullptr)
    return Status::InvalidArgument("request is missing the 'op' field");
  if (!op_field->is_string())
    return Status::InvalidArgument("request field 'op' must be a string");
  const std::string& op_name = op_field->AsString();

  Request request;
  bool known_op = false;
  for (RequestOp op : {RequestOp::kGenerate, RequestOp::kStats,
                       RequestOp::kList, RequestOp::kShutdown,
                       RequestOp::kUpdate}) {
    if (RequestOpName(op) == op_name) {
      request.op = op;
      known_op = true;
      break;
    }
  }
  if (!known_op) {
    std::string message = "unknown op '" + op_name + "'";
    std::string suggestion = config::NearestName(op_name, KnownOps());
    if (!suggestion.empty())
      message += "; did you mean '" + suggestion + "'?";
    return Status::InvalidArgument(message);
  }

  std::vector<std::string> allowed = {"op", "protocol"};
  if (request.op == RequestOp::kGenerate) {
    allowed.push_back("model");
    allowed.push_back("seed");
  }
  if (request.op == RequestOp::kUpdate) {
    allowed.push_back("model");
    allowed.push_back("input");
    allowed.push_back("seed");
  }
  for (const auto& [key, value] : root.Members()) {
    bool known_key = false;
    for (const std::string& k : allowed) known_key = known_key || k == key;
    if (!known_key) return UnknownKeyError(key, allowed);
  }

  if (request.op == RequestOp::kGenerate || request.op == RequestOp::kUpdate) {
    const Json* model = root.Find("model");
    if (model == nullptr || !model->is_string() || model->AsString().empty())
      return Status::InvalidArgument(RequestOpName(request.op) +
                                     " requires a non-empty string 'model' "
                                     "field");
    request.model = model->AsString();
    if (const Json* seed = root.Find("seed")) {
      if (!seed->is_int() || seed->AsInt() < 0)
        return Status::InvalidArgument(
            "request field 'seed' must be a non-negative integer");
      request.seed = static_cast<uint64_t>(seed->AsInt());
    }
  }
  if (request.op == RequestOp::kUpdate) {
    const Json* input = root.Find("input");
    if (input == nullptr || !input->is_string() || input->AsString().empty())
      return Status::InvalidArgument(
          "update requires a non-empty string 'input' field (server-local "
          "delta edge-list path)");
    request.input = input->AsString();
  }
  return request;
}

std::string RenderRequest(const Request& request) {
  Json root = Json::Object();
  root.Set("op", Json::Str(RequestOpName(request.op)));
  root.Set("protocol", Json::Int(kServeProtocolVersion));
  if (request.op == RequestOp::kGenerate || request.op == RequestOp::kUpdate) {
    root.Set("model", Json::Str(request.model));
    // A seed beyond int64 cannot ride the integer wire form; the CLI
    // parses seeds through GetInt64 so this cannot happen in practice.
    root.Set("seed", Json::Int(static_cast<int64_t>(request.seed)));
  }
  if (request.op == RequestOp::kUpdate)
    root.Set("input", Json::Str(request.input));
  return root.Serialize();
}

Json MakeOkReply() {
  Json reply = Json::Object();
  reply.Set("ok", Json::Bool(true));
  reply.Set("protocol", Json::Int(kServeProtocolVersion));
  return reply;
}

Json MakeErrorReply(const Status& status) {
  Json reply = Json::Object();
  reply.Set("ok", Json::Bool(false));
  reply.Set("protocol", Json::Int(kServeProtocolVersion));
  reply.Set("code", Json::Str(StatusCodeName(status.code())));
  reply.Set("error", Json::Str(status.message()));
  return reply;
}

Result<Json> ParseReply(const std::string& frame) {
  Result<Json> parsed = Json::Parse(frame);
  if (!parsed.ok())
    return Status::IoError("malformed reply frame: " +
                           parsed.status().message());
  const Json& root = parsed.value();
  const Json* ok = root.Find("ok");
  if (ok == nullptr || !ok->is_bool())
    return Status::IoError("reply frame is missing the 'ok' field");
  if (!ok->AsBool()) {
    const Json* code = root.Find("code");
    const Json* error = root.Find("error");
    StatusCode status_code = StatusCodeFromName(
        code != nullptr ? code->AsStringOr("Internal") : "Internal");
    // An ok:false reply claiming code "Ok" is nonsense; keep the Status a
    // genuine error (Result CHECKs that error statuses are not kOk).
    if (status_code == StatusCode::kOk) status_code = StatusCode::kInternal;
    return Status(status_code,
                  error != nullptr
                      ? error->AsStringOr("unspecified server error")
                      : "unspecified server error");
  }
  return parsed;
}

}  // namespace tgsim::serve
