#include "serve/client.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace tgsim::serve {

#ifndef _WIN32

Result<std::string> CallRaw(const std::string& socket_path,
                            const std::string& frame) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path))
    return Status::InvalidArgument(
        "socket path longer than " +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes: " + socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect(" + socket_path +
                           "): " + std::strerror(err));
  }

  std::string out = frame;
  out.push_back('\n');
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::IoError(std::string("send(): ") + std::strerror(err));
    }
    sent += static_cast<size_t>(n);
  }

  std::string reply;
  char chunk[4096];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      ::close(fd);
      return Status::IoError("server closed the connection mid-reply");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::IoError(std::string("recv(): ") + std::strerror(err));
    }
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  reply.resize(reply.find('\n'));
  return reply;
}

#else  // _WIN32

Result<std::string> CallRaw(const std::string&, const std::string&) {
  return Status::Internal("tgsim serve sockets require a POSIX platform");
}

#endif  // _WIN32

Result<Json> Call(const std::string& socket_path, const Request& request) {
  Result<std::string> reply = CallRaw(socket_path, RenderRequest(request));
  if (!reply.ok()) return reply.status();
  return ParseReply(reply.value());
}

}  // namespace tgsim::serve
