#include "serve/server.h"

#include <cstdio>
#include <exception>
#include <optional>
#include <sstream>
#include <utility>

#include "baselines/state_io.h"
#include "common/check.h"
#include "datasets/io.h"
#include "eval/artifact.h"
#include "graph/temporal_graph.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#endif

namespace tgsim::serve {

namespace {

/// Closes an accepted connection when the last reference goes away — even
/// if the connection task is dropped unrun by a draining TaskQueue.
struct FdGuard {
  explicit FdGuard(int fd) : fd(fd) {}
  ~FdGuard() {
#ifndef _WIN32
    if (fd >= 0) ::close(fd);
#endif
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  int fd;
};

}  // namespace

Server::Server(ServeOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<Server>> Server::Create(ServeOptions options) {
  if (options.models.empty())
    return Status::InvalidArgument("serve needs at least one --model");
  if (options.workers < 1 || options.workers > 1024)
    return Status::InvalidArgument("workers must be in [1, 1024]");
  if (options.max_pending < 1)
    return Status::InvalidArgument("max_pending must be >= 1");
  if (options.cache_budget_bytes <= 0)
    return Status::InvalidArgument("cache budget must be positive");
  if (options.max_frame_bytes < 64)
    return Status::InvalidArgument("max_frame_bytes must be >= 64");

  std::unique_ptr<Server> server(new Server(std::move(options)));
  server->cache_ = std::make_unique<ModelCache>(
      server->options_.models, server->options_.cache_budget_bytes);
  Status preloaded = server->cache_->Preload();
  if (!preloaded.ok()) return preloaded;
  return server;
}

Server::~Server() { Stop(); }

// ---------------------------------------------------------------------------
// Request handling (in-process API; the socket front end funnels here).
// ---------------------------------------------------------------------------

Json Server::Handle(const Request& request) {
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  // Shutdown stays answerable during a drain (idempotent); everything else
  // is refused so the daemon quiesces instead of racing its own teardown.
  if (draining() && request.op != RequestOp::kShutdown)
    return MakeErrorReply(Status::ResourceExhausted(
        "server is draining; request rejected"));
  switch (request.op) {
    case RequestOp::kGenerate:
      return HandleGenerate(request);
    case RequestOp::kStats:
      return HandleStats();
    case RequestOp::kList:
      return HandleList();
    case RequestOp::kShutdown:
      return HandleShutdown();
    case RequestOp::kUpdate:
      return HandleUpdate(request);
  }
  return MakeErrorReply(Status::Internal("unhandled request op"));
}

std::string Server::HandleFrame(const std::string& frame) {
  Result<Request> request = ParseRequest(frame, options_.max_frame_bytes);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return MakeErrorReply(request.status()).Serialize();
  }
  return Handle(request.value()).Serialize();
}

Json Server::HandleGenerate(const Request& request) {
  Result<std::shared_ptr<CachedModel>> model = cache_->Acquire(request.model);
  if (!model.ok()) return MakeErrorReply(model.status());

  Stopwatch latency;
  std::optional<graphs::TemporalGraph> generated;
  try {
    // One generate per model instance at a time: Generate mutates scratch
    // state. The rng stream is the artifact generate stream, so the reply
    // payload byte-matches `tgsim generate --model PATH --seed N`.
    parallel::MutexLock lock(model.value()->mu);
    Rng rng = eval::MakeSeedStreams(request.seed).generate;
    generated = model.value()->generator->Generate(rng);
  } catch (const std::exception& e) {
    return MakeErrorReply(Status::Internal(
        std::string("generate failed: ") + e.what()));
  }
  std::ostringstream payload;
  datasets::WriteEdgeList(*generated, payload);
  cache_->RecordGenerate(request.model, latency.ElapsedSeconds());

  Json reply = MakeOkReply();
  reply.Set("model", Json::Str(request.model));
  reply.Set("method", Json::Str(model.value()->method));
  reply.Set("seed", Json::Int(static_cast<int64_t>(request.seed)));
  reply.Set("nodes", Json::Int(generated->num_nodes()));
  reply.Set("edges", Json::Int(generated->num_edges()));
  reply.Set("timestamps", Json::Int(generated->num_timestamps()));
  reply.Set("payload", Json::Str(std::move(payload).str()));
  return reply;
}

Json Server::HandleUpdate(const Request& request) {
  // Resolve the configured artifact path first: unknown model names fail
  // fast, before any disk or training work.
  Result<std::string> path = cache_->ArtifactPath(request.model);
  if (!path.ok()) return MakeErrorReply(path.status());
  Result<graphs::TemporalGraph> delta = datasets::LoadEdgeList(request.input);
  if (!delta.ok()) return MakeErrorReply(delta.status());

  // Rebuild from the artifact on disk — never the resident instance, which
  // in-flight generates pin and whose replies must stay byte-identical.
  // The update rng is `tgsim update`'s fit stream, so the swapped-in model
  // equals the artifact a CLI update with the same inputs produces.
  Result<eval::LoadedArtifact> loaded = eval::LoadArtifact(path.value());
  if (!loaded.ok()) return MakeErrorReply(loaded.status());
  Status updated;
  try {
    Rng rng = eval::MakeSeedStreams(request.seed).fit;
    updated = loaded.value().generator->Update(delta.value(), rng);
  } catch (const std::exception& e) {
    return MakeErrorReply(
        Status::Internal(std::string("update failed: ") + e.what()));
  }
  if (!updated.ok()) return MakeErrorReply(updated);

  // Persist the updated state next to the swap so a later reload (eviction,
  // restart, chained update) resumes from it. Write-then-rename keeps the
  // artifact readable at every instant.
  eval::UpdateLineage lineage = loaded.value().lineage;
  lineage.update_count += 1;
  lineage.update_epochs += baselines::kUpdateWarmSnapshotLimit;
  const std::string tmp = path.value() + ".tmp";
  Status saved =
      eval::SaveArtifact(*loaded.value().generator, loaded.value().method,
                         loaded.value().params, tmp, lineage);
  if (!saved.ok()) return MakeErrorReply(saved);
  if (std::rename(tmp.c_str(), path.value().c_str()) != 0) {
    std::remove(tmp.c_str());
    return MakeErrorReply(
        Status::IoError("cannot replace artifact: " + path.value()));
  }

  const std::string method = loaded.value().method;
  Status swapped = cache_->Swap(request.model,
                                std::move(loaded.value().generator), method);
  if (!swapped.ok()) return MakeErrorReply(swapped);

  Json reply = MakeOkReply();
  reply.Set("model", Json::Str(request.model));
  reply.Set("method", Json::Str(method));
  reply.Set("seed", Json::Int(static_cast<int64_t>(request.seed)));
  reply.Set("delta_edges", Json::Int(delta.value().num_edges()));
  reply.Set("update_count", Json::Int(lineage.update_count));
  return reply;
}

Json Server::HandleStats() {
  const double uptime = uptime_.ElapsedSeconds();
  Json reply = MakeOkReply();
  reply.Set("uptime_s", Json::Double(uptime));
  reply.Set("requests",
            Json::Int(total_requests_.load(std::memory_order_relaxed)));
  reply.Set("protocol_errors",
            Json::Int(protocol_errors_.load(std::memory_order_relaxed)));
  reply.Set("cache_budget_bytes", Json::Int(cache_->byte_budget()));
  reply.Set("resident_bytes", Json::Int(cache_->resident_bytes()));
  Json models = Json::Array();
  for (const ModelStats& stats : cache_->Snapshot()) {
    Json row = Json::Object();
    row.Set("name", Json::Str(stats.name));
    row.Set("method", Json::Str(stats.method));
    row.Set("resident", Json::Bool(stats.resident));
    row.Set("bytes", Json::Int(stats.bytes));
    row.Set("requests", Json::Int(stats.requests));
    row.Set("loads", Json::Int(stats.loads));
    row.Set("evictions", Json::Int(stats.evictions));
    row.Set("generates", Json::Int(stats.generates));
    row.Set("qps", Json::Double(
        uptime > 0 ? static_cast<double>(stats.requests) / uptime : 0.0));
    row.Set("mean_latency_s",
            Json::Double(stats.generates > 0
                             ? stats.busy_seconds / stats.generates
                             : 0.0));
    models.Append(std::move(row));
  }
  reply.Set("models", std::move(models));
  return reply;
}

Json Server::HandleList() {
  Json reply = MakeOkReply();
  reply.Set("draining", Json::Bool(draining()));
  Json models = Json::Array();
  for (const ModelStats& stats : cache_->Snapshot()) {
    Json row = Json::Object();
    row.Set("name", Json::Str(stats.name));
    row.Set("method", Json::Str(stats.method));
    row.Set("resident", Json::Bool(stats.resident));
    models.Append(std::move(row));
  }
  reply.Set("models", std::move(models));
  return reply;
}

Json Server::HandleShutdown() {
  BeginDrain();
  Json reply = MakeOkReply();
  reply.Set("draining", Json::Bool(true));
  return reply;
}

// ---------------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------------

void Server::BeginDrain() {
  bool expected = false;
  if (draining_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
#ifndef _WIN32
    // Closing the listener makes a blocked accept() return, so the accept
    // loop observes the drain without polling.
    const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
#endif
  }
  {
    parallel::MutexLock lock(drain_mu_);
  }
  drain_cv_.notify_all();
}

void Server::Wait() {
  parallel::UniqueLock lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return draining(); });
}

void Server::Stop() {
  BeginDrain();
  {
    parallel::MutexLock lock(drain_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Drain order matters: first stop admitting connections (the listener
  // task exits on the closed fd), then drain the per-connection workers
  // (each exits at its next frame boundary or read timeout).
  if (listener_queue_ != nullptr) listener_queue_->Shutdown();
  if (conn_queue_ != nullptr) conn_queue_->Shutdown();
#ifndef _WIN32
  if (!socket_path_.empty()) std::remove(socket_path_.c_str());
#endif
}

// ---------------------------------------------------------------------------
// Socket front end (POSIX local stream socket).
// ---------------------------------------------------------------------------

#ifndef _WIN32

namespace {

/// send() the whole buffer, riding out EINTR; MSG_NOSIGNAL so a client
/// hangup surfaces as EPIPE instead of killing the daemon.
bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status Server::Listen(const std::string& socket_path) {
  if (listener_queue_ != nullptr)
    return Status::InvalidArgument("server is already listening");
  if (draining())
    return Status::InvalidArgument("server is draining");
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path))
    return Status::InvalidArgument(
        "socket path longer than " +
        std::to_string(sizeof(addr.sun_path) - 1) + " bytes: " + socket_path);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  std::remove(socket_path.c_str());  // Replace a stale socket file.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind(" + socket_path +
                           "): " + std::strerror(err));
  }
  if (::listen(fd, 128) < 0) {
    const int err = errno;
    ::close(fd);
    std::remove(socket_path.c_str());
    return Status::IoError("listen(" + socket_path +
                           "): " + std::strerror(err));
  }

  socket_path_ = socket_path;
  listen_fd_.store(fd, std::memory_order_release);
  conn_queue_ = std::make_unique<parallel::TaskQueue>(options_.workers,
                                                      options_.max_pending);
  listener_queue_ = std::make_unique<parallel::TaskQueue>(1, 1);
  listener_queue_->Submit([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::AcceptLoop() {
  while (!draining()) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener closed by BeginDrain, or a fatal accept error.
    }
    // Poll the drain flag every 200 ms even when the client is silent, so
    // a shutdown never waits on an idle connection.
    timeval timeout{};
    timeout.tv_usec = 200 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    auto guard = std::make_shared<FdGuard>(fd);
    // Bounded backpressure: this blocks when all workers are busy and the
    // pending backlog is full. A drain while blocked rejects the task;
    // the guard then closes the connection unserved.
    conn_queue_->Submit([this, guard] { ServeConnection(guard->fd); });
  }
}

void Server::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string frame = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!frame.empty() && frame.back() == '\r') frame.pop_back();
      Result<Request> request =
          ParseRequest(frame, options_.max_frame_bytes);
      std::string reply;
      if (!request.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        reply = MakeErrorReply(request.status()).Serialize();
      } else {
        reply = Handle(request.value()).Serialize();
      }
      reply.push_back('\n');
      if (!WriteAll(fd, reply)) return;
      if (request.ok() && request.value().op == RequestOp::kShutdown)
        return;  // The drain is underway; this connection is done.
      continue;
    }
    if (buffer.size() > options_.max_frame_bytes) {
      // The line never terminated inside the cap: after an error reply the
      // stream cannot be re-framed, so the connection closes (the server
      // itself stays up — the protocol tests pin this).
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      std::string reply =
          MakeErrorReply(Status::ResourceExhausted(
                             "unterminated frame exceeds the " +
                             std::to_string(options_.max_frame_bytes) +
                             "-byte limit; closing connection"))
              .Serialize();
      reply.push_back('\n');
      WriteAll(fd, reply);
      return;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return;  // EOF: client closed.
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (draining()) return;  // Idle connection during a drain.
        continue;
      }
      if (errno == EINTR) continue;
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

#else  // _WIN32

Status Server::Listen(const std::string&) {
  return Status::Internal("tgsim serve sockets require a POSIX platform");
}

void Server::AcceptLoop() {}
void Server::ServeConnection(int) {}

#endif  // _WIN32

}  // namespace tgsim::serve
