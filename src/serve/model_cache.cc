#include "serve/model_cache.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "config/param_map.h"
#include "eval/artifact.h"

namespace tgsim::serve {

namespace {

/// Artifact file size (the budget-charge fallback for generators that do
/// not report ResidentStateBytes), or an IoError.
Result<int64_t> ArtifactBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open())
    return Status::IoError("cannot open artifact: " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("cannot size artifact: " + path);
  return static_cast<int64_t>(size);
}

}  // namespace

ModelCache::ModelCache(std::vector<ModelSpec> models, int64_t byte_budget)
    : byte_budget_(byte_budget) {
  TGSIM_CHECK_GT(byte_budget, 0);
  slots_.reserve(models.size());
  for (ModelSpec& spec : models) {
    Slot slot;
    slot.stats.name = spec.name;
    slot.spec = std::move(spec);
    slots_.push_back(std::move(slot));
  }
}

Status ModelCache::Preload() {
  parallel::MutexLock lock(mu_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].spec.name.empty())
      return Status::InvalidArgument("model names must be non-empty");
    for (size_t j = i + 1; j < slots_.size(); ++j) {
      if (slots_[i].spec.name == slots_[j].spec.name)
        return Status::InvalidArgument("duplicate model name '" +
                                       slots_[i].spec.name + "'");
    }
  }
  for (Slot& slot : slots_) {
    if (slot.resident != nullptr) continue;
    Status loaded = LoadSlotLocked(slot);
    if (!loaded.ok())
      return Status(loaded.code(),
                    "model '" + slot.spec.name + "': " + loaded.message());
  }
  return Status::Ok();
}

ModelCache::Slot* ModelCache::FindSlotLocked(const std::string& name) {
  for (Slot& slot : slots_)
    if (slot.spec.name == name) return &slot;
  return nullptr;
}

Status ModelCache::LoadSlotLocked(Slot& slot) {
  Result<int64_t> file_bytes = ArtifactBytes(slot.spec.path);
  if (!file_bytes.ok()) return file_bytes.status();

  // Load before admission: block-backed artifacts keep their score blocks
  // on disk, so the true resident footprint is only known once the
  // generator exists. Methods that cannot report it (-1) are charged the
  // artifact file size — for inline state the payload *is* the footprint.
  Result<eval::LoadedArtifact> loaded = eval::LoadArtifact(slot.spec.path);
  if (!loaded.ok()) return loaded.status();
  const int64_t resident = loaded.value().generator->ResidentStateBytes();
  const int64_t charge = resident >= 0 ? resident : file_bytes.value();
  if (charge > byte_budget_)
    return Status::ResourceExhausted(
        "artifact needs " + std::to_string(charge) +
        " bytes but the cache budget is " + std::to_string(byte_budget_) +
        " bytes");

  EvictUntilFitsLocked(charge);

  auto model = std::make_shared<CachedModel>();
  model->generator = std::move(loaded).value().generator;
  model->method = loaded.value().method;
  model->bytes = charge;
  InstallLocked(slot, std::move(model));
  return Status::Ok();
}

void ModelCache::EvictUntilFitsLocked(int64_t charge) {
  // Evict strictly-least-traffic residents until the newcomer fits. The
  // order is deterministic: ascending requests, ties least-recently-used.
  while (resident_bytes_ + charge > byte_budget_) {
    Slot* victim = nullptr;
    for (Slot& candidate : slots_) {
      if (candidate.resident == nullptr) continue;
      if (victim == nullptr ||
          candidate.stats.requests < victim->stats.requests ||
          (candidate.stats.requests == victim->stats.requests &&
           candidate.last_use_seq < victim->last_use_seq))
        victim = &candidate;
    }
    // The caller's admission check guarantees the newcomer fits an empty
    // cache, so a victim always exists while we are over budget.
    TGSIM_CHECK(victim != nullptr);
    resident_bytes_ -= victim->resident->bytes;
    victim->resident.reset();  // In-flight requests keep their shared_ptr.
    victim->stats.resident = false;
    victim->stats.evictions += 1;
  }
}

void ModelCache::InstallLocked(Slot& slot,
                               std::shared_ptr<CachedModel> model) {
  slot.resident = std::move(model);
  slot.stats.method = slot.resident->method;
  slot.stats.resident = true;
  slot.stats.bytes = slot.resident->bytes;
  slot.stats.loads += 1;
  resident_bytes_ += slot.resident->bytes;
}

Result<std::shared_ptr<CachedModel>> ModelCache::Acquire(
    const std::string& name) {
  parallel::MutexLock lock(mu_);
  Slot* slot = FindSlotLocked(name);
  if (slot == nullptr) {
    std::string message = "unknown model '" + name + "'";
    std::vector<std::string> names;
    names.reserve(slots_.size());
    for (const Slot& s : slots_) names.push_back(s.spec.name);
    std::string suggestion = config::NearestName(name, names);
    if (!suggestion.empty())
      message += "; did you mean '" + suggestion + "'?";
    return Status::NotFound(message);
  }
  slot->stats.requests += 1;
  slot->last_use_seq = ++use_counter_;
  if (slot->resident == nullptr) {
    Status loaded = LoadSlotLocked(*slot);
    if (!loaded.ok())
      return Status(loaded.code(),
                    "model '" + name + "': " + loaded.message());
  }
  return slot->resident;
}

Result<std::string> ModelCache::ArtifactPath(const std::string& name) const {
  parallel::MutexLock lock(mu_);
  for (const Slot& slot : slots_)
    if (slot.spec.name == name) return slot.spec.path;
  std::string message = "unknown model '" + name + "'";
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const Slot& s : slots_) names.push_back(s.spec.name);
  std::string suggestion = config::NearestName(name, names);
  if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
  return Status::NotFound(message);
}

Status ModelCache::Swap(
    const std::string& name,
    std::unique_ptr<baselines::TemporalGraphGenerator> generator,
    const std::string& method) {
  TGSIM_CHECK(generator != nullptr);
  parallel::MutexLock lock(mu_);
  Slot* slot = FindSlotLocked(name);
  if (slot == nullptr) return Status::NotFound("unknown model '" + name + "'");

  const int64_t resident = generator->ResidentStateBytes();
  int64_t charge = resident;
  if (charge < 0) {
    Result<int64_t> file_bytes = ArtifactBytes(slot->spec.path);
    if (!file_bytes.ok()) return file_bytes.status();
    charge = file_bytes.value();
  }
  if (charge > byte_budget_)
    return Status::ResourceExhausted(
        "updated model needs " + std::to_string(charge) +
        " bytes but the cache budget is " + std::to_string(byte_budget_) +
        " bytes");

  // Release the old instance first (in-flight holders keep theirs alive),
  // then admit the replacement under the freed budget.
  if (slot->resident != nullptr) {
    resident_bytes_ -= slot->resident->bytes;
    slot->resident.reset();
    slot->stats.resident = false;
  }
  EvictUntilFitsLocked(charge);

  auto model = std::make_shared<CachedModel>();
  model->generator = std::move(generator);
  model->method = method;
  model->bytes = charge;
  InstallLocked(*slot, std::move(model));
  return Status::Ok();
}

void ModelCache::RecordGenerate(const std::string& name, double seconds) {
  parallel::MutexLock lock(mu_);
  Slot* slot = FindSlotLocked(name);
  if (slot == nullptr) return;
  slot->stats.generates += 1;
  slot->stats.busy_seconds += seconds;
}

std::vector<ModelStats> ModelCache::Snapshot() const {
  parallel::MutexLock lock(mu_);
  std::vector<ModelStats> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) out.push_back(slot.stats);
  return out;
}

int64_t ModelCache::resident_bytes() const {
  parallel::MutexLock lock(mu_);
  return resident_bytes_;
}

std::vector<std::string> ModelCache::ModelNames() const {
  parallel::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const Slot& slot : slots_) names.push_back(slot.spec.name);
  return names;
}

}  // namespace tgsim::serve
