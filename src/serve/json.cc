#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace tgsim::serve {

namespace {

constexpr int kMaxDepth = 64;

Status ParseError(size_t offset, const std::string& what) {
  return Status::InvalidArgument("JSON parse error at byte " +
                                 std::to_string(offset) + ": " + what);
}

/// Recursive-descent parser over a borrowed buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWhitespace();
    Json value;
    Status parsed = ParseValue(&value, 0);
    if (!parsed.ok()) return parsed;
    SkipWhitespace();
    if (pos_ != text_.size())
      return ParseError(pos_, "trailing characters after value");
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth)
      return ParseError(pos_, "nesting deeper than " +
                                  std::to_string(kMaxDepth) + " levels");
    if (pos_ >= text_.size()) return ParseError(pos_, "unexpected end");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      std::string s;
      Status parsed = ParseString(&s);
      if (!parsed.ok()) return parsed;
      *out = Json::Str(std::move(s));
      return Status::Ok();
    }
    if (c == 't') {
      if (!ConsumeLiteral("true")) return ParseError(pos_, "bad literal");
      *out = Json::Bool(true);
      return Status::Ok();
    }
    if (c == 'f') {
      if (!ConsumeLiteral("false")) return ParseError(pos_, "bad literal");
      *out = Json::Bool(false);
      return Status::Ok();
    }
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return ParseError(pos_, "bad literal");
      *out = Json::Null();
      return Status::Ok();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return ParseError(pos_, std::string("unexpected character '") + c + "'");
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return ParseError(pos_, "expected object key string");
      std::string key;
      Status parsed_key = ParseString(&key);
      if (!parsed_key.ok()) return parsed_key;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return ParseError(pos_, "expected ':' after object key");
      ++pos_;
      SkipWhitespace();
      Json value;
      Status parsed = ParseValue(&value, depth + 1);
      if (!parsed.ok()) return parsed;
      if (out->Find(key) != nullptr)
        return ParseError(pos_, "duplicate object key '" + key + "'");
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size())
        return ParseError(pos_, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::Ok();
      }
      return ParseError(pos_, "expected ',' or '}' in object");
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      Json value;
      Status parsed = ParseValue(&value, depth + 1);
      if (!parsed.ok()) return parsed;
      out->Append(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return ParseError(pos_, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::Ok();
      }
      return ParseError(pos_, "expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return ParseError(pos_, "unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20)
        return ParseError(pos_, "unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return ParseError(pos_, "dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          Status parsed = ParseHex4(&code);
          if (!parsed.ok()) return parsed;
          AppendUtf8(out, code);
          break;
        }
        default:
          return ParseError(pos_ - 1,
                            std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size())
      return ParseError(pos_, "truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + static_cast<size_t>(i)];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return ParseError(pos_ + static_cast<size_t>(i),
                             "bad hex digit in \\u escape");
    }
    pos_ += 4;
    *out = code;
    return Status::Ok();
  }

  /// Encodes a BMP code point as UTF-8 (surrogate pairs are stored as the
  /// raw code units — the protocol only ever ships ASCII payloads).
  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-")
      return ParseError(start, "malformed number");
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        *out = Json::Int(static_cast<int64_t>(v));
        return Status::Ok();
      }
      // Integer overflow: fall through to the double path.
      errno = 0;
    }
    const double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size() || !std::isfinite(d))
      return ParseError(start, "malformed number '" + token + "'");
    *out = Json::Double(d);
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

void SerializeInto(const Json& v, std::string* out);

void SerializeNumber(double d, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void SerializeInto(const Json& v, std::string* out) {
  switch (v.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case Json::Type::kInt:
      *out += std::to_string(v.AsInt());
      break;
    case Json::Type::kDouble:
      SerializeNumber(v.AsDouble(), out);
      break;
    case Json::Type::kString:
      EscapeInto(v.AsString(), out);
      break;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : v.Items()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.Members()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(key, out);
        out->push_back(':');
        SerializeInto(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Json Json::Bool(bool b) {
  Json v;
  v.type_ = Type::kBool;
  v.b_ = b;
  return v;
}

Json Json::Int(int64_t i) {
  Json v;
  v.type_ = Type::kInt;
  v.i_ = i;
  return v;
}

Json Json::Double(double d) {
  Json v;
  v.type_ = Type::kDouble;
  v.d_ = d;
  return v;
}

Json Json::Str(std::string s) {
  Json v;
  v.type_ = Type::kString;
  v.s_ = std::move(s);
  return v;
}

Json Json::Array() {
  Json v;
  v.type_ = Type::kArray;
  return v;
}

Json Json::Object() {
  Json v;
  v.type_ = Type::kObject;
  return v;
}

bool Json::AsBool() const {
  TGSIM_CHECK(is_bool());
  return b_;
}

int64_t Json::AsInt() const {
  TGSIM_CHECK(is_int());
  return i_;
}

double Json::AsDouble() const {
  TGSIM_CHECK(is_number());
  return is_int() ? static_cast<double>(i_) : d_;
}

const std::string& Json::AsString() const {
  TGSIM_CHECK(is_string());
  return s_;
}

const std::vector<Json>& Json::Items() const {
  TGSIM_CHECK(is_array());
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::Members() const {
  TGSIM_CHECK(is_object());
  return members_;
}

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

void Json::Append(Json value) {
  TGSIM_CHECK(is_array());
  items_.push_back(std::move(value));
}

void Json::Set(const std::string& key, Json value) {
  TGSIM_CHECK(is_object());
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

std::string Json::Serialize() const {
  std::string out;
  SerializeInto(*this, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

}  // namespace tgsim::serve
