#ifndef TGSIM_SERVE_CLIENT_H_
#define TGSIM_SERVE_CLIENT_H_

#include <string>

#include "common/status.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace tgsim::serve {

/// One-shot raw call: connects to the daemon's Unix-domain socket, writes
/// `frame` + '\n', and returns the single reply line (without the
/// newline). IoError on connect/write/read failures.
Result<std::string> CallRaw(const std::string& socket_path,
                            const std::string& frame);

/// Typed one-shot call: RenderRequest + CallRaw + ParseReply. Error
/// replies come back as their embedded Status (e.g. NotFound for an
/// unknown model), transport failures as IoError.
Result<Json> Call(const std::string& socket_path, const Request& request);

}  // namespace tgsim::serve

#endif  // TGSIM_SERVE_CLIENT_H_
