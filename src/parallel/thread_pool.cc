#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/check.h"

namespace tgsim::parallel {

namespace {

/// Shared state of one RunChunks region. Chunks are claimed with an atomic
/// ticket counter; each claimed chunk bumps `completed` exactly once
/// (whether it ran or was skipped after a failure), so the caller can wait
/// on completed == num_chunks without depending on helper-task scheduling.
struct RegionState {
  int64_t num_chunks = 0;
  const std::function<void(int64_t)>* fn = nullptr;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // First failure; guarded by mu.
};

/// Claims and executes chunks until the region is drained. Runs on the
/// caller and on any pool worker that picks up a helper task.
void DrainRegion(const std::shared_ptr<RegionState>& s) {
  while (true) {
    const int64_t c = s->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= s->num_chunks) return;
    if (!s->failed.load(std::memory_order_acquire)) {
      try {
        (*s->fn)(c);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(s->mu);
          if (!s->error) s->error = std::current_exception();
        }
        s->failed.store(true, std::memory_order_release);
      }
    }
    if (s->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        s->num_chunks) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->done_cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  TGSIM_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_workers_;
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      --idle_workers_;
      if (queue_.empty()) return;  // stopping_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::SubmitTask(std::function<void()> task) {
  if (workers_.empty()) {
    // Serial fallback: a 1-thread pool runs the task on the caller, so the
    // future Submit returned is already ready when it reaches the caller.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    TGSIM_CHECK(!stopping_);  // Submit after destruction began is a bug.
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::RunChunks(int64_t num_chunks,
                           const std::function<void(int64_t)>& fn) {
  if (num_chunks <= 0) return;
  if (workers_.empty() || num_chunks == 1) {
    // Serial fallback: same chunks, same per-chunk work, caller's thread.
    for (int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  auto state = std::make_shared<RegionState>();
  state->num_chunks = num_chunks;
  state->fn = &fn;
  // One helper per *idle* worker, never more than the remaining chunks;
  // the caller is the remaining executor. Busy workers (e.g. pinned inside
  // an outer region's cells) could not service a helper before this region
  // drains anyway, so enqueueing for them would only grow the queue. The
  // snapshot is advisory — a worker turning busy after it merely leaves a
  // helper that wakes late and exits on an empty ticket.
  int64_t helpers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    helpers = std::min<int64_t>(idle_workers_, num_chunks - 1);
    for (int64_t h = 0; h < helpers; ++h)
      queue_.push_back([state] { DrainRegion(state); });
  }
  for (int64_t h = 0; h < helpers; ++h) cv_.notify_one();
  DrainRegion(state);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&state] {
      return state->completed.load(std::memory_order_acquire) ==
             state->num_chunks;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

int ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("TGSIM_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    // Numeric values clamp into [1, 1024] (so 0 forces the serial
    // fallback); non-numeric values fall through to the hardware default.
    if (end != env) return static_cast<int>(std::clamp(v, 1L, 1024L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

namespace {

std::mutex& GlobalPoolMutex() {
  static std::mutex mu;
  return mu;
}

// Leaked intentionally (like MemoryTracker::Global) so worker threads are
// never joined during static destruction. Lock-free on the read path:
// every multi-chunk ParallelFor dispatch goes through Global(), so a
// mutex here would serialize all concurrent callers.
std::atomic<ThreadPool*> g_pool{nullptr};

}  // namespace

ThreadPool& ThreadPool::Global() {
  ThreadPool* pool = g_pool.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  pool = g_pool.load(std::memory_order_relaxed);
  if (pool == nullptr) {
    pool = new ThreadPool(DefaultNumThreads());
    g_pool.store(pool, std::memory_order_release);
  }
  return *pool;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  TGSIM_CHECK_GE(num_threads, 1);
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  ThreadPool* old = g_pool.load(std::memory_order_relaxed);
  g_pool.store(new ThreadPool(num_threads), std::memory_order_release);
  delete old;  // Caller contract: no regions in flight on the old pool.
}

int ThreadPool::GlobalThreads() { return Global().num_threads(); }

}  // namespace tgsim::parallel
