#ifndef TGSIM_PARALLEL_THREAD_POOL_H_
#define TGSIM_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tgsim::parallel {

/// Persistent work-sharing thread pool behind ParallelFor / ParallelReduce.
///
/// Concurrency model: a pool of size `num_threads` runs work on at most
/// `num_threads` threads *including the caller*, so it spawns
/// `num_threads - 1` workers. A pool of size 1 spawns nothing and RunChunks
/// degenerates to a plain serial loop — the deterministic fallback.
///
/// Nested regions are safe: the thread entering RunChunks always claims and
/// executes chunks itself, so completion never depends on a pool worker
/// becoming available. Helper tasks that fire after a region has drained
/// find no chunks and exit immediately.
///
/// Determinism contract (see README "Threading model"): chunk decomposition
/// is decided by the *caller* (ParallelFor's grain), never by the pool, and
/// every chunk is executed exactly once with disjoint side effects — so all
/// results are bit-identical for any thread count, including 1.
class ThreadPool {
 public:
  /// `num_threads` >= 1 is the total usable concurrency (callers + workers).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (worker threads + the calling thread).
  int num_threads() const { return num_threads_; }

  /// Executes fn(c) for every chunk index c in [0, num_chunks), on the
  /// calling thread plus any available pool workers. Blocks until every
  /// chunk has finished. The first exception thrown by any chunk is
  /// rethrown on the calling thread (remaining chunks are skipped).
  void RunChunks(int64_t num_chunks, const std::function<void(int64_t)>& fn);

  /// Asynchronous single tasks on top of the same workers: runs `fn` on a
  /// pool worker and returns a future for its result. An exception thrown
  /// by `fn` is rethrown by future.get(). On a pool of size 1 (no workers)
  /// the task runs inline before Submit returns — the serial fallback that
  /// keeps single-threaded runs deterministic and deadlock-free.
  ///
  /// Submitted tasks and RunChunks helper tasks share the worker queue;
  /// Submit never blocks the caller (the queue is unbounded here — use
  /// parallel::TaskQueue for bounded admission and cancellation).
  /// Tasks still queued at destruction are drained, not dropped.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto promise = std::make_shared<std::promise<R>>();
    std::future<R> future = promise->get_future();
    SubmitTask([promise, fn = std::move(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
          promise->set_value();
        } else {
          promise->set_value(fn());
        }
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
    return future;
  }

  /// Process-wide pool. Sized on first use from the TGSIM_NUM_THREADS
  /// environment variable if set (clamped to [1, 1024]), otherwise from
  /// std::thread::hardware_concurrency().
  static ThreadPool& Global();

  /// Replaces the global pool with one of the given size. Intended for
  /// tests and benchmarks; must not race with in-flight parallel regions.
  static void SetGlobalThreads(int num_threads);

  /// Concurrency of the global pool (creates it on first call).
  static int GlobalThreads();

  /// The thread count Global() uses on first creation: TGSIM_NUM_THREADS
  /// if set and valid, hardware_concurrency() otherwise, always >= 1.
  static int DefaultNumThreads();

 private:
  void WorkerLoop();

  /// Type-erased core of Submit: enqueues `task` for a worker, or runs it
  /// inline when the pool has no workers. `task` must not throw (Submit
  /// wraps everything into the promise).
  void SubmitTask(std::function<void()> task);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  /// Workers currently parked on cv_ (guarded by mu_). RunChunks only
  /// enqueues as many helper tasks as there are idle workers, so nested
  /// regions on a saturated pool don't grow the queue with helpers nobody
  /// can service until the outer region ends.
  int idle_workers_ = 0;
};

}  // namespace tgsim::parallel

#endif  // TGSIM_PARALLEL_THREAD_POOL_H_
