#include "parallel/task_queue.h"

#include "common/check.h"

namespace tgsim::parallel {

TaskQueue::TaskQueue(int num_workers, size_t max_pending)
    : num_workers_(num_workers), max_pending_(max_pending) {
  TGSIM_CHECK_GE(num_workers, 1);
  TGSIM_CHECK_GE(max_pending, size_t{1});
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

TaskQueue::~TaskQueue() { Shutdown(); }

bool TaskQueue::Enqueue(Task task, bool block) {
  {
    UniqueLock lock(mu_);
    if (block) {
      space_cv_.wait(lock, [this] {
        return queue_.size() < max_pending_ ||
               closed_.load(std::memory_order_relaxed);
      });
    }
    if (closed_.load(std::memory_order_relaxed) ||
        queue_.size() >= max_pending_)
      return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void TaskQueue::WorkerLoop() {
  while (true) {
    Task task;
    {
      UniqueLock lock(mu_);
      work_cv_.wait(lock, [this] {
        return !queue_.empty() || closed_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) return;  // Closed and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();
    // The drain contract: a cancelled task's future resolves (with
    // TaskCancelledError) without the task body ever running.
    if (task.token.cancelled())
      task.cancel();
    else
      task.run();
  }
}

void TaskQueue::Shutdown() {
  {
    MutexLock lock(mu_);
    closed_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  MutexLock lock(shutdown_mu_);
  if (joined_) return;
  for (std::thread& w : workers_) w.join();
  joined_ = true;
}

size_t TaskQueue::pending() const {
  MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace tgsim::parallel
