#ifndef TGSIM_PARALLEL_TASK_QUEUE_H_
#define TGSIM_PARALLEL_TASK_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "parallel/sync.h"

namespace tgsim::parallel {

/// The async half of the parallel runtime (the serve daemon's request
/// spine). Where ThreadPool::RunChunks executes one fork/join region and
/// ThreadPool::Submit gives fire-and-collect futures on the shared pool, a
/// TaskQueue owns dedicated workers and adds what a long-lived service
/// needs:
///
///  - a *bounded* FIFO queue: Submit blocks for space (backpressure),
///    TrySubmit rejects instead of blocking;
///  - cooperative cancellation: a task whose CancelToken is cancelled
///    before a worker dequeues it never runs — its future throws
///    TaskCancelledError; running tasks may poll the token themselves;
///  - graceful drain: Shutdown() stops admission, runs every task already
///    accepted (in FIFO order per worker), then joins the workers.
///
/// Exceptions thrown by a task propagate through its future. TaskQueue is
/// the only sanctioned way for other modules to get persistent worker
/// threads (ROADMAP: only src/parallel spawns threads or takes locks).

/// Thrown through the future of a task whose CancelToken was cancelled
/// before the task started executing.
class TaskCancelledError : public std::runtime_error {
 public:
  TaskCancelledError()
      : std::runtime_error("task cancelled before execution") {}
};

/// Thrown through the future of a task submitted after Shutdown() began
/// (or rejected while blocked for space when the queue shut down).
class TaskRejectedError : public std::runtime_error {
 public:
  TaskRejectedError() : std::runtime_error("task queue is shut down") {}
};

/// Shared cancellation flag: the submitter keeps one copy, the queue (and
/// optionally the task body) another. Copies observe the same flag.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class TaskQueue {
 public:
  /// `num_workers` >= 1 dedicated threads; at most `max_pending` >= 1
  /// accepted-but-not-started tasks (tasks being executed do not count).
  TaskQueue(int num_workers, size_t max_pending);

  /// Equivalent to Shutdown(): drains accepted tasks, joins workers.
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Schedules `fn` and returns a future for its result. Blocks while the
  /// queue is full. If the queue is (or becomes, while blocked) shut down,
  /// the returned future throws TaskRejectedError; if `token` is cancelled
  /// before a worker picks the task up, it throws TaskCancelledError.
  template <typename Fn>
  auto Submit(Fn fn, CancelToken token = CancelToken())
      -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto promise = std::make_shared<std::promise<R>>();
    std::future<R> future = promise->get_future();
    if (!Enqueue(MakeTask(std::move(fn), promise, std::move(token)),
                 /*block=*/true))
      promise->set_exception(std::make_exception_ptr(TaskRejectedError()));
    return future;
  }

  /// Non-blocking Submit: returns std::nullopt instead of waiting when the
  /// queue is full or shut down (the caller sheds load instead of queuing).
  template <typename Fn>
  auto TrySubmit(Fn fn, CancelToken token = CancelToken())
      -> std::optional<std::future<std::invoke_result_t<Fn&>>> {
    using R = std::invoke_result_t<Fn&>;
    auto promise = std::make_shared<std::promise<R>>();
    std::future<R> future = promise->get_future();
    if (!Enqueue(MakeTask(std::move(fn), promise, std::move(token)),
                 /*block=*/false))
      return std::nullopt;
    return future;
  }

  /// Stops admission, runs every already-accepted task to completion (in
  /// submission order per worker; cancelled tasks short-circuit), joins the
  /// workers. Idempotent; concurrent callers all block until the drain is
  /// complete.
  void Shutdown();

  int num_workers() const { return num_workers_; }
  size_t max_pending() const { return max_pending_; }

  /// Accepted-but-not-started tasks (advisory: racy by nature).
  size_t pending() const;

  /// True once Shutdown() has begun (even before the drain completes).
  bool shutting_down() const {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  struct Task {
    std::function<void()> run;     // Fulfils the promise (never throws).
    std::function<void()> cancel;  // Sets TaskCancelledError instead.
    CancelToken token;
  };

  template <typename Fn, typename R>
  Task MakeTask(Fn fn, std::shared_ptr<std::promise<R>> promise,
                CancelToken token) {
    Task task;
    task.run = [promise, fn = std::move(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
          promise->set_value();
        } else {
          promise->set_value(fn());
        }
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    };
    task.cancel = [promise] {
      promise->set_exception(std::make_exception_ptr(TaskCancelledError()));
    };
    task.token = std::move(token);
    return task;
  }

  /// Adds the task (blocking for space if `block`); false on rejection.
  bool Enqueue(Task task, bool block);
  void WorkerLoop();

  const int num_workers_;
  const size_t max_pending_;
  std::vector<std::thread> workers_;

  mutable Mutex mu_;
  CondVar work_cv_;   // Signals workers: task available or closed.
  CondVar space_cv_;  // Signals submitters: slot freed or closed.
  std::deque<Task> queue_;
  std::atomic<bool> closed_{false};
  Mutex shutdown_mu_;
  bool joined_ = false;  // Guarded by shutdown_mu_.
};

}  // namespace tgsim::parallel

#endif  // TGSIM_PARALLEL_TASK_QUEUE_H_
