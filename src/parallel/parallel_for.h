#ifndef TGSIM_PARALLEL_PARALLEL_FOR_H_
#define TGSIM_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

namespace tgsim::parallel {

/// Default grain for flat elementwise loops: below this many scalars a
/// region collapses to one inline chunk with zero pool overhead. Shared by
/// every kernel call site (tensor.cc, autograd.cc) so their chunk shapes —
/// and therefore which results are float-comparable — stay in sync.
inline constexpr int64_t kElementwiseGrain = int64_t{1} << 15;

/// Grain for loops over matrix rows, normalized by the row width so one
/// chunk still covers ~kElementwiseGrain scalars.
inline int64_t RowGrain(int cols) {
  return std::max<int64_t>(1, kElementwiseGrain / std::max(cols, 1));
}

/// Number of grain-sized chunks covering [begin, end). Depends only on the
/// range and the grain — never on the thread count — which is what makes
/// every parallel result below reproducible across pool sizes.
inline int64_t NumChunks(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) return 0;
  grain = std::max<int64_t>(1, grain);
  return (end - begin + grain - 1) / grain;
}

/// Runs fn(chunk_begin, chunk_end) over grain-sized slices of [begin, end)
/// on the global thread pool. fn must only write state disjoint per chunk
/// (e.g. distinct output rows); under that contract the result is
/// bit-identical for any thread count. A single-chunk range runs inline
/// with zero pool overhead.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  const int64_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return;
  grain = std::max<int64_t>(1, grain);
  if (chunks == 1) {
    fn(begin, end);
    return;
  }
  ThreadPool::Global().RunChunks(chunks, [&](int64_t c) {
    const int64_t b = begin + c * grain;
    fn(b, std::min(end, b + grain));
  });
}

/// Deterministic chunked reduction: map(chunk_begin, chunk_end) -> T per
/// grain-sized chunk, then combine(acc, partial) folded in ascending chunk
/// order. Chunk boundaries and combine order are fixed by (range, grain),
/// so the result — including its floating-point rounding — is identical
/// for every thread count. T must be default- and move-constructible.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
                 MapFn&& map, CombineFn&& combine) {
  const int64_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return init;
  grain = std::max<int64_t>(1, grain);
  if (chunks == 1) return combine(std::move(init), map(begin, end));
  std::vector<T> partial(static_cast<size_t>(chunks));
  ThreadPool::Global().RunChunks(chunks, [&](int64_t c) {
    const int64_t b = begin + c * grain;
    partial[static_cast<size_t>(c)] = map(b, std::min(end, b + grain));
  });
  T acc = std::move(init);
  for (int64_t c = 0; c < chunks; ++c)
    acc = combine(std::move(acc), std::move(partial[static_cast<size_t>(c)]));
  return acc;
}

}  // namespace tgsim::parallel

#endif  // TGSIM_PARALLEL_PARALLEL_FOR_H_
