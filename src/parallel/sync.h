#ifndef TGSIM_PARALLEL_SYNC_H_
#define TGSIM_PARALLEL_SYNC_H_

#include <condition_variable>
#include <mutex>

/// The repository's lock surface. ROADMAP layering says only src/parallel
/// may spawn threads or take locks; modules that need mutual exclusion for
/// state shared with parallel/ tasks (e.g. serve's model cache) take their
/// locks through these aliases instead of including <mutex> directly, so
/// every lock in the tree is grep-able under the parallel:: namespace and
/// swept by the TSan CI job.

namespace tgsim::parallel {

using Mutex = std::mutex;
using MutexLock = std::lock_guard<std::mutex>;
using UniqueLock = std::unique_lock<std::mutex>;
using CondVar = std::condition_variable;

}  // namespace tgsim::parallel

#endif  // TGSIM_PARALLEL_SYNC_H_
