#include "config/param_map.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

namespace tgsim::config {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool HasWhitespace(const std::string& s) {
  return std::any_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

Status TypeError(const std::string& key, const std::string& value,
                 const char* type) {
  return Status::InvalidArgument("parameter '" + key + "': cannot parse '" +
                                 value + "' as " + type);
}

}  // namespace

std::string ParamTypeName(ParamType type) {
  switch (type) {
    case ParamType::kBool: return "bool";
    case ParamType::kInt: return "int";
    case ParamType::kInt64: return "int64";
    case ParamType::kDouble: return "double";
    case ParamType::kString: return "string";
  }
  return "unknown";
}

const ParamSpec* ParamSchema::Find(const std::string& key) const {
  for (const ParamSpec& spec : specs)
    if (spec.key == key) return &spec;
  return nullptr;
}

std::vector<std::string> ParamSchema::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(specs.size());
  for (const ParamSpec& spec : specs) keys.push_back(spec.key);
  return keys;
}

std::string ParamSchema::Describe() const {
  size_t width = 0;
  std::vector<std::string> heads;
  heads.reserve(specs.size());
  for (const ParamSpec& spec : specs) {
    heads.push_back(spec.key + " (" + ParamTypeName(spec.type) +
                    ", default=" + spec.default_value + ")");
    width = std::max(width, heads.back().size());
  }
  std::string out;
  for (size_t i = 0; i < specs.size(); ++i) {
    out += "  " + heads[i];
    out.append(width - heads[i].size() + 2, ' ');
    out += specs[i].help + "\n";
  }
  return out;
}

Result<ParamMap> ParamMap::FromTokens(const std::vector<std::string>& tokens) {
  ParamMap map;
  for (const std::string& token : tokens) {
    size_t eq = token.find('=');
    if (eq == std::string::npos)
      return Status::InvalidArgument("expected key=value, got '" + token +
                                     "'");
    std::string key = token.substr(0, eq);
    if (key.empty() || HasWhitespace(key))
      return Status::InvalidArgument("bad parameter key in '" + token + "'");
    Status s = map.Set(key, token.substr(eq + 1));
    if (!s.ok()) return s;
  }
  return map;
}

Result<ParamMap> ParamMap::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open())
    return Status::IoError("cannot open config file: " + path);
  ParamMap map;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos)
      return Status::InvalidArgument("expected key = value at line " +
                                     std::to_string(line_no) + " of " + path);
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (key.empty() || HasWhitespace(key))
      return Status::InvalidArgument("bad parameter key at line " +
                                     std::to_string(line_no) + " of " + path);
    Status s = map.Set(key, std::move(value));
    if (!s.ok())
      return Status::InvalidArgument(s.message() + " at line " +
                                     std::to_string(line_no) + " of " + path);
  }
  return map;
}

Status ParamMap::Set(const std::string& key, std::string value) {
  if (Has(key))
    return Status::InvalidArgument("duplicate parameter '" + key + "'");
  entries_.emplace_back(key, std::move(value));
  return Status::Ok();
}

void ParamMap::Override(const std::string& key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

bool ParamMap::Has(const std::string& key) const {
  return FindRaw(key) != nullptr;
}

const std::string* ParamMap::FindRaw(const std::string& key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

Result<bool> ParamMap::GetBool(const std::string& key) const {
  const std::string* raw = FindRaw(key);
  if (raw == nullptr)
    return Status::NotFound("parameter '" + key + "' is not set");
  const std::string v = Lower(Trim(*raw));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return TypeError(key, *raw, "bool");
}

Result<int64_t> ParamMap::GetInt64(const std::string& key) const {
  const std::string* raw = FindRaw(key);
  if (raw == nullptr)
    return Status::NotFound("parameter '" + key + "' is not set");
  const std::string v = Trim(*raw);
  if (v.empty()) return TypeError(key, *raw, "int64");
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (errno == ERANGE || end != v.c_str() + v.size())
    return TypeError(key, *raw, "int64");
  return static_cast<int64_t>(parsed);
}

Result<int> ParamMap::GetInt(const std::string& key) const {
  Result<int64_t> wide = GetInt64(key);
  if (!wide.ok()) {
    if (wide.status().code() == StatusCode::kNotFound) return wide.status();
    return TypeError(key, *FindRaw(key), "int");
  }
  if (wide.value() < std::numeric_limits<int>::min() ||
      wide.value() > std::numeric_limits<int>::max())
    return TypeError(key, *FindRaw(key), "int");
  return static_cast<int>(wide.value());
}

Result<double> ParamMap::GetDouble(const std::string& key) const {
  const std::string* raw = FindRaw(key);
  if (raw == nullptr)
    return Status::NotFound("parameter '" + key + "' is not set");
  const std::string v = Trim(*raw);
  if (v.empty()) return TypeError(key, *raw, "double");
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(v.c_str(), &end);
  if (errno == ERANGE || end != v.c_str() + v.size())
    return TypeError(key, *raw, "double");
  return parsed;
}

Result<std::string> ParamMap::GetString(const std::string& key) const {
  const std::string* raw = FindRaw(key);
  if (raw == nullptr)
    return Status::NotFound("parameter '" + key + "' is not set");
  return *raw;
}

std::vector<std::string> ParamMap::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [k, v] : entries_) keys.push_back(k);
  return keys;
}

std::string ParamMap::ToString() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    if (!out.empty()) out += ' ';
    out += k + "=" + v;
  }
  return out;
}

std::string NearestName(const std::string& query,
                        const std::vector<std::string>& candidates) {
  // Classic two-row Levenshtein; inputs are short method/parameter names.
  auto distance = [](const std::string& a, const std::string& b) {
    std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      cur[0] = i;
      for (size_t j = 1; j <= b.size(); ++j) {
        size_t sub = prev[j - 1] +
                     (std::tolower(static_cast<unsigned char>(a[i - 1])) !=
                      std::tolower(static_cast<unsigned char>(b[j - 1])));
        cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      }
      std::swap(prev, cur);
    }
    return prev[b.size()];
  };
  std::string best;
  size_t best_distance = 4;  // Suggest only within edit distance 3.
  for (const std::string& candidate : candidates) {
    size_t d = distance(query, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

template <typename T, typename Getter>
void ParamBinder::BindImpl(const std::string& key, T* field, ParamType type,
                           std::string default_value, const std::string& help,
                           Getter getter) {
  schema_.specs.push_back(
      {key, type, std::move(default_value), help});
  if (params_ == nullptr || !params_->Has(key)) return;
  Result<T> parsed = getter(key);
  if (!parsed.ok()) {
    if (first_error_.ok()) first_error_ = parsed.status();
    return;
  }
  *field = std::move(parsed).value();
}

void ParamBinder::Bind(const std::string& key, bool* field,
                       const std::string& help) {
  BindImpl(key, field, ParamType::kBool, *field ? "true" : "false", help,
           [this](const std::string& k) { return params_->GetBool(k); });
}

void ParamBinder::Bind(const std::string& key, int* field,
                       const std::string& help) {
  BindImpl(key, field, ParamType::kInt, std::to_string(*field), help,
           [this](const std::string& k) { return params_->GetInt(k); });
}

void ParamBinder::Bind(const std::string& key, int64_t* field,
                       const std::string& help) {
  BindImpl(key, field, ParamType::kInt64, std::to_string(*field), help,
           [this](const std::string& k) { return params_->GetInt64(k); });
}

void ParamBinder::Bind(const std::string& key, double* field,
                       const std::string& help) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", *field);
  BindImpl(key, field, ParamType::kDouble, buf, help,
           [this](const std::string& k) { return params_->GetDouble(k); });
}

void ParamBinder::Bind(const std::string& key, std::string* field,
                       const std::string& help) {
  BindImpl(key, field, ParamType::kString, *field, help,
           [this](const std::string& k) { return params_->GetString(k); });
}

Status ParamBinder::Finish() const {
  if (!first_error_.ok()) return first_error_;
  if (params_ == nullptr) return Status::Ok();
  const std::vector<std::string> known = schema_.Keys();
  for (const std::string& key : params_->Keys()) {
    if (schema_.Find(key) != nullptr) continue;
    std::string message = "unknown parameter '" + key + "'";
    std::string suggestion = NearestName(key, known);
    if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
    return Status::InvalidArgument(message);
  }
  return Status::Ok();
}

}  // namespace tgsim::config
