#ifndef TGSIM_CONFIG_PARAM_MAP_H_
#define TGSIM_CONFIG_PARAM_MAP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

/// Typed string-keyed parameter surface (common-tier; see ROADMAP layering:
/// common -> config -> everything else). A ParamMap carries raw `key=value`
/// assignments parsed from CLI tokens or a `.cfg` file; ParamBinder applies
/// them onto a config struct's fields with type checking, unknown-key
/// detection and schema introspection, so every generator hyper-parameter is
/// settable without recompiling (`tgsim generate --param epochs=5 ...`).

namespace tgsim::config {

/// Value types a parameter can bind to.
enum class ParamType { kBool, kInt, kInt64, kDouble, kString };

/// Lower-case type name ("bool", "int", "int64", "double", "string").
std::string ParamTypeName(ParamType type);

/// One tunable parameter of a config struct: name, type, rendered default
/// and a one-line help string.
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kString;
  std::string default_value;
  std::string help;
};

/// Ordered parameter schema of one config struct / method.
struct ParamSchema {
  std::vector<ParamSpec> specs;

  const ParamSpec* Find(const std::string& key) const;
  std::vector<std::string> Keys() const;
  bool empty() const { return specs.empty(); }

  /// Multi-line rendering: one `  key (type, default=..)  help` row per
  /// parameter. Empty string for an empty schema.
  std::string Describe() const;
};

/// An ordered set of raw `key=value` assignments with unique keys. Values
/// stay strings until a typed getter (or a ParamBinder) parses them, so a
/// ParamMap round-trips exactly through ToString()/FromTokens().
class ParamMap {
 public:
  ParamMap() = default;

  /// Parses `key=value` tokens (the CLI `--param` form). Rejects tokens
  /// without '=', empty keys, keys with whitespace, and duplicate keys.
  static Result<ParamMap> FromTokens(const std::vector<std::string>& tokens);

  /// Parses a simple config file: one `key = value` assignment per line,
  /// blank lines and lines starting with '#' ignored, trailing `# comment`
  /// stripped. Errors carry the offending line number.
  static Result<ParamMap> FromFile(const std::string& path);

  /// Adds an assignment; duplicate keys are an InvalidArgument error.
  Status Set(const std::string& key, std::string value);

  /// Adds or replaces an assignment (used for preset / file / CLI layering,
  /// where later sources win).
  void Override(const std::string& key, std::string value);

  bool Has(const std::string& key) const;
  /// Raw value, or nullptr if the key is absent.
  const std::string* FindRaw(const std::string& key) const;

  /// Typed getters: NotFound if the key is absent, InvalidArgument if the
  /// raw value does not parse as the requested type (bools accept
  /// true/false/1/0/yes/no/on/off, case-insensitive).
  Result<bool> GetBool(const std::string& key) const;
  Result<int> GetInt(const std::string& key) const;
  Result<int64_t> GetInt64(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;

  /// Keys in insertion order.
  std::vector<std::string> Keys() const;
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Space-separated `key=value` rendering; FromTokens on the split result
  /// reproduces the map.
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Nearest candidate by edit distance (for "did you mean ...?" messages), or
/// "" when nothing is within distance 3.
std::string NearestName(const std::string& query,
                        const std::vector<std::string>& candidates);

/// Applies a ParamMap onto config-struct fields and/or collects the schema.
///
/// A config struct implements one method,
///
///   void DefineParams(config::ParamBinder& binder) {
///     binder.Bind("epochs", &epochs, "training epochs");
///     ...
///   }
///
/// and TGSIM_CONFIG_IMPLEMENT_PARAMS(Type) derives ApplyParams()/Schema()
/// from it. In apply mode (non-null map) each Bind parses and assigns the
/// matching value; Finish() returns the first type error, or an
/// unknown-parameter error (with a nearest-key suggestion) if the map holds
/// keys no Bind consumed. In describe mode (null map) the Binds record
/// ParamSpecs whose defaults are rendered from the bound fields.
class ParamBinder {
 public:
  explicit ParamBinder(const ParamMap* params) : params_(params) {}

  void Bind(const std::string& key, bool* field, const std::string& help);
  void Bind(const std::string& key, int* field, const std::string& help);
  void Bind(const std::string& key, int64_t* field, const std::string& help);
  void Bind(const std::string& key, double* field, const std::string& help);
  void Bind(const std::string& key, std::string* field,
            const std::string& help);

  /// Apply-mode verdict: first parse error, else unknown-key check.
  Status Finish() const;

  /// Describe-mode result: the collected schema.
  ParamSchema TakeSchema() { return std::move(schema_); }

 private:
  template <typename T, typename Getter>
  void BindImpl(const std::string& key, T* field, ParamType type,
                std::string default_value, const std::string& help,
                Getter getter);

  const ParamMap* params_;
  ParamSchema schema_;
  Status first_error_;
};

}  // namespace tgsim::config

/// Generates the out-of-line ApplyParams()/Schema() pair for a config
/// struct that declares them and implements DefineParams(ParamBinder&).
#define TGSIM_CONFIG_IMPLEMENT_PARAMS(ConfigType)                       \
  ::tgsim::Status ConfigType::ApplyParams(                              \
      const ::tgsim::config::ParamMap& params) {                        \
    ::tgsim::config::ParamBinder binder(&params);                       \
    DefineParams(binder);                                               \
    return binder.Finish();                                             \
  }                                                                     \
  ::tgsim::config::ParamSchema ConfigType::Schema() {                   \
    ConfigType defaults;                                                \
    ::tgsim::config::ParamBinder binder(nullptr);                       \
    defaults.DefineParams(binder);                                      \
    return binder.TakeSchema();                                         \
  }

#endif  // TGSIM_CONFIG_PARAM_MAP_H_
