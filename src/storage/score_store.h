#ifndef TGSIM_STORAGE_SCORE_STORE_H_
#define TGSIM_STORAGE_SCORE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/block_file.h"
#include "storage/sparse_rows.h"

namespace tgsim::storage {

/// Name of snapshot t's block inside a score BlockFile ("t0", "t1", ...).
std::string ScoreBlockName(int t);

/// Per-timestamp collection of sparse score rows behind the four
/// score-matrix generators. Two modes, one API:
///
///   - resident: every snapshot lives in memory as SparseScoreRows (the
///     post-Fit state, and small loaded artifacts);
///   - block-backed: snapshots stay inside a BlockFile and are mmap'd on
///     demand, one at a time, so generation peaks at O(nnz of one
///     snapshot) instead of O(sum) — the out-of-core path.
///
/// Snapshots with no edges have no entry (`has(t)` false); generation
/// treats them as zero mass. `Snapshot(t)` hands out a Lease whose view
/// is valid while the Lease lives — in block mode the Lease pins the
/// mapping, so hold it for the duration of one snapshot's sampling and
/// let it drop before the next.
class ScoreStore {
 public:
  ScoreStore() = default;

  /// Takes ownership of fitted snapshots (index = timestamp; empty
  /// entries mean "no scores for this t").
  static ScoreStore FromResident(std::vector<SparseScoreRows> snapshots);

  /// Wraps an already-parsed BlockFile holding blocks named by
  /// ScoreBlockName. Structural validation of each present block happens
  /// in CheckSnapshot (callers run it per snapshot right after this).
  static ScoreStore FromBlockFile(BlockFileReader reader, int num_timestamps);

  int num_timestamps() const { return num_timestamps_; }
  bool block_backed() const { return block_backed_; }
  bool has(int t) const;

  /// Validates snapshot t without handing out a lease: decodes (block
  /// mode) or inspects (resident mode) and requires an n x n shape.
  /// Absent snapshots pass. This is the Status-typed half of loading;
  /// after it succeeds, Snapshot() treats failure as a programming error.
  Status CheckSnapshot(int t, int expected_nodes) const;

  struct Lease {
    SparseScoreRowsView view;
    MappedBlock block;  // pins the mapping in block mode; empty otherwise
  };

  /// Leases snapshot t (`has(t)` must hold). In block mode this maps and
  /// decodes the block; corruption after a successful CheckSnapshot is a
  /// checked programming error.
  Lease Snapshot(int t) const;

  /// Heap + structure bytes held resident by this store. Block-backed
  /// stores count only bookkeeping, not the mmap'd payload — that is the
  /// point of the format.
  int64_t ResidentBytes() const;

  /// Total stored entries across snapshots (decodes headers on demand in
  /// block mode).
  int64_t TotalNnz() const;

  // -- Fit-side mutation (resident mode only) ---------------------------

  /// Clears to an all-absent resident store of `num_timestamps` slots.
  void Reset(int num_timestamps);
  /// Installs snapshot t (Reset first; resident mode only).
  void Set(int t, SparseScoreRows rows);

 private:
  bool block_backed_ = false;
  int num_timestamps_ = 0;
  std::vector<SparseScoreRows> resident_;
  BlockFileReader reader_;  // engaged iff block_backed_
};

}  // namespace tgsim::storage

#endif  // TGSIM_STORAGE_SCORE_STORE_H_
