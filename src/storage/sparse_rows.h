#ifndef TGSIM_STORAGE_SPARSE_ROWS_H_
#define TGSIM_STORAGE_SPARSE_ROWS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"
#include "serialize/serialization.h"

namespace tgsim::storage {

/// Non-owning CSR view over one snapshot's sparse score rows. The score
/// methods' generation path consumes this instead of `Tensor::at`: alias
/// tables build directly over a row's (col, weight) entries, so sampling
/// cost scales with the stored entries (O(nnz)), not with n^2.
///
/// Invariants (enforced by every construction path):
///   - row_ptr has rows+1 monotone entries, row_ptr[0] == 0;
///   - cols are in [0, cols) and strictly ascending within a row, never the
///     diagonal;
///   - weights are finite and strictly positive;
///   - remainder[r] >= 0 is the score mass the top-k truncation dropped
///     from row r (exactly 0.0 when the row was stored untruncated).
struct SparseScoreRowsView {
  int rows = 0;
  int cols = 0;
  std::span<const int64_t> row_ptr;   // size rows + 1
  std::span<const int64_t> col;       // size nnz, ascending per row
  std::span<const double> weight;     // size nnz, > 0
  std::span<const double> remainder;  // size rows, truncated mass per row

  int64_t nnz() const { return row_ptr.empty() ? 0 : row_ptr.back(); }

  /// One row's stored entries + its truncated remainder mass.
  struct Row {
    std::span<const int64_t> cols;
    std::span<const double> weights;
    double remainder = 0.0;
  };
  Row row(int r) const {
    const auto begin = static_cast<size_t>(row_ptr[static_cast<size_t>(r)]);
    const auto end = static_cast<size_t>(row_ptr[static_cast<size_t>(r) + 1]);
    return Row{col.subspan(begin, end - begin),
               weight.subspan(begin, end - begin),
               remainder[static_cast<size_t>(r)]};
  }
};

/// Owning per-snapshot score container: each row's top-k (score, col)
/// pairs plus the row-mass remainder the truncation dropped. The build is
/// a deterministic function of the input scores and `topk` — selection
/// keeps the k largest weights (ties broken toward the smaller column) and
/// stores them in ascending-column order, so rebuilding from the same
/// dense matrix always yields bit-identical arrays.
class SparseScoreRows {
 public:
  SparseScoreRows() = default;

  /// Compacts a dense n x n score matrix: entry (r, c) contributes weight
  /// max(0, scores(r, c)) off the diagonal; zero and diagonal entries are
  /// never stored. `topk <= 0` keeps every positive entry (no truncation,
  /// remainder exactly 0) — the preset=paper path. With `topk >= n` the
  /// result is identical to the untruncated build, which is what makes
  /// sparse and dense generation draw the same edges.
  static SparseScoreRows FromDense(const nn::Tensor& scores, int64_t topk);

  /// Compacts an active-submatrix fit result: the logical n x n matrix has
  /// sub(i, j) at (active[i], active[j]) and zero elsewhere. Equivalent to
  /// (but never materializing) FromDense of the embedded matrix: `active`
  /// is ascending, so scattered entries keep ascending-column order.
  static SparseScoreRows FromSubmatrix(int num_nodes,
                                       const std::vector<int>& active,
                                       const nn::Tensor& sub, int64_t topk);

  /// Validates and adopts raw CSR arrays (the deserialization path).
  /// InvalidArgument on any invariant violation, never a crash.
  static Result<SparseScoreRows> FromParts(int rows, int cols,
                                           std::vector<int64_t> row_ptr,
                                           std::vector<int64_t> col,
                                           std::vector<double> weight,
                                           std::vector<double> remainder);

  /// Deep copy of a (possibly mmap-backed) view.
  static SparseScoreRows CopyOf(const SparseScoreRowsView& view);

  /// Row-wise mixture of two row sets over the same logical matrix: each
  /// input row is normalized to unit mass (stored entries plus remainder)
  /// and the merged row is w_a * a + w_b * b on the union of columns,
  /// re-truncated to `topk` with the dropped mass folded into the
  /// remainder. The incremental-update path uses this to blend a
  /// snapshot's fitted rows with rows fitted on a delta batch, weighting
  /// by edge counts. Deterministic function of its inputs. Requires
  /// matching shapes and non-negative weights with a positive sum.
  static SparseScoreRows WeightedMerge(const SparseScoreRowsView& a,
                                       double w_a,
                                       const SparseScoreRowsView& b,
                                       double w_b, int64_t topk);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return row_ptr_.empty() ? 0 : row_ptr_.back(); }
  bool empty() const { return rows_ == 0; }

  SparseScoreRowsView View() const {
    return SparseScoreRowsView{rows_, cols_, row_ptr_, col_, weight_,
                               remainder_};
  }

  /// Heap footprint of the owned arrays, in bytes.
  int64_t ResidentBytes() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_;
  std::vector<double> weight_;
  std::vector<double> remainder_;
};

/// Binary block codec (the BlockFile payload): a fixed header
/// (rows, cols, nnz as int64) followed by the row_ptr/col/weight/remainder
/// arrays, all host-endian 8-byte values. DecodeScoreBlock returns a
/// zero-copy view into `data` (which must be 8-byte aligned and outlive
/// the view — the BlockFile reader guarantees both) after fully validating
/// the CSR invariants, so corruption surfaces as InvalidArgument at load
/// time, never as a crash in the sampler.
std::string EncodeScoreBlock(const SparseScoreRowsView& rows);
Result<SparseScoreRowsView> DecodeScoreBlock(const void* data, size_t size);

/// Archive-section form of one snapshot's sparse rows: writes
/// `<prefix>_rows/_cols/_ptr/_col/_w/_rem` fields into the writer's
/// current section. This is the all-text storage small models use (one
/// self-contained archive, no binary payload); large models go through
/// EncodeScoreBlock + BlockFile instead.
void WriteSparseScores(serialize::ArchiveWriter& writer,
                       const std::string& prefix,
                       const SparseScoreRowsView& rows);

/// Reads the fields written by WriteSparseScores, re-validating every CSR
/// invariant (NotFound for missing fields, InvalidArgument for corrupt
/// data).
Result<SparseScoreRows> ReadSparseScores(
    const serialize::ArchiveReader& reader, const std::string& section,
    const std::string& prefix);

}  // namespace tgsim::storage

#endif  // TGSIM_STORAGE_SPARSE_ROWS_H_
