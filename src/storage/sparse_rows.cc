#include "storage/sparse_rows.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.h"

namespace tgsim::storage {

namespace {

/// One candidate entry during a row build, already in ascending-column
/// order. The top-k comparator (larger weight first, ties toward the
/// smaller column) is a strict total order because columns are distinct,
/// so the selected *set* is unique — membership, not partition order, is
/// what the build consumes.
struct Entry {
  int64_t col;
  double weight;
};

bool TopKLess(const Entry& a, const Entry& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  return a.col < b.col;
}

/// Appends one row to the CSR arrays: keeps the top-k entries of
/// `candidates` (all positive, ascending by column), stores them in
/// ascending-column order, and sums the dropped mass in ascending-column
/// order so the remainder is a deterministic non-negative value (never
/// total-minus-kept, which can go negative under FP cancellation).
void AppendRow(std::vector<Entry>& candidates, int64_t topk,
               std::vector<int64_t>& row_ptr, std::vector<int64_t>& col,
               std::vector<double>& weight, std::vector<double>& remainder) {
  double dropped = 0.0;
  if (topk > 0 && static_cast<int64_t>(candidates.size()) > topk) {
    std::vector<Entry> order = candidates;
    std::nth_element(order.begin(), order.begin() + (topk - 1), order.end(),
                     TopKLess);
    const Entry& bar = order[static_cast<size_t>(topk) - 1];
    // Kept = entries strictly better than the k-th under the total order,
    // plus the k-th itself; everything else feeds the remainder.
    int64_t kept = 0;
    std::vector<Entry> stored;
    stored.reserve(static_cast<size_t>(topk));
    for (const Entry& e : candidates) {
      if (TopKLess(e, bar) || (e.col == bar.col && e.weight == bar.weight)) {
        stored.push_back(e);
        ++kept;
      } else {
        dropped += e.weight;
      }
    }
    TGSIM_CHECK_EQ(kept, topk);
    for (const Entry& e : stored) {
      col.push_back(e.col);
      weight.push_back(e.weight);
    }
  } else {
    for (const Entry& e : candidates) {
      col.push_back(e.col);
      weight.push_back(e.weight);
    }
  }
  row_ptr.push_back(static_cast<int64_t>(col.size()));
  remainder.push_back(dropped);
}

Status ValidateView(const SparseScoreRowsView& v) {
  if (v.rows < 0 || v.cols < 0) {
    return Status::InvalidArgument("sparse score rows: negative shape");
  }
  if (v.row_ptr.size() != static_cast<size_t>(v.rows) + 1) {
    return Status::InvalidArgument(
        "sparse score rows: row_ptr has " + std::to_string(v.row_ptr.size()) +
        " entries for " + std::to_string(v.rows) + " rows (want rows+1)");
  }
  if (v.row_ptr[0] != 0) {
    return Status::InvalidArgument(
        "sparse score rows: row_ptr[0] must be 0, got " +
        std::to_string(v.row_ptr[0]));
  }
  const int64_t nnz = v.row_ptr.back();
  if (v.col.size() != static_cast<size_t>(nnz) ||
      v.weight.size() != static_cast<size_t>(nnz)) {
    return Status::InvalidArgument(
        "sparse score rows: row_ptr ends at " + std::to_string(nnz) +
        " but col/weight hold " + std::to_string(v.col.size()) + "/" +
        std::to_string(v.weight.size()) + " entries");
  }
  if (v.remainder.size() != static_cast<size_t>(v.rows)) {
    return Status::InvalidArgument(
        "sparse score rows: remainder has " +
        std::to_string(v.remainder.size()) + " entries for " +
        std::to_string(v.rows) + " rows");
  }
  for (int r = 0; r < v.rows; ++r) {
    const int64_t begin = v.row_ptr[static_cast<size_t>(r)];
    const int64_t end = v.row_ptr[static_cast<size_t>(r) + 1];
    if (begin > end || end > nnz) {
      return Status::InvalidArgument(
          "sparse score rows: row_ptr not monotone at row " +
          std::to_string(r));
    }
    int64_t prev = -1;
    for (int64_t i = begin; i < end; ++i) {
      const int64_t c = v.col[static_cast<size_t>(i)];
      if (c < 0 || c >= v.cols) {
        return Status::InvalidArgument(
            "sparse score rows: column " + std::to_string(c) + " in row " +
            std::to_string(r) + " out of range [0, " +
            std::to_string(v.cols) + ")");
      }
      if (c == r) {
        return Status::InvalidArgument(
            "sparse score rows: diagonal entry stored in row " +
            std::to_string(r));
      }
      if (c <= prev) {
        return Status::InvalidArgument(
            "sparse score rows: columns not strictly ascending in row " +
            std::to_string(r));
      }
      prev = c;
      const double w = v.weight[static_cast<size_t>(i)];
      if (!std::isfinite(w) || w <= 0.0) {
        return Status::InvalidArgument(
            "sparse score rows: weight at row " + std::to_string(r) +
            " col " + std::to_string(c) + " must be finite and positive");
      }
    }
    const double rem = v.remainder[static_cast<size_t>(r)];
    if (!std::isfinite(rem) || rem < 0.0) {
      return Status::InvalidArgument(
          "sparse score rows: remainder of row " + std::to_string(r) +
          " must be finite and non-negative");
    }
  }
  return Status::Ok();
}

bool FitsInt(int64_t v) {
  return v >= 0 && v <= std::numeric_limits<int>::max();
}

}  // namespace

SparseScoreRows SparseScoreRows::FromDense(const nn::Tensor& scores,
                                           int64_t topk) {
  TGSIM_CHECK_EQ(scores.rows(), scores.cols());
  const int n = scores.rows();
  SparseScoreRows out;
  out.rows_ = n;
  out.cols_ = n;
  out.row_ptr_.reserve(static_cast<size_t>(n) + 1);
  out.row_ptr_.push_back(0);
  out.remainder_.reserve(static_cast<size_t>(n));
  std::vector<Entry> candidates;
  for (int r = 0; r < n; ++r) {
    candidates.clear();
    const nn::Scalar* row = scores.row(r);
    for (int c = 0; c < n; ++c) {
      if (c == r) continue;
      const double w = std::max(0.0, static_cast<double>(row[c]));
      if (w > 0.0) candidates.push_back(Entry{c, w});
    }
    AppendRow(candidates, topk, out.row_ptr_, out.col_, out.weight_,
              out.remainder_);
  }
  return out;
}

SparseScoreRows SparseScoreRows::FromSubmatrix(int num_nodes,
                                               const std::vector<int>& active,
                                               const nn::Tensor& sub,
                                               int64_t topk) {
  const int na = static_cast<int>(active.size());
  TGSIM_CHECK_EQ(sub.rows(), na);
  TGSIM_CHECK_EQ(sub.cols(), na);
  for (int i = 0; i < na; ++i) {
    TGSIM_CHECK(active[static_cast<size_t>(i)] >= 0 &&
                active[static_cast<size_t>(i)] < num_nodes);
    if (i > 0) {
      // Ascending active list keeps the scattered columns ascending, which
      // is what makes this equal to FromDense of the embedded matrix.
      TGSIM_CHECK(active[static_cast<size_t>(i) - 1] <
                  active[static_cast<size_t>(i)]);
    }
  }
  SparseScoreRows out;
  out.rows_ = num_nodes;
  out.cols_ = num_nodes;
  out.row_ptr_.reserve(static_cast<size_t>(num_nodes) + 1);
  out.row_ptr_.push_back(0);
  out.remainder_.reserve(static_cast<size_t>(num_nodes));
  std::vector<Entry> candidates;
  int next_active = 0;
  for (int r = 0; r < num_nodes; ++r) {
    candidates.clear();
    if (next_active < na && active[static_cast<size_t>(next_active)] == r) {
      const int i = next_active++;
      const nn::Scalar* row = sub.row(i);
      for (int j = 0; j < na; ++j) {
        const int c = active[static_cast<size_t>(j)];
        if (c == r) continue;
        const double w = std::max(0.0, static_cast<double>(row[j]));
        if (w > 0.0) candidates.push_back(Entry{c, w});
      }
    }
    AppendRow(candidates, topk, out.row_ptr_, out.col_, out.weight_,
              out.remainder_);
  }
  return out;
}

Result<SparseScoreRows> SparseScoreRows::FromParts(
    int rows, int cols, std::vector<int64_t> row_ptr,
    std::vector<int64_t> col, std::vector<double> weight,
    std::vector<double> remainder) {
  SparseScoreRows out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_ptr_ = std::move(row_ptr);
  out.col_ = std::move(col);
  out.weight_ = std::move(weight);
  out.remainder_ = std::move(remainder);
  Status check = ValidateView(out.View());
  if (!check.ok()) return check;
  return out;
}

SparseScoreRows SparseScoreRows::CopyOf(const SparseScoreRowsView& view) {
  SparseScoreRows out;
  out.rows_ = view.rows;
  out.cols_ = view.cols;
  out.row_ptr_.assign(view.row_ptr.begin(), view.row_ptr.end());
  out.col_.assign(view.col.begin(), view.col.end());
  out.weight_.assign(view.weight.begin(), view.weight.end());
  out.remainder_.assign(view.remainder.begin(), view.remainder.end());
  return out;
}

SparseScoreRows SparseScoreRows::WeightedMerge(const SparseScoreRowsView& a,
                                               double w_a,
                                               const SparseScoreRowsView& b,
                                               double w_b, int64_t topk) {
  TGSIM_CHECK_EQ(a.rows, b.rows);
  TGSIM_CHECK_EQ(a.cols, b.cols);
  TGSIM_CHECK(w_a >= 0.0 && w_b >= 0.0 && w_a + w_b > 0.0);
  SparseScoreRows out;
  out.rows_ = a.rows;
  out.cols_ = a.cols;
  out.row_ptr_.reserve(static_cast<size_t>(a.rows) + 1);
  out.row_ptr_.push_back(0);
  out.remainder_.reserve(static_cast<size_t>(a.rows));
  std::vector<Entry> candidates;
  for (int r = 0; r < a.rows; ++r) {
    const SparseScoreRowsView::Row ra = a.row(r);
    const SparseScoreRowsView::Row rb = b.row(r);
    double total_a = ra.remainder;
    for (double w : ra.weights) total_a += w;
    double total_b = rb.remainder;
    for (double w : rb.weights) total_b += w;
    // Each input row contributes mass w_x after per-row normalization;
    // a row absent from one input is simply the other's (scaled) row.
    const double scale_a = total_a > 0.0 ? w_a / total_a : 0.0;
    const double scale_b = total_b > 0.0 ? w_b / total_b : 0.0;
    candidates.clear();
    size_t ia = 0, ib = 0;
    while (ia < ra.cols.size() || ib < rb.cols.size()) {
      const int64_t ca = ia < ra.cols.size()
                             ? ra.cols[ia]
                             : std::numeric_limits<int64_t>::max();
      const int64_t cb = ib < rb.cols.size()
                             ? rb.cols[ib]
                             : std::numeric_limits<int64_t>::max();
      double w = 0.0;
      int64_t c;
      if (ca <= cb) {
        c = ca;
        w += scale_a * ra.weights[ia++];
      } else {
        c = cb;
      }
      if (cb == c && ib < rb.cols.size()) w += scale_b * rb.weights[ib++];
      if (w > 0.0) candidates.push_back(Entry{c, w});
    }
    AppendRow(candidates, topk, out.row_ptr_, out.col_, out.weight_,
              out.remainder_);
    out.remainder_.back() += scale_a * ra.remainder + scale_b * rb.remainder;
  }
  return out;
}

int64_t SparseScoreRows::ResidentBytes() const {
  return static_cast<int64_t>(sizeof(*this)) +
         static_cast<int64_t>(row_ptr_.capacity() * sizeof(int64_t)) +
         static_cast<int64_t>(col_.capacity() * sizeof(int64_t)) +
         static_cast<int64_t>(weight_.capacity() * sizeof(double)) +
         static_cast<int64_t>(remainder_.capacity() * sizeof(double));
}

namespace {

// Block layout: i64 rows, i64 cols, i64 nnz, then row_ptr[rows+1],
// col[nnz] (both i64), weight[nnz], remainder[rows] (both f64) — all
// host-endian 8-byte values, so the block is 8-byte aligned end to end.
constexpr size_t kBlockHeaderBytes = 24;

size_t ScoreBlockBytes(int64_t rows, int64_t nnz) {
  return kBlockHeaderBytes +
         static_cast<size_t>(rows + 1) * sizeof(int64_t) +
         static_cast<size_t>(nnz) * (sizeof(int64_t) + sizeof(double)) +
         static_cast<size_t>(rows) * sizeof(double);
}

}  // namespace

std::string EncodeScoreBlock(const SparseScoreRowsView& rows) {
  const int64_t r = rows.rows;
  const int64_t c = rows.cols;
  const int64_t nnz = rows.nnz();
  std::string out;
  out.resize(ScoreBlockBytes(r, nnz));
  char* p = out.data();
  auto put = [&p](const void* src, size_t bytes) {
    std::memcpy(p, src, bytes);
    p += bytes;
  };
  put(&r, sizeof(r));
  put(&c, sizeof(c));
  put(&nnz, sizeof(nnz));
  put(rows.row_ptr.data(), rows.row_ptr.size() * sizeof(int64_t));
  put(rows.col.data(), rows.col.size() * sizeof(int64_t));
  put(rows.weight.data(), rows.weight.size() * sizeof(double));
  put(rows.remainder.data(), rows.remainder.size() * sizeof(double));
  TGSIM_CHECK_EQ(static_cast<size_t>(p - out.data()), out.size());
  return out;
}

Result<SparseScoreRowsView> DecodeScoreBlock(const void* data, size_t size) {
  if (reinterpret_cast<uintptr_t>(data) % alignof(int64_t) != 0) {
    return Status::InvalidArgument(
        "score block: payload is not 8-byte aligned");
  }
  if (size < kBlockHeaderBytes) {
    return Status::InvalidArgument(
        "score block: " + std::to_string(size) +
        " bytes is too small for the 24-byte header");
  }
  int64_t header[3];
  std::memcpy(header, data, sizeof(header));
  const int64_t rows = header[0];
  const int64_t cols = header[1];
  const int64_t nnz = header[2];
  if (!FitsInt(rows) || !FitsInt(cols) || nnz < 0) {
    return Status::InvalidArgument(
        "score block: implausible shape rows=" + std::to_string(rows) +
        " cols=" + std::to_string(cols) + " nnz=" + std::to_string(nnz));
  }
  // Guard the size formula against overflow before trusting nnz.
  const int64_t max_elems =
      static_cast<int64_t>(std::numeric_limits<int64_t>::max() / 16);
  if (nnz > max_elems || rows > max_elems) {
    return Status::InvalidArgument("score block: implausible element count");
  }
  const size_t want = ScoreBlockBytes(rows, nnz);
  if (size != want) {
    return Status::InvalidArgument(
        "score block: holds " + std::to_string(size) + " bytes but header " +
        "declares " + std::to_string(want));
  }
  const char* p = static_cast<const char*>(data) + kBlockHeaderBytes;
  SparseScoreRowsView view;
  view.rows = static_cast<int>(rows);
  view.cols = static_cast<int>(cols);
  view.row_ptr = std::span<const int64_t>(
      reinterpret_cast<const int64_t*>(p), static_cast<size_t>(rows) + 1);
  p += (static_cast<size_t>(rows) + 1) * sizeof(int64_t);
  view.col = std::span<const int64_t>(reinterpret_cast<const int64_t*>(p),
                                      static_cast<size_t>(nnz));
  p += static_cast<size_t>(nnz) * sizeof(int64_t);
  view.weight = std::span<const double>(reinterpret_cast<const double*>(p),
                                        static_cast<size_t>(nnz));
  p += static_cast<size_t>(nnz) * sizeof(double);
  view.remainder = std::span<const double>(
      reinterpret_cast<const double*>(p), static_cast<size_t>(rows));
  Status check = ValidateView(view);
  if (!check.ok()) return check;
  return view;
}

void WriteSparseScores(serialize::ArchiveWriter& writer,
                       const std::string& prefix,
                       const SparseScoreRowsView& rows) {
  writer.WriteInt(prefix + "_rows", rows.rows);
  writer.WriteInt(prefix + "_cols", rows.cols);
  writer.WriteIntVector(
      prefix + "_ptr",
      std::vector<int64_t>(rows.row_ptr.begin(), rows.row_ptr.end()));
  writer.WriteIntVector(
      prefix + "_col", std::vector<int64_t>(rows.col.begin(), rows.col.end()));
  writer.WriteDoubleVector(
      prefix + "_w",
      std::vector<double>(rows.weight.begin(), rows.weight.end()));
  writer.WriteDoubleVector(
      prefix + "_rem",
      std::vector<double>(rows.remainder.begin(), rows.remainder.end()));
}

Result<SparseScoreRows> ReadSparseScores(
    const serialize::ArchiveReader& reader, const std::string& section,
    const std::string& prefix) {
  auto rows = reader.GetInt(section, prefix + "_rows");
  if (!rows.ok()) return rows.status();
  auto cols = reader.GetInt(section, prefix + "_cols");
  if (!cols.ok()) return cols.status();
  if (!FitsInt(rows.value()) || !FitsInt(cols.value())) {
    return Status::InvalidArgument(
        "sparse score rows: shape " + std::to_string(rows.value()) + " x " +
        std::to_string(cols.value()) + " does not fit in int");
  }
  auto ptr = reader.GetIntVector(section, prefix + "_ptr");
  if (!ptr.ok()) return ptr.status();
  auto col = reader.GetIntVector(section, prefix + "_col");
  if (!col.ok()) return col.status();
  auto w = reader.GetDoubleVector(section, prefix + "_w");
  if (!w.ok()) return w.status();
  auto rem = reader.GetDoubleVector(section, prefix + "_rem");
  if (!rem.ok()) return rem.status();
  return SparseScoreRows::FromParts(
      static_cast<int>(rows.value()), static_cast<int>(cols.value()),
      std::move(ptr).value(), std::move(col).value(), std::move(w).value(),
      std::move(rem).value());
}

}  // namespace tgsim::storage
