#include "storage/score_store.h"

#include <cstring>
#include <utility>

#include "common/check.h"

namespace tgsim::storage {

std::string ScoreBlockName(int t) {
  std::string name("t");
  name.append(std::to_string(t));
  return name;
}

ScoreStore ScoreStore::FromResident(std::vector<SparseScoreRows> snapshots) {
  ScoreStore store;
  store.block_backed_ = false;
  store.num_timestamps_ = static_cast<int>(snapshots.size());
  store.resident_ = std::move(snapshots);
  return store;
}

ScoreStore ScoreStore::FromBlockFile(BlockFileReader reader,
                                     int num_timestamps) {
  ScoreStore store;
  store.block_backed_ = true;
  store.num_timestamps_ = num_timestamps;
  store.reader_ = std::move(reader);
  return store;
}

bool ScoreStore::has(int t) const {
  if (t < 0 || t >= num_timestamps_) return false;
  if (block_backed_) return reader_.HasBlock(ScoreBlockName(t));
  return !resident_[static_cast<size_t>(t)].empty();
}

Status ScoreStore::CheckSnapshot(int t, int expected_nodes) const {
  if (!has(t)) return Status::Ok();
  if (block_backed_) {
    auto block = reader_.Map(ScoreBlockName(t));
    if (!block.ok()) return block.status();
    auto view = DecodeScoreBlock(block.value().data(), block.value().size());
    if (!view.ok()) {
      return Status::InvalidArgument("snapshot " + std::to_string(t) + ": " +
                                     view.status().message());
    }
    if (view.value().rows != expected_nodes ||
        view.value().cols != expected_nodes) {
      return Status::InvalidArgument(
          "snapshot " + std::to_string(t) + ": scores are " +
          std::to_string(view.value().rows) + " x " +
          std::to_string(view.value().cols) + ", model has " +
          std::to_string(expected_nodes) + " nodes");
    }
    return Status::Ok();
  }
  const SparseScoreRows& rows = resident_[static_cast<size_t>(t)];
  if (rows.rows() != expected_nodes || rows.cols() != expected_nodes) {
    return Status::InvalidArgument(
        "snapshot " + std::to_string(t) + ": scores are " +
        std::to_string(rows.rows()) + " x " + std::to_string(rows.cols()) +
        ", model has " + std::to_string(expected_nodes) + " nodes");
  }
  return Status::Ok();
}

ScoreStore::Lease ScoreStore::Snapshot(int t) const {
  TGSIM_CHECK(has(t));
  Lease lease;
  if (block_backed_) {
    auto block = reader_.Map(ScoreBlockName(t));
    TGSIM_CHECK(block.ok());
    lease.block = std::move(block).value();
    auto view = DecodeScoreBlock(lease.block.data(), lease.block.size());
    TGSIM_CHECK(view.ok());
    lease.view = view.value();
  } else {
    lease.view = resident_[static_cast<size_t>(t)].View();
  }
  return lease;
}

int64_t ScoreStore::ResidentBytes() const {
  int64_t total = static_cast<int64_t>(sizeof(*this));
  for (const SparseScoreRows& rows : resident_) {
    total += rows.ResidentBytes();
  }
  return total;
}

int64_t ScoreStore::TotalNnz() const {
  int64_t total = 0;
  for (int t = 0; t < num_timestamps_; ++t) {
    if (!has(t)) continue;
    if (block_backed_) {
      Lease lease = Snapshot(t);
      total += lease.view.nnz();
    } else {
      total += resident_[static_cast<size_t>(t)].nnz();
    }
  }
  return total;
}

void ScoreStore::Reset(int num_timestamps) {
  TGSIM_CHECK_GE(num_timestamps, 0);
  block_backed_ = false;
  num_timestamps_ = num_timestamps;
  resident_.assign(static_cast<size_t>(num_timestamps), SparseScoreRows());
  reader_ = BlockFileReader();
}

void ScoreStore::Set(int t, SparseScoreRows rows) {
  TGSIM_CHECK(!block_backed_);
  TGSIM_CHECK(t >= 0 && t < num_timestamps_);
  resident_[static_cast<size_t>(t)] = std::move(rows);
}

}  // namespace tgsim::storage
