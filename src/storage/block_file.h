#ifndef TGSIM_STORAGE_BLOCK_FILE_H_
#define TGSIM_STORAGE_BLOCK_FILE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tgsim::storage {

/// Version written into (and accepted from) every block file. Independent
/// of serialize::kArchiveFormatVersion: the text archive and the binary
/// block container evolve separately.
inline constexpr int64_t kBlockFileVersion = 1;

/// FNV-1a 64-bit hash — the per-block and index checksum. Deterministic,
/// dependency-free, and fast enough to verify multi-GiB payloads at load.
uint64_t Fnv1a64(const void* data, size_t size);

/// Paged binary container appended to a stream (typically after a text
/// archive in the same artifact file):
///
///   header    8-byte magic, i64 version
///   blocks    raw bytes, each padded so its ABSOLUTE file offset is
///             8-aligned (offsets are stored relative to the container
///             base so the preceding archive's size never matters)
///   index     per block: i64 name_len, name bytes, i64 rel_offset,
///             i64 size, u64 FNV-1a checksum
///   footer    i64 index_rel, i64 index_size, u64 index_checksum,
///             i64 block_count, 8-byte tail magic   (fixed 40 bytes)
///
/// The reader finds the footer at end-of-file, so a block file is always
/// the final payload of its artifact. Alignment is what lets the mmap
/// reader hand out direct int64/double pointers into the mapping.
class BlockFileWriter {
 public:
  /// Records the stream position as the container base and writes the
  /// header. The stream must be at its final write position (appending).
  explicit BlockFileWriter(std::ostream& out);

  BlockFileWriter(const BlockFileWriter&) = delete;
  BlockFileWriter& operator=(const BlockFileWriter&) = delete;

  /// Streams one named block. Names must be unique, non-empty, and at
  /// most 4096 bytes. Blocks are written (and checksummed) immediately —
  /// nothing is buffered besides the index entry.
  void AddBlock(const std::string& name, std::string_view bytes);

  /// Writes the index + footer. Call exactly once; returns IoError if any
  /// write failed.
  Status Finish();

 private:
  void WritePadding();
  void WriteI64(int64_t v);
  void WriteU64(uint64_t v);

  struct Entry {
    std::string name;
    int64_t rel_offset = 0;
    int64_t size = 0;
    uint64_t checksum = 0;
  };

  std::ostream& out_;
  int64_t base_mod8_ = 0;  // alignment phase of the container base
  int64_t rel_ = 0;        // bytes written since the header's first byte
  std::vector<Entry> entries_;
  bool finished_ = false;
};

/// Move-only lease on one block's bytes. File-backed blocks hold an mmap
/// region (munmap on destruction, modeled on samgraph's Tensor::FromMmap);
/// buffer-backed blocks hold a shared_ptr keepalive. Either way `data()`
/// is 8-byte aligned and valid for the lease's lifetime.
class MappedBlock {
 public:
  MappedBlock() = default;
  MappedBlock(MappedBlock&& other) noexcept;
  MappedBlock& operator=(MappedBlock&& other) noexcept;
  MappedBlock(const MappedBlock&) = delete;
  MappedBlock& operator=(const MappedBlock&) = delete;
  ~MappedBlock();

  const void* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

 private:
  friend class BlockFileReader;

  const void* data_ = nullptr;
  size_t size_ = 0;
  void* map_addr_ = nullptr;  // munmap target (file mode only)
  size_t map_len_ = 0;
  std::shared_ptr<const void> keepalive_;
};

/// Random-access reader over a block file written by BlockFileWriter.
/// Copyable (cheap shared handle). All structural problems — truncation,
/// bad magic, unknown version, checksum mismatch, out-of-bounds index
/// entries — surface as Status errors at open or Map time, never a crash.
class BlockFileReader {
 public:
  /// A default-constructed reader holds no container; using it before
  /// assigning from OpenFile/FromBuffer is a programming error.
  BlockFileReader() = default;

  /// Opens `path` and reads the container that starts at `base_offset`
  /// (the size of whatever precedes it, e.g. the artifact's text archive)
  /// and ends at end-of-file. Blocks are later mmap'd on demand.
  static Result<BlockFileReader> OpenFile(const std::string& path,
                                          int64_t base_offset);

  /// Reads a container held in memory. `bytes` spans exactly the
  /// container (header through footer); `base_offset` is the absolute
  /// file position the container was written at — needed to reconstruct
  /// the writer's 8-byte alignment. The bytes are copied into an aligned
  /// private buffer, so `bytes` need not outlive the reader.
  static Result<BlockFileReader> FromBuffer(std::string_view bytes,
                                            int64_t base_offset);

  std::vector<std::string> BlockNames() const;
  bool HasBlock(const std::string& name) const;

  /// Maps one block's bytes. NotFound for unknown names; IoError if the
  /// OS mapping fails.
  Result<MappedBlock> Map(const std::string& name) const;

  /// Maps every block once and verifies its FNV-1a checksum against the
  /// index. InvalidArgument names the first corrupt block.
  Status VerifyChecksums() const;

  /// Sum of all block sizes (excluding index/padding) — the paging
  /// working-set upper bound.
  int64_t TotalBlockBytes() const;

 private:
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

}  // namespace tgsim::storage

#endif  // TGSIM_STORAGE_BLOCK_FILE_H_
