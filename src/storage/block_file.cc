#include "storage/block_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <ostream>
#include <utility>

#include "common/check.h"

namespace tgsim::storage {

namespace {

constexpr char kMagic[8] = {'t', 'g', 's', 'i', 'm', 'b', 'l', 'k'};
constexpr char kTailMagic[8] = {'k', 'l', 'b', 'm', 'i', 's', 'g', 't'};
constexpr int64_t kHeaderBytes = 16;
constexpr int64_t kFooterBytes = 40;
constexpr int64_t kMaxNameBytes = 4096;

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

BlockFileWriter::BlockFileWriter(std::ostream& out) : out_(out) {
  const auto pos = out_.tellp();
  base_mod8_ = pos < 0 ? 0 : static_cast<int64_t>(pos) % 8;
  out_.write(kMagic, sizeof(kMagic));
  rel_ += static_cast<int64_t>(sizeof(kMagic));
  WriteI64(kBlockFileVersion);
}

void BlockFileWriter::WriteI64(int64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  rel_ += static_cast<int64_t>(sizeof(v));
}

void BlockFileWriter::WriteU64(uint64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  rel_ += static_cast<int64_t>(sizeof(v));
}

void BlockFileWriter::WritePadding() {
  // Pad so the next byte's ABSOLUTE offset (base + rel) is 8-aligned —
  // the mmap reader hands out direct typed pointers at that offset.
  static const char zeros[8] = {0};
  const int64_t misalign = (base_mod8_ + rel_) % 8;
  if (misalign != 0) {
    const int64_t pad = 8 - misalign;
    out_.write(zeros, static_cast<std::streamsize>(pad));
    rel_ += pad;
  }
}

void BlockFileWriter::AddBlock(const std::string& name,
                               std::string_view bytes) {
  TGSIM_CHECK(!finished_);
  TGSIM_CHECK(!name.empty());
  TGSIM_CHECK_LE(static_cast<int64_t>(name.size()), kMaxNameBytes);
  for (const Entry& e : entries_) TGSIM_CHECK(e.name != name);
  WritePadding();
  Entry entry;
  entry.name = name;
  entry.rel_offset = rel_;
  entry.size = static_cast<int64_t>(bytes.size());
  entry.checksum = Fnv1a64(bytes.data(), bytes.size());
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  rel_ += entry.size;
  entries_.push_back(std::move(entry));
}

Status BlockFileWriter::Finish() {
  TGSIM_CHECK(!finished_);
  finished_ = true;
  WritePadding();
  const int64_t index_rel = rel_;
  // Serialize the index to memory first: the footer needs its checksum.
  std::string index;
  auto append_i64 = [&index](int64_t v) {
    index.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto append_u64 = [&index](uint64_t v) {
    index.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (const Entry& e : entries_) {
    append_i64(static_cast<int64_t>(e.name.size()));
    index.append(e.name);
    append_i64(e.rel_offset);
    append_i64(e.size);
    append_u64(e.checksum);
  }
  out_.write(index.data(), static_cast<std::streamsize>(index.size()));
  rel_ += static_cast<int64_t>(index.size());
  WriteI64(index_rel);
  WriteI64(static_cast<int64_t>(index.size()));
  WriteU64(Fnv1a64(index.data(), index.size()));
  WriteI64(static_cast<int64_t>(entries_.size()));
  out_.write(kTailMagic, sizeof(kTailMagic));
  rel_ += static_cast<int64_t>(sizeof(kTailMagic));
  out_.flush();
  if (!out_) {
    return Status::IoError("block file: stream write failed");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------

MappedBlock::MappedBlock(MappedBlock&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      map_addr_(other.map_addr_),
      map_len_(other.map_len_),
      keepalive_(std::move(other.keepalive_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_addr_ = nullptr;
  other.map_len_ = 0;
}

MappedBlock& MappedBlock::operator=(MappedBlock&& other) noexcept {
  if (this != &other) {
    this->~MappedBlock();
    new (this) MappedBlock(std::move(other));
  }
  return *this;
}

MappedBlock::~MappedBlock() {
  if (map_addr_ != nullptr) {
    ::munmap(map_addr_, map_len_);
    map_addr_ = nullptr;
  }
}

// ---------------------------------------------------------------------------

struct BlockFileReader::Impl {
  // File mode: fd >= 0, blocks mmap'd on demand. Buffer mode: fd == -1,
  // `buffer` holds the container with `pad` leading bytes restoring the
  // writer's absolute 8-byte alignment phase.
  int fd = -1;
  int64_t base = 0;
  std::vector<std::byte> buffer;
  size_t pad = 0;
  int64_t region_size = 0;

  struct Entry {
    std::string name;
    int64_t rel_offset = 0;
    int64_t size = 0;
    uint64_t checksum = 0;
  };
  std::vector<Entry> entries;
  std::map<std::string, size_t> by_name;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  /// Parses header, footer, and index out of an already-set-up Impl (fd
  /// or buffer mode). Shared by both open paths.
  Status Parse();

  Status ReadAt(int64_t rel, void* dst, size_t n) const {
    if (fd >= 0) {
      size_t done = 0;
      while (done < n) {
        const ssize_t got =
            ::pread(fd, static_cast<char*>(dst) + done, n - done,
                    static_cast<off_t>(base + rel + static_cast<int64_t>(done)));
        if (got < 0) {
          return Status::IoError("block file: pread failed");
        }
        if (got == 0) {
          return Status::InvalidArgument(
              "block file: truncated (unexpected end of file)");
        }
        done += static_cast<size_t>(got);
      }
      return Status::Ok();
    }
    std::memcpy(dst, buffer.data() + pad + static_cast<size_t>(rel), n);
    return Status::Ok();
  }
};

Status BlockFileReader::Impl::Parse() {
  Impl& impl = *this;
  if (impl.region_size < kHeaderBytes + kFooterBytes) {
    return Status::InvalidArgument(
        "block file: " + std::to_string(impl.region_size) +
        " bytes is too small for header + footer (truncated?)");
  }
  char header[kHeaderBytes];
  Status st = impl.ReadAt(0, header, sizeof(header));
  if (!st.ok()) return st;
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("block file: bad magic");
  }
  int64_t version = 0;
  std::memcpy(&version, header + 8, sizeof(version));
  if (version != kBlockFileVersion) {
    return Status::InvalidArgument(
        "block file version " + std::to_string(version) +
        " (this build reads " + std::to_string(kBlockFileVersion) + ")");
  }
  char footer[kFooterBytes];
  st = impl.ReadAt(impl.region_size - kFooterBytes, footer, sizeof(footer));
  if (!st.ok()) return st;
  if (std::memcmp(footer + 32, kTailMagic, sizeof(kTailMagic)) != 0) {
    return Status::InvalidArgument(
        "block file: bad tail magic (truncated or overwritten?)");
  }
  int64_t index_rel = 0;
  int64_t index_size = 0;
  uint64_t index_checksum = 0;
  int64_t block_count = 0;
  std::memcpy(&index_rel, footer + 0, 8);
  std::memcpy(&index_size, footer + 8, 8);
  std::memcpy(&index_checksum, footer + 16, 8);
  std::memcpy(&block_count, footer + 24, 8);
  if (index_rel < kHeaderBytes || index_size < 0 || block_count < 0 ||
      index_rel + index_size > impl.region_size - kFooterBytes) {
    return Status::InvalidArgument(
        "block file: index location out of bounds");
  }
  std::string index(static_cast<size_t>(index_size), '\0');
  st = impl.ReadAt(index_rel, index.data(), index.size());
  if (!st.ok()) return st;
  if (Fnv1a64(index.data(), index.size()) != index_checksum) {
    return Status::InvalidArgument("block file: index checksum mismatch");
  }
  size_t cursor = 0;
  auto take_i64 = [&index, &cursor](int64_t* v) {
    if (cursor + 8 > index.size()) return false;
    std::memcpy(v, index.data() + cursor, 8);
    cursor += 8;
    return true;
  };
  for (int64_t i = 0; i < block_count; ++i) {
    Entry entry;
    int64_t name_len = 0;
    if (!take_i64(&name_len) || name_len <= 0 || name_len > kMaxNameBytes ||
        cursor + static_cast<size_t>(name_len) > index.size()) {
      return Status::InvalidArgument(
          "block file: corrupt index entry " + std::to_string(i));
    }
    entry.name.assign(index.data() + cursor, static_cast<size_t>(name_len));
    cursor += static_cast<size_t>(name_len);
    int64_t checksum_bits = 0;
    if (!take_i64(&entry.rel_offset) || !take_i64(&entry.size) ||
        !take_i64(&checksum_bits)) {
      return Status::InvalidArgument(
          "block file: corrupt index entry " + std::to_string(i));
    }
    std::memcpy(&entry.checksum, &checksum_bits, 8);
    if (entry.rel_offset < kHeaderBytes || entry.size < 0 ||
        entry.rel_offset + entry.size > index_rel) {
      return Status::InvalidArgument(
          "block file: block '" + entry.name + "' out of bounds");
    }
    if ((impl.base + entry.rel_offset) % 8 != 0) {
      return Status::InvalidArgument(
          "block file: block '" + entry.name + "' is not 8-byte aligned");
    }
    if (!impl.by_name.emplace(entry.name, impl.entries.size()).second) {
      return Status::InvalidArgument(
          "block file: duplicate block name '" + entry.name + "'");
    }
    impl.entries.push_back(std::move(entry));
  }
  if (cursor != index.size()) {
    return Status::InvalidArgument("block file: trailing bytes in index");
  }
  return Status::Ok();
}

Result<BlockFileReader> BlockFileReader::OpenFile(const std::string& path,
                                                  int64_t base_offset) {
  auto impl = std::make_shared<Impl>();
  impl->fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (impl->fd < 0) {
    return Status::IoError("block file: cannot open '" + path + "'");
  }
  struct stat sb;
  if (::fstat(impl->fd, &sb) != 0) {
    return Status::IoError("block file: cannot stat '" + path + "'");
  }
  if (base_offset < 0 || base_offset > static_cast<int64_t>(sb.st_size)) {
    return Status::InvalidArgument(
        "block file: base offset " + std::to_string(base_offset) +
        " outside '" + path + "' (" + std::to_string(sb.st_size) + " bytes)");
  }
  impl->base = base_offset;
  impl->region_size = static_cast<int64_t>(sb.st_size) - base_offset;
  Status st = impl->Parse();
  if (!st.ok()) return st;
  BlockFileReader reader;
  reader.impl_ = std::move(impl);
  return reader;
}

Result<BlockFileReader> BlockFileReader::FromBuffer(std::string_view bytes,
                                                    int64_t base_offset) {
  if (base_offset < 0) {
    return Status::InvalidArgument("block file: negative base offset");
  }
  auto impl = std::make_shared<Impl>();
  // Re-create the writer's alignment phase: block rel offsets satisfy
  // (base + rel) % 8 == 0, and operator new aligns the vector's data to
  // at least 16, so pad + rel lands every block on an 8-byte boundary.
  impl->pad = static_cast<size_t>(base_offset % 8);
  impl->base = base_offset;
  impl->region_size = static_cast<int64_t>(bytes.size());
  impl->buffer.resize(impl->pad + bytes.size());
  std::memcpy(impl->buffer.data() + impl->pad, bytes.data(), bytes.size());
  Status st = impl->Parse();
  if (!st.ok()) return st;
  BlockFileReader reader;
  reader.impl_ = std::move(impl);
  return reader;
}

std::vector<std::string> BlockFileReader::BlockNames() const {
  std::vector<std::string> names;
  names.reserve(impl_->entries.size());
  for (const auto& e : impl_->entries) names.push_back(e.name);
  return names;
}

bool BlockFileReader::HasBlock(const std::string& name) const {
  return impl_->by_name.count(name) > 0;
}

int64_t BlockFileReader::TotalBlockBytes() const {
  int64_t total = 0;
  for (const auto& e : impl_->entries) total += e.size;
  return total;
}

Result<MappedBlock> BlockFileReader::Map(const std::string& name) const {
  const auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end()) {
    return Status::NotFound("block file: no block named '" + name + "'");
  }
  const Impl::Entry& entry = impl_->entries[it->second];
  MappedBlock block;
  block.size_ = static_cast<size_t>(entry.size);
  if (impl_->fd >= 0) {
    const int64_t abs = impl_->base + entry.rel_offset;
    const int64_t page = static_cast<int64_t>(::sysconf(_SC_PAGESIZE));
    const int64_t map_start = (abs / page) * page;
    const size_t lead = static_cast<size_t>(abs - map_start);
    const size_t map_len = lead + block.size_;
    if (map_len == 0) {
      // Zero-length mmap is EINVAL; an empty block needs no mapping.
      block.data_ = "";
      block.keepalive_ = impl_;
      return block;
    }
    void* addr = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, impl_->fd,
                        static_cast<off_t>(map_start));
    if (addr == MAP_FAILED) {
      return Status::IoError("block file: mmap failed for block '" + name +
                             "'");
    }
    block.map_addr_ = addr;
    block.map_len_ = map_len;
    block.data_ = static_cast<const char*>(addr) + lead;
  } else {
    block.data_ =
        impl_->buffer.data() + impl_->pad + static_cast<size_t>(entry.rel_offset);
  }
  block.keepalive_ = impl_;
  return block;
}

Status BlockFileReader::VerifyChecksums() const {
  for (const auto& e : impl_->entries) {
    auto block = Map(e.name);
    if (!block.ok()) return block.status();
    const uint64_t got = Fnv1a64(block.value().data(), block.value().size());
    if (got != e.checksum) {
      return Status::InvalidArgument("block file: checksum mismatch in block '" +
                                     e.name + "'");
    }
  }
  return Status::Ok();
}

}  // namespace tgsim::storage
