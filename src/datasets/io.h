#ifndef TGSIM_DATASETS_IO_H_
#define TGSIM_DATASETS_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/temporal_graph.h"

namespace tgsim::datasets {

/// Magic bytes opening a binary edge-list file (see SaveEdgeListBinary).
inline constexpr char kBinaryEdgeListMagic[] = "tgsimedg";  // 8 bytes + NUL.

/// Loads a temporal graph from an edge-list file, sniffing the format:
/// a file opening with kBinaryEdgeListMagic is parsed as the compact
/// binary format, anything else as whitespace-separated text.
///
/// Text format: an optional header line `# <num_nodes> <num_timestamps>`,
/// followed by exactly one `u v t` triple per line. Lines starting with
/// `%` or empty lines are skipped. Without a header, node/timestamp counts
/// are inferred as (max id + 1) and timestamps are re-based to start at 0.
///
/// Malformed input is rejected with the offending line number and path in
/// the Status message: non-numeric or trailing tokens, negative node ids,
/// negative timestamps, and ids/timestamps exceeding the header counts.
/// Binary corruption (truncated varints, out-of-range ids, trailing
/// bytes) is likewise a Status, never a crash.
Result<graphs::TemporalGraph> LoadEdgeList(const std::string& path);

/// Writes the graph in the same text format (with header) so that
/// LoadEdgeList(SaveEdgeList(g)) round-trips.
Status SaveEdgeList(const graphs::TemporalGraph& g, const std::string& path);

/// Stream form of SaveEdgeList: writes the identical bytes to `out`
/// (SaveEdgeList delegates here). The serve daemon uses this to build the
/// generate-reply payload, which must byte-match a `tgsim generate` file.
void WriteEdgeList(const graphs::TemporalGraph& g, std::ostream& out);

/// Writes the graph in the compact binary format: the 8-byte magic,
/// LEB128 varints for num_nodes / num_timestamps / num_edges, then one
/// zigzag-varint delta triple (u, v, t) per edge against the previous
/// edge. Edges are written in the graph's canonical (t, u, v) order, so
/// deltas are small and text -> binary -> text round trips byte-identically.
/// Typically 3-6x smaller than the text form.
Status SaveEdgeListBinary(const graphs::TemporalGraph& g,
                          const std::string& path);

/// Stream form of SaveEdgeListBinary (which delegates here).
void WriteEdgeListBinary(const graphs::TemporalGraph& g, std::ostream& out);

}  // namespace tgsim::datasets

#endif  // TGSIM_DATASETS_IO_H_
