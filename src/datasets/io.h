#ifndef TGSIM_DATASETS_IO_H_
#define TGSIM_DATASETS_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/temporal_graph.h"

namespace tgsim::datasets {

/// Loads a temporal graph from a whitespace-separated edge-list file.
///
/// Format: an optional header line `# <num_nodes> <num_timestamps>`,
/// followed by exactly one `u v t` triple per line. Lines starting with
/// `%` or empty lines are skipped. Without a header, node/timestamp counts
/// are inferred as (max id + 1) and timestamps are re-based to start at 0.
///
/// Malformed input is rejected with the offending line number and path in
/// the Status message: non-numeric or trailing tokens, negative node ids,
/// negative timestamps, and ids/timestamps exceeding the header counts.
Result<graphs::TemporalGraph> LoadEdgeList(const std::string& path);

/// Writes the graph in the same format (with header) so that
/// LoadEdgeList(SaveEdgeList(g)) round-trips.
Status SaveEdgeList(const graphs::TemporalGraph& g, const std::string& path);

/// Stream form of SaveEdgeList: writes the identical bytes to `out`
/// (SaveEdgeList delegates here). The serve daemon uses this to build the
/// generate-reply payload, which must byte-match a `tgsim generate` file.
void WriteEdgeList(const graphs::TemporalGraph& g, std::ostream& out);

}  // namespace tgsim::datasets

#endif  // TGSIM_DATASETS_IO_H_
