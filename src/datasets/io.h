#ifndef TGSIM_DATASETS_IO_H_
#define TGSIM_DATASETS_IO_H_

#include <string>

#include "common/status.h"
#include "graph/temporal_graph.h"

namespace tgsim::datasets {

/// Loads a temporal graph from a whitespace-separated edge-list file.
///
/// Format: an optional header line `# <num_nodes> <num_timestamps>`,
/// followed by one `u v t` triple per line. Lines starting with `%` or
/// empty lines are skipped. Without a header, node/timestamp counts are
/// inferred as (max id + 1). Timestamps are re-based to start at 0.
Result<graphs::TemporalGraph> LoadEdgeList(const std::string& path);

/// Writes the graph in the same format (with header) so that
/// LoadEdgeList(SaveEdgeList(g)) round-trips.
Status SaveEdgeList(const graphs::TemporalGraph& g, const std::string& path);

}  // namespace tgsim::datasets

#endif  // TGSIM_DATASETS_IO_H_
