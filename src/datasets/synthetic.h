#ifndef TGSIM_DATASETS_SYNTHETIC_H_
#define TGSIM_DATASETS_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/temporal_graph.h"

namespace tgsim::datasets {

/// Target shape of one of the paper's Table II networks.
struct DatasetSpec {
  std::string name;
  int num_nodes = 0;
  int64_t num_edges = 0;
  int num_timestamps = 0;
};

/// The seven Table II networks (full paper-scale shapes).
const std::vector<DatasetSpec>& TableIIDatasets();

/// Looks up a Table II spec by name (case-sensitive, e.g. "DBLP").
const DatasetSpec* FindDataset(const std::string& name);

/// Knobs of the synthetic mimic generator. The paper evaluates on real
/// networks we cannot redistribute; MakeMimic produces a seeded synthetic
/// stand-in with the same scale (nodes/edges/timestamps after `scale`), a
/// heavy-tailed degree profile (temporal preferential attachment), community
/// structure (drives triangles/motifs), and gradual node arrival (drives the
/// per-timestamp growth curves of Fig. 5). See DESIGN.md §2.
struct MimicConfig {
  /// Multiplies nodes/edges/timestamps (timestamps floored at 8).
  double scale = 1.0;
  /// Number of communities; <= 0 picks ~sqrt(n)/2 automatically.
  int num_communities = 0;
  /// Probability that an edge stays inside its source's community.
  double intra_community_prob = 0.7;
  /// Pareto exponent of node activity weights (smaller = heavier tail).
  double activity_alpha = 1.6;
  /// Fraction of nodes active from t=0 (the rest arrive linearly in time).
  double initial_active_fraction = 0.3;
};

/// Builds the synthetic stand-in for `spec`.
graphs::TemporalGraph MakeMimic(const DatasetSpec& spec,
                                const MimicConfig& config, uint64_t seed);

/// Convenience: mimic by Table II name at the given scale.
graphs::TemporalGraph MakeMimicByName(const std::string& name, double scale,
                                      uint64_t seed);

/// Configuration of the scalability datasets of the paper's Figure 6,
/// labeled "nodes * timestamps * density". Each snapshot draws
/// round(density * n^2) uniform random directed edges.
struct ScalabilityConfig {
  int num_nodes = 1000;
  int num_timestamps = 10;
  double density = 0.01;

  /// Label in the paper's axis format, e.g. "1k*10*0.01".
  std::string Label() const;
};

/// Uniform random temporal graph of the requested size.
graphs::TemporalGraph MakeScalabilityGraph(const ScalabilityConfig& config,
                                           uint64_t seed);

}  // namespace tgsim::datasets

#endif  // TGSIM_DATASETS_SYNTHETIC_H_
