#include "datasets/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace tgsim::datasets {

Result<graphs::TemporalGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open())
    return Status::IoError("cannot open edge list: " + path);

  int64_t header_nodes = -1, header_timestamps = -1;
  std::vector<graphs::TemporalEdge> edges;
  int64_t max_node = -1;
  int64_t min_t = std::numeric_limits<int64_t>::max();
  int64_t max_t = std::numeric_limits<int64_t>::min();

  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      hs >> header_nodes >> header_timestamps;
      continue;
    }
    std::istringstream ls(line);
    int64_t u, v, t;
    if (!(ls >> u >> v >> t))
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(line_no) + " of " + path);
    if (u < 0 || v < 0)
      return Status::InvalidArgument("negative node id at line " +
                                     std::to_string(line_no));
    edges.push_back({static_cast<graphs::NodeId>(u),
                     static_cast<graphs::NodeId>(v),
                     static_cast<graphs::Timestamp>(t)});
    max_node = std::max({max_node, u, v});
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  if (edges.empty())
    return Status::InvalidArgument("edge list is empty: " + path);

  // Re-base timestamps at zero.
  for (auto& e : edges)
    e.t = static_cast<graphs::Timestamp>(e.t - min_t);

  int num_nodes = header_nodes > 0 ? static_cast<int>(header_nodes)
                                   : static_cast<int>(max_node + 1);
  int num_ts = header_timestamps > 0
                   ? static_cast<int>(header_timestamps)
                   : static_cast<int>(max_t - min_t + 1);
  if (max_node >= num_nodes)
    return Status::InvalidArgument("node id exceeds header count");
  if (max_t - min_t >= num_ts)
    return Status::InvalidArgument("timestamp exceeds header count");
  return graphs::TemporalGraph::FromEdges(num_nodes, num_ts,
                                          std::move(edges));
}

Status SaveEdgeList(const graphs::TemporalGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot write: " + path);
  out << "# " << g.num_nodes() << " " << g.num_timestamps() << "\n";
  for (const graphs::TemporalEdge& e : g.edges())
    out << e.u << " " << e.v << " " << e.t << "\n";
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace tgsim::datasets
