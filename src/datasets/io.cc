#include "datasets/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace tgsim::datasets {

Result<graphs::TemporalGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open())
    return Status::IoError("cannot open edge list: " + path);

  int64_t header_nodes = -1, header_timestamps = -1;
  std::vector<graphs::TemporalEdge> edges;
  int64_t max_node = -1;
  int64_t min_t = std::numeric_limits<int64_t>::max();
  int64_t max_t = std::numeric_limits<int64_t>::min();

  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string trailing;
      if (!(hs >> header_nodes >> header_timestamps) || (hs >> trailing) ||
          header_nodes <= 0 || header_timestamps <= 0 ||
          header_nodes > std::numeric_limits<int>::max() ||
          header_timestamps > std::numeric_limits<int>::max())
        return Status::InvalidArgument("malformed header at line " +
                                       std::to_string(line_no) + " of " +
                                       path);
      continue;
    }
    std::istringstream ls(line);
    int64_t u, v, t;
    if (!(ls >> u >> v >> t))
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(line_no) + " of " + path);
    std::string trailing;
    if (ls >> trailing)
      return Status::InvalidArgument(
          "trailing token '" + trailing + "' after edge at line " +
          std::to_string(line_no) + " of " + path +
          " (expected exactly 'u v t')");
    if (u < 0 || v < 0)
      return Status::InvalidArgument("negative node id at line " +
                                     std::to_string(line_no) + " of " + path);
    if (t < 0)
      return Status::InvalidArgument("negative timestamp at line " +
                                     std::to_string(line_no) + " of " + path);
    // With a header already seen (the documented layout puts it first),
    // bound violations are reported against the offending line.
    if (header_nodes > 0 && (u >= header_nodes || v >= header_nodes))
      return Status::InvalidArgument("node id exceeds header count at line " +
                                     std::to_string(line_no) + " of " + path);
    if (header_timestamps > 0 && t >= header_timestamps)
      return Status::InvalidArgument(
          "timestamp exceeds header count at line " +
          std::to_string(line_no) + " of " + path);
    edges.push_back({static_cast<graphs::NodeId>(u),
                     static_cast<graphs::NodeId>(v),
                     static_cast<graphs::Timestamp>(t)});
    max_node = std::max({max_node, u, v});
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  const bool has_header = header_nodes > 0;  // Header parse is all-or-error.
  if (edges.empty()) {
    // An empty graph is only well-defined when the header supplies the
    // node/timestamp counts; otherwise there is nothing to infer from.
    if (!has_header)
      return Status::InvalidArgument("edge list is empty: " + path);
    return graphs::TemporalGraph::FromEdges(static_cast<int>(header_nodes),
                                            static_cast<int>(header_timestamps),
                                            {});
  }

  // Header files store timestamps as-is (SaveEdgeList output round-trips
  // exactly); headerless external files are re-based to start at zero.
  // Negative timestamps were already rejected per line.
  if (!has_header) {
    for (auto& e : edges)
      e.t = static_cast<graphs::Timestamp>(e.t - min_t);
  }

  int num_nodes = has_header ? static_cast<int>(header_nodes)
                             : static_cast<int>(max_node + 1);
  int num_ts = has_header ? static_cast<int>(header_timestamps)
                          : static_cast<int>(max_t - min_t + 1);
  if (max_node >= num_nodes)
    return Status::InvalidArgument("node id exceeds header count in " + path);
  if ((has_header ? max_t : max_t - min_t) >= num_ts)
    return Status::InvalidArgument("timestamp exceeds header count in " +
                                   path);
  return graphs::TemporalGraph::FromEdges(num_nodes, num_ts,
                                          std::move(edges));
}

Status SaveEdgeList(const graphs::TemporalGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot write: " + path);
  WriteEdgeList(g, out);
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

void WriteEdgeList(const graphs::TemporalGraph& g, std::ostream& out) {
  out << "# " << g.num_nodes() << " " << g.num_timestamps() << "\n";
  for (const graphs::TemporalEdge& e : g.edges())
    out << e.u << " " << e.v << " " << e.t << "\n";
}

}  // namespace tgsim::datasets
