#include "datasets/io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace tgsim::datasets {

namespace {

/// Number of magic bytes (the trailing NUL of the literal is not stored).
constexpr size_t kMagicBytes = sizeof(kBinaryEdgeListMagic) - 1;

void WriteVarint(std::ostream& out, uint64_t value) {
  // LEB128: 7 payload bits per byte, high bit set on all but the last.
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

/// Zigzag fold: small negative deltas stay small ((n << 1) ^ (n >> 63)).
uint64_t ZigZag(int64_t n) {
  return (static_cast<uint64_t>(n) << 1) ^
         static_cast<uint64_t>(n >> 63);
}

int64_t UnZigZag(uint64_t z) {
  return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
}

Status ReadVarint(std::istream& in, const std::string& path,
                  uint64_t& value) {
  value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const int byte = in.get();
    if (byte < 0)
      return Status::InvalidArgument("truncated binary edge list: " + path);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // The tenth byte holds the top single bit; anything above overflows.
      if (shift == 63 && (byte & 0x7e) != 0)
        return Status::InvalidArgument(
            "varint overflows 64 bits in binary edge list: " + path);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument(
      "varint runs past 10 bytes in binary edge list: " + path);
}

/// Body of the binary format after the sniffed magic: varint counts, then
/// zigzag-varint (u, v, t) deltas against the previous edge (0,0,0 start).
Result<graphs::TemporalGraph> LoadEdgeListBinary(std::istream& in,
                                                 const std::string& path) {
  uint64_t nodes = 0, timestamps = 0, num_edges = 0;
  for (uint64_t* count : {&nodes, &timestamps, &num_edges}) {
    Status s = ReadVarint(in, path, *count);
    if (!s.ok()) return s;
  }
  constexpr uint64_t kMaxCount =
      static_cast<uint64_t>(std::numeric_limits<int>::max());
  if (nodes == 0 || nodes > kMaxCount || timestamps == 0 ||
      timestamps > kMaxCount)
    return Status::InvalidArgument(
        "binary edge list has out-of-range node/timestamp counts: " + path);
  std::vector<graphs::TemporalEdge> edges;
  // A lying edge count fails on the first truncated varint (each edge
  // needs at least 3 bytes), so only pre-reserve a bounded amount.
  edges.reserve(static_cast<size_t>(std::min<uint64_t>(num_edges, 1 << 20)));
  int64_t u = 0, v = 0, t = 0;
  for (uint64_t i = 0; i < num_edges; ++i) {
    for (int64_t* field : {&u, &v, &t}) {
      uint64_t delta = 0;
      Status s = ReadVarint(in, path, delta);
      if (!s.ok()) return s;
      *field += UnZigZag(delta);
    }
    if (u < 0 || v < 0 || static_cast<uint64_t>(u) >= nodes ||
        static_cast<uint64_t>(v) >= nodes)
      return Status::InvalidArgument(
          "node id out of range at edge " + std::to_string(i) +
          " of binary edge list " + path);
    if (t < 0 || static_cast<uint64_t>(t) >= timestamps)
      return Status::InvalidArgument(
          "timestamp out of range at edge " + std::to_string(i) +
          " of binary edge list " + path);
    edges.push_back({static_cast<graphs::NodeId>(u),
                     static_cast<graphs::NodeId>(v),
                     static_cast<graphs::Timestamp>(t)});
  }
  if (in.get() >= 0)
    return Status::InvalidArgument(
        "trailing bytes after the last edge in binary edge list: " + path);
  return graphs::TemporalGraph::FromEdges(static_cast<int>(nodes),
                                          static_cast<int>(timestamps),
                                          std::move(edges));
}

}  // namespace

Result<graphs::TemporalGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open())
    return Status::IoError("cannot open edge list: " + path);

  // Sniff the binary magic; anything shorter or different is text.
  char magic[kMagicBytes];
  if (in.read(magic, static_cast<std::streamsize>(kMagicBytes)) &&
      std::memcmp(magic, kBinaryEdgeListMagic, kMagicBytes) == 0)
    return LoadEdgeListBinary(in, path);
  in.clear();
  in.seekg(0);

  int64_t header_nodes = -1, header_timestamps = -1;
  std::vector<graphs::TemporalEdge> edges;
  int64_t max_node = -1;
  int64_t min_t = std::numeric_limits<int64_t>::max();
  int64_t max_t = std::numeric_limits<int64_t>::min();

  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string trailing;
      if (!(hs >> header_nodes >> header_timestamps) || (hs >> trailing) ||
          header_nodes <= 0 || header_timestamps <= 0 ||
          header_nodes > std::numeric_limits<int>::max() ||
          header_timestamps > std::numeric_limits<int>::max())
        return Status::InvalidArgument("malformed header at line " +
                                       std::to_string(line_no) + " of " +
                                       path);
      continue;
    }
    std::istringstream ls(line);
    int64_t u, v, t;
    if (!(ls >> u >> v >> t))
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(line_no) + " of " + path);
    std::string trailing;
    if (ls >> trailing)
      return Status::InvalidArgument(
          "trailing token '" + trailing + "' after edge at line " +
          std::to_string(line_no) + " of " + path +
          " (expected exactly 'u v t')");
    if (u < 0 || v < 0)
      return Status::InvalidArgument("negative node id at line " +
                                     std::to_string(line_no) + " of " + path);
    if (t < 0)
      return Status::InvalidArgument("negative timestamp at line " +
                                     std::to_string(line_no) + " of " + path);
    // With a header already seen (the documented layout puts it first),
    // bound violations are reported against the offending line.
    if (header_nodes > 0 && (u >= header_nodes || v >= header_nodes))
      return Status::InvalidArgument("node id exceeds header count at line " +
                                     std::to_string(line_no) + " of " + path);
    if (header_timestamps > 0 && t >= header_timestamps)
      return Status::InvalidArgument(
          "timestamp exceeds header count at line " +
          std::to_string(line_no) + " of " + path);
    edges.push_back({static_cast<graphs::NodeId>(u),
                     static_cast<graphs::NodeId>(v),
                     static_cast<graphs::Timestamp>(t)});
    max_node = std::max({max_node, u, v});
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  const bool has_header = header_nodes > 0;  // Header parse is all-or-error.
  if (edges.empty()) {
    // An empty graph is only well-defined when the header supplies the
    // node/timestamp counts; otherwise there is nothing to infer from.
    if (!has_header)
      return Status::InvalidArgument("edge list is empty: " + path);
    return graphs::TemporalGraph::FromEdges(static_cast<int>(header_nodes),
                                            static_cast<int>(header_timestamps),
                                            {});
  }

  // Header files store timestamps as-is (SaveEdgeList output round-trips
  // exactly); headerless external files are re-based to start at zero.
  // Negative timestamps were already rejected per line.
  if (!has_header) {
    for (auto& e : edges)
      e.t = static_cast<graphs::Timestamp>(e.t - min_t);
  }

  int num_nodes = has_header ? static_cast<int>(header_nodes)
                             : static_cast<int>(max_node + 1);
  int num_ts = has_header ? static_cast<int>(header_timestamps)
                          : static_cast<int>(max_t - min_t + 1);
  if (max_node >= num_nodes)
    return Status::InvalidArgument("node id exceeds header count in " + path);
  if ((has_header ? max_t : max_t - min_t) >= num_ts)
    return Status::InvalidArgument("timestamp exceeds header count in " +
                                   path);
  return graphs::TemporalGraph::FromEdges(num_nodes, num_ts,
                                          std::move(edges));
}

Status SaveEdgeList(const graphs::TemporalGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot write: " + path);
  WriteEdgeList(g, out);
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

void WriteEdgeList(const graphs::TemporalGraph& g, std::ostream& out) {
  out << "# " << g.num_nodes() << " " << g.num_timestamps() << "\n";
  for (const graphs::TemporalEdge& e : g.edges())
    out << e.u << " " << e.v << " " << e.t << "\n";
}

Status SaveEdgeListBinary(const graphs::TemporalGraph& g,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::IoError("cannot write: " + path);
  WriteEdgeListBinary(g, out);
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

void WriteEdgeListBinary(const graphs::TemporalGraph& g, std::ostream& out) {
  out.write(kBinaryEdgeListMagic,
            static_cast<std::streamsize>(kMagicBytes));
  WriteVarint(out, static_cast<uint64_t>(g.num_nodes()));
  WriteVarint(out, static_cast<uint64_t>(g.num_timestamps()));
  WriteVarint(out, static_cast<uint64_t>(g.edges().size()));
  int64_t u = 0, v = 0, t = 0;
  for (const graphs::TemporalEdge& e : g.edges()) {
    WriteVarint(out, ZigZag(static_cast<int64_t>(e.u) - u));
    WriteVarint(out, ZigZag(static_cast<int64_t>(e.v) - v));
    WriteVarint(out, ZigZag(static_cast<int64_t>(e.t) - t));
    u = e.u;
    v = e.v;
    t = e.t;
  }
}

}  // namespace tgsim::datasets
