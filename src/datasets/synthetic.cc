#include "datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace tgsim::datasets {

const std::vector<DatasetSpec>& TableIIDatasets() {
  static const std::vector<DatasetSpec>* kSpecs =
      new std::vector<DatasetSpec>{
          {"DBLP", 1909, 8237, 15},
          {"EMAIL", 986, 332334, 805},
          {"MSG", 1899, 20296, 195},
          {"BITCOIN-A", 3783, 24186, 1902},
          {"BITCOIN-O", 5881, 35592, 1904},
          {"MATH", 24818, 506550, 79},
          {"UBUNTU", 159316, 964437, 88},
      };
  return *kSpecs;
}

const DatasetSpec* FindDataset(const std::string& name) {
  for (const DatasetSpec& s : TableIIDatasets())
    if (s.name == name) return &s;
  return nullptr;
}

graphs::TemporalGraph MakeMimic(const DatasetSpec& spec,
                                const MimicConfig& config, uint64_t seed) {
  TGSIM_CHECK_GT(config.scale, 0.0);
  const int n = std::max(8, static_cast<int>(spec.num_nodes * config.scale));
  const int64_t m =
      std::max<int64_t>(16, static_cast<int64_t>(spec.num_edges * config.scale));
  const int t_count = std::max(
      8, static_cast<int>(spec.num_timestamps * config.scale));

  Rng rng(seed);
  int num_comm = config.num_communities > 0
                     ? config.num_communities
                     : std::max(2, static_cast<int>(std::sqrt(n) / 2.0));

  // Static node attributes.
  std::vector<int> community(static_cast<size_t>(n));
  std::vector<double> activity(static_cast<size_t>(n));
  std::vector<int> arrival(static_cast<size_t>(n));
  const int initial_active = std::max(
      2, static_cast<int>(n * config.initial_active_fraction));
  for (int v = 0; v < n; ++v) {
    community[v] = static_cast<int>(rng.UniformInt(num_comm));
    activity[v] = rng.Pareto(config.activity_alpha);
    arrival[v] = v < initial_active
                     ? 0
                     : static_cast<int>(
                           rng.UniformInt(static_cast<int64_t>(t_count)));
  }

  // Community member lists for intra-community destination sampling.
  std::vector<std::vector<graphs::NodeId>> members(
      static_cast<size_t>(num_comm));
  for (int v = 0; v < n; ++v)
    members[static_cast<size_t>(community[v])].push_back(v);

  // Per-timestamp edge budget: mild super-linear growth (densification,
  // Leskovec et al.), normalized to the total edge budget m.
  std::vector<double> weight(static_cast<size_t>(t_count));
  double wsum = 0.0;
  for (int t = 0; t < t_count; ++t) {
    weight[t] = 0.5 + 1.5 * (static_cast<double>(t) + 1.0) / t_count;
    wsum += weight[t];
  }

  // Degree-preferential destination choice uses a dynamically growing
  // multiset of endpoints ("repeated nodes" trick from B-A generators).
  std::vector<graphs::NodeId> endpoint_pool;
  endpoint_pool.reserve(static_cast<size_t>(2 * m));

  graphs::TemporalGraph g(n, t_count);
  int64_t emitted = 0;
  for (int t = 0; t < t_count; ++t) {
    int64_t budget =
        t + 1 == t_count
            ? m - emitted
            : static_cast<int64_t>(std::llround(m * weight[t] / wsum));
    budget = std::max<int64_t>(budget, 0);
    // Active node prefix under the arrival schedule.
    std::vector<graphs::NodeId> active;
    std::vector<double> act_weight;
    for (int v = 0; v < n; ++v) {
      if (arrival[v] <= t) {
        active.push_back(v);
        act_weight.push_back(activity[v]);
      }
    }
    if (active.size() < 2) continue;
    // CDF over activity for source sampling.
    std::vector<double> cdf(act_weight.size());
    double acc = 0.0;
    for (size_t i = 0; i < act_weight.size(); ++i) {
      acc += act_weight[i];
      cdf[i] = acc;
    }
    for (int64_t e = 0; e < budget && emitted < m; ++e) {
      double r = rng.Uniform() * acc;
      size_t si = static_cast<size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), r) - cdf.begin());
      if (si >= active.size()) si = active.size() - 1;
      graphs::NodeId src = active[si];

      graphs::NodeId dst = src;
      for (int attempt = 0; attempt < 8 && dst == src; ++attempt) {
        bool intra = rng.Bernoulli(config.intra_community_prob);
        if (!endpoint_pool.empty() && rng.Bernoulli(0.6)) {
          // Preferential attachment: draw from the endpoint multiset,
          // optionally restricted to the source's community.
          graphs::NodeId cand = endpoint_pool[static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(endpoint_pool.size())))];
          if (!intra ||
              community[static_cast<size_t>(cand)] ==
                  community[static_cast<size_t>(src)]) {
            dst = cand;
            continue;
          }
        }
        if (intra) {
          const auto& comm = members[static_cast<size_t>(
              community[static_cast<size_t>(src)])];
          dst = comm[static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(comm.size())))];
        } else {
          dst = active[static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(active.size())))];
        }
      }
      if (dst == src) dst = active[(si + 1) % active.size()];
      g.AddEdge(src, dst, t);
      endpoint_pool.push_back(src);
      endpoint_pool.push_back(dst);
      ++emitted;
    }
  }
  g.Finalize();
  return g;
}

graphs::TemporalGraph MakeMimicByName(const std::string& name, double scale,
                                      uint64_t seed) {
  const DatasetSpec* spec = FindDataset(name);
  TGSIM_CHECK(spec != nullptr);
  MimicConfig config;
  config.scale = scale;
  return MakeMimic(*spec, config, seed);
}

std::string ScalabilityConfig::Label() const {
  std::ostringstream os;
  if (num_nodes % 1000 == 0) {
    os << num_nodes / 1000 << "k";
  } else {
    os << num_nodes;
  }
  os << "*" << num_timestamps << "*" << density;
  return os.str();
}

graphs::TemporalGraph MakeScalabilityGraph(const ScalabilityConfig& config,
                                           uint64_t seed) {
  Rng rng(seed);
  const int n = config.num_nodes;
  const int t_count = config.num_timestamps;
  const int64_t per_snapshot = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(
             config.density * static_cast<double>(n) * static_cast<double>(n))));
  graphs::TemporalGraph g(n, t_count);
  for (int t = 0; t < t_count; ++t) {
    for (int64_t e = 0; e < per_snapshot; ++e) {
      graphs::NodeId u =
          static_cast<graphs::NodeId>(rng.UniformInt(static_cast<int64_t>(n)));
      graphs::NodeId v =
          static_cast<graphs::NodeId>(rng.UniformInt(static_cast<int64_t>(n)));
      if (u == v) v = static_cast<graphs::NodeId>((v + 1) % n);
      g.AddEdge(u, v, t);
    }
  }
  g.Finalize();
  return g;
}

}  // namespace tgsim::datasets
