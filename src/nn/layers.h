#ifndef TGSIM_NN_LAYERS_H_
#define TGSIM_NN_LAYERS_H_

#include <vector>

#include "nn/autograd.h"

namespace tgsim::nn {

/// Base class for components owning trainable parameters.
///
/// Parameters registered via AddParam (or merged from sub-modules with
/// AbsorbParams) are exposed through params() for the optimizers.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  const std::vector<Var>& params() const { return params_; }
  std::vector<Var>& params() { return params_; }

  /// Total number of trainable scalars.
  int64_t NumParams() const;

 protected:
  Module() = default;

  Var AddParam(Tensor init) {
    Var p = Var::Param(std::move(init));
    params_.push_back(p);
    return p;
  }

  /// Appends another module's parameters to this module's list (parameter
  /// handles are shared, not copied).
  void AbsorbParams(const Module& sub) {
    params_.insert(params_.end(), sub.params().begin(), sub.params().end());
  }

 private:
  std::vector<Var> params_;
};

/// Fully connected layer: y = x W + b.
class Linear : public Module {
 public:
  Linear(Rng& rng, int in_features, int out_features, bool bias = true);

  Var Forward(const Var& x) const;

  int in_features() const { return w_.value().rows(); }
  int out_features() const { return w_.value().cols(); }
  const Var& weight() const { return w_; }

 private:
  Var w_;
  Var b_;
  bool has_bias_;
};

/// Activation selector for Mlp.
enum class Activation { kRelu, kTanh, kSigmoid, kLeakyRelu, kIdentity };

/// Applies the selected activation.
Var Activate(const Var& x, Activation act);

/// Multi-layer perceptron with `dims` = {in, hidden..., out}. The activation
/// is applied between layers, and after the last layer only when
/// `final_activation` is set.
class Mlp : public Module {
 public:
  Mlp(Rng& rng, const std::vector<int>& dims,
      Activation act = Activation::kRelu, bool final_activation = false);

  Var Forward(const Var& x) const;

  int out_features() const;

 private:
  std::vector<Linear> layers_;
  Activation act_;
  bool final_activation_;
};

/// Lookup table: Forward(idx) returns rows of the trainable weight matrix.
class Embedding : public Module {
 public:
  Embedding(Rng& rng, int num_embeddings, int dim);

  Var Forward(const std::vector<int>& indices) const;

  /// The full table as a Var (e.g., for scoring against all rows).
  const Var& table() const { return weight_; }
  int dim() const { return weight_.value().cols(); }
  int num_embeddings() const { return weight_.value().rows(); }

 private:
  Var weight_;
};

/// Gated recurrent unit cell; used by the sequence models of the TIGGER and
/// TagGen baselines.
class GruCell : public Module {
 public:
  GruCell(Rng& rng, int input_dim, int hidden_dim);

  /// One step: consumes x (B x in) and h (B x hidden), returns new h.
  Var Forward(const Var& x, const Var& h) const;

  /// Initial zero state for batch size B.
  Var InitialState(int batch) const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  Var wz_, uz_, bz_;
  Var wr_, ur_, br_;
  Var wh_, uh_, bh_;
};

}  // namespace tgsim::nn

#endif  // TGSIM_NN_LAYERS_H_
