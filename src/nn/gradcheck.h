#ifndef TGSIM_NN_GRADCHECK_H_
#define TGSIM_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/autograd.h"

namespace tgsim::nn {

/// Result of a numerical gradient check.
struct GradCheckResult {
  Scalar max_abs_error = 0.0;
  Scalar max_rel_error = 0.0;
  bool ok = false;
};

/// Compares the analytic gradients of `loss_fn` with central finite
/// differences over every entry of every parameter in `params`.
///
/// `loss_fn` must rebuild the computation graph (using the given params) and
/// return the scalar loss Var on each call. Perturbation size `eps` and
/// tolerance are tuned for double precision.
GradCheckResult CheckGradients(std::vector<Var> params,
                               const std::function<Var()>& loss_fn,
                               Scalar eps = 1e-6, Scalar tolerance = 1e-4);

}  // namespace tgsim::nn

#endif  // TGSIM_NN_GRADCHECK_H_
