#ifndef TGSIM_NN_KERNELS_H_
#define TGSIM_NN_KERNELS_H_

#include <bit>
#include <cmath>
#include <cstdint>

#include "nn/simd.h"
#include "nn/tensor.h"

#if defined(_MSC_VER)
#define TGSIM_RESTRICT __restrict
#else
#define TGSIM_RESTRICT __restrict__
#endif

namespace tgsim::nn::kernels {

/// Row-level microkernels shared by the Tensor math, the autograd tape,
/// the optimizers, and the generators' hand-rolled logit/softmax loops.
/// The public entry points below dispatch through a per-ISA table resolved
/// once at runtime (see simd.h); `kernels::scalar` holds the reference
/// implementations every backend must match bit for bit. The determinism
/// contract:
///
///  - Sums keep a single strictly ascending-index, left-associated
///    accumulation chain per OUTPUT: FP addition is not associative, and
///    the contract pins outputs bit-identical to the serial reference at
///    any thread count and on any backend. SIMD variants may only
///    vectorize across independent outputs (DotPanel4 runs four such
///    chains at once, one per lane).
///  - ExpRowSum is the one sanctioned fixed-shape reduction: four
///    accumulators fed from consecutive indices, combined ((a0+a1)+a2)+a3,
///    with an ascending scalar tail. The shape depends only on n, so the
///    scalar reference and every SIMD variant produce the same bits.
///  - exp() is NOT glibc's: all backends share detail::ExpD, a clamped
///    Cody-Waite + degree-13 Horner polynomial whose operations map 1:1
///    onto SIMD lanes. Accuracy is ~1-2 ulp; inputs must not be NaN
///    (callers never produce one — logits and losses are NaN-free by
///    construction, and TGSIM_DCHECK guards the debug build).
///  - Max reductions use a fixed 4-lane shape and normalize the result
///    with `+ 0.0`, so equal-magnitude zeros of either sign reduce to the
///    same bits as the serial scan (the old "up to the sign of equal
///    zeros" caveat is gone).
///  - Per-element maps (exp, divide, multiply, axpy) vectorize freely:
///    each output element is an independent exact IEEE operation.
///
/// Aliasing: elementwise kernels whose doc says "in place allowed" accept
/// full aliasing (dst == src exactly); partial overlap is never allowed.
///
/// `Dot` and `DotSum2` are intentionally the serial chain in EVERY
/// backend: a single-accumulator FP add chain is latency-bound, lanes
/// cannot speed it up without changing the association, and the TGAE
/// sparse/dense pin plus MatMul's per-column k-accumulation depend on that
/// association. They bypass the dispatch table entirely so the compiler
/// can keep inlining them into the generation hot loops. Batched decode
/// throughput comes from DotPanel4 instead.

namespace detail {

// Deterministic exp shared by all backends. Clamp bounds keep the
// magic-shift rounding and the 2^k scaling in exact range: below kExpLo
// the true result underflows to 0 even through the two-step scaling,
// above kExpHi it overflows to inf.
inline constexpr Scalar kExpLo = -745.5;
inline constexpr Scalar kExpHi = 709.9;
// 1.5 * 2^52: adding then subtracting rounds to nearest integer in the
// current (round-to-nearest) mode — same trick scalar and vector.
inline constexpr Scalar kExpShift = 6755399441055744.0;
inline constexpr Scalar kExpLog2e = 1.44269504088896340736;
// fdlibm split of ln 2: k * kExpLn2Hi is exact for |k| <= 1075 (11 bits
// of k against 33 significant bits of the hi part).
inline constexpr Scalar kExpLn2Hi = 6.93147180369123816490e-01;
inline constexpr Scalar kExpLn2Lo = 1.90821492927058770002e-10;
inline constexpr Scalar kExpCoeff[14] = {
    1.0,
    1.0,
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
    1.0 / 479001600.0,
    1.0 / 6227020800.0,
};

/// exp(x) to ~1-2 ulp with every step an exact lane-parallel IEEE op.
/// The two clamp lines mirror _mm256_max_pd(lo, x) / _mm256_min_pd(hi, x)
/// operand order so +/-inf and out-of-range inputs take identical paths
/// in scalar and vector code. Precondition: x is not NaN (the scalar
/// int64 cast of NaN would be UB).
inline Scalar ExpD(Scalar x) {
  Scalar xs = kExpLo > x ? kExpLo : x;
  xs = kExpHi < xs ? kExpHi : xs;
  const Scalar t = xs * kExpLog2e + kExpShift;
  const Scalar k = t - kExpShift;
  Scalar r = xs - k * kExpLn2Hi;
  r = r - k * kExpLn2Lo;
  Scalar p = kExpCoeff[13];
  for (int j = 12; j >= 0; --j) p = p * r + kExpCoeff[j];
  // Split 2^k into 2^k1 * 2^k2 so the intermediate scale factors stay
  // normal even when the result is denormal or near overflow.
  const int64_t ki = static_cast<int64_t>(k);
  const int64_t k1 = ki >> 1;
  const int64_t k2 = ki - k1;
  const Scalar s1 =
      std::bit_cast<Scalar>(static_cast<uint64_t>(k1 + 1023) << 52);
  const Scalar s2 =
      std::bit_cast<Scalar>(static_cast<uint64_t>(k2 + 1023) << 52);
  return (p * s1) * s2;
}

}  // namespace detail

namespace scalar {

/// Maximum over x[0..n), n >= 1, normalized so a zero maximum is always
/// +0.0. Fixed 4-lane shape (mirrored lane for lane by the SIMD
/// variants); max over non-NaN doubles is associative/commutative and the
/// trailing `+ 0.0` collapses -0.0 to +0.0, so the result is bit-identical
/// to the serial scan regardless of lane combination order.
inline Scalar RowMax(const Scalar* TGSIM_RESTRICT x, int n) {
  if (n < 8) {
    Scalar m = x[0];
    for (int i = 1; i < n; ++i) m = x[i] > m ? x[i] : m;
    return m + 0.0;
  }
  Scalar m0 = x[0], m1 = x[1], m2 = x[2], m3 = x[3];
  int i = 4;
  for (; i + 3 < n; i += 4) {
    m0 = x[i] > m0 ? x[i] : m0;
    m1 = x[i + 1] > m1 ? x[i + 1] : m1;
    m2 = x[i + 2] > m2 ? x[i + 2] : m2;
    m3 = x[i + 3] > m3 ? x[i + 3] : m3;
  }
  for (; i < n; ++i) m0 = x[i] > m0 ? x[i] : m0;
  m0 = m1 > m0 ? m1 : m0;
  m2 = m3 > m2 ? m3 : m2;
  return (m2 > m0 ? m2 : m0) + 0.0;
}

/// dst[i] = ExpD(x[i] - m); returns the fixed-shape sum of dst:
/// four accumulators over the i+3 < n prefix (accumulator l takes indices
/// congruent to l mod 4), combined ((a0+a1)+a2)+a3, then an ascending
/// scalar tail. In place allowed (dst == x).
inline Scalar ExpRowSum(const Scalar* x, Scalar m, Scalar* dst, int n) {
  Scalar a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  int i = 0;
  for (; i + 3 < n; i += 4) {
    dst[i] = detail::ExpD(x[i] - m);
    dst[i + 1] = detail::ExpD(x[i + 1] - m);
    dst[i + 2] = detail::ExpD(x[i + 2] - m);
    dst[i + 3] = detail::ExpD(x[i + 3] - m);
    a0 += dst[i];
    a1 += dst[i + 1];
    a2 += dst[i + 2];
    a3 += dst[i + 3];
  }
  Scalar z = ((a0 + a1) + a2) + a3;
  for (; i < n; ++i) {
    dst[i] = detail::ExpD(x[i] - m);
    z += dst[i];
  }
  return z;
}

/// dst[i] = ExpD(x[i] - m), no sum. In place allowed.
inline void ExpRow(const Scalar* x, Scalar m, Scalar* dst, int n) {
  for (int i = 0; i < n; ++i) dst[i] = detail::ExpD(x[i] - m);
}

/// x[i] /= z: exact per-element IEEE division (kept as a division, never
/// a reciprocal multiply).
inline void DivRow(Scalar* TGSIM_RESTRICT x, Scalar z, int n) {
  for (int i = 0; i < n; ++i) x[i] /= z;
}

/// Ascending-index dot product: single left-associated chain —
/// bit-identical to the naive loop (and to the k-accumulation of a MatMul
/// output column, which the TGAE sparse/dense pin relies on).
inline Scalar Dot(const Scalar* TGSIM_RESTRICT a,
                  const Scalar* TGSIM_RESTRICT b, int n) {
  Scalar s = 0.0;
  for (int k = 0; k < n; ++k) s += a[k] * b[k];
  return s;
}

/// Ascending-index sum_k a[k] * (b1[k] + b2[k]) — the TagGen transition
/// logit against a candidate embedding split into node + time halves.
inline Scalar DotSum2(const Scalar* TGSIM_RESTRICT a,
                      const Scalar* TGSIM_RESTRICT b1,
                      const Scalar* TGSIM_RESTRICT b2, int n) {
  Scalar s = 0.0;
  for (int k = 0; k < n; ++k) s += a[k] * (b1[k] + b2[k]);
  return s;
}

/// Four dot products against one k-major 4-column panel block:
///   out4[j] = sum_k h[k] * panel[4*k + j],   j in 0..3,
/// each out4[j] its own ascending-k left-associated chain — bit-identical
/// to Dot(h, column j). Four independent chains per step is what breaks
/// the add-latency bound the serial Dot is stuck at; the SIMD variants
/// map chain j onto lane j.
inline void DotPanel4(const Scalar* TGSIM_RESTRICT h,
                      const Scalar* TGSIM_RESTRICT panel, int d,
                      Scalar* TGSIM_RESTRICT out4) {
  Scalar s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (int k = 0; k < d; ++k) {
    const Scalar hk = h[k];
    s0 += hk * panel[4 * k + 0];
    s1 += hk * panel[4 * k + 1];
    s2 += hk * panel[4 * k + 2];
    s3 += hk * panel[4 * k + 3];
  }
  out4[0] = s0;
  out4[1] = s1;
  out4[2] = s2;
  out4[3] = s3;
}

/// o[j] += a * b[j]: one rank-1 row update of the ikj MatMul kernel.
inline void AxpyRow(Scalar a, const Scalar* TGSIM_RESTRICT b,
                    Scalar* TGSIM_RESTRICT o, int n) {
  for (int j = 0; j < n; ++j) o[j] += a * b[j];
}

/// Four fused rank-1 row updates:
///   o[j] = (((o[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j].
/// C++ `+` is left-associative, so per output element this is exactly the
/// chain four sequential AxpyRow passes would produce.
inline void Axpy4Row(Scalar a0, const Scalar* TGSIM_RESTRICT b0, Scalar a1,
                     const Scalar* TGSIM_RESTRICT b1, Scalar a2,
                     const Scalar* TGSIM_RESTRICT b2, Scalar a3,
                     const Scalar* TGSIM_RESTRICT b3,
                     Scalar* TGSIM_RESTRICT o, int n) {
  for (int j = 0; j < n; ++j)
    o[j] = o[j] + a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
}

/// dst[i] += x[i].
inline void AddRow(Scalar* TGSIM_RESTRICT dst, const Scalar* TGSIM_RESTRICT x,
                   int n) {
  for (int i = 0; i < n; ++i) dst[i] += x[i];
}

/// x[i] *= s.
inline void ScaleRow(Scalar* TGSIM_RESTRICT x, Scalar s, int n) {
  for (int i = 0; i < n; ++i) x[i] *= s;
}

/// dst[i] *= x[i]. In place allowed.
inline void MulRow(Scalar* dst, const Scalar* x, int n) {
  for (int i = 0; i < n; ++i) dst[i] *= x[i];
}

/// dst[i] += a[i] * b[i] (two roundings: multiply then add — never fused).
inline void MulAddRow(Scalar* TGSIM_RESTRICT dst,
                      const Scalar* TGSIM_RESTRICT a,
                      const Scalar* TGSIM_RESTRICT b, int n) {
  for (int i = 0; i < n; ++i) dst[i] = dst[i] + a[i] * b[i];
}

/// dst[i] = s * dst[i] + a * x[i] — the SGD momentum update
/// (v = mu*v + 1.0*g) in one pass; with a == 1.0 the second product is
/// exact, so this matches the old ScaleInPlace-then-Axpy sequence bit for
/// bit.
inline void ScaleAddRow(Scalar* TGSIM_RESTRICT dst, Scalar s,
                        const Scalar* TGSIM_RESTRICT x, Scalar a, int n) {
  for (int i = 0; i < n; ++i) dst[i] = s * dst[i] + a * x[i];
}

/// dst[i] = x[i] - s. In place allowed.
inline void ShiftRow(const Scalar* x, Scalar s, Scalar* dst, int n) {
  for (int i = 0; i < n; ++i) dst[i] = x[i] - s;
}

/// dst[i] = 1 / (1 + ExpD(-x[i])). In place allowed.
inline void SigmoidRow(const Scalar* x, Scalar* dst, int n) {
  for (int i = 0; i < n; ++i) dst[i] = 1.0 / (1.0 + detail::ExpD(-x[i]));
}

/// gi[i] += go[i] * (y[i] * (1 - y[i])) — sigmoid backward against the
/// saved forward output y.
inline void SigmoidBwdRow(const Scalar* TGSIM_RESTRICT go,
                          const Scalar* TGSIM_RESTRICT y,
                          Scalar* TGSIM_RESTRICT gi, int n) {
  for (int i = 0; i < n; ++i) gi[i] += go[i] * (y[i] * (1.0 - y[i]));
}

/// dst[i] = x[i] > 0 ? x[i] : +0.0. NOT LeakyRelu with slope 0: that
/// would write -0.0 for negative inputs (0 * -x), this writes +0.0 like
/// the reference ternary.
inline void ReluRow(const Scalar* x, Scalar* dst, int n) {
  for (int i = 0; i < n; ++i) dst[i] = x[i] > 0.0 ? x[i] : 0.0;
}

/// gi[i] += go[i] * (x[i] > 0 ? 1.0 : 0.0). The multiply is real (not a
/// mask-and): go * 0.0 keeps go's sign on the zero, exactly like the
/// serial reference.
inline void ReluBwdRow(const Scalar* TGSIM_RESTRICT go,
                       const Scalar* TGSIM_RESTRICT x,
                       Scalar* TGSIM_RESTRICT gi, int n) {
  for (int i = 0; i < n; ++i) gi[i] += go[i] * (x[i] > 0.0 ? 1.0 : 0.0);
}

/// dst[i] = x[i] > 0 ? x[i] : slope * x[i]. In place allowed.
inline void LeakyReluRow(const Scalar* x, Scalar slope, Scalar* dst, int n) {
  for (int i = 0; i < n; ++i) dst[i] = x[i] > 0.0 ? x[i] : slope * x[i];
}

/// gi[i] += go[i] * (x[i] > 0 ? 1.0 : slope).
inline void LeakyReluBwdRow(const Scalar* TGSIM_RESTRICT go,
                            const Scalar* TGSIM_RESTRICT x, Scalar slope,
                            Scalar* TGSIM_RESTRICT gi, int n) {
  for (int i = 0; i < n; ++i) gi[i] += go[i] * (x[i] > 0.0 ? 1.0 : slope);
}

/// gi[i] += y[i] * (go[i] - dot) — softmax backward with the row dot
/// precomputed by the caller (via Dot, keeping its serial chain).
inline void SoftmaxBwdRow(const Scalar* TGSIM_RESTRICT go,
                          const Scalar* TGSIM_RESTRICT y, Scalar dot,
                          Scalar* TGSIM_RESTRICT gi, int n) {
  for (int i = 0; i < n; ++i) gi[i] += y[i] * (go[i] - dot);
}

/// gi[i] += go[i] - p[i] * gsum — log-softmax backward with the row grad
/// sum precomputed by the caller's serial chain.
inline void LogSoftmaxBwdRow(const Scalar* TGSIM_RESTRICT go,
                             const Scalar* TGSIM_RESTRICT p, Scalar gsum,
                             Scalar* TGSIM_RESTRICT gi, int n) {
  for (int i = 0; i < n; ++i) gi[i] += go[i] - p[i] * gsum;
}

/// gi[i] += (a * e[i]) / z — the dense half of the sampled-softmax
/// backward (a = upstream_grad * mass, e = saved exp row, z = row sum).
inline void AxpyDivRow(Scalar a, const Scalar* TGSIM_RESTRICT e, Scalar z,
                       Scalar* TGSIM_RESTRICT gi, int n) {
  for (int i = 0; i < n; ++i) gi[i] += (a * e[i]) / z;
}

/// One fused Adam update over a contiguous chunk — the exact expression
/// sequence of the serial optimizer loop, element by element:
///   m[j] = beta1*m[j] + (1-beta1)*g[j]
///   v[j] = beta2*v[j] + ((1-beta2)*g[j])*g[j]
///   x[j] -= (lr * (m[j]/bias1)) / (sqrt(v[j]/bias2) + eps)
/// sqrt and divide are correctly rounded, so lanes match scalar exactly.
inline void AdamRow(Scalar* TGSIM_RESTRICT x, Scalar* TGSIM_RESTRICT m,
                    Scalar* TGSIM_RESTRICT v, const Scalar* TGSIM_RESTRICT g,
                    Scalar beta1, Scalar one_minus_beta1, Scalar beta2,
                    Scalar one_minus_beta2, Scalar bias1, Scalar bias2,
                    Scalar lr, Scalar eps, int n) {
  for (int j = 0; j < n; ++j) {
    const Scalar gj = g[j];
    m[j] = beta1 * m[j] + one_minus_beta1 * gj;
    v[j] = beta2 * v[j] + (one_minus_beta2 * gj) * gj;
    const Scalar m_hat = m[j] / bias1;
    const Scalar v_hat = v[j] / bias2;
    x[j] -= (lr * m_hat) / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Public dispatched entry points. Same names and semantics as the scalar
// reference above; each routes through the one-time-resolved backend
// table. Dot/DotSum2 deliberately bypass the table (identical in every
// backend; inlining matters in the generation hot loops).
// ---------------------------------------------------------------------------

inline Scalar RowMax(const Scalar* x, int n) {
  TGSIM_DCHECK(n >= 1);
  return Ops().row_max(x, n);
}

inline Scalar ExpRowSum(const Scalar* x, Scalar m, Scalar* dst, int n) {
  return Ops().exp_row_sum(x, m, dst, n);
}

inline void ExpRow(const Scalar* x, Scalar m, Scalar* dst, int n) {
  Ops().exp_row(x, m, dst, n);
}

inline void DivRow(Scalar* x, Scalar z, int n) { Ops().div_row(x, z, n); }

inline Scalar Dot(const Scalar* TGSIM_RESTRICT a,
                  const Scalar* TGSIM_RESTRICT b, int n) {
  return scalar::Dot(a, b, n);
}

inline Scalar DotSum2(const Scalar* TGSIM_RESTRICT a,
                      const Scalar* TGSIM_RESTRICT b1,
                      const Scalar* TGSIM_RESTRICT b2, int n) {
  return scalar::DotSum2(a, b1, b2, n);
}

inline void DotPanel4(const Scalar* h, const Scalar* panel, int d,
                      Scalar* out4) {
  Ops().dot_panel4(h, panel, d, out4);
}

inline void AxpyRow(Scalar a, const Scalar* b, Scalar* o, int n) {
  Ops().axpy_row(a, b, o, n);
}

inline void Axpy4Row(Scalar a0, const Scalar* b0, Scalar a1, const Scalar* b1,
                     Scalar a2, const Scalar* b2, Scalar a3, const Scalar* b3,
                     Scalar* o, int n) {
  Ops().axpy4_row(a0, b0, a1, b1, a2, b2, a3, b3, o, n);
}

inline void AddRow(Scalar* dst, const Scalar* x, int n) {
  Ops().add_row(dst, x, n);
}

inline void ScaleRow(Scalar* x, Scalar s, int n) { Ops().scale_row(x, s, n); }

inline void MulRow(Scalar* dst, const Scalar* x, int n) {
  Ops().mul_row(dst, x, n);
}

inline void MulAddRow(Scalar* dst, const Scalar* a, const Scalar* b, int n) {
  Ops().mul_add_row(dst, a, b, n);
}

inline void ScaleAddRow(Scalar* dst, Scalar s, const Scalar* x, Scalar a,
                        int n) {
  Ops().scale_add_row(dst, s, x, a, n);
}

inline void ShiftRow(const Scalar* x, Scalar s, Scalar* dst, int n) {
  Ops().shift_row(x, s, dst, n);
}

inline void SigmoidRow(const Scalar* x, Scalar* dst, int n) {
  Ops().sigmoid_row(x, dst, n);
}

inline void SigmoidBwdRow(const Scalar* go, const Scalar* y, Scalar* gi,
                          int n) {
  Ops().sigmoid_bwd_row(go, y, gi, n);
}

inline void ReluRow(const Scalar* x, Scalar* dst, int n) {
  Ops().relu_row(x, dst, n);
}

inline void ReluBwdRow(const Scalar* go, const Scalar* x, Scalar* gi, int n) {
  Ops().relu_bwd_row(go, x, gi, n);
}

inline void LeakyReluRow(const Scalar* x, Scalar slope, Scalar* dst, int n) {
  Ops().leaky_relu_row(x, slope, dst, n);
}

inline void LeakyReluBwdRow(const Scalar* go, const Scalar* x, Scalar slope,
                            Scalar* gi, int n) {
  Ops().leaky_relu_bwd_row(go, x, slope, gi, n);
}

inline void SoftmaxBwdRow(const Scalar* go, const Scalar* y, Scalar dot,
                          Scalar* gi, int n) {
  Ops().softmax_bwd_row(go, y, dot, gi, n);
}

inline void LogSoftmaxBwdRow(const Scalar* go, const Scalar* p, Scalar gsum,
                             Scalar* gi, int n) {
  Ops().logsoftmax_bwd_row(go, p, gsum, gi, n);
}

inline void AxpyDivRow(Scalar a, const Scalar* e, Scalar z, Scalar* gi,
                       int n) {
  Ops().axpy_div_row(a, e, z, gi, n);
}

inline void AdamRow(Scalar* x, Scalar* m, Scalar* v, const Scalar* g,
                    Scalar beta1, Scalar one_minus_beta1, Scalar beta2,
                    Scalar one_minus_beta2, Scalar bias1, Scalar bias2,
                    Scalar lr, Scalar eps, int n) {
  Ops().adam_row(x, m, v, g, beta1, one_minus_beta1, beta2, one_minus_beta2,
                 bias1, bias2, lr, eps, n);
}

/// Stabilized softmax of one contiguous row into a distinct destination
/// (src and dst must not alias). The row sums to 1 afterwards.
/// Composition of RowMax + ExpRowSum + DivRow — bit-identical to
/// Tensor::SoftmaxRows on the same row.
inline void SoftmaxRow(const Scalar* src, Scalar* dst, int n) {
  const Scalar m = RowMax(src, n);
  const Scalar z = ExpRowSum(src, m, dst, n);
  DivRow(dst, z, n);
}

}  // namespace tgsim::nn::kernels

#endif  // TGSIM_NN_KERNELS_H_
