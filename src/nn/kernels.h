#ifndef TGSIM_NN_KERNELS_H_
#define TGSIM_NN_KERNELS_H_

#include <cmath>

#include "nn/tensor.h"

#if defined(_MSC_VER)
#define TGSIM_RESTRICT __restrict
#else
#define TGSIM_RESTRICT __restrict__
#endif

namespace tgsim::nn::kernels {

/// Row-level microkernels shared by the Tensor math and the generators'
/// hand-rolled logit/softmax loops. Everything here is written so the
/// compiler can vectorize it WITHOUT -ffast-math, which means every kernel
/// must keep the exact IEEE semantics of the plain serial loop it
/// replaces:
///
///  - Sums keep a single strictly ascending-index, left-associated
///    accumulation chain (no multiple accumulators): FP addition is not
///    associative, and the determinism contract pins outputs bit-identical
///    to the serial reference at any thread count.
///  - Max reductions MAY use independent lanes: IEEE max over non-NaN
///    values is associative and commutative, so any combination order
///    yields the same value.
///  - Per-element maps (exp, divide, axpy) vectorize freely: each output
///    element is an independent exact IEEE operation.

/// Maximum over x[0..n), n >= 1. Four independent lanes let the compiler
/// keep the comparison loop in SIMD registers; max is exact, so this is
/// bit-identical to the serial scan (up to the sign of equal zeros, which
/// every caller feeds through exp()).
inline Scalar RowMax(const Scalar* TGSIM_RESTRICT x, int n) {
  TGSIM_DCHECK(n >= 1);
  if (n < 8) {
    Scalar m = x[0];
    for (int i = 1; i < n; ++i) m = x[i] > m ? x[i] : m;
    return m;
  }
  Scalar m0 = x[0], m1 = x[1], m2 = x[2], m3 = x[3];
  int i = 4;
  for (; i + 3 < n; i += 4) {
    m0 = x[i] > m0 ? x[i] : m0;
    m1 = x[i + 1] > m1 ? x[i + 1] : m1;
    m2 = x[i + 2] > m2 ? x[i + 2] : m2;
    m3 = x[i + 3] > m3 ? x[i + 3] : m3;
  }
  for (; i < n; ++i) m0 = x[i] > m0 ? x[i] : m0;
  m0 = m1 > m0 ? m1 : m0;
  m2 = m3 > m2 ? m3 : m2;
  return m2 > m0 ? m2 : m0;
}

/// dst[i] = exp(x[i] - m); returns the ascending-index sum of dst.
/// The exp calls are per-element exact; the sum keeps the serial chain.
inline Scalar ExpRowSum(const Scalar* TGSIM_RESTRICT x, Scalar m,
                        Scalar* TGSIM_RESTRICT dst, int n) {
  Scalar z = 0.0;
  for (int i = 0; i < n; ++i) {
    dst[i] = std::exp(x[i] - m);
    z += dst[i];
  }
  return z;
}

/// x[i] /= z for i in [0, n): exact per-element IEEE division (kept as a
/// division, never a reciprocal multiply), freely vectorizable.
inline void DivRow(Scalar* TGSIM_RESTRICT x, Scalar z, int n) {
  for (int i = 0; i < n; ++i) x[i] /= z;
}

/// Ascending-index dot product: sum_k a[k] * b[k], single left-associated
/// chain — bit-identical to the naive loop (and to the k-accumulation of
/// a MatMul output column, which the TGAE sparse/dense pin relies on).
inline Scalar Dot(const Scalar* TGSIM_RESTRICT a,
                  const Scalar* TGSIM_RESTRICT b, int n) {
  Scalar s = 0.0;
  for (int k = 0; k < n; ++k) s += a[k] * b[k];
  return s;
}

/// Ascending-index sum_k a[k] * (b1[k] + b2[k]) — the TagGen transition
/// logit against a candidate embedding split into node + time halves.
inline Scalar DotSum2(const Scalar* TGSIM_RESTRICT a,
                      const Scalar* TGSIM_RESTRICT b1,
                      const Scalar* TGSIM_RESTRICT b2, int n) {
  Scalar s = 0.0;
  for (int k = 0; k < n; ++k) s += a[k] * (b1[k] + b2[k]);
  return s;
}

/// o[j] += a * b[j]: one rank-1 row update of the ikj MatMul kernel.
inline void AxpyRow(Scalar a, const Scalar* TGSIM_RESTRICT b,
                    Scalar* TGSIM_RESTRICT o, int n) {
  for (int j = 0; j < n; ++j) o[j] += a * b[j];
}

/// Four fused rank-1 row updates:
///   o[j] = (((o[j] + a0*b0[j]) + a1*b1[j]) + a2*b2[j]) + a3*b3[j].
/// C++ `+` is left-associative, so per output element this is exactly the
/// chain four sequential AxpyRow passes would produce — bit-identical to
/// the unrolled-by-1 kernel — while touching o[] once instead of four
/// times (the MatMul inner loop is memory-bound on o/b traffic).
inline void Axpy4Row(Scalar a0, const Scalar* TGSIM_RESTRICT b0, Scalar a1,
                     const Scalar* TGSIM_RESTRICT b1, Scalar a2,
                     const Scalar* TGSIM_RESTRICT b2, Scalar a3,
                     const Scalar* TGSIM_RESTRICT b3,
                     Scalar* TGSIM_RESTRICT o, int n) {
  for (int j = 0; j < n; ++j)
    o[j] = o[j] + a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
}

/// Stabilized softmax of one contiguous row into a distinct destination
/// (src and dst must not alias). The row sums to 1 afterwards. Composition
/// of the three kernels above — bit-identical to Tensor::SoftmaxRows on
/// the same row.
inline void SoftmaxRow(const Scalar* TGSIM_RESTRICT src,
                       Scalar* TGSIM_RESTRICT dst, int n) {
  const Scalar m = RowMax(src, n);
  const Scalar z = ExpRowSum(src, m, dst, n);
  DivRow(dst, z, n);
}

}  // namespace tgsim::nn::kernels

#endif  // TGSIM_NN_KERNELS_H_
