#include <cmath>
#include "nn/layers.h"

namespace tgsim::nn {

int64_t Module::NumParams() const {
  int64_t n = 0;
  for (const Var& p : params_) n += p.value().size();
  return n;
}

Linear::Linear(Rng& rng, int in_features, int out_features, bool bias)
    : has_bias_(bias) {
  w_ = AddParam(Tensor::GlorotUniform(rng, in_features, out_features));
  if (has_bias_) b_ = AddParam(Tensor::Zeros(1, out_features));
}

Var Linear::Forward(const Var& x) const {
  Var y = MatMul(x, w_);
  if (has_bias_) y = Add(y, b_);
  return y;
}

Var Activate(const Var& x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kLeakyRelu:
      return LeakyRelu(x);
    case Activation::kIdentity:
      return x;
  }
  TGSIM_CHECK(false);
  return x;
}

Mlp::Mlp(Rng& rng, const std::vector<int>& dims, Activation act,
         bool final_activation)
    : act_(act), final_activation_(final_activation) {
  TGSIM_CHECK_GE(dims.size(), 2u);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(rng, dims[i], dims[i + 1]);
    AbsorbParams(layers_.back());
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    bool is_last = (i + 1 == layers_.size());
    if (!is_last || final_activation_) h = Activate(h, act_);
  }
  return h;
}

int Mlp::out_features() const { return layers_.back().out_features(); }

Embedding::Embedding(Rng& rng, int num_embeddings, int dim) {
  weight_ = AddParam(
      Tensor::Randn(rng, num_embeddings, dim, 1.0 / std::sqrt(dim)));
}

Var Embedding::Forward(const std::vector<int>& indices) const {
  return GatherRows(weight_, indices);
}

GruCell::GruCell(Rng& rng, int input_dim, int hidden_dim)
    : hidden_dim_(hidden_dim) {
  wz_ = AddParam(Tensor::GlorotUniform(rng, input_dim, hidden_dim));
  uz_ = AddParam(Tensor::GlorotUniform(rng, hidden_dim, hidden_dim));
  bz_ = AddParam(Tensor::Zeros(1, hidden_dim));
  wr_ = AddParam(Tensor::GlorotUniform(rng, input_dim, hidden_dim));
  ur_ = AddParam(Tensor::GlorotUniform(rng, hidden_dim, hidden_dim));
  br_ = AddParam(Tensor::Zeros(1, hidden_dim));
  wh_ = AddParam(Tensor::GlorotUniform(rng, input_dim, hidden_dim));
  uh_ = AddParam(Tensor::GlorotUniform(rng, hidden_dim, hidden_dim));
  bh_ = AddParam(Tensor::Zeros(1, hidden_dim));
}

Var GruCell::Forward(const Var& x, const Var& h) const {
  Var z = Sigmoid(Add(Add(MatMul(x, wz_), MatMul(h, uz_)), bz_));
  Var r = Sigmoid(Add(Add(MatMul(x, wr_), MatMul(h, ur_)), br_));
  Var h_cand = Tanh(Add(Add(MatMul(x, wh_), MatMul(Mul(r, h), uh_)), bh_));
  // h' = (1-z)*h + z*h_cand
  Var one_minus_z = AddScalar(Scale(z, -1.0), 1.0);
  return Add(Mul(one_minus_z, h), Mul(z, h_cand));
}

Var GruCell::InitialState(int batch) const {
  return Var::Constant(Tensor::Zeros(batch, hidden_dim_));
}

}  // namespace tgsim::nn
