#ifndef TGSIM_NN_SIMD_H_
#define TGSIM_NN_SIMD_H_

#include <atomic>

#include "nn/tensor.h"

namespace tgsim::nn::kernels {

/// Runtime-dispatched kernel backends. The scalar table is the reference
/// semantics; every other table must be bit-identical to it on every input
/// the callers can produce (see kernels.h for the contract). Selection
/// happens once, lazily, on first kernel call:
///
///   1. TGSIM_FORCE_SCALAR_BUILD compiled in, or the TGSIM_FORCE_SCALAR
///      environment variable set to anything but "0"/"" -> kScalar.
///   2. x86-64 with AVX2 reported by the CPU and the AVX2 TU compiled in
///      -> kAvx2.
///   3. aarch64 with the NEON TU compiled in -> kNeon.
///   4. Otherwise -> kScalar.
enum class Backend { kScalar = 0, kAvx2 = 1, kNeon = 2 };

struct KernelOps {
  Scalar (*row_max)(const Scalar* x, int n);
  Scalar (*exp_row_sum)(const Scalar* x, Scalar m, Scalar* dst, int n);
  void (*exp_row)(const Scalar* x, Scalar m, Scalar* dst, int n);
  void (*div_row)(Scalar* x, Scalar z, int n);
  // dot/dot_sum2 are the serial ascending chain in EVERY backend: the
  // single-accumulator chain is add-latency-bound, so lanes cannot help
  // without changing the association the MatMul/TGAE pins rely on.
  Scalar (*dot)(const Scalar* a, const Scalar* b, int n);
  Scalar (*dot_sum2)(const Scalar* a, const Scalar* b1, const Scalar* b2,
                     int n);
  void (*dot_panel4)(const Scalar* h, const Scalar* panel, int d,
                     Scalar* out4);
  void (*axpy_row)(Scalar a, const Scalar* b, Scalar* o, int n);
  void (*axpy4_row)(Scalar a0, const Scalar* b0, Scalar a1, const Scalar* b1,
                    Scalar a2, const Scalar* b2, Scalar a3, const Scalar* b3,
                    Scalar* o, int n);
  void (*add_row)(Scalar* dst, const Scalar* x, int n);
  void (*scale_row)(Scalar* x, Scalar s, int n);
  void (*mul_row)(Scalar* dst, const Scalar* x, int n);
  void (*mul_add_row)(Scalar* dst, const Scalar* a, const Scalar* b, int n);
  void (*scale_add_row)(Scalar* dst, Scalar s, const Scalar* x, Scalar a,
                        int n);
  void (*shift_row)(const Scalar* x, Scalar s, Scalar* dst, int n);
  void (*sigmoid_row)(const Scalar* x, Scalar* dst, int n);
  void (*sigmoid_bwd_row)(const Scalar* go, const Scalar* y, Scalar* gi,
                          int n);
  void (*relu_row)(const Scalar* x, Scalar* dst, int n);
  void (*relu_bwd_row)(const Scalar* go, const Scalar* x, Scalar* gi, int n);
  void (*leaky_relu_row)(const Scalar* x, Scalar slope, Scalar* dst, int n);
  void (*leaky_relu_bwd_row)(const Scalar* go, const Scalar* x, Scalar slope,
                             Scalar* gi, int n);
  void (*softmax_bwd_row)(const Scalar* go, const Scalar* y, Scalar dot,
                          Scalar* gi, int n);
  void (*logsoftmax_bwd_row)(const Scalar* go, const Scalar* p, Scalar gsum,
                             Scalar* gi, int n);
  void (*axpy_div_row)(Scalar a, const Scalar* e, Scalar z, Scalar* gi,
                       int n);
  void (*adam_row)(Scalar* x, Scalar* m, Scalar* v, const Scalar* g,
                   Scalar beta1, Scalar one_minus_beta1, Scalar beta2,
                   Scalar one_minus_beta2, Scalar bias1, Scalar bias2,
                   Scalar lr, Scalar eps, int n);
};

namespace detail {
// Set once by ResolveOps (or SetBackendForTest); acquire/release so a
// reader never sees a half-initialized table pointer.
extern std::atomic<const KernelOps*> g_ops;
const KernelOps* ResolveOps();
}  // namespace detail

/// The active dispatch table. First call resolves the backend (env check +
/// CPUID); later calls are a single atomic load.
inline const KernelOps& Ops() {
  const KernelOps* ops = detail::g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) ops = detail::ResolveOps();
  return *ops;
}

/// Table for an explicit backend; nullptr if that backend was not compiled
/// into this binary (kScalar is always available).
const KernelOps* OpsFor(Backend b);

/// Backend the next Ops() call will use (resolving it if needed).
Backend ActiveBackend();

/// True if the given backend's TU is compiled into this binary.
bool BackendCompiledIn(Backend b);

/// "scalar" / "avx2" / "neon".
const char* BackendName(Backend b);

/// Test hook: pin the dispatch table to a backend (must be compiled in).
/// Returns the previously active backend so tests can restore it. Not
/// thread-safe against concurrent kernel calls — call only from
/// single-threaded test setup.
Backend SetBackendForTest(Backend b);

const KernelOps* GetScalarOps();
#if defined(TGSIM_HAVE_AVX2_KERNELS)
const KernelOps* GetAvx2Ops();
#endif
#if defined(TGSIM_HAVE_NEON_KERNELS)
const KernelOps* GetNeonOps();
#endif

}  // namespace tgsim::nn::kernels

#endif  // TGSIM_NN_SIMD_H_
