#ifndef TGSIM_NN_AUTOGRAD_H_
#define TGSIM_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace tgsim::nn {

/// One vertex of the dynamically built computation DAG.
///
/// Nodes are created by the op functions below and connected through
/// `parents`. `backward_fn` consumes this node's `grad` and accumulates into
/// the parents' `grad` tensors. Users interact with Var, not Node.
struct Node {
  Tensor value;
  Tensor grad;  // Lazily allocated; same shape as value once touched.
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward_fn;

  /// Allocates (zeroed) grad storage on first use.
  void EnsureGrad() {
    if (!grad.SameShape(value)) grad = Tensor::Zeros(value.rows(), value.cols());
  }
};

/// Handle to a node in the autograd graph. Cheap to copy; two copies refer
/// to the same underlying value/grad storage.
///
/// A Var is either a *parameter* (requires_grad, persists across graph
/// builds), a *constant* (no grad), or an intermediate op result.
class Var {
 public:
  Var() = default;
  explicit Var(Tensor value, bool requires_grad = false);

  /// A trainable parameter.
  static Var Param(Tensor value) { return Var(std::move(value), true); }
  /// A non-trainable input.
  static Var Constant(Tensor value) { return Var(std::move(value), false); }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  const Tensor& grad() const { return node_->grad; }
  Tensor& mutable_grad() { return node_->grad; }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }
  /// Value of a 1x1 tensor (e.g., a loss).
  Scalar item() const;

  void ZeroGrad() {
    if (node_) node_->EnsureGrad(), node_->grad.SetZero();
  }

  std::shared_ptr<Node> node() const { return node_; }

  /// Internal: wraps an existing node (used by the op implementations).
  static Var FromNode(std::shared_ptr<Node> node);

 private:
  std::shared_ptr<Node> node_;
};

/// Runs reverse-mode differentiation from `root`, which must be 1x1 (a
/// scalar loss). Gradients *accumulate* into every reachable node that
/// requires grad; call ZeroGrad (or Optimizer::ZeroGrad) between steps.
void Backward(const Var& root);

// ---------------------------------------------------------------------------
// Differentiable ops. Each returns a fresh Var wired into the graph.
// ---------------------------------------------------------------------------

/// Matrix product a @ b.
Var MatMul(const Var& a, const Var& b);
/// Elementwise a + b; if b is 1 x cols it broadcasts over a's rows.
Var Add(const Var& a, const Var& b);
/// Elementwise a - b (same shape).
Var Sub(const Var& a, const Var& b);
/// Elementwise (Hadamard) product, same shape.
Var Mul(const Var& a, const Var& b);
/// Broadcasts the E x 1 column `w` across a's columns: out[i,j]=a[i,j]*w[i].
Var MulColBroadcast(const Var& a, const Var& w);
/// a * s.
Var Scale(const Var& a, Scalar s);
/// a + s (elementwise).
Var AddScalar(const Var& a, Scalar s);

Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
/// LeakyReLU with the paper's default negative slope 0.2 (Eq. 5).
Var LeakyRelu(const Var& a, Scalar slope = 0.2);
Var Exp(const Var& a);
/// log(max(a, eps)) for numerical safety.
Var Log(const Var& a, Scalar eps = 1e-12);
Var Square(const Var& a);

/// Row-wise softmax / log-softmax (stabilized).
Var SoftmaxRows(const Var& a);
Var LogSoftmaxRows(const Var& a);

/// Scalar sum / mean of all entries (1x1 output).
Var Sum(const Var& a);
Var Mean(const Var& a);

/// Column-wise concatenation [a0 | a1 | ...]; all inputs share rows.
Var ConcatCols(const std::vector<Var>& vs);
/// Row-wise concatenation; all inputs share cols.
Var ConcatRows(const std::vector<Var>& vs);
/// Columns [begin, end) of a; backward scatter-adds into the slice. Used to
/// split per-head views out of a batched multi-head projection.
Var SliceCols(const Var& a, int begin, int end);
/// out.row(i) = a.row(idx[i]); backward scatter-adds.
Var GatherRows(const Var& a, std::vector<int> idx);
/// out[r, j] = a[r, idx[j]]; backward scatter-adds into the picked columns
/// (duplicate indices accumulate). This is the sparse-decoder primitive:
/// slicing the candidate columns out of the n-wide decoder weight makes the
/// decode matmul O(rows x |candidates|) instead of O(rows x n).
Var GatherCols(const Var& a, std::vector<int> idx);
/// out.row(seg[i]) += a.row(i); `num_segments` rows in the output.
Var SegmentSum(const Var& a, std::vector<int> seg, int num_segments);
/// Softmax over entries sharing a segment id. `scores` is E x 1, seg[i] in
/// [0, num_segments). This is the attention-normalization primitive of the
/// TGAT encoder (paper Eq. 5). Empty segments produce no output entries.
Var SegmentSoftmax(const Var& scores, std::vector<int> seg, int num_segments);
Var Transpose(const Var& a);

// ---------------------------------------------------------------------------
// Losses.
// ---------------------------------------------------------------------------

/// Mean over rows of -<target_row, log_softmax(logit_row)>. This is the
/// reconstruction term of the paper's Eq. 6/7 where each target row is the
/// (normalized) adjacency row A_{u^t}.
Var RowCrossEntropyWithLogits(const Var& logits, const Tensor& targets);

/// Sparse per-row targets in CSR form: row i owns the entries
/// [offsets[i], offsets[i+1]) of cols/weights. `cols` index the columns of
/// the logits they will be scored against (candidate-space columns for the
/// sampled-softmax loss). Rows may be empty (zero loss contribution).
struct SparseRowTargets {
  std::vector<int> offsets{0};
  std::vector<int> cols;
  std::vector<Scalar> weights;

  int rows() const { return static_cast<int>(offsets.size()) - 1; }
  void AppendEntry(int col, Scalar weight) {
    cols.push_back(col);
    weights.push_back(weight);
  }
  void FinishRow() { offsets.push_back(static_cast<int>(cols.size())); }
};

/// Sampled-softmax cross entropy: mean over rows of
/// -sum_j w_j * log_softmax(logit_row)[c_j], with the softmax taken over
/// the logits' columns only (the candidate set: positives plus shared
/// negatives). With logits gathered over a candidate set C this makes the
/// reconstruction term O(|C|) per row instead of O(n); with C = all n
/// columns it equals RowCrossEntropyWithLogits on the scattered targets.
Var SampledSoftmaxCrossEntropy(const Var& logits,
                               const SparseRowTargets& targets);

/// Mean elementwise binary cross entropy with logits; positive entries can
/// be up-weighted (VGAE-style class balancing).
Var BinaryCrossEntropyWithLogits(const Var& logits, const Tensor& targets,
                                 Scalar pos_weight = 1.0);

/// KL( N(mu, diag(exp(logvar))) || N(0, I) ), averaged over rows.
Var KlToStandardNormal(const Var& mu, const Var& logvar);

/// Mean squared error against a constant target.
Var MseLoss(const Var& pred, const Tensor& target);

}  // namespace tgsim::nn

#endif  // TGSIM_NN_AUTOGRAD_H_
