// NEON kernel table (aarch64). Compiled only with
// TGSIM_HAVE_NEON_KERNELS. float64x2_t has two lanes, so the fixed
// 4-accumulator shapes (RowMax, ExpRowSum, DotPanel4) use a PAIR of
// vectors — lanes (a0,a1) and (a2,a3) — to reproduce the scalar
// reference's shape exactly. No vfmaq anywhere: every multiply and add is
// a separately rounded op, and the build sets -ffp-contract=off globally
// so the compiler cannot fuse them either.
#if defined(TGSIM_HAVE_NEON_KERNELS)

#include <arm_neon.h>

#include "nn/kernels.h"
#include "nn/simd.h"

namespace tgsim::nn::kernels {
namespace {

/// Two-lane ExpD: identical operation sequence to detail::ExpD.
/// vmaxq/vminq implement IEEE maxNum/minNum; the operands only compare
/// equal at the (nonzero) clamp bounds, so they match the scalar clamp
/// ternaries bit for bit. vcvtnq_s64_f64 rounds to nearest — exact, k is
/// integral — and vshrq_n_s64 is the arithmetic shift the scalar int64
/// math uses.
inline float64x2_t ExpV(float64x2_t x) {
  const float64x2_t lo = vdupq_n_f64(detail::kExpLo);
  const float64x2_t hi = vdupq_n_f64(detail::kExpHi);
  float64x2_t xs = vmaxq_f64(lo, x);
  xs = vminq_f64(hi, xs);
  const float64x2_t shift = vdupq_n_f64(detail::kExpShift);
  const float64x2_t t =
      vaddq_f64(vmulq_f64(xs, vdupq_n_f64(detail::kExpLog2e)), shift);
  const float64x2_t k = vsubq_f64(t, shift);
  float64x2_t r =
      vsubq_f64(xs, vmulq_f64(k, vdupq_n_f64(detail::kExpLn2Hi)));
  r = vsubq_f64(r, vmulq_f64(k, vdupq_n_f64(detail::kExpLn2Lo)));
  float64x2_t p = vdupq_n_f64(detail::kExpCoeff[13]);
  for (int j = 12; j >= 0; --j)
    p = vaddq_f64(vmulq_f64(p, r), vdupq_n_f64(detail::kExpCoeff[j]));
  const int64x2_t ki = vcvtnq_s64_f64(k);
  const int64x2_t k1 = vshrq_n_s64(ki, 1);
  const int64x2_t k2 = vsubq_s64(ki, k1);
  const int64x2_t bias = vdupq_n_s64(1023);
  const float64x2_t s1 =
      vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(k1, bias), 52));
  const float64x2_t s2 =
      vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(k2, bias), 52));
  return vmulq_f64(vmulq_f64(p, s1), s2);
}

Scalar RowMaxNeon(const Scalar* x, int n) {
  if (n < 8) return scalar::RowMax(x, n);
  float64x2_t m01 = vld1q_f64(x);      // lanes m0, m1
  float64x2_t m23 = vld1q_f64(x + 2);  // lanes m2, m3
  int i = 4;
  for (; i + 3 < n; i += 4) {
    m01 = vmaxq_f64(vld1q_f64(x + i), m01);
    m23 = vmaxq_f64(vld1q_f64(x + i + 2), m23);
  }
  Scalar m[4] = {vgetq_lane_f64(m01, 0), vgetq_lane_f64(m01, 1),
                 vgetq_lane_f64(m23, 0), vgetq_lane_f64(m23, 1)};
  for (; i < n; ++i) m[0] = x[i] > m[0] ? x[i] : m[0];
  m[0] = m[1] > m[0] ? m[1] : m[0];
  m[2] = m[3] > m[2] ? m[3] : m[2];
  return (m[2] > m[0] ? m[2] : m[0]) + 0.0;
}

Scalar ExpRowSumNeon(const Scalar* x, Scalar m, Scalar* dst, int n) {
  const float64x2_t mv = vdupq_n_f64(m);
  float64x2_t a01 = vdupq_n_f64(0.0);
  float64x2_t a23 = vdupq_n_f64(0.0);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const float64x2_t e01 = ExpV(vsubq_f64(vld1q_f64(x + i), mv));
    const float64x2_t e23 = ExpV(vsubq_f64(vld1q_f64(x + i + 2), mv));
    vst1q_f64(dst + i, e01);
    vst1q_f64(dst + i + 2, e23);
    a01 = vaddq_f64(a01, e01);
    a23 = vaddq_f64(a23, e23);
  }
  Scalar z = ((vgetq_lane_f64(a01, 0) + vgetq_lane_f64(a01, 1)) +
              vgetq_lane_f64(a23, 0)) +
             vgetq_lane_f64(a23, 1);
  for (; i < n; ++i) {
    dst[i] = detail::ExpD(x[i] - m);
    z += dst[i];
  }
  return z;
}

void ExpRowNeon(const Scalar* x, Scalar m, Scalar* dst, int n) {
  const float64x2_t mv = vdupq_n_f64(m);
  int i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(dst + i, ExpV(vsubq_f64(vld1q_f64(x + i), mv)));
  for (; i < n; ++i) dst[i] = detail::ExpD(x[i] - m);
}

void DivRowNeon(Scalar* x, Scalar z, int n) {
  const float64x2_t zv = vdupq_n_f64(z);
  int i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(x + i, vdivq_f64(vld1q_f64(x + i), zv));
  for (; i < n; ++i) x[i] /= z;
}

void DotPanel4Neon(const Scalar* h, const Scalar* panel, int d,
                   Scalar* out4) {
  float64x2_t s01 = vdupq_n_f64(0.0);
  float64x2_t s23 = vdupq_n_f64(0.0);
  for (int k = 0; k < d; ++k) {
    const float64x2_t hk = vdupq_n_f64(h[k]);
    s01 = vaddq_f64(s01, vmulq_f64(hk, vld1q_f64(panel + 4 * k)));
    s23 = vaddq_f64(s23, vmulq_f64(hk, vld1q_f64(panel + 4 * k + 2)));
  }
  vst1q_f64(out4, s01);
  vst1q_f64(out4 + 2, s23);
}

void AxpyRowNeon(Scalar a, const Scalar* b, Scalar* o, int n) {
  const float64x2_t av = vdupq_n_f64(a);
  int i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(o + i, vaddq_f64(vld1q_f64(o + i),
                               vmulq_f64(av, vld1q_f64(b + i))));
  for (; i < n; ++i) o[i] += a * b[i];
}

void Axpy4RowNeon(Scalar a0, const Scalar* b0, Scalar a1, const Scalar* b1,
                  Scalar a2, const Scalar* b2, Scalar a3, const Scalar* b3,
                  Scalar* o, int n) {
  const float64x2_t a0v = vdupq_n_f64(a0);
  const float64x2_t a1v = vdupq_n_f64(a1);
  const float64x2_t a2v = vdupq_n_f64(a2);
  const float64x2_t a3v = vdupq_n_f64(a3);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    float64x2_t acc = vld1q_f64(o + i);
    acc = vaddq_f64(acc, vmulq_f64(a0v, vld1q_f64(b0 + i)));
    acc = vaddq_f64(acc, vmulq_f64(a1v, vld1q_f64(b1 + i)));
    acc = vaddq_f64(acc, vmulq_f64(a2v, vld1q_f64(b2 + i)));
    acc = vaddq_f64(acc, vmulq_f64(a3v, vld1q_f64(b3 + i)));
    vst1q_f64(o + i, acc);
  }
  for (; i < n; ++i)
    o[i] = o[i] + a0 * b0[i] + a1 * b1[i] + a2 * b2[i] + a3 * b3[i];
}

void AddRowNeon(Scalar* dst, const Scalar* x, int n) {
  int i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), vld1q_f64(x + i)));
  for (; i < n; ++i) dst[i] += x[i];
}

void ScaleRowNeon(Scalar* x, Scalar s, int n) {
  const float64x2_t sv = vdupq_n_f64(s);
  int i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), sv));
  for (; i < n; ++i) x[i] *= s;
}

void MulRowNeon(Scalar* dst, const Scalar* x, int n) {
  int i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(dst + i, vmulq_f64(vld1q_f64(dst + i), vld1q_f64(x + i)));
  for (; i < n; ++i) dst[i] *= x[i];
}

void MulAddRowNeon(Scalar* dst, const Scalar* a, const Scalar* b, int n) {
  int i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(dst + i,
              vaddq_f64(vld1q_f64(dst + i),
                        vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i))));
  for (; i < n; ++i) dst[i] = dst[i] + a[i] * b[i];
}

void ScaleAddRowNeon(Scalar* dst, Scalar s, const Scalar* x, Scalar a,
                     int n) {
  const float64x2_t sv = vdupq_n_f64(s);
  const float64x2_t av = vdupq_n_f64(a);
  int i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(dst + i, vaddq_f64(vmulq_f64(sv, vld1q_f64(dst + i)),
                                 vmulq_f64(av, vld1q_f64(x + i))));
  for (; i < n; ++i) dst[i] = s * dst[i] + a * x[i];
}

void ShiftRowNeon(const Scalar* x, Scalar s, Scalar* dst, int n) {
  const float64x2_t sv = vdupq_n_f64(s);
  int i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(dst + i, vsubq_f64(vld1q_f64(x + i), sv));
  for (; i < n; ++i) dst[i] = x[i] - s;
}

void SigmoidRowNeon(const Scalar* x, Scalar* dst, int n) {
  const float64x2_t one = vdupq_n_f64(1.0);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const float64x2_t e = ExpV(vnegq_f64(vld1q_f64(x + i)));
    vst1q_f64(dst + i, vdivq_f64(one, vaddq_f64(one, e)));
  }
  for (; i < n; ++i) dst[i] = 1.0 / (1.0 + detail::ExpD(-x[i]));
}

void SigmoidBwdRowNeon(const Scalar* go, const Scalar* y, Scalar* gi,
                       int n) {
  const float64x2_t one = vdupq_n_f64(1.0);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const float64x2_t yv = vld1q_f64(y + i);
    const float64x2_t dydx = vmulq_f64(yv, vsubq_f64(one, yv));
    vst1q_f64(gi + i, vaddq_f64(vld1q_f64(gi + i),
                                vmulq_f64(vld1q_f64(go + i), dydx)));
  }
  for (; i < n; ++i) gi[i] += go[i] * (y[i] * (1.0 - y[i]));
}

void ReluRowNeon(const Scalar* x, Scalar* dst, int n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const float64x2_t xv = vld1q_f64(x + i);
    const uint64x2_t mask = vcgtq_f64(xv, zero);
    vst1q_f64(dst + i, vbslq_f64(mask, xv, zero));
  }
  for (; i < n; ++i) dst[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void ReluBwdRowNeon(const Scalar* go, const Scalar* x, Scalar* gi, int n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const uint64x2_t mask = vcgtq_f64(vld1q_f64(x + i), zero);
    const float64x2_t d = vbslq_f64(mask, one, zero);
    vst1q_f64(gi + i, vaddq_f64(vld1q_f64(gi + i),
                                vmulq_f64(vld1q_f64(go + i), d)));
  }
  for (; i < n; ++i) gi[i] += go[i] * (x[i] > 0.0 ? 1.0 : 0.0);
}

void LeakyReluRowNeon(const Scalar* x, Scalar slope, Scalar* dst, int n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t sv = vdupq_n_f64(slope);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const float64x2_t xv = vld1q_f64(x + i);
    const uint64x2_t mask = vcgtq_f64(xv, zero);
    vst1q_f64(dst + i, vbslq_f64(mask, xv, vmulq_f64(sv, xv)));
  }
  for (; i < n; ++i) dst[i] = x[i] > 0.0 ? x[i] : slope * x[i];
}

void LeakyReluBwdRowNeon(const Scalar* go, const Scalar* x, Scalar slope,
                         Scalar* gi, int n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t sv = vdupq_n_f64(slope);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const uint64x2_t mask = vcgtq_f64(vld1q_f64(x + i), zero);
    const float64x2_t d = vbslq_f64(mask, one, sv);
    vst1q_f64(gi + i, vaddq_f64(vld1q_f64(gi + i),
                                vmulq_f64(vld1q_f64(go + i), d)));
  }
  for (; i < n; ++i) gi[i] += go[i] * (x[i] > 0.0 ? 1.0 : slope);
}

void SoftmaxBwdRowNeon(const Scalar* go, const Scalar* y, Scalar dot,
                       Scalar* gi, int n) {
  const float64x2_t dv = vdupq_n_f64(dot);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const float64x2_t t = vmulq_f64(vld1q_f64(y + i),
                                    vsubq_f64(vld1q_f64(go + i), dv));
    vst1q_f64(gi + i, vaddq_f64(vld1q_f64(gi + i), t));
  }
  for (; i < n; ++i) gi[i] += y[i] * (go[i] - dot);
}

void LogSoftmaxBwdRowNeon(const Scalar* go, const Scalar* p, Scalar gsum,
                          Scalar* gi, int n) {
  const float64x2_t gv = vdupq_n_f64(gsum);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const float64x2_t t = vsubq_f64(vld1q_f64(go + i),
                                    vmulq_f64(vld1q_f64(p + i), gv));
    vst1q_f64(gi + i, vaddq_f64(vld1q_f64(gi + i), t));
  }
  for (; i < n; ++i) gi[i] += go[i] - p[i] * gsum;
}

void AxpyDivRowNeon(Scalar a, const Scalar* e, Scalar z, Scalar* gi, int n) {
  const float64x2_t av = vdupq_n_f64(a);
  const float64x2_t zv = vdupq_n_f64(z);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const float64x2_t t =
        vdivq_f64(vmulq_f64(av, vld1q_f64(e + i)), zv);
    vst1q_f64(gi + i, vaddq_f64(vld1q_f64(gi + i), t));
  }
  for (; i < n; ++i) gi[i] += (a * e[i]) / z;
}

void AdamRowNeon(Scalar* x, Scalar* m, Scalar* v, const Scalar* g,
                 Scalar beta1, Scalar one_minus_beta1, Scalar beta2,
                 Scalar one_minus_beta2, Scalar bias1, Scalar bias2,
                 Scalar lr, Scalar eps, int n) {
  const float64x2_t b1v = vdupq_n_f64(beta1);
  const float64x2_t ob1v = vdupq_n_f64(one_minus_beta1);
  const float64x2_t b2v = vdupq_n_f64(beta2);
  const float64x2_t ob2v = vdupq_n_f64(one_minus_beta2);
  const float64x2_t bias1v = vdupq_n_f64(bias1);
  const float64x2_t bias2v = vdupq_n_f64(bias2);
  const float64x2_t lrv = vdupq_n_f64(lr);
  const float64x2_t epsv = vdupq_n_f64(eps);
  int i = 0;
  for (; i + 1 < n; i += 2) {
    const float64x2_t gv = vld1q_f64(g + i);
    const float64x2_t mv = vaddq_f64(vmulq_f64(b1v, vld1q_f64(m + i)),
                                     vmulq_f64(ob1v, gv));
    const float64x2_t vv =
        vaddq_f64(vmulq_f64(b2v, vld1q_f64(v + i)),
                  vmulq_f64(vmulq_f64(ob2v, gv), gv));
    vst1q_f64(m + i, mv);
    vst1q_f64(v + i, vv);
    const float64x2_t m_hat = vdivq_f64(mv, bias1v);
    const float64x2_t v_hat = vdivq_f64(vv, bias2v);
    const float64x2_t step = vdivq_f64(
        vmulq_f64(lrv, m_hat), vaddq_f64(vsqrtq_f64(v_hat), epsv));
    vst1q_f64(x + i, vsubq_f64(vld1q_f64(x + i), step));
  }
  for (; i < n; ++i) {
    const Scalar gj = g[i];
    m[i] = beta1 * m[i] + one_minus_beta1 * gj;
    v[i] = beta2 * v[i] + (one_minus_beta2 * gj) * gj;
    const Scalar m_hat = m[i] / bias1;
    const Scalar v_hat = v[i] / bias2;
    x[i] -= (lr * m_hat) / (std::sqrt(v_hat) + eps);
  }
}

const KernelOps kNeonOps = {
    RowMaxNeon,
    ExpRowSumNeon,
    ExpRowNeon,
    DivRowNeon,
    scalar::Dot,       // serial chain in every backend (see kernels.h)
    scalar::DotSum2,   // serial chain in every backend
    DotPanel4Neon,
    AxpyRowNeon,
    Axpy4RowNeon,
    AddRowNeon,
    ScaleRowNeon,
    MulRowNeon,
    MulAddRowNeon,
    ScaleAddRowNeon,
    ShiftRowNeon,
    SigmoidRowNeon,
    SigmoidBwdRowNeon,
    ReluRowNeon,
    ReluBwdRowNeon,
    LeakyReluRowNeon,
    LeakyReluBwdRowNeon,
    SoftmaxBwdRowNeon,
    LogSoftmaxBwdRowNeon,
    AxpyDivRowNeon,
    AdamRowNeon,
};

}  // namespace

const KernelOps* GetNeonOps() { return &kNeonOps; }

}  // namespace tgsim::nn::kernels

#endif  // TGSIM_HAVE_NEON_KERNELS
