#ifndef TGSIM_NN_OPTIM_H_
#define TGSIM_NN_OPTIM_H_

#include <vector>

#include "nn/autograd.h"

namespace tgsim::nn {

/// Base class for first-order optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;

  /// Clears all parameter gradients (call before each Backward).
  void ZeroGrad();

  /// Clips the global gradient norm to `max_norm` (no-op if under it).
  void ClipGradNorm(Scalar max_norm);

 protected:
  std::vector<Var> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, Scalar lr, Scalar momentum = 0.0);
  void Step() override;

 private:
  Scalar lr_;
  Scalar momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) — the optimizer used for TGAE and all learned
/// baselines in this reproduction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, Scalar lr = 1e-3, Scalar beta1 = 0.9,
       Scalar beta2 = 0.999, Scalar eps = 1e-8);
  void Step() override;

 private:
  Scalar lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace tgsim::nn

#endif  // TGSIM_NN_OPTIM_H_
