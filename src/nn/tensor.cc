#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/memory_tracker.h"
#include "nn/kernels.h"
#include "parallel/parallel_for.h"

namespace tgsim::nn {

namespace {

using parallel::kElementwiseGrain;
using parallel::RowGrain;

/// Rows per MatMul task, sized so one task stays around L2 while leaving
/// enough tasks to fill the pool on paper-sized (512-1024) operands.
constexpr int kMatMulRowPanel = 32;

/// Cache block over the shared dimension of MatMul.
constexpr int kMatMulKBlock = 64;

}  // namespace

void Tensor::Allocate(int rows, int cols) {
  TGSIM_CHECK_GE(rows, 0);
  TGSIM_CHECK_GE(cols, 0);
  rows_ = rows;
  cols_ = cols;
  size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (n > 0) {
    data_ = new Scalar[n];
    MemoryTracker::Global().Allocate(n * sizeof(Scalar));
  } else {
    data_ = nullptr;
  }
}

void Tensor::Deallocate() {
  if (data_ != nullptr) {
    MemoryTracker::Global().Release(static_cast<size_t>(size()) *
                                    sizeof(Scalar));
    delete[] data_;
    data_ = nullptr;
  }
  rows_ = 0;
  cols_ = 0;
}

Tensor::Tensor(int rows, int cols) {
  Allocate(rows, cols);
  if (data_ != nullptr) std::memset(data_, 0, size() * sizeof(Scalar));
}

Tensor::Tensor(int rows, int cols, Scalar fill) {
  Allocate(rows, cols);
  std::fill(data_, data_ + size(), fill);
}

Tensor::Tensor(int rows, int cols, std::vector<Scalar> data) {
  TGSIM_CHECK_EQ(static_cast<int64_t>(data.size()),
                 static_cast<int64_t>(rows) * cols);
  Allocate(rows, cols);
  std::copy(data.begin(), data.end(), data_);
}

Tensor::Tensor(const Tensor& other) {
  Allocate(other.rows_, other.cols_);
  if (data_ != nullptr)
    std::memcpy(data_, other.data_, size() * sizeof(Scalar));
}

Tensor::Tensor(Tensor&& other) noexcept
    : data_(other.data_), rows_(other.rows_), cols_(other.cols_) {
  other.data_ = nullptr;
  other.rows_ = 0;
  other.cols_ = 0;
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (!SameShape(other)) {
    Deallocate();
    Allocate(other.rows_, other.cols_);
  }
  if (data_ != nullptr)
    std::memcpy(data_, other.data_, size() * sizeof(Scalar));
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  Deallocate();
  data_ = other.data_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  other.data_ = nullptr;
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Tensor::~Tensor() { Deallocate(); }

Tensor Tensor::Identity(int n) {
  Tensor t(n, n);
  for (int i = 0; i < n; ++i) t.at(i, i) = 1.0;
  return t;
}

Tensor Tensor::Randn(Rng& rng, int rows, int cols, Scalar stddev) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) t.data_[i] = rng.Normal() * stddev;
  return t;
}

Tensor Tensor::RandUniform(Rng& rng, int rows, int cols, Scalar lo,
                           Scalar hi) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) t.data_[i] = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::GlorotUniform(Rng& rng, int fan_in, int fan_out) {
  Scalar limit = std::sqrt(6.0 / (fan_in + fan_out));
  return RandUniform(rng, fan_in, fan_out, -limit, limit);
}

void Tensor::Fill(Scalar v) { std::fill(data_, data_ + size(), v); }

void Tensor::AddInPlace(const Tensor& other) {
  TGSIM_CHECK(SameShape(other));
  parallel::ParallelFor(0, size(), kElementwiseGrain,
                        [&](int64_t b, int64_t e) {
                          kernels::AddRow(data_ + b, other.data_ + b,
                                          static_cast<int>(e - b));
                        });
}

void Tensor::Axpy(Scalar alpha, const Tensor& other) {
  TGSIM_CHECK(SameShape(other));
  parallel::ParallelFor(0, size(), kElementwiseGrain,
                        [&](int64_t b, int64_t e) {
                          kernels::AxpyRow(alpha, other.data_ + b, data_ + b,
                                           static_cast<int>(e - b));
                        });
}

void Tensor::ScaleInPlace(Scalar alpha) {
  parallel::ParallelFor(0, size(), kElementwiseGrain,
                        [&](int64_t b, int64_t e) {
                          kernels::ScaleRow(data_ + b, alpha,
                                            static_cast<int>(e - b));
                        });
}

void Tensor::AddRowVectorInPlace(const Tensor& vec) {
  TGSIM_CHECK_EQ(vec.rows(), 1);
  TGSIM_CHECK_EQ(vec.cols(), cols_);
  const int64_t row_grain = RowGrain(cols_);
  parallel::ParallelFor(0, rows_, row_grain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r)
      kernels::AddRow(row(static_cast<int>(r)), vec.data_, cols_);
  });
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out(*this);
  out.AddInPlace(other);
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  TGSIM_CHECK(SameShape(other));
  Tensor out(*this);
  parallel::ParallelFor(0, size(), kElementwiseGrain,
                        [&](int64_t b, int64_t e) {
                          for (int64_t i = b; i < e; ++i)
                            out.data_[i] -= other.data_[i];
                        });
  return out;
}

Tensor Tensor::CwiseMul(const Tensor& other) const {
  TGSIM_CHECK(SameShape(other));
  Tensor out(*this);
  parallel::ParallelFor(0, size(), kElementwiseGrain,
                        [&](int64_t b, int64_t e) {
                          kernels::MulRow(out.data_ + b, other.data_ + b,
                                          static_cast<int>(e - b));
                        });
  return out;
}

Tensor Tensor::operator*(Scalar s) const {
  Tensor out(*this);
  out.ScaleInPlace(s);
  return out;
}

Tensor Tensor::MatMul(const Tensor& other) const {
  TGSIM_CHECK_EQ(cols_, other.rows_);
  Tensor out(rows_, other.cols_);
  const int n = other.cols_;
  // Cache-blocked ikj kernel parallelized over row panels. Each output row
  // is owned by exactly one panel, and within a row the k accumulation
  // order is ascending regardless of blocking — so the result is
  // bit-identical for any thread count (and to the unblocked serial loop).
  // The inner k loop is unrolled by 4 through kernels::Axpy4Row, which
  // fuses four rank-1 row updates into one pass over the output row; its
  // per-element chain is left-associated in ascending k, so the unroll
  // changes memory traffic, not results.
  parallel::ParallelFor(
      0, rows_, kMatMulRowPanel, [&](int64_t i0, int64_t i1) {
        for (int k0 = 0; k0 < cols_; k0 += kMatMulKBlock) {
          const int k1 = std::min(cols_, k0 + kMatMulKBlock);
          for (int64_t i = i0; i < i1; ++i) {
            const Scalar* a_row = row(static_cast<int>(i));
            Scalar* o_row = out.row(static_cast<int>(i));
            int k = k0;
            for (; k + 3 < k1; k += 4) {
              kernels::Axpy4Row(a_row[k], other.row(k), a_row[k + 1],
                                other.row(k + 1), a_row[k + 2],
                                other.row(k + 2), a_row[k + 3],
                                other.row(k + 3), o_row, n);
            }
            for (; k < k1; ++k)
              kernels::AxpyRow(a_row[k], other.row(k), o_row, n);
          }
        }
      });
  return out;
}

Tensor Tensor::Transpose() const {
  Tensor out(cols_, rows_);
  // Chunk over output rows (= input columns): each chunk owns a disjoint
  // band of the output.
  const int64_t row_grain = RowGrain(rows_);
  parallel::ParallelFor(0, cols_, row_grain, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c)
      for (int r = 0; r < rows_; ++r)
        out.at(static_cast<int>(c), r) = at(r, static_cast<int>(c));
  });
  return out;
}

Tensor Tensor::GatherRows(const std::vector<int>& map) const {
  Tensor out(static_cast<int>(map.size()), cols_);
  const int64_t row_grain = RowGrain(cols_);
  parallel::ParallelFor(
      0, static_cast<int64_t>(map.size()), row_grain,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          TGSIM_DCHECK(map[static_cast<size_t>(i)] >= 0 &&
                       map[static_cast<size_t>(i)] < rows_);
          std::memcpy(out.row(static_cast<int>(i)),
                      row(map[static_cast<size_t>(i)]),
                      static_cast<size_t>(cols_) * sizeof(Scalar));
        }
      });
  return out;
}

// Scalar reductions (Sum/Dot/MaxAbs) stay serial: chunked accumulation
// would change the floating-point association relative to the established
// serial semantics, and at O(n) memory-bound cost there is little to win.
Scalar Tensor::Sum() const {
  Scalar s = 0.0;
  for (int64_t i = 0; i < size(); ++i) s += data_[i];
  return s;
}

Scalar Tensor::Mean() const {
  TGSIM_CHECK_GT(size(), 0);
  return Sum() / static_cast<Scalar>(size());
}

Scalar Tensor::MaxAbs() const {
  Scalar m = 0.0;
  for (int64_t i = 0; i < size(); ++i)
    m = std::max(m, std::fabs(data_[i]));
  return m;
}

Scalar Tensor::Norm() const { return std::sqrt(Dot(*this)); }

Scalar Tensor::Dot(const Tensor& other) const {
  TGSIM_CHECK(SameShape(other));
  Scalar s = 0.0;
  for (int64_t i = 0; i < size(); ++i) s += data_[i] * other.data_[i];
  return s;
}

Tensor Tensor::SoftmaxRows() const {
  Tensor out(rows_, cols_);
  const int64_t row_grain = RowGrain(cols_);
  parallel::ParallelFor(0, rows_, row_grain, [&](int64_t r0, int64_t r1) {
    for (int64_t ri = r0; ri < r1; ++ri) {
      const int r = static_cast<int>(ri);
      kernels::SoftmaxRow(row(r), out.row(r), cols_);
    }
  });
  return out;
}

std::string Tensor::ToString(int max_rows) const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ")";
  int shown = std::min(rows_, max_rows);
  for (int r = 0; r < shown; ++r) {
    os << "\n  [";
    for (int c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << at(r, c);
    }
    os << "]";
  }
  if (shown < rows_) os << "\n  ... (" << rows_ - shown << " more rows)";
  return os.str();
}

}  // namespace tgsim::nn
