#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/memory_tracker.h"

namespace tgsim::nn {

void Tensor::Allocate(int rows, int cols) {
  TGSIM_CHECK_GE(rows, 0);
  TGSIM_CHECK_GE(cols, 0);
  rows_ = rows;
  cols_ = cols;
  size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (n > 0) {
    data_ = new Scalar[n];
    MemoryTracker::Global().Allocate(n * sizeof(Scalar));
  } else {
    data_ = nullptr;
  }
}

void Tensor::Deallocate() {
  if (data_ != nullptr) {
    MemoryTracker::Global().Release(static_cast<size_t>(size()) *
                                    sizeof(Scalar));
    delete[] data_;
    data_ = nullptr;
  }
  rows_ = 0;
  cols_ = 0;
}

Tensor::Tensor(int rows, int cols) {
  Allocate(rows, cols);
  if (data_ != nullptr) std::memset(data_, 0, size() * sizeof(Scalar));
}

Tensor::Tensor(int rows, int cols, Scalar fill) {
  Allocate(rows, cols);
  std::fill(data_, data_ + size(), fill);
}

Tensor::Tensor(int rows, int cols, std::vector<Scalar> data) {
  TGSIM_CHECK_EQ(static_cast<int64_t>(data.size()),
                 static_cast<int64_t>(rows) * cols);
  Allocate(rows, cols);
  std::copy(data.begin(), data.end(), data_);
}

Tensor::Tensor(const Tensor& other) {
  Allocate(other.rows_, other.cols_);
  if (data_ != nullptr)
    std::memcpy(data_, other.data_, size() * sizeof(Scalar));
}

Tensor::Tensor(Tensor&& other) noexcept
    : data_(other.data_), rows_(other.rows_), cols_(other.cols_) {
  other.data_ = nullptr;
  other.rows_ = 0;
  other.cols_ = 0;
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (!SameShape(other)) {
    Deallocate();
    Allocate(other.rows_, other.cols_);
  }
  if (data_ != nullptr)
    std::memcpy(data_, other.data_, size() * sizeof(Scalar));
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  Deallocate();
  data_ = other.data_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  other.data_ = nullptr;
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Tensor::~Tensor() { Deallocate(); }

Tensor Tensor::Identity(int n) {
  Tensor t(n, n);
  for (int i = 0; i < n; ++i) t.at(i, i) = 1.0;
  return t;
}

Tensor Tensor::Randn(Rng& rng, int rows, int cols, Scalar stddev) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) t.data_[i] = rng.Normal() * stddev;
  return t;
}

Tensor Tensor::RandUniform(Rng& rng, int rows, int cols, Scalar lo,
                           Scalar hi) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) t.data_[i] = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::GlorotUniform(Rng& rng, int fan_in, int fan_out) {
  Scalar limit = std::sqrt(6.0 / (fan_in + fan_out));
  return RandUniform(rng, fan_in, fan_out, -limit, limit);
}

void Tensor::Fill(Scalar v) { std::fill(data_, data_ + size(), v); }

void Tensor::AddInPlace(const Tensor& other) {
  TGSIM_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(Scalar alpha, const Tensor& other) {
  TGSIM_CHECK(SameShape(other));
  for (int64_t i = 0; i < size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::ScaleInPlace(Scalar alpha) {
  for (int64_t i = 0; i < size(); ++i) data_[i] *= alpha;
}

void Tensor::AddRowVectorInPlace(const Tensor& vec) {
  TGSIM_CHECK_EQ(vec.rows(), 1);
  TGSIM_CHECK_EQ(vec.cols(), cols_);
  for (int r = 0; r < rows_; ++r) {
    Scalar* dst = row(r);
    for (int c = 0; c < cols_; ++c) dst[c] += vec.data_[c];
  }
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out(*this);
  out.AddInPlace(other);
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  TGSIM_CHECK(SameShape(other));
  Tensor out(*this);
  for (int64_t i = 0; i < size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Tensor Tensor::CwiseMul(const Tensor& other) const {
  TGSIM_CHECK(SameShape(other));
  Tensor out(*this);
  for (int64_t i = 0; i < size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Tensor Tensor::operator*(Scalar s) const {
  Tensor out(*this);
  out.ScaleInPlace(s);
  return out;
}

Tensor Tensor::MatMul(const Tensor& other) const {
  TGSIM_CHECK_EQ(cols_, other.rows_);
  Tensor out(rows_, other.cols_);
  // ikj loop order: streams through `other` row-wise for cache locality.
  for (int i = 0; i < rows_; ++i) {
    const Scalar* a_row = row(i);
    Scalar* o_row = out.row(i);
    for (int k = 0; k < cols_; ++k) {
      Scalar a = a_row[k];
      if (a == 0.0) continue;
      const Scalar* b_row = other.row(k);
      for (int j = 0; j < other.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Tensor Tensor::Transpose() const {
  Tensor out(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  return out;
}

Tensor Tensor::GatherRows(const std::vector<int>& map) const {
  Tensor out(static_cast<int>(map.size()), cols_);
  for (size_t i = 0; i < map.size(); ++i) {
    TGSIM_DCHECK(map[i] >= 0 && map[i] < rows_);
    std::memcpy(out.row(static_cast<int>(i)), row(map[i]),
                static_cast<size_t>(cols_) * sizeof(Scalar));
  }
  return out;
}

Scalar Tensor::Sum() const {
  Scalar s = 0.0;
  for (int64_t i = 0; i < size(); ++i) s += data_[i];
  return s;
}

Scalar Tensor::Mean() const {
  TGSIM_CHECK_GT(size(), 0);
  return Sum() / static_cast<Scalar>(size());
}

Scalar Tensor::MaxAbs() const {
  Scalar m = 0.0;
  for (int64_t i = 0; i < size(); ++i)
    m = std::max(m, std::fabs(data_[i]));
  return m;
}

Scalar Tensor::Norm() const { return std::sqrt(Dot(*this)); }

Scalar Tensor::Dot(const Tensor& other) const {
  TGSIM_CHECK(SameShape(other));
  Scalar s = 0.0;
  for (int64_t i = 0; i < size(); ++i) s += data_[i] * other.data_[i];
  return s;
}

Tensor Tensor::SoftmaxRows() const {
  Tensor out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    const Scalar* src = row(r);
    Scalar* dst = out.row(r);
    Scalar m = src[0];
    for (int c = 1; c < cols_; ++c) m = std::max(m, src[c]);
    Scalar z = 0.0;
    for (int c = 0; c < cols_; ++c) {
      dst[c] = std::exp(src[c] - m);
      z += dst[c];
    }
    for (int c = 0; c < cols_; ++c) dst[c] /= z;
  }
  return out;
}

std::string Tensor::ToString(int max_rows) const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ")";
  int shown = std::min(rows_, max_rows);
  for (int r = 0; r < shown; ++r) {
    os << "\n  [";
    for (int c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << at(r, c);
    }
    os << "]";
  }
  if (shown < rows_) os << "\n  ... (" << rows_ - shown << " more rows)";
  return os.str();
}

}  // namespace tgsim::nn
