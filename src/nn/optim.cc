#include "nn/optim.h"

#include <cmath>

namespace tgsim::nn {

void Optimizer::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

void Optimizer::ClipGradNorm(Scalar max_norm) {
  Scalar total_sq = 0.0;
  for (Var& p : params_) {
    if (p.grad().SameShape(p.value())) {
      Scalar n = p.grad().Norm();
      total_sq += n * n;
    }
  }
  Scalar total = std::sqrt(total_sq);
  if (total > max_norm && total > 0.0) {
    Scalar scale = max_norm / total;
    for (Var& p : params_) {
      if (p.grad().SameShape(p.value())) p.mutable_grad().ScaleInPlace(scale);
    }
  }
}

Sgd::Sgd(std::vector<Var> params, Scalar lr, Scalar momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0) {
    velocity_.reserve(params_.size());
    for (const Var& p : params_)
      velocity_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.grad().SameShape(p.value())) continue;  // Never touched.
    if (momentum_ != 0.0) {
      velocity_[i].ScaleInPlace(momentum_);
      velocity_[i].Axpy(1.0, p.grad());
      p.mutable_value().Axpy(-lr_, velocity_[i]);
    } else {
      p.mutable_value().Axpy(-lr_, p.grad());
    }
  }
}

Adam::Adam(std::vector<Var> params, Scalar lr, Scalar beta1, Scalar beta2,
           Scalar eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++t_;
  Scalar bias1 = 1.0 - std::pow(beta1_, static_cast<Scalar>(t_));
  Scalar bias2 = 1.0 - std::pow(beta2_, static_cast<Scalar>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.grad().SameShape(p.value())) continue;
    const Tensor& g = p.grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& x = p.mutable_value();
    for (int64_t j = 0; j < g.size(); ++j) {
      Scalar gj = g.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0 - beta1_) * gj;
      v.data()[j] = beta2_ * v.data()[j] + (1.0 - beta2_) * gj * gj;
      Scalar m_hat = m.data()[j] / bias1;
      Scalar v_hat = v.data()[j] / bias2;
      x.data()[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace tgsim::nn
