#include "nn/optim.h"

#include <cmath>

#include "nn/kernels.h"
#include "parallel/parallel_for.h"

namespace tgsim::nn {

void Optimizer::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

void Optimizer::ClipGradNorm(Scalar max_norm) {
  Scalar total_sq = 0.0;
  for (Var& p : params_) {
    if (p.grad().SameShape(p.value())) {
      Scalar n = p.grad().Norm();
      total_sq += n * n;
    }
  }
  Scalar total = std::sqrt(total_sq);
  if (total > max_norm && total > 0.0) {
    Scalar scale = max_norm / total;
    for (Var& p : params_) {
      if (p.grad().SameShape(p.value())) p.mutable_grad().ScaleInPlace(scale);
    }
  }
}

Sgd::Sgd(std::vector<Var> params, Scalar lr, Scalar momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0) {
    velocity_.reserve(params_.size());
    for (const Var& p : params_)
      velocity_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.grad().SameShape(p.value())) continue;  // Never touched.
    if (momentum_ != 0.0) {
      // v = momentum*v + 1.0*g in one pass: 1.0*g is exact and
      // momentum*v rounds identically whether or not the intermediate is
      // stored, so this matches the old ScaleInPlace-then-Axpy sequence
      // bit for bit while halving the velocity traffic.
      Tensor& vel = velocity_[i];
      const Tensor& g = p.grad();
      parallel::ParallelFor(
          0, vel.size(), parallel::kElementwiseGrain,
          [&](int64_t b, int64_t e) {
            kernels::ScaleAddRow(vel.data() + b, momentum_, g.data() + b,
                                 1.0, static_cast<int>(e - b));
          });
      p.mutable_value().Axpy(-lr_, vel);
    } else {
      p.mutable_value().Axpy(-lr_, p.grad());
    }
  }
}

Adam::Adam(std::vector<Var> params, Scalar lr, Scalar beta1, Scalar beta2,
           Scalar eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++t_;
  Scalar bias1 = 1.0 - std::pow(beta1_, static_cast<Scalar>(t_));
  Scalar bias2 = 1.0 - std::pow(beta2_, static_cast<Scalar>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.grad().SameShape(p.value())) continue;
    const Tensor& g = p.grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& x = p.mutable_value();
    parallel::ParallelFor(
        0, g.size(), parallel::kElementwiseGrain,
        [&](int64_t b, int64_t e) {
          kernels::AdamRow(x.data() + b, m.data() + b, v.data() + b,
                           g.data() + b, beta1_, 1.0 - beta1_, beta2_,
                           1.0 - beta2_, bias1, bias2, lr_, eps_,
                           static_cast<int>(e - b));
        });
  }
}

}  // namespace tgsim::nn
