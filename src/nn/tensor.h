#ifndef TGSIM_NN_TENSOR_H_
#define TGSIM_NN_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tgsim::nn {

/// Scalar type used by the learning substrate. Double keeps the numerical
/// gradient checks tight; every tensor in this reproduction is small enough
/// that the 2x memory cost over float is irrelevant.
using Scalar = double;

/// Dense row-major 2-D tensor (vectors are 1 x n or n x 1).
///
/// This is the storage + math kernel layer beneath the autograd engine
/// (autograd.h). All allocations are registered with MemoryTracker so the
/// efficiency experiments (paper Fig. 6) can report peak memory per
/// generator, mirroring the paper's GPU-memory measurements.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(int rows, int cols);
  Tensor(int rows, int cols, Scalar fill);
  /// Builds a tensor from row-major data; `data.size()` must be rows*cols.
  Tensor(int rows, int cols, std::vector<Scalar> data);

  Tensor(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(const Tensor& other);
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  // -- Factories --------------------------------------------------------

  static Tensor Zeros(int rows, int cols) { return Tensor(rows, cols); }
  static Tensor Ones(int rows, int cols) { return Tensor(rows, cols, 1.0); }
  static Tensor Full(int rows, int cols, Scalar v) {
    return Tensor(rows, cols, v);
  }
  static Tensor Identity(int n);
  /// Entries ~ N(0, stddev^2).
  static Tensor Randn(Rng& rng, int rows, int cols, Scalar stddev = 1.0);
  /// Entries ~ U(lo, hi).
  static Tensor RandUniform(Rng& rng, int rows, int cols, Scalar lo,
                            Scalar hi);
  /// Glorot/Xavier uniform initialization for a (fan_in x fan_out) weight.
  static Tensor GlorotUniform(Rng& rng, int fan_in, int fan_out);

  // -- Shape ------------------------------------------------------------

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // -- Element access ---------------------------------------------------

  Scalar& at(int r, int c) {
    TGSIM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  Scalar at(int r, int c) const {
    TGSIM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  Scalar* data() { return data_; }
  const Scalar* data() const { return data_; }
  Scalar* row(int r) { return data_ + static_cast<size_t>(r) * cols_; }
  const Scalar* row(int r) const {
    return data_ + static_cast<size_t>(r) * cols_;
  }
  /// Contiguous view of row r — hands a whole softmax/logit row to the
  /// sampling layer without the element-by-element at(0, c) copies the
  /// generators used to make.
  std::span<Scalar> RowSpan(int r) {
    TGSIM_DCHECK(r >= 0 && r < rows_);
    return {row(r), static_cast<size_t>(cols_)};
  }
  std::span<const Scalar> RowSpan(int r) const {
    TGSIM_DCHECK(r >= 0 && r < rows_);
    return {row(r), static_cast<size_t>(cols_)};
  }

  // -- In-place updates -------------------------------------------------

  void Fill(Scalar v);
  void SetZero() { Fill(0.0); }
  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this += alpha * other (same shape) — the optimizer kernel.
  void Axpy(Scalar alpha, const Tensor& other);
  /// this *= alpha.
  void ScaleInPlace(Scalar alpha);
  /// Adds `vec` (1 x cols) to every row.
  void AddRowVectorInPlace(const Tensor& vec);

  // -- Value-level math (used directly by non-learned components) -------

  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  /// Elementwise product.
  Tensor CwiseMul(const Tensor& other) const;
  Tensor operator*(Scalar s) const;
  Tensor MatMul(const Tensor& other) const;
  Tensor Transpose() const;
  /// Row r of the result is row map[r] of this tensor.
  Tensor GatherRows(const std::vector<int>& map) const;

  Scalar Sum() const;
  Scalar Mean() const;
  Scalar MaxAbs() const;
  /// Frobenius norm.
  Scalar Norm() const;
  /// Flat dot product (same shape).
  Scalar Dot(const Tensor& other) const;

  /// Per-row softmax, numerically stabilized.
  Tensor SoftmaxRows() const;

  /// Human-readable dump for debugging (rows capped).
  std::string ToString(int max_rows = 8) const;

 private:
  void Allocate(int rows, int cols);
  void Deallocate();

  Scalar* data_ = nullptr;
  int rows_;
  int cols_;
};

inline Tensor operator*(Scalar s, const Tensor& t) { return t * s; }

}  // namespace tgsim::nn

#endif  // TGSIM_NN_TENSOR_H_
