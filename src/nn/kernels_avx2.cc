// AVX2 kernel table. Compiled only on x86-64 with
// TGSIM_HAVE_AVX2_KERNELS, with -mavx2 -ffp-contract=off and WITHOUT
// -mfma: no FMA intrinsics appear here, so every multiply and add is a
// separately rounded IEEE op — the same two-rounding sequence the scalar
// reference performs. Each kernel mirrors its scalar counterpart lane for
// lane (see kernels.h for the shape contract); the scalar tails reuse the
// exact reference expressions.
#if defined(TGSIM_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include "nn/kernels.h"
#include "nn/simd.h"

namespace tgsim::nn::kernels {
namespace {

/// Vector ExpD: identical operation sequence to detail::ExpD, four lanes
/// at a time. The clamp order (max_pd(lo, x), min_pd(hi, xs)) is what the
/// scalar ternaries mirror, so +/-inf and out-of-range inputs land on the
/// same bits. k is integral after the magic-shift round, so the epi32
/// conversion is exact; the exponent split k1 = k >> 1, k2 = k - k1 is
/// done in 32-bit (AVX2 has no 64-bit arithmetic shift) and matches the
/// scalar int64 arithmetic on this bounded range.
inline __m256d ExpV(__m256d x) {
  const __m256d lo = _mm256_set1_pd(detail::kExpLo);
  const __m256d hi = _mm256_set1_pd(detail::kExpHi);
  __m256d xs = _mm256_max_pd(lo, x);
  xs = _mm256_min_pd(hi, xs);
  const __m256d shift = _mm256_set1_pd(detail::kExpShift);
  const __m256d t = _mm256_add_pd(
      _mm256_mul_pd(xs, _mm256_set1_pd(detail::kExpLog2e)), shift);
  const __m256d k = _mm256_sub_pd(t, shift);
  __m256d r =
      _mm256_sub_pd(xs, _mm256_mul_pd(k, _mm256_set1_pd(detail::kExpLn2Hi)));
  r = _mm256_sub_pd(r, _mm256_mul_pd(k, _mm256_set1_pd(detail::kExpLn2Lo)));
  __m256d p = _mm256_set1_pd(detail::kExpCoeff[13]);
  for (int j = 12; j >= 0; --j)
    p = _mm256_add_pd(_mm256_mul_pd(p, r),
                      _mm256_set1_pd(detail::kExpCoeff[j]));
  const __m128i ki = _mm256_cvtpd_epi32(k);
  const __m128i k1 = _mm_srai_epi32(ki, 1);
  const __m128i k2 = _mm_sub_epi32(ki, k1);
  const __m128i bias = _mm_set1_epi32(1023);
  const __m256i e1 = _mm256_slli_epi64(
      _mm256_cvtepi32_epi64(_mm_add_epi32(k1, bias)), 52);
  const __m256i e2 = _mm256_slli_epi64(
      _mm256_cvtepi32_epi64(_mm_add_epi32(k2, bias)), 52);
  const __m256d s1 = _mm256_castsi256_pd(e1);
  const __m256d s2 = _mm256_castsi256_pd(e2);
  return _mm256_mul_pd(_mm256_mul_pd(p, s1), s2);
}

Scalar RowMaxAvx2(const Scalar* x, int n) {
  // Max over a set is a unique value (up to zero sign, normalized by the
  // trailing +0.0), so unlike sums it may be reduced in any shape: four
  // independent accumulator chains break the vmaxpd latency chain that
  // would otherwise cap throughput at one element per cycle.
  if (n < 8) return scalar::RowMax(x, n);
  __m256d a0 = _mm256_loadu_pd(x);
  __m256d a1 = a0, a2 = a0, a3 = a0;
  int i = 4;
  for (; i + 15 < n; i += 16) {
    a0 = _mm256_max_pd(_mm256_loadu_pd(x + i), a0);
    a1 = _mm256_max_pd(_mm256_loadu_pd(x + i + 4), a1);
    a2 = _mm256_max_pd(_mm256_loadu_pd(x + i + 8), a2);
    a3 = _mm256_max_pd(_mm256_loadu_pd(x + i + 12), a3);
  }
  for (; i + 3 < n; i += 4) a0 = _mm256_max_pd(_mm256_loadu_pd(x + i), a0);
  __m256d acc = _mm256_max_pd(_mm256_max_pd(a0, a1), _mm256_max_pd(a2, a3));
  Scalar m[4];
  _mm256_storeu_pd(m, acc);
  for (; i < n; ++i) m[0] = x[i] > m[0] ? x[i] : m[0];
  m[0] = m[1] > m[0] ? m[1] : m[0];
  m[2] = m[3] > m[2] ? m[3] : m[2];
  return (m[2] > m[0] ? m[2] : m[0]) + 0.0;
}

Scalar ExpRowSumAvx2(const Scalar* x, Scalar m, Scalar* dst, int n) {
  const __m256d mv = _mm256_set1_pd(m);
  __m256d acc = _mm256_setzero_pd();  // lanes = a0..a3
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d e = ExpV(_mm256_sub_pd(_mm256_loadu_pd(x + i), mv));
    _mm256_storeu_pd(dst + i, e);
    acc = _mm256_add_pd(acc, e);
  }
  Scalar a[4];
  _mm256_storeu_pd(a, acc);
  Scalar z = ((a[0] + a[1]) + a[2]) + a[3];
  for (; i < n; ++i) {
    dst[i] = detail::ExpD(x[i] - m);
    z += dst[i];
  }
  return z;
}

void ExpRowAvx2(const Scalar* x, Scalar m, Scalar* dst, int n) {
  const __m256d mv = _mm256_set1_pd(m);
  int i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(dst + i,
                     ExpV(_mm256_sub_pd(_mm256_loadu_pd(x + i), mv)));
  for (; i < n; ++i) dst[i] = detail::ExpD(x[i] - m);
}

void DivRowAvx2(Scalar* x, Scalar z, int n) {
  const __m256d zv = _mm256_set1_pd(z);
  int i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_loadu_pd(x + i), zv));
  for (; i < n; ++i) x[i] /= z;
}

void DotPanel4Avx2(const Scalar* h, const Scalar* panel, int d,
                   Scalar* out4) {
  __m256d acc = _mm256_setzero_pd();  // lane j = chain for output column j
  for (int k = 0; k < d; ++k) {
    const __m256d hk = _mm256_set1_pd(h[k]);
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(hk, _mm256_loadu_pd(panel + 4 * k)));
  }
  _mm256_storeu_pd(out4, acc);
}

void AxpyRowAvx2(Scalar a, const Scalar* b, Scalar* o, int n) {
  const __m256d av = _mm256_set1_pd(a);
  int i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(
        o + i, _mm256_add_pd(_mm256_loadu_pd(o + i),
                             _mm256_mul_pd(av, _mm256_loadu_pd(b + i))));
  for (; i < n; ++i) o[i] += a * b[i];
}

void Axpy4RowAvx2(Scalar a0, const Scalar* b0, Scalar a1, const Scalar* b1,
                  Scalar a2, const Scalar* b2, Scalar a3, const Scalar* b3,
                  Scalar* o, int n) {
  const __m256d a0v = _mm256_set1_pd(a0);
  const __m256d a1v = _mm256_set1_pd(a1);
  const __m256d a2v = _mm256_set1_pd(a2);
  const __m256d a3v = _mm256_set1_pd(a3);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    __m256d acc = _mm256_loadu_pd(o + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a0v, _mm256_loadu_pd(b0 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a1v, _mm256_loadu_pd(b1 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a2v, _mm256_loadu_pd(b2 + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(a3v, _mm256_loadu_pd(b3 + i)));
    _mm256_storeu_pd(o + i, acc);
  }
  for (; i < n; ++i)
    o[i] = o[i] + a0 * b0[i] + a1 * b1[i] + a2 * b2[i] + a3 * b3[i];
}

void AddRowAvx2(Scalar* dst, const Scalar* x, int n) {
  int i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(x + i)));
  for (; i < n; ++i) dst[i] += x[i];
}

void ScaleRowAvx2(Scalar* x, Scalar s, int n) {
  const __m256d sv = _mm256_set1_pd(s);
  int i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), sv));
  for (; i < n; ++i) x[i] *= s;
}

void MulRowAvx2(Scalar* dst, const Scalar* x, int n) {
  int i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(x + i)));
  for (; i < n; ++i) dst[i] *= x[i];
}

void MulAddRowAvx2(Scalar* dst, const Scalar* a, const Scalar* b, int n) {
  int i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(
        dst + i,
        _mm256_add_pd(_mm256_loadu_pd(dst + i),
                      _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                    _mm256_loadu_pd(b + i))));
  for (; i < n; ++i) dst[i] = dst[i] + a[i] * b[i];
}

void ScaleAddRowAvx2(Scalar* dst, Scalar s, const Scalar* x, Scalar a,
                     int n) {
  const __m256d sv = _mm256_set1_pd(s);
  const __m256d av = _mm256_set1_pd(a);
  int i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(
        dst + i,
        _mm256_add_pd(_mm256_mul_pd(sv, _mm256_loadu_pd(dst + i)),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
  for (; i < n; ++i) dst[i] = s * dst[i] + a * x[i];
}

void ShiftRowAvx2(const Scalar* x, Scalar s, Scalar* dst, int n) {
  const __m256d sv = _mm256_set1_pd(s);
  int i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), sv));
  for (; i < n; ++i) dst[i] = x[i] - s;
}

void SigmoidRowAvx2(const Scalar* x, Scalar* dst, int n) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sign = _mm256_set1_pd(-0.0);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    // xor with the sign bit is exact negation, matching scalar -x[i].
    const __m256d e = ExpV(_mm256_xor_pd(_mm256_loadu_pd(x + i), sign));
    _mm256_storeu_pd(dst + i, _mm256_div_pd(one, _mm256_add_pd(one, e)));
  }
  for (; i < n; ++i) dst[i] = 1.0 / (1.0 + detail::ExpD(-x[i]));
}

void SigmoidBwdRowAvx2(const Scalar* go, const Scalar* y, Scalar* gi,
                       int n) {
  const __m256d one = _mm256_set1_pd(1.0);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d yv = _mm256_loadu_pd(y + i);
    const __m256d dydx = _mm256_mul_pd(yv, _mm256_sub_pd(one, yv));
    _mm256_storeu_pd(
        gi + i,
        _mm256_add_pd(_mm256_loadu_pd(gi + i),
                      _mm256_mul_pd(_mm256_loadu_pd(go + i), dydx)));
  }
  for (; i < n; ++i) gi[i] += go[i] * (y[i] * (1.0 - y[i]));
}

void ReluRowAvx2(const Scalar* x, Scalar* dst, int n) {
  const __m256d zero = _mm256_setzero_pd();
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d mask = _mm256_cmp_pd(xv, zero, _CMP_GT_OQ);
    _mm256_storeu_pd(dst + i, _mm256_blendv_pd(zero, xv, mask));
  }
  for (; i < n; ++i) dst[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void ReluBwdRowAvx2(const Scalar* go, const Scalar* x, Scalar* gi, int n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d mask =
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), zero, _CMP_GT_OQ);
    // A real multiply by the blended 1.0/0.0 (not a mask-and): go * 0.0
    // keeps go's sign on the zero, like the scalar reference.
    const __m256d d = _mm256_blendv_pd(zero, one, mask);
    _mm256_storeu_pd(
        gi + i, _mm256_add_pd(_mm256_loadu_pd(gi + i),
                              _mm256_mul_pd(_mm256_loadu_pd(go + i), d)));
  }
  for (; i < n; ++i) gi[i] += go[i] * (x[i] > 0.0 ? 1.0 : 0.0);
}

void LeakyReluRowAvx2(const Scalar* x, Scalar slope, Scalar* dst, int n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d sv = _mm256_set1_pd(slope);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d mask = _mm256_cmp_pd(xv, zero, _CMP_GT_OQ);
    _mm256_storeu_pd(dst + i,
                     _mm256_blendv_pd(_mm256_mul_pd(sv, xv), xv, mask));
  }
  for (; i < n; ++i) dst[i] = x[i] > 0.0 ? x[i] : slope * x[i];
}

void LeakyReluBwdRowAvx2(const Scalar* go, const Scalar* x, Scalar slope,
                         Scalar* gi, int n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sv = _mm256_set1_pd(slope);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d mask =
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), zero, _CMP_GT_OQ);
    const __m256d d = _mm256_blendv_pd(sv, one, mask);
    _mm256_storeu_pd(
        gi + i, _mm256_add_pd(_mm256_loadu_pd(gi + i),
                              _mm256_mul_pd(_mm256_loadu_pd(go + i), d)));
  }
  for (; i < n; ++i) gi[i] += go[i] * (x[i] > 0.0 ? 1.0 : slope);
}

void SoftmaxBwdRowAvx2(const Scalar* go, const Scalar* y, Scalar dot,
                       Scalar* gi, int n) {
  const __m256d dv = _mm256_set1_pd(dot);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d t =
        _mm256_mul_pd(_mm256_loadu_pd(y + i),
                      _mm256_sub_pd(_mm256_loadu_pd(go + i), dv));
    _mm256_storeu_pd(gi + i, _mm256_add_pd(_mm256_loadu_pd(gi + i), t));
  }
  for (; i < n; ++i) gi[i] += y[i] * (go[i] - dot);
}

void LogSoftmaxBwdRowAvx2(const Scalar* go, const Scalar* p, Scalar gsum,
                          Scalar* gi, int n) {
  const __m256d gv = _mm256_set1_pd(gsum);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d t =
        _mm256_sub_pd(_mm256_loadu_pd(go + i),
                      _mm256_mul_pd(_mm256_loadu_pd(p + i), gv));
    _mm256_storeu_pd(gi + i, _mm256_add_pd(_mm256_loadu_pd(gi + i), t));
  }
  for (; i < n; ++i) gi[i] += go[i] - p[i] * gsum;
}

void AxpyDivRowAvx2(Scalar a, const Scalar* e, Scalar z, Scalar* gi, int n) {
  const __m256d av = _mm256_set1_pd(a);
  const __m256d zv = _mm256_set1_pd(z);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d t =
        _mm256_div_pd(_mm256_mul_pd(av, _mm256_loadu_pd(e + i)), zv);
    _mm256_storeu_pd(gi + i, _mm256_add_pd(_mm256_loadu_pd(gi + i), t));
  }
  for (; i < n; ++i) gi[i] += (a * e[i]) / z;
}

void AdamRowAvx2(Scalar* x, Scalar* m, Scalar* v, const Scalar* g,
                 Scalar beta1, Scalar one_minus_beta1, Scalar beta2,
                 Scalar one_minus_beta2, Scalar bias1, Scalar bias2,
                 Scalar lr, Scalar eps, int n) {
  const __m256d b1v = _mm256_set1_pd(beta1);
  const __m256d ob1v = _mm256_set1_pd(one_minus_beta1);
  const __m256d b2v = _mm256_set1_pd(beta2);
  const __m256d ob2v = _mm256_set1_pd(one_minus_beta2);
  const __m256d bias1v = _mm256_set1_pd(bias1);
  const __m256d bias2v = _mm256_set1_pd(bias2);
  const __m256d lrv = _mm256_set1_pd(lr);
  const __m256d epsv = _mm256_set1_pd(eps);
  int i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d gv = _mm256_loadu_pd(g + i);
    const __m256d mv = _mm256_add_pd(
        _mm256_mul_pd(b1v, _mm256_loadu_pd(m + i)), _mm256_mul_pd(ob1v, gv));
    const __m256d vv =
        _mm256_add_pd(_mm256_mul_pd(b2v, _mm256_loadu_pd(v + i)),
                      _mm256_mul_pd(_mm256_mul_pd(ob2v, gv), gv));
    _mm256_storeu_pd(m + i, mv);
    _mm256_storeu_pd(v + i, vv);
    const __m256d m_hat = _mm256_div_pd(mv, bias1v);
    const __m256d v_hat = _mm256_div_pd(vv, bias2v);
    const __m256d step = _mm256_div_pd(
        _mm256_mul_pd(lrv, m_hat),
        _mm256_add_pd(_mm256_sqrt_pd(v_hat), epsv));
    _mm256_storeu_pd(x + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), step));
  }
  for (; i < n; ++i) {
    const Scalar gj = g[i];
    m[i] = beta1 * m[i] + one_minus_beta1 * gj;
    v[i] = beta2 * v[i] + (one_minus_beta2 * gj) * gj;
    const Scalar m_hat = m[i] / bias1;
    const Scalar v_hat = v[i] / bias2;
    x[i] -= (lr * m_hat) / (std::sqrt(v_hat) + eps);
  }
}

const KernelOps kAvx2Ops = {
    RowMaxAvx2,
    ExpRowSumAvx2,
    ExpRowAvx2,
    DivRowAvx2,
    scalar::Dot,       // serial chain in every backend (see kernels.h)
    scalar::DotSum2,   // serial chain in every backend
    DotPanel4Avx2,
    AxpyRowAvx2,
    Axpy4RowAvx2,
    AddRowAvx2,
    ScaleRowAvx2,
    MulRowAvx2,
    MulAddRowAvx2,
    ScaleAddRowAvx2,
    ShiftRowAvx2,
    SigmoidRowAvx2,
    SigmoidBwdRowAvx2,
    ReluRowAvx2,
    ReluBwdRowAvx2,
    LeakyReluRowAvx2,
    LeakyReluBwdRowAvx2,
    SoftmaxBwdRowAvx2,
    LogSoftmaxBwdRowAvx2,
    AxpyDivRowAvx2,
    AdamRowAvx2,
};

}  // namespace

const KernelOps* GetAvx2Ops() { return &kAvx2Ops; }

}  // namespace tgsim::nn::kernels

#endif  // TGSIM_HAVE_AVX2_KERNELS
