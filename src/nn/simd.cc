#include "nn/simd.h"

#include <cstdlib>
#include <cstring>

#include "nn/kernels.h"

namespace tgsim::nn::kernels {

namespace {

const KernelOps kScalarOps = {
    scalar::RowMax,
    scalar::ExpRowSum,
    scalar::ExpRow,
    scalar::DivRow,
    scalar::Dot,
    scalar::DotSum2,
    scalar::DotPanel4,
    scalar::AxpyRow,
    scalar::Axpy4Row,
    scalar::AddRow,
    scalar::ScaleRow,
    scalar::MulRow,
    scalar::MulAddRow,
    scalar::ScaleAddRow,
    scalar::ShiftRow,
    scalar::SigmoidRow,
    scalar::SigmoidBwdRow,
    scalar::ReluRow,
    scalar::ReluBwdRow,
    scalar::LeakyReluRow,
    scalar::LeakyReluBwdRow,
    scalar::SoftmaxBwdRow,
    scalar::LogSoftmaxBwdRow,
    scalar::AxpyDivRow,
    scalar::AdamRow,
};

Backend g_active_backend = Backend::kScalar;

bool ForcedScalarByEnv() {
  const char* v = std::getenv("TGSIM_FORCE_SCALAR");
  if (v == nullptr || v[0] == '\0') return false;
  return std::strcmp(v, "0") != 0;
}

}  // namespace

namespace detail {

std::atomic<const KernelOps*> g_ops{nullptr};

const KernelOps* ResolveOps() {
  const KernelOps* ops = &kScalarOps;
  Backend backend = Backend::kScalar;
#if defined(TGSIM_FORCE_SCALAR_BUILD)
  // Compile-time forced scalar: the ISA TUs are not even in the build.
#else
  if (!ForcedScalarByEnv()) {
#if defined(TGSIM_HAVE_AVX2_KERNELS)
    if (__builtin_cpu_supports("avx2")) {
      ops = GetAvx2Ops();
      backend = Backend::kAvx2;
    }
#elif defined(TGSIM_HAVE_NEON_KERNELS)
    ops = GetNeonOps();
    backend = Backend::kNeon;
#endif
  }
#endif
  // Benign race: concurrent first calls resolve to the same table.
  g_active_backend = backend;
  g_ops.store(ops, std::memory_order_release);
  return ops;
}

}  // namespace detail

const KernelOps* GetScalarOps() { return &kScalarOps; }

const KernelOps* OpsFor(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &kScalarOps;
    case Backend::kAvx2:
#if defined(TGSIM_HAVE_AVX2_KERNELS)
      return GetAvx2Ops();
#else
      return nullptr;
#endif
    case Backend::kNeon:
#if defined(TGSIM_HAVE_NEON_KERNELS)
      return GetNeonOps();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Backend ActiveBackend() {
  Ops();  // resolve if needed
  return g_active_backend;
}

bool BackendCompiledIn(Backend b) { return OpsFor(b) != nullptr; }

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

Backend SetBackendForTest(Backend b) {
  const Backend prev = ActiveBackend();
  const KernelOps* ops = OpsFor(b);
  TGSIM_DCHECK(ops != nullptr);
  g_active_backend = b;
  detail::g_ops.store(ops, std::memory_order_release);
  return prev;
}

}  // namespace tgsim::nn::kernels
