#include "nn/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "nn/kernels.h"
#include "parallel/parallel_for.h"

namespace tgsim::nn {

namespace {

using parallel::kElementwiseGrain;
using parallel::RowGrain;

/// Segment-id -> ascending member indices, in CSR form. Per-segment entry
/// order equals the global entry order, so any per-segment accumulation
/// done over `Members(s)` reproduces the serial loop bit for bit.
class SegmentIndex {
 public:
  SegmentIndex(const std::vector<int>& seg, int num_segments)
      : offsets_(static_cast<size_t>(num_segments) + 1, 0),
        items_(seg.size()) {
    for (int s : seg) {
      TGSIM_DCHECK(s >= 0 && s < num_segments);
      ++offsets_[static_cast<size_t>(s) + 1];
    }
    for (size_t s = 1; s < offsets_.size(); ++s)
      offsets_[s] += offsets_[s - 1];
    std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (size_t i = 0; i < seg.size(); ++i)
      items_[static_cast<size_t>(
          cursor[static_cast<size_t>(seg[i])]++)] = static_cast<int>(i);
  }

  int num_segments() const { return static_cast<int>(offsets_.size()) - 1; }
  const int* begin(int s) const {
    return items_.data() + offsets_[static_cast<size_t>(s)];
  }
  const int* end(int s) const {
    return items_.data() + offsets_[static_cast<size_t>(s) + 1];
  }

 private:
  std::vector<int64_t> offsets_;
  std::vector<int> items_;
};

/// Grain for loops over segments; segments are cheap individually, so pack
/// many per chunk.
constexpr int64_t kSegmentGrain = 256;

}  // namespace

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Var Var::FromNode(std::shared_ptr<Node> node) {
  Var v;
  v.node_ = std::move(node);
  return v;
}

Scalar Var::item() const {
  TGSIM_CHECK_EQ(node_->value.rows(), 1);
  TGSIM_CHECK_EQ(node_->value.cols(), 1);
  return node_->value.at(0, 0);
}

namespace {

/// Builds an op node: value, parent edges and the backward closure.
Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents.reserve(parents.size());
  bool needs_grad = false;
  for (const Var& p : parents) {
    TGSIM_CHECK(p.defined());
    node->parents.push_back(p.node());
    needs_grad = needs_grad || p.node()->requires_grad;
  }
  node->requires_grad = needs_grad;
  if (needs_grad) node->backward_fn = std::move(backward);
  return Var::FromNode(node);
}

/// True if `p` participates in differentiation (grad must be accumulated).
bool NeedsGrad(const std::shared_ptr<Node>& p) { return p->requires_grad; }

}  // namespace

void Backward(const Var& root) {
  TGSIM_CHECK(root.defined());
  TGSIM_CHECK_EQ(root.value().rows(), 1);
  TGSIM_CHECK_EQ(root.value().cols(), 1);

  // Iterative post-order DFS to get a topological order of the DAG.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  root.node()->EnsureGrad();
  root.node()->grad.at(0, 0) += 1.0;

  // `order` is post-order (leaves first); walk it backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

// ---------------------------------------------------------------------------
// Binary / unary arithmetic.
// ---------------------------------------------------------------------------

Var MatMul(const Var& a, const Var& b) {
  Tensor out = a.value().MatMul(b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& self) {
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    if (NeedsGrad(pa)) {
      pa->EnsureGrad();
      pa->grad.AddInPlace(self.grad.MatMul(pb->value.Transpose()));
    }
    if (NeedsGrad(pb)) {
      pb->EnsureGrad();
      pb->grad.AddInPlace(pa->value.Transpose().MatMul(self.grad));
    }
  });
}

Var Add(const Var& a, const Var& b) {
  const bool broadcast = b.rows() == 1 && a.rows() != 1 &&
                         b.cols() == a.cols();
  Tensor out = a.value();
  if (broadcast) {
    out.AddRowVectorInPlace(b.value());
  } else {
    out.AddInPlace(b.value());
  }
  return MakeOp(std::move(out), {a, b}, [broadcast](Node& self) {
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    if (NeedsGrad(pa)) {
      pa->EnsureGrad();
      pa->grad.AddInPlace(self.grad);
    }
    if (NeedsGrad(pb)) {
      pb->EnsureGrad();
      if (broadcast) {
        for (int r = 0; r < self.grad.rows(); ++r)
          for (int c = 0; c < self.grad.cols(); ++c)
            pb->grad.at(0, c) += self.grad.at(r, c);
      } else {
        pb->grad.AddInPlace(self.grad);
      }
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  Tensor out = a.value() - b.value();
  return MakeOp(std::move(out), {a, b}, [](Node& self) {
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    if (NeedsGrad(pa)) {
      pa->EnsureGrad();
      pa->grad.AddInPlace(self.grad);
    }
    if (NeedsGrad(pb)) {
      pb->EnsureGrad();
      pb->grad.Axpy(-1.0, self.grad);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  Tensor out = a.value().CwiseMul(b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& self) {
    auto& pa = self.parents[0];
    auto& pb = self.parents[1];
    if (NeedsGrad(pa)) {
      pa->EnsureGrad();
      pa->grad.AddInPlace(self.grad.CwiseMul(pb->value));
    }
    if (NeedsGrad(pb)) {
      pb->EnsureGrad();
      pb->grad.AddInPlace(self.grad.CwiseMul(pa->value));
    }
  });
}

Var MulColBroadcast(const Var& a, const Var& w) {
  TGSIM_CHECK_EQ(w.cols(), 1);
  TGSIM_CHECK_EQ(w.rows(), a.rows());
  Tensor out = a.value();
  parallel::ParallelFor(
      0, out.rows(), RowGrain(out.cols()), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r)
          kernels::ScaleRow(out.row(static_cast<int>(r)),
                            w.value().at(static_cast<int>(r), 0), out.cols());
      });
  return MakeOp(std::move(out), {a, w}, [](Node& self) {
    auto& pa = self.parents[0];
    auto& pw = self.parents[1];
    const int cols = self.grad.cols();
    const int64_t grain = RowGrain(cols);
    if (NeedsGrad(pa)) {
      pa->EnsureGrad();
      parallel::ParallelFor(
          0, self.grad.rows(), grain, [&](int64_t r0, int64_t r1) {
            for (int64_t ri = r0; ri < r1; ++ri) {
              const int r = static_cast<int>(ri);
              kernels::AxpyRow(pw->value.at(r, 0), self.grad.row(r),
                               pa->grad.row(r), cols);
            }
          });
    }
    if (NeedsGrad(pw)) {
      pw->EnsureGrad();
      parallel::ParallelFor(
          0, self.grad.rows(), grain, [&](int64_t r0, int64_t r1) {
            for (int64_t ri = r0; ri < r1; ++ri) {
              const int r = static_cast<int>(ri);
              pw->grad.at(r, 0) +=
                  kernels::Dot(self.grad.row(r), pa->value.row(r), cols);
            }
          });
    }
  });
}

Var Scale(const Var& a, Scalar s) {
  Tensor out = a.value() * s;
  return MakeOp(std::move(out), {a}, [s](Node& self) {
    auto& pa = self.parents[0];
    if (NeedsGrad(pa)) {
      pa->EnsureGrad();
      pa->grad.Axpy(s, self.grad);
    }
  });
}

Var AddScalar(const Var& a, Scalar s) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] += s;
  return MakeOp(std::move(out), {a}, [](Node& self) {
    auto& pa = self.parents[0];
    if (NeedsGrad(pa)) {
      pa->EnsureGrad();
      pa->grad.AddInPlace(self.grad);
    }
  });
}

// ---------------------------------------------------------------------------
// Activations.
// ---------------------------------------------------------------------------

namespace {

/// Shared plumbing for activations backed by dispatched row kernels: fwd
/// fills out from x chunk by chunk; bwd accumulates into the parent grad
/// from (go, x, y) on the matching chunk. Both run on the flat
/// kElementwiseGrain chunking, so results are thread-count-invariant like
/// everything else on the tape.
template <typename FwdFn, typename BwdFn>
Var RowKernelOp(const Var& a, FwdFn fwd, BwdFn bwd) {
  const Tensor& x = a.value();
  Tensor out(x.rows(), x.cols());
  parallel::ParallelFor(0, x.size(), kElementwiseGrain,
                        [&](int64_t b, int64_t e) {
                          fwd(x.data() + b, out.data() + b,
                              static_cast<int>(e - b));
                        });
  return MakeOp(std::move(out), {a}, [bwd](Node& self) {
    auto& pa = self.parents[0];
    if (!NeedsGrad(pa)) return;
    pa->EnsureGrad();
    parallel::ParallelFor(
        0, self.grad.size(), kElementwiseGrain, [&](int64_t b, int64_t e) {
          bwd(self.grad.data() + b, pa->value.data() + b,
              self.value.data() + b, pa->grad.data() + b,
              static_cast<int>(e - b));
        });
  });
}

/// Shared plumbing for elementwise y=f(x) with dy/dx expressible from y / x.
/// Kept for the activations whose f is a libm call the SIMD backends do not
/// mirror (tanh, log) or that are cold (square); the hot activations go
/// through RowKernelOp above.
Var ElementwiseOp(const Var& a, const std::function<Scalar(Scalar)>& fwd,
                  std::function<Scalar(Scalar x, Scalar y)> dydx) {
  Tensor out = a.value();
  parallel::ParallelFor(0, out.size(), kElementwiseGrain,
                        [&](int64_t b, int64_t e) {
                          for (int64_t i = b; i < e; ++i)
                            out.data()[i] = fwd(out.data()[i]);
                        });
  return MakeOp(std::move(out), {a},
                [dydx = std::move(dydx)](Node& self) {
                  auto& pa = self.parents[0];
                  if (!NeedsGrad(pa)) return;
                  pa->EnsureGrad();
                  parallel::ParallelFor(
                      0, self.grad.size(), kElementwiseGrain,
                      [&](int64_t b, int64_t e) {
                        for (int64_t i = b; i < e; ++i) {
                          pa->grad.data()[i] +=
                              self.grad.data()[i] *
                              dydx(pa->value.data()[i], self.value.data()[i]);
                        }
                      });
                });
}

}  // namespace

Var Sigmoid(const Var& a) {
  return RowKernelOp(
      a,
      [](const Scalar* x, Scalar* dst, int n) {
        kernels::SigmoidRow(x, dst, n);
      },
      [](const Scalar* go, const Scalar*, const Scalar* y, Scalar* gi,
         int n) { kernels::SigmoidBwdRow(go, y, gi, n); });
}

Var Tanh(const Var& a) {
  return ElementwiseOp(a, [](Scalar x) { return std::tanh(x); },
                       [](Scalar, Scalar y) { return 1.0 - y * y; });
}

Var Relu(const Var& a) {
  return RowKernelOp(
      a,
      [](const Scalar* x, Scalar* dst, int n) { kernels::ReluRow(x, dst, n); },
      [](const Scalar* go, const Scalar* x, const Scalar*, Scalar* gi,
         int n) { kernels::ReluBwdRow(go, x, gi, n); });
}

Var LeakyRelu(const Var& a, Scalar slope) {
  return RowKernelOp(
      a,
      [slope](const Scalar* x, Scalar* dst, int n) {
        kernels::LeakyReluRow(x, slope, dst, n);
      },
      [slope](const Scalar* go, const Scalar* x, const Scalar*, Scalar* gi,
              int n) { kernels::LeakyReluBwdRow(go, x, slope, gi, n); });
}

Var Exp(const Var& a) {
  return RowKernelOp(
      a,
      [](const Scalar* x, Scalar* dst, int n) {
        kernels::ExpRow(x, 0.0, dst, n);  // x - 0.0 is an exact identity
      },
      [](const Scalar* go, const Scalar*, const Scalar* y, Scalar* gi,
         int n) { kernels::MulAddRow(gi, go, y, n); });
}

Var Log(const Var& a, Scalar eps) {
  return ElementwiseOp(
      a, [eps](Scalar x) { return std::log(std::max(x, eps)); },
      [eps](Scalar x, Scalar) { return 1.0 / std::max(x, eps); });
}

Var Square(const Var& a) {
  return ElementwiseOp(a, [](Scalar x) { return x * x; },
                       [](Scalar x, Scalar) { return 2.0 * x; });
}

// ---------------------------------------------------------------------------
// Softmax family.
// ---------------------------------------------------------------------------

Var SoftmaxRows(const Var& a) {
  Tensor out = a.value().SoftmaxRows();
  return MakeOp(std::move(out), {a}, [](Node& self) {
    auto& pa = self.parents[0];
    if (!NeedsGrad(pa)) return;
    pa->EnsureGrad();
    // dL/dx = y * (g - <g, y>) per row; the dot keeps its serial chain.
    const int cols = self.value.cols();
    parallel::ParallelFor(
        0, self.value.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t ri = r0; ri < r1; ++ri) {
            const int r = static_cast<int>(ri);
            const Scalar dot =
                kernels::Dot(self.grad.row(r), self.value.row(r), cols);
            kernels::SoftmaxBwdRow(self.grad.row(r), self.value.row(r), dot,
                                   pa->grad.row(r), cols);
          }
        });
  });
}

Var LogSoftmaxRows(const Var& a) {
  const Tensor& x = a.value();
  Tensor out(x.rows(), x.cols());
  const int cols = x.cols();
  parallel::ParallelFor(
      0, x.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
        std::vector<Scalar> scratch(static_cast<size_t>(cols));
        for (int64_t ri = r0; ri < r1; ++ri) {
          const int r = static_cast<int>(ri);
          const Scalar m = kernels::RowMax(x.row(r), cols);
          const Scalar z = kernels::ExpRowSum(x.row(r), m, scratch.data(),
                                              cols);
          const Scalar log_z = m + std::log(z);
          kernels::ShiftRow(x.row(r), log_z, out.row(r), cols);
        }
      });
  return MakeOp(std::move(out), {a}, [](Node& self) {
    auto& pa = self.parents[0];
    if (!NeedsGrad(pa)) return;
    pa->EnsureGrad();
    // dL/dx = g - softmax(x) * sum(g) per row. The gsum chain stays a
    // plain ascending loop; softmax(x) = exp(value) is per-element.
    const int cols = self.value.cols();
    parallel::ParallelFor(
        0, self.value.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
          std::vector<Scalar> p(static_cast<size_t>(cols));
          for (int64_t ri = r0; ri < r1; ++ri) {
            const int r = static_cast<int>(ri);
            const Scalar* go = self.grad.row(r);
            Scalar gsum = 0.0;
            for (int c = 0; c < cols; ++c) gsum += go[c];
            kernels::ExpRow(self.value.row(r), 0.0, p.data(), cols);
            kernels::LogSoftmaxBwdRow(go, p.data(), gsum, pa->grad.row(r),
                                      cols);
          }
        });
  });
}

// ---------------------------------------------------------------------------
// Reductions / reshapes.
// ---------------------------------------------------------------------------

Var Sum(const Var& a) {
  Tensor out(1, 1);
  out.at(0, 0) = a.value().Sum();
  return MakeOp(std::move(out), {a}, [](Node& self) {
    auto& pa = self.parents[0];
    if (!NeedsGrad(pa)) return;
    pa->EnsureGrad();
    Scalar g = self.grad.at(0, 0);
    for (int64_t i = 0; i < pa->grad.size(); ++i) pa->grad.data()[i] += g;
  });
}

Var Mean(const Var& a) {
  int64_t n = a.value().size();
  TGSIM_CHECK_GT(n, 0);
  return Scale(Sum(a), 1.0 / static_cast<Scalar>(n));
}

Var ConcatCols(const std::vector<Var>& vs) {
  TGSIM_CHECK(!vs.empty());
  int rows = vs[0].rows();
  int cols = 0;
  for (const Var& v : vs) {
    TGSIM_CHECK_EQ(v.rows(), rows);
    cols += v.cols();
  }
  Tensor out(rows, cols);
  int offset = 0;
  for (const Var& v : vs) {
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < v.cols(); ++c)
        out.at(r, offset + c) = v.value().at(r, c);
    offset += v.cols();
  }
  return MakeOp(std::move(out), vs, [](Node& self) {
    int offset = 0;
    for (auto& p : self.parents) {
      int pc = p->value.cols();
      if (NeedsGrad(p)) {
        p->EnsureGrad();
        for (int r = 0; r < p->value.rows(); ++r)
          for (int c = 0; c < pc; ++c)
            p->grad.at(r, c) += self.grad.at(r, offset + c);
      }
      offset += pc;
    }
  });
}

Var ConcatRows(const std::vector<Var>& vs) {
  TGSIM_CHECK(!vs.empty());
  int cols = vs[0].cols();
  int rows = 0;
  for (const Var& v : vs) {
    TGSIM_CHECK_EQ(v.cols(), cols);
    rows += v.rows();
  }
  Tensor out(rows, cols);
  int offset = 0;
  for (const Var& v : vs) {
    for (int r = 0; r < v.rows(); ++r)
      for (int c = 0; c < cols; ++c)
        out.at(offset + r, c) = v.value().at(r, c);
    offset += v.rows();
  }
  return MakeOp(std::move(out), vs, [](Node& self) {
    int offset = 0;
    for (auto& p : self.parents) {
      int pr = p->value.rows();
      if (NeedsGrad(p)) {
        p->EnsureGrad();
        for (int r = 0; r < pr; ++r)
          for (int c = 0; c < p->value.cols(); ++c)
            p->grad.at(r, c) += self.grad.at(offset + r, c);
      }
      offset += pr;
    }
  });
}

Var SliceCols(const Var& a, int begin, int end) {
  TGSIM_CHECK(0 <= begin && begin <= end && end <= a.cols());
  const int rows = a.rows();
  const int width = end - begin;
  Tensor out(rows, width);
  parallel::ParallelFor(
      0, rows, RowGrain(width), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r)
          for (int c = 0; c < width; ++c)
            out.at(static_cast<int>(r), c) =
                a.value().at(static_cast<int>(r), begin + c);
      });
  return MakeOp(std::move(out), {a}, [begin, width](Node& self) {
    auto& pa = self.parents[0];
    if (!NeedsGrad(pa)) return;
    pa->EnsureGrad();
    parallel::ParallelFor(
        0, self.grad.rows(), RowGrain(width), [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r)
            for (int c = 0; c < width; ++c)
              pa->grad.at(static_cast<int>(r), begin + c) +=
                  self.grad.at(static_cast<int>(r), c);
        });
  });
}

Var GatherRows(const Var& a, std::vector<int> idx) {
  Tensor out = a.value().GatherRows(idx);
  return MakeOp(std::move(out), {a}, [idx = std::move(idx)](Node& self) {
    auto& pa = self.parents[0];
    if (!NeedsGrad(pa)) return;
    pa->EnsureGrad();
    for (size_t i = 0; i < idx.size(); ++i)
      for (int c = 0; c < self.grad.cols(); ++c)
        pa->grad.at(idx[i], c) += self.grad.at(static_cast<int>(i), c);
  });
}

Var GatherCols(const Var& a, std::vector<int> idx) {
  const int rows = a.rows();
  const int width = static_cast<int>(idx.size());
  for (int j : idx) TGSIM_CHECK(j >= 0 && j < a.cols());
  Tensor out(rows, width);
  parallel::ParallelFor(
      0, rows, RowGrain(width), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r)
          for (int j = 0; j < width; ++j)
            out.at(static_cast<int>(r), j) =
                a.value().at(static_cast<int>(r),
                             idx[static_cast<size_t>(j)]);
      });
  return MakeOp(std::move(out), {a}, [idx = std::move(idx)](Node& self) {
    auto& pa = self.parents[0];
    if (!NeedsGrad(pa)) return;
    pa->EnsureGrad();
    // Rows are disjoint across chunks; duplicate column indices accumulate
    // serially within a row, so the scatter-add is thread-count invariant.
    parallel::ParallelFor(
        0, self.grad.rows(), RowGrain(self.grad.cols()),
        [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r)
            for (int j = 0; j < self.grad.cols(); ++j)
              pa->grad.at(static_cast<int>(r), idx[static_cast<size_t>(j)]) +=
                  self.grad.at(static_cast<int>(r), j);
        });
  });
}

Var SegmentSum(const Var& a, std::vector<int> seg, int num_segments) {
  TGSIM_CHECK_EQ(static_cast<int>(seg.size()), a.rows());
  // Each segment owns one output row; per-segment member order (ascending
  // entry index, via SegmentIndex) matches the serial accumulation order,
  // so the sums are bit-identical for any thread count.
  SegmentIndex index(seg, num_segments);
  Tensor out(num_segments, a.cols());
  parallel::ParallelFor(
      0, num_segments, kSegmentGrain, [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
          Scalar* dst = out.row(static_cast<int>(s));
          for (const int* it = index.begin(static_cast<int>(s));
               it != index.end(static_cast<int>(s)); ++it)
            for (int c = 0; c < a.cols(); ++c)
              dst[c] += a.value().at(*it, c);
        }
      });
  return MakeOp(std::move(out), {a},
                [seg = std::move(seg)](Node& self) {
                  auto& pa = self.parents[0];
                  if (!NeedsGrad(pa)) return;
                  pa->EnsureGrad();
                  // Backward is a gather: entry i reads row seg[i] — rows
                  // of pa->grad are disjoint per entry chunk.
                  parallel::ParallelFor(
                      0, static_cast<int64_t>(seg.size()),
                      RowGrain(pa->grad.cols()), [&](int64_t b, int64_t e) {
                        for (int64_t i = b; i < e; ++i)
                          for (int c = 0; c < pa->grad.cols(); ++c)
                            pa->grad.at(static_cast<int>(i), c) +=
                                self.grad.at(seg[static_cast<size_t>(i)], c);
                      });
                });
}

Var SegmentSoftmax(const Var& scores, std::vector<int> seg,
                   int num_segments) {
  TGSIM_CHECK_EQ(scores.cols(), 1);
  TGSIM_CHECK_EQ(static_cast<int>(seg.size()), scores.rows());
  const Tensor& x = scores.value();
  const int n = x.rows();
  // Parallel over target segments: each segment stabilizes (max), sums and
  // normalizes its own entries, touching only its own output slots. Member
  // order inside a segment is ascending entry index, so the per-segment
  // max/sum order matches the serial sweep bit for bit.
  auto index = std::make_shared<SegmentIndex>(seg, num_segments);
  Tensor out(n, 1);
  parallel::ParallelFor(
      0, num_segments, kSegmentGrain, [&](int64_t s0, int64_t s1) {
        // Gather each segment's entries into a contiguous scratch row so
        // the shared SoftmaxRow kernel (and its SIMD variants) can run on
        // it, then scatter the probabilities back. Member order is
        // ascending entry index, same as the old in-place sweep.
        std::vector<Scalar> vals, probs;
        for (int64_t s = s0; s < s1; ++s) {
          const int si = static_cast<int>(s);
          const int* members = index->begin(si);
          const int count = static_cast<int>(index->end(si) - members);
          if (count == 0) continue;  // RowMax needs n >= 1
          vals.resize(static_cast<size_t>(count));
          probs.resize(static_cast<size_t>(count));
          for (int i = 0; i < count; ++i)
            vals[static_cast<size_t>(i)] = x.at(members[i], 0);
          kernels::SoftmaxRow(vals.data(), probs.data(), count);
          for (int i = 0; i < count; ++i)
            out.at(members[i], 0) = probs[static_cast<size_t>(i)];
        }
      });
  return MakeOp(
      std::move(out), {scores},
      [index = std::move(index)](Node& self) {
        auto& pa = self.parents[0];
        if (!NeedsGrad(pa)) return;
        pa->EnsureGrad();
        // Per segment: dx_i = y_i * (g_i - sum_j g_j y_j). Gather the
        // segment's go/y/gi into scratch rows, run the shared Dot +
        // SoftmaxBwdRow kernels, scatter the updated gi back.
        parallel::ParallelFor(
            0, index->num_segments(), kSegmentGrain,
            [&](int64_t s0, int64_t s1) {
              std::vector<Scalar> go_s, y_s, gi_s;
              for (int64_t s = s0; s < s1; ++s) {
                const int si = static_cast<int>(s);
                const int* members = index->begin(si);
                const int count =
                    static_cast<int>(index->end(si) - members);
                if (count == 0) continue;
                go_s.resize(static_cast<size_t>(count));
                y_s.resize(static_cast<size_t>(count));
                gi_s.resize(static_cast<size_t>(count));
                for (int i = 0; i < count; ++i) {
                  go_s[static_cast<size_t>(i)] = self.grad.at(members[i], 0);
                  y_s[static_cast<size_t>(i)] = self.value.at(members[i], 0);
                  gi_s[static_cast<size_t>(i)] = pa->grad.at(members[i], 0);
                }
                const Scalar dot =
                    kernels::Dot(go_s.data(), y_s.data(), count);
                kernels::SoftmaxBwdRow(go_s.data(), y_s.data(), dot,
                                       gi_s.data(), count);
                for (int i = 0; i < count; ++i)
                  pa->grad.at(members[i], 0) = gi_s[static_cast<size_t>(i)];
              }
            });
      });
}

Var Transpose(const Var& a) {
  Tensor out = a.value().Transpose();
  return MakeOp(std::move(out), {a}, [](Node& self) {
    auto& pa = self.parents[0];
    if (!NeedsGrad(pa)) return;
    pa->EnsureGrad();
    pa->grad.AddInPlace(self.grad.Transpose());
  });
}

// ---------------------------------------------------------------------------
// Losses.
// ---------------------------------------------------------------------------

Var RowCrossEntropyWithLogits(const Var& logits, const Tensor& targets) {
  TGSIM_CHECK(logits.value().SameShape(targets));
  Var log_p = LogSoftmaxRows(logits);
  Var weighted = Mul(log_p, Var::Constant(targets));
  int rows = targets.rows();
  return Scale(Sum(weighted), -1.0 / static_cast<Scalar>(rows));
}

Var SampledSoftmaxCrossEntropy(const Var& logits,
                               const SparseRowTargets& targets) {
  const Tensor& x = logits.value();
  const int rows = x.rows();
  const int cols = x.cols();
  TGSIM_CHECK_EQ(targets.rows(), rows);
  TGSIM_CHECK_EQ(targets.cols.size(), targets.weights.size());
  for (int c : targets.cols) TGSIM_CHECK(c >= 0 && c < cols);
  TGSIM_CHECK_GT(rows, 0);

  // Per-row losses computed in parallel (disjoint slots), combined by a
  // serial ascending sweep so the total keeps one FP association for any
  // thread count.
  std::vector<Scalar> row_loss(static_cast<size_t>(rows), 0.0);
  parallel::ParallelFor(
      0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
        std::vector<Scalar> scratch(static_cast<size_t>(cols));
        for (int64_t ri = r0; ri < r1; ++ri) {
          const int r = static_cast<int>(ri);
          const int begin = targets.offsets[static_cast<size_t>(r)];
          const int end = targets.offsets[static_cast<size_t>(r) + 1];
          if (begin == end) continue;
          const Scalar m = kernels::RowMax(x.row(r), cols);
          const Scalar z = kernels::ExpRowSum(x.row(r), m, scratch.data(),
                                              cols);
          Scalar log_z = m + std::log(z);
          Scalar loss = 0.0;
          for (int e = begin; e < end; ++e)
            loss += targets.weights[static_cast<size_t>(e)] *
                    (log_z - x.at(r, targets.cols[static_cast<size_t>(e)]));
          row_loss[static_cast<size_t>(r)] = loss;
        }
      });
  Scalar total = 0.0;
  for (Scalar l : row_loss) total += l;
  Tensor out(1, 1);
  out.at(0, 0) = total / static_cast<Scalar>(rows);

  SparseRowTargets tcopy = targets;
  return MakeOp(
      std::move(out), {logits},
      [t = std::move(tcopy), rows](Node& self) {
        auto& pa = self.parents[0];
        if (!NeedsGrad(pa)) return;
        pa->EnsureGrad();
        const Scalar g = self.grad.at(0, 0) / static_cast<Scalar>(rows);
        const int cols = pa->value.cols();
        // d/dl_c = W_r * softmax(l)_c - w_c, with W_r the row's target
        // mass. Rows are disjoint across chunks.
        parallel::ParallelFor(
            0, static_cast<int64_t>(rows), RowGrain(cols),
            [&](int64_t r0, int64_t r1) {
              std::vector<Scalar> scratch(static_cast<size_t>(cols));
              for (int64_t ri = r0; ri < r1; ++ri) {
                const int r = static_cast<int>(ri);
                const int begin = t.offsets[static_cast<size_t>(r)];
                const int end = t.offsets[static_cast<size_t>(r) + 1];
                if (begin == end) continue;
                Scalar mass = 0.0;
                for (int e = begin; e < end; ++e)
                  mass += t.weights[static_cast<size_t>(e)];
                const Scalar* xr = pa->value.row(r);
                const Scalar m = kernels::RowMax(xr, cols);
                const Scalar z =
                    kernels::ExpRowSum(xr, m, scratch.data(), cols);
                // grad += ((g*mass) * exp(x-m)) / z, with the g*mass
                // product hoisted exactly as the old inline expression
                // associated it.
                kernels::AxpyDivRow(g * mass, scratch.data(), z,
                                    pa->grad.row(r), cols);
                for (int e = begin; e < end; ++e)
                  pa->grad.at(r, t.cols[static_cast<size_t>(e)]) -=
                      g * t.weights[static_cast<size_t>(e)];
              }
            });
      });
}

Var BinaryCrossEntropyWithLogits(const Var& logits, const Tensor& targets,
                                 Scalar pos_weight) {
  TGSIM_CHECK(logits.value().SameShape(targets));
  const Tensor& x = logits.value();
  Tensor out(1, 1);
  Scalar total = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    Scalar xi = x.data()[i];
    Scalar ti = targets.data()[i];
    // Stable formulation: max(x,0) - x*t + log(1+exp(-|x|)), with the
    // positive term scaled by pos_weight.
    Scalar softplus = std::log1p(std::exp(-std::fabs(xi)));
    Scalar loss_pos = softplus + std::max(-xi, static_cast<Scalar>(0.0));
    Scalar loss_neg = softplus + std::max(xi, static_cast<Scalar>(0.0));
    total += pos_weight * ti * loss_pos + (1.0 - ti) * loss_neg;
  }
  int64_t n = x.size();
  out.at(0, 0) = total / static_cast<Scalar>(n);
  Tensor targets_copy = targets;
  return MakeOp(std::move(out), {logits},
                [targets = std::move(targets_copy), pos_weight,
                 n](Node& self) {
                  auto& pa = self.parents[0];
                  if (!NeedsGrad(pa)) return;
                  pa->EnsureGrad();
                  Scalar g = self.grad.at(0, 0) / static_cast<Scalar>(n);
                  for (int64_t i = 0; i < pa->value.size(); ++i) {
                    Scalar xi = pa->value.data()[i];
                    Scalar ti = targets.data()[i];
                    Scalar s = 1.0 / (1.0 + std::exp(-xi));
                    // d/dx [w*t*softplus(-x) + (1-t)*softplus(x)]
                    Scalar d = -pos_weight * ti * (1.0 - s) +
                               (1.0 - ti) * s;
                    pa->grad.data()[i] += g * d;
                  }
                });
}

Var KlToStandardNormal(const Var& mu, const Var& logvar) {
  TGSIM_CHECK(mu.value().SameShape(logvar.value()));
  // -0.5 * sum(1 + logvar - mu^2 - exp(logvar)) / rows
  Var term = Sub(Sub(AddScalar(logvar, 1.0), Square(mu)), Exp(logvar));
  int rows = mu.rows();
  return Scale(Sum(term), -0.5 / static_cast<Scalar>(rows));
}

Var MseLoss(const Var& pred, const Tensor& target) {
  TGSIM_CHECK(pred.value().SameShape(target));
  Var diff = Sub(pred, Var::Constant(target));
  return Mean(Square(diff));
}

}  // namespace tgsim::nn
