#include "nn/gradcheck.h"

#include <cmath>

namespace tgsim::nn {

GradCheckResult CheckGradients(std::vector<Var> params,
                               const std::function<Var()>& loss_fn,
                               Scalar eps, Scalar tolerance) {
  GradCheckResult result;

  // Analytic pass.
  for (Var& p : params) p.ZeroGrad();
  Var loss = loss_fn();
  Backward(loss);
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (Var& p : params) {
    p.node()->EnsureGrad();
    analytic.push_back(p.grad());
  }

  // Numeric pass: central differences entry by entry.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& x = params[pi].mutable_value();
    for (int64_t j = 0; j < x.size(); ++j) {
      Scalar saved = x.data()[j];
      x.data()[j] = saved + eps;
      Scalar f_plus = loss_fn().item();
      x.data()[j] = saved - eps;
      Scalar f_minus = loss_fn().item();
      x.data()[j] = saved;
      Scalar numeric = (f_plus - f_minus) / (2.0 * eps);
      Scalar exact = analytic[pi].data()[j];
      Scalar abs_err = std::fabs(numeric - exact);
      Scalar denom = std::max({std::fabs(numeric), std::fabs(exact),
                               static_cast<Scalar>(1.0)});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    }
  }
  result.ok = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace tgsim::nn
