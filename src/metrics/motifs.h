#ifndef TGSIM_METRICS_MOTIFS_H_
#define TGSIM_METRICS_MOTIFS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/temporal_graph.h"

namespace tgsim::metrics {

/// Canonical code of a {2,3}-node 3-edge delta-temporal motif
/// (Paranjape, Benson & Leskovec, WSDM'17).
///
/// A motif instance is a time-ordered triple of directed edges
/// (e1,e2,e3), t1 <= t2 <= t3, with t3 - t1 <= delta, spanning at most three
/// distinct nodes. The code relabels nodes by first appearance and packs the
/// six endpoint labels (each in {0,1,2}) into one integer, giving one of the
/// 36 equivalence classes of the paper's taxonomy.
using MotifCode = uint32_t;

/// Packs the ordered endpoint labels into a MotifCode.
MotifCode EncodeMotif(int u1, int v1, int u2, int v2, int u3, int v3);

/// Census of motif instances keyed by canonical code.
struct MotifCensus {
  std::map<MotifCode, int64_t> counts;
  int64_t total = 0;
};

/// Counts all {2,3}-node 3-edge delta-temporal motif instances.
///
/// The scan is time-window bounded: for each anchor edge, only edges within
/// `delta` timestamps are considered, and candidate triples are pruned to
/// those spanning <= 3 nodes. `max_triples` caps the work (negative:
/// unlimited); when the cap triggers, counts are an unbiased prefix sample
/// (the benches keep inputs small enough that the cap never triggers).
MotifCensus CountTemporalMotifs(const graphs::TemporalGraph& g, int delta,
                                int64_t max_triples = -1);

/// Reference O(m^3) enumerator over all edge triples; used by tests to
/// cross-validate CountTemporalMotifs on small graphs.
MotifCensus CountTemporalMotifsBruteForce(const graphs::TemporalGraph& g,
                                          int delta);

/// Normalizes a census into a distribution over the union of classes
/// appearing in `classes` (probabilities sum to 1 unless the census is
/// empty).
std::vector<double> MotifDistribution(const MotifCensus& census,
                                      const std::vector<MotifCode>& classes);

/// Union of class codes of several censuses (sorted).
std::vector<MotifCode> UnionClasses(const std::vector<const MotifCensus*>& cs);

/// Total variation distance between two distributions on the same support.
double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q);

/// Gaussian kernel on a TV distance: exp(-tv^2 / (2 sigma^2)).
double GaussianTvKernel(double tv, double sigma);

/// Squared maximum mean discrepancy between two *sets* of distributions
/// with the Gaussian-TV kernel (paper Eq. 1). With singleton sets this is
/// 2 - 2 k(TV(p,q)).
double MmdSquared(const std::vector<std::vector<double>>& set_p,
                  const std::vector<std::vector<double>>& set_q,
                  double sigma);

/// End-to-end motif-distribution MMD between an observed and a generated
/// temporal graph (the quantity of the paper's Table VI).
double MotifMmd(const graphs::TemporalGraph& real,
                const graphs::TemporalGraph& generated, int delta,
                double sigma = 1.0, int64_t max_triples = -1);

}  // namespace tgsim::metrics

#endif  // TGSIM_METRICS_MOTIFS_H_
