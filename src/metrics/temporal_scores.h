#ifndef TGSIM_METRICS_TEMPORAL_SCORES_H_
#define TGSIM_METRICS_TEMPORAL_SCORES_H_

#include <vector>

#include "graph/temporal_graph.h"
#include "metrics/graph_stats.h"

namespace tgsim::metrics {

/// Relative difference |real - gen| / |real| with a zero-denominator guard
/// (the per-timestamp term of the paper's Eq. 10).
double RelativeError(double real, double generated);

/// Value of metric `m` on the accumulated snapshot at every timestamp.
/// `stride` > 1 evaluates a subsampled timestamp grid (always including the
/// final timestamp) to bound cost on long histories.
std::vector<double> MetricOverTime(const graphs::TemporalGraph& g,
                                   GraphMetric m, int stride = 1);

/// All seven metrics per timestamp in one pass over snapshots; result
/// [i][j] is metric AllGraphMetrics()[j] at evaluated timestamp i.
std::vector<GraphStats> StatsOverTime(const graphs::TemporalGraph& g,
                                      int stride = 1);

/// f_avg / f_med of Eq. 10: mean/median over timestamps of the relative
/// metric difference between accumulated snapshots of the two graphs.
/// Both graphs must share num_timestamps.
struct TemporalScore {
  double avg = 0.0;
  double med = 0.0;
};

TemporalScore ScoreMetric(const graphs::TemporalGraph& real,
                          const graphs::TemporalGraph& generated,
                          GraphMetric m, int stride = 1);

/// Scores all seven metrics with a single snapshot sweep per graph.
/// Result is indexed like AllGraphMetrics().
std::vector<TemporalScore> ScoreAllMetrics(
    const graphs::TemporalGraph& real,
    const graphs::TemporalGraph& generated, int stride = 1);

}  // namespace tgsim::metrics

#endif  // TGSIM_METRICS_TEMPORAL_SCORES_H_
