#ifndef TGSIM_METRICS_DEGREE_MMD_H_
#define TGSIM_METRICS_DEGREE_MMD_H_

#include <vector>

#include "graph/temporal_graph.h"

namespace tgsim::metrics {

/// Normalized degree histogram of an accumulated snapshot (GraphRNN-style).
/// Bucket i holds the fraction of non-isolated nodes with degree i; the
/// histogram is truncated/padded to `max_degree + 1` buckets with the tail
/// mass folded into the last bucket.
std::vector<double> DegreeHistogram(const graphs::StaticGraph& g,
                                    int max_degree);

/// GraphRNN-style degree-distribution MMD between two temporal graphs:
/// each timestamp's accumulated snapshot contributes one histogram sample,
/// and the two sample sets are compared with the Gaussian-TV kernel
/// (metrics::MmdSquared). A complementary quality signal to the temporal
/// motif MMD of the paper's Table VI.
double DegreeMmd(const graphs::TemporalGraph& real,
                 const graphs::TemporalGraph& generated,
                 double sigma = 1.0, int max_degree = 64, int stride = 1);

}  // namespace tgsim::metrics

#endif  // TGSIM_METRICS_DEGREE_MMD_H_
