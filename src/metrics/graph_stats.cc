#include "metrics/graph_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tgsim::metrics {

const std::vector<GraphMetric>& AllGraphMetrics() {
  static const std::vector<GraphMetric>* kAll = new std::vector<GraphMetric>{
      GraphMetric::kMeanDegree,    GraphMetric::kLcc,
      GraphMetric::kWedgeCount,    GraphMetric::kClawCount,
      GraphMetric::kTriangleCount, GraphMetric::kPle,
      GraphMetric::kNComponents};
  return *kAll;
}

std::string MetricName(GraphMetric m) {
  switch (m) {
    case GraphMetric::kMeanDegree:
      return "Mean Degree";
    case GraphMetric::kLcc:
      return "LCC";
    case GraphMetric::kWedgeCount:
      return "Wedge Count";
    case GraphMetric::kClawCount:
      return "Claw Count";
    case GraphMetric::kTriangleCount:
      return "Triangle Count";
    case GraphMetric::kPle:
      return "PLE";
    case GraphMetric::kNComponents:
      return "N-Components";
  }
  return "Unknown";
}

double GraphStats::Get(GraphMetric m) const {
  switch (m) {
    case GraphMetric::kMeanDegree:
      return mean_degree;
    case GraphMetric::kLcc:
      return lcc;
    case GraphMetric::kWedgeCount:
      return wedge_count;
    case GraphMetric::kClawCount:
      return claw_count;
    case GraphMetric::kTriangleCount:
      return triangle_count;
    case GraphMetric::kPle:
      return ple;
    case GraphMetric::kNComponents:
      return n_components;
  }
  return 0.0;
}

int64_t TriangleCount(const graphs::StaticGraph& g) {
  // For each edge (u,v) with u<v, count common neighbors w>v; each triangle
  // is found exactly once at its lexicographically smallest edge.
  int64_t triangles = 0;
  for (graphs::NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nu = g.Neighbors(u);
    for (graphs::NodeId v : nu) {
      if (v <= u) continue;
      auto nv = g.Neighbors(v);
      // Two-pointer intersection over sorted lists, counting w > v.
      auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
      auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++triangles;
          ++iu;
          ++iv;
        }
      }
    }
  }
  return triangles;
}

double PowerLawExponent(const graphs::StaticGraph& g) {
  int64_t n = 0;
  int d_min = INT32_MAX;
  for (graphs::NodeId u = 0; u < g.num_nodes(); ++u) {
    int d = g.Degree(u);
    if (d > 0) {
      ++n;
      d_min = std::min(d_min, d);
    }
  }
  if (n == 0) return 0.0;
  double log_sum = 0.0;
  for (graphs::NodeId u = 0; u < g.num_nodes(); ++u) {
    int d = g.Degree(u);
    if (d > 0) log_sum += std::log(static_cast<double>(d) / d_min);
  }
  if (log_sum <= 1e-12) return 1.0;  // Degenerate: all degrees equal d_min.
  return 1.0 + static_cast<double>(n) / log_sum;
}

GraphStats ComputeAllStats(const graphs::StaticGraph& g) {
  GraphStats s;
  const int n = g.num_nodes();

  double wedge = 0.0, claw = 0.0;
  int64_t degree_sum = 0;
  int64_t active_nodes = 0;
  for (graphs::NodeId u = 0; u < n; ++u) {
    double d = g.Degree(u);
    degree_sum += g.Degree(u);
    if (d > 0) ++active_nodes;
    wedge += d * (d - 1) / 2.0;
    claw += d * (d - 1) * (d - 2) / 6.0;
  }
  s.mean_degree = active_nodes > 0
                      ? static_cast<double>(degree_sum) / active_nodes
                      : 0.0;
  s.wedge_count = wedge;
  s.claw_count = claw;
  s.triangle_count = static_cast<double>(TriangleCount(g));
  s.ple = PowerLawExponent(g);

  // Components over non-isolated nodes: nodes that have not yet appeared in
  // an accumulated snapshot should not contribute singleton components.
  int num_comp = 0;
  std::vector<int> comp = g.ConnectedComponents(&num_comp);
  std::vector<int64_t> sizes(static_cast<size_t>(num_comp), 0);
  std::vector<bool> active(static_cast<size_t>(num_comp), false);
  for (graphs::NodeId u = 0; u < n; ++u) {
    ++sizes[static_cast<size_t>(comp[u])];
    if (g.Degree(u) > 0) active[static_cast<size_t>(comp[u])] = true;
  }
  int64_t lcc = 0;
  int64_t n_active_comp = 0;
  for (int c = 0; c < num_comp; ++c) {
    if (!active[static_cast<size_t>(c)]) continue;
    ++n_active_comp;
    lcc = std::max(lcc, sizes[static_cast<size_t>(c)]);
  }
  s.lcc = static_cast<double>(lcc);
  s.n_components = static_cast<double>(n_active_comp);
  return s;
}

double ComputeMetric(const graphs::StaticGraph& g, GraphMetric m) {
  return ComputeAllStats(g).Get(m);
}

}  // namespace tgsim::metrics
