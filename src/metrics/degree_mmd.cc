#include "metrics/degree_mmd.h"

#include <algorithm>

#include "common/check.h"
#include "metrics/motifs.h"
#include "parallel/parallel_for.h"

namespace tgsim::metrics {

std::vector<double> DegreeHistogram(const graphs::StaticGraph& g,
                                    int max_degree) {
  TGSIM_CHECK_GE(max_degree, 1);
  std::vector<double> hist(static_cast<size_t>(max_degree) + 1, 0.0);
  int64_t active = 0;
  for (graphs::NodeId u = 0; u < g.num_nodes(); ++u) {
    int d = g.Degree(u);
    if (d == 0) continue;
    ++active;
    hist[static_cast<size_t>(std::min(d, max_degree))] += 1.0;
  }
  if (active > 0)
    for (double& h : hist) h /= static_cast<double>(active);
  return hist;
}

double DegreeMmd(const graphs::TemporalGraph& real,
                 const graphs::TemporalGraph& generated, double sigma,
                 int max_degree, int stride) {
  TGSIM_CHECK_EQ(real.num_timestamps(), generated.num_timestamps());
  TGSIM_CHECK_GE(stride, 1);
  std::vector<graphs::Timestamp> ts;
  for (graphs::Timestamp t = 0; t < real.num_timestamps(); t += stride)
    ts.push_back(t);
  // Each evaluated timestamp builds two independent snapshot histograms
  // into its own preassigned slot — embarrassingly parallel and
  // bit-identical for any thread count.
  std::vector<std::vector<double>> set_real(ts.size()), set_gen(ts.size());
  parallel::ParallelFor(
      0, static_cast<int64_t>(ts.size()), 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          const graphs::Timestamp t = ts[static_cast<size_t>(i)];
          set_real[static_cast<size_t>(i)] =
              DegreeHistogram(real.SnapshotUpTo(t), max_degree);
          set_gen[static_cast<size_t>(i)] =
              DegreeHistogram(generated.SnapshotUpTo(t), max_degree);
        }
      });
  return MmdSquared(set_real, set_gen, sigma);
}

}  // namespace tgsim::metrics
