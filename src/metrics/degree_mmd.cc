#include "metrics/degree_mmd.h"

#include <algorithm>

#include "common/check.h"
#include "metrics/motifs.h"

namespace tgsim::metrics {

std::vector<double> DegreeHistogram(const graphs::StaticGraph& g,
                                    int max_degree) {
  TGSIM_CHECK_GE(max_degree, 1);
  std::vector<double> hist(static_cast<size_t>(max_degree) + 1, 0.0);
  int64_t active = 0;
  for (graphs::NodeId u = 0; u < g.num_nodes(); ++u) {
    int d = g.Degree(u);
    if (d == 0) continue;
    ++active;
    hist[static_cast<size_t>(std::min(d, max_degree))] += 1.0;
  }
  if (active > 0)
    for (double& h : hist) h /= static_cast<double>(active);
  return hist;
}

double DegreeMmd(const graphs::TemporalGraph& real,
                 const graphs::TemporalGraph& generated, double sigma,
                 int max_degree, int stride) {
  TGSIM_CHECK_EQ(real.num_timestamps(), generated.num_timestamps());
  TGSIM_CHECK_GE(stride, 1);
  std::vector<std::vector<double>> set_real, set_gen;
  for (graphs::Timestamp t = 0; t < real.num_timestamps(); t += stride) {
    set_real.push_back(DegreeHistogram(real.SnapshotUpTo(t), max_degree));
    set_gen.push_back(
        DegreeHistogram(generated.SnapshotUpTo(t), max_degree));
  }
  return MmdSquared(set_real, set_gen, sigma);
}

}  // namespace tgsim::metrics
