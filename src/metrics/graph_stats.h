#ifndef TGSIM_METRICS_GRAPH_STATS_H_
#define TGSIM_METRICS_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/static_graph.h"

namespace tgsim::metrics {

/// The seven graph statistics of the paper's Table III.
enum class GraphMetric {
  kMeanDegree,
  kLcc,            // size of the largest connected component
  kWedgeCount,     // sum_v C(d(v), 2)
  kClawCount,      // sum_v C(d(v), 3)
  kTriangleCount,  // trace(A^3) / 6
  kPle,            // power-law exponent (Hill estimator)
  kNComponents,    // number of connected components
};

/// All Table III metrics, in the order used by the paper's tables.
const std::vector<GraphMetric>& AllGraphMetrics();

/// Human-readable metric name (matches the paper's rows).
std::string MetricName(GraphMetric m);

/// Computes one statistic on an accumulated snapshot.
double ComputeMetric(const graphs::StaticGraph& g, GraphMetric m);

/// Bundle of all seven statistics computed in one pass.
struct GraphStats {
  double mean_degree = 0.0;
  double lcc = 0.0;
  double wedge_count = 0.0;
  double claw_count = 0.0;
  double triangle_count = 0.0;
  double ple = 0.0;
  double n_components = 0.0;

  double Get(GraphMetric m) const;
};

GraphStats ComputeAllStats(const graphs::StaticGraph& g);

/// Exact triangle count by sorted-adjacency intersection,
/// equivalent to trace(A^3)/6 on the simple undirected graph.
int64_t TriangleCount(const graphs::StaticGraph& g);

/// Hill estimator of the power-law exponent over non-isolated nodes:
/// 1 + n * (sum_v log(d(v)/d_min))^{-1} (paper Table III).
double PowerLawExponent(const graphs::StaticGraph& g);

}  // namespace tgsim::metrics

#endif  // TGSIM_METRICS_GRAPH_STATS_H_
