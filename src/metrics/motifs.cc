#include "metrics/motifs.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "parallel/parallel_for.h"

namespace tgsim::metrics {

namespace {

/// Relabels the six endpoints by order of first appearance and packs them.
MotifCode Canonicalize(graphs::NodeId a1, graphs::NodeId b1,
                       graphs::NodeId a2, graphs::NodeId b2,
                       graphs::NodeId a3, graphs::NodeId b3) {
  graphs::NodeId raw[6] = {a1, b1, a2, b2, a3, b3};
  graphs::NodeId seen[3] = {-1, -1, -1};
  int next = 0;
  int labels[6];
  for (int i = 0; i < 6; ++i) {
    int lab = -1;
    for (int j = 0; j < next; ++j) {
      if (seen[j] == raw[i]) {
        lab = j;
        break;
      }
    }
    if (lab == -1) {
      TGSIM_CHECK_LT(next, 3);
      seen[next] = raw[i];
      lab = next++;
    }
    labels[i] = lab;
  }
  return EncodeMotif(labels[0], labels[1], labels[2], labels[3], labels[4],
                     labels[5]);
}

/// Number of distinct nodes among the six endpoints (<= 3 required).
int DistinctNodes(graphs::NodeId a1, graphs::NodeId b1, graphs::NodeId a2,
                  graphs::NodeId b2, graphs::NodeId a3, graphs::NodeId b3) {
  graphs::NodeId raw[6] = {a1, b1, a2, b2, a3, b3};
  int distinct = 0;
  graphs::NodeId seen[6];
  for (int i = 0; i < 6; ++i) {
    bool found = false;
    for (int j = 0; j < distinct; ++j) {
      if (seen[j] == raw[i]) {
        found = true;
        break;
      }
    }
    if (!found) seen[distinct++] = raw[i];
  }
  return distinct;
}

/// Counts triples whose *anchor* (earliest) edge index lies in
/// [i_begin, i_end); the second/third edges range over the whole stream,
/// exactly like the serial enumeration restricted to those anchors.
/// `cap` <= 0 means unlimited; otherwise counting stops after `cap`
/// triples, in enumeration order.
MotifCensus CountAnchorRange(const std::vector<graphs::TemporalEdge>& edges,
                             int64_t i_begin, int64_t i_end, int delta,
                             int64_t cap) {
  MotifCensus census;
  const int64_t m = static_cast<int64_t>(edges.size());
  for (int64_t i = i_begin; i < i_end; ++i) {
    const auto& e1 = edges[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < m; ++j) {
      const auto& e2 = edges[static_cast<size_t>(j)];
      if (e2.t - e1.t > delta) break;
      // e1,e2 must share at least one node, otherwise no third edge can
      // bring the span down to <= 3 nodes.
      if (DistinctNodes(e1.u, e1.v, e2.u, e2.v, e2.u, e2.v) > 3) continue;
      for (int64_t k = j + 1; k < m; ++k) {
        const auto& e3 = edges[static_cast<size_t>(k)];
        if (e3.t - e1.t > delta) break;
        if (DistinctNodes(e1.u, e1.v, e2.u, e2.v, e3.u, e3.v) > 3) continue;
        ++census.counts[Canonicalize(e1.u, e1.v, e2.u, e2.v, e3.u, e3.v)];
        ++census.total;
        if (cap > 0 && census.total >= cap) return census;
      }
    }
  }
  return census;
}

/// Merges `from` into `to` (count maps add, totals add).
void MergeCensus(MotifCensus& to, const MotifCensus& from) {
  for (const auto& [code, count] : from.counts) to.counts[code] += count;
  to.total += from.total;
}

/// Anchor edges per parallel census chunk. Fixed so the chunk decomposition
/// (and therefore the capped prefix semantics) never depends on the thread
/// count.
constexpr int64_t kCensusGrain = 256;

}  // namespace

MotifCode EncodeMotif(int u1, int v1, int u2, int v2, int u3, int v3) {
  return static_cast<MotifCode>(u1) | (static_cast<MotifCode>(v1) << 2) |
         (static_cast<MotifCode>(u2) << 4) |
         (static_cast<MotifCode>(v2) << 6) |
         (static_cast<MotifCode>(u3) << 8) |
         (static_cast<MotifCode>(v3) << 10);
}

MotifCensus CountTemporalMotifs(const graphs::TemporalGraph& g, int delta,
                                int64_t max_triples) {
  const auto& edges = g.edges();  // Sorted by (t,u,v).
  const int64_t m = static_cast<int64_t>(edges.size());
  if (m == 0) return {};
  // Chunk over anchor-edge ranges; each chunk counts independently (capped
  // at max_triples, the most it could ever contribute), then chunks merge
  // in anchor order against the global budget. A chunk that would
  // overshoot the remaining budget is recounted with that exact budget, so
  // the result matches the serial capped prefix bit for bit — for any
  // thread count. Chunks are scheduled in pool-sized waves so an
  // early-binding cap stops the scan after at most one surplus wave
  // instead of eagerly counting every chunk in the stream; wave size
  // affects only how much speculative work runs, never the merged result.
  const int64_t chunks = parallel::NumChunks(0, m, kCensusGrain);
  const int64_t wave =
      max_triples > 0
          ? std::max<int64_t>(1, 4 * parallel::ThreadPool::GlobalThreads())
          : chunks;
  MotifCensus census;
  for (int64_t c0 = 0; c0 < chunks; c0 += wave) {
    const int64_t c1 = std::min(chunks, c0 + wave);
    std::vector<MotifCensus> parts(static_cast<size_t>(c1 - c0));
    parallel::ParallelFor(c0, c1, 1, [&](int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const int64_t b = c * kCensusGrain;
        parts[static_cast<size_t>(c - c0)] = CountAnchorRange(
            edges, b, std::min(m, b + kCensusGrain), delta, max_triples);
      }
    });
    for (int64_t c = c0; c < c1; ++c) {
      const MotifCensus& part = parts[static_cast<size_t>(c - c0)];
      if (max_triples <= 0) {
        MergeCensus(census, part);
        continue;
      }
      const int64_t remaining = max_triples - census.total;
      if (part.total < remaining) {
        MergeCensus(census, part);
      } else if (part.total == remaining) {
        MergeCensus(census, part);
        return census;  // Exhausted exactly where the serial scan stops.
      } else {
        const int64_t b = c * kCensusGrain;
        MotifCensus tail = CountAnchorRange(
            edges, b, std::min(m, b + kCensusGrain), delta, remaining);
        MergeCensus(census, tail);
        return census;
      }
    }
  }
  return census;
}

MotifCensus CountTemporalMotifsBruteForce(const graphs::TemporalGraph& g,
                                          int delta) {
  MotifCensus census;
  std::vector<graphs::TemporalEdge> edges = g.edges();
  std::sort(edges.begin(), edges.end());
  const int64_t m = static_cast<int64_t>(edges.size());
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = i + 1; j < m; ++j)
      for (int64_t k = j + 1; k < m; ++k) {
        const auto& e1 = edges[static_cast<size_t>(i)];
        const auto& e2 = edges[static_cast<size_t>(j)];
        const auto& e3 = edges[static_cast<size_t>(k)];
        if (e3.t - e1.t > delta) continue;
        if (DistinctNodes(e1.u, e1.v, e2.u, e2.v, e3.u, e3.v) > 3) continue;
        ++census.counts[Canonicalize(e1.u, e1.v, e2.u, e2.v, e3.u, e3.v)];
        ++census.total;
      }
  return census;
}

std::vector<double> MotifDistribution(const MotifCensus& census,
                                      const std::vector<MotifCode>& classes) {
  std::vector<double> dist(classes.size(), 0.0);
  if (census.total == 0) return dist;
  for (size_t i = 0; i < classes.size(); ++i) {
    auto it = census.counts.find(classes[i]);
    if (it != census.counts.end())
      dist[i] = static_cast<double>(it->second) /
                static_cast<double>(census.total);
  }
  return dist;
}

std::vector<MotifCode> UnionClasses(
    const std::vector<const MotifCensus*>& cs) {
  std::set<MotifCode> all;
  for (const MotifCensus* c : cs)
    for (const auto& [code, count] : c->counts) all.insert(code);
  return {all.begin(), all.end()};
}

double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q) {
  TGSIM_CHECK_EQ(p.size(), q.size());
  double tv = 0.0;
  for (size_t i = 0; i < p.size(); ++i) tv += std::fabs(p[i] - q[i]);
  return 0.5 * tv;
}

double GaussianTvKernel(double tv, double sigma) {
  return std::exp(-(tv * tv) / (2.0 * sigma * sigma));
}

double MmdSquared(const std::vector<std::vector<double>>& set_p,
                  const std::vector<std::vector<double>>& set_q,
                  double sigma) {
  TGSIM_CHECK(!set_p.empty());
  TGSIM_CHECK(!set_q.empty());
  // Kernel-matrix accumulation over the flattened pair grid. Fixed-grain
  // chunks with in-order combination keep the floating-point association —
  // and therefore the score — identical for any thread count.
  constexpr int64_t kPairGrain = 16;
  auto mean_kernel = [sigma](const std::vector<std::vector<double>>& a,
                             const std::vector<std::vector<double>>& b) {
    const int64_t nb = static_cast<int64_t>(b.size());
    const int64_t pairs = static_cast<int64_t>(a.size()) * nb;
    double acc = parallel::ParallelReduce<double>(
        0, pairs, kPairGrain, 0.0,
        [&](int64_t p0, int64_t p1) {
          double s = 0.0;
          for (int64_t p = p0; p < p1; ++p) {
            const auto& x = a[static_cast<size_t>(p / nb)];
            const auto& y = b[static_cast<size_t>(p % nb)];
            s += GaussianTvKernel(TotalVariation(x, y), sigma);
          }
          return s;
        },
        [](double lhs, double rhs) { return lhs + rhs; });
    return acc / (static_cast<double>(a.size()) * static_cast<double>(nb));
  };
  double mmd2 = mean_kernel(set_p, set_p) + mean_kernel(set_q, set_q) -
                2.0 * mean_kernel(set_p, set_q);
  return std::max(mmd2, 0.0);  // Clamp tiny negative floating-point drift.
}

double MotifMmd(const graphs::TemporalGraph& real,
                const graphs::TemporalGraph& generated, int delta,
                double sigma, int64_t max_triples) {
  MotifCensus cr = CountTemporalMotifs(real, delta, max_triples);
  MotifCensus cg = CountTemporalMotifs(generated, delta, max_triples);
  std::vector<MotifCode> classes = UnionClasses({&cr, &cg});
  if (classes.empty()) return 0.0;
  std::vector<double> p = MotifDistribution(cr, classes);
  std::vector<double> q = MotifDistribution(cg, classes);
  return MmdSquared({p}, {q}, sigma);
}

}  // namespace tgsim::metrics
