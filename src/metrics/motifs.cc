#include "metrics/motifs.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"

namespace tgsim::metrics {

namespace {

/// Relabels the six endpoints by order of first appearance and packs them.
MotifCode Canonicalize(graphs::NodeId a1, graphs::NodeId b1,
                       graphs::NodeId a2, graphs::NodeId b2,
                       graphs::NodeId a3, graphs::NodeId b3) {
  graphs::NodeId raw[6] = {a1, b1, a2, b2, a3, b3};
  graphs::NodeId seen[3] = {-1, -1, -1};
  int next = 0;
  int labels[6];
  for (int i = 0; i < 6; ++i) {
    int lab = -1;
    for (int j = 0; j < next; ++j) {
      if (seen[j] == raw[i]) {
        lab = j;
        break;
      }
    }
    if (lab == -1) {
      TGSIM_CHECK_LT(next, 3);
      seen[next] = raw[i];
      lab = next++;
    }
    labels[i] = lab;
  }
  return EncodeMotif(labels[0], labels[1], labels[2], labels[3], labels[4],
                     labels[5]);
}

/// Number of distinct nodes among the six endpoints (<= 3 required).
int DistinctNodes(graphs::NodeId a1, graphs::NodeId b1, graphs::NodeId a2,
                  graphs::NodeId b2, graphs::NodeId a3, graphs::NodeId b3) {
  graphs::NodeId raw[6] = {a1, b1, a2, b2, a3, b3};
  int distinct = 0;
  graphs::NodeId seen[6];
  for (int i = 0; i < 6; ++i) {
    bool found = false;
    for (int j = 0; j < distinct; ++j) {
      if (seen[j] == raw[i]) {
        found = true;
        break;
      }
    }
    if (!found) seen[distinct++] = raw[i];
  }
  return distinct;
}

}  // namespace

MotifCode EncodeMotif(int u1, int v1, int u2, int v2, int u3, int v3) {
  return static_cast<MotifCode>(u1) | (static_cast<MotifCode>(v1) << 2) |
         (static_cast<MotifCode>(u2) << 4) |
         (static_cast<MotifCode>(v2) << 6) |
         (static_cast<MotifCode>(u3) << 8) |
         (static_cast<MotifCode>(v3) << 10);
}

MotifCensus CountTemporalMotifs(const graphs::TemporalGraph& g, int delta,
                                int64_t max_triples) {
  MotifCensus census;
  const auto& edges = g.edges();  // Sorted by (t,u,v).
  const int64_t m = static_cast<int64_t>(edges.size());
  int64_t examined = 0;
  for (int64_t i = 0; i < m; ++i) {
    const auto& e1 = edges[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < m; ++j) {
      const auto& e2 = edges[static_cast<size_t>(j)];
      if (e2.t - e1.t > delta) break;
      // e1,e2 must share at least one node, otherwise no third edge can
      // bring the span down to <= 3 nodes.
      if (DistinctNodes(e1.u, e1.v, e2.u, e2.v, e2.u, e2.v) > 3) continue;
      for (int64_t k = j + 1; k < m; ++k) {
        const auto& e3 = edges[static_cast<size_t>(k)];
        if (e3.t - e1.t > delta) break;
        if (DistinctNodes(e1.u, e1.v, e2.u, e2.v, e3.u, e3.v) > 3) continue;
        ++census.counts[Canonicalize(e1.u, e1.v, e2.u, e2.v, e3.u, e3.v)];
        ++census.total;
        if (max_triples > 0 && ++examined >= max_triples) return census;
      }
    }
  }
  return census;
}

MotifCensus CountTemporalMotifsBruteForce(const graphs::TemporalGraph& g,
                                          int delta) {
  MotifCensus census;
  std::vector<graphs::TemporalEdge> edges = g.edges();
  std::sort(edges.begin(), edges.end());
  const int64_t m = static_cast<int64_t>(edges.size());
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = i + 1; j < m; ++j)
      for (int64_t k = j + 1; k < m; ++k) {
        const auto& e1 = edges[static_cast<size_t>(i)];
        const auto& e2 = edges[static_cast<size_t>(j)];
        const auto& e3 = edges[static_cast<size_t>(k)];
        if (e3.t - e1.t > delta) continue;
        if (DistinctNodes(e1.u, e1.v, e2.u, e2.v, e3.u, e3.v) > 3) continue;
        ++census.counts[Canonicalize(e1.u, e1.v, e2.u, e2.v, e3.u, e3.v)];
        ++census.total;
      }
  return census;
}

std::vector<double> MotifDistribution(const MotifCensus& census,
                                      const std::vector<MotifCode>& classes) {
  std::vector<double> dist(classes.size(), 0.0);
  if (census.total == 0) return dist;
  for (size_t i = 0; i < classes.size(); ++i) {
    auto it = census.counts.find(classes[i]);
    if (it != census.counts.end())
      dist[i] = static_cast<double>(it->second) /
                static_cast<double>(census.total);
  }
  return dist;
}

std::vector<MotifCode> UnionClasses(
    const std::vector<const MotifCensus*>& cs) {
  std::set<MotifCode> all;
  for (const MotifCensus* c : cs)
    for (const auto& [code, count] : c->counts) all.insert(code);
  return {all.begin(), all.end()};
}

double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q) {
  TGSIM_CHECK_EQ(p.size(), q.size());
  double tv = 0.0;
  for (size_t i = 0; i < p.size(); ++i) tv += std::fabs(p[i] - q[i]);
  return 0.5 * tv;
}

double GaussianTvKernel(double tv, double sigma) {
  return std::exp(-(tv * tv) / (2.0 * sigma * sigma));
}

double MmdSquared(const std::vector<std::vector<double>>& set_p,
                  const std::vector<std::vector<double>>& set_q,
                  double sigma) {
  TGSIM_CHECK(!set_p.empty());
  TGSIM_CHECK(!set_q.empty());
  auto mean_kernel = [sigma](const std::vector<std::vector<double>>& a,
                             const std::vector<std::vector<double>>& b) {
    double acc = 0.0;
    for (const auto& x : a)
      for (const auto& y : b)
        acc += GaussianTvKernel(TotalVariation(x, y), sigma);
    return acc / (static_cast<double>(a.size()) * b.size());
  };
  double mmd2 = mean_kernel(set_p, set_p) + mean_kernel(set_q, set_q) -
                2.0 * mean_kernel(set_p, set_q);
  return std::max(mmd2, 0.0);  // Clamp tiny negative floating-point drift.
}

double MotifMmd(const graphs::TemporalGraph& real,
                const graphs::TemporalGraph& generated, int delta,
                double sigma, int64_t max_triples) {
  MotifCensus cr = CountTemporalMotifs(real, delta, max_triples);
  MotifCensus cg = CountTemporalMotifs(generated, delta, max_triples);
  std::vector<MotifCode> classes = UnionClasses({&cr, &cg});
  if (classes.empty()) return 0.0;
  std::vector<double> p = MotifDistribution(cr, classes);
  std::vector<double> q = MotifDistribution(cg, classes);
  return MmdSquared({p}, {q}, sigma);
}

}  // namespace tgsim::metrics
