#include "metrics/temporal_scores.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tgsim::metrics {

namespace {

/// Timestamps to evaluate for a given stride (always includes T-1).
std::vector<graphs::Timestamp> EvalGrid(int num_timestamps, int stride) {
  TGSIM_CHECK_GE(stride, 1);
  std::vector<graphs::Timestamp> ts;
  for (int t = 0; t < num_timestamps; t += stride) ts.push_back(t);
  if (ts.empty() || ts.back() != num_timestamps - 1)
    ts.push_back(num_timestamps - 1);
  return ts;
}

double Median(std::vector<double> xs) {
  TGSIM_CHECK(!xs.empty());
  size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return 0.5 * (lo + hi);
}

}  // namespace

double RelativeError(double real, double generated) {
  double denom = std::fabs(real);
  if (denom < 1e-12) {
    // Both (near) zero: no error; otherwise full error mass.
    return std::fabs(generated) < 1e-12 ? 0.0 : 1.0;
  }
  return std::fabs(real - generated) / denom;
}

std::vector<double> MetricOverTime(const graphs::TemporalGraph& g,
                                   GraphMetric m, int stride) {
  std::vector<double> out;
  for (graphs::Timestamp t : EvalGrid(g.num_timestamps(), stride))
    out.push_back(ComputeMetric(g.SnapshotUpTo(t), m));
  return out;
}

std::vector<GraphStats> StatsOverTime(const graphs::TemporalGraph& g,
                                      int stride) {
  std::vector<GraphStats> out;
  for (graphs::Timestamp t : EvalGrid(g.num_timestamps(), stride))
    out.push_back(ComputeAllStats(g.SnapshotUpTo(t)));
  return out;
}

TemporalScore ScoreMetric(const graphs::TemporalGraph& real,
                          const graphs::TemporalGraph& generated,
                          GraphMetric m, int stride) {
  TGSIM_CHECK_EQ(real.num_timestamps(), generated.num_timestamps());
  std::vector<double> r = MetricOverTime(real, m, stride);
  std::vector<double> g = MetricOverTime(generated, m, stride);
  std::vector<double> errs(r.size());
  for (size_t i = 0; i < r.size(); ++i) errs[i] = RelativeError(r[i], g[i]);
  TemporalScore s;
  double sum = 0.0;
  for (double e : errs) sum += e;
  s.avg = sum / static_cast<double>(errs.size());
  s.med = Median(errs);
  return s;
}

std::vector<TemporalScore> ScoreAllMetrics(
    const graphs::TemporalGraph& real,
    const graphs::TemporalGraph& generated, int stride) {
  TGSIM_CHECK_EQ(real.num_timestamps(), generated.num_timestamps());
  std::vector<GraphStats> sr = StatsOverTime(real, stride);
  std::vector<GraphStats> sg = StatsOverTime(generated, stride);
  TGSIM_CHECK_EQ(sr.size(), sg.size());
  const auto& all = AllGraphMetrics();
  std::vector<TemporalScore> scores(all.size());
  for (size_t mi = 0; mi < all.size(); ++mi) {
    std::vector<double> errs(sr.size());
    for (size_t i = 0; i < sr.size(); ++i)
      errs[i] = RelativeError(sr[i].Get(all[mi]), sg[i].Get(all[mi]));
    double sum = 0.0;
    for (double e : errs) sum += e;
    scores[mi].avg = sum / static_cast<double>(errs.size());
    scores[mi].med = Median(errs);
  }
  return scores;
}

}  // namespace tgsim::metrics
