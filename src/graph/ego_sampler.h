#ifndef TGSIM_GRAPH_EGO_SAMPLER_H_
#define TGSIM_GRAPH_EGO_SAMPLER_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/temporal_graph.h"
#include "graph/types.h"
#include "sampling/samplers.h"

namespace tgsim::graphs {

/// Hyper-parameters of the paper's Algorithm 1 and Def. 3/4.
struct EgoGraphConfig {
  /// k — the ego-graph radius; the encoder stacks k TGAT layers.
  int radius = 2;
  /// th — neighbor truncation threshold. When a node's temporal
  /// neighborhood exceeds it, `th` neighbors are drawn with replacement
  /// (so the sampled set may be smaller than th). Setting this to 1 yields
  /// the random-walk variant TGAE-g; <= 0 disables truncation (TGAE-t).
  int neighbor_threshold = 20;
  /// t_N — time-window radius around the center's timestamp (Def. 3).
  int time_window = 2;
};

/// A sampled k-radius temporal ego-graph (paper Def. 4).
///
/// Nodes are temporal node occurrences; index 0 is always the center.
/// `edges` are index pairs (parent, child) pointing into `nodes`, oriented
/// away from the center (parent is one hop closer to the center).
/// `depth[i]` is the hop distance of nodes[i] from the center.
struct EgoGraph {
  TemporalNodeRef center;
  std::vector<TemporalNodeRef> nodes;
  std::vector<std::pair<int, int>> edges;
  std::vector<int> depth;

  int size() const { return static_cast<int>(nodes.size()); }
};

/// Samples k-radius temporal ego-graphs (paper Algorithm 1).
class EgoGraphSampler {
 public:
  EgoGraphSampler(const TemporalGraph* graph, EgoGraphConfig config)
      : graph_(graph), config_(config) {
    TGSIM_CHECK(graph != nullptr);
    TGSIM_CHECK(graph->finalized());
    TGSIM_CHECK_GE(config.radius, 1);
  }

  /// Samples the ego-graph rooted at `center`.
  EgoGraph Sample(TemporalNodeRef center, Rng& rng) const;

  const EgoGraphConfig& config() const { return config_; }

 private:
  /// Paper's NodeSampling: keeps the whole set if within the threshold,
  /// otherwise draws `threshold` samples with replacement (dedup'd).
  std::vector<TemporalNeighbor> SampleNeighbors(
      const std::vector<TemporalNeighbor>& all, Rng& rng) const;

  const TemporalGraph* graph_;
  EgoGraphConfig config_;
};

/// Degree-proportional initial temporal node sampler (paper Eq. 2): picks
/// n_s temporal nodes with probability proportional to their temporal
/// degree; with `uniform` set it degenerates to uniform sampling over node
/// occurrences (the TGAE-n ablation variant).
///
/// The degree distribution is fixed at construction, so the sampler builds
/// a `sampling::AliasTable` once and every draw is O(1) — this sits on the
/// per-walk path of TIGGER/TagGen generation, which previously paid an
/// O(occurrences) CDF rebuild per Sample call.
class InitialNodeSampler {
 public:
  InitialNodeSampler(const TemporalGraph* graph, int time_window,
                     bool uniform = false);

  /// Rebuilds a sampler from a previously extracted distribution
  /// (occurrences() / weights()): the serialization path of the fitted
  /// generators. Sampling from the rebuilt sampler is bit-identical to
  /// the graph-built original. Sizes must match and weights must carry
  /// positive total mass unless `uniform` is set.
  InitialNodeSampler(std::vector<TemporalNodeRef> occurrences,
                     std::vector<double> weights, bool uniform = false);

  /// Like the data constructor, but adopts an alias table restored from an
  /// artifact (serialize::ReadAliasTable) instead of rebuilding it. The
  /// table's size must match the occurrence count.
  InitialNodeSampler(std::vector<TemporalNodeRef> occurrences,
                     std::vector<double> weights,
                     sampling::AliasTable table);

  /// Draws n_s temporal nodes (with replacement across draws).
  std::vector<TemporalNodeRef> Sample(int n_s, Rng& rng) const;

  /// All distinct temporal nodes (node occurrences) of the graph.
  const std::vector<TemporalNodeRef>& occurrences() const {
    return occurrences_;
  }

  /// Temporal degree per occurrence (the Eq. 2 sampling weights).
  const std::vector<double>& weights() const { return weights_; }

  /// The alias table behind degree-weighted draws (empty when `uniform`),
  /// exposed so fitted generators can serialize it with the artifact.
  const sampling::AliasTable& alias() const { return alias_; }

 private:
  bool uniform_;
  std::vector<TemporalNodeRef> occurrences_;
  std::vector<double> weights_;  // temporal degree per occurrence
  sampling::AliasTable alias_;   // built once over weights_ (unless uniform)
};

}  // namespace tgsim::graphs

#endif  // TGSIM_GRAPH_EGO_SAMPLER_H_
