#ifndef TGSIM_GRAPH_BINNING_H_
#define TGSIM_GRAPH_BINNING_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"

namespace tgsim::graphs {

/// A raw continuous-time interaction (e.g., a UNIX-epoch contact record).
struct RawEvent {
  NodeId u = 0;
  NodeId v = 0;
  int64_t time = 0;
};

/// Strategy for mapping raw timestamps onto the paper's snapshot grid.
/// The paper (Section III) models temporal graphs as snapshot series but
/// notes the methodology "can support" raw timestamped edge sets — this is
/// that adapter.
enum class BinningStrategy {
  /// Equal-width bins over [min_time, max_time].
  kUniformTime,
  /// Bins hold (approximately) equal numbers of events — robust to bursty
  /// streams where uniform-time bins would be mostly empty.
  kEqualFrequency,
};

/// Result of binning: the snapshot graph plus the bin boundaries, so
/// downstream consumers can map snapshot indices back to real time.
struct BinnedGraph {
  TemporalGraph graph;
  /// boundaries[i] = smallest raw time mapped to snapshot i;
  /// boundaries.size() == num_timestamps.
  std::vector<int64_t> boundaries;
};

/// Bins a raw event stream into `num_timestamps` snapshots.
///
/// Node ids must lie in [0, num_nodes). Events are stably handled:
/// within a bin the TemporalGraph orders edges canonically. Empty input is
/// a checked error; `num_timestamps` must be >= 1.
BinnedGraph BinEvents(const std::vector<RawEvent>& events, int num_nodes,
                      int num_timestamps,
                      BinningStrategy strategy = BinningStrategy::kUniformTime);

}  // namespace tgsim::graphs

#endif  // TGSIM_GRAPH_BINNING_H_
