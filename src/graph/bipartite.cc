#include "graph/bipartite.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace tgsim::graphs {

namespace {

int64_t KeyOf(TemporalNodeRef r) {
  return static_cast<int64_t>(r.node) * 4000037 + r.t;
}

}  // namespace

BipartiteStack BuildBipartiteStack(const std::vector<EgoGraph>& egos,
                                   int radius) {
  TGSIM_CHECK_GE(radius, 1);
  BipartiteStack stack;
  stack.layer_nodes.resize(static_cast<size_t>(radius) + 1);
  stack.layers.resize(static_cast<size_t>(radius));

  // Index maps per layer: temporal node -> position in layer_nodes[l].
  std::vector<std::unordered_map<int64_t, int>> layer_index(
      static_cast<size_t>(radius) + 1);

  auto intern = [&](int layer, TemporalNodeRef node) -> int {
    auto& idx = layer_index[static_cast<size_t>(layer)];
    auto [it, inserted] = idx.try_emplace(
        KeyOf(node), static_cast<int>(stack.layer_nodes[layer].size()));
    if (inserted) stack.layer_nodes[layer].push_back(node);
    return it->second;
  };

  // Pass 1: S_0 = centers.
  stack.center_index.reserve(egos.size());
  for (const EgoGraph& ego : egos)
    stack.center_index.push_back(intern(0, ego.center));

  // Pass 2: layer l must contain every node of layer l-1 (self message
  // path), plus all hop-l nodes of every ego-graph.
  for (int l = 1; l <= radius; ++l) {
    for (const TemporalNodeRef& node : stack.layer_nodes[l - 1])
      intern(l, node);
    for (const EgoGraph& ego : egos) {
      for (int i = 0; i < ego.size(); ++i) {
        if (ego.depth[static_cast<size_t>(i)] == l)
          intern(l, ego.nodes[static_cast<size_t>(i)]);
      }
    }
  }

  // Record where each layer-l node lives inside layer l+1.
  stack.copy_in_next.resize(static_cast<size_t>(radius));
  for (int l = 0; l < radius; ++l) {
    auto& copies = stack.copy_in_next[static_cast<size_t>(l)];
    copies.reserve(stack.layer_nodes[l].size());
    for (const TemporalNodeRef& node : stack.layer_nodes[l])
      copies.push_back(layer_index[static_cast<size_t>(l) + 1].at(KeyOf(node)));
  }

  // Pass 3: edges. An ego edge (parent at depth d, child at depth d+1)
  // becomes a message edge child(S_{d+1}) -> parent(S_d) in layers[d].
  // Self-loops connect each S_d node from its S_{d+1} copy.
  std::vector<std::vector<std::pair<int, int>>> edges(
      static_cast<size_t>(radius));
  for (int l = 0; l < radius; ++l) {
    for (const TemporalNodeRef& node : stack.layer_nodes[l]) {
      auto src_it = layer_index[static_cast<size_t>(l) + 1].find(KeyOf(node));
      TGSIM_CHECK(src_it != layer_index[static_cast<size_t>(l) + 1].end());
      int dst = layer_index[static_cast<size_t>(l)].at(KeyOf(node));
      edges[static_cast<size_t>(l)].emplace_back(src_it->second, dst);
    }
  }
  for (const EgoGraph& ego : egos) {
    for (auto [pi, ci] : ego.edges) {
      int d = ego.depth[static_cast<size_t>(pi)];
      // Ego-graphs may contain non-layered edges (a sampled neighbor that
      // was already discovered at an equal or shallower hop). Only strictly
      // layered edges participate in the bipartite computation graph; the
      // self-loop paths keep everything else reachable.
      if (ego.depth[static_cast<size_t>(ci)] != d + 1) continue;
      if (d >= radius) continue;
      auto& src_map = layer_index[static_cast<size_t>(d) + 1];
      auto& dst_map = layer_index[static_cast<size_t>(d)];
      auto src_it = src_map.find(KeyOf(ego.nodes[static_cast<size_t>(ci)]));
      auto dst_it = dst_map.find(KeyOf(ego.nodes[static_cast<size_t>(pi)]));
      // Parents at depth d>0 were interned into every deeper layer too, but
      // the (src,dst) pair for the message at layer d always exists.
      TGSIM_CHECK(src_it != src_map.end());
      TGSIM_CHECK(dst_it != dst_map.end());
      edges[static_cast<size_t>(d)].emplace_back(src_it->second,
                                                 dst_it->second);
    }
  }

  for (int l = 0; l < radius; ++l) {
    auto& e = edges[static_cast<size_t>(l)];
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
    BipartiteLayer& layer = stack.layers[static_cast<size_t>(l)];
    layer.src.reserve(e.size());
    layer.dst.reserve(e.size());
    for (auto [s, d] : e) {
      layer.src.push_back(s);
      layer.dst.push_back(d);
    }
  }
  return stack;
}

}  // namespace tgsim::graphs
