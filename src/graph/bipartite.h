#ifndef TGSIM_GRAPH_BIPARTITE_H_
#define TGSIM_GRAPH_BIPARTITE_H_

#include <vector>

#include "graph/ego_sampler.h"

namespace tgsim::graphs {

/// One bipartite computation graph: edges from source nodes in layer l+1 to
/// target nodes in layer l (paper Fig. 4). Indices point into the
/// BipartiteStack's layer node lists.
struct BipartiteLayer {
  std::vector<int> src;
  std::vector<int> dst;

  size_t num_edges() const { return src.size(); }
};

/// The k-bipartite computation graph stack built by merging a batch of
/// ego-graphs (paper Section IV.C, "Parallel Ego-graph Training").
///
/// layer_nodes[0] holds the ego-graph centers (set S_0); layer_nodes[l]
/// holds the deduplicated l-order neighborhood union S_l. Self-edges are
/// inserted so information at layer l survives to layer l-1 (the paper adds
/// self-loops to all temporal nodes), which requires S_{l} to also contain
/// every node of S_{l-1}.
struct BipartiteStack {
  std::vector<std::vector<TemporalNodeRef>> layer_nodes;  // size k+1
  std::vector<BipartiteLayer> layers;                     // size k
  /// center_index[i] = index of ego i's center inside layer_nodes[0].
  std::vector<int> center_index;
  /// copy_in_next[l][i] = index of layer_nodes[l][i] inside
  /// layer_nodes[l+1] (always present because S_{l+1} contains S_l); the
  /// encoder uses it to fetch attention queries for target nodes.
  std::vector<std::vector<int>> copy_in_next;  // size k

  int radius() const { return static_cast<int>(layers.size()); }
};

/// Merges a batch of ego-graphs into the layered bipartite representation.
/// The bottom layer (S_k) feeds the first TGAT layer; messages flow
/// S_k -> S_{k-1} -> ... -> S_0.
BipartiteStack BuildBipartiteStack(const std::vector<EgoGraph>& egos,
                                   int radius);

}  // namespace tgsim::graphs

#endif  // TGSIM_GRAPH_BIPARTITE_H_
