#include "graph/temporal_graph.h"

#include <algorithm>

namespace tgsim::graphs {

TemporalGraph::TemporalGraph(int num_nodes, int num_timestamps)
    : num_nodes_(num_nodes), num_timestamps_(num_timestamps) {
  TGSIM_CHECK_GT(num_nodes, 0);
  TGSIM_CHECK_GT(num_timestamps, 0);
}

TemporalGraph TemporalGraph::FromEdges(int num_nodes, int num_timestamps,
                                       std::vector<TemporalEdge> edges) {
  TemporalGraph g(num_nodes, num_timestamps);
  g.edges_ = std::move(edges);
  for (const TemporalEdge& e : g.edges_) {
    TGSIM_CHECK(e.u >= 0 && e.u < num_nodes);
    TGSIM_CHECK(e.v >= 0 && e.v < num_nodes);
    TGSIM_CHECK(e.t >= 0 && e.t < num_timestamps);
  }
  g.Finalize();
  return g;
}

void TemporalGraph::AddEdge(NodeId u, NodeId v, Timestamp t) {
  TGSIM_CHECK(!finalized_);
  TGSIM_DCHECK(u >= 0 && u < num_nodes_);
  TGSIM_DCHECK(v >= 0 && v < num_nodes_);
  TGSIM_DCHECK(t >= 0 && t < num_timestamps_);
  edges_.push_back({u, v, t});
}

void TemporalGraph::Finalize() {
  TGSIM_CHECK(!finalized_);
  std::sort(edges_.begin(), edges_.end());

  // Timestamp offsets for EdgesAt.
  t_offsets_.assign(static_cast<size_t>(num_timestamps_) + 1, 0);
  for (const TemporalEdge& e : edges_) ++t_offsets_[static_cast<size_t>(e.t) + 1];
  for (int t = 0; t < num_timestamps_; ++t)
    t_offsets_[t + 1] += t_offsets_[t];

  // Bidirectional temporal adjacency grouped by node.
  std::vector<int64_t> counts(static_cast<size_t>(num_nodes_) + 1, 0);
  for (const TemporalEdge& e : edges_) {
    ++counts[static_cast<size_t>(e.u) + 1];
    if (e.v != e.u) ++counts[static_cast<size_t>(e.v) + 1];
  }
  adj_offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  for (int i = 0; i < num_nodes_; ++i)
    adj_offsets_[i + 1] = adj_offsets_[i] + counts[static_cast<size_t>(i) + 1];
  adj_.resize(static_cast<size_t>(adj_offsets_[num_nodes_]));
  std::vector<int64_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (const TemporalEdge& e : edges_) {
    adj_[static_cast<size_t>(cursor[e.u]++)] = {e.v, e.t};
    if (e.v != e.u) adj_[static_cast<size_t>(cursor[e.v]++)] = {e.u, e.t};
  }
  for (int u = 0; u < num_nodes_; ++u) {
    std::sort(adj_.begin() + adj_offsets_[u], adj_.begin() + adj_offsets_[u + 1],
              [](const TemporalNeighbor& a, const TemporalNeighbor& b) {
                return a.t < b.t || (a.t == b.t && a.node < b.node);
              });
  }

  // Directed out-adjacency (source -> destinations).
  std::vector<int64_t> out_counts(static_cast<size_t>(num_nodes_) + 1, 0);
  for (const TemporalEdge& e : edges_)
    ++out_counts[static_cast<size_t>(e.u) + 1];
  out_offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  for (int i = 0; i < num_nodes_; ++i)
    out_offsets_[i + 1] =
        out_offsets_[i] + out_counts[static_cast<size_t>(i) + 1];
  out_adj_.resize(static_cast<size_t>(out_offsets_[num_nodes_]));
  std::vector<int64_t> out_cursor(out_offsets_.begin(),
                                  out_offsets_.end() - 1);
  for (const TemporalEdge& e : edges_)
    out_adj_[static_cast<size_t>(out_cursor[e.u]++)] = {e.v, e.t};
  // Edges are already sorted by (t,u,v), so each node's out list is sorted
  // by t; no extra sort needed.
  finalized_ = true;
}

std::span<const TemporalEdge> TemporalGraph::EdgesAt(Timestamp t) const {
  TGSIM_CHECK(finalized_);
  TGSIM_CHECK(t >= 0 && t < num_timestamps_);
  return {edges_.data() + t_offsets_[t],
          static_cast<size_t>(t_offsets_[t + 1] - t_offsets_[t])};
}

std::span<const TemporalNeighbor> TemporalGraph::Neighbors(NodeId u) const {
  TGSIM_CHECK(finalized_);
  return {adj_.data() + adj_offsets_[u],
          static_cast<size_t>(adj_offsets_[u + 1] - adj_offsets_[u])};
}

std::span<const TemporalNeighbor> TemporalGraph::OutNeighbors(
    NodeId u) const {
  TGSIM_CHECK(finalized_);
  return {out_adj_.data() + out_offsets_[u],
          static_cast<size_t>(out_offsets_[u + 1] - out_offsets_[u])};
}

std::vector<TemporalNeighbor> TemporalGraph::OutNeighborhood(
    NodeId u, Timestamp t, int time_window) const {
  auto nbrs = OutNeighbors(u);
  Timestamp lo = static_cast<Timestamp>(t - time_window);
  Timestamp hi = static_cast<Timestamp>(t + time_window);
  auto first = std::lower_bound(
      nbrs.begin(), nbrs.end(), lo,
      [](const TemporalNeighbor& a, Timestamp x) { return a.t < x; });
  auto last = std::upper_bound(
      nbrs.begin(), nbrs.end(), hi,
      [](Timestamp x, const TemporalNeighbor& a) { return x < a.t; });
  return {first, last};
}

std::vector<TemporalNeighbor> TemporalGraph::TemporalNeighborhood(
    NodeId u, Timestamp t, int time_window) const {
  auto nbrs = Neighbors(u);
  // Neighbors are sorted by t; binary search the admissible window.
  Timestamp lo = static_cast<Timestamp>(t - time_window);
  Timestamp hi = static_cast<Timestamp>(t + time_window);
  auto first = std::lower_bound(
      nbrs.begin(), nbrs.end(), lo,
      [](const TemporalNeighbor& a, Timestamp x) { return a.t < x; });
  auto last = std::upper_bound(
      nbrs.begin(), nbrs.end(), hi,
      [](Timestamp x, const TemporalNeighbor& a) { return x < a.t; });
  return {first, last};
}

int64_t TemporalGraph::TemporalDegree(NodeId u, Timestamp t,
                                      int time_window) const {
  auto nbrs = Neighbors(u);
  Timestamp lo = static_cast<Timestamp>(t - time_window);
  Timestamp hi = static_cast<Timestamp>(t + time_window);
  auto first = std::lower_bound(
      nbrs.begin(), nbrs.end(), lo,
      [](const TemporalNeighbor& a, Timestamp x) { return a.t < x; });
  auto last = std::upper_bound(
      nbrs.begin(), nbrs.end(), hi,
      [](Timestamp x, const TemporalNeighbor& a) { return x < a.t; });
  return last - first;
}

int64_t TemporalGraph::NumTemporalNodes() const {
  TGSIM_CHECK(finalized_);
  int64_t count = 0;
  for (int u = 0; u < num_nodes_; ++u) {
    auto nbrs = Neighbors(u);
    Timestamp prev = -1;
    for (const TemporalNeighbor& nb : nbrs) {
      if (nb.t != prev) {
        ++count;
        prev = nb.t;
      }
    }
  }
  return count;
}

StaticGraph TemporalGraph::SnapshotUpTo(Timestamp t) const {
  TGSIM_CHECK(finalized_);
  TGSIM_CHECK(t >= 0 && t < num_timestamps_);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  int64_t end = t_offsets_[t + 1];
  pairs.reserve(static_cast<size_t>(end));
  for (int64_t i = 0; i < end; ++i) pairs.emplace_back(edges_[i].u, edges_[i].v);
  return StaticGraph::FromEdgeList(num_nodes_, pairs);
}

StaticGraph TemporalGraph::SnapshotAt(Timestamp t) const {
  auto span = EdgesAt(t);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(span.size());
  for (const TemporalEdge& e : span) pairs.emplace_back(e.u, e.v);
  return StaticGraph::FromEdgeList(num_nodes_, pairs);
}

std::vector<int64_t> TemporalGraph::EdgesPerTimestamp() const {
  TGSIM_CHECK(finalized_);
  std::vector<int64_t> counts(static_cast<size_t>(num_timestamps_));
  for (int t = 0; t < num_timestamps_; ++t)
    counts[t] = t_offsets_[t + 1] - t_offsets_[t];
  return counts;
}

}  // namespace tgsim::graphs
