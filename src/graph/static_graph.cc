#include "graph/static_graph.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/check.h"

namespace tgsim::graphs {

StaticGraph StaticGraph::FromEdgeList(
    int num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  StaticGraph g;
  g.num_nodes_ = num_nodes;
  // Canonicalize: undirected, no self-loops, dedup.
  std::vector<std::pair<NodeId, NodeId>> canon;
  canon.reserve(edges.size());
  for (auto [u, v] : edges) {
    TGSIM_DCHECK(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    canon.emplace_back(u, v);
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  g.num_edges_ = static_cast<int64_t>(canon.size());

  std::vector<int64_t> counts(static_cast<size_t>(num_nodes) + 1, 0);
  for (auto [u, v] : canon) {
    ++counts[static_cast<size_t>(u) + 1];
    ++counts[static_cast<size_t>(v) + 1];
  }
  g.offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (int i = 0; i < num_nodes; ++i)
    g.offsets_[i + 1] = g.offsets_[i] + counts[static_cast<size_t>(i) + 1];
  g.adj_.resize(static_cast<size_t>(g.offsets_[num_nodes]));
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : canon) {
    g.adj_[static_cast<size_t>(cursor[u]++)] = v;
    g.adj_[static_cast<size_t>(cursor[v]++)] = u;
  }
  for (int u = 0; u < num_nodes; ++u) {
    std::sort(g.adj_.begin() + g.offsets_[u], g.adj_.begin() + g.offsets_[u + 1]);
  }
  return g;
}

bool StaticGraph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<int> StaticGraph::Degrees() const {
  std::vector<int> d(static_cast<size_t>(num_nodes_));
  for (int u = 0; u < num_nodes_; ++u) d[u] = Degree(u);
  return d;
}

std::vector<int> StaticGraph::ConnectedComponents(int* num_components) const {
  std::vector<int> parent(static_cast<size_t>(num_nodes_));
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<int> rank(static_cast<size_t>(num_nodes_), 0);

  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (rank[a] < rank[b]) std::swap(a, b);
    parent[b] = a;
    if (rank[a] == rank[b]) ++rank[a];
  };

  for (int u = 0; u < num_nodes_; ++u)
    for (NodeId v : Neighbors(u))
      if (u < v) unite(u, v);

  std::vector<int> comp(static_cast<size_t>(num_nodes_), -1);
  int next = 0;
  for (int u = 0; u < num_nodes_; ++u) {
    int r = find(u);
    if (comp[r] == -1) comp[r] = next++;
    comp[u] = comp[r];
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

}  // namespace tgsim::graphs
