#include "graph/binning.h"

#include <algorithm>

#include "common/check.h"

namespace tgsim::graphs {

BinnedGraph BinEvents(const std::vector<RawEvent>& events, int num_nodes,
                      int num_timestamps, BinningStrategy strategy) {
  TGSIM_CHECK(!events.empty());
  TGSIM_CHECK_GE(num_timestamps, 1);

  std::vector<int64_t> times;
  times.reserve(events.size());
  for (const RawEvent& e : events) times.push_back(e.time);
  std::sort(times.begin(), times.end());
  const int64_t t_min = times.front();
  const int64_t t_max = times.back();

  // Bin lower boundaries (inclusive).
  std::vector<int64_t> boundaries(static_cast<size_t>(num_timestamps));
  if (strategy == BinningStrategy::kUniformTime) {
    const double width =
        static_cast<double>(t_max - t_min + 1) / num_timestamps;
    for (int b = 0; b < num_timestamps; ++b)
      boundaries[static_cast<size_t>(b)] =
          t_min + static_cast<int64_t>(b * width);
  } else {
    for (int b = 0; b < num_timestamps; ++b) {
      size_t idx = static_cast<size_t>(
          static_cast<double>(b) * static_cast<double>(times.size()) /
          num_timestamps);
      boundaries[static_cast<size_t>(b)] = times[idx];
    }
  }
  // Boundaries must be non-decreasing; de-duplicate runs caused by ties.
  for (int b = 1; b < num_timestamps; ++b)
    boundaries[static_cast<size_t>(b)] = std::max(
        boundaries[static_cast<size_t>(b)], boundaries[static_cast<size_t>(b) - 1]);

  auto bin_of = [&](int64_t time) {
    // Last boundary <= time.
    auto it = std::upper_bound(boundaries.begin(), boundaries.end(), time);
    int b = static_cast<int>(it - boundaries.begin()) - 1;
    return std::clamp(b, 0, num_timestamps - 1);
  };

  TemporalGraph g(num_nodes, num_timestamps);
  for (const RawEvent& e : events) {
    TGSIM_CHECK(e.u >= 0 && e.u < num_nodes);
    TGSIM_CHECK(e.v >= 0 && e.v < num_nodes);
    g.AddEdge(e.u, e.v, static_cast<Timestamp>(bin_of(e.time)));
  }
  g.Finalize();
  return BinnedGraph{std::move(g), std::move(boundaries)};
}

}  // namespace tgsim::graphs
