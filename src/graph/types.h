#ifndef TGSIM_GRAPH_TYPES_H_
#define TGSIM_GRAPH_TYPES_H_

#include <cstdint>
#include <tuple>

namespace tgsim::graphs {

/// Node identifier in [0, num_nodes).
using NodeId = int32_t;
/// Discrete timestamp in [0, num_timestamps) — the paper models the
/// temporal graph as a series of snapshots G_1..G_T.
using Timestamp = int32_t;

/// A directed timestamped interaction (u -> v at time t).
struct TemporalEdge {
  NodeId u = 0;
  NodeId v = 0;
  Timestamp t = 0;

  friend bool operator==(const TemporalEdge& a, const TemporalEdge& b) {
    return a.u == b.u && a.v == b.v && a.t == b.t;
  }
  friend bool operator<(const TemporalEdge& a, const TemporalEdge& b) {
    return std::tie(a.t, a.u, a.v) < std::tie(b.t, b.u, b.v);
  }
};

/// A temporal node v^t (paper Def. 1): a node occurrence at a timestamp.
struct TemporalNodeRef {
  NodeId node = 0;
  Timestamp t = 0;

  friend bool operator==(const TemporalNodeRef& a, const TemporalNodeRef& b) {
    return a.node == b.node && a.t == b.t;
  }
  friend bool operator<(const TemporalNodeRef& a, const TemporalNodeRef& b) {
    return std::tie(a.t, a.node) < std::tie(b.t, b.node);
  }
};

/// Hash functor for TemporalNodeRef (for flat hash sets/maps).
struct TemporalNodeRefHash {
  size_t operator()(const TemporalNodeRef& k) const {
    return static_cast<size_t>(k.node) * 1000003u +
           static_cast<size_t>(k.t) * 0x9e3779b97f4a7c15ull;
  }
};

}  // namespace tgsim::graphs

#endif  // TGSIM_GRAPH_TYPES_H_
