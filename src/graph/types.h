#ifndef TGSIM_GRAPH_TYPES_H_
#define TGSIM_GRAPH_TYPES_H_

#include <cstdint>
#include <tuple>

namespace tgsim::graphs {

/// Node identifier in [0, num_nodes).
using NodeId = int32_t;
/// Discrete timestamp in [0, num_timestamps) — the paper models the
/// temporal graph as a series of snapshots G_1..G_T.
using Timestamp = int32_t;

/// A directed timestamped interaction (u -> v at time t).
struct TemporalEdge {
  NodeId u = 0;
  NodeId v = 0;
  Timestamp t = 0;

  friend bool operator==(const TemporalEdge& a, const TemporalEdge& b) {
    return a.u == b.u && a.v == b.v && a.t == b.t;
  }
  friend bool operator<(const TemporalEdge& a, const TemporalEdge& b) {
    return std::tie(a.t, a.u, a.v) < std::tie(b.t, b.u, b.v);
  }
};

/// A temporal node v^t (paper Def. 1): a node occurrence at a timestamp.
struct TemporalNodeRef {
  NodeId node = 0;
  Timestamp t = 0;

  friend bool operator==(const TemporalNodeRef& a, const TemporalNodeRef& b) {
    return a.node == b.node && a.t == b.t;
  }
  friend bool operator<(const TemporalNodeRef& a, const TemporalNodeRef& b) {
    return std::tie(a.t, a.node) < std::tie(b.t, b.node);
  }
};

/// Hash functor for TemporalNodeRef (for flat hash sets/maps).
///
/// Packs (node, t) into one 64-bit word and applies the splitmix64
/// finalizer. The finalizer is a bijection on 64-bit words, so distinct
/// temporal nodes never collide on the full hash, and its avalanche keeps
/// the low bits (the ones power-of-two hash tables actually use) well
/// mixed even for the dense node x time grids the ego sampler produces.
struct TemporalNodeRefHash {
  size_t operator()(const TemporalNodeRef& k) const {
    uint64_t x =
        (static_cast<uint64_t>(static_cast<uint32_t>(k.node)) << 32) |
        static_cast<uint64_t>(static_cast<uint32_t>(k.t));
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace tgsim::graphs

#endif  // TGSIM_GRAPH_TYPES_H_
