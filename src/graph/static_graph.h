#ifndef TGSIM_GRAPH_STATIC_GRAPH_H_
#define TGSIM_GRAPH_STATIC_GRAPH_H_

#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace tgsim::graphs {

/// Undirected simple graph stored in CSR form.
///
/// This is the object the evaluation metrics (paper Table III) operate on:
/// temporal snapshots are accumulated into a StaticGraph, self-loops are
/// dropped and parallel edges collapsed, matching how TagGen's evaluation
/// treats snapshots.
class StaticGraph {
 public:
  StaticGraph() = default;

  /// Builds from (possibly duplicated, possibly self-looped) edge pairs.
  static StaticGraph FromEdgeList(
      int num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges);

  int num_nodes() const { return num_nodes_; }
  /// Number of undirected simple edges.
  int64_t num_edges() const { return num_edges_; }

  /// Sorted neighbor list of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {adj_.data() + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }

  int Degree(NodeId u) const {
    return static_cast<int>(offsets_[u + 1] - offsets_[u]);
  }

  /// True iff the undirected edge {u, v} exists (binary search).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Degrees of all nodes.
  std::vector<int> Degrees() const;

  /// Connected components via union-find; returns component id per node.
  /// `num_components` receives the number of components among *non-isolated
  /// nodes plus isolated nodes* (each isolated node is its own component).
  std::vector<int> ConnectedComponents(int* num_components) const;

 private:
  int num_nodes_ = 0;
  int64_t num_edges_ = 0;
  std::vector<int64_t> offsets_;  // size num_nodes_+1
  std::vector<NodeId> adj_;
};

}  // namespace tgsim::graphs

#endif  // TGSIM_GRAPH_STATIC_GRAPH_H_
