#include "graph/ego_sampler.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace tgsim::graphs {

std::vector<TemporalNeighbor> EgoGraphSampler::SampleNeighbors(
    const std::vector<TemporalNeighbor>& all, Rng& rng) const {
  int th = config_.neighbor_threshold;
  if (th <= 0 || static_cast<int>(all.size()) <= th) return all;
  // Algorithm 1, NodeSampling: `th` draws with replacement, dedup'd via
  // set-insertion — intentionally allowed to return fewer than th nodes.
  std::unordered_set<int64_t> seen;
  std::vector<TemporalNeighbor> out;
  out.reserve(static_cast<size_t>(th));
  for (int i = 0; i < th; ++i) {
    const TemporalNeighbor& pick =
        all[static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(all.size())))];
    int64_t key = static_cast<int64_t>(pick.node) * 1000003 + pick.t;
    if (seen.insert(key).second) out.push_back(pick);
  }
  return out;
}

EgoGraph EgoGraphSampler::Sample(TemporalNodeRef center, Rng& rng) const {
  EgoGraph ego;
  ego.center = center;
  ego.nodes.push_back(center);
  ego.depth.push_back(0);

  std::unordered_map<int64_t, int> index;  // temporal node -> position
  auto key_of = [](TemporalNodeRef r) {
    return static_cast<int64_t>(r.node) * 4000037 + r.t;
  };
  index[key_of(center)] = 0;

  // Breadth-first expansion to radius k. The time window is anchored at the
  // center's timestamp (Def. 3), so every node in the ego-graph is within
  // t_N of the center.
  std::vector<int> frontier = {0};
  for (int hop = 1; hop <= config_.radius && !frontier.empty(); ++hop) {
    std::vector<int> next_frontier;
    for (int parent_idx : frontier) {
      TemporalNodeRef parent = ego.nodes[static_cast<size_t>(parent_idx)];
      std::vector<TemporalNeighbor> nbrs = graph_->TemporalNeighborhood(
          parent.node, ego.center.t, config_.time_window);
      std::vector<TemporalNeighbor> chosen = SampleNeighbors(nbrs, rng);
      for (const TemporalNeighbor& nb : chosen) {
        TemporalNodeRef child{nb.node, nb.t};
        int64_t k = key_of(child);
        auto it = index.find(k);
        int child_idx;
        if (it == index.end()) {
          child_idx = ego.size();
          index.emplace(k, child_idx);
          ego.nodes.push_back(child);
          ego.depth.push_back(hop);
          next_frontier.push_back(child_idx);
        } else {
          child_idx = it->second;
        }
        if (child_idx != parent_idx)
          ego.edges.emplace_back(parent_idx, child_idx);
      }
    }
    frontier = std::move(next_frontier);
  }
  // Dedup parallel sampled edges.
  std::sort(ego.edges.begin(), ego.edges.end());
  ego.edges.erase(std::unique(ego.edges.begin(), ego.edges.end()),
                  ego.edges.end());
  return ego;
}

InitialNodeSampler::InitialNodeSampler(std::vector<TemporalNodeRef> occurrences,
                                       std::vector<double> weights,
                                       bool uniform)
    : uniform_(uniform),
      occurrences_(std::move(occurrences)),
      weights_(std::move(weights)) {
  TGSIM_CHECK_EQ(occurrences_.size(), weights_.size());
  if (!uniform_ && !weights_.empty())
    alias_ = sampling::AliasTable(weights_);
}

InitialNodeSampler::InitialNodeSampler(std::vector<TemporalNodeRef> occurrences,
                                       std::vector<double> weights,
                                       sampling::AliasTable table)
    : uniform_(false),
      occurrences_(std::move(occurrences)),
      weights_(std::move(weights)),
      alias_(std::move(table)) {
  TGSIM_CHECK_EQ(occurrences_.size(), weights_.size());
  TGSIM_CHECK_EQ(alias_.size(), weights_.size());
}

InitialNodeSampler::InitialNodeSampler(const TemporalGraph* graph,
                                       int time_window, bool uniform)
    : uniform_(uniform) {
  TGSIM_CHECK(graph != nullptr);
  TGSIM_CHECK(graph->finalized());
  // Enumerate distinct node occurrences and their temporal degrees.
  for (NodeId u = 0; u < graph->num_nodes(); ++u) {
    auto nbrs = graph->Neighbors(u);
    size_t i = 0;
    while (i < nbrs.size()) {
      Timestamp t = nbrs[i].t;
      size_t j = i;
      while (j < nbrs.size() && nbrs[j].t == t) ++j;
      occurrences_.push_back({u, t});
      weights_.push_back(static_cast<double>(
          graph->TemporalDegree(u, t, time_window)));
      i = j;
    }
  }
  // Every enumerated occurrence has at least one in-window neighbor (the
  // edge that created it), so the total mass is positive whenever the
  // graph has edges.
  if (!uniform_ && !weights_.empty())
    alias_ = sampling::AliasTable(weights_);
}

std::vector<TemporalNodeRef> InitialNodeSampler::Sample(int n_s,
                                                        Rng& rng) const {
  TGSIM_CHECK(!occurrences_.empty());
  std::vector<TemporalNodeRef> out;
  out.reserve(static_cast<size_t>(n_s));
  if (uniform_) {
    for (int i = 0; i < n_s; ++i) {
      out.push_back(occurrences_[static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(occurrences_.size())))]);
    }
    return out;
  }
  // Degree-proportional sampling (Eq. 2): O(1) per draw off the alias
  // table built at construction.
  for (int i = 0; i < n_s; ++i)
    out.push_back(occurrences_[alias_.Draw(rng)]);
  return out;
}

}  // namespace tgsim::graphs
