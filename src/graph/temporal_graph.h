#ifndef TGSIM_GRAPH_TEMPORAL_GRAPH_H_
#define TGSIM_GRAPH_TEMPORAL_GRAPH_H_

#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "graph/static_graph.h"
#include "graph/types.h"

namespace tgsim::graphs {

/// A neighbor occurrence (v, t): the other endpoint of a temporal edge and
/// the edge's timestamp.
struct TemporalNeighbor {
  NodeId node;
  Timestamp t;

  friend bool operator==(const TemporalNeighbor& a,
                         const TemporalNeighbor& b) {
    return a.node == b.node && a.t == b.t;
  }
};

/// A temporal graph G~ = {G_1, ..., G_T}: a stream of directed timestamped
/// edges over a fixed node set (paper Def. 2).
///
/// Construction: AddEdge repeatedly, then Finalize() to build the indexes.
/// All query methods require a finalized graph.
class TemporalGraph {
 public:
  TemporalGraph(int num_nodes, int num_timestamps);

  /// Builds and finalizes in one step.
  static TemporalGraph FromEdges(int num_nodes, int num_timestamps,
                                 std::vector<TemporalEdge> edges);

  void AddEdge(NodeId u, NodeId v, Timestamp t);
  /// Sorts edges by (t, u, v) and builds timestamp offsets + per-node
  /// adjacency (both directions, sorted by time).
  void Finalize();
  bool finalized() const { return finalized_; }

  int num_nodes() const { return num_nodes_; }
  int num_timestamps() const { return num_timestamps_; }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  const std::vector<TemporalEdge>& edges() const { return edges_; }

  /// Edges with timestamp exactly t (finalized graphs only).
  std::span<const TemporalEdge> EdgesAt(Timestamp t) const;

  /// All temporal neighbors of u across time (in + out), sorted by t.
  std::span<const TemporalNeighbor> Neighbors(NodeId u) const;

  /// Directed out-neighbors of u across time, sorted by t.
  std::span<const TemporalNeighbor> OutNeighbors(NodeId u) const;

  /// Out-neighbor occurrences with |t' - t| <= time_window (the directed
  /// adjacency row A_{u^t} of the paper's Eq. 6 when time_window = 0).
  std::vector<TemporalNeighbor> OutNeighborhood(NodeId u, Timestamp t,
                                                int time_window) const;

  /// First-order temporal neighborhood of (u, t): neighbor occurrences with
  /// |t' - t| <= time_window (paper Def. 3 with d_N = 1).
  std::vector<TemporalNeighbor> TemporalNeighborhood(NodeId u, Timestamp t,
                                                     int time_window) const;

  /// Temporal degree of the temporal node (u, t): the number of first-order
  /// temporal neighbors (the paper's re-weighting quantity, Eq. 2).
  int64_t TemporalDegree(NodeId u, Timestamp t, int time_window) const;

  /// Number of distinct temporal nodes (node occurrences).
  int64_t NumTemporalNodes() const;

  /// Accumulated snapshot: the simple undirected graph of all edges with
  /// timestamp <= t. This is the object the paper's f_avg/f_med metrics
  /// compare (Section V.A, Eq. 10).
  StaticGraph SnapshotUpTo(Timestamp t) const;

  /// Snapshot of edges with timestamp exactly t.
  StaticGraph SnapshotAt(Timestamp t) const;

  /// Number of temporal edges at each timestamp.
  std::vector<int64_t> EdgesPerTimestamp() const;

 private:
  int num_nodes_;
  int num_timestamps_;
  bool finalized_ = false;
  std::vector<TemporalEdge> edges_;          // sorted by (t,u,v) once final
  std::vector<int64_t> t_offsets_;           // size T+1
  std::vector<int64_t> adj_offsets_;         // size n+1
  std::vector<TemporalNeighbor> adj_;        // grouped by node, sorted by t
  std::vector<int64_t> out_offsets_;         // size n+1
  std::vector<TemporalNeighbor> out_adj_;    // directed, sorted by t
};

}  // namespace tgsim::graphs

#endif  // TGSIM_GRAPH_TEMPORAL_GRAPH_H_
