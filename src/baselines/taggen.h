#ifndef TGSIM_BASELINES_TAGGEN_H_
#define TGSIM_BASELINES_TAGGEN_H_

#include <memory>
#include <vector>

#include "baselines/generator.h"
#include "baselines/walks.h"
#include "config/param_map.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace tgsim::baselines {

/// Hyper-parameters of the walk-based baselines.
struct TagGenConfig {
  int embedding_dim = 32;
  int walk_length = 8;
  int walks_per_epoch = 200;
  int epochs = 15;
  int candidates_per_step = 12;  // Observed neighbors + negatives.
  int negatives_per_step = 4;
  int time_window = 2;
  double learning_rate = 5e-3;

  void DefineParams(config::ParamBinder& binder);
  Status ApplyParams(const config::ParamMap& params);
  static config::ParamSchema Schema();
};

/// TagGen (Zhou et al., KDD'20): learns to reproduce temporal random walks
/// and assembles a synthetic graph from generated walks.
///
/// This reproduction keeps TagGen's pipeline — degree-biased walk sampling
/// over the (node, timestamp) state space, a learned bigram transition model
/// with node+time embeddings scored against candidate states, and walk
/// re-assembly — and omits the discriminator (the adversarial variant is the
/// TGGAN baseline). The O(n^2 T^2)-shaped state space is what drives the
/// paper's OOM columns; see EstimatePaperMemoryBytes.
class TagGenGenerator : public TemporalGraphGenerator {
 public:
  explicit TagGenGenerator(TagGenConfig config = {});
  ~TagGenGenerator() override;

  std::string name() const override { return "TagGen"; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  int64_t ResidentStateBytes() const override;

  /// Transition structures over (node x time)^2 pairs; coefficient
  /// calibrated to the paper's 32 GB OOM pattern (runs DBLP and MSG, OOMs
  /// EMAIL/MATH/BITCOIN-*/UBUNTU).
  int64_t EstimatePaperMemoryBytes(int64_t n, int64_t /*m*/,
                                   int64_t t) const override {
    double nt = static_cast<double>(n) * static_cast<double>(t);
    return static_cast<int64_t>(0.15 * nt * nt);
  }

  /// Mean training loss of the last epoch (exposed for tests).
  double last_epoch_loss() const { return last_epoch_loss_; }

 protected:
  /// Scores one walk-step batch and returns the CE loss (shared with the
  /// TGGAN subclass machinery via the embedding tables).
  nn::Var StepLoss(const std::vector<graphs::TemporalNodeRef>& current,
                   const std::vector<std::vector<graphs::TemporalNodeRef>>&
                       candidates,
                   const std::vector<int>& true_index) const;

  /// Embedding of a batch of temporal states (node emb + time emb).
  nn::Var StateEmbedding(const std::vector<graphs::TemporalNodeRef>& states,
                         bool output_table) const;

  /// Constructs the four embedding tables from config_ + shape_ (shared by
  /// Fit and LoadState so parameter order and shapes are fixed here).
  void BuildModel(Rng& rng);
  /// All trainable parameters in the fixed table order.
  std::vector<nn::Var> CollectParams() const;

  TagGenConfig config_;
  ObservedShape shape_;
  /// Owned copy of the observed graph: TagGen's generation walks score
  /// candidate steps over the observed temporal adjacency, so the support
  /// is part of the fitted state (and of the serialized artifact).
  std::unique_ptr<graphs::TemporalGraph> support_;
  /// Fitted walk-start distribution over the support graph.
  std::unique_ptr<graphs::InitialNodeSampler> starts_;
  std::unique_ptr<TemporalWalkSampler> walk_sampler_;  // Training only.
  std::unique_ptr<nn::Embedding> node_emb_;
  std::unique_ptr<nn::Embedding> time_emb_;
  std::unique_ptr<nn::Embedding> node_out_;
  std::unique_ptr<nn::Embedding> time_out_;
  double last_epoch_loss_ = 0.0;
};

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_TAGGEN_H_
