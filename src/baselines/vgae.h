#ifndef TGSIM_BASELINES_VGAE_H_
#define TGSIM_BASELINES_VGAE_H_

#include <vector>

#include "baselines/generator.h"
#include "baselines/state_io.h"
#include "config/param_map.h"
#include "nn/tensor.h"
#include "storage/score_store.h"

namespace tgsim::baselines {

struct VgaeConfig {
  int hidden_dim = 32;
  int latent_dim = 16;
  int epochs = 40;
  double learning_rate = 1e-2;
  double kl_weight = 1e-2;
  /// Graphite decoder refinement rounds (used by GraphiteGenerator only).
  int refine_rounds = 1;
  /// Stored score entries per row (0 = keep every positive entry — the
  /// paper-exact default; preset=fast truncates). See ScoreStore.
  int64_t score_topk = 0;

  void DefineParams(config::ParamBinder& binder);
  Status ApplyParams(const config::ParamMap& params);
  static config::ParamSchema Schema();
};

/// VGAE (Kipf & Welling, 2016): per-snapshot variational graph autoencoder
/// with a two-layer GCN encoder (identity features, so the first layer
/// reduces to A_hat W1) and an inner-product decoder. Static method: trained
/// and sampled independently per timestamp (paper Section V.B). Fit()
/// trains every snapshot and keeps the decoded score matrices as the
/// complete fitted state, so Generate() is a sampling pass and the model
/// ships through SaveState/LoadState.
class VgaeGenerator : public TemporalGraphGenerator {
 public:
  explicit VgaeGenerator(VgaeConfig config = {});

  std::string name() const override { return "VGAE"; }
  const VgaeConfig& config() const { return config_; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  Status LoadState(std::istream& in, const std::string& path) override;
  int64_t ResidentStateBytes() const override;

  /// Dense n x n adjacency + reconstruction per snapshot: the classic
  /// VGAE memory wall (only UBUNTU exceeds 32 GB at paper scale). Models
  /// the *original* implementation — this reproduction stays O(nnz).
  int64_t EstimatePaperMemoryBytes(int64_t n, int64_t /*m*/,
                                   int64_t /*t*/) const override {
    return 8 * n * n;
  }

 protected:
  /// Graphite shares Fit/Generate and flips only the decoder refinement.
  VgaeGenerator(VgaeConfig config, bool graphite);

  /// Trains on one snapshot and returns the active-node score submatrix.
  /// `graphite` switches the decoder to the iterative Graphite variant.
  SnapshotScores FitSnapshotScores(
      const std::vector<graphs::TemporalEdge>& edges, bool graphite,
      Rng& rng) const;

  VgaeConfig config_;
  bool graphite_ = false;
  ObservedShape shape_;
  /// Fitted sparse score rows per timestamp (absent where the snapshot
  /// has no edges). This is the complete generative state.
  storage::ScoreStore store_;
};

/// Graphite (Grover et al., ICML'19): VGAE with an iteratively refined
/// decoder — the latent codes are propagated through the (soft) decoded
/// adjacency before the final inner product.
class GraphiteGenerator : public VgaeGenerator {
 public:
  explicit GraphiteGenerator(VgaeConfig config = {});

  std::string name() const override { return "Graphite"; }
};

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_VGAE_H_
