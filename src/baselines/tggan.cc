#include "baselines/tggan.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "baselines/state_io.h"
#include "sampling/samplers.h"

namespace tgsim::baselines {

namespace {

/// Standard Gumbel(0,1) noise tensor.
nn::Tensor GumbelNoise(Rng& rng, int rows, int cols) {
  nn::Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    double u = std::max(rng.Uniform(), 1e-12);
    t.data()[i] = -std::log(-std::log(u));
  }
  return t;
}

/// Gumbel-softmax relaxation of a categorical head.
nn::Var GumbelSoftmax(const nn::Var& logits, double tau, Rng& rng) {
  nn::Var noisy = nn::Add(
      logits,
      nn::Var::Constant(GumbelNoise(rng, logits.rows(), logits.cols())));
  return nn::SoftmaxRows(nn::Scale(noisy, 1.0 / tau));
}

}  // namespace

void TgganConfig::DefineParams(config::ParamBinder& binder) {
  binder.Bind("embedding_dim", &embedding_dim, "node/time embedding width");
  binder.Bind("latent_dim", &latent_dim, "generator latent noise width");
  binder.Bind("hidden_dim", &hidden_dim, "generator/discriminator hidden width");
  binder.Bind("walk_length", &walk_length, "generated walk length");
  binder.Bind("batch_walks", &batch_walks, "walks per adversarial batch");
  binder.Bind("iterations", &iterations, "adversarial training iterations");
  binder.Bind("time_window", &time_window,
              "bounded time-gap window (|dt| <= w)");
  binder.Bind("learning_rate", &learning_rate, "Adam learning rate");
  binder.Bind("gumbel_tau", &gumbel_tau, "Gumbel-softmax temperature");
}

TGSIM_CONFIG_IMPLEMENT_PARAMS(TgganConfig)

TgganGenerator::TgganGenerator(TgganConfig config) : config_(config) {}

TgganGenerator::~TgganGenerator() = default;

TgganGenerator::Unroll TgganGenerator::RunGenerator(int batch,
                                                    Rng& rng) const {
  Unroll u;
  nn::Var z =
      nn::Var::Constant(nn::Tensor::Randn(rng, batch, config_.latent_dim));
  nn::Var h = g_init_->Forward(z);
  u.start_nodes = GumbelSoftmax(g_start_node_head_->Forward(h),
                                config_.gumbel_tau, rng);
  u.start_times = GumbelSoftmax(g_start_time_head_->Forward(h),
                                config_.gumbel_tau, rng);
  nn::Var x = nn::MatMul(u.start_nodes, g_node_emb_->table());
  for (int j = 0; j + 1 < config_.walk_length; ++j) {
    h = g_rnn_->Forward(x, h);
    nn::Var soft_node = GumbelSoftmax(g_node_head_->Forward(h),
                                      config_.gumbel_tau, rng);
    nn::Var soft_gap =
        GumbelSoftmax(g_gap_head_->Forward(h), config_.gumbel_tau, rng);
    u.soft_nodes.push_back(soft_node);
    u.soft_gaps.push_back(soft_gap);
    x = nn::MatMul(soft_node, g_node_emb_->table());
  }
  return u;
}

nn::Var TgganGenerator::Discriminate(const Unroll& u) const {
  nn::Var feat = nn::Add(nn::MatMul(u.start_nodes, d_node_emb_->table()),
                         nn::MatMul(u.start_times, d_time_emb_->table()));
  for (size_t j = 0; j < u.soft_nodes.size(); ++j) {
    nn::Var step =
        nn::Add(nn::MatMul(u.soft_nodes[j], d_node_emb_->table()),
                nn::MatMul(u.soft_gaps[j], d_gap_emb_->table()));
    feat = nn::Add(feat, step);
  }
  feat = nn::Scale(feat,
                   1.0 / static_cast<double>(u.soft_nodes.size() + 1));
  return d_mlp_->Forward(feat);
}

void TgganGenerator::BuildGeneratorModel(Rng& rng) {
  const int n = shape_.num_nodes;
  const int t_count = shape_.num_timestamps;
  const int d = config_.embedding_dim;
  g_init_ = std::make_unique<nn::Mlp>(
      rng, std::vector<int>{config_.latent_dim, config_.hidden_dim},
      nn::Activation::kTanh, /*final_activation=*/true);
  g_rnn_ = std::make_unique<nn::GruCell>(rng, d, config_.hidden_dim);
  g_node_head_ = std::make_unique<nn::Linear>(rng, config_.hidden_dim, n);
  g_gap_head_ =
      std::make_unique<nn::Linear>(rng, config_.hidden_dim, NumGapClasses());
  g_start_node_head_ =
      std::make_unique<nn::Linear>(rng, config_.hidden_dim, n);
  g_start_time_head_ =
      std::make_unique<nn::Linear>(rng, config_.hidden_dim, t_count);
  g_node_emb_ = std::make_unique<nn::Embedding>(rng, n, d);
}

std::vector<nn::Var> TgganGenerator::CollectGeneratorParams() const {
  std::vector<nn::Var> params;
  for (const nn::Module* m : {static_cast<const nn::Module*>(g_init_.get()),
                              static_cast<const nn::Module*>(g_rnn_.get()),
                              static_cast<const nn::Module*>(g_node_head_.get()),
                              static_cast<const nn::Module*>(g_gap_head_.get()),
                              static_cast<const nn::Module*>(
                                  g_start_node_head_.get()),
                              static_cast<const nn::Module*>(
                                  g_start_time_head_.get()),
                              static_cast<const nn::Module*>(g_node_emb_.get())})
    params.insert(params.end(), m->params().begin(), m->params().end());
  return params;
}

void TgganGenerator::Fit(const graphs::TemporalGraph& observed, Rng& rng) {
  shape_.CaptureFrom(observed);
  BuildGeneratorModel(rng);
  TrainAdversarial(observed, config_.iterations, rng);
}

void TgganGenerator::TrainAdversarial(const graphs::TemporalGraph& real,
                                      int iterations, Rng& rng) {
  const int n = shape_.num_nodes;
  const int t_count = shape_.num_timestamps;
  const int d = config_.embedding_dim;

  d_node_emb_ = std::make_unique<nn::Embedding>(rng, n, d);
  d_time_emb_ = std::make_unique<nn::Embedding>(rng, t_count, d);
  d_gap_emb_ = std::make_unique<nn::Embedding>(rng, NumGapClasses(), d);
  d_mlp_ = std::make_unique<nn::Mlp>(
      rng, std::vector<int>{d, config_.hidden_dim, 1},
      nn::Activation::kLeakyRelu);

  std::vector<nn::Var> g_params = CollectGeneratorParams();
  std::vector<nn::Var> d_params;
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(d_node_emb_.get()),
        static_cast<const nn::Module*>(d_time_emb_.get()),
        static_cast<const nn::Module*>(d_gap_emb_.get()),
        static_cast<const nn::Module*>(d_mlp_.get())})
    d_params.insert(d_params.end(), m->params().begin(), m->params().end());
  nn::Adam g_opt(g_params, config_.learning_rate);
  nn::Adam d_opt(d_params, config_.learning_rate);

  TemporalWalkSampler sampler(&real, config_.time_window);
  const int batch = config_.batch_walks;

  // Converts sampled real walks into the Unroll (one-hot) representation,
  // padding dead-end walks by repeating the last node with a zero gap.
  auto real_unroll = [&]() {
    Unroll u;
    std::vector<TemporalWalk> walks =
        sampler.SampleMany(batch, config_.walk_length, rng);
    nn::Tensor start_nodes(batch, n);
    nn::Tensor start_times(batch, t_count);
    std::vector<nn::Tensor> nodes;
    std::vector<nn::Tensor> gaps;
    for (int j = 0; j + 1 < config_.walk_length; ++j) {
      nodes.emplace_back(batch, n);
      gaps.emplace_back(batch, NumGapClasses());
    }
    for (int b = 0; b < batch; ++b) {
      const TemporalWalk& w = walks[static_cast<size_t>(b)];
      start_nodes.at(b, w.steps[0].node) = 1.0;
      start_times.at(b, w.steps[0].t) = 1.0;
      graphs::TemporalNodeRef prev = w.steps[0];
      for (int j = 0; j + 1 < config_.walk_length; ++j) {
        graphs::TemporalNodeRef cur =
            static_cast<size_t>(j) + 1 < w.steps.size()
                ? w.steps[static_cast<size_t>(j) + 1]
                : prev;
        nodes[static_cast<size_t>(j)].at(b, cur.node) = 1.0;
        int gap = std::clamp(cur.t - prev.t + config_.time_window, 0,
                             NumGapClasses() - 1);
        gaps[static_cast<size_t>(j)].at(b, gap) = 1.0;
        prev = cur;
      }
    }
    u.start_nodes = nn::Var::Constant(std::move(start_nodes));
    u.start_times = nn::Var::Constant(std::move(start_times));
    for (auto& t : nodes) u.soft_nodes.push_back(nn::Var::Constant(std::move(t)));
    for (auto& t : gaps) u.soft_gaps.push_back(nn::Var::Constant(std::move(t)));
    return u;
  };

  nn::Tensor ones(batch, 1, 1.0);
  nn::Tensor zeros(batch, 1, 0.0);
  for (int it = 0; it < iterations; ++it) {
    // Discriminator phase (generator grads are discarded by its ZeroGrad).
    d_opt.ZeroGrad();
    g_opt.ZeroGrad();
    Unroll real = real_unroll();
    Unroll fake = RunGenerator(batch, rng);
    nn::Var d_loss =
        nn::Add(nn::BinaryCrossEntropyWithLogits(Discriminate(real), ones),
                nn::BinaryCrossEntropyWithLogits(Discriminate(fake), zeros));
    nn::Backward(d_loss);
    d_opt.ClipGradNorm(5.0);
    d_opt.Step();
    last_d_loss_ = d_loss.item();

    // Generator phase (non-saturating objective).
    g_opt.ZeroGrad();
    d_opt.ZeroGrad();
    Unroll fake2 = RunGenerator(batch, rng);
    nn::Var g_loss =
        nn::BinaryCrossEntropyWithLogits(Discriminate(fake2), ones);
    nn::Backward(g_loss);
    g_opt.ClipGradNorm(5.0);
    g_opt.Step();
    last_g_loss_ = g_loss.item();
  }
}

Status TgganGenerator::Update(const graphs::TemporalGraph& delta, Rng& rng) {
  Status ok = RequireUpdatable(g_init_ != nullptr, delta, shape_, name());
  if (!ok.ok()) return ok;
  if (delta.num_edges() == 0) return Status::Ok();
  // A bounded warm start: the trained generator is the prior; a fresh
  // discriminator learns to separate it from walks over the new edges.
  const int warm = std::max(1, std::min(config_.iterations, 4));
  TrainAdversarial(delta, warm, rng);
  MergeDeltaShape(shape_, delta);
  return Status::Ok();
}

int64_t TgganGenerator::ResidentStateBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(*this)) +
                  static_cast<int64_t>(shape_.edges_per_timestamp.capacity() *
                                       sizeof(int64_t));
  if (g_init_ != nullptr) bytes += ParamsResidentBytes(CollectGeneratorParams());
  if (d_node_emb_ != nullptr) {
    std::vector<nn::Var> d_params;
    for (const nn::Module* m :
         {static_cast<const nn::Module*>(d_node_emb_.get()),
          static_cast<const nn::Module*>(d_time_emb_.get()),
          static_cast<const nn::Module*>(d_gap_emb_.get()),
          static_cast<const nn::Module*>(d_mlp_.get())})
      d_params.insert(d_params.end(), m->params().begin(), m->params().end());
    bytes += ParamsResidentBytes(d_params);
  }
  return bytes;
}

graphs::TemporalGraph TgganGenerator::Generate(Rng& rng) {
  TGSIM_CHECK(g_init_ != nullptr);  // Requires a Fit() or LoadState().
  const int64_t budget = shape_.total_edges();
  const int n = shape_.num_nodes;
  const int t_count = shape_.num_timestamps;

  std::vector<TemporalWalk> walks;
  int64_t projected = 0;
  // Sample straight off the softmax row — no per-element copies.
  auto sample_row = [&](const nn::Tensor& probs, int row) {
    return static_cast<int>(sampling::WeightedPick(probs.RowSpan(row), rng));
  };
  while (projected < budget) {
    Unroll u = RunGenerator(config_.batch_walks, rng);
    for (int b = 0; b < config_.batch_walks; ++b) {
      TemporalWalk walk;
      int node = sample_row(u.start_nodes.value(), b);
      int t = sample_row(u.start_times.value(), b);
      walk.steps.push_back({static_cast<graphs::NodeId>(node),
                            static_cast<graphs::Timestamp>(t)});
      for (size_t j = 0; j < u.soft_nodes.size(); ++j) {
        node = sample_row(u.soft_nodes[j].value(), b);
        int gap = sample_row(u.soft_gaps[j].value(), b) -
                  config_.time_window;
        t = std::clamp(t + gap, 0, t_count - 1);
        walk.steps.push_back({static_cast<graphs::NodeId>(node),
                              static_cast<graphs::Timestamp>(t)});
      }
      projected += std::max(0, walk.length() - 1);
      walks.push_back(std::move(walk));
      if (projected >= budget) break;
    }
  }
  return AssembleFromWalks(walks, n, t_count, budget, rng);
}

Status TgganGenerator::SaveState(std::ostream& out) const {
  Status fitted = RequireFitted(g_init_ != nullptr, name());
  if (!fitted.ok()) return fitted;
  serialize::ArchiveWriter writer(out);
  WriteShape(writer, shape_);
  writer.BeginSection("params");
  serialize::WriteParams(writer, CollectGeneratorParams());
  return writer.Finish();
}

Status TgganGenerator::LoadState(std::istream& in) {
  Result<serialize::ArchiveReader> parsed =
      serialize::ArchiveReader::Parse(in);
  if (!parsed.ok()) return parsed.status();
  const serialize::ArchiveReader& reader = parsed.value();
  ObservedShape shape;
  Status s = ReadShape(reader, shape);
  if (!s.ok()) return s;

  shape_ = std::move(shape);
  // Values come from the archive; the init rng only shapes the modules.
  Rng init(0);
  BuildGeneratorModel(init);
  std::vector<nn::Var> params = CollectGeneratorParams();
  s = serialize::ReadParamsInto(reader, "params", params);
  if (!s.ok()) return s;
  // The discriminator is not part of the serving artifact.
  d_node_emb_.reset();
  d_time_emb_.reset();
  d_gap_emb_.reset();
  d_mlp_.reset();
  return Status::Ok();
}

}  // namespace tgsim::baselines
