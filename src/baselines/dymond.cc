#include "baselines/dymond.h"

#include <algorithm>

#include "metrics/graph_stats.h"

namespace tgsim::baselines {

void DymondGenerator::Fit(const graphs::TemporalGraph& observed, Rng& /*rng*/) {
  shape_.CaptureFrom(observed);
  mix_.assign(static_cast<size_t>(shape_.num_timestamps), {});

  for (int t = 0; t < shape_.num_timestamps; ++t) {
    graphs::StaticGraph snap = observed.SnapshotAt(t);
    int64_t m_t = shape_.edges_per_timestamp[t];
    if (m_t == 0) continue;
    int64_t triangles = metrics::TriangleCount(snap);
    // Wedges not inside triangles approximate the wedge-motif budget.
    double wedge_total = 0.0;
    for (graphs::NodeId u = 0; u < snap.num_nodes(); ++u) {
      double d = snap.Degree(u);
      wedge_total += d * (d - 1) / 2.0;
    }
    int64_t open_wedges =
        std::max<int64_t>(0, static_cast<int64_t>(wedge_total) - 3 * triangles);

    MotifMix& mm = mix_[static_cast<size_t>(t)];
    // Edge budget split: each placed triangle spends 3 edges, each wedge 2.
    mm.triangles = std::min<int64_t>(triangles, m_t / 3);
    int64_t remaining = m_t - 3 * mm.triangles;
    mm.wedges = std::min<int64_t>(open_wedges / 2, remaining / 2);
    remaining -= 2 * mm.wedges;
    mm.singles = remaining;
  }

  // Activity rates from accumulated degrees (DYMOND's node arrival rates).
  graphs::StaticGraph whole =
      observed.SnapshotUpTo(shape_.num_timestamps - 1);
  node_activity_.assign(static_cast<size_t>(shape_.num_nodes), 0.0);
  for (graphs::NodeId u = 0; u < shape_.num_nodes; ++u)
    node_activity_[static_cast<size_t>(u)] = whole.Degree(u) + 0.25;
  activity_cdf_.resize(node_activity_.size());
  double acc = 0.0;
  for (size_t i = 0; i < node_activity_.size(); ++i) {
    acc += node_activity_[i];
    activity_cdf_[i] = acc;
  }
}

graphs::TemporalGraph DymondGenerator::Generate(Rng& rng) {
  TGSIM_CHECK_GT(shape_.num_nodes, 0);
  graphs::TemporalGraph g(shape_.num_nodes, shape_.num_timestamps);
  const double total = activity_cdf_.back();

  auto draw_node = [&]() -> graphs::NodeId {
    double r = rng.Uniform() * total;
    size_t idx = static_cast<size_t>(
        std::lower_bound(activity_cdf_.begin(), activity_cdf_.end(), r) -
        activity_cdf_.begin());
    if (idx >= activity_cdf_.size()) idx = activity_cdf_.size() - 1;
    return static_cast<graphs::NodeId>(idx);
  };
  auto draw_distinct = [&](graphs::NodeId a) {
    graphs::NodeId b = draw_node();
    for (int i = 0; i < 4 && b == a; ++i) b = draw_node();
    if (b == a) b = static_cast<graphs::NodeId>((a + 1) % shape_.num_nodes);
    return b;
  };

  for (int t = 0; t < shape_.num_timestamps; ++t) {
    const MotifMix& mm = mix_[static_cast<size_t>(t)];
    auto ts = static_cast<graphs::Timestamp>(t);
    for (int64_t i = 0; i < mm.triangles; ++i) {
      graphs::NodeId a = draw_node();
      graphs::NodeId b = draw_distinct(a);
      graphs::NodeId c = draw_distinct(b);
      if (c == a) c = draw_distinct(a == b ? a : b);
      g.AddEdge(a, b, ts);
      g.AddEdge(b, c, ts);
      g.AddEdge(c, a, ts);
    }
    for (int64_t i = 0; i < mm.wedges; ++i) {
      graphs::NodeId center = draw_node();
      g.AddEdge(center, draw_distinct(center), ts);
      g.AddEdge(center, draw_distinct(center), ts);
    }
    for (int64_t i = 0; i < mm.singles; ++i) {
      graphs::NodeId a = draw_node();
      g.AddEdge(a, draw_distinct(a), ts);
    }
  }
  g.Finalize();
  return g;
}

}  // namespace tgsim::baselines
