#include "baselines/dymond.h"

#include <algorithm>

#include "baselines/state_io.h"
#include "metrics/graph_stats.h"

namespace tgsim::baselines {

DymondGenerator::MotifMix DymondGenerator::EstimateMix(
    const graphs::StaticGraph& snap, int64_t m_t) {
  MotifMix mm;
  if (m_t == 0) return mm;
  int64_t triangles = metrics::TriangleCount(snap);
  // Wedges not inside triangles approximate the wedge-motif budget.
  double wedge_total = 0.0;
  for (graphs::NodeId u = 0; u < snap.num_nodes(); ++u) {
    double d = snap.Degree(u);
    wedge_total += d * (d - 1) / 2.0;
  }
  int64_t open_wedges =
      std::max<int64_t>(0, static_cast<int64_t>(wedge_total) - 3 * triangles);

  // Edge budget split: each placed triangle spends 3 edges, each wedge 2.
  mm.triangles = std::min<int64_t>(triangles, m_t / 3);
  int64_t remaining = m_t - 3 * mm.triangles;
  mm.wedges = std::min<int64_t>(open_wedges / 2, remaining / 2);
  remaining -= 2 * mm.wedges;
  mm.singles = remaining;
  return mm;
}

void DymondGenerator::Fit(const graphs::TemporalGraph& observed, Rng& /*rng*/) {
  shape_.CaptureFrom(observed);
  mix_.assign(static_cast<size_t>(shape_.num_timestamps), {});

  for (int t = 0; t < shape_.num_timestamps; ++t) {
    mix_[static_cast<size_t>(t)] =
        EstimateMix(observed.SnapshotAt(t), shape_.edges_per_timestamp[t]);
  }

  // Activity rates from accumulated degrees (DYMOND's node arrival rates).
  graphs::StaticGraph whole =
      observed.SnapshotUpTo(shape_.num_timestamps - 1);
  node_activity_.assign(static_cast<size_t>(shape_.num_nodes), 0.0);
  for (graphs::NodeId u = 0; u < shape_.num_nodes; ++u)
    node_activity_[static_cast<size_t>(u)] = whole.Degree(u) + 0.25;
  RebuildActivitySampler();
}

void DymondGenerator::RebuildActivitySampler() {
  activity_alias_ = sampling::AliasTable(node_activity_);
}

Status DymondGenerator::Update(const graphs::TemporalGraph& delta,
                               Rng& /*rng*/) {
  Status ok = RequireUpdatable(shape_.num_nodes > 0, delta, shape_, name());
  if (!ok.ok()) return ok;
  if (delta.num_edges() == 0) return Status::Ok();

  // Motif budgets are additive across batches: the delta snapshot's mix
  // rides on top of the fitted one.
  const std::vector<int64_t> delta_per_t = delta.EdgesPerTimestamp();
  for (size_t t = 0; t < delta_per_t.size(); ++t) {
    if (delta_per_t[t] == 0) continue;
    MotifMix dm =
        EstimateMix(delta.SnapshotAt(static_cast<int>(t)), delta_per_t[t]);
    mix_[t].triangles += dm.triangles;
    mix_[t].wedges += dm.wedges;
    mix_[t].singles += dm.singles;
  }

  // Activity rates accumulate degree mass; the +0.25 floor is already in
  // the fitted weights, so the delta adds raw degrees only. The alias
  // table rebuild is deterministic from the merged weights.
  graphs::StaticGraph whole = delta.SnapshotUpTo(delta.num_timestamps() - 1);
  for (graphs::NodeId u = 0; u < delta.num_nodes(); ++u)
    node_activity_[static_cast<size_t>(u)] += whole.Degree(u);
  RebuildActivitySampler();
  MergeDeltaShape(shape_, delta);
  return Status::Ok();
}

int64_t DymondGenerator::ResidentStateBytes() const {
  return static_cast<int64_t>(sizeof(*this)) +
         static_cast<int64_t>(shape_.edges_per_timestamp.capacity() *
                              sizeof(int64_t)) +
         static_cast<int64_t>(mix_.capacity() * sizeof(MotifMix)) +
         static_cast<int64_t>(node_activity_.capacity() * sizeof(double)) +
         static_cast<int64_t>(activity_alias_.prob().capacity() *
                              sizeof(double)) +
         static_cast<int64_t>(activity_alias_.alias().capacity() *
                              sizeof(int64_t));
}

Status DymondGenerator::SaveState(std::ostream& out) const {
  Status fitted = RequireFitted(shape_.num_nodes > 0, name());
  if (!fitted.ok()) return fitted;
  serialize::ArchiveWriter writer(out);
  WriteShape(writer, shape_);
  writer.BeginSection("motifs");
  std::vector<int64_t> triangles, wedges, singles;
  for (const MotifMix& mm : mix_) {
    triangles.push_back(mm.triangles);
    wedges.push_back(mm.wedges);
    singles.push_back(mm.singles);
  }
  writer.WriteIntVector("triangles", triangles);
  writer.WriteIntVector("wedges", wedges);
  writer.WriteIntVector("singles", singles);
  writer.WriteDoubleVector("node_activity", node_activity_);
  // Ship the fitted alias table so LoadState skips the O(n) rebuild.
  serialize::WriteAliasTable(writer, "activity", activity_alias_);
  return writer.Finish();
}

Status DymondGenerator::LoadState(std::istream& in) {
  Result<serialize::ArchiveReader> parsed =
      serialize::ArchiveReader::Parse(in);
  if (!parsed.ok()) return parsed.status();
  const serialize::ArchiveReader& reader = parsed.value();
  ObservedShape shape;
  Status s = ReadShape(reader, shape);
  if (!s.ok()) return s;
  Result<std::vector<int64_t>> triangles =
      reader.GetIntVector("motifs", "triangles");
  if (!triangles.ok()) return triangles.status();
  Result<std::vector<int64_t>> wedges =
      reader.GetIntVector("motifs", "wedges");
  if (!wedges.ok()) return wedges.status();
  Result<std::vector<int64_t>> singles =
      reader.GetIntVector("motifs", "singles");
  if (!singles.ok()) return singles.status();
  Result<std::vector<double>> activity =
      reader.GetDoubleVector("motifs", "node_activity");
  if (!activity.ok()) return activity.status();
  const size_t t_count = static_cast<size_t>(shape.num_timestamps);
  if (triangles.value().size() != t_count ||
      wedges.value().size() != t_count ||
      singles.value().size() != t_count ||
      activity.value().size() != static_cast<size_t>(shape.num_nodes))
    return Status::InvalidArgument(
        "corrupt archive: DYMOND motif sections disagree with the shape");

  shape_ = std::move(shape);
  mix_.assign(t_count, {});
  for (size_t t = 0; t < t_count; ++t) {
    mix_[t].triangles = triangles.value()[t];
    mix_[t].wedges = wedges.value()[t];
    mix_[t].singles = singles.value()[t];
  }
  node_activity_ = std::move(activity).value();
  if (reader.HasField("motifs", "activity_prob")) {
    Result<sampling::AliasTable> table =
        serialize::ReadAliasTable(reader, "motifs", "activity");
    if (!table.ok()) return table.status();
    if (table.value().size() != node_activity_.size())
      return Status::InvalidArgument(
          "corrupt archive: DYMOND activity alias table disagrees with "
          "node_activity");
    activity_alias_ = std::move(table).value();
  } else {
    // Pre-alias artifact: rebuild from the weights (bit-identical — the
    // alias build is deterministic and the weights round-trip exactly).
    RebuildActivitySampler();
  }
  return Status::Ok();
}

graphs::TemporalGraph DymondGenerator::Generate(Rng& rng) {
  TGSIM_CHECK_GT(shape_.num_nodes, 0);
  graphs::TemporalGraph g(shape_.num_nodes, shape_.num_timestamps);

  auto draw_node = [&]() -> graphs::NodeId {
    return static_cast<graphs::NodeId>(activity_alias_.Draw(rng));
  };
  auto draw_distinct = [&](graphs::NodeId a) {
    graphs::NodeId b = draw_node();
    for (int i = 0; i < 4 && b == a; ++i) b = draw_node();
    if (b == a) b = static_cast<graphs::NodeId>((a + 1) % shape_.num_nodes);
    return b;
  };

  for (int t = 0; t < shape_.num_timestamps; ++t) {
    const MotifMix& mm = mix_[static_cast<size_t>(t)];
    auto ts = static_cast<graphs::Timestamp>(t);
    for (int64_t i = 0; i < mm.triangles; ++i) {
      graphs::NodeId a = draw_node();
      graphs::NodeId b = draw_distinct(a);
      graphs::NodeId c = draw_distinct(b);
      if (c == a) c = draw_distinct(a == b ? a : b);
      g.AddEdge(a, b, ts);
      g.AddEdge(b, c, ts);
      g.AddEdge(c, a, ts);
    }
    for (int64_t i = 0; i < mm.wedges; ++i) {
      graphs::NodeId center = draw_node();
      g.AddEdge(center, draw_distinct(center), ts);
      g.AddEdge(center, draw_distinct(center), ts);
    }
    for (int64_t i = 0; i < mm.singles; ++i) {
      graphs::NodeId a = draw_node();
      g.AddEdge(a, draw_distinct(a), ts);
    }
  }
  g.Finalize();
  return g;
}

}  // namespace tgsim::baselines
