#include "baselines/state_io.h"

#include <limits>
#include <utility>

#include "baselines/score_sampling.h"

namespace tgsim::baselines {

namespace {

/// Field name of the timestamp-t score matrix ("t0", "t1", ...). Built by
/// appending (not `"t" + std::to_string(t)`) to sidestep a GCC 12
/// -Wrestrict false positive on const char* + std::string&&.
std::string ScoreFieldName(int t) {
  std::string name = "t";
  name += std::to_string(t);
  return name;
}

/// Archived counts are untrusted int64s destined for int fields: a value
/// past INT_MAX would wrap in static_cast<int> and crash (or silently
/// mis-size) downstream, so reject it as corruption instead.
bool FitsInt(int64_t value) {
  return value >= 0 && value <= std::numeric_limits<int>::max();
}

}  // namespace

Status TemporalGraphGenerator::SaveState(std::ostream& /*out*/) const {
  return Status::InvalidArgument("method '" + name() +
                                 "' does not implement state serialization");
}

Status TemporalGraphGenerator::LoadState(std::istream& /*in*/) {
  return Status::InvalidArgument("method '" + name() +
                                 "' does not implement state serialization");
}

Status RequireFitted(bool fitted, const std::string& method) {
  if (fitted) return Status::Ok();
  return Status::InvalidArgument("SaveState of '" + method +
                                 "' requires a prior Fit()");
}

void WriteShape(serialize::ArchiveWriter& writer,
                const ObservedShape& shape) {
  writer.BeginSection("shape");
  writer.WriteInt("num_nodes", shape.num_nodes);
  writer.WriteInt("num_timestamps", shape.num_timestamps);
  writer.WriteIntVector("edges_per_timestamp", shape.edges_per_timestamp);
}

Status ReadShape(const serialize::ArchiveReader& reader,
                 ObservedShape& shape) {
  Result<int64_t> nodes = reader.GetInt("shape", "num_nodes");
  if (!nodes.ok()) return nodes.status();
  Result<int64_t> timestamps = reader.GetInt("shape", "num_timestamps");
  if (!timestamps.ok()) return timestamps.status();
  Result<std::vector<int64_t>> per_t =
      reader.GetIntVector("shape", "edges_per_timestamp");
  if (!per_t.ok()) return per_t.status();
  // A fitted shape always has n >= 1 and T >= 1 (the TemporalGraph ctor
  // enforces both), so anything else is corruption — rejecting it here
  // keeps Generate from CHECK-aborting on a loaded artifact.
  if (nodes.value() <= 0 || !FitsInt(nodes.value()) ||
      timestamps.value() <= 0 || !FitsInt(timestamps.value()) ||
      per_t.value().size() != static_cast<size_t>(timestamps.value()))
    return Status::InvalidArgument(
        "corrupt archive: inconsistent shape section");
  for (int64_t count : per_t.value())
    if (count < 0)
      return Status::InvalidArgument(
          "corrupt archive: negative per-timestamp edge count");
  shape.num_nodes = static_cast<int>(nodes.value());
  shape.num_timestamps = static_cast<int>(timestamps.value());
  shape.edges_per_timestamp = std::move(per_t).value();
  return Status::Ok();
}

void WriteSupportGraph(serialize::ArchiveWriter& writer,
                       const std::string& section,
                       const graphs::TemporalGraph& graph) {
  writer.BeginSection(section);
  writer.WriteInt("num_nodes", graph.num_nodes());
  writer.WriteInt("num_timestamps", graph.num_timestamps());
  std::vector<int64_t> u, v, t;
  u.reserve(static_cast<size_t>(graph.num_edges()));
  v.reserve(static_cast<size_t>(graph.num_edges()));
  t.reserve(static_cast<size_t>(graph.num_edges()));
  for (const graphs::TemporalEdge& e : graph.edges()) {
    u.push_back(e.u);
    v.push_back(e.v);
    t.push_back(e.t);
  }
  writer.WriteIntVector("edge_u", u);
  writer.WriteIntVector("edge_v", v);
  writer.WriteIntVector("edge_t", t);
}

Result<graphs::TemporalGraph> ReadSupportGraph(
    const serialize::ArchiveReader& reader, const std::string& section) {
  Result<int64_t> nodes = reader.GetInt(section, "num_nodes");
  if (!nodes.ok()) return nodes.status();
  Result<int64_t> timestamps = reader.GetInt(section, "num_timestamps");
  if (!timestamps.ok()) return timestamps.status();
  Result<std::vector<int64_t>> u = reader.GetIntVector(section, "edge_u");
  if (!u.ok()) return u.status();
  Result<std::vector<int64_t>> v = reader.GetIntVector(section, "edge_v");
  if (!v.ok()) return v.status();
  Result<std::vector<int64_t>> t = reader.GetIntVector(section, "edge_t");
  if (!t.ok()) return t.status();
  if (nodes.value() <= 0 || !FitsInt(nodes.value()) ||
      timestamps.value() <= 0 || !FitsInt(timestamps.value()) ||
      u.value().size() != v.value().size() ||
      u.value().size() != t.value().size())
    return Status::InvalidArgument("corrupt archive: inconsistent '" +
                                   section + "' graph section");
  std::vector<graphs::TemporalEdge> edges;
  edges.reserve(u.value().size());
  for (size_t i = 0; i < u.value().size(); ++i) {
    graphs::TemporalEdge e;
    e.u = static_cast<graphs::NodeId>(u.value()[i]);
    e.v = static_cast<graphs::NodeId>(v.value()[i]);
    e.t = static_cast<graphs::Timestamp>(t.value()[i]);
    if (e.u < 0 || e.u >= nodes.value() || e.v < 0 ||
        e.v >= nodes.value() || e.t < 0 || e.t >= timestamps.value())
      return Status::InvalidArgument("corrupt archive: edge " +
                                     std::to_string(i) + " of section '" +
                                     section + "' is out of range");
    edges.push_back(e);
  }
  return graphs::TemporalGraph::FromEdges(static_cast<int>(nodes.value()),
                                          static_cast<int>(timestamps.value()),
                                          std::move(edges));
}

Status SaveScoreState(const ObservedShape& shape,
                      const std::vector<nn::Tensor>& scores,
                      std::ostream& out, const std::string& method) {
  Status fitted = RequireFitted(shape.num_nodes > 0, method);
  if (!fitted.ok()) return fitted;
  serialize::ArchiveWriter writer(out);
  WriteShape(writer, shape);
  writer.BeginSection("scores");
  for (size_t t = 0; t < scores.size(); ++t) {
    if (scores[t].empty()) continue;  // Edge-free snapshot.
    writer.WriteTensor(ScoreFieldName(static_cast<int>(t)), scores[t]);
  }
  return writer.Finish();
}

Status LoadScoreState(ObservedShape& shape, std::vector<nn::Tensor>& scores,
                      std::istream& in) {
  Result<serialize::ArchiveReader> parsed =
      serialize::ArchiveReader::Parse(in);
  if (!parsed.ok()) return parsed.status();
  const serialize::ArchiveReader& reader = parsed.value();
  ObservedShape loaded;
  Status s = ReadShape(reader, loaded);
  if (!s.ok()) return s;
  std::vector<nn::Tensor> loaded_scores(
      static_cast<size_t>(loaded.num_timestamps));
  for (int t = 0; t < loaded.num_timestamps; ++t) {
    if (loaded.edges_per_timestamp[static_cast<size_t>(t)] == 0) continue;
    Result<nn::Tensor> tensor = reader.GetTensor("scores", ScoreFieldName(t));
    if (!tensor.ok()) return tensor.status();
    if (tensor.value().rows() != loaded.num_nodes ||
        tensor.value().cols() != loaded.num_nodes)
      return Status::InvalidArgument(
          "corrupt archive: score matrix of timestamp " + std::to_string(t) +
          " is not num_nodes x num_nodes");
    loaded_scores[static_cast<size_t>(t)] = std::move(tensor).value();
  }
  shape = std::move(loaded);
  scores = std::move(loaded_scores);
  return Status::Ok();
}

void FitScoresPerSnapshot(
    const graphs::TemporalGraph& observed, const ObservedShape& shape,
    std::vector<nn::Tensor>& scores,
    const std::function<nn::Tensor(
        const std::vector<graphs::TemporalEdge>&)>& fit_snapshot) {
  scores.assign(static_cast<size_t>(shape.num_timestamps), nn::Tensor());
  for (int t = 0; t < shape.num_timestamps; ++t) {
    if (shape.edges_per_timestamp[static_cast<size_t>(t)] == 0) continue;
    auto span = observed.EdgesAt(static_cast<graphs::Timestamp>(t));
    std::vector<graphs::TemporalEdge> snap(span.begin(), span.end());
    scores[static_cast<size_t>(t)] = fit_snapshot(snap);
  }
}

graphs::TemporalGraph GenerateFromScores(
    const ObservedShape& shape, const std::vector<nn::Tensor>& scores,
    Rng& rng) {
  TGSIM_CHECK_GT(shape.num_nodes, 0);  // Requires a Fit() or LoadState().
  TGSIM_CHECK_EQ(scores.size(),
                 static_cast<size_t>(shape.num_timestamps));
  std::vector<graphs::TemporalEdge> out;
  for (int t = 0; t < shape.num_timestamps; ++t) {
    int64_t m_t = shape.edges_per_timestamp[static_cast<size_t>(t)];
    if (m_t == 0) continue;
    SampleEdgesFromScores(scores[static_cast<size_t>(t)], m_t,
                          static_cast<graphs::Timestamp>(t), rng, &out);
  }
  return graphs::TemporalGraph::FromEdges(shape.num_nodes,
                                          shape.num_timestamps,
                                          std::move(out));
}

}  // namespace tgsim::baselines
