#include "baselines/state_io.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <iterator>
#include <limits>
#include <utility>
#include <vector>

#include "baselines/score_sampling.h"
#include "storage/block_file.h"

namespace tgsim::baselines {

namespace {

/// Field name of the timestamp-t score matrix ("t0", "t1", ...). Built by
/// appending (not `"t" + std::to_string(t)`) to sidestep a GCC 12
/// -Wrestrict false positive on const char* + std::string&&.
std::string ScoreFieldName(int t) {
  std::string name = "t";
  name += std::to_string(t);
  return name;
}

/// Archived counts are untrusted int64s destined for int fields: a value
/// past INT_MAX would wrap in static_cast<int> and crash (or silently
/// mis-size) downstream, so reject it as corruption instead.
bool FitsInt(int64_t value) {
  return value >= 0 && value <= std::numeric_limits<int>::max();
}

}  // namespace

Status TemporalGraphGenerator::SaveState(std::ostream& /*out*/) const {
  return Status::InvalidArgument("method '" + name() +
                                 "' does not implement state serialization");
}

Status TemporalGraphGenerator::LoadState(std::istream& /*in*/) {
  return Status::InvalidArgument("method '" + name() +
                                 "' does not implement state serialization");
}

Status TemporalGraphGenerator::LoadState(std::istream& in,
                                         const std::string& /*path*/) {
  // Default: the path is only a hint for methods that page state from
  // disk; everyone else restores entirely from the stream.
  return LoadState(in);
}

Status TemporalGraphGenerator::Update(const graphs::TemporalGraph& /*delta*/,
                                      Rng& /*rng*/) {
  return Status::Unimplemented("method '" + name() +
                               "' does not implement incremental update");
}

Status RequireFitted(bool fitted, const std::string& method) {
  if (fitted) return Status::Ok();
  return Status::InvalidArgument("SaveState of '" + method +
                                 "' requires a prior Fit()");
}

Status RequireUpdatable(bool fitted, const graphs::TemporalGraph& delta,
                        const ObservedShape& shape,
                        const std::string& method) {
  if (!fitted)
    return Status::InvalidArgument("Update of '" + method +
                                   "' requires a prior Fit()");
  if (!delta.finalized())
    return Status::InvalidArgument("Update of '" + method +
                                   "' requires a finalized delta graph");
  if (delta.num_nodes() > shape.num_nodes ||
      delta.num_timestamps() > shape.num_timestamps)
    return Status::InvalidArgument(
        "Update of '" + method + "': delta spans " +
        std::to_string(delta.num_nodes()) + " nodes x " +
        std::to_string(delta.num_timestamps()) +
        " timestamps but the fitted shape is " +
        std::to_string(shape.num_nodes) + " x " +
        std::to_string(shape.num_timestamps) +
        " (growing either axis requires a full refit)");
  return Status::Ok();
}

void MergeDeltaShape(ObservedShape& shape,
                     const graphs::TemporalGraph& delta) {
  const std::vector<int64_t> per_t = delta.EdgesPerTimestamp();
  TGSIM_CHECK_LE(per_t.size(), shape.edges_per_timestamp.size());
  for (size_t t = 0; t < per_t.size(); ++t)
    shape.edges_per_timestamp[t] += per_t[t];
}

graphs::TemporalGraph MergeSupportGraph(const graphs::TemporalGraph& support,
                                        const graphs::TemporalGraph& delta) {
  std::vector<graphs::TemporalEdge> edges;
  edges.reserve(static_cast<size_t>(support.num_edges() + delta.num_edges()));
  const auto support_edges = support.edges();
  const auto delta_edges = delta.edges();
  edges.insert(edges.end(), support_edges.begin(), support_edges.end());
  edges.insert(edges.end(), delta_edges.begin(), delta_edges.end());
  Result<graphs::TemporalGraph> merged = graphs::TemporalGraph::FromEdges(
      support.num_nodes(), support.num_timestamps(), std::move(edges));
  // RequireUpdatable bounds the delta to the support's universe, so the
  // merge cannot fail.
  TGSIM_CHECK(merged.ok());
  return std::move(merged).value();
}

int64_t ParamsResidentBytes(const std::vector<nn::Var>& params) {
  int64_t bytes = 0;
  for (const nn::Var& p : params)
    bytes += static_cast<int64_t>(p.rows()) * static_cast<int64_t>(p.cols()) *
             static_cast<int64_t>(sizeof(nn::Scalar));
  return bytes;
}

std::vector<int> SampleRecentSnapshots(const std::vector<int>& candidates,
                                       int k, int num_timestamps, Rng& rng) {
  if (k >= static_cast<int>(candidates.size())) return candidates;
  std::vector<int> picked;
  if (k <= 0) return picked;
  const double tau = std::max(1.0, num_timestamps / 4.0);
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (int t : candidates)
    weights.push_back(std::exp((t - (num_timestamps - 1)) / tau));
  picked.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    const size_t idx = rng.WeightedChoice(weights);
    picked.push_back(candidates[idx]);
    weights[idx] = 0.0;  // Without replacement.
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

void WriteShape(serialize::ArchiveWriter& writer,
                const ObservedShape& shape) {
  writer.BeginSection("shape");
  writer.WriteInt("num_nodes", shape.num_nodes);
  writer.WriteInt("num_timestamps", shape.num_timestamps);
  writer.WriteIntVector("edges_per_timestamp", shape.edges_per_timestamp);
}

Status ReadShape(const serialize::ArchiveReader& reader,
                 ObservedShape& shape) {
  Result<int64_t> nodes = reader.GetInt("shape", "num_nodes");
  if (!nodes.ok()) return nodes.status();
  Result<int64_t> timestamps = reader.GetInt("shape", "num_timestamps");
  if (!timestamps.ok()) return timestamps.status();
  Result<std::vector<int64_t>> per_t =
      reader.GetIntVector("shape", "edges_per_timestamp");
  if (!per_t.ok()) return per_t.status();
  // A fitted shape always has n >= 1 and T >= 1 (the TemporalGraph ctor
  // enforces both), so anything else is corruption — rejecting it here
  // keeps Generate from CHECK-aborting on a loaded artifact.
  if (nodes.value() <= 0 || !FitsInt(nodes.value()) ||
      timestamps.value() <= 0 || !FitsInt(timestamps.value()) ||
      per_t.value().size() != static_cast<size_t>(timestamps.value()))
    return Status::InvalidArgument(
        "corrupt archive: inconsistent shape section");
  for (int64_t count : per_t.value())
    if (count < 0)
      return Status::InvalidArgument(
          "corrupt archive: negative per-timestamp edge count");
  shape.num_nodes = static_cast<int>(nodes.value());
  shape.num_timestamps = static_cast<int>(timestamps.value());
  shape.edges_per_timestamp = std::move(per_t).value();
  return Status::Ok();
}

void WriteSupportGraph(serialize::ArchiveWriter& writer,
                       const std::string& section,
                       const graphs::TemporalGraph& graph) {
  writer.BeginSection(section);
  writer.WriteInt("num_nodes", graph.num_nodes());
  writer.WriteInt("num_timestamps", graph.num_timestamps());
  std::vector<int64_t> u, v, t;
  u.reserve(static_cast<size_t>(graph.num_edges()));
  v.reserve(static_cast<size_t>(graph.num_edges()));
  t.reserve(static_cast<size_t>(graph.num_edges()));
  for (const graphs::TemporalEdge& e : graph.edges()) {
    u.push_back(e.u);
    v.push_back(e.v);
    t.push_back(e.t);
  }
  writer.WriteIntVector("edge_u", u);
  writer.WriteIntVector("edge_v", v);
  writer.WriteIntVector("edge_t", t);
}

Result<graphs::TemporalGraph> ReadSupportGraph(
    const serialize::ArchiveReader& reader, const std::string& section) {
  Result<int64_t> nodes = reader.GetInt(section, "num_nodes");
  if (!nodes.ok()) return nodes.status();
  Result<int64_t> timestamps = reader.GetInt(section, "num_timestamps");
  if (!timestamps.ok()) return timestamps.status();
  Result<std::vector<int64_t>> u = reader.GetIntVector(section, "edge_u");
  if (!u.ok()) return u.status();
  Result<std::vector<int64_t>> v = reader.GetIntVector(section, "edge_v");
  if (!v.ok()) return v.status();
  Result<std::vector<int64_t>> t = reader.GetIntVector(section, "edge_t");
  if (!t.ok()) return t.status();
  if (nodes.value() <= 0 || !FitsInt(nodes.value()) ||
      timestamps.value() <= 0 || !FitsInt(timestamps.value()) ||
      u.value().size() != v.value().size() ||
      u.value().size() != t.value().size())
    return Status::InvalidArgument("corrupt archive: inconsistent '" +
                                   section + "' graph section");
  std::vector<graphs::TemporalEdge> edges;
  edges.reserve(u.value().size());
  for (size_t i = 0; i < u.value().size(); ++i) {
    graphs::TemporalEdge e;
    e.u = static_cast<graphs::NodeId>(u.value()[i]);
    e.v = static_cast<graphs::NodeId>(v.value()[i]);
    e.t = static_cast<graphs::Timestamp>(t.value()[i]);
    if (e.u < 0 || e.u >= nodes.value() || e.v < 0 ||
        e.v >= nodes.value() || e.t < 0 || e.t >= timestamps.value())
      return Status::InvalidArgument("corrupt archive: edge " +
                                     std::to_string(i) + " of section '" +
                                     section + "' is out of range");
    edges.push_back(e);
  }
  return graphs::TemporalGraph::FromEdges(static_cast<int>(nodes.value()),
                                          static_cast<int>(timestamps.value()),
                                          std::move(edges));
}

Status SaveScoreState(const ObservedShape& shape,
                      const storage::ScoreStore& store, int64_t score_topk,
                      std::ostream& out, const std::string& method) {
  Status fitted = RequireFitted(shape.num_nodes > 0, method);
  if (!fitted.ok()) return fitted;
  TGSIM_CHECK_EQ(store.num_timestamps(), shape.num_timestamps);
  const bool inline_mode = !store.block_backed() &&
                           shape.num_nodes <= kInlineScoreNodeLimit &&
                           store.TotalNnz() <= kInlineScoreNnzLimit;
  serialize::ArchiveWriter writer(out);
  WriteShape(writer, shape);
  writer.BeginSection("score_store");
  writer.WriteInt("score_topk", score_topk);
  writer.WriteString("format", inline_mode ? "inline" : "blocks");
  if (inline_mode) {
    writer.BeginSection("sparse_scores");
    for (int t = 0; t < shape.num_timestamps; ++t) {
      if (!store.has(t)) continue;  // Edge-free snapshot.
      const storage::ScoreStore::Lease lease = store.Snapshot(t);
      storage::WriteSparseScores(writer, ScoreFieldName(t), lease.view);
    }
    return writer.Finish();
  }
  Status finished = writer.Finish();
  if (!finished.ok()) return finished;
  // Large models: snapshots ride as a trailing binary BlockFile so the
  // loader can mmap them per snapshot instead of materializing the lot.
  storage::BlockFileWriter blocks(out);
  for (int t = 0; t < shape.num_timestamps; ++t) {
    if (!store.has(t)) continue;
    const storage::ScoreStore::Lease lease = store.Snapshot(t);
    blocks.AddBlock(storage::ScoreBlockName(t),
                    storage::EncodeScoreBlock(lease.view));
  }
  return blocks.Finish();
}

namespace {

/// Every block of a score BlockFile must be named "t<k>" for a timestamp
/// with edges; anything else is corruption (or someone else's file).
Status CheckScoreBlockNames(const storage::BlockFileReader& reader,
                            const ObservedShape& shape) {
  for (const std::string& name : reader.BlockNames()) {
    int64_t t = -1;
    if (name.size() >= 2 && name[0] == 't') {
      t = 0;
      for (size_t i = 1; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          t = -1;
          break;
        }
        t = t * 10 + (name[i] - '0');
        if (t > std::numeric_limits<int>::max()) {
          t = -1;
          break;
        }
      }
    }
    if (t < 0 || t >= shape.num_timestamps ||
        shape.edges_per_timestamp[static_cast<size_t>(t)] == 0) {
      return Status::InvalidArgument(
          "corrupt archive: unexpected score block '" + name + "'");
    }
  }
  return Status::Ok();
}

}  // namespace

Status LoadScoreState(ObservedShape& shape, storage::ScoreStore& store,
                      std::istream& in, const std::string& path,
                      int64_t legacy_topk) {
  Result<serialize::ArchiveReader> parsed =
      serialize::ArchiveReader::Parse(in);
  if (!parsed.ok()) return parsed.status();
  const serialize::ArchiveReader& reader = parsed.value();
  ObservedShape loaded;
  Status s = ReadShape(reader, loaded);
  if (!s.ok()) return s;

  storage::ScoreStore loaded_store;
  if (reader.HasSection("scores")) {
    // Pre-sparse archive: dense n x n tensors, compacted on the way in
    // with the configured truncation. FromDense is deterministic, so a
    // legacy artifact keeps generating the same edges as one converted
    // and re-saved.
    loaded_store.Reset(loaded.num_timestamps);
    for (int t = 0; t < loaded.num_timestamps; ++t) {
      if (loaded.edges_per_timestamp[static_cast<size_t>(t)] == 0) continue;
      Result<nn::Tensor> tensor =
          reader.GetTensor("scores", ScoreFieldName(t));
      if (!tensor.ok()) return tensor.status();
      if (tensor.value().rows() != loaded.num_nodes ||
          tensor.value().cols() != loaded.num_nodes)
        return Status::InvalidArgument(
            "corrupt archive: score matrix of timestamp " +
            std::to_string(t) + " is not num_nodes x num_nodes");
      loaded_store.Set(t, storage::SparseScoreRows::FromDense(tensor.value(),
                                                              legacy_topk));
    }
  } else {
    Result<std::string> format = reader.GetString("score_store", "format");
    if (!format.ok()) return format.status();
    Result<int64_t> topk = reader.GetInt("score_store", "score_topk");
    if (!topk.ok()) return topk.status();
    if (format.value() == "inline") {
      loaded_store.Reset(loaded.num_timestamps);
      for (int t = 0; t < loaded.num_timestamps; ++t) {
        if (loaded.edges_per_timestamp[static_cast<size_t>(t)] == 0) continue;
        Result<storage::SparseScoreRows> rows = storage::ReadSparseScores(
            reader, "sparse_scores", ScoreFieldName(t));
        if (!rows.ok()) return rows.status();
        loaded_store.Set(t, std::move(rows).value());
      }
    } else if (format.value() == "blocks") {
      // ArchiveReader::Parse extracts the final "end" token with >> and
      // leaves its trailing newline in the stream; the block writer took
      // its base offset *after* that newline, so consume it here.
      if (in.get() != '\n') {
        return Status::InvalidArgument(
            "corrupt archive: no score block payload after the state");
      }
      const auto base = in.tellg();
      if (base < 0) {
        return Status::IoError(
            "corrupt archive: cannot locate the score block payload");
      }
      Result<storage::BlockFileReader> blocks = Status::Internal("unset");
      if (path.empty()) {
        // No backing file (in-memory stream): buffer the payload. Loses
        // the out-of-core property but keeps the format readable.
        std::istreambuf_iterator<char> first(in);
        std::istreambuf_iterator<char> last;
        std::string payload(first, last);
        blocks = storage::BlockFileReader::FromBuffer(
            payload, static_cast<int64_t>(base));
      } else {
        blocks = storage::BlockFileReader::OpenFile(
            path, static_cast<int64_t>(base));
        // The stream contract leaves `in` past the state either way.
        in.seekg(0, std::ios::end);
      }
      if (!blocks.ok()) return blocks.status();
      Status names = CheckScoreBlockNames(blocks.value(), loaded);
      if (!names.ok()) return names;
      Status sums = blocks.value().VerifyChecksums();
      if (!sums.ok()) return sums;
      loaded_store = storage::ScoreStore::FromBlockFile(
          std::move(blocks).value(), loaded.num_timestamps);
    } else {
      return Status::InvalidArgument(
          "corrupt archive: unknown score_store format '" + format.value() +
          "'");
    }
  }

  for (int t = 0; t < loaded.num_timestamps; ++t) {
    if (loaded.edges_per_timestamp[static_cast<size_t>(t)] == 0) continue;
    if (!loaded_store.has(t)) {
      return Status::InvalidArgument(
          "corrupt archive: no scores for timestamp " + std::to_string(t));
    }
    Status check = loaded_store.CheckSnapshot(t, loaded.num_nodes);
    if (!check.ok()) {
      return Status::InvalidArgument("corrupt archive: " + check.message());
    }
  }
  shape = std::move(loaded);
  store = std::move(loaded_store);
  return Status::Ok();
}

void FitScoresPerSnapshot(
    const graphs::TemporalGraph& observed, const ObservedShape& shape,
    int64_t score_topk, storage::ScoreStore& store,
    const std::function<SnapshotScores(
        const std::vector<graphs::TemporalEdge>&)>& fit_snapshot) {
  store.Reset(shape.num_timestamps);
  for (int t = 0; t < shape.num_timestamps; ++t) {
    if (shape.edges_per_timestamp[static_cast<size_t>(t)] == 0) continue;
    auto span = observed.EdgesAt(static_cast<graphs::Timestamp>(t));
    std::vector<graphs::TemporalEdge> snap(span.begin(), span.end());
    SnapshotScores fitted = fit_snapshot(snap);
    store.Set(t,
              storage::SparseScoreRows::FromSubmatrix(
                  shape.num_nodes, fitted.active, fitted.scores, score_topk));
  }
}

Status UpdateScoresForDelta(
    const graphs::TemporalGraph& delta, ObservedShape& shape,
    storage::ScoreStore& store, int64_t score_topk, int max_warm_snapshots,
    Rng& rng, const std::string& method,
    const std::function<SnapshotScores(
        const std::vector<graphs::TemporalEdge>&)>& fit_snapshot) {
  Status ok = RequireUpdatable(shape.num_nodes > 0, delta, shape, method);
  if (!ok.ok()) return ok;
  if (delta.num_edges() == 0) return Status::Ok();

  const std::vector<int64_t> delta_per_t = delta.EdgesPerTimestamp();
  std::vector<int> fresh;    // first edges at t: rows fitted from scratch
  std::vector<int> touched;  // already fitted at t: warm-start candidates
  for (size_t t = 0; t < delta_per_t.size(); ++t) {
    if (delta_per_t[t] == 0) continue;
    if (shape.edges_per_timestamp[t] == 0)
      fresh.push_back(static_cast<int>(t));
    else
      touched.push_back(static_cast<int>(t));
  }

  // A block-backed store pages rows from the artifact file; updating
  // replaces rows, so rematerialize the snapshots resident first.
  if (store.block_backed()) {
    storage::ScoreStore resident;
    resident.Reset(shape.num_timestamps);
    for (int t = 0; t < shape.num_timestamps; ++t) {
      if (!store.has(t)) continue;
      const storage::ScoreStore::Lease lease = store.Snapshot(t);
      resident.Set(t, storage::SparseScoreRows::CopyOf(lease.view));
    }
    store = std::move(resident);
  }

  auto snapshot_edges = [&delta](int t) {
    auto span = delta.EdgesAt(static_cast<graphs::Timestamp>(t));
    return std::vector<graphs::TemporalEdge>(span.begin(), span.end());
  };
  // Snapshots gaining their first edges must be fitted: Generate requires
  // rows wherever the merged edge budget is positive.
  for (int t : fresh) {
    SnapshotScores fitted = fit_snapshot(snapshot_edges(t));
    store.Set(t,
              storage::SparseScoreRows::FromSubmatrix(
                  shape.num_nodes, fitted.active, fitted.scores, score_topk));
  }
  // Previously-fitted snapshots take a bounded warm start, most recent
  // first; unselected ones keep their rows (only their budget grows).
  for (int t : SampleRecentSnapshots(touched, max_warm_snapshots,
                                     shape.num_timestamps, rng)) {
    SnapshotScores fitted = fit_snapshot(snapshot_edges(t));
    const storage::SparseScoreRows delta_rows =
        storage::SparseScoreRows::FromSubmatrix(
            shape.num_nodes, fitted.active, fitted.scores, score_topk);
    storage::SparseScoreRows merged;
    {
      const storage::ScoreStore::Lease lease = store.Snapshot(t);
      merged = storage::SparseScoreRows::WeightedMerge(
          lease.view,
          static_cast<double>(
              shape.edges_per_timestamp[static_cast<size_t>(t)]),
          delta_rows.View(),
          static_cast<double>(delta_per_t[static_cast<size_t>(t)]),
          score_topk);
    }
    store.Set(t, std::move(merged));
  }
  MergeDeltaShape(shape, delta);
  return Status::Ok();
}

graphs::TemporalGraph GenerateFromScores(const ObservedShape& shape,
                                         const storage::ScoreStore& store,
                                         Rng& rng) {
  TGSIM_CHECK_GT(shape.num_nodes, 0);  // Requires a Fit() or LoadState().
  TGSIM_CHECK_EQ(store.num_timestamps(), shape.num_timestamps);
  std::vector<graphs::TemporalEdge> out;
  for (int t = 0; t < shape.num_timestamps; ++t) {
    int64_t m_t = shape.edges_per_timestamp[static_cast<size_t>(t)];
    if (m_t == 0) continue;
    TGSIM_CHECK(store.has(t));  // Load validation guarantees presence.
    const storage::ScoreStore::Lease lease = store.Snapshot(t);
    SampleEdgesFromScores(lease.view, m_t, static_cast<graphs::Timestamp>(t),
                          rng, &out);
  }
  return graphs::TemporalGraph::FromEdges(shape.num_nodes,
                                          shape.num_timestamps,
                                          std::move(out));
}

}  // namespace tgsim::baselines
