#include "baselines/walks.h"

#include <algorithm>

namespace tgsim::baselines {

TemporalWalkSampler::TemporalWalkSampler(const graphs::TemporalGraph* graph,
                                         int time_window)
    : graph_(graph),
      time_window_(time_window),
      starts_(graph, time_window, /*uniform=*/false) {
  TGSIM_CHECK(graph != nullptr);
}

TemporalWalk TemporalWalkSampler::SampleFrom(graphs::TemporalNodeRef start,
                                             int max_length, Rng& rng) const {
  TemporalWalk walk;
  walk.steps.push_back(start);
  graphs::TemporalNodeRef cur = start;
  while (walk.length() < max_length) {
    std::vector<graphs::TemporalNeighbor> nbrs =
        graph_->TemporalNeighborhood(cur.node, cur.t, time_window_);
    if (nbrs.empty()) break;
    const graphs::TemporalNeighbor& nxt = nbrs[static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(nbrs.size())))];
    cur = {nxt.node, nxt.t};
    walk.steps.push_back(cur);
  }
  return walk;
}

TemporalWalk TemporalWalkSampler::Sample(int max_length, Rng& rng) const {
  std::vector<graphs::TemporalNodeRef> start = starts_.Sample(1, rng);
  return SampleFrom(start[0], max_length, rng);
}

std::vector<TemporalWalk> TemporalWalkSampler::SampleMany(int count,
                                                          int max_length,
                                                          Rng& rng) const {
  std::vector<TemporalWalk> walks;
  walks.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) walks.push_back(Sample(max_length, rng));
  return walks;
}

graphs::TemporalGraph AssembleFromWalks(
    const std::vector<TemporalWalk>& walks, int num_nodes,
    int num_timestamps, int64_t edge_budget, Rng& rng) {
  graphs::TemporalGraph g(num_nodes, num_timestamps);
  int64_t emitted = 0;
  // Track emitted endpoints for the degree-proportional filler.
  std::vector<graphs::NodeId> pool;
  for (const TemporalWalk& w : walks) {
    for (size_t i = 0; i + 1 < w.steps.size() && emitted < edge_budget;
         ++i) {
      graphs::NodeId u = w.steps[i].node;
      graphs::NodeId v = w.steps[i + 1].node;
      graphs::Timestamp t = w.steps[i + 1].t;
      if (u == v) continue;
      TGSIM_DCHECK(t >= 0 && t < num_timestamps);
      g.AddEdge(u, v, t);
      pool.push_back(u);
      pool.push_back(v);
      ++emitted;
    }
    if (emitted >= edge_budget) break;
  }
  while (emitted < edge_budget) {
    graphs::NodeId u, v;
    if (pool.size() >= 2) {
      u = pool[static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(pool.size())))];
      v = pool[static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(pool.size())))];
    } else {
      u = static_cast<graphs::NodeId>(
          rng.UniformInt(static_cast<int64_t>(num_nodes)));
      v = static_cast<graphs::NodeId>(
          rng.UniformInt(static_cast<int64_t>(num_nodes)));
    }
    if (u == v) v = static_cast<graphs::NodeId>((v + 1) % num_nodes);
    auto t = static_cast<graphs::Timestamp>(
        rng.UniformInt(static_cast<int64_t>(num_timestamps)));
    g.AddEdge(u, v, t);
    ++emitted;
  }
  g.Finalize();
  return g;
}

}  // namespace tgsim::baselines
