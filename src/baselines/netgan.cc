#include "baselines/netgan.h"

#include <algorithm>

#include "baselines/score_sampling.h"
#include "baselines/state_io.h"
#include "nn/autograd.h"
#include "nn/optim.h"

namespace tgsim::baselines {

void NetGanConfig::DefineParams(config::ParamBinder& binder) {
  binder.Bind("rank", &rank, "rank of the logit factorization U V^T");
  binder.Bind("epochs", &epochs, "gradient-descent epochs per snapshot");
  binder.Bind("learning_rate", &learning_rate, "learning rate");
}

TGSIM_CONFIG_IMPLEMENT_PARAMS(NetGanConfig)

NetGanGenerator::NetGanGenerator(NetGanConfig config) : config_(config) {}

void NetGanGenerator::Fit(const graphs::TemporalGraph& observed, Rng& rng) {
  shape_.CaptureFrom(observed);
  // Fit-once/serve-many: every snapshot model trains here, and only the
  // resulting score matrices are kept — Generate never sees the training
  // graph again.
  FitScoresPerSnapshot(
      observed, shape_, scores_,
      [&](const std::vector<graphs::TemporalEdge>& snap) {
        return FitSnapshotScores(snap, rng);
      });
}

nn::Tensor NetGanGenerator::FitSnapshotScores(
    const std::vector<graphs::TemporalEdge>& edges, Rng& rng) const {
  const int n = shape_.num_nodes;
  nn::Tensor a = DenseAdjacency(n, edges);

  // Active nodes (positive degree) and their transition rows P = D^{-1} A.
  std::vector<int> active;
  for (int u = 0; u < n; ++u) {
    double deg = 0.0;
    for (int v = 0; v < n; ++v) deg += a.at(u, v);
    if (deg > 0.0) active.push_back(u);
  }
  if (active.empty()) return nn::Tensor(n, n);
  const int na = static_cast<int>(active.size());
  nn::Tensor targets(na, na);
  std::vector<double> degree(static_cast<size_t>(na), 0.0);
  for (int i = 0; i < na; ++i) {
    double deg = 0.0;
    for (int j = 0; j < na; ++j) deg += a.at(active[i], active[j]);
    degree[static_cast<size_t>(i)] = deg;
    if (deg > 0.0)
      for (int j = 0; j < na; ++j)
        targets.at(i, j) = a.at(active[i], active[j]) / deg;
  }

  // Low-rank logits: U V^T over the active subgraph.
  const int r = std::min(config_.rank, na);
  Rng local = rng.Fork();
  nn::Var u_mat = nn::Var::Param(nn::Tensor::Randn(local, na, r, 0.1));
  nn::Var v_mat = nn::Var::Param(nn::Tensor::Randn(local, na, r, 0.1));
  nn::Adam opt({u_mat, v_mat}, config_.learning_rate);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    opt.ZeroGrad();
    nn::Var logits = nn::MatMul(u_mat, nn::Transpose(v_mat));
    nn::Var loss = nn::RowCrossEntropyWithLogits(logits, targets);
    nn::Backward(loss);
    opt.Step();
  }

  // Edge scores: stationary(u) * P_hat(u, v), symmetrized, embedded into
  // the full n x n space. The stationary distribution of an undirected walk
  // is degree-proportional.
  nn::Tensor p_hat = u_mat.value()
                         .MatMul(v_mat.value().Transpose())
                         .SoftmaxRows();
  double deg_total = 0.0;
  for (double d : degree) deg_total += d;
  nn::Tensor scores(n, n);
  for (int i = 0; i < na; ++i) {
    double pi = degree[static_cast<size_t>(i)] / std::max(deg_total, 1e-9);
    for (int j = 0; j < na; ++j) {
      if (i == j) continue;
      double s = pi * p_hat.at(i, j);
      scores.at(active[i], active[j]) += s;
      scores.at(active[j], active[i]) += s;
    }
  }
  return scores;
}

graphs::TemporalGraph NetGanGenerator::Generate(Rng& rng) {
  return GenerateFromScores(shape_, scores_, rng);
}

Status NetGanGenerator::SaveState(std::ostream& out) const {
  return SaveScoreState(shape_, scores_, out, name());
}

Status NetGanGenerator::LoadState(std::istream& in) {
  return LoadScoreState(shape_, scores_, in);
}

}  // namespace tgsim::baselines
