#include "baselines/netgan.h"

#include <algorithm>

#include "baselines/score_sampling.h"
#include "nn/autograd.h"
#include "nn/optim.h"

namespace tgsim::baselines {

void NetGanConfig::DefineParams(config::ParamBinder& binder) {
  binder.Bind("rank", &rank, "rank of the logit factorization U V^T");
  binder.Bind("epochs", &epochs, "gradient-descent epochs per snapshot");
  binder.Bind("learning_rate", &learning_rate, "learning rate");
  binder.Bind("score_topk", &score_topk,
              "stored score entries per row (0 = all positive entries)");
}

TGSIM_CONFIG_IMPLEMENT_PARAMS(NetGanConfig)

NetGanGenerator::NetGanGenerator(NetGanConfig config) : config_(config) {}

void NetGanGenerator::Fit(const graphs::TemporalGraph& observed, Rng& rng) {
  shape_.CaptureFrom(observed);
  // Fit-once/serve-many: every snapshot model trains here, and only the
  // resulting sparse score rows are kept — Generate never sees the
  // training graph again.
  FitScoresPerSnapshot(
      observed, shape_, config_.score_topk, store_,
      [&](const std::vector<graphs::TemporalEdge>& snap) {
        return FitSnapshotScores(snap, rng);
      });
}

SnapshotScores NetGanGenerator::FitSnapshotScores(
    const std::vector<graphs::TemporalEdge>& edges, Rng& rng) const {
  const int n = shape_.num_nodes;
  // Active nodes: endpoints of non-self-loop edges — exactly the nodes
  // with positive degree in the snapshot's simple adjacency. Training
  // runs on the active submatrix only; generation scatters back.
  std::vector<int> active;
  {
    std::vector<bool> seen(static_cast<size_t>(n), false);
    for (const auto& e : edges) {
      if (e.u == e.v) continue;
      seen[static_cast<size_t>(e.u)] = true;
      seen[static_cast<size_t>(e.v)] = true;
    }
    for (int u = 0; u < n; ++u)
      if (seen[static_cast<size_t>(u)]) active.push_back(u);
  }
  if (active.size() < 2) return {};
  const int na = static_cast<int>(active.size());
  std::vector<int> remap(static_cast<size_t>(n), -1);
  for (int i = 0; i < na; ++i) remap[static_cast<size_t>(active[i])] = i;

  nn::Tensor a_sub(na, na);
  for (const auto& e : edges) {
    if (e.u == e.v) continue;
    const int u = remap[static_cast<size_t>(e.u)];
    const int v = remap[static_cast<size_t>(e.v)];
    a_sub.at(u, v) = 1.0;
    a_sub.at(v, u) = 1.0;
  }

  // Transition targets P = D^{-1} A over the active subgraph.
  nn::Tensor targets(na, na);
  std::vector<double> degree(static_cast<size_t>(na), 0.0);
  for (int i = 0; i < na; ++i) {
    double deg = 0.0;
    for (int j = 0; j < na; ++j) deg += a_sub.at(i, j);
    degree[static_cast<size_t>(i)] = deg;
    if (deg > 0.0)
      for (int j = 0; j < na; ++j)
        targets.at(i, j) = a_sub.at(i, j) / deg;
  }

  // Low-rank logits: U V^T over the active subgraph.
  const int r = std::min(config_.rank, na);
  Rng local = rng.Fork();
  nn::Var u_mat = nn::Var::Param(nn::Tensor::Randn(local, na, r, 0.1));
  nn::Var v_mat = nn::Var::Param(nn::Tensor::Randn(local, na, r, 0.1));
  nn::Adam opt({u_mat, v_mat}, config_.learning_rate);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    opt.ZeroGrad();
    nn::Var logits = nn::MatMul(u_mat, nn::Transpose(v_mat));
    nn::Var loss = nn::RowCrossEntropyWithLogits(logits, targets);
    nn::Backward(loss);
    opt.Step();
  }

  // Edge scores: stationary(u) * P_hat(u, v), symmetrized, over the
  // active submatrix. The stationary distribution of an undirected walk
  // is degree-proportional.
  nn::Tensor p_hat = u_mat.value()
                         .MatMul(v_mat.value().Transpose())
                         .SoftmaxRows();
  double deg_total = 0.0;
  for (double d : degree) deg_total += d;
  SnapshotScores out;
  out.scores = nn::Tensor(na, na);
  for (int i = 0; i < na; ++i) {
    double pi = degree[static_cast<size_t>(i)] / std::max(deg_total, 1e-9);
    for (int j = 0; j < na; ++j) {
      if (i == j) continue;
      double s = pi * p_hat.at(i, j);
      out.scores.at(i, j) += s;
      out.scores.at(j, i) += s;
    }
  }
  out.active = std::move(active);
  return out;
}

graphs::TemporalGraph NetGanGenerator::Generate(Rng& rng) {
  return GenerateFromScores(shape_, store_, rng);
}

Status NetGanGenerator::Update(const graphs::TemporalGraph& delta, Rng& rng) {
  return UpdateScoresForDelta(
      delta, shape_, store_, config_.score_topk, kUpdateWarmSnapshotLimit,
      rng, name(), [&](const std::vector<graphs::TemporalEdge>& snap) {
        return FitSnapshotScores(snap, rng);
      });
}

Status NetGanGenerator::SaveState(std::ostream& out) const {
  return SaveScoreState(shape_, store_, config_.score_topk, out, name());
}

Status NetGanGenerator::LoadState(std::istream& in) {
  return LoadState(in, "");
}

Status NetGanGenerator::LoadState(std::istream& in, const std::string& path) {
  return LoadScoreState(shape_, store_, in, path, config_.score_topk);
}

int64_t NetGanGenerator::ResidentStateBytes() const {
  return static_cast<int64_t>(sizeof(*this)) + store_.ResidentBytes() +
         static_cast<int64_t>(shape_.edges_per_timestamp.capacity() *
                              sizeof(int64_t));
}

}  // namespace tgsim::baselines
