#include "baselines/sbmgnn.h"

#include <algorithm>
#include <cmath>

#include "baselines/score_sampling.h"
#include "baselines/state_io.h"
#include "nn/autograd.h"
#include "nn/kernels.h"
#include "nn/optim.h"

namespace tgsim::baselines {

void SbmGnnConfig::DefineParams(config::ParamBinder& binder) {
  binder.Bind("hidden_dim", &hidden_dim, "GCN encoder hidden width");
  binder.Bind("num_blocks", &num_blocks, "overlapping SBM blocks");
  binder.Bind("epochs", &epochs, "training epochs per snapshot");
  binder.Bind("learning_rate", &learning_rate, "Adam learning rate");
  binder.Bind("score_topk", &score_topk,
              "stored score entries per row (0 = all positive entries)");
}

TGSIM_CONFIG_IMPLEMENT_PARAMS(SbmGnnConfig)

SbmGnnGenerator::SbmGnnGenerator(SbmGnnConfig config) : config_(config) {}

void SbmGnnGenerator::Fit(const graphs::TemporalGraph& observed, Rng& rng) {
  shape_.CaptureFrom(observed);
  // Fit-once/serve-many: every snapshot model trains here, and only the
  // decoded sparse score rows are kept — Generate never sees the
  // training graph again.
  FitScoresPerSnapshot(
      observed, shape_, config_.score_topk, store_,
      [&](const std::vector<graphs::TemporalEdge>& snap) {
        return FitSnapshotScores(snap, rng);
      });
}

Status SbmGnnGenerator::Update(const graphs::TemporalGraph& delta, Rng& rng) {
  return UpdateScoresForDelta(
      delta, shape_, store_, config_.score_topk, kUpdateWarmSnapshotLimit,
      rng, name(), [&](const std::vector<graphs::TemporalEdge>& snap) {
        return FitSnapshotScores(snap, rng);
      });
}

SnapshotScores SbmGnnGenerator::FitSnapshotScores(
    const std::vector<graphs::TemporalEdge>& edges, Rng& rng) const {
  const int n = shape_.num_nodes;
  std::vector<int> active;
  {
    std::vector<bool> seen(static_cast<size_t>(n), false);
    for (const auto& e : edges) {
      seen[static_cast<size_t>(e.u)] = true;
      seen[static_cast<size_t>(e.v)] = true;
    }
    for (int u = 0; u < n; ++u)
      if (seen[static_cast<size_t>(u)]) active.push_back(u);
  }
  if (active.size() < 2) return {};
  const int na = static_cast<int>(active.size());
  std::vector<int> remap(static_cast<size_t>(n), -1);
  for (int i = 0; i < na; ++i) remap[static_cast<size_t>(active[i])] = i;

  nn::Tensor a_sub(na, na);
  int64_t m_sub = 0;
  for (const auto& e : edges) {
    int u = remap[static_cast<size_t>(e.u)];
    int v = remap[static_cast<size_t>(e.v)];
    if (u == v) continue;
    if (a_sub.at(u, v) == 0.0) ++m_sub;
    a_sub.at(u, v) = 1.0;
    a_sub.at(v, u) = 1.0;
  }

  nn::Var a_hat = nn::Var::Constant(NormalizedAdjacency(a_sub));
  Rng local = rng.Fork();
  const int h = config_.hidden_dim;
  const int k = std::min(config_.num_blocks, na);
  nn::Var w1 = nn::Var::Param(nn::Tensor::GlorotUniform(local, na, h));
  nn::Var w_phi = nn::Var::Param(nn::Tensor::GlorotUniform(local, h, k));
  // Block affinity initialized assortative: strong diagonal.
  nn::Tensor b0(k, k, -1.0);
  for (int i = 0; i < k; ++i) b0.at(i, i) = 1.0;
  nn::Var block = nn::Var::Param(std::move(b0));
  nn::Adam opt({w1, w_phi, block}, config_.learning_rate);

  double pos = static_cast<double>(2 * m_sub);
  double pos_weight =
      std::max(1.0, (static_cast<double>(na) * na - pos) / std::max(pos, 1.0));

  auto forward = [&]() {
    nn::Var h1 = nn::Relu(nn::MatMul(a_hat, w1));
    nn::Var phi = nn::SoftmaxRows(nn::MatMul(nn::MatMul(a_hat, h1), w_phi));
    // Scale keeps sigmoid inputs in a useful range for small k.
    return nn::Scale(
        nn::MatMul(nn::MatMul(phi, block), nn::Transpose(phi)), 4.0);
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    opt.ZeroGrad();
    nn::Var loss =
        nn::BinaryCrossEntropyWithLogits(forward(), a_sub, pos_weight);
    nn::Backward(loss);
    opt.ClipGradNorm(5.0);
    opt.Step();
  }

  nn::Tensor logits = forward().value();
  SnapshotScores out;
  out.scores = nn::Tensor(na, na);
  // Sigmoid whole rows through the dispatched kernel, then zero the
  // diagonal the old element loop skipped (scores start at 0).
  for (int i = 0; i < na; ++i) {
    nn::kernels::SigmoidRow(logits.row(i), out.scores.row(i), na);
    out.scores.at(i, i) = 0.0;
  }
  out.active = std::move(active);
  return out;
}

graphs::TemporalGraph SbmGnnGenerator::Generate(Rng& rng) {
  return GenerateFromScores(shape_, store_, rng);
}

Status SbmGnnGenerator::SaveState(std::ostream& out) const {
  return SaveScoreState(shape_, store_, config_.score_topk, out, name());
}

Status SbmGnnGenerator::LoadState(std::istream& in) {
  return LoadState(in, "");
}

Status SbmGnnGenerator::LoadState(std::istream& in,
                                  const std::string& path) {
  return LoadScoreState(shape_, store_, in, path, config_.score_topk);
}

int64_t SbmGnnGenerator::ResidentStateBytes() const {
  return static_cast<int64_t>(sizeof(*this)) + store_.ResidentBytes() +
         static_cast<int64_t>(shape_.edges_per_timestamp.capacity() *
                              sizeof(int64_t));
}

}  // namespace tgsim::baselines
