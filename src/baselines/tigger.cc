#include "baselines/tigger.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "baselines/state_io.h"
#include "sampling/samplers.h"

namespace tgsim::baselines {

void TiggerConfig::DefineParams(config::ParamBinder& binder) {
  binder.Bind("embedding_dim", &embedding_dim, "node/time embedding width");
  binder.Bind("hidden_dim", &hidden_dim, "GRU hidden state width");
  binder.Bind("walk_length", &walk_length, "temporal walk length");
  binder.Bind("walks_per_epoch", &walks_per_epoch,
              "sampled walks per training epoch");
  binder.Bind("epochs", &epochs, "training epochs");
  binder.Bind("time_window", &time_window,
              "temporal walk window (gap classes span [-w, w])");
  binder.Bind("learning_rate", &learning_rate, "Adam learning rate");
}

TGSIM_CONFIG_IMPLEMENT_PARAMS(TiggerConfig)

TiggerGenerator::TiggerGenerator(TiggerConfig config) : config_(config) {}

TiggerGenerator::~TiggerGenerator() = default;

void TiggerGenerator::BuildModel(Rng& rng) {
  const int n = shape_.num_nodes;
  node_emb_ = std::make_unique<nn::Embedding>(rng, n, config_.embedding_dim);
  time_emb_ = std::make_unique<nn::Embedding>(rng, shape_.num_timestamps,
                                              config_.embedding_dim);
  gru_ = std::make_unique<nn::GruCell>(rng, config_.embedding_dim,
                                       config_.hidden_dim);
  node_head_ = std::make_unique<nn::Linear>(rng, config_.hidden_dim, n);
  gap_head_ =
      std::make_unique<nn::Linear>(rng, config_.hidden_dim, NumGapClasses());
}

std::vector<nn::Var> TiggerGenerator::CollectParams() const {
  std::vector<nn::Var> params;
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(node_emb_.get()),
        static_cast<const nn::Module*>(time_emb_.get()),
        static_cast<const nn::Module*>(gru_.get()),
        static_cast<const nn::Module*>(node_head_.get()),
        static_cast<const nn::Module*>(gap_head_.get())})
    params.insert(params.end(), m->params().begin(), m->params().end());
  return params;
}

void TiggerGenerator::Fit(const graphs::TemporalGraph& observed, Rng& rng) {
  shape_.CaptureFrom(observed);
  // Fit-local: a member sampler would dangle into the caller's graph
  // after Fit returns (generators must be self-contained by then).
  TemporalWalkSampler walk_sampler(&observed, config_.time_window);
  starts_ = std::make_unique<graphs::InitialNodeSampler>(
      &observed, config_.time_window);

  BuildModel(rng);
  const int n = shape_.num_nodes;
  std::vector<nn::Var> params = CollectParams();
  nn::Adam opt(params, config_.learning_rate);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<TemporalWalk> walks = walk_sampler.SampleMany(
        config_.walks_per_epoch, config_.walk_length, rng);
    // Keep walks with at least one transition; align them step by step.
    walks.erase(std::remove_if(
                    walks.begin(), walks.end(),
                    [](const TemporalWalk& w) { return w.length() < 2; }),
                walks.end());
    if (walks.empty()) continue;
    std::sort(walks.begin(), walks.end(),
              [](const TemporalWalk& a, const TemporalWalk& b) {
                return a.length() > b.length();
              });
    const int batch = static_cast<int>(walks.size());

    opt.ZeroGrad();
    nn::Var h = gru_->InitialState(batch);
    std::vector<nn::Var> step_losses;
    int max_len = walks[0].length();
    for (int j = 0; j + 1 < max_len; ++j) {
      // Active prefix: walks long enough to have step j -> j+1.
      int active = 0;
      while (active < batch && walks[static_cast<size_t>(active)].length() >
                                   j + 1)
        ++active;
      if (active == 0) break;
      std::vector<int> nodes(static_cast<size_t>(active));
      std::vector<int> times(static_cast<size_t>(active));
      nn::Tensor node_target(active, n);
      nn::Tensor gap_target(active, NumGapClasses());
      for (int b = 0; b < active; ++b) {
        const TemporalWalk& w = walks[static_cast<size_t>(b)];
        nodes[static_cast<size_t>(b)] = w.steps[static_cast<size_t>(j)].node;
        times[static_cast<size_t>(b)] = w.steps[static_cast<size_t>(j)].t;
        const auto& nxt = w.steps[static_cast<size_t>(j) + 1];
        node_target.at(b, nxt.node) = 1.0;
        int gap = nxt.t - w.steps[static_cast<size_t>(j)].t +
                  config_.time_window;
        gap = std::clamp(gap, 0, NumGapClasses() - 1);
        gap_target.at(b, gap) = 1.0;
      }
      nn::Var x = nn::Add(node_emb_->Forward(nodes),
                          time_emb_->Forward(times));
      // Shrink the carried state to the active prefix.
      if (h.rows() != active) {
        std::vector<int> keep(static_cast<size_t>(active));
        for (int b = 0; b < active; ++b) keep[static_cast<size_t>(b)] = b;
        h = nn::GatherRows(h, keep);
      }
      h = gru_->Forward(x, h);
      nn::Var node_loss = nn::RowCrossEntropyWithLogits(
          node_head_->Forward(h), node_target);
      nn::Var gap_loss =
          nn::RowCrossEntropyWithLogits(gap_head_->Forward(h), gap_target);
      step_losses.push_back(nn::Add(node_loss, gap_loss));
    }
    if (step_losses.empty()) continue;
    nn::Var total = step_losses[0];
    for (size_t i = 1; i < step_losses.size(); ++i)
      total = nn::Add(total, step_losses[i]);
    total = nn::Scale(total, 1.0 / static_cast<double>(step_losses.size()));
    nn::Backward(total);
    opt.ClipGradNorm(5.0);
    opt.Step();
    last_epoch_loss_ = total.item();
  }
}

Status TiggerGenerator::Update(const graphs::TemporalGraph& delta,
                               Rng& /*rng*/) {
  Status ok = RequireUpdatable(starts_ != nullptr, delta, shape_, name());
  if (!ok.ok()) return ok;
  if (delta.num_edges() == 0) return Status::Ok();

  // Merge the fitted start distribution with the delta's (node, t)
  // occurrences: existing entries keep their position and gain the
  // delta's temporal-degree mass, new occurrences append in enumeration
  // order, and the alias rebuild is deterministic from the merged
  // weights. The recurrent model keeps its trained parameters — walk
  // structure transfers; only the start mixture shifts with new data.
  graphs::InitialNodeSampler delta_starts(&delta, config_.time_window);
  std::vector<graphs::TemporalNodeRef> occurrences(
      starts_->occurrences().begin(), starts_->occurrences().end());
  std::vector<double> weights = starts_->weights();
  std::unordered_map<int64_t, size_t> index;
  index.reserve(occurrences.size());
  const int64_t t_span = shape_.num_timestamps;
  for (size_t i = 0; i < occurrences.size(); ++i)
    index.emplace(static_cast<int64_t>(occurrences[i].node) * t_span +
                      occurrences[i].t,
                  i);
  const auto& delta_occ = delta_starts.occurrences();
  const auto& delta_w = delta_starts.weights();
  for (size_t i = 0; i < delta_occ.size(); ++i) {
    const int64_t key =
        static_cast<int64_t>(delta_occ[i].node) * t_span + delta_occ[i].t;
    auto it = index.find(key);
    if (it != index.end()) {
      weights[it->second] += delta_w[i];
    } else {
      index.emplace(key, occurrences.size());
      occurrences.push_back(delta_occ[i]);
      weights.push_back(delta_w[i]);
    }
  }
  starts_ = std::make_unique<graphs::InitialNodeSampler>(
      std::move(occurrences), std::move(weights));
  MergeDeltaShape(shape_, delta);
  return Status::Ok();
}

int64_t TiggerGenerator::ResidentStateBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(*this)) +
                  static_cast<int64_t>(shape_.edges_per_timestamp.capacity() *
                                       sizeof(int64_t));
  if (starts_ != nullptr) {
    bytes += static_cast<int64_t>(sizeof(*starts_)) +
             static_cast<int64_t>(starts_->occurrences().capacity() *
                                  sizeof(graphs::TemporalNodeRef)) +
             static_cast<int64_t>(starts_->weights().capacity() *
                                  sizeof(double)) +
             static_cast<int64_t>(starts_->alias().prob().capacity() *
                                  sizeof(double)) +
             static_cast<int64_t>(starts_->alias().alias().capacity() *
                                  sizeof(int64_t));
  }
  if (node_emb_ != nullptr) bytes += ParamsResidentBytes(CollectParams());
  return bytes;
}

graphs::TemporalGraph TiggerGenerator::Generate(Rng& rng) {
  TGSIM_CHECK(starts_ != nullptr);  // Requires a Fit() or LoadState().
  const graphs::InitialNodeSampler& starts = *starts_;
  const int64_t budget = shape_.total_edges();
  const int n = shape_.num_nodes;

  std::vector<TemporalWalk> walks;
  int64_t projected = 0;
  int64_t guard = 0;
  while (projected < budget && guard < 8 * budget + 64) {
    ++guard;
    graphs::TemporalNodeRef cur = starts.Sample(1, rng)[0];
    TemporalWalk walk;
    walk.steps.push_back(cur);
    nn::Var h = gru_->InitialState(1);
    for (int j = 0; j + 1 < config_.walk_length; ++j) {
      nn::Var x = nn::Add(node_emb_->Forward({cur.node}),
                          time_emb_->Forward({cur.t}));
      h = gru_->Forward(x, h);
      // Sample straight off the softmax rows — no per-element copies.
      nn::Tensor node_probs = node_head_->Forward(h).value().SoftmaxRows();
      auto next_node = static_cast<graphs::NodeId>(
          sampling::WeightedPick(node_probs.RowSpan(0), rng));

      nn::Tensor gap_probs = gap_head_->Forward(h).value().SoftmaxRows();
      int gap = static_cast<int>(
                    sampling::WeightedPick(gap_probs.RowSpan(0), rng)) -
                config_.time_window;
      int next_t = std::clamp(cur.t + gap, 0, shape_.num_timestamps - 1);

      cur = {next_node, static_cast<graphs::Timestamp>(next_t)};
      walk.steps.push_back(cur);
    }
    projected += std::max(0, walk.length() - 1);
    walks.push_back(std::move(walk));
  }
  return AssembleFromWalks(walks, n, shape_.num_timestamps, budget, rng);
}

Status TiggerGenerator::SaveState(std::ostream& out) const {
  Status fitted = RequireFitted(starts_ != nullptr, name());
  if (!fitted.ok()) return fitted;
  serialize::ArchiveWriter writer(out);
  WriteShape(writer, shape_);
  writer.BeginSection("starts");
  std::vector<int64_t> nodes, times;
  for (const graphs::TemporalNodeRef& occ : starts_->occurrences()) {
    nodes.push_back(occ.node);
    times.push_back(occ.t);
  }
  writer.WriteIntVector("node", nodes);
  writer.WriteIntVector("time", times);
  writer.WriteDoubleVector("weight", starts_->weights());
  // Ship the fitted alias table so LoadState skips the O(n) rebuild.
  serialize::WriteAliasTable(writer, "starts", starts_->alias());
  writer.BeginSection("params");
  serialize::WriteParams(writer, CollectParams());
  return writer.Finish();
}

Status TiggerGenerator::LoadState(std::istream& in) {
  Result<serialize::ArchiveReader> parsed =
      serialize::ArchiveReader::Parse(in);
  if (!parsed.ok()) return parsed.status();
  const serialize::ArchiveReader& reader = parsed.value();
  ObservedShape shape;
  Status s = ReadShape(reader, shape);
  if (!s.ok()) return s;
  Result<std::vector<int64_t>> nodes = reader.GetIntVector("starts", "node");
  if (!nodes.ok()) return nodes.status();
  Result<std::vector<int64_t>> times = reader.GetIntVector("starts", "time");
  if (!times.ok()) return times.status();
  Result<std::vector<double>> weights =
      reader.GetDoubleVector("starts", "weight");
  if (!weights.ok()) return weights.status();
  if (nodes.value().size() != times.value().size() ||
      nodes.value().size() != weights.value().size() ||
      nodes.value().empty())
    return Status::InvalidArgument(
        "corrupt archive: TIGGER start-distribution vectors disagree");
  std::vector<graphs::TemporalNodeRef> occurrences;
  occurrences.reserve(nodes.value().size());
  double total_weight = 0.0;
  for (size_t i = 0; i < nodes.value().size(); ++i) {
    if (nodes.value()[i] < 0 || nodes.value()[i] >= shape.num_nodes ||
        times.value()[i] < 0 || times.value()[i] >= shape.num_timestamps ||
        weights.value()[i] < 0.0)
      return Status::InvalidArgument(
          "corrupt archive: TIGGER start occurrence " + std::to_string(i) +
          " is out of range");
    total_weight += weights.value()[i];
    occurrences.push_back(
        {static_cast<graphs::NodeId>(nodes.value()[i]),
         static_cast<graphs::Timestamp>(times.value()[i])});
  }
  // Degree-proportional sampling needs positive mass; zero-mass data
  // would CHECK-abort inside Sample instead of failing the load.
  if (!(total_weight > 0.0))
    return Status::InvalidArgument(
        "corrupt archive: TIGGER start distribution has no weight mass");

  shape_ = std::move(shape);
  // Values come from the archive; the init rng only shapes the structures.
  Rng init(0);
  BuildModel(init);
  std::vector<nn::Var> params = CollectParams();
  s = serialize::ReadParamsInto(reader, "params", params);
  if (!s.ok()) return s;
  if (reader.HasField("starts", "starts_prob")) {
    Result<sampling::AliasTable> table =
        serialize::ReadAliasTable(reader, "starts", "starts");
    if (!table.ok()) return table.status();
    if (table.value().size() != occurrences.size())
      return Status::InvalidArgument(
          "corrupt archive: TIGGER starts alias table disagrees with the "
          "occurrence count");
    starts_ = std::make_unique<graphs::InitialNodeSampler>(
        std::move(occurrences), std::move(weights).value(),
        std::move(table).value());
  } else {
    // Pre-alias artifact: rebuild from the weights (bit-identical — the
    // alias build is deterministic and the weights round-trip exactly).
    starts_ = std::make_unique<graphs::InitialNodeSampler>(
        std::move(occurrences), std::move(weights).value());
  }
  return Status::Ok();
}

}  // namespace tgsim::baselines
