#ifndef TGSIM_BASELINES_NETGAN_H_
#define TGSIM_BASELINES_NETGAN_H_

#include <vector>

#include "baselines/generator.h"
#include "baselines/state_io.h"
#include "config/param_map.h"
#include "nn/tensor.h"
#include "storage/score_store.h"

namespace tgsim::baselines {

struct NetGanConfig {
  int rank = 16;
  int epochs = 60;
  double learning_rate = 5e-2;
  /// Stored score entries per row (0 = keep every positive entry — the
  /// paper-exact default; preset=fast truncates). See ScoreStore.
  int64_t score_topk = 0;

  void DefineParams(config::ParamBinder& binder);
  Status ApplyParams(const config::ParamMap& params);
  static config::ParamSchema Schema();
};

/// NetGAN (Bojchevski et al., ICML'18), in the low-rank formulation of
/// Rendsburg et al. ("NetGAN without GAN", ICML'20 — reference [45] of the
/// paper): the adversarially-trained walk LSTM is provably equivalent to a
/// low-rank logit factorization of the random-walk transition matrix. We fit
/// logits = U V^T per snapshot by gradient descent on the row-wise cross
/// entropy against the observed transition distribution, then sample edges
/// from the stationary-weighted edge scores. Being a static method, it is
/// applied independently to every timestamp (paper Section V.B). Fit()
/// trains every snapshot model and keeps only the resulting sparse score
/// rows — the fitted distributions — so Generate() is a cheap sampling
/// pass and the whole state ships through SaveState/LoadState.
class NetGanGenerator : public TemporalGraphGenerator {
 public:
  explicit NetGanGenerator(NetGanConfig config = {});

  std::string name() const override { return "NetGAN"; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  Status LoadState(std::istream& in, const std::string& path) override;
  int64_t ResidentStateBytes() const override;

  /// Dense n x n score matrix per trained snapshot + per-timestamp walk
  /// buffers; reproduces the paper's OOM pattern (BITCOIN-* and UBUNTU out,
  /// MATH/EMAIL in). Models the *original* implementation — this
  /// reproduction's sparse store stays O(nnz).
  int64_t EstimatePaperMemoryBytes(int64_t n, int64_t /*m*/,
                                   int64_t t) const override {
    return 8 * n * n + 8 * n * t * t;
  }

 private:
  /// Fits the low-rank transition model for one snapshot and returns the
  /// active-node score submatrix.
  SnapshotScores FitSnapshotScores(
      const std::vector<graphs::TemporalEdge>& edges, Rng& rng) const;

  NetGanConfig config_;
  ObservedShape shape_;
  /// Fitted sparse score rows per timestamp (absent where the snapshot
  /// has no edges). This is the complete generative state.
  storage::ScoreStore store_;
};

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_NETGAN_H_
