#include "baselines/score_sampling.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "sampling/samplers.h"

namespace tgsim::baselines {

void SampleEdgesFromScores(const nn::Tensor& scores, int64_t count,
                           graphs::Timestamp t, Rng& rng,
                           std::vector<graphs::TemporalEdge>* out) {
  TGSIM_CHECK(out != nullptr);
  const int n = scores.rows();
  TGSIM_CHECK_EQ(scores.cols(), n);
  if (count <= 0) return;

  // Flat weights over off-diagonal entries; the alias table makes every
  // attempted draw O(1) instead of an O(log n^2) binary search over an
  // n^2-entry CDF.
  std::vector<double> weights(static_cast<size_t>(scores.size()));
  double acc = 0.0;
  for (int r = 0; r < n; ++r) {
    const double* score_row = scores.row(r);
    double* w_row = weights.data() + static_cast<size_t>(r) * n;
    for (int c = 0; c < n; ++c) {
      double w = r == c ? 0.0 : std::max(0.0, score_row[c]);
      acc += w;
      w_row[c] = w;
    }
  }

  std::unordered_set<int64_t> taken;
  int64_t emitted = 0;
  if (acc > 0.0) {
    const sampling::AliasTable alias(weights);
    int64_t attempts = 0;
    const int64_t max_attempts = 20 * count + 100;
    while (emitted < count && attempts < max_attempts) {
      ++attempts;
      size_t flat = alias.Draw(rng);
      auto u = static_cast<graphs::NodeId>(flat / static_cast<size_t>(n));
      auto v = static_cast<graphs::NodeId>(flat % static_cast<size_t>(n));
      if (u == v) continue;
      if (!taken.insert(static_cast<int64_t>(flat)).second) continue;
      out->push_back({u, v, t});
      ++emitted;
    }
  }
  // Uniform fill if the mass was degenerate. Dense snapshots can request
  // more edges than there are distinct ordered pairs (e.g. the EMAIL
  // shape); once the pair space is exhausted the remainder are emitted as
  // duplicate temporal edges, mirroring repeated interactions in the
  // observed stream.
  const int64_t max_pairs =
      static_cast<int64_t>(n) * (static_cast<int64_t>(n) - 1);
  while (emitted < count) {
    auto u = static_cast<graphs::NodeId>(
        rng.UniformInt(static_cast<int64_t>(n)));
    auto v = static_cast<graphs::NodeId>(
        rng.UniformInt(static_cast<int64_t>(n)));
    if (u == v) continue;
    int64_t flat = static_cast<int64_t>(u) * n + v;
    if (static_cast<int64_t>(taken.size()) < max_pairs &&
        !taken.insert(flat).second) {
      continue;
    }
    out->push_back({u, v, t});
    ++emitted;
  }
}

nn::Tensor NormalizedAdjacency(const nn::Tensor& adjacency) {
  const int n = adjacency.rows();
  TGSIM_CHECK_EQ(adjacency.cols(), n);
  nn::Tensor a_hat = adjacency;
  for (int i = 0; i < n; ++i) a_hat.at(i, i) += 1.0;  // Self-loops.
  std::vector<double> inv_sqrt_deg(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int j = 0; j < n; ++j) deg += a_hat.at(i, j);
    inv_sqrt_deg[static_cast<size_t>(i)] = 1.0 / std::sqrt(std::max(deg, 1e-9));
  }
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a_hat.at(i, j) *= inv_sqrt_deg[static_cast<size_t>(i)] *
                        inv_sqrt_deg[static_cast<size_t>(j)];
  return a_hat;
}

nn::Tensor DenseAdjacency(int num_nodes,
                          const std::vector<graphs::TemporalEdge>& edges) {
  nn::Tensor a(num_nodes, num_nodes);
  for (const graphs::TemporalEdge& e : edges) {
    if (e.u == e.v) continue;
    a.at(e.u, e.v) = 1.0;
    a.at(e.v, e.u) = 1.0;
  }
  return a;
}

}  // namespace tgsim::baselines
