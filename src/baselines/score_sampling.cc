#include "baselines/score_sampling.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "common/check.h"
#include "sampling/samplers.h"

namespace tgsim::baselines {

void SampleEdgesFromScores(const storage::SparseScoreRowsView& scores,
                           int64_t count, graphs::Timestamp t, Rng& rng,
                           std::vector<graphs::TemporalEdge>* out) {
  TGSIM_CHECK(out != nullptr);
  const int n = scores.rows;
  TGSIM_CHECK_EQ(scores.cols, n);
  TGSIM_CHECK_GE(n, 1);
  if (count <= 0) return;
  if (n < 2) {
    // A one-node snapshot has no off-diagonal pairs at all; emit the only
    // representable edge rather than spinning forever in rejection.
    for (int64_t i = 0; i < count; ++i) out->push_back({0, 0, t});
    return;
  }

  // Per-row mass = stored top-k weights + the truncation remainder: the
  // row alias sees the FULL original row mass, so truncation biases only
  // the within-row choice (toward a uniform stand-in for the tail), never
  // which rows emit edges.
  std::vector<double> stored_mass(static_cast<size_t>(n), 0.0);
  std::vector<double> row_mass(static_cast<size_t>(n), 0.0);
  double acc = 0.0;
  for (int r = 0; r < n; ++r) {
    const auto row = scores.row(r);
    double s = 0.0;
    for (double w : row.weights) s += w;
    stored_mass[static_cast<size_t>(r)] = s;
    const double total = s + row.remainder;
    row_mass[static_cast<size_t>(r)] = total;
    acc += total;
  }

  std::unordered_set<int64_t> taken;
  int64_t emitted = 0;
  if (acc > 0.0) {
    const sampling::AliasTable row_alias(row_mass);
    // Column aliases build lazily, once per touched row — O(row nnz)
    // each, and rows the row alias never returns cost nothing.
    std::vector<std::optional<sampling::AliasTable>> col_alias(
        static_cast<size_t>(n));
    int64_t attempts = 0;
    const int64_t max_attempts = 20 * count + 100;
    while (emitted < count && attempts < max_attempts) {
      ++attempts;
      const auto u =
          static_cast<graphs::NodeId>(row_alias.Draw(rng));
      const auto row = scores.row(u);
      graphs::NodeId v;
      bool from_tail = false;
      if (row.remainder > 0.0) {
        // One uniform decides stored-vs-tail; the comparison point is the
        // remainder's share of the full row mass.
        const double coin =
            rng.Uniform() * row_mass[static_cast<size_t>(u)];
        from_tail = coin < row.remainder;
      }
      if (from_tail) {
        // Uniform off-diagonal column: one uniform, never the diagonal.
        const auto x = static_cast<graphs::NodeId>(
            rng.UniformInt(static_cast<int64_t>(n) - 1));
        v = x >= u ? x + 1 : x;
      } else {
        auto& alias = col_alias[static_cast<size_t>(u)];
        if (!alias.has_value()) alias.emplace(row.weights);
        const size_t j = alias->Draw(rng);
        v = static_cast<graphs::NodeId>(row.cols[j]);
      }
      if (u == v) continue;
      const int64_t flat = static_cast<int64_t>(u) * n + v;
      if (!taken.insert(flat).second) continue;
      out->push_back({u, v, t});
      ++emitted;
    }
  }
  // Uniform fill if the mass was degenerate. Dense snapshots can request
  // more edges than there are distinct ordered pairs (e.g. the EMAIL
  // shape); once the pair space is exhausted the remainder are emitted as
  // duplicate temporal edges, mirroring repeated interactions in the
  // observed stream.
  const int64_t max_pairs =
      static_cast<int64_t>(n) * (static_cast<int64_t>(n) - 1);
  while (emitted < count) {
    auto u = static_cast<graphs::NodeId>(
        rng.UniformInt(static_cast<int64_t>(n)));
    auto v = static_cast<graphs::NodeId>(
        rng.UniformInt(static_cast<int64_t>(n)));
    if (u == v) continue;
    int64_t flat = static_cast<int64_t>(u) * n + v;
    if (static_cast<int64_t>(taken.size()) < max_pairs &&
        !taken.insert(flat).second) {
      continue;
    }
    out->push_back({u, v, t});
    ++emitted;
  }
}

void SampleEdgesFromScores(const nn::Tensor& scores, int64_t count,
                           graphs::Timestamp t, Rng& rng,
                           std::vector<graphs::TemporalEdge>* out) {
  const storage::SparseScoreRows sparse =
      storage::SparseScoreRows::FromDense(scores, 0);
  SampleEdgesFromScores(sparse.View(), count, t, rng, out);
}

nn::Tensor NormalizedAdjacency(const nn::Tensor& adjacency) {
  const int n = adjacency.rows();
  TGSIM_CHECK_EQ(adjacency.cols(), n);
  nn::Tensor a_hat = adjacency;
  for (int i = 0; i < n; ++i) a_hat.at(i, i) += 1.0;  // Self-loops.
  std::vector<double> inv_sqrt_deg(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int j = 0; j < n; ++j) deg += a_hat.at(i, j);
    inv_sqrt_deg[static_cast<size_t>(i)] = 1.0 / std::sqrt(std::max(deg, 1e-9));
  }
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a_hat.at(i, j) *= inv_sqrt_deg[static_cast<size_t>(i)] *
                        inv_sqrt_deg[static_cast<size_t>(j)];
  return a_hat;
}

nn::Tensor DenseAdjacency(int num_nodes,
                          const std::vector<graphs::TemporalEdge>& edges) {
  nn::Tensor a(num_nodes, num_nodes);
  for (const graphs::TemporalEdge& e : edges) {
    if (e.u == e.v) continue;
    a.at(e.u, e.v) = 1.0;
    a.at(e.v, e.u) = 1.0;
  }
  return a;
}

}  // namespace tgsim::baselines
