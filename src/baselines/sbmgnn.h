#ifndef TGSIM_BASELINES_SBMGNN_H_
#define TGSIM_BASELINES_SBMGNN_H_

#include <vector>

#include "baselines/generator.h"
#include "baselines/state_io.h"
#include "config/param_map.h"
#include "nn/tensor.h"
#include "storage/score_store.h"

namespace tgsim::baselines {

struct SbmGnnConfig {
  int hidden_dim = 32;
  int num_blocks = 8;
  int epochs = 40;
  double learning_rate = 1e-2;
  /// Stored score entries per row (0 = keep every positive entry — the
  /// paper-exact default; preset=fast truncates). See ScoreStore.
  int64_t score_topk = 0;

  void DefineParams(config::ParamBinder& binder);
  Status ApplyParams(const config::ParamMap& params);
  static config::ParamSchema Schema();
};

/// SBMGNN (Mehta, Duke & Rai, ICML'19): stochastic blockmodels parameterized
/// by a graph neural network. This reproduction keeps the skeleton: a GCN
/// encoder infers soft overlapping block memberships Phi per node, a
/// learnable block affinity matrix B couples blocks, and the decoded edge
/// probability is sigmoid(Phi B Phi^T). Static method, applied per snapshot
/// like VGAE.
class SbmGnnGenerator : public TemporalGraphGenerator {
 public:
  explicit SbmGnnGenerator(SbmGnnConfig config = {});

  std::string name() const override { return "SBMGNN"; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  Status LoadState(std::istream& in, const std::string& path) override;
  int64_t ResidentStateBytes() const override;

  int64_t EstimatePaperMemoryBytes(int64_t n, int64_t /*m*/,
                                   int64_t /*t*/) const override {
    return 8 * n * n;  // Dense reconstruction, like VGAE (original impl).
  }

 private:
  SnapshotScores FitSnapshotScores(
      const std::vector<graphs::TemporalEdge>& edges, Rng& rng) const;

  SbmGnnConfig config_;
  ObservedShape shape_;
  /// Fitted sparse score rows per timestamp (absent where the snapshot
  /// has no edges). This is the complete generative state.
  storage::ScoreStore store_;
};

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_SBMGNN_H_
