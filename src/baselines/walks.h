#ifndef TGSIM_BASELINES_WALKS_H_
#define TGSIM_BASELINES_WALKS_H_

#include <vector>

#include "common/rng.h"
#include "graph/ego_sampler.h"
#include "graph/temporal_graph.h"

namespace tgsim::baselines {

/// A temporal random walk: a sequence of temporal node occurrences where
/// consecutive steps are connected by a temporal edge within the time
/// window (the representation TagGen / TGGAN / TIGGER learn from).
struct TemporalWalk {
  std::vector<graphs::TemporalNodeRef> steps;

  int length() const { return static_cast<int>(steps.size()); }
};

/// Samples temporal random walks from an observed temporal graph.
/// Starts are drawn degree-proportionally over node occurrences; each step
/// moves to a uniform temporal neighbor within `time_window` of the current
/// occurrence's timestamp. Walks stop early at dead ends.
class TemporalWalkSampler {
 public:
  TemporalWalkSampler(const graphs::TemporalGraph* graph, int time_window);

  TemporalWalk SampleFrom(graphs::TemporalNodeRef start, int max_length,
                          Rng& rng) const;
  TemporalWalk Sample(int max_length, Rng& rng) const;
  std::vector<TemporalWalk> SampleMany(int count, int max_length,
                                       Rng& rng) const;

  const graphs::TemporalGraph& graph() const { return *graph_; }
  int time_window() const { return time_window_; }

 private:
  const graphs::TemporalGraph* graph_;
  int time_window_;
  graphs::InitialNodeSampler starts_;
};

/// Assembles a temporal graph from generated walks: each consecutive walk
/// pair (u^t, v^t') emits the edge (u -> v at t'). Emission stops once
/// `shape`'s total edge budget is met; remaining budget (walks exhausted)
/// is filled with degree-proportional random edges so the generated graph
/// always matches the observed edge count.
graphs::TemporalGraph AssembleFromWalks(
    const std::vector<TemporalWalk>& walks, int num_nodes,
    int num_timestamps, int64_t edge_budget, Rng& rng);

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_WALKS_H_
