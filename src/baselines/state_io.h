#ifndef TGSIM_BASELINES_STATE_IO_H_
#define TGSIM_BASELINES_STATE_IO_H_

#include <functional>
#include <string>

#include "baselines/generator.h"
#include "serialize/serialization.h"
#include "storage/score_store.h"

namespace tgsim::baselines {

/// Shared building blocks of the generators' SaveState/LoadState
/// implementations, so every method writes the observed shape and (where
/// the method's generation process walks observed structure) the support
/// graph in one format.

/// Ok when `fitted` is true, else the uniform "requires a prior Fit()"
/// InvalidArgument every SaveState implementation reports.
Status RequireFitted(bool fitted, const std::string& method);

/// Ok when an already-fitted generator can absorb `delta`: requires a
/// prior Fit()/LoadState(), a finalized delta, and a delta expressed in
/// the fitted universe — node and timestamp counts no larger than the
/// fitted shape's (growing either axis needs a full refit). Every
/// Update() implementation runs this first so the contract reads the
/// same across methods.
Status RequireUpdatable(bool fitted, const graphs::TemporalGraph& delta,
                        const ObservedShape& shape, const std::string& method);

/// Adds the delta's per-timestamp edge counts into `shape` (the edge
/// budget Generate reproduces). Requires delta within the shape's bounds.
void MergeDeltaShape(ObservedShape& shape,
                     const graphs::TemporalGraph& delta);

/// The support graph plus the delta's edges, finalized on the support's
/// node/timestamp universe. Deterministic: the merged edge array is the
/// support's followed by the delta's, so two updates with the same inputs
/// produce bit-identical adjacency indexes.
graphs::TemporalGraph MergeSupportGraph(const graphs::TemporalGraph& support,
                                        const graphs::TemporalGraph& delta);

/// Total tensor bytes of a parameter list — the NN methods'
/// ResidentStateBytes() charge their model weights with this.
int64_t ParamsResidentBytes(const std::vector<nn::Var>& params);

/// Recency-biased snapshot subset (after "Forward Recent Sampling",
/// PAPERS.md): draws min(k, candidates.size()) distinct timestamps from
/// `candidates` (ascending, in [0, num_timestamps)) with probability
/// proportional to exp((t - (T-1)) / tau), tau = max(1, T/4), so bounded
/// warm-start work concentrates on the most recent snapshots. Returns an
/// ascending list.
std::vector<int> SampleRecentSnapshots(const std::vector<int>& candidates,
                                       int k, int num_timestamps, Rng& rng);

/// Writes `shape` as the archive section "shape" (num_nodes,
/// num_timestamps, edges_per_timestamp).
void WriteShape(serialize::ArchiveWriter& writer, const ObservedShape& shape);

/// Reads the section written by WriteShape.
Status ReadShape(const serialize::ArchiveReader& reader,
                 ObservedShape& shape);

/// Writes a finalized temporal graph as the archive section `section`
/// (parallel u/v/t edge vectors plus the node/timestamp counts).
void WriteSupportGraph(serialize::ArchiveWriter& writer,
                       const std::string& section,
                       const graphs::TemporalGraph& graph);

/// Rebuilds the graph written by WriteSupportGraph. The result is
/// finalized and bit-identical to the original (same edge array, hence
/// the same adjacency indexes), so samplers built over it draw the same
/// sequences.
Result<graphs::TemporalGraph> ReadSupportGraph(
    const serialize::ArchiveReader& reader, const std::string& section);

/// One snapshot's fit result from a score-matrix method: the ascending
/// list of nodes active in the snapshot and their na x na score
/// submatrix. Degenerate snapshots (fewer than two active nodes) return a
/// default-constructed value; the logical full matrix is zero there.
struct SnapshotScores {
  std::vector<int> active;
  nn::Tensor scores;
};

/// A score model saves as one self-contained text archive while it is
/// small on BOTH axes (row_ptr alone is O(num_nodes) even at zero nnz);
/// past either limit the snapshots go into a binary BlockFile payload the
/// loader mmaps on demand. Deterministic function of the fitted state —
/// exposed for tests.
inline constexpr int64_t kInlineScoreNodeLimit = 4096;
inline constexpr int64_t kInlineScoreNnzLimit = 4096;

/// Complete fitted state of the per-snapshot score-matrix methods
/// (NetGAN, VGAE, Graphite, SBMGNN): the shape plus one sparse top-k row
/// set per timestamp (absent where the snapshot has no edges), stored
/// inline or as a trailing BlockFile by the size rule above. `score_topk`
/// records the truncation the rows were built with.
Status SaveScoreState(const ObservedShape& shape,
                      const storage::ScoreStore& store, int64_t score_topk,
                      std::ostream& out, const std::string& method);

/// Restores the state written by SaveScoreState — and, for backward
/// compatibility, pre-sparse archives holding dense "scores" tensors,
/// which are compacted with `legacy_topk` (the generator config's
/// score_topk) on the way in. `path` names the file `in` reads from; with
/// a block-format archive and a non-empty path the blocks stay on disk
/// and are mmap'd per snapshot (the out-of-core path), while an empty
/// path falls back to buffering the payload in memory. All structural
/// problems are Status errors, never crashes.
Status LoadScoreState(ObservedShape& shape, storage::ScoreStore& store,
                      std::istream& in, const std::string& path,
                      int64_t legacy_topk);

/// Shared Fit() body of the score-matrix methods: trains `fit_snapshot`
/// on each timestamp's edges (skipping edge-free snapshots) and fills
/// `store` with each snapshot's top-`score_topk` sparse rows — the
/// fit-once step whose output Generate and SaveState consume.
void FitScoresPerSnapshot(
    const graphs::TemporalGraph& observed, const ObservedShape& shape,
    int64_t score_topk, storage::ScoreStore& store,
    const std::function<SnapshotScores(
        const std::vector<graphs::TemporalEdge>&)>& fit_snapshot);

/// Default bound on warm-started (previously fitted) snapshots per
/// Update() of the score-matrix methods; snapshots gaining their first
/// edges are always fitted on top of this.
inline constexpr int kUpdateWarmSnapshotLimit = 8;

/// Shared Update() body of the score-matrix methods: regenerates sparse
/// score rows only for the delta's touched snapshots. Snapshots gaining
/// their first edges are always fitted (Generate requires rows wherever
/// the edge budget is positive); previously-fitted touched snapshots are
/// bounded to `max_warm_snapshots` recency-biased picks, each blending
/// the old rows with rows fitted on the delta batch
/// (SparseScoreRows::WeightedMerge, weighted by edge counts). A
/// block-backed store is rematerialized resident first — re-saving the
/// artifact re-applies the inline/blocks size rule. Empty deltas are a
/// no-op; errors leave shape and store untouched.
Status UpdateScoresForDelta(
    const graphs::TemporalGraph& delta, ObservedShape& shape,
    storage::ScoreStore& store, int64_t score_topk, int max_warm_snapshots,
    Rng& rng, const std::string& method,
    const std::function<SnapshotScores(
        const std::vector<graphs::TemporalEdge>&)>& fit_snapshot);

/// Shared Generate() body of the score-matrix methods: samples each
/// timestamp's observed edge count from its fitted sparse score rows,
/// leasing one snapshot at a time (so block-backed stores page in one
/// mapping at a time — peak memory O(n + max snapshot nnz)).
graphs::TemporalGraph GenerateFromScores(const ObservedShape& shape,
                                         const storage::ScoreStore& store,
                                         Rng& rng);

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_STATE_IO_H_
