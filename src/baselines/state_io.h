#ifndef TGSIM_BASELINES_STATE_IO_H_
#define TGSIM_BASELINES_STATE_IO_H_

#include <functional>
#include <string>

#include "baselines/generator.h"
#include "serialize/serialization.h"
#include "storage/score_store.h"

namespace tgsim::baselines {

/// Shared building blocks of the generators' SaveState/LoadState
/// implementations, so every method writes the observed shape and (where
/// the method's generation process walks observed structure) the support
/// graph in one format.

/// Ok when `fitted` is true, else the uniform "requires a prior Fit()"
/// InvalidArgument every SaveState implementation reports.
Status RequireFitted(bool fitted, const std::string& method);

/// Writes `shape` as the archive section "shape" (num_nodes,
/// num_timestamps, edges_per_timestamp).
void WriteShape(serialize::ArchiveWriter& writer, const ObservedShape& shape);

/// Reads the section written by WriteShape.
Status ReadShape(const serialize::ArchiveReader& reader,
                 ObservedShape& shape);

/// Writes a finalized temporal graph as the archive section `section`
/// (parallel u/v/t edge vectors plus the node/timestamp counts).
void WriteSupportGraph(serialize::ArchiveWriter& writer,
                       const std::string& section,
                       const graphs::TemporalGraph& graph);

/// Rebuilds the graph written by WriteSupportGraph. The result is
/// finalized and bit-identical to the original (same edge array, hence
/// the same adjacency indexes), so samplers built over it draw the same
/// sequences.
Result<graphs::TemporalGraph> ReadSupportGraph(
    const serialize::ArchiveReader& reader, const std::string& section);

/// One snapshot's fit result from a score-matrix method: the ascending
/// list of nodes active in the snapshot and their na x na score
/// submatrix. Degenerate snapshots (fewer than two active nodes) return a
/// default-constructed value; the logical full matrix is zero there.
struct SnapshotScores {
  std::vector<int> active;
  nn::Tensor scores;
};

/// A score model saves as one self-contained text archive while it is
/// small on BOTH axes (row_ptr alone is O(num_nodes) even at zero nnz);
/// past either limit the snapshots go into a binary BlockFile payload the
/// loader mmaps on demand. Deterministic function of the fitted state —
/// exposed for tests.
inline constexpr int64_t kInlineScoreNodeLimit = 4096;
inline constexpr int64_t kInlineScoreNnzLimit = 4096;

/// Complete fitted state of the per-snapshot score-matrix methods
/// (NetGAN, VGAE, Graphite, SBMGNN): the shape plus one sparse top-k row
/// set per timestamp (absent where the snapshot has no edges), stored
/// inline or as a trailing BlockFile by the size rule above. `score_topk`
/// records the truncation the rows were built with.
Status SaveScoreState(const ObservedShape& shape,
                      const storage::ScoreStore& store, int64_t score_topk,
                      std::ostream& out, const std::string& method);

/// Restores the state written by SaveScoreState — and, for backward
/// compatibility, pre-sparse archives holding dense "scores" tensors,
/// which are compacted with `legacy_topk` (the generator config's
/// score_topk) on the way in. `path` names the file `in` reads from; with
/// a block-format archive and a non-empty path the blocks stay on disk
/// and are mmap'd per snapshot (the out-of-core path), while an empty
/// path falls back to buffering the payload in memory. All structural
/// problems are Status errors, never crashes.
Status LoadScoreState(ObservedShape& shape, storage::ScoreStore& store,
                      std::istream& in, const std::string& path,
                      int64_t legacy_topk);

/// Shared Fit() body of the score-matrix methods: trains `fit_snapshot`
/// on each timestamp's edges (skipping edge-free snapshots) and fills
/// `store` with each snapshot's top-`score_topk` sparse rows — the
/// fit-once step whose output Generate and SaveState consume.
void FitScoresPerSnapshot(
    const graphs::TemporalGraph& observed, const ObservedShape& shape,
    int64_t score_topk, storage::ScoreStore& store,
    const std::function<SnapshotScores(
        const std::vector<graphs::TemporalEdge>&)>& fit_snapshot);

/// Shared Generate() body of the score-matrix methods: samples each
/// timestamp's observed edge count from its fitted sparse score rows,
/// leasing one snapshot at a time (so block-backed stores page in one
/// mapping at a time — peak memory O(n + max snapshot nnz)).
graphs::TemporalGraph GenerateFromScores(const ObservedShape& shape,
                                         const storage::ScoreStore& store,
                                         Rng& rng);

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_STATE_IO_H_
