#ifndef TGSIM_BASELINES_STATE_IO_H_
#define TGSIM_BASELINES_STATE_IO_H_

#include <functional>
#include <string>

#include "baselines/generator.h"
#include "serialize/serialization.h"

namespace tgsim::baselines {

/// Shared building blocks of the generators' SaveState/LoadState
/// implementations, so every method writes the observed shape and (where
/// the method's generation process walks observed structure) the support
/// graph in one format.

/// Ok when `fitted` is true, else the uniform "requires a prior Fit()"
/// InvalidArgument every SaveState implementation reports.
Status RequireFitted(bool fitted, const std::string& method);

/// Writes `shape` as the archive section "shape" (num_nodes,
/// num_timestamps, edges_per_timestamp).
void WriteShape(serialize::ArchiveWriter& writer, const ObservedShape& shape);

/// Reads the section written by WriteShape.
Status ReadShape(const serialize::ArchiveReader& reader,
                 ObservedShape& shape);

/// Writes a finalized temporal graph as the archive section `section`
/// (parallel u/v/t edge vectors plus the node/timestamp counts).
void WriteSupportGraph(serialize::ArchiveWriter& writer,
                       const std::string& section,
                       const graphs::TemporalGraph& graph);

/// Rebuilds the graph written by WriteSupportGraph. The result is
/// finalized and bit-identical to the original (same edge array, hence
/// the same adjacency indexes), so samplers built over it draw the same
/// sequences.
Result<graphs::TemporalGraph> ReadSupportGraph(
    const serialize::ArchiveReader& reader, const std::string& section);

/// Complete fitted state of the per-snapshot score-matrix methods
/// (NetGAN, VGAE, Graphite, SBMGNN): one shape + one edge-score matrix per
/// timestamp, empty where the snapshot has no edges.
Status SaveScoreState(const ObservedShape& shape,
                      const std::vector<nn::Tensor>& scores,
                      std::ostream& out, const std::string& method);
Status LoadScoreState(ObservedShape& shape, std::vector<nn::Tensor>& scores,
                      std::istream& in);

/// Shared Fit() body of the score-matrix methods: trains `fit_snapshot`
/// on each timestamp's edges (skipping edge-free snapshots) and fills
/// `scores` with one matrix per timestamp — the fit-once step whose
/// output Generate and SaveState consume.
void FitScoresPerSnapshot(
    const graphs::TemporalGraph& observed, const ObservedShape& shape,
    std::vector<nn::Tensor>& scores,
    const std::function<nn::Tensor(
        const std::vector<graphs::TemporalEdge>&)>& fit_snapshot);

/// Shared Generate() body of the score-matrix methods: samples each
/// timestamp's observed edge count from its fitted score matrix.
graphs::TemporalGraph GenerateFromScores(
    const ObservedShape& shape, const std::vector<nn::Tensor>& scores,
    Rng& rng);

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_STATE_IO_H_
