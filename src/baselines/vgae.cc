#include "baselines/vgae.h"

#include <algorithm>
#include <cmath>

#include "baselines/score_sampling.h"
#include "baselines/state_io.h"
#include "nn/autograd.h"
#include "nn/kernels.h"
#include "nn/optim.h"
#include "parallel/parallel_for.h"

namespace tgsim::baselines {

namespace {

/// Elementwise sigmoid on a value tensor, via the dispatched row kernel
/// (same exp as the training-graph nn::Sigmoid).
nn::Tensor SigmoidTensor(const nn::Tensor& x) {
  nn::Tensor out(x.rows(), x.cols());
  parallel::ParallelFor(0, x.size(), parallel::kElementwiseGrain,
                        [&](int64_t b, int64_t e) {
                          nn::kernels::SigmoidRow(x.data() + b, out.data() + b,
                                                  static_cast<int>(e - b));
                        });
  return out;
}

}  // namespace

void VgaeConfig::DefineParams(config::ParamBinder& binder) {
  binder.Bind("hidden_dim", &hidden_dim, "GCN encoder hidden width");
  binder.Bind("latent_dim", &latent_dim, "latent code width");
  binder.Bind("epochs", &epochs, "training epochs per snapshot");
  binder.Bind("learning_rate", &learning_rate, "Adam learning rate");
  binder.Bind("kl_weight", &kl_weight, "KL term weight");
  binder.Bind("refine_rounds", &refine_rounds,
              "Graphite decoder refinement rounds (Graphite only)");
  binder.Bind("score_topk", &score_topk,
              "stored score entries per row (0 = all positive entries)");
}

TGSIM_CONFIG_IMPLEMENT_PARAMS(VgaeConfig)

VgaeGenerator::VgaeGenerator(VgaeConfig config) : config_(config) {}

VgaeGenerator::VgaeGenerator(VgaeConfig config, bool graphite)
    : config_(config), graphite_(graphite) {}

void VgaeGenerator::Fit(const graphs::TemporalGraph& observed, Rng& rng) {
  shape_.CaptureFrom(observed);
  // Fit-once/serve-many: every snapshot model trains here, and only the
  // decoded sparse score rows are kept — Generate never sees the
  // training graph again.
  FitScoresPerSnapshot(
      observed, shape_, config_.score_topk, store_,
      [&](const std::vector<graphs::TemporalEdge>& snap) {
        return FitSnapshotScores(snap, graphite_, rng);
      });
}

Status VgaeGenerator::Update(const graphs::TemporalGraph& delta, Rng& rng) {
  return UpdateScoresForDelta(
      delta, shape_, store_, config_.score_topk, kUpdateWarmSnapshotLimit,
      rng, name(), [&](const std::vector<graphs::TemporalEdge>& snap) {
        return FitSnapshotScores(snap, graphite_, rng);
      });
}

SnapshotScores VgaeGenerator::FitSnapshotScores(
    const std::vector<graphs::TemporalEdge>& edges, bool graphite,
    Rng& rng) const {
  const int n = shape_.num_nodes;
  // Restrict the model to nodes active in this snapshot: inactive rows are
  // all-zero and carry no gradient signal; generation maps indices back.
  std::vector<int> active;
  {
    std::vector<bool> seen(static_cast<size_t>(n), false);
    for (const auto& e : edges) {
      seen[static_cast<size_t>(e.u)] = true;
      seen[static_cast<size_t>(e.v)] = true;
    }
    for (int u = 0; u < n; ++u)
      if (seen[static_cast<size_t>(u)]) active.push_back(u);
  }
  if (active.size() < 2) return {};
  const int na = static_cast<int>(active.size());
  std::vector<int> remap(static_cast<size_t>(n), -1);
  for (int i = 0; i < na; ++i) remap[static_cast<size_t>(active[i])] = i;

  nn::Tensor a_sub(na, na);
  int64_t m_sub = 0;
  for (const auto& e : edges) {
    int u = remap[static_cast<size_t>(e.u)];
    int v = remap[static_cast<size_t>(e.v)];
    if (u == v) continue;
    if (a_sub.at(u, v) == 0.0) ++m_sub;
    a_sub.at(u, v) = 1.0;
    a_sub.at(v, u) = 1.0;
  }

  nn::Var a_hat = nn::Var::Constant(NormalizedAdjacency(a_sub));
  Rng local = rng.Fork();
  const int h = config_.hidden_dim;
  const int d = config_.latent_dim;
  nn::Var w1 = nn::Var::Param(nn::Tensor::GlorotUniform(local, na, h));
  nn::Var w_mu = nn::Var::Param(nn::Tensor::GlorotUniform(local, h, d));
  nn::Var w_lv = nn::Var::Param(nn::Tensor::GlorotUniform(local, h, d));
  nn::Var w_refine = nn::Var::Param(nn::Tensor::GlorotUniform(local, d, d));
  std::vector<nn::Var> params = {w1, w_mu, w_lv};
  if (graphite) params.push_back(w_refine);
  nn::Adam opt(params, config_.learning_rate);

  double pos = static_cast<double>(2 * m_sub);
  double pos_weight =
      std::max(1.0, (static_cast<double>(na) * na - pos) / std::max(pos, 1.0));

  auto decode = [&](const nn::Var& z) {
    if (!graphite) return nn::MatMul(z, nn::Transpose(z));
    nn::Var z_ref = z;
    for (int round = 0; round < config_.refine_rounds; ++round) {
      nn::Var a_soft = nn::Sigmoid(nn::MatMul(z_ref, nn::Transpose(z_ref)));
      z_ref = nn::Add(
          z, nn::Tanh(nn::MatMul(nn::MatMul(a_soft, z_ref), w_refine)));
      z_ref = nn::Scale(z_ref, 1.0 / (na));  // Keep magnitudes bounded.
      z_ref = nn::Add(z, z_ref);
    }
    return nn::MatMul(z_ref, nn::Transpose(z_ref));
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    opt.ZeroGrad();
    nn::Var h1 = nn::Relu(nn::MatMul(a_hat, w1));
    nn::Var mu = nn::MatMul(nn::MatMul(a_hat, h1), w_mu);
    nn::Var logvar = nn::MatMul(nn::MatMul(a_hat, h1), w_lv);
    nn::Var noise = nn::Var::Constant(nn::Tensor::Randn(local, na, d));
    nn::Var z = nn::Add(mu, nn::Mul(nn::Exp(nn::Scale(logvar, 0.5)), noise));
    nn::Var logits = decode(z);
    nn::Var loss = nn::Add(
        nn::BinaryCrossEntropyWithLogits(logits, a_sub, pos_weight),
        nn::Scale(nn::KlToStandardNormal(mu, logvar), config_.kl_weight));
    nn::Backward(loss);
    opt.ClipGradNorm(5.0);
    opt.Step();
  }

  // Deterministic scores from the posterior mean. The submatrix keeps
  // its diagonal — FromSubmatrix never stores diagonal entries anyway.
  nn::Var h1 = nn::Relu(nn::MatMul(a_hat, w1));
  nn::Var mu = nn::MatMul(nn::MatMul(a_hat, h1), w_mu);
  SnapshotScores out;
  out.scores = SigmoidTensor(decode(mu).value());
  out.active = std::move(active);
  return out;
}

graphs::TemporalGraph VgaeGenerator::Generate(Rng& rng) {
  return GenerateFromScores(shape_, store_, rng);
}

Status VgaeGenerator::SaveState(std::ostream& out) const {
  return SaveScoreState(shape_, store_, config_.score_topk, out, name());
}

Status VgaeGenerator::LoadState(std::istream& in) {
  return LoadState(in, "");
}

Status VgaeGenerator::LoadState(std::istream& in, const std::string& path) {
  return LoadScoreState(shape_, store_, in, path, config_.score_topk);
}

int64_t VgaeGenerator::ResidentStateBytes() const {
  return static_cast<int64_t>(sizeof(*this)) + store_.ResidentBytes() +
         static_cast<int64_t>(shape_.edges_per_timestamp.capacity() *
                              sizeof(int64_t));
}

GraphiteGenerator::GraphiteGenerator(VgaeConfig config)
    : VgaeGenerator(config, /*graphite=*/true) {}

}  // namespace tgsim::baselines
