#ifndef TGSIM_BASELINES_SCORE_SAMPLING_H_
#define TGSIM_BASELINES_SCORE_SAMPLING_H_

#include <vector>

#include "common/rng.h"
#include "graph/types.h"
#include "nn/tensor.h"
#include "storage/sparse_rows.h"

namespace tgsim::baselines {

/// Draws `count` distinct directed edges (u != v) from one snapshot's
/// sparse score rows, with probability proportional to the scores, and
/// appends them to `out` with timestamp `t`. Two-level sampling: a row
/// alias table over the full per-row masses (stored top-k weights plus
/// the truncation remainder), then within the drawn row either its
/// column alias table (stored mass) or — with probability proportional
/// to the remainder — a uniform off-diagonal column standing in for the
/// truncated tail. Untruncated rows have remainder exactly 0, so their
/// draws never touch the uniform branch: with `score_topk >= n` the
/// sparse path consumes the Rng stream identically to the untruncated
/// build and draws bit-identical edges.
///
/// Duplicate draws are rejected; if the score mass is too concentrated to
/// yield enough distinct edges, the remainder is filled with uniform
/// random edges so callers always get `count` edges. Memory and alias
/// build cost are O(n + nnz) — never O(n^2).
void SampleEdgesFromScores(const storage::SparseScoreRowsView& scores,
                           int64_t count, graphs::Timestamp t, Rng& rng,
                           std::vector<graphs::TemporalEdge>* out);

/// Dense convenience overload: compacts `scores` untruncated (topk = 0)
/// and draws from the sparse path. Kept for callers that still hold a
/// dense matrix (tests, benches); production generation holds sparse rows
/// already.
void SampleEdgesFromScores(const nn::Tensor& scores, int64_t count,
                           graphs::Timestamp t, Rng& rng,
                           std::vector<graphs::TemporalEdge>* out);

/// Normalized symmetric GCN propagation matrix D^{-1/2}(A+I)D^{-1/2} of an
/// undirected snapshot given as dense adjacency.
nn::Tensor NormalizedAdjacency(const nn::Tensor& adjacency);

/// Dense undirected adjacency (0/1) of the edges at one timestamp.
nn::Tensor DenseAdjacency(int num_nodes,
                          const std::vector<graphs::TemporalEdge>& edges);

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_SCORE_SAMPLING_H_
