#ifndef TGSIM_BASELINES_SCORE_SAMPLING_H_
#define TGSIM_BASELINES_SCORE_SAMPLING_H_

#include <vector>

#include "common/rng.h"
#include "graph/types.h"
#include "nn/tensor.h"

namespace tgsim::baselines {

/// Draws `count` distinct directed edges (u != v) from an n x n score
/// matrix, with probability proportional to the scores, and appends them to
/// `out` with timestamp `t`. Duplicate draws are rejected; if the score mass
/// is too concentrated to yield enough distinct edges, the remainder is
/// filled with uniform random edges so callers always get `count` edges.
void SampleEdgesFromScores(const nn::Tensor& scores, int64_t count,
                           graphs::Timestamp t, Rng& rng,
                           std::vector<graphs::TemporalEdge>* out);

/// Normalized symmetric GCN propagation matrix D^{-1/2}(A+I)D^{-1/2} of an
/// undirected snapshot given as dense adjacency.
nn::Tensor NormalizedAdjacency(const nn::Tensor& adjacency);

/// Dense undirected adjacency (0/1) of the edges at one timestamp.
nn::Tensor DenseAdjacency(int num_nodes,
                          const std::vector<graphs::TemporalEdge>& edges);

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_SCORE_SAMPLING_H_
