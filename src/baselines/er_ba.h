#ifndef TGSIM_BASELINES_ER_BA_H_
#define TGSIM_BASELINES_ER_BA_H_

#include "baselines/generator.h"

namespace tgsim::baselines {

/// Erdős–Rényi baseline: each snapshot is G(n, m_t) with the observed
/// per-timestamp edge count (paper's "E-R" column). Model-based, not
/// learning-based.
class ErdosRenyiGenerator : public TemporalGraphGenerator {
 public:
  std::string name() const override { return "E-R"; }
  bool is_learning_based() const override { return false; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  int64_t ResidentStateBytes() const override;
  int64_t EstimatePaperMemoryBytes(int64_t /*n*/, int64_t /*m*/,
                                   int64_t /*t*/) const override {
    return 0;  // CPU-only in the paper's setup; no GPU footprint.
  }

 private:
  ObservedShape shape_;
};

/// Barabási–Albert baseline: per-snapshot preferential attachment with the
/// observed edge budget (paper's "B-A" column). The endpoint multiset is
/// carried across timestamps so the accumulated graph keeps a power-law
/// degree profile.
class BarabasiAlbertGenerator : public TemporalGraphGenerator {
 public:
  std::string name() const override { return "B-A"; }
  bool is_learning_based() const override { return false; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  int64_t ResidentStateBytes() const override;
  int64_t EstimatePaperMemoryBytes(int64_t /*n*/, int64_t /*m*/,
                                   int64_t /*t*/) const override {
    return 0;
  }

 private:
  ObservedShape shape_;
};

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_ER_BA_H_
