#ifndef TGSIM_BASELINES_GENERATOR_H_
#define TGSIM_BASELINES_GENERATOR_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/temporal_graph.h"

namespace tgsim::baselines {

/// Common contract of every temporal graph generator in this repository
/// (the paper's ten baselines plus TGAE itself).
///
/// Usage: Fit() once on the observed graph, then Generate() any number of
/// synthetic graphs with the observed shape (same node count, timestamp
/// count and edge budget). Fit() must leave the generator self-contained:
/// Generate() may not read the observed graph passed to Fit (generators
/// copy whatever support structures they need), so a generator restored
/// with LoadState serves without the training data.
class TemporalGraphGenerator {
 public:
  virtual ~TemporalGraphGenerator() = default;

  /// Display name as used in the paper's tables (e.g. "TagGen").
  virtual std::string name() const = 0;

  /// Learns (or records) the observed graph's generative statistics.
  virtual void Fit(const graphs::TemporalGraph& observed, Rng& rng) = 0;

  /// Simulates a new temporal graph. Requires a prior Fit() or LoadState().
  virtual graphs::TemporalGraph Generate(Rng& rng) = 0;

  /// Incrementally absorbs a batch of new observations into an already
  /// fitted generator — the fit-once/serve-forever path. `delta` carries
  /// only the new edges, expressed in the fitted universe: its node and
  /// timestamp counts must not exceed the fitted shape's (growing either
  /// axis requires a full refit). Statistical methods merge the delta into
  /// their support structures and rebuild the fitted samplers
  /// deterministically; learning-based methods take a bounded number of
  /// warm-start steps on recency-biased snapshots. An empty delta is a
  /// no-op. The default reports Unimplemented so custom registrations
  /// without an incremental path still construct and run; every built-in
  /// method overrides it.
  virtual Status Update(const graphs::TemporalGraph& delta, Rng& rng);

  /// Serializes the fitted state (graph shape, fitted distributions,
  /// trained weights) as one serialize::ArchiveWriter archive, leaving the
  /// stream positioned after it. Requires a prior Fit(). Every built-in
  /// method implements the pair; the default is an InvalidArgument so
  /// custom registrations without persistence still construct and run.
  virtual Status SaveState(std::ostream& out) const;

  /// Restores the state written by SaveState into a generator constructed
  /// with the same configuration. Reconstructs everything Generate()
  /// needs without access to the training graph: a loaded generator's
  /// Generate(seed) is bit-identical to the fitted original's.
  virtual Status LoadState(std::istream& in);

  /// Path-aware LoadState overload: `path` names the file `in` reads from
  /// ("" when the state only exists in memory). Methods whose state
  /// carries a trailing binary payload (the score methods' BlockFile)
  /// override this to mmap blocks from `path` on demand instead of
  /// materializing them; the default delegates to the 1-arg form, so
  /// existing methods need no change.
  virtual Status LoadState(std::istream& in, const std::string& path);

  /// Bytes of fitted state held resident in memory, or -1 when the method
  /// does not track it (callers fall back to the artifact file size). The
  /// serve ModelCache charges its byte budget with this, so an mmap-backed
  /// score model is billed for its bookkeeping, not its on-disk blocks.
  virtual int64_t ResidentStateBytes() const { return -1; }

  /// Whether the method trains a neural model (the paper separates simple
  /// model-based from learning-based approaches; E-R/B-A report no GPU
  /// memory in Fig. 6).
  virtual bool is_learning_based() const { return true; }

  /// Analytic device-memory model of the *original* implementation at
  /// paper scale, in bytes (see DESIGN.md §2, OOM emulation). The eval
  /// harness compares this against the paper's 32 GB GPU budget to decide
  /// which table cells read OOM. Defaults to a negligible footprint.
  virtual int64_t EstimatePaperMemoryBytes(int64_t num_nodes,
                                           int64_t num_edges,
                                           int64_t num_timestamps) const {
    return (num_nodes + num_edges + num_timestamps) * 8;
  }
};

/// Shape of the observed graph that every generator must reproduce.
struct ObservedShape {
  int num_nodes = 0;
  int num_timestamps = 0;
  std::vector<int64_t> edges_per_timestamp;

  void CaptureFrom(const graphs::TemporalGraph& g) {
    num_nodes = g.num_nodes();
    num_timestamps = g.num_timestamps();
    edges_per_timestamp = g.EdgesPerTimestamp();
  }
  int64_t total_edges() const {
    int64_t s = 0;
    for (int64_t c : edges_per_timestamp) s += c;
    return s;
  }
};

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_GENERATOR_H_
