#include "baselines/er_ba.h"

#include "baselines/state_io.h"

namespace tgsim::baselines {

namespace {

/// Shape-only fitted state shared by both model-based baselines.
Status SaveShapeOnlyState(const ObservedShape& shape, std::ostream& out,
                          const std::string& method) {
  Status fitted = RequireFitted(shape.num_nodes > 0, method);
  if (!fitted.ok()) return fitted;
  serialize::ArchiveWriter writer(out);
  WriteShape(writer, shape);
  return writer.Finish();
}

Status LoadShapeOnlyState(ObservedShape& shape, std::istream& in) {
  Result<serialize::ArchiveReader> reader =
      serialize::ArchiveReader::Parse(in);
  if (!reader.ok()) return reader.status();
  return ReadShape(reader.value(), shape);
}

/// Shape-only incremental update: the fitted state is exactly the edge
/// budget, so absorbing a delta is merging its per-timestamp counts.
Status UpdateShapeOnly(ObservedShape& shape,
                       const graphs::TemporalGraph& delta,
                       const std::string& method) {
  Status ok = RequireUpdatable(shape.num_nodes > 0, delta, shape, method);
  if (!ok.ok()) return ok;
  MergeDeltaShape(shape, delta);
  return Status::Ok();
}

int64_t ShapeOnlyResidentBytes(const ObservedShape& shape, size_t self) {
  return static_cast<int64_t>(self) +
         static_cast<int64_t>(shape.edges_per_timestamp.capacity() *
                              sizeof(int64_t));
}

}  // namespace

void ErdosRenyiGenerator::Fit(const graphs::TemporalGraph& observed,
                              Rng& /*rng*/) {
  shape_.CaptureFrom(observed);
}

Status ErdosRenyiGenerator::SaveState(std::ostream& out) const {
  return SaveShapeOnlyState(shape_, out, name());
}

Status ErdosRenyiGenerator::LoadState(std::istream& in) {
  return LoadShapeOnlyState(shape_, in);
}

Status ErdosRenyiGenerator::Update(const graphs::TemporalGraph& delta,
                                   Rng& /*rng*/) {
  return UpdateShapeOnly(shape_, delta, name());
}

int64_t ErdosRenyiGenerator::ResidentStateBytes() const {
  return ShapeOnlyResidentBytes(shape_, sizeof(*this));
}

graphs::TemporalGraph ErdosRenyiGenerator::Generate(Rng& rng) {
  TGSIM_CHECK_GT(shape_.num_nodes, 0);
  graphs::TemporalGraph g(shape_.num_nodes, shape_.num_timestamps);
  const int n = shape_.num_nodes;
  for (int t = 0; t < shape_.num_timestamps; ++t) {
    for (int64_t e = 0; e < shape_.edges_per_timestamp[t]; ++e) {
      graphs::NodeId u =
          static_cast<graphs::NodeId>(rng.UniformInt(static_cast<int64_t>(n)));
      graphs::NodeId v =
          static_cast<graphs::NodeId>(rng.UniformInt(static_cast<int64_t>(n)));
      if (v == u) v = static_cast<graphs::NodeId>((v + 1) % n);
      g.AddEdge(u, v, static_cast<graphs::Timestamp>(t));
    }
  }
  g.Finalize();
  return g;
}

void BarabasiAlbertGenerator::Fit(const graphs::TemporalGraph& observed,
                                  Rng& /*rng*/) {
  shape_.CaptureFrom(observed);
}

Status BarabasiAlbertGenerator::SaveState(std::ostream& out) const {
  return SaveShapeOnlyState(shape_, out, name());
}

Status BarabasiAlbertGenerator::LoadState(std::istream& in) {
  return LoadShapeOnlyState(shape_, in);
}

Status BarabasiAlbertGenerator::Update(const graphs::TemporalGraph& delta,
                                       Rng& /*rng*/) {
  return UpdateShapeOnly(shape_, delta, name());
}

int64_t BarabasiAlbertGenerator::ResidentStateBytes() const {
  return ShapeOnlyResidentBytes(shape_, sizeof(*this));
}

graphs::TemporalGraph BarabasiAlbertGenerator::Generate(Rng& rng) {
  TGSIM_CHECK_GT(shape_.num_nodes, 0);
  graphs::TemporalGraph g(shape_.num_nodes, shape_.num_timestamps);
  const int n = shape_.num_nodes;
  std::vector<graphs::NodeId> pool;  // Endpoint multiset (degree-prop).
  pool.reserve(static_cast<size_t>(2 * shape_.total_edges()));
  for (int t = 0; t < shape_.num_timestamps; ++t) {
    for (int64_t e = 0; e < shape_.edges_per_timestamp[t]; ++e) {
      graphs::NodeId u =
          static_cast<graphs::NodeId>(rng.UniformInt(static_cast<int64_t>(n)));
      graphs::NodeId v;
      if (!pool.empty() && rng.Bernoulli(0.9)) {
        v = pool[static_cast<size_t>(
            rng.UniformInt(static_cast<int64_t>(pool.size())))];
      } else {
        v = static_cast<graphs::NodeId>(
            rng.UniformInt(static_cast<int64_t>(n)));
      }
      if (v == u) v = static_cast<graphs::NodeId>((v + 1) % n);
      g.AddEdge(u, v, static_cast<graphs::Timestamp>(t));
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  g.Finalize();
  return g;
}

}  // namespace tgsim::baselines
