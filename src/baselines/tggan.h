#ifndef TGSIM_BASELINES_TGGAN_H_
#define TGSIM_BASELINES_TGGAN_H_

#include <memory>
#include <vector>

#include "baselines/generator.h"
#include "baselines/walks.h"
#include "config/param_map.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace tgsim::baselines {

struct TgganConfig {
  int embedding_dim = 24;
  int latent_dim = 16;
  int hidden_dim = 32;
  int walk_length = 6;
  int batch_walks = 24;
  int iterations = 40;
  int time_window = 2;
  double learning_rate = 2e-3;
  double gumbel_tau = 0.75;

  void DefineParams(config::ParamBinder& binder);
  Status ApplyParams(const config::ParamMap& params);
  static config::ParamSchema Schema();
};

/// TG-GAN (Zhang et al., WWW'21): adversarial generation of temporal random
/// walks with time-validity constraints.
///
/// This reproduction keeps the adversarial skeleton: a recurrent generator
/// emits walks as Gumbel-softmax relaxed (node, time-gap) sequences; a
/// discriminator scores walk embeddings; both are trained with the
/// non-saturating GAN objective. Time validity is enforced by the bounded
/// gap classes (|dt| <= time_window) plus timestamp clamping. Like TagGen
/// it lives on the O(n^2 T^2)-shaped state space (paper Table IV/V/VI OOM
/// columns).
class TgganGenerator : public TemporalGraphGenerator {
 public:
  explicit TgganGenerator(TgganConfig config = {});
  ~TgganGenerator() override;

  std::string name() const override { return "TGGAN"; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;
  /// Bounded adversarial warm start against walks drawn from the delta
  /// (a fresh discriminator; the trained generator network is the prior).
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;
  /// Serializes the shape + generator network. The discriminator exists
  /// only to train (generation never evaluates it), so the artifact ships
  /// the serving half; a loaded model generates, it does not resume
  /// adversarial training.
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  int64_t ResidentStateBytes() const override;

  int64_t EstimatePaperMemoryBytes(int64_t n, int64_t /*m*/,
                                   int64_t t) const override {
    double nt = static_cast<double>(n) * static_cast<double>(t);
    return static_cast<int64_t>(0.15 * nt * nt);
  }

  double last_d_loss() const { return last_d_loss_; }
  double last_g_loss() const { return last_g_loss_; }

 private:
  int NumGapClasses() const { return 2 * config_.time_window + 1; }

  /// Generator unroll: returns per-step soft node assignments [B x n] and
  /// soft gap assignments [B x gaps]; used both for training (soft) and
  /// generation (sampled).
  struct Unroll {
    std::vector<nn::Var> soft_nodes;
    std::vector<nn::Var> soft_gaps;
    nn::Var start_nodes;  // B x n softmax over start node.
    nn::Var start_times;  // B x T softmax over start timestamp.
  };
  Unroll RunGenerator(int batch, Rng& rng) const;

  /// Discriminator score (logits, B x 1) of a batch of walks given soft
  /// node/gap assignments per step.
  nn::Var Discriminate(const Unroll& u) const;

  /// Constructs the generator-side modules from config_ + shape_ (shared
  /// by Fit and LoadState so parameter order and shapes are fixed here).
  void BuildGeneratorModel(Rng& rng);
  /// The adversarial loop shared by Fit and Update: builds a fresh
  /// discriminator from `rng` and trains both sides for `iterations`
  /// rounds against walks sampled from `real`.
  void TrainAdversarial(const graphs::TemporalGraph& real, int iterations,
                        Rng& rng);
  /// Generator-side trainable parameters in the fixed module order.
  std::vector<nn::Var> CollectGeneratorParams() const;

  TgganConfig config_;
  ObservedShape shape_;

  // Generator.
  std::unique_ptr<nn::Mlp> g_init_;
  std::unique_ptr<nn::GruCell> g_rnn_;
  std::unique_ptr<nn::Linear> g_node_head_;
  std::unique_ptr<nn::Linear> g_gap_head_;
  std::unique_ptr<nn::Linear> g_start_node_head_;
  std::unique_ptr<nn::Linear> g_start_time_head_;
  std::unique_ptr<nn::Embedding> g_node_emb_;  // Soft next-step input.

  // Discriminator (own embedding tables).
  std::unique_ptr<nn::Embedding> d_node_emb_;
  std::unique_ptr<nn::Embedding> d_time_emb_;
  std::unique_ptr<nn::Embedding> d_gap_emb_;
  std::unique_ptr<nn::Mlp> d_mlp_;

  double last_d_loss_ = 0.0;
  double last_g_loss_ = 0.0;
};

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_TGGAN_H_
