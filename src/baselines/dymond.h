#ifndef TGSIM_BASELINES_DYMOND_H_
#define TGSIM_BASELINES_DYMOND_H_

#include <vector>

#include "baselines/generator.h"
#include "sampling/samplers.h"

namespace tgsim::baselines {

/// DYMOND (Zeno, La Fond & Neville, WWW'21): a dynamic motif-based
/// generative model. This reproduction keeps the algorithmic skeleton: per
/// timestamp it estimates how much of the snapshot's edge mass comes from
/// triangle motifs, wedge motifs and isolated edges, learns per-node
/// activity rates, and regenerates snapshots by placing whole motifs drawn
/// from those rates. The original's O(n^3 T) node-triple parameterization is
/// what blows memory at paper scale (see EstimatePaperMemoryBytes).
class DymondGenerator : public TemporalGraphGenerator {
 public:
  std::string name() const override { return "DYMOND"; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  int64_t ResidentStateBytes() const override;

  /// The original parameterizes node triples: ~n^3 motif-rate entries.
  /// Coefficient calibrated so the paper's OOM pattern on a 32 GB device
  /// is reproduced (runs DBLP/MSG/EMAIL, OOMs MATH/BITCOIN-*/UBUNTU).
  int64_t EstimatePaperMemoryBytes(int64_t n, int64_t /*m*/,
                                   int64_t /*t*/) const override {
    return 2 * n * n * n;
  }

 private:
  /// Rebuilds activity_alias_ from node_activity_ (shared by Fit and the
  /// LoadState fallback so a rebuilt sampler is bit-identical to the
  /// fitted one; artifacts carry the alias parts so loads normally skip
  /// this).
  void RebuildActivitySampler();

  ObservedShape shape_;
  /// Per-timestamp motif mix: how many triangles / wedges / single edges
  /// to place (fitted from the observed snapshots).
  struct MotifMix {
    int64_t triangles = 0;
    int64_t wedges = 0;
    int64_t singles = 0;
  };
  /// Splits one snapshot's edge budget `m_t` into motif placements
  /// (shared by Fit and the per-delta-snapshot half of Update).
  static MotifMix EstimateMix(const graphs::StaticGraph& snap, int64_t m_t);
  std::vector<MotifMix> mix_;
  std::vector<double> node_activity_;  // Degree-based placement weights.
  /// O(1) node draws over node_activity_ — every motif placement during
  /// generation goes through this table.
  sampling::AliasTable activity_alias_;
};

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_DYMOND_H_
