#include "baselines/taggen.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "baselines/state_io.h"
#include "nn/kernels.h"
#include "sampling/samplers.h"

namespace tgsim::baselines {

void TagGenConfig::DefineParams(config::ParamBinder& binder) {
  binder.Bind("embedding_dim", &embedding_dim, "node/time embedding width");
  binder.Bind("walk_length", &walk_length, "temporal walk length");
  binder.Bind("walks_per_epoch", &walks_per_epoch,
              "sampled walks per training epoch");
  binder.Bind("epochs", &epochs, "training epochs");
  binder.Bind("candidates_per_step", &candidates_per_step,
              "candidate states scored per walk step");
  binder.Bind("negatives_per_step", &negatives_per_step,
              "negative candidates per walk step");
  binder.Bind("time_window", &time_window,
              "temporal walk window (|dt| <= w)");
  binder.Bind("learning_rate", &learning_rate, "Adam learning rate");
}

TGSIM_CONFIG_IMPLEMENT_PARAMS(TagGenConfig)

TagGenGenerator::TagGenGenerator(TagGenConfig config)
    : config_(config) {}

TagGenGenerator::~TagGenGenerator() = default;

nn::Var TagGenGenerator::StateEmbedding(
    const std::vector<graphs::TemporalNodeRef>& states,
    bool output_table) const {
  std::vector<int> nodes(states.size());
  std::vector<int> times(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    nodes[i] = states[i].node;
    times[i] = states[i].t;
  }
  const nn::Embedding& ne = output_table ? *node_out_ : *node_emb_;
  const nn::Embedding& te = output_table ? *time_out_ : *time_emb_;
  return nn::Add(ne.Forward(nodes), te.Forward(times));
}

nn::Var TagGenGenerator::StepLoss(
    const std::vector<graphs::TemporalNodeRef>& current,
    const std::vector<std::vector<graphs::TemporalNodeRef>>& candidates,
    const std::vector<int>& true_index) const {
  const int batch = static_cast<int>(current.size());
  TGSIM_CHECK_GT(batch, 0);
  // Flatten candidate lists; `rep[i]` maps flat row i to its batch pair.
  std::vector<graphs::TemporalNodeRef> flat;
  std::vector<int> rep;
  std::vector<double> mask_data;
  for (int b = 0; b < batch; ++b) {
    for (size_t c = 0; c < candidates[static_cast<size_t>(b)].size(); ++c) {
      flat.push_back(candidates[static_cast<size_t>(b)][c]);
      rep.push_back(b);
      mask_data.push_back(
          static_cast<int>(c) == true_index[static_cast<size_t>(b)] ? 1.0
                                                                    : 0.0);
    }
  }
  nn::Var cur_emb = StateEmbedding(current, /*output_table=*/false);
  nn::Var cur_expanded = nn::GatherRows(cur_emb, rep);
  nn::Var cand_emb = StateEmbedding(flat, /*output_table=*/true);
  // Per-row dot product via a constant ones reducer.
  nn::Var prod = nn::Mul(cur_expanded, cand_emb);
  nn::Var ones =
      nn::Var::Constant(nn::Tensor::Ones(config_.embedding_dim, 1));
  nn::Var logits = nn::MatMul(prod, ones);  // F x 1
  nn::Var probs = nn::SegmentSoftmax(logits, rep, batch);
  const int num_flat = static_cast<int>(mask_data.size());
  nn::Tensor mask(num_flat, 1, std::move(mask_data));
  nn::Var picked = nn::Mul(nn::Log(probs), nn::Var::Constant(mask));
  return nn::Scale(nn::Sum(picked), -1.0 / batch);
}

void TagGenGenerator::BuildModel(Rng& rng) {
  const int n = shape_.num_nodes;
  const int t_count = shape_.num_timestamps;
  node_emb_ = std::make_unique<nn::Embedding>(rng, n, config_.embedding_dim);
  time_emb_ =
      std::make_unique<nn::Embedding>(rng, t_count, config_.embedding_dim);
  node_out_ = std::make_unique<nn::Embedding>(rng, n, config_.embedding_dim);
  time_out_ =
      std::make_unique<nn::Embedding>(rng, t_count, config_.embedding_dim);
}

std::vector<nn::Var> TagGenGenerator::CollectParams() const {
  std::vector<nn::Var> params;
  for (const nn::Embedding* e :
       {node_emb_.get(), time_emb_.get(), node_out_.get(), time_out_.get()})
    params.insert(params.end(), e->params().begin(), e->params().end());
  return params;
}

void TagGenGenerator::Fit(const graphs::TemporalGraph& observed, Rng& rng) {
  // The support copy is the fitted structure generation walks on; the
  // caller's graph is not referenced after Fit returns.
  support_ = std::make_unique<graphs::TemporalGraph>(observed);
  shape_.CaptureFrom(*support_);
  walk_sampler_ = std::make_unique<TemporalWalkSampler>(
      support_.get(), config_.time_window);
  starts_ = std::make_unique<graphs::InitialNodeSampler>(
      support_.get(), config_.time_window);

  const int n = shape_.num_nodes;
  const int t_count = shape_.num_timestamps;
  BuildModel(rng);
  std::vector<nn::Var> params = CollectParams();
  nn::Adam opt(params, config_.learning_rate);

  auto random_state = [&](graphs::Timestamp near_t) {
    graphs::TemporalNodeRef s;
    s.node =
        static_cast<graphs::NodeId>(rng.UniformInt(static_cast<int64_t>(n)));
    int lo = std::max(0, near_t - config_.time_window);
    int hi = std::min(t_count - 1, near_t + config_.time_window);
    s.t = static_cast<graphs::Timestamp>(rng.UniformInt(lo, hi));
    return s;
  };

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<TemporalWalk> walks = walk_sampler_->SampleMany(
        config_.walks_per_epoch, config_.walk_length, rng);
    std::vector<graphs::TemporalNodeRef> current;
    std::vector<std::vector<graphs::TemporalNodeRef>> candidates;
    std::vector<int> true_index;
    for (const TemporalWalk& w : walks) {
      for (size_t i = 0; i + 1 < w.steps.size(); ++i) {
        const graphs::TemporalNodeRef cur = w.steps[i];
        const graphs::TemporalNodeRef next = w.steps[i + 1];
        std::vector<graphs::TemporalNodeRef> cands = {next};
        // Observed-neighbor distractors.
        std::vector<graphs::TemporalNeighbor> nbrs =
            support_->TemporalNeighborhood(cur.node, cur.t,
                                           config_.time_window);
        int want = std::max(
            0, config_.candidates_per_step - 1 - config_.negatives_per_step);
        for (int c = 0; c < want && !nbrs.empty(); ++c) {
          const auto& nb = nbrs[static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(nbrs.size())))];
          cands.push_back({nb.node, nb.t});
        }
        for (int c = 0; c < config_.negatives_per_step; ++c)
          cands.push_back(random_state(cur.t));
        current.push_back(cur);
        candidates.push_back(std::move(cands));
        true_index.push_back(0);
      }
    }
    if (current.empty()) continue;
    opt.ZeroGrad();
    nn::Var loss = StepLoss(current, candidates, true_index);
    nn::Backward(loss);
    opt.ClipGradNorm(5.0);
    opt.Step();
    last_epoch_loss_ = loss.item();
  }
}

Status TagGenGenerator::Update(const graphs::TemporalGraph& delta,
                               Rng& /*rng*/) {
  Status ok = RequireUpdatable(support_ != nullptr, delta, shape_, name());
  if (!ok.ok()) return ok;
  if (delta.num_edges() == 0) return Status::Ok();

  // Generation walks score candidates over the support adjacency, so
  // absorbing a delta means extending the support and rebuilding the
  // start distribution over it (a deterministic function of the merged
  // edges). The embedding tables keep their trained values — scores over
  // the new neighborhoods come from the same bigram model.
  support_ = std::make_unique<graphs::TemporalGraph>(
      MergeSupportGraph(*support_, delta));
  shape_.CaptureFrom(*support_);
  starts_ = std::make_unique<graphs::InitialNodeSampler>(
      support_.get(), config_.time_window);
  walk_sampler_.reset();  // Training-only.
  return Status::Ok();
}

int64_t TagGenGenerator::ResidentStateBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(*this)) +
                  static_cast<int64_t>(shape_.edges_per_timestamp.capacity() *
                                       sizeof(int64_t));
  if (support_ != nullptr) {
    bytes += static_cast<int64_t>(sizeof(*support_)) +
             static_cast<int64_t>(support_->num_edges()) *
                 static_cast<int64_t>(sizeof(graphs::TemporalEdge) +
                                      2 * sizeof(int64_t));
  }
  if (starts_ != nullptr) {
    bytes += static_cast<int64_t>(sizeof(*starts_)) +
             static_cast<int64_t>(starts_->occurrences().capacity() *
                                  sizeof(graphs::TemporalNodeRef)) +
             static_cast<int64_t>(starts_->weights().capacity() *
                                  sizeof(double)) +
             static_cast<int64_t>(starts_->alias().prob().capacity() *
                                  sizeof(double)) +
             static_cast<int64_t>(starts_->alias().alias().capacity() *
                                  sizeof(int64_t));
  }
  if (node_emb_ != nullptr) bytes += ParamsResidentBytes(CollectParams());
  return bytes;
}

graphs::TemporalGraph TagGenGenerator::Generate(Rng& rng) {
  TGSIM_CHECK(support_ != nullptr);  // Requires a Fit() or LoadState().
  const nn::Tensor& ne = node_emb_->table().value();
  const nn::Tensor& te = time_emb_->table().value();
  const nn::Tensor& no = node_out_->table().value();
  const nn::Tensor& to = time_out_->table().value();
  const int d = config_.embedding_dim;

  const graphs::InitialNodeSampler& starts = *starts_;
  const int64_t budget = shape_.total_edges();

  std::vector<TemporalWalk> walks;
  int64_t projected_edges = 0;
  int guard = 0;
  while (projected_edges < budget && guard < 8 * budget + 64) {
    ++guard;
    graphs::TemporalNodeRef cur = starts.Sample(1, rng)[0];
    TemporalWalk walk;
    walk.steps.push_back(cur);
    std::vector<double> cur_emb(static_cast<size_t>(d));
    for (int step = 0; step + 1 < config_.walk_length; ++step) {
      std::vector<graphs::TemporalNeighbor> nbrs =
          support_->TemporalNeighborhood(cur.node, cur.t,
                                         config_.time_window);
      if (nbrs.empty()) break;
      // Model-scored categorical step over the observed support. The
      // current-step embedding is shared by every candidate, so hoist it
      // out of the candidate loop; the per-candidate logit is then one
      // vectorizable dot against the candidate's node + time rows.
      const double* ne_row = ne.row(cur.node);
      const double* te_row = te.row(cur.t);
      for (int k = 0; k < d; ++k) cur_emb[static_cast<size_t>(k)] =
          ne_row[k] + te_row[k];
      std::vector<double> weights(nbrs.size());
      double max_logit = -1e300;
      std::vector<double> logits(nbrs.size());
      for (size_t c = 0; c < nbrs.size(); ++c) {
        double dot = nn::kernels::DotSum2(cur_emb.data(),
                                          no.row(nbrs[c].node),
                                          to.row(nbrs[c].t), d);
        logits[c] = dot;
        max_logit = std::max(max_logit, dot);
      }
      nn::kernels::ExpRow(logits.data(), max_logit, weights.data(),
                          static_cast<int>(nbrs.size()));
      size_t pick = sampling::WeightedPick(weights, rng);
      cur = {nbrs[pick].node, nbrs[pick].t};
      walk.steps.push_back(cur);
    }
    projected_edges += std::max(0, walk.length() - 1);
    walks.push_back(std::move(walk));
  }
  return AssembleFromWalks(walks, shape_.num_nodes, shape_.num_timestamps,
                           budget, rng);
}

Status TagGenGenerator::SaveState(std::ostream& out) const {
  Status fitted = RequireFitted(support_ != nullptr, name());
  if (!fitted.ok()) return fitted;
  serialize::ArchiveWriter writer(out);
  WriteShape(writer, shape_);
  WriteSupportGraph(writer, "support", *support_);
  writer.BeginSection("params");
  serialize::WriteParams(writer, CollectParams());
  return writer.Finish();
}

Status TagGenGenerator::LoadState(std::istream& in) {
  Result<serialize::ArchiveReader> parsed =
      serialize::ArchiveReader::Parse(in);
  if (!parsed.ok()) return parsed.status();
  const serialize::ArchiveReader& reader = parsed.value();
  ObservedShape shape;
  Status s = ReadShape(reader, shape);
  if (!s.ok()) return s;
  Result<graphs::TemporalGraph> support = ReadSupportGraph(reader, "support");
  if (!support.ok()) return support.status();

  shape_ = std::move(shape);
  // Values come from the archive; the init rng only shapes the tables.
  Rng init(0);
  BuildModel(init);
  std::vector<nn::Var> params = CollectParams();
  s = serialize::ReadParamsInto(reader, "params", params);
  if (!s.ok()) return s;
  support_ =
      std::make_unique<graphs::TemporalGraph>(std::move(support).value());
  starts_ = std::make_unique<graphs::InitialNodeSampler>(
      support_.get(), config_.time_window);
  walk_sampler_.reset();  // Training-only.
  return Status::Ok();
}

}  // namespace tgsim::baselines
