#ifndef TGSIM_BASELINES_TIGGER_H_
#define TGSIM_BASELINES_TIGGER_H_

#include <memory>
#include <vector>

#include "baselines/generator.h"
#include "baselines/walks.h"
#include "config/param_map.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace tgsim::baselines {

struct TiggerConfig {
  int embedding_dim = 32;
  int hidden_dim = 48;
  int walk_length = 8;
  int walks_per_epoch = 120;
  int epochs = 12;
  int time_window = 2;
  double learning_rate = 5e-3;

  void DefineParams(config::ParamBinder& binder);
  Status ApplyParams(const config::ParamMap& params);
  static config::ParamSchema Schema();
};

/// TIGGER (Gupta et al., AAAI'22): scalable autoregressive temporal walk
/// model. This reproduction keeps the skeleton: a recurrent (GRU) model over
/// temporal random walks predicting the next node (full softmax over n
/// nodes) and the inter-event time gap, followed by walk re-assembly. Its
/// O(n x M) cost model keeps it alive far beyond TagGen (matching the
/// paper's tables, where only UBUNTU knocks TIGGER out).
class TiggerGenerator : public TemporalGraphGenerator {
 public:
  explicit TiggerGenerator(TiggerConfig config = {});
  ~TiggerGenerator() override;

  std::string name() const override { return "TIGGER"; }
  void Fit(const graphs::TemporalGraph& observed, Rng& rng) override;
  graphs::TemporalGraph Generate(Rng& rng) override;
  Status Update(const graphs::TemporalGraph& delta, Rng& rng) override;
  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;
  int64_t ResidentStateBytes() const override;

  int64_t EstimatePaperMemoryBytes(int64_t n, int64_t m,
                                   int64_t /*t*/) const override {
    return n * m;  // Node-embedding x walk-corpus working set.
  }

  double last_epoch_loss() const { return last_epoch_loss_; }

 private:
  /// Number of time-gap classes: gaps in [-w, w] around the current step.
  int NumGapClasses() const { return 2 * config_.time_window + 1; }

  /// Constructs the model modules from config_ + shape_ (shared by Fit and
  /// LoadState so the parameter order and shapes are fixed in one place).
  void BuildModel(Rng& rng);
  /// All trainable parameters in the fixed module order.
  std::vector<nn::Var> CollectParams() const;

  TiggerConfig config_;
  ObservedShape shape_;
  /// Fitted walk-start distribution (part of the serialized state; the
  /// training graph is not needed at generation time).
  std::unique_ptr<graphs::InitialNodeSampler> starts_;
  std::unique_ptr<nn::Embedding> node_emb_;
  std::unique_ptr<nn::Embedding> time_emb_;
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Linear> node_head_;
  std::unique_ptr<nn::Linear> gap_head_;
  double last_epoch_loss_ = 0.0;
};

}  // namespace tgsim::baselines

#endif  // TGSIM_BASELINES_TIGGER_H_
