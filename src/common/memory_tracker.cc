#include "common/memory_tracker.h"

#include <algorithm>

namespace tgsim {

namespace {

/// Per-thread mirror of the tracker counters; plain ints, no atomics
/// needed. Only Allocate/Release on the global tracker update these.
struct ThreadStats {
  int64_t current = 0;
  int64_t peak = 0;
};

ThreadStats& LocalStats() {
  thread_local ThreadStats stats;
  return stats;
}

}  // namespace

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::Allocate(size_t bytes) {
  int64_t now = current_.fetch_add(static_cast<int64_t>(bytes)) +
                static_cast<int64_t>(bytes);
  int64_t prev_peak = peak_.load();
  while (now > prev_peak && !peak_.compare_exchange_weak(prev_peak, now)) {
  }
  ThreadStats& local = LocalStats();
  local.current += static_cast<int64_t>(bytes);
  local.peak = std::max(local.peak, local.current);
}

void MemoryTracker::Release(size_t bytes) {
  current_.fetch_sub(static_cast<int64_t>(bytes));
  LocalStats().current -= static_cast<int64_t>(bytes);
}

void MemoryTracker::ResetPeak() { peak_.store(current_.load()); }

int64_t MemoryTracker::ThreadCurrentBytes() { return LocalStats().current; }

int64_t MemoryTracker::ThreadPeakBytes() { return LocalStats().peak; }

void MemoryTracker::ResetThreadPeak() {
  ThreadStats& local = LocalStats();
  local.peak = local.current;
}

}  // namespace tgsim
