#include "common/memory_tracker.h"

namespace tgsim {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::Allocate(size_t bytes) {
  int64_t now = current_.fetch_add(static_cast<int64_t>(bytes)) +
                static_cast<int64_t>(bytes);
  int64_t prev_peak = peak_.load();
  while (now > prev_peak && !peak_.compare_exchange_weak(prev_peak, now)) {
  }
}

void MemoryTracker::Release(size_t bytes) {
  current_.fetch_sub(static_cast<int64_t>(bytes));
}

void MemoryTracker::ResetPeak() { peak_.store(current_.load()); }

}  // namespace tgsim
