#include "common/status.h"

namespace tgsim {

std::string StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

StatusCode StatusCodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kOutOfRange,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    if (StatusCodeName(code) == name) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tgsim
