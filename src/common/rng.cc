#include "common/rng.h"

#include <cmath>
#include <unordered_set>

namespace tgsim {

size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  TGSIM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TGSIM_DCHECK(w >= 0.0);
    total += w;
  }
  TGSIM_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Guard against floating-point drift (r rounding up to the exact total):
  // fall back to the last positive-weight index, never a zero-weight one —
  // a zero weight marks an entry the caller already consumed (e.g. the
  // without-replacement loops in generation), and returning it would emit
  // a duplicate.
  for (size_t i = weights.size(); i-- > 0;)
    if (weights[i] > 0.0) return i;
  return weights.size() - 1;  // Unreachable: total > 0 was checked above.
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  TGSIM_CHECK_GE(n, k);
  TGSIM_CHECK_GE(k, 0);
  std::unordered_set<int64_t> chosen;
  std::vector<int64_t> result;
  result.reserve(static_cast<size_t>(k));
  // Floyd's algorithm: k iterations, each adding exactly one new element.
  for (int64_t j = n - k; j < n; ++j) {
    int64_t t = UniformInt(j + 1);
    if (chosen.count(t)) t = j;
    chosen.insert(t);
    result.push_back(t);
  }
  return result;
}

}  // namespace tgsim
