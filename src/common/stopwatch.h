#ifndef TGSIM_COMMON_STOPWATCH_H_
#define TGSIM_COMMON_STOPWATCH_H_

#include <chrono>

namespace tgsim {

/// Wall-clock stopwatch used by the efficiency experiments (Figure 6).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tgsim

#endif  // TGSIM_COMMON_STOPWATCH_H_
