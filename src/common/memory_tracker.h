#ifndef TGSIM_COMMON_MEMORY_TRACKER_H_
#define TGSIM_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tgsim {

/// Process-wide accounting of tensor allocations.
///
/// The paper's Figure 6 reports peak GPU memory per generator. We reproduce
/// the same quantity on the host: every nn::Tensor registers its buffer here,
/// and benches snapshot the peak between Reset() and PeakBytes(). The counter
/// is atomic so tracked code may run on multiple threads.
///
/// In addition to the process-wide counters, every Allocate/Release is
/// mirrored into thread-local counters. MemoryUsageScope measures against
/// the thread-local view, so concurrent eval cells (eval::RunCells) each
/// observe only their own allocations — keeping per-cell peaks identical to
/// a serial run.
class MemoryTracker {
 public:
  /// Global tracker instance used by nn::Tensor.
  static MemoryTracker& Global();

  /// Records an allocation of `bytes`.
  void Allocate(size_t bytes);

  /// Records the release of `bytes`.
  void Release(size_t bytes);

  /// Currently live tracked bytes.
  int64_t CurrentBytes() const { return current_.load(); }

  /// Highest watermark since the last Reset().
  int64_t PeakBytes() const { return peak_.load(); }

  /// Resets the peak watermark to the current live byte count.
  void ResetPeak();

  /// Live bytes allocated by the calling thread (net of its releases).
  static int64_t ThreadCurrentBytes();

  /// Calling thread's highest watermark since ResetThreadPeak().
  static int64_t ThreadPeakBytes();

  /// Resets the calling thread's peak watermark to its current live count.
  static void ResetThreadPeak();

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// RAII scope measuring the *calling thread's* peak allocation growth over
/// its lifetime. The peak is reported relative to the live bytes at scope
/// entry, so work that stays on one thread (each eval::RunCells cell does)
/// gets the same measurement whether it runs serially on a loaded caller
/// thread or concurrently on a fresh pool worker.
class MemoryUsageScope {
 public:
  MemoryUsageScope() : baseline_(MemoryTracker::ThreadCurrentBytes()) {
    MemoryTracker::ResetThreadPeak();
  }

  /// Peak tracked bytes this thread gained since this scope began.
  int64_t PeakBytes() const {
    return MemoryTracker::ThreadPeakBytes() - baseline_;
  }

  /// Peak in MiB (the unit of the paper's Figure 6).
  double PeakMiB() const {
    return static_cast<double>(PeakBytes()) / (1024.0 * 1024.0);
  }

 private:
  int64_t baseline_;
};

}  // namespace tgsim

#endif  // TGSIM_COMMON_MEMORY_TRACKER_H_
