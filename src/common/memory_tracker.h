#ifndef TGSIM_COMMON_MEMORY_TRACKER_H_
#define TGSIM_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tgsim {

/// Process-wide accounting of tensor allocations.
///
/// The paper's Figure 6 reports peak GPU memory per generator. We reproduce
/// the same quantity on the host: every nn::Tensor registers its buffer here,
/// and benches snapshot the peak between Reset() and PeakBytes(). The counter
/// is atomic so tracked code may run on multiple threads.
class MemoryTracker {
 public:
  /// Global tracker instance used by nn::Tensor.
  static MemoryTracker& Global();

  /// Records an allocation of `bytes`.
  void Allocate(size_t bytes);

  /// Records the release of `bytes`.
  void Release(size_t bytes);

  /// Currently live tracked bytes.
  int64_t CurrentBytes() const { return current_.load(); }

  /// Highest watermark since the last Reset().
  int64_t PeakBytes() const { return peak_.load(); }

  /// Resets the peak watermark to the current live byte count.
  void ResetPeak();

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// RAII scope that resets the global peak on entry and exposes the peak
/// observed during its lifetime.
class MemoryUsageScope {
 public:
  MemoryUsageScope() { MemoryTracker::Global().ResetPeak(); }

  /// Peak tracked bytes since this scope began.
  int64_t PeakBytes() const { return MemoryTracker::Global().PeakBytes(); }

  /// Peak in MiB (the unit of the paper's Figure 6).
  double PeakMiB() const {
    return static_cast<double>(PeakBytes()) / (1024.0 * 1024.0);
  }
};

}  // namespace tgsim

#endif  // TGSIM_COMMON_MEMORY_TRACKER_H_
