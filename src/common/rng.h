#ifndef TGSIM_COMMON_RNG_H_
#define TGSIM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace tgsim {

/// Deterministic pseudo-random source used throughout the library.
///
/// Every stochastic component (samplers, generators, model initialization)
/// takes an Rng so that experiments are reproducible from a single seed.
/// The class wraps std::mt19937_64 with the sampling helpers the paper's
/// algorithms need (uniform/normal draws, weighted choice, reservoir-free
/// sampling with and without replacement).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n) {
    TGSIM_CHECK_GT(n, 0);
    return static_cast<int64_t>(engine_() % static_cast<uint64_t>(n));
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TGSIM_CHECK_LE(lo, hi);
    return lo + UniformInt(hi - lo + 1);
  }

  /// Standard normal draw.
  double Normal() { return normal_(engine_); }

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Geometric-ish power-law exponent sample helper: Pareto(alpha) >= 1.
  double Pareto(double alpha) {
    double u = Uniform();
    if (u <= 0.0) u = 1e-12;
    return std::pow(1.0 / u, 1.0 / alpha);
  }

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with a positive sum.
  size_t WeightedChoice(const std::vector<double>& weights);

  /// Samples `k` distinct values from [0, n) uniformly (Floyd's algorithm).
  /// Requires k <= n. The result is not sorted.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i)));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Returns a child Rng seeded from this one; used to give independent
  /// deterministic streams to parallel components.
  Rng Fork() { return Rng(engine_()); }

  /// Splits off `n` child Rngs in one call. Children are deterministic
  /// given the parent's state and mutually independent (each consumes its
  /// own seed draw from the parent).
  std::vector<Rng> Split(size_t n) {
    std::vector<Rng> children;
    children.reserve(n);
    for (size_t i = 0; i < n; ++i) children.push_back(Fork());
    return children;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace tgsim

#endif  // TGSIM_COMMON_RNG_H_
