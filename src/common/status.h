#ifndef TGSIM_COMMON_STATUS_H_
#define TGSIM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace tgsim {

/// Error categories for recoverable failures (I/O, malformed input,
/// configuration errors). Programming errors use TGSIM_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Lightweight status object in the Arrow/absl style: cheap to return,
/// carries a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "IoError: cannot open file".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Stable wire name of a code: "Ok", "InvalidArgument", "NotFound", ...
/// (the serve protocol ships these in error replies; keep them in sync
/// with StatusCodeFromName).
std::string StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName; kInternal for names no build knows.
StatusCode StatusCodeFromName(const std::string& name);

/// Result<T> is either a value or an error Status. Access to the value of a
/// failed result is a checked programming error.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, mirrors absl.
  Result(T value) : value_(std::move(value)), status_(Status::Ok()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    TGSIM_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TGSIM_CHECK(ok());
    return *value_;
  }
  T& value() & {
    TGSIM_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    TGSIM_CHECK(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace tgsim

#endif  // TGSIM_COMMON_STATUS_H_
