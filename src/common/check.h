#ifndef TGSIM_COMMON_CHECK_H_
#define TGSIM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Assertion macros for programming errors. Following the project's
/// no-exceptions policy, a failed check prints a diagnostic and aborts.
/// Use Status/Result (status.h) for recoverable runtime errors instead.
/// TGSIM_DCHECK compiles away in NDEBUG builds and guards hot paths.

namespace tgsim::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[tgsim] CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace tgsim::internal

#define TGSIM_CHECK(cond)                                    \
  do {                                                       \
    if (!(cond)) {                                           \
      ::tgsim::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                        \
  } while (0)

#define TGSIM_CHECK_EQ(a, b) TGSIM_CHECK((a) == (b))
#define TGSIM_CHECK_NE(a, b) TGSIM_CHECK((a) != (b))
#define TGSIM_CHECK_LT(a, b) TGSIM_CHECK((a) < (b))
#define TGSIM_CHECK_LE(a, b) TGSIM_CHECK((a) <= (b))
#define TGSIM_CHECK_GT(a, b) TGSIM_CHECK((a) > (b))
#define TGSIM_CHECK_GE(a, b) TGSIM_CHECK((a) >= (b))

#ifdef NDEBUG
#define TGSIM_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define TGSIM_DCHECK(cond) TGSIM_CHECK(cond)
#endif

#endif  // TGSIM_COMMON_CHECK_H_
