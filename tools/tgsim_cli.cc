#include "tools/tgsim_cli.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <string>
#include <vector>

#include "baselines/state_io.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "config/param_map.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "eval/artifact.h"
#include "eval/registry.h"
#include "eval/runner.h"
#include "eval/table_printer.h"
#include "graph/temporal_graph.h"
#include "metrics/graph_stats.h"
#include "parallel/thread_pool.h"
#include "serve/client.h"
#include "serve/server.h"

namespace tgsim::cli {

namespace {

constexpr char kUsage[] =
    "tgsim — learning-based temporal graph simulation (TGAE + baselines)\n"
    "\n"
    "Usage: tgsim <command> [options]\n"
    "\n"
    "Commands:\n"
    "  methods   List registered generator methods and their parameters.\n"
    "  fit       Fit a method on a dataset and save the trained model\n"
    "            artifact (fit once, then `generate --model` many times).\n"
    "  generate  Write a synthetic edge list, fitting on a dataset or\n"
    "            loading a trained artifact (--model).\n"
    "  update    Absorb a delta edge list into a fitted artifact\n"
    "            incrementally (no full refit) and save the result.\n"
    "  eval      Run a (methods x datasets) matrix and print paper-style "
    "tables.\n"
    "  stats     Print shape and Table III statistics of a dataset.\n"
    "  convert   Re-encode an edge list between the text and compact\n"
    "            binary formats (both load anywhere --input is accepted).\n"
    "  serve     Run (or query) the model-serving daemon: preloaded\n"
    "            artifacts answering generate requests over a local "
    "socket.\n"
    "\n"
    "Dataset selection (generate/eval/stats):\n"
    "  --input PATH       Edge-list file (`u v t` per line; datasets/io.h).\n"
    "  --synthetic NAME   Table II mimic (DBLP, MSG, EMAIL, MATH, BITCOIN-A,\n"
    "                     BITCOIN-O, UBUNTU). eval takes a comma list via\n"
    "                     --datasets instead.\n"
    "  --scale S          Mimic scale factor (default 0.05).\n"
    "\n"
    "Generator construction (generate/eval):\n"
    "  --preset fast|paper  Named parameter profile (default paper).\n"
    "  --param key=value    Per-method override; repeatable, wins over the\n"
    "                       preset and over --config assignments.\n"
    "  --config PATH        `key = value` file applied before --param.\n"
    "\n"
    "Runtime:\n"
    "  --threads N        Global thread-pool size (wins over the\n"
    "                     TGSIM_NUM_THREADS environment variable).\n"
    "\n"
    "Run `tgsim <command> --help` for per-command options.\n";

constexpr char kFitUsage[] =
    "usage: tgsim fit --method NAME --output MODEL.tgsim\n"
    "         (--input PATH | --synthetic NAME [--scale S])\n"
    "         [--preset fast|paper] [--param key=value ...] [--config FILE]\n"
    "         [--seed N]\n"
    "Fits NAME on the dataset and saves the trained simulator as a\n"
    "self-describing artifact (method + parameters + fitted state).\n"
    "`tgsim generate --model MODEL.tgsim` then generates without the\n"
    "training data; with the same --seed it reproduces an in-process\n"
    "fit+generate run exactly.\n";

constexpr char kUpdateUsage[] =
    "usage: tgsim update --model IN.tgsim --input DELTA --output OUT.tgsim\n"
    "         [--seed N]\n"
    "Loads a `tgsim fit` artifact, absorbs the delta edge list (new\n"
    "observations inside the fitted node/timestamp universe; growing\n"
    "either axis requires a full refit) through the method's incremental\n"
    "Update path, and saves the updated artifact. The statistical family\n"
    "merges support structures and rebuilds its samplers; the NN family\n"
    "takes a bounded warm start on recency-biased snapshots. An empty\n"
    "delta is a no-op. The artifact records its update lineage (base fit\n"
    "seed, update count); `tgsim generate --model OUT.tgsim` serves the\n"
    "updated model as usual.\n";

constexpr char kGenerateUsage[] =
    "usage: tgsim generate --method NAME --output PATH\n"
    "         (--input PATH | --synthetic NAME [--scale S])\n"
    "         [--preset fast|paper] [--param key=value ...] [--config FILE]\n"
    "         [--seed N]\n"
    "   or: tgsim generate --model MODEL.tgsim --output PATH [--seed N]\n"
    "Simulates one graph with the observed shape and writes it as a\n"
    "`u v t` edge list (reloadable with LoadEdgeList / --input). The first\n"
    "form fits NAME on the dataset; the second loads a `tgsim fit`\n"
    "artifact and needs no dataset at all.\n";

constexpr char kEvalUsage[] =
    "usage: tgsim eval [--methods A,B|all]\n"
    "         (--datasets DBLP,MSG [--scale S] | --input PATH)\n"
    "         [--preset fast|paper] [--param key=value ...] [--config FILE]\n"
    "         [--seed N] [--stride K] [--motif-mmd] [--motif-delta D]\n"
    "         [--max-triples N] [--paper-scale]\n"
    "Runs every (method, dataset) cell through eval::RunCells and prints\n"
    "one f_med table per dataset (plus motif MMD with --motif-mmd).\n"
    "A --param key applies to each selected method whose schema declares\n"
    "it; a key no selected method declares is an error. --paper-scale\n"
    "marks cells OOM per the 32 GB paper-scale memory model.\n";

constexpr char kStatsUsage[] =
    "usage: tgsim stats (--input PATH | --synthetic NAME [--scale S])\n"
    "         [--seed N]\n"
    "Prints the dataset shape and the seven Table III statistics of the\n"
    "accumulated graph.\n";

constexpr char kConvertUsage[] =
    "usage: tgsim convert --input PATH --output PATH --to text|binary\n"
    "Loads an edge list (either format is sniffed by magic bytes) and\n"
    "rewrites it in the requested format. Round trips are byte-identical:\n"
    "the graph's canonical (t, u, v) edge order makes text -> binary ->\n"
    "text reproduce the original file exactly. The binary form stores\n"
    "varint-delta (u, v, t) triples and is typically 3-6x smaller.\n";

constexpr char kServeUsage[] =
    "usage: tgsim serve --socket PATH --model NAME=MODEL.tgsim ...\n"
    "         [--budget-mb N] [--workers N] [--max-pending N]\n"
    "   or: tgsim serve --socket PATH --call generate --name NAME\n"
    "         [--seed N] [--output PATH]\n"
    "   or: tgsim serve --socket PATH --call update --name NAME\n"
    "         --input DELTA [--seed N]\n"
    "   or: tgsim serve --socket PATH (--call stats|list|shutdown | "
    "--status)\n"
    "Daemon mode preloads every --model artifact (NAME=PATH, repeatable)\n"
    "into a byte-budgeted cache and serves line-delimited JSON requests on\n"
    "a Unix-domain socket until a shutdown request drains it. Client mode\n"
    "(--call/--status) sends one request to a running daemon; a generate\n"
    "reply's payload is the same edge list `tgsim generate --model` writes\n"
    "for that seed, and --output saves it byte-for-byte. --call update\n"
    "absorbs the delta at --input (a daemon-local path) into the served\n"
    "model, rewrites its artifact, and swaps it in atomically — in-flight\n"
    "generates finish on the old state.\n"
    "  --budget-mb N    Model-cache budget in MiB (default 1024); least-\n"
    "                   traffic models are evicted and reloaded on demand.\n"
    "  --workers N      Concurrent connection workers (default 4).\n"
    "  --max-pending N  Accepted-connection backlog bound (default 64).\n"
    "  --status         Shorthand for --call stats.\n";

constexpr char kMethodsUsage[] =
    "usage: tgsim methods [--verbose] [--method NAME]\n"
    "Lists registered generator methods; --verbose (or --method NAME)\n"
    "also prints each method's parameter schema and fast-preset overlay.\n";

struct ParsedArgs {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;  // With values.
  std::vector<std::string> switches;                       // Bare flags.
};

const std::vector<std::string>& ValueFlags() {
  static const std::vector<std::string>* kValueFlags =
      new std::vector<std::string>{
          "--input",  "--synthetic", "--scale",  "--seed",    "--method",
          "--output", "--preset",    "--param",  "--config",  "--methods",
          "--datasets", "--stride",  "--motif-delta", "--max-triples",
          "--model",  "--threads",   "--socket", "--budget-mb",
          "--workers", "--max-pending", "--call", "--name", "--to"};
  return *kValueFlags;
}

const std::vector<std::string>& SwitchFlags() {
  static const std::vector<std::string>* kSwitches =
      new std::vector<std::string>{"--help", "--verbose", "--motif-mmd",
                                   "--paper-scale", "--status"};
  return *kSwitches;
}

bool Contains(const std::vector<std::string>& names,
              const std::string& flag) {
  for (const std::string& known : names)
    if (flag == known) return true;
  return false;
}

/// Splits argv into positional tokens, valued flags and switches. Both
/// `--flag value` and `--flag=value` spellings are accepted; a flag that is
/// neither a known value flag nor a known switch is an error (with a
/// nearest-name suggestion), never silently dropped.
Result<ParsedArgs> ParseArgs(const std::vector<std::string>& args) {
  ParsedArgs out;
  for (size_t i = 0; i < args.size(); ++i) {
    std::string arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional.push_back(arg);
      continue;
    }
    std::string inline_value;
    bool has_inline_value = false;
    if (size_t eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
      arg = arg.substr(0, eq);
    }
    if (Contains(ValueFlags(), arg)) {
      if (has_inline_value) {
        out.flags.emplace_back(arg, inline_value);
      } else {
        if (i + 1 >= args.size())
          return Status::InvalidArgument("flag " + arg + " needs a value");
        out.flags.emplace_back(arg, args[++i]);
      }
    } else if (Contains(SwitchFlags(), arg)) {
      if (has_inline_value)
        return Status::InvalidArgument("flag " + arg +
                                       " does not take a value");
      out.switches.push_back(arg);
    } else {
      std::vector<std::string> known = ValueFlags();
      known.insert(known.end(), SwitchFlags().begin(), SwitchFlags().end());
      std::string message = "unknown flag '" + arg + "'";
      std::string suggestion = config::NearestName(arg, known);
      if (!suggestion.empty())
        message += "; did you mean '" + suggestion + "'?";
      return Status::InvalidArgument(message);
    }
  }
  return out;
}

const std::string* FindFlag(const ParsedArgs& args, const std::string& flag) {
  const std::string* last = nullptr;
  for (const auto& [k, v] : args.flags)
    if (k == flag) last = &v;
  return last;
}

std::vector<std::string> FlagValues(const ParsedArgs& args,
                                    const std::string& flag) {
  std::vector<std::string> values;
  for (const auto& [k, v] : args.flags)
    if (k == flag) values.push_back(v);
  return values;
}

bool HasSwitch(const ParsedArgs& args, const std::string& name) {
  for (const std::string& s : args.switches)
    if (s == name) return true;
  return false;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    if (comma > start) out.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

Result<double> ParseDoubleFlag(const ParsedArgs& args, const std::string& flag,
                               double fallback) {
  const std::string* raw = FindFlag(args, flag);
  if (raw == nullptr) return fallback;
  config::ParamMap one;
  one.Override("v", *raw);
  Result<double> parsed = one.GetDouble("v");
  if (!parsed.ok())
    return Status::InvalidArgument("flag " + flag + ": cannot parse '" +
                                   *raw + "' as a number");
  return parsed.value();
}

Result<int64_t> ParseIntFlag(const ParsedArgs& args, const std::string& flag,
                             int64_t fallback) {
  const std::string* raw = FindFlag(args, flag);
  if (raw == nullptr) return fallback;
  config::ParamMap one;
  one.Override("v", *raw);
  Result<int64_t> parsed = one.GetInt64("v");
  if (!parsed.ok())
    return Status::InvalidArgument("flag " + flag + ": cannot parse '" +
                                   *raw + "' as an integer");
  return parsed.value();
}

/// Layers --config file assignments under repeated --param tokens.
Result<config::ParamMap> BuildParams(const ParsedArgs& args) {
  config::ParamMap params;
  if (const std::string* path = FindFlag(args, "--config")) {
    Result<config::ParamMap> from_file = config::ParamMap::FromFile(*path);
    if (!from_file.ok()) return from_file.status();
    params = std::move(from_file).value();
  }
  Result<config::ParamMap> overrides =
      config::ParamMap::FromTokens(FlagValues(args, "--param"));
  if (!overrides.ok()) return overrides.status();
  for (const std::string& key : overrides.value().Keys())
    params.Override(key, *overrides.value().FindRaw(key));
  if (const std::string* preset = FindFlag(args, "--preset"))
    params.Override("preset", *preset);
  return params;
}

/// Loads the dataset named by --input or --synthetic/--scale.
Result<graphs::TemporalGraph> LoadDataset(const ParsedArgs& args,
                                          uint64_t seed) {
  const std::string* input = FindFlag(args, "--input");
  const std::string* synthetic = FindFlag(args, "--synthetic");
  if ((input == nullptr) == (synthetic == nullptr))
    return Status::InvalidArgument(
        "pick exactly one of --input PATH or --synthetic NAME");
  if (input != nullptr) return datasets::LoadEdgeList(*input);

  if (datasets::FindDataset(*synthetic) == nullptr) {
    std::string known;
    for (const datasets::DatasetSpec& spec : datasets::TableIIDatasets())
      known += (known.empty() ? "" : ", ") + spec.name;
    return Status::NotFound("unknown synthetic dataset '" + *synthetic +
                            "'; known: " + known);
  }
  Result<double> scale = ParseDoubleFlag(args, "--scale", 0.05);
  if (!scale.ok()) return scale.status();
  return datasets::MakeMimicByName(*synthetic, scale.value(), seed);
}

void PrintGraphShape(const char* label, const graphs::TemporalGraph& g) {
  std::printf("%s: %d nodes, %lld temporal edges, %d timestamps\n", label,
              g.num_nodes(), static_cast<long long>(g.num_edges()),
              g.num_timestamps());
}

// ---------------------------------------------------------------------------
// tgsim methods
// ---------------------------------------------------------------------------

int RunMethods(const ParsedArgs& args) {
  const std::string* only = FindFlag(args, "--method");
  const bool verbose = HasSwitch(args, "--verbose") || only != nullptr;
  std::vector<std::string> names;
  if (only != nullptr) {
    if (eval::FindMethod(*only) == nullptr) {
      std::fprintf(stderr, "error: %s\n",
                   eval::MakeGenerator(*only).status().ToString().c_str());
      return 1;
    }
    names.push_back(*only);
  } else {
    names = eval::RegisteredMethodNames();
  }
  for (const std::string& name : names) {
    const eval::MethodSpec* spec = eval::FindMethod(name);
    std::printf("%-10s %s%s\n", spec->name.c_str(), spec->summary.c_str(),
                spec->supports_update ? " [updatable]" : "");
    if (!verbose) continue;
    if (spec->schema.empty()) {
      std::printf("  (no tunable parameters)\n");
    } else {
      std::printf("%s", spec->schema.Describe().c_str());
      if (!spec->fast_preset.empty())
        std::printf("  preset=fast applies: %s\n",
                    spec->fast_preset.ToString().c_str());
    }
    std::printf("  incremental update (tgsim update): %s\n",
                spec->supports_update ? "supported" : "not supported");
    std::printf("\n");
  }
  if (!verbose)
    std::printf("\n(`tgsim methods --verbose` lists parameters; "
                "`--method NAME` shows one method)\n");
  return 0;
}

// ---------------------------------------------------------------------------
// tgsim fit / generate
// ---------------------------------------------------------------------------

/// Builds the registry generator named by --method with the layered
/// parameters; prints the schema on a construction error.
Result<std::unique_ptr<baselines::TemporalGraphGenerator>> BuildCliGenerator(
    const std::string& method, const config::ParamMap& params) {
  auto generator = eval::MakeGenerator(method, params);
  if (!generator.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 generator.status().ToString().c_str());
    const eval::MethodSpec* spec = eval::FindMethod(method);
    if (spec != nullptr && !spec->schema.empty())
      std::fprintf(stderr, "parameters of %s:\n%s", method.c_str(),
                   spec->schema.Describe().c_str());
  }
  return generator;
}

int RunFit(const ParsedArgs& args) {
  const std::string* method = FindFlag(args, "--method");
  const std::string* output = FindFlag(args, "--output");
  if (method == nullptr || output == nullptr) {
    std::fprintf(stderr, "%s", kFitUsage);
    return 2;
  }
  Result<int64_t> seed = ParseIntFlag(args, "--seed", 7);
  if (!seed.ok()) {
    std::fprintf(stderr, "error: %s\n", seed.status().ToString().c_str());
    return 1;
  }
  Result<config::ParamMap> params = BuildParams(args);
  if (!params.ok()) {
    std::fprintf(stderr, "error: %s\n", params.status().ToString().c_str());
    return 1;
  }
  auto generator = BuildCliGenerator(*method, params.value());
  if (!generator.ok()) return 1;

  Result<graphs::TemporalGraph> observed =
      LoadDataset(args, static_cast<uint64_t>(seed.value()));
  if (!observed.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 observed.status().ToString().c_str());
    return 1;
  }
  PrintGraphShape("observed", observed.value());

  eval::SeedStreams streams =
      eval::MakeSeedStreams(static_cast<uint64_t>(seed.value()));
  Stopwatch fit_watch;
  generator.value()->Fit(observed.value(), streams.fit);
  double fit_s = fit_watch.ElapsedSeconds();

  eval::UpdateLineage lineage;
  lineage.base_fit_seed = static_cast<uint64_t>(seed.value());
  Status save = eval::SaveArtifact(*generator.value(), *method,
                                   params.value(), *output, lineage);
  if (!save.ok()) {
    std::fprintf(stderr, "error: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("fit %.2fs\n", fit_s);
  std::printf("wrote model artifact %s (method %s)\n", output->c_str(),
              method->c_str());
  return 0;
}

int RunGenerate(const ParsedArgs& args) {
  const std::string* method = FindFlag(args, "--method");
  const std::string* model = FindFlag(args, "--model");
  const std::string* output = FindFlag(args, "--output");
  if (output == nullptr || (method == nullptr) == (model == nullptr)) {
    std::fprintf(stderr, "%s", kGenerateUsage);
    return 2;
  }
  Result<int64_t> seed = ParseIntFlag(args, "--seed", 7);
  if (!seed.ok()) {
    std::fprintf(stderr, "error: %s\n", seed.status().ToString().c_str());
    return 1;
  }
  eval::SeedStreams streams =
      eval::MakeSeedStreams(static_cast<uint64_t>(seed.value()));

  std::unique_ptr<baselines::TemporalGraphGenerator> generator;
  double prepare_s = 0.0;
  const char* prepare_label = "fit";
  if (model != nullptr) {
    // The artifact is self-describing: dataset and construction flags
    // would be silently ignored, so reject them instead.
    for (const char* flag :
         {"--input", "--synthetic", "--scale", "--preset", "--param",
          "--config"}) {
      if (FindFlag(args, flag) != nullptr) {
        std::fprintf(stderr,
                     "error: %s does not combine with --model (the "
                     "artifact embeds the method, parameters and shape)\n",
                     flag);
        return 1;
      }
    }
    prepare_label = "load";
    Stopwatch load_watch;
    Result<eval::LoadedArtifact> loaded = eval::LoadArtifact(*model);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    prepare_s = load_watch.ElapsedSeconds();
    std::printf("loaded %s (method %s%s%s)\n", model->c_str(),
                loaded.value().method.c_str(),
                loaded.value().params.empty() ? "" : ", ",
                loaded.value().params.ToString().c_str());
    generator = std::move(loaded).value().generator;
  } else {
    Result<config::ParamMap> params = BuildParams(args);
    if (!params.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   params.status().ToString().c_str());
      return 1;
    }
    auto built = BuildCliGenerator(*method, params.value());
    if (!built.ok()) return 1;
    generator = std::move(built).value();

    Result<graphs::TemporalGraph> observed =
        LoadDataset(args, static_cast<uint64_t>(seed.value()));
    if (!observed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   observed.status().ToString().c_str());
      return 1;
    }
    PrintGraphShape("observed", observed.value());
    Stopwatch fit_watch;
    generator->Fit(observed.value(), streams.fit);
    prepare_s = fit_watch.ElapsedSeconds();
  }

  Stopwatch gen_watch;
  graphs::TemporalGraph generated = generator->Generate(streams.generate);
  double gen_s = gen_watch.ElapsedSeconds();
  PrintGraphShape("generated", generated);
  std::printf("%s %.2fs, generate %.2fs\n", prepare_label, prepare_s, gen_s);

  Status save = datasets::SaveEdgeList(generated, *output);
  if (!save.ok()) {
    std::fprintf(stderr, "error: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", output->c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// tgsim update
// ---------------------------------------------------------------------------

int RunUpdate(const ParsedArgs& args) {
  const std::string* model = FindFlag(args, "--model");
  const std::string* input = FindFlag(args, "--input");
  const std::string* output = FindFlag(args, "--output");
  if (model == nullptr || input == nullptr || output == nullptr) {
    std::fprintf(stderr, "%s", kUpdateUsage);
    return 2;
  }
  Result<int64_t> seed = ParseIntFlag(args, "--seed", 7);
  if (!seed.ok() || seed.value() < 0) {
    std::fprintf(stderr, "error: --seed must be a non-negative integer\n");
    return 1;
  }

  Result<eval::LoadedArtifact> loaded = eval::LoadArtifact(*model);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s (method %s, %lld prior updates)\n", model->c_str(),
              loaded.value().method.c_str(),
              static_cast<long long>(loaded.value().lineage.update_count));

  Result<graphs::TemporalGraph> delta = datasets::LoadEdgeList(*input);
  if (!delta.ok()) {
    std::fprintf(stderr, "error: %s\n", delta.status().ToString().c_str());
    return 1;
  }
  PrintGraphShape("delta", delta.value());

  // The fit stream backs the warm start, so a serve-side update with the
  // same artifact, delta and seed lands on the identical model state.
  Stopwatch update_watch;
  Rng rng = eval::MakeSeedStreams(static_cast<uint64_t>(seed.value())).fit;
  Status updated = loaded.value().generator->Update(delta.value(), rng);
  if (!updated.ok()) {
    std::fprintf(stderr, "error: %s\n", updated.ToString().c_str());
    return 1;
  }
  double update_s = update_watch.ElapsedSeconds();

  eval::UpdateLineage lineage = loaded.value().lineage;
  lineage.update_count += 1;
  lineage.update_epochs += baselines::kUpdateWarmSnapshotLimit;
  Status save =
      eval::SaveArtifact(*loaded.value().generator, loaded.value().method,
                         loaded.value().params, *output, lineage);
  if (!save.ok()) {
    std::fprintf(stderr, "error: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("update %.2fs\n", update_s);
  std::printf("wrote model artifact %s (method %s, update #%lld)\n",
              output->c_str(), loaded.value().method.c_str(),
              static_cast<long long>(lineage.update_count));
  return 0;
}

// ---------------------------------------------------------------------------
// tgsim eval
// ---------------------------------------------------------------------------

int RunEval(const ParsedArgs& args) {
  std::vector<std::string> methods;
  if (const std::string* list = FindFlag(args, "--methods");
      list != nullptr && *list != "all")
    methods = SplitCommas(*list);
  else
    methods = eval::AllMethodNames();
  const std::string* input = FindFlag(args, "--input");
  std::vector<std::string> dataset_names;
  if (const std::string* list = FindFlag(args, "--datasets"))
    dataset_names = SplitCommas(*list);
  if (input != nullptr && !dataset_names.empty()) {
    std::fprintf(stderr,
                 "error: pick one of --input PATH or --datasets LIST\n");
    return 1;
  }
  if (input == nullptr && dataset_names.empty()) dataset_names = {"DBLP"};
  if (methods.empty()) {
    std::fprintf(stderr, "%s", kEvalUsage);
    return 2;
  }

  Result<int64_t> seed = ParseIntFlag(args, "--seed", 7);
  Result<int64_t> stride = ParseIntFlag(args, "--stride", 1);
  Result<int64_t> motif_delta = ParseIntFlag(args, "--motif-delta", 4);
  Result<int64_t> max_triples =
      ParseIntFlag(args, "--max-triples", 4000000);
  Result<double> scale = ParseDoubleFlag(args, "--scale", 0.05);
  Result<config::ParamMap> params = BuildParams(args);
  for (const Status& s :
       {seed.ok() ? Status::Ok() : seed.status(),
        stride.ok() ? Status::Ok() : stride.status(),
        motif_delta.ok() ? Status::Ok() : motif_delta.status(),
        max_triples.ok() ? Status::Ok() : max_triples.status(),
        scale.ok() ? Status::Ok() : scale.status(),
        params.ok() ? Status::Ok() : params.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  if (stride.value() < 1 || stride.value() > std::numeric_limits<int>::max()) {
    std::fprintf(stderr, "error: --stride must be in [1, 2^31)\n");
    return 1;
  }
  if (motif_delta.value() < 0 ||
      motif_delta.value() > std::numeric_limits<int>::max()) {
    std::fprintf(stderr, "error: --motif-delta must be in [0, 2^31)\n");
    return 1;
  }
  if (max_triples.value() < 0) {
    std::fprintf(stderr, "error: --max-triples must be non-negative\n");
    return 1;
  }

  // One graph per dataset (a --input edge list, or a mimic per --datasets
  // name); all (method x dataset) cells run as one RunCells batch on the
  // global thread pool.
  std::vector<graphs::TemporalGraph> observed;
  if (input != nullptr) {
    Result<graphs::TemporalGraph> loaded = datasets::LoadEdgeList(*input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset_names = {*input};
    observed.push_back(std::move(loaded).value());
  } else {
    observed.reserve(dataset_names.size());
    for (const std::string& name : dataset_names) {
      if (datasets::FindDataset(name) == nullptr) {
        std::fprintf(stderr, "error: unknown dataset '%s'\n", name.c_str());
        return 1;
      }
      observed.push_back(datasets::MakeMimicByName(
          name, scale.value(), static_cast<uint64_t>(seed.value())));
    }
  }

  // Validate method names first so a typo gets the registry's
  // nearest-name suggestion instead of a misleading parameter error.
  for (const std::string& method : methods) {
    if (eval::FindMethod(method) == nullptr) {
      std::fprintf(stderr, "error: %s\n",
                   eval::MakeGenerator(method).status().ToString().c_str());
      return 1;
    }
  }

  // In a multi-method matrix a --param key targets the methods whose
  // schema declares it (DYMOND/E-R/B-A take none, so passing the full map
  // to every cell would fail the whole batch); a key nobody declares is
  // still an error.
  const config::ParamMap& user_params = params.value();
  for (const std::string& key : user_params.Keys()) {
    if (key == "preset") continue;
    bool declared = false;
    for (const std::string& method : methods) {
      const eval::MethodSpec* spec = eval::FindMethod(method);
      if (spec != nullptr && spec->schema.Find(key) != nullptr) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      std::fprintf(stderr,
                   "error: parameter '%s' is not declared by any selected "
                   "method\n",
                   key.c_str());
      return 1;
    }
  }

  std::vector<eval::RunCell> cells;
  for (size_t d = 0; d < dataset_names.size(); ++d) {
    for (const std::string& method : methods) {
      const eval::MethodSpec* spec = eval::FindMethod(method);
      config::ParamMap cell_params;
      for (const std::string& key : user_params.Keys()) {
        if (key == "preset" ||
            (spec != nullptr && spec->schema.Find(key) != nullptr))
          cell_params.Override(key, *user_params.FindRaw(key));
      }
      eval::RunCell cell;
      cell.method = method;
      cell.observed = &observed[d];
      cell.options.method_params = std::move(cell_params);
      cell.options.metric_stride = static_cast<int>(stride.value());
      cell.options.compute_graph_scores = true;
      cell.options.compute_motif_mmd = HasSwitch(args, "--motif-mmd");
      cell.options.motif_delta = static_cast<int>(motif_delta.value());
      cell.options.motif_max_triples = max_triples.value();
      if (HasSwitch(args, "--paper-scale")) {
        const datasets::DatasetSpec* spec =
            datasets::FindDataset(dataset_names[d]);
        if (spec == nullptr) {
          std::fprintf(stderr,
                       "error: --paper-scale needs a Table II dataset name, "
                       "not an --input file\n");
          return 1;
        }
        cell.options.paper_scale = *spec;
      }
      cells.push_back(std::move(cell));
    }
  }
  Result<std::vector<eval::RunResult>> results =
      eval::RunCells(cells, static_cast<uint64_t>(seed.value()));
  if (!results.ok()) {
    std::fprintf(stderr, "error: %s\n", results.status().ToString().c_str());
    return 1;
  }

  const auto& all_metrics = metrics::AllGraphMetrics();
  for (size_t d = 0; d < dataset_names.size(); ++d) {
    const eval::RunResult* row0 = &results.value()[d * methods.size()];
    std::printf("\n[%s]  n=%d m=%lld T=%d\n", dataset_names[d].c_str(),
                observed[d].num_nodes(),
                static_cast<long long>(observed[d].num_edges()),
                observed[d].num_timestamps());
    std::vector<std::string> header = {"Metric"};
    header.insert(header.end(), methods.begin(), methods.end());
    eval::TablePrinter table(header);
    for (size_t mi = 0; mi < all_metrics.size(); ++mi) {
      std::vector<std::string> row = {metrics::MetricName(all_metrics[mi])};
      for (size_t m = 0; m < methods.size(); ++m) {
        const eval::RunResult& r = row0[m];
        row.push_back(eval::FormatCell(r.oom ? 0.0 : r.scores[mi].med,
                                       r.oom));
      }
      table.AddRow(row);
    }
    if (HasSwitch(args, "--motif-mmd")) {
      std::vector<std::string> row = {"motif MMD"};
      for (size_t m = 0; m < methods.size(); ++m)
        row.push_back(
            eval::FormatCell(row0[m].oom ? 0.0 : row0[m].motif_mmd,
                             row0[m].oom));
      table.AddRow(row);
    }
    std::vector<std::string> fit_row = {"fit+gen (s)"};
    for (size_t m = 0; m < methods.size(); ++m) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f",
                    row0[m].fit_seconds + row0[m].generate_seconds);
      fit_row.push_back(row0[m].oom ? "OOM" : buf);
    }
    table.AddRow(fit_row);
    table.Print();
  }
  std::printf("\nf_med per Table III metric; smaller is better. "
              "OOM = paper-scale memory model exceeds the 32 GB budget.\n");
  return 0;
}

// ---------------------------------------------------------------------------
// tgsim stats
// ---------------------------------------------------------------------------

int RunStats(const ParsedArgs& args) {
  Result<int64_t> seed = ParseIntFlag(args, "--seed", 7);
  if (!seed.ok()) {
    std::fprintf(stderr, "error: %s\n", seed.status().ToString().c_str());
    return 1;
  }
  Result<graphs::TemporalGraph> g =
      LoadDataset(args, static_cast<uint64_t>(seed.value()));
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  PrintGraphShape("dataset", g.value());
  graphs::StaticGraph accumulated =
      g.value().SnapshotUpTo(g.value().num_timestamps() - 1);
  metrics::GraphStats stats = metrics::ComputeAllStats(accumulated);
  std::printf("\nTable III statistics of the accumulated graph:\n");
  for (metrics::GraphMetric m : metrics::AllGraphMetrics())
    std::printf("  %-16s %.6g\n", metrics::MetricName(m).c_str(),
                stats.Get(m));
  return 0;
}

// ---------------------------------------------------------------------------
// tgsim serve
// ---------------------------------------------------------------------------

/// Client mode: one request to a running daemon over its socket.
int RunServeClient(const ParsedArgs& args, const std::string& socket) {
  const std::string* call = FindFlag(args, "--call");
  const std::string op_name =
      HasSwitch(args, "--status") ? "stats" : (call ? *call : "");

  serve::Request request;
  bool known_op = false;
  for (serve::RequestOp op :
       {serve::RequestOp::kGenerate, serve::RequestOp::kStats,
        serve::RequestOp::kList, serve::RequestOp::kShutdown,
        serve::RequestOp::kUpdate}) {
    if (serve::RequestOpName(op) == op_name) {
      request.op = op;
      known_op = true;
      break;
    }
  }
  if (!known_op) {
    std::fprintf(stderr,
                 "error: --call takes generate, update, stats, list or "
                 "shutdown (got '%s')\n",
                 op_name.c_str());
    return 1;
  }
  if (request.op == serve::RequestOp::kGenerate ||
      request.op == serve::RequestOp::kUpdate) {
    const std::string* name = FindFlag(args, "--name");
    if (name == nullptr || name->empty()) {
      std::fprintf(stderr,
                   "error: --call %s needs --name MODEL (a name the "
                   "daemon was started with)\n",
                   op_name.c_str());
      return 1;
    }
    request.model = *name;
    Result<int64_t> seed = ParseIntFlag(args, "--seed", 7);
    if (!seed.ok() || seed.value() < 0) {
      std::fprintf(stderr, "error: --seed must be a non-negative integer\n");
      return 1;
    }
    request.seed = static_cast<uint64_t>(seed.value());
  }
  if (request.op == serve::RequestOp::kUpdate) {
    const std::string* input = FindFlag(args, "--input");
    if (input == nullptr || input->empty()) {
      std::fprintf(stderr,
                   "error: --call update needs --input DELTA (an edge-list "
                   "path readable by the daemon)\n");
      return 1;
    }
    request.input = *input;
  }

  Result<serve::Json> reply = serve::Call(socket, request);
  if (!reply.ok()) {
    std::fprintf(stderr, "error: %s\n", reply.status().ToString().c_str());
    return 1;
  }
  const std::string* output = FindFlag(args, "--output");
  if (request.op == serve::RequestOp::kGenerate && output != nullptr) {
    const serve::Json* payload = reply.value().Find("payload");
    if (payload == nullptr || !payload->is_string()) {
      std::fprintf(stderr, "error: generate reply has no payload field\n");
      return 1;
    }
    std::ofstream out(*output, std::ios::binary);
    out << payload->AsString();
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", output->c_str());
      return 1;
    }
    const serve::Json* nodes = reply.value().Find("nodes");
    const serve::Json* edges = reply.value().Find("edges");
    std::printf("wrote %s (%lld nodes, %lld temporal edges, seed %llu)\n",
                output->c_str(),
                static_cast<long long>(nodes ? nodes->AsIntOr(0) : 0),
                static_cast<long long>(edges ? edges->AsIntOr(0) : 0),
                static_cast<unsigned long long>(request.seed));
    return 0;
  }
  std::printf("%s\n", reply.value().Serialize().c_str());
  return 0;
}

int RunServe(const ParsedArgs& args) {
  const std::string* socket = FindFlag(args, "--socket");
  if (socket == nullptr) {
    std::fprintf(stderr, "%s", kServeUsage);
    return 2;
  }
  if (FindFlag(args, "--call") != nullptr || HasSwitch(args, "--status"))
    return RunServeClient(args, *socket);

  std::vector<std::string> model_flags = FlagValues(args, "--model");
  if (model_flags.empty()) {
    std::fprintf(stderr, "%s", kServeUsage);
    return 2;
  }
  serve::ServeOptions options;
  for (const std::string& binding : model_flags) {
    const size_t eq = binding.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == binding.size()) {
      std::fprintf(stderr,
                   "error: --model takes NAME=PATH in daemon mode (got "
                   "'%s')\n",
                   binding.c_str());
      return 1;
    }
    options.models.push_back(
        serve::ModelSpec{binding.substr(0, eq), binding.substr(eq + 1)});
  }
  Result<int64_t> budget_mb = ParseIntFlag(args, "--budget-mb", 1024);
  Result<int64_t> workers = ParseIntFlag(args, "--workers", 4);
  Result<int64_t> max_pending = ParseIntFlag(args, "--max-pending", 64);
  for (const Status& s : {budget_mb.ok() ? Status::Ok() : budget_mb.status(),
                          workers.ok() ? Status::Ok() : workers.status(),
                          max_pending.ok() ? Status::Ok()
                                           : max_pending.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (budget_mb.value() < 1 ||
      budget_mb.value() > (int64_t{1} << 40) / (1024 * 1024)) {
    std::fprintf(stderr, "error: --budget-mb must be in [1, 2^20]\n");
    return 1;
  }
  if (workers.value() < 1 || workers.value() > 1024) {
    std::fprintf(stderr, "error: --workers must be in [1, 1024]\n");
    return 1;
  }
  if (max_pending.value() < 1 || max_pending.value() > 65536) {
    std::fprintf(stderr, "error: --max-pending must be in [1, 65536]\n");
    return 1;
  }
  options.cache_budget_bytes = budget_mb.value() * 1024 * 1024;
  options.workers = static_cast<int>(workers.value());
  options.max_pending = static_cast<size_t>(max_pending.value());

  Result<std::unique_ptr<serve::Server>> server =
      serve::Server::Create(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }
  Status listening = server.value()->Listen(*socket);
  if (!listening.ok()) {
    std::fprintf(stderr, "error: %s\n", listening.ToString().c_str());
    return 1;
  }
  std::printf("tgsim serve: protocol v%d on %s (budget %lld MiB, "
              "%d workers)\n",
              serve::kServeProtocolVersion, socket->c_str(),
              static_cast<long long>(budget_mb.value()),
              server.value()->options().workers);
  for (const serve::ModelStats& stats : server.value()->cache().Snapshot())
    std::printf("  model %-16s method=%s bytes=%lld\n", stats.name.c_str(),
                stats.method.c_str(), static_cast<long long>(stats.bytes));
  std::printf("ready; send {\"op\":\"shutdown\"} (or `tgsim serve --socket "
              "%s --call shutdown`) to stop\n",
              socket->c_str());
  std::fflush(stdout);

  server.value()->Wait();

  // Final counter dump: the drain rejects stats requests, so read the
  // cache directly rather than going through Handle().
  std::printf("draining: %lld requests, %lld protocol errors\n",
              static_cast<long long>(server.value()->total_requests()),
              static_cast<long long>(server.value()->protocol_errors()));
  for (const serve::ModelStats& stats : server.value()->cache().Snapshot())
    std::printf("  model %-16s requests=%lld generates=%lld loads=%lld "
                "evictions=%lld\n",
                stats.name.c_str(),
                static_cast<long long>(stats.requests),
                static_cast<long long>(stats.generates),
                static_cast<long long>(stats.loads),
                static_cast<long long>(stats.evictions));
  server.value()->Stop();
  std::printf("stopped\n");
  return 0;
}

int RunConvert(const ParsedArgs& args) {
  const std::string* input = FindFlag(args, "--input");
  const std::string* output = FindFlag(args, "--output");
  const std::string* to = FindFlag(args, "--to");
  if (input == nullptr || output == nullptr || to == nullptr ||
      (*to != "text" && *to != "binary")) {
    std::fprintf(stderr, "%s", kConvertUsage);
    return 2;
  }
  Result<graphs::TemporalGraph> graph = datasets::LoadEdgeList(*input);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  Status saved = *to == "binary"
                     ? datasets::SaveEdgeListBinary(graph.value(), *output)
                     : datasets::SaveEdgeList(graph.value(), *output);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s edge list %s (%d nodes, %d timestamps, %lld "
              "edges)\n",
              to->c_str(), output->c_str(), graph.value().num_nodes(),
              graph.value().num_timestamps(),
              static_cast<long long>(graph.value().edges().size()));
  return 0;
}

}  // namespace

int Run(const std::vector<std::string>& args) {
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    std::printf("%s", kUsage);
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  Result<ParsedArgs> parsed =
      ParseArgs({args.begin() + 1, args.end()});
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 2;
  }
  if (HasSwitch(parsed.value(), "--help")) {
    if (command == "methods") std::printf("%s", kMethodsUsage);
    else if (command == "fit") std::printf("%s", kFitUsage);
    else if (command == "generate") std::printf("%s", kGenerateUsage);
    else if (command == "update") std::printf("%s", kUpdateUsage);
    else if (command == "eval") std::printf("%s", kEvalUsage);
    else if (command == "stats") std::printf("%s", kStatsUsage);
    else if (command == "convert") std::printf("%s", kConvertUsage);
    else if (command == "serve") std::printf("%s", kServeUsage);
    else std::printf("%s", kUsage);
    return 0;
  }
  // Thread control without env plumbing: --threads resizes the global
  // pool before any parallel region runs, winning over TGSIM_NUM_THREADS
  // (SetGlobalThreads replaces whatever the env default would build).
  if (const std::string* threads_raw = FindFlag(parsed.value(), "--threads")) {
    Result<int64_t> threads = ParseIntFlag(parsed.value(), "--threads", 0);
    if (!threads.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   threads.status().ToString().c_str());
      return 2;
    }
    if (threads.value() < 1 || threads.value() > 1024) {
      std::fprintf(stderr, "error: --threads must be in [1, 1024] (got %s)\n",
                   threads_raw->c_str());
      return 2;
    }
    parallel::ThreadPool::SetGlobalThreads(
        static_cast<int>(threads.value()));
  }
  if (command == "methods") return RunMethods(parsed.value());
  if (command == "fit") return RunFit(parsed.value());
  if (command == "generate") return RunGenerate(parsed.value());
  if (command == "update") return RunUpdate(parsed.value());
  if (command == "eval") return RunEval(parsed.value());
  if (command == "stats") return RunStats(parsed.value());
  if (command == "convert") return RunConvert(parsed.value());
  if (command == "serve") return RunServe(parsed.value());
  std::fprintf(stderr, "error: unknown command '%s'\n\n%s", command.c_str(),
               kUsage);
  return 2;
}

}  // namespace tgsim::cli
