// The `tgsim` driver binary: all logic lives in tools/tgsim_cli.{h,cc} so
// the test suite can run subcommands in-process.

#include <string>
#include <vector>

#include "tools/tgsim_cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return tgsim::cli::Run(args);
}
