#ifndef TGSIM_TOOLS_TGSIM_CLI_H_
#define TGSIM_TOOLS_TGSIM_CLI_H_

#include <string>
#include <vector>

namespace tgsim::cli {

/// Entry point of the `tgsim` driver binary, exposed as a library so tests
/// can run subcommands in-process. `args` is argv without the program name
/// (e.g. {"generate", "--method", "TGAE", ...}). Returns the process exit
/// code: 0 on success, 1 on a runtime error (bad dataset, unknown method,
/// bad parameter), 2 on a usage error. Output goes to stdout, diagnostics
/// to stderr.
int Run(const std::vector<std::string>& args);

}  // namespace tgsim::cli

#endif  // TGSIM_TOOLS_TGSIM_CLI_H_
