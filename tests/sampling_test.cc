// Tests for the sampling layer (AliasTable / TreeSampler / WeightedPick):
// distribution agreement with Rng::WeightedChoice via chi-square, edge
// cases (single entry, zero-weight tails, denormal totals — mirroring the
// WeightedChoice drift-guard regression), serialize round trips that draw
// bit-identically, and 1/2/8-thread determinism sweeps over every
// generation path that now runs on the new samplers.

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "config/param_map.h"
#include "datasets/synthetic.h"
#include "eval/registry.h"
#include "graph/ego_sampler.h"
#include "gtest/gtest.h"
#include "parallel/thread_pool.h"
#include "sampling/samplers.h"
#include "serialize/serialization.h"

namespace tgsim {
namespace {

using sampling::AliasTable;
using sampling::TreeSampler;
using sampling::WeightedPick;

/// Pearson chi-square statistic of `counts` against the distribution
/// proportional to `weights` (zero-weight buckets must be empty).
double ChiSquare(const std::vector<int64_t>& counts,
                 const std::vector<double>& weights) {
  double total_w = 0.0;
  int64_t total_c = 0;
  for (double w : weights) total_w += w;
  for (int64_t c : counts) total_c += c;
  double chi2 = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected =
        static_cast<double>(total_c) * weights[i] / total_w;
    if (expected == 0.0) {
      EXPECT_EQ(counts[i], 0) << "zero-weight bucket " << i << " was drawn";
      continue;
    }
    const double d = static_cast<double>(counts[i]) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

// ---------------------------------------------------------------------------
// AliasTable.
// ---------------------------------------------------------------------------

TEST(AliasTableTest, SingleEntryAlwaysWins) {
  std::vector<double> w = {3.5};
  AliasTable table(w);
  ASSERT_EQ(table.size(), 1u);
  Rng rng(1);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(table.Draw(rng), 0u);
}

TEST(AliasTableTest, ChiSquareAgreesWithWeightedChoice) {
  // Same fixed distribution, 60k draws each through the alias table and
  // the linear-scan reference; both must sit inside a generous chi-square
  // bound (df = 5, p = 0.001 critical value ~20.5).
  const std::vector<double> w = {0.1, 2.0, 0.5, 3.3, 1e-3, 4.0};
  const int kDraws = 60000;
  AliasTable table(w);
  std::vector<int64_t> alias_counts(w.size(), 0);
  std::vector<int64_t> choice_counts(w.size(), 0);
  Rng rng_a(123), rng_b(123);
  for (int i = 0; i < kDraws; ++i) {
    ++alias_counts[table.Draw(rng_a)];
    ++choice_counts[rng_b.WeightedChoice(w)];
  }
  EXPECT_LT(ChiSquare(alias_counts, w), 25.0);
  EXPECT_LT(ChiSquare(choice_counts, w), 25.0);
}

TEST(AliasTableTest, ZeroWeightTailsAreNeverDrawn) {
  // Zero slots get probability exactly 0 and alias into positive mass.
  const std::vector<double> w = {0.0, 3.0, 0.0, 1.0, 0.0, 0.0};
  AliasTable table(w);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    size_t pick = table.Draw(rng);
    EXPECT_TRUE(pick == 1 || pick == 3) << "drew zero-weight slot " << pick;
  }
}

TEST(AliasTableTest, DenormalTotalStaysOnPositiveEntry) {
  // Mirror of the WeightedChoice drift-guard regression: a denormal total
  // must still never surface a zero-weight index.
  const std::vector<double> w = {0.0, 1e-312};
  AliasTable table(w);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.Draw(rng), 1u);
}

TEST(AliasTableTest, FromPartsDrawsBitIdenticalToOriginal) {
  const std::vector<double> w = {0.25, 4.0, 0.0, 1.5, 2.25, 0.125, 9.0};
  AliasTable built(w);
  Result<AliasTable> restored =
      AliasTable::FromParts(built.prob(), built.alias());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Rng rng_a(42), rng_b(42);
  for (int i = 0; i < 2000; ++i)
    ASSERT_EQ(built.Draw(rng_a), restored.value().Draw(rng_b)) << "draw " << i;
}

TEST(AliasTableTest, RebuildFromSameWeightsIsDeterministic) {
  // The build is a pure function of the weights — the guarantee that lets
  // pre-alias artifacts rebuild bit-identical samplers.
  const std::vector<double> w = {1.0, 0.5, 0.0, 8.0, 2.5};
  AliasTable a(w), b(w);
  EXPECT_EQ(a.prob(), b.prob());
  EXPECT_EQ(a.alias(), b.alias());
}

TEST(AliasTableTest, FromPartsRejectsCorruptSlots) {
  EXPECT_EQ(AliasTable::FromParts({0.5}, {0, 1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AliasTable::FromParts({1.5}, {0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AliasTable::FromParts({-0.1}, {0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AliasTable::FromParts({0.5, 0.5}, {0, 2}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AliasTable::FromParts({0.5}, {-1}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AliasTableDeathTest, ZeroTotalMassIsAProgrammingError) {
  std::vector<double> w = {0.0, 0.0};
  EXPECT_DEATH({ AliasTable table(w); }, "");
}

// ---------------------------------------------------------------------------
// TreeSampler.
// ---------------------------------------------------------------------------

TEST(TreeSamplerTest, SingleEntryAlwaysWins) {
  std::vector<double> w = {0.75};
  TreeSampler tree(w);
  Rng rng(1);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(tree.Draw(rng), 0u);
}

TEST(TreeSamplerTest, ChiSquareAgreesWithWeightedChoice) {
  const std::vector<double> w = {0.1, 2.0, 0.5, 3.3, 1e-3, 4.0};
  const int kDraws = 60000;
  TreeSampler tree(w);
  std::vector<int64_t> counts(w.size(), 0);
  Rng rng(321);
  for (int i = 0; i < kDraws; ++i) ++counts[tree.Draw(rng)];
  EXPECT_LT(ChiSquare(counts, w), 25.0);
}

TEST(TreeSamplerTest, WithoutReplacementConsumesExactlyThePositiveSupport) {
  // Draw + zero-out until the mass is gone: every positive-weight index
  // must appear exactly once, no zero-weight index ever, and the total
  // must reach exactly 0.0 (child sums are recomputed exactly) — the loop
  // the TGAE generation path runs.
  std::vector<double> w(37, 0.0);
  std::set<size_t> positive;
  Rng init(5);
  for (size_t i = 0; i < w.size(); ++i) {
    if (i % 3 == 0) continue;  // leave zero-weight holes
    w[i] = init.Uniform(0.25, 4.0);
    positive.insert(i);
  }
  TreeSampler tree(w);
  Rng rng(9);
  std::set<size_t> drawn;
  while (tree.total() > 0.0) {
    size_t pick = tree.Draw(rng);
    EXPECT_TRUE(positive.count(pick)) << "drew zero-weight leaf " << pick;
    EXPECT_TRUE(drawn.insert(pick).second) << "repeated leaf " << pick;
    tree.Update(pick, 0.0);
  }
  EXPECT_EQ(tree.total(), 0.0);  // exact, no epsilon
  EXPECT_EQ(drawn, positive);
}

TEST(TreeSamplerTest, UpdateRestoresConsumedMass) {
  std::vector<double> w = {1.0, 2.0, 3.0};
  TreeSampler tree(w);
  tree.Update(1, 0.0);
  tree.Update(2, 0.0);
  Rng rng(11);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(tree.Draw(rng), 0u);
  tree.Update(2, 5.0);
  EXPECT_EQ(tree.weight(2), 5.0);
  EXPECT_EQ(tree.total(), 6.0);
  bool saw2 = false;
  for (int i = 0; i < 256 && !saw2; ++i) saw2 = tree.Draw(rng) == 2;
  EXPECT_TRUE(saw2);
}

TEST(TreeSamplerTest, DenormalTotalStaysOnPositiveEntry) {
  std::vector<double> w = {0.0, 1e-312};
  TreeSampler tree(w);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(tree.Draw(rng), 1u);
}

TEST(TreeSamplerDeathTest, DrawFromConsumedTreeIsAProgrammingError) {
  std::vector<double> w = {1.0};
  TreeSampler tree(w);
  tree.Update(0, 0.0);
  Rng rng(1);
  EXPECT_DEATH({ tree.Draw(rng); }, "");
}

// ---------------------------------------------------------------------------
// WeightedPick (the span twin of Rng::WeightedChoice).
// ---------------------------------------------------------------------------

TEST(WeightedPickTest, MatchesWeightedChoiceOnTheSameStream) {
  // Identical algorithm + identical Rng consumption: same seed, same
  // sequence of picks. TIGGER/TGGAN draws switched from WeightedChoice on
  // a copied row to WeightedPick on the row span, and this is the pin
  // that the switch cannot change a single draw.
  Rng init(77);
  std::vector<double> w(129);
  for (double& x : w) x = init.Uniform();
  Rng rng_a(13), rng_b(13);
  for (int i = 0; i < 4000; ++i)
    ASSERT_EQ(WeightedPick(w, rng_a), rng_b.WeightedChoice(w)) << "pick " << i;
}

TEST(WeightedPickTest, DriftGuardFallsToLastPositiveWeight) {
  // Mirror of the PR 4 WeightedChoice denormal-total regression.
  std::vector<double> w = {0.0, 5e-324, 0.0};
  Rng rng(1);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(WeightedPick(w, rng), 1u);
}

// ---------------------------------------------------------------------------
// Serialization: alias parts round-trip to bit-identical draw streams.
// ---------------------------------------------------------------------------

TEST(SamplingSerializeTest, ArchiveRoundTripDrawsBitIdentically) {
  Rng init(1234);
  std::vector<double> w(501);
  for (double& x : w) x = init.Uniform() < 0.2 ? 0.0 : init.Uniform(0.1, 6.0);
  AliasTable fitted(w);

  std::stringstream stream;
  serialize::ArchiveWriter writer(stream);
  writer.BeginSection("sampler");
  serialize::WriteAliasTable(writer, "starts", fitted);
  ASSERT_TRUE(writer.Finish().ok());

  Result<serialize::ArchiveReader> parsed =
      serialize::ArchiveReader::Parse(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Result<AliasTable> loaded =
      serialize::ReadAliasTable(parsed.value(), "sampler", "starts");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), fitted.size());

  Rng rng_a(5150), rng_b(5150);
  for (int i = 0; i < 5000; ++i)
    ASSERT_EQ(fitted.Draw(rng_a), loaded.value().Draw(rng_b)) << "draw " << i;
}

TEST(SamplingSerializeTest, MissingAliasFieldsAreNotFound) {
  std::stringstream stream;
  serialize::ArchiveWriter writer(stream);
  writer.BeginSection("sampler");
  writer.WriteInt("unrelated", 1);
  ASSERT_TRUE(writer.Finish().ok());
  Result<serialize::ArchiveReader> parsed =
      serialize::ArchiveReader::Parse(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(serialize::ReadAliasTable(parsed.value(), "sampler", "starts")
                .status()
                .code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// InitialNodeSampler: graph-built, data-rebuilt and table-adopting
// constructors draw the same stream.
// ---------------------------------------------------------------------------

TEST(SamplingInitialNodeSamplerTest, AllConstructorsDrawIdentically) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.03, 8);
  graphs::InitialNodeSampler from_graph(&g, /*time_window=*/2);
  graphs::InitialNodeSampler from_data(from_graph.occurrences(),
                                       from_graph.weights());
  Result<AliasTable> parts = AliasTable::FromParts(from_graph.alias().prob(),
                                                   from_graph.alias().alias());
  ASSERT_TRUE(parts.ok());
  graphs::InitialNodeSampler from_table(from_graph.occurrences(),
                                        from_graph.weights(),
                                        std::move(parts).value());
  Rng rng_a(2), rng_b(2), rng_c(2);
  std::vector<graphs::TemporalNodeRef> a = from_graph.Sample(3000, rng_a);
  std::vector<graphs::TemporalNodeRef> b = from_data.Sample(3000, rng_b);
  std::vector<graphs::TemporalNodeRef> c = from_table.Sample(3000, rng_c);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i] == b[i]) << "draw " << i;
    ASSERT_TRUE(a[i] == c[i]) << "draw " << i;
  }
}

// ---------------------------------------------------------------------------
// Determinism sweep: every generation path converted to the new samplers
// stays bit-identical at 1, 2 and 8 threads.
// ---------------------------------------------------------------------------

struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() {
    parallel::ThreadPool::SetGlobalThreads(
        parallel::ThreadPool::DefaultNumThreads());
  }
};

class SamplerPathSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SamplerPathSweepTest, GenerationIsThreadCountInvariant) {
  const std::string method = GetParam();
  graphs::TemporalGraph observed = datasets::MakeMimicByName("DBLP", 0.03, 4);
  auto run = [&] {
    config::ParamMap params;
    params.Override("preset", "fast");
    auto built = eval::MakeGenerator(method, params);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    std::unique_ptr<baselines::TemporalGraphGenerator> gen =
        std::move(built).value();
    Rng rng(31);
    gen->Fit(observed, rng);
    return gen->Generate(rng).edges();
  };
  GlobalThreadsGuard guard;
  std::vector<std::vector<graphs::TemporalEdge>> results;
  for (int threads : {1, 2, 8}) {
    parallel::ThreadPool::SetGlobalThreads(threads);
    results.push_back(run());
  }
  for (size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[0].size(), results[v].size()) << "variant " << v;
    for (size_t i = 0; i < results[0].size(); ++i)
      ASSERT_TRUE(results[0][i] == results[v][i])
          << "variant " << v << " edge " << i;
  }
}

// One method per converted draw path: alias-table starts + row-span picks
// (TIGGER), alias starts + DotSum2 transition (TagGen), row-span soft
// walks (TGGAN), alias activity motifs (DYMOND), alias score-matrix edges
// (NetGAN, shared by all score methods), and tree-sampler support draws
// (TGAE fast = sparse decoder; the dense path shares the same samplers by
// the sparse-vs-dense pin).
INSTANTIATE_TEST_SUITE_P(ConvertedPaths, SamplerPathSweepTest,
                         ::testing::Values("TIGGER", "TagGen", "TGGAN",
                                           "DYMOND", "NetGAN", "TGAE"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace tgsim
