#include "nn/autograd.h"

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "nn/gradcheck.h"

namespace tgsim::nn {
namespace {

Rng MakeRng(uint64_t seed = 123) { return Rng(seed); }

TEST(AutogradTest, BackwardOnConstantIsNoop) {
  Var c = Var::Constant(Tensor::Ones(1, 1));
  Backward(c);  // Must not crash; no gradients required anywhere.
  SUCCEED();
}

TEST(AutogradTest, SimpleChainGradient) {
  // f(x) = sum(3 * x) -> df/dx = 3.
  Var x = Var::Param(Tensor::Full(2, 3, 2.0));
  Var loss = Sum(Scale(x, 3.0));
  Backward(loss);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(x.grad().at(r, c), 3.0);
}

TEST(AutogradTest, GradientsAccumulateAcrossBackwardCalls) {
  Var x = Var::Param(Tensor::Ones(1, 1));
  Var l1 = Sum(Scale(x, 2.0));
  Backward(l1);
  Var l2 = Sum(Scale(x, 5.0));
  Backward(l2);
  EXPECT_DOUBLE_EQ(x.grad().at(0, 0), 7.0);
  x.ZeroGrad();
  EXPECT_DOUBLE_EQ(x.grad().at(0, 0), 0.0);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // loss = sum(x*x + x) -> d/dx = 2x + 1.
  Var x = Var::Param(Tensor::Full(1, 1, 3.0));
  Var loss = Sum(Add(Mul(x, x), x));
  Backward(loss);
  EXPECT_DOUBLE_EQ(x.grad().at(0, 0), 7.0);
}

// ---------------------------------------------------------------------------
// Numerical gradient checks for every op.
// ---------------------------------------------------------------------------

struct OpCase {
  std::string name;
  std::function<Var(const std::vector<Var>&)> build;
  std::vector<std::pair<int, int>> shapes;
  bool positive_inputs = false;
};

class OpGradCheckTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpGradCheckTest, MatchesNumericalGradient) {
  const OpCase& op = GetParam();
  Rng rng = MakeRng();
  std::vector<Var> params;
  for (auto [r, c] : op.shapes) {
    Tensor t = Tensor::Randn(rng, r, c, 0.7);
    if (op.positive_inputs)
      for (int64_t i = 0; i < t.size(); ++i)
        t.data()[i] = std::fabs(t.data()[i]) + 0.5;
    params.push_back(Var::Param(std::move(t)));
  }
  GradCheckResult res =
      CheckGradients(params, [&]() { return op.build(params); });
  EXPECT_TRUE(res.ok) << op.name << ": max_rel_error=" << res.max_rel_error;
}

std::vector<OpCase> AllOpCases() {
  std::vector<OpCase> cases;
  cases.push_back({"matmul",
                   [](const std::vector<Var>& p) {
                     return Sum(MatMul(p[0], p[1]));
                   },
                   {{3, 4}, {4, 2}}});
  cases.push_back({"add",
                   [](const std::vector<Var>& p) {
                     return Sum(Mul(Add(p[0], p[1]), p[0]));
                   },
                   {{3, 3}, {3, 3}}});
  cases.push_back({"add_broadcast",
                   [](const std::vector<Var>& p) {
                     return Sum(Mul(Add(p[0], p[1]), p[0]));
                   },
                   {{4, 3}, {1, 3}}});
  cases.push_back({"sub",
                   [](const std::vector<Var>& p) {
                     return Sum(Mul(Sub(p[0], p[1]), p[1]));
                   },
                   {{2, 5}, {2, 5}}});
  cases.push_back({"mul_col_broadcast",
                   [](const std::vector<Var>& p) {
                     return Sum(MulColBroadcast(p[0], p[1]));
                   },
                   {{4, 3}, {4, 1}}});
  cases.push_back({"scale_addscalar",
                   [](const std::vector<Var>& p) {
                     return Sum(AddScalar(Scale(p[0], -1.7), 0.3));
                   },
                   {{3, 3}}});
  cases.push_back({"sigmoid",
                   [](const std::vector<Var>& p) {
                     return Sum(Sigmoid(p[0]));
                   },
                   {{3, 4}}});
  cases.push_back({"tanh",
                   [](const std::vector<Var>& p) { return Sum(Tanh(p[0])); },
                   {{3, 4}}});
  cases.push_back({"leaky_relu",
                   [](const std::vector<Var>& p) {
                     return Sum(LeakyRelu(p[0]));
                   },
                   {{5, 5}}});
  cases.push_back({"exp",
                   [](const std::vector<Var>& p) { return Sum(Exp(p[0])); },
                   {{3, 3}}});
  cases.push_back({"log",
                   [](const std::vector<Var>& p) { return Sum(Log(p[0])); },
                   {{3, 3}},
                   /*positive_inputs=*/true});
  cases.push_back({"square",
                   [](const std::vector<Var>& p) {
                     return Sum(Square(p[0]));
                   },
                   {{3, 3}}});
  cases.push_back({"softmax_rows",
                   [](const std::vector<Var>& p) {
                     Tensor w(3, 4);
                     for (int i = 0; i < 12; ++i)
                       w.data()[i] = 0.1 * (i + 1);
                     return Sum(Mul(SoftmaxRows(p[0]), Var::Constant(w)));
                   },
                   {{3, 4}}});
  cases.push_back({"log_softmax_rows",
                   [](const std::vector<Var>& p) {
                     Tensor w(3, 4);
                     for (int i = 0; i < 12; ++i)
                       w.data()[i] = 0.05 * (i + 1);
                     return Sum(Mul(LogSoftmaxRows(p[0]), Var::Constant(w)));
                   },
                   {{3, 4}}});
  cases.push_back({"mean",
                   [](const std::vector<Var>& p) { return Mean(p[0]); },
                   {{4, 4}}});
  cases.push_back({"concat_cols",
                   [](const std::vector<Var>& p) {
                     return Sum(Square(ConcatCols({p[0], p[1]})));
                   },
                   {{3, 2}, {3, 4}}});
  cases.push_back({"concat_rows",
                   [](const std::vector<Var>& p) {
                     return Sum(Square(ConcatRows({p[0], p[1]})));
                   },
                   {{2, 3}, {4, 3}}});
  cases.push_back({"gather_rows",
                   [](const std::vector<Var>& p) {
                     return Sum(Square(GatherRows(p[0], {2, 0, 2, 1})));
                   },
                   {{3, 3}}});
  cases.push_back({"slice_cols",
                   [](const std::vector<Var>& p) {
                     return Sum(Square(SliceCols(p[0], 1, 4)));
                   },
                   {{3, 5}}});
  cases.push_back({"gather_cols",
                   [](const std::vector<Var>& p) {
                     // Duplicate index exercises the scatter-add backward.
                     return Sum(Square(GatherCols(p[0], {3, 0, 3, 1})));
                   },
                   {{3, 4}}});
  cases.push_back({"sampled_softmax_cross_entropy",
                   [](const std::vector<Var>& p) {
                     SparseRowTargets t;
                     t.AppendEntry(1, 0.7);
                     t.AppendEntry(3, 0.3);
                     t.FinishRow();
                     t.FinishRow();  // Empty row: zero contribution.
                     t.AppendEntry(0, 0.5);
                     t.AppendEntry(4, 0.25);
                     t.AppendEntry(2, 0.25);
                     t.FinishRow();
                     return SampledSoftmaxCrossEntropy(p[0], t);
                   },
                   {{3, 5}}});
  cases.push_back({"segment_sum",
                   [](const std::vector<Var>& p) {
                     return Sum(Square(SegmentSum(p[0], {0, 1, 0, 2}, 3)));
                   },
                   {{4, 3}}});
  cases.push_back({"segment_softmax",
                   [](const std::vector<Var>& p) {
                     Tensor w(5, 1);
                     for (int i = 0; i < 5; ++i) w.data()[i] = 0.2 * (i + 1);
                     return Sum(Mul(SegmentSoftmax(p[0], {0, 0, 1, 1, 1}, 2),
                                    Var::Constant(w)));
                   },
                   {{5, 1}}});
  cases.push_back({"transpose",
                   [](const std::vector<Var>& p) {
                     return Sum(MatMul(Transpose(p[0]), p[0]));
                   },
                   {{3, 2}}});
  cases.push_back({"kl_to_standard_normal",
                   [](const std::vector<Var>& p) {
                     return KlToStandardNormal(p[0], p[1]);
                   },
                   {{3, 4}, {3, 4}}});
  cases.push_back({"mse",
                   [](const std::vector<Var>& p) {
                     Tensor target(3, 3, 0.5);
                     return MseLoss(p[0], target);
                   },
                   {{3, 3}}});
  cases.push_back({"row_cross_entropy",
                   [](const std::vector<Var>& p) {
                     Tensor target(3, 4);
                     target.at(0, 1) = 1.0;
                     target.at(1, 0) = 0.5;
                     target.at(1, 3) = 0.5;
                     target.at(2, 2) = 1.0;
                     return RowCrossEntropyWithLogits(p[0], target);
                   },
                   {{3, 4}}});
  cases.push_back({"bce_with_logits",
                   [](const std::vector<Var>& p) {
                     Tensor target(3, 3);
                     target.at(0, 1) = 1.0;
                     target.at(2, 2) = 1.0;
                     return BinaryCrossEntropyWithLogits(p[0], target, 2.5);
                   },
                   {{3, 3}}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradCheckTest, ::testing::ValuesIn(AllOpCases()),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Forward-value sanity checks.
// ---------------------------------------------------------------------------

TEST(OpValueTest, SoftmaxRowsSumsToOne) {
  Rng rng = MakeRng();
  Tensor x = Tensor::Randn(rng, 5, 7, 3.0);
  Tensor s = x.SoftmaxRows();
  for (int r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 7; ++c) {
      EXPECT_GE(s.at(r, c), 0.0);
      sum += s.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(OpValueTest, SegmentSoftmaxSumsToOnePerSegment) {
  Rng rng = MakeRng();
  Var x = Var::Constant(Tensor::Randn(rng, 6, 1, 2.0));
  std::vector<int> seg = {0, 0, 1, 1, 1, 2};
  Var y = SegmentSoftmax(x, seg, 3);
  std::vector<double> sums(3, 0.0);
  for (int i = 0; i < 6; ++i) sums[seg[i]] += y.value().at(i, 0);
  for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(OpValueTest, SegmentSoftmaxIsStableForLargeScores) {
  Tensor big(3, 1);
  big.at(0, 0) = 1e4;
  big.at(1, 0) = 1e4 + 1.0;
  big.at(2, 0) = -1e4;
  Var y = SegmentSoftmax(Var::Constant(big), {0, 0, 0}, 1);
  EXPECT_TRUE(std::isfinite(y.value().at(0, 0)));
  EXPECT_GT(y.value().at(1, 0), y.value().at(0, 0));
}

TEST(OpValueTest, SliceColsExtractsColumnRange) {
  Tensor x(2, 4, std::vector<Scalar>{1, 2, 3, 4, 5, 6, 7, 8});
  Var s = SliceCols(Var::Constant(x), 1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_DOUBLE_EQ(s.value().at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.value().at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(s.value().at(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(s.value().at(1, 1), 7.0);
  // Full-width slice is the identity on values.
  Var full = SliceCols(Var::Constant(x), 0, 4);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(full.value().at(r, c), x.at(r, c));
}

TEST(OpDeathTest, SliceColsRejectsBadRange) {
  Tensor x(2, 4);
  EXPECT_DEATH(SliceCols(Var::Constant(x), 3, 2), "CHECK failed");
  EXPECT_DEATH(SliceCols(Var::Constant(x), 0, 5), "CHECK failed");
}

TEST(OpValueTest, GatherColsPicksColumns) {
  Tensor x(2, 4, std::vector<Scalar>{1, 2, 3, 4, 5, 6, 7, 8});
  Var g = GatherCols(Var::Constant(x), {2, 0, 2});
  EXPECT_EQ(g.rows(), 2);
  EXPECT_EQ(g.cols(), 3);
  EXPECT_DOUBLE_EQ(g.value().at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.value().at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.value().at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(g.value().at(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(g.value().at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(g.value().at(1, 2), 7.0);
}

TEST(OpDeathTest, GatherColsRejectsOutOfRangeIndex) {
  Tensor x(2, 4);
  EXPECT_DEATH(GatherCols(Var::Constant(x), {0, 4}), "CHECK failed");
  EXPECT_DEATH(GatherCols(Var::Constant(x), {-1}), "CHECK failed");
}

TEST(OpValueTest, SampledSoftmaxOverAllColumnsMatchesRowCrossEntropy) {
  // With the candidate set equal to all columns, the sampled-softmax loss
  // is exactly the dense row cross entropy on the scattered targets.
  Rng rng = MakeRng();
  Tensor logits = Tensor::Randn(rng, 3, 4, 1.3);
  SparseRowTargets sparse;
  sparse.AppendEntry(1, 1.0);
  sparse.FinishRow();
  sparse.AppendEntry(0, 0.5);
  sparse.AppendEntry(3, 0.5);
  sparse.FinishRow();
  sparse.FinishRow();  // Empty row.
  Tensor dense(3, 4);
  dense.at(0, 1) = 1.0;
  dense.at(1, 0) = 0.5;
  dense.at(1, 3) = 0.5;
  Var a = SampledSoftmaxCrossEntropy(Var::Constant(logits), sparse);
  Var b = RowCrossEntropyWithLogits(Var::Constant(logits), dense);
  EXPECT_NEAR(a.item(), b.item(), 1e-12);
}

TEST(OpDeathTest, SampledSoftmaxRejectsShapeMismatch) {
  Tensor logits(2, 3);
  SparseRowTargets t;
  t.AppendEntry(0, 1.0);
  t.FinishRow();  // Only one row for two logit rows.
  EXPECT_DEATH(SampledSoftmaxCrossEntropy(Var::Constant(logits), t),
               "CHECK failed");
  SparseRowTargets bad_col;
  bad_col.AppendEntry(3, 1.0);  // Column out of range.
  bad_col.FinishRow();
  bad_col.FinishRow();
  EXPECT_DEATH(SampledSoftmaxCrossEntropy(Var::Constant(logits), bad_col),
               "CHECK failed");
}

TEST(OpValueTest, MatMulMatchesManual) {
  Tensor a(2, 3, std::vector<Scalar>{1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, std::vector<Scalar>{7, 8, 9, 10, 11, 12});
  Tensor c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(OpValueTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng = MakeRng();
  Tensor x = Tensor::Randn(rng, 4, 6, 2.0);
  Var ls = LogSoftmaxRows(Var::Constant(x));
  Tensor s = x.SoftmaxRows();
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 6; ++c)
      EXPECT_NEAR(ls.value().at(r, c), std::log(s.at(r, c)), 1e-9);
}

TEST(OpValueTest, BceMatchesNaiveFormula) {
  Tensor logits(1, 2, std::vector<Scalar>{0.3, -1.2});
  Tensor targets(1, 2, std::vector<Scalar>{1.0, 0.0});
  Var loss =
      BinaryCrossEntropyWithLogits(Var::Constant(logits), targets, 1.0);
  auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  double expected =
      (-std::log(sigmoid(0.3)) - std::log(1.0 - sigmoid(-1.2))) / 2.0;
  EXPECT_NEAR(loss.item(), expected, 1e-9);
}

}  // namespace
}  // namespace tgsim::nn
