// Bit-identity harness for the dispatched kernel layer (nn/simd.h): every
// kernel in the active backend's table must produce EXACTLY the bits of
// the scalar reference on every input shape and value class the callers
// can produce — lengths 1..257 (every lane-remainder case), denormals,
// signed zeros, extreme magnitudes, and the ExpD clamp edges. Under a
// TGSIM_FORCE_SCALAR build the active table IS the scalar table and the
// sweep degenerates to a self-check; on AVX2/NEON hosts it pins the SIMD
// variants lane for lane.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "nn/autograd.h"
#include "nn/kernels.h"
#include "nn/optim.h"
#include "nn/simd.h"
#include "nn/tensor.h"

namespace tgsim::nn::kernels {
namespace {

constexpr int kMaxN = 257;

/// Special values cycled into every buffer: signed zeros, denormals,
/// extremes (capped at 1e150 so dot-style products cannot manufacture
/// inf - inf = NaN), and exp-range edges.
constexpr Scalar kSpecials[] = {
    0.0,     -0.0,    5e-324,  -5e-324, 2.2250738585072014e-308,
    1e150,   -1e150,  -745.0,  -710.0,  709.0,
    0.5,     -2.25,   1e-30,   -1e-30,  3.0,
};

std::vector<Scalar> MakeBuffer(int n, uint64_t seed, bool nonnegative = false) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<Scalar> uni(-3.0, 3.0);
  std::vector<Scalar> out(static_cast<size_t>(n));
  constexpr int kNumSpecials =
      static_cast<int>(sizeof(kSpecials) / sizeof(kSpecials[0]));
  for (int i = 0; i < n; ++i) {
    // Every third slot gets a special value, the rest are random.
    out[static_cast<size_t>(i)] =
        (i % 3 == 0) ? kSpecials[(i / 3 + static_cast<int>(seed)) %
                                 kNumSpecials]
                     : uni(rng);
    if (nonnegative) out[static_cast<size_t>(i)] = std::fabs(out[static_cast<size_t>(i)]);
  }
  return out;
}

::testing::AssertionResult BitsEqual(const std::vector<Scalar>& a,
                                     const std::vector<Scalar>& b,
                                     const char* what, int n) {
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    if (ba != bb) {
      return ::testing::AssertionFailure()
             << what << " n=" << n << " mismatch at [" << i << "]: scalar "
             << a[i] << " (0x" << std::hex << ba << ") vs dispatched "
             << b[i] << " (0x" << bb << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult ScalarBitsEqual(Scalar a, Scalar b,
                                           const char* what, int n) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba != bb) {
    return ::testing::AssertionFailure()
           << what << " n=" << n << ": scalar " << a << " (0x" << std::hex
           << ba << ") vs dispatched " << b << " (0x" << bb << ")";
  }
  return ::testing::AssertionSuccess();
}

TEST(KernelDispatchTest, BackendIsResolvedAndCompiledIn) {
  const Backend b = ActiveBackend();
  EXPECT_TRUE(BackendCompiledIn(b));
  EXPECT_TRUE(BackendCompiledIn(Backend::kScalar));
  EXPECT_STRNE(BackendName(b), "unknown");
  // The active table must be exactly the table OpsFor hands out.
  EXPECT_EQ(&Ops(), OpsFor(b));
}

TEST(KernelBitIdentityTest, ReductionsAndExpKernels) {
  const KernelOps* s = GetScalarOps();
  const KernelOps& d = Ops();
  for (int n = 1; n <= kMaxN; ++n) {
    const std::vector<Scalar> x = MakeBuffer(n, static_cast<uint64_t>(n));

    EXPECT_TRUE(ScalarBitsEqual(s->row_max(x.data(), n),
                                d.row_max(x.data(), n), "RowMax", n));

    const Scalar m = s->row_max(x.data(), n);
    std::vector<Scalar> es(static_cast<size_t>(n)),
        ed(static_cast<size_t>(n));
    const Scalar zs = s->exp_row_sum(x.data(), m, es.data(), n);
    const Scalar zd = d.exp_row_sum(x.data(), m, ed.data(), n);
    EXPECT_TRUE(ScalarBitsEqual(zs, zd, "ExpRowSum(z)", n));
    EXPECT_TRUE(BitsEqual(es, ed, "ExpRowSum(dst)", n));

    s->exp_row(x.data(), 0.25, es.data(), n);
    d.exp_row(x.data(), 0.25, ed.data(), n);
    EXPECT_TRUE(BitsEqual(es, ed, "ExpRow", n));

    std::vector<Scalar> qs = x, qd = x;
    s->div_row(qs.data(), 1.75, n);
    d.div_row(qd.data(), 1.75, n);
    EXPECT_TRUE(BitsEqual(qs, qd, "DivRow", n));

    const std::vector<Scalar> y = MakeBuffer(n, static_cast<uint64_t>(n) + 7);
    EXPECT_TRUE(ScalarBitsEqual(s->dot(x.data(), y.data(), n),
                                d.dot(x.data(), y.data(), n), "Dot", n));
    const std::vector<Scalar> y2 =
        MakeBuffer(n, static_cast<uint64_t>(n) + 13);
    EXPECT_TRUE(ScalarBitsEqual(
        s->dot_sum2(x.data(), y.data(), y2.data(), n),
        d.dot_sum2(x.data(), y.data(), y2.data(), n), "DotSum2", n));
  }
}

TEST(KernelBitIdentityTest, ElementwiseKernels) {
  const KernelOps* s = GetScalarOps();
  const KernelOps& d = Ops();
  for (int n = 1; n <= kMaxN; ++n) {
    const std::vector<Scalar> x = MakeBuffer(n, static_cast<uint64_t>(n));
    const std::vector<Scalar> y =
        MakeBuffer(n, static_cast<uint64_t>(n) + 31);
    const std::vector<Scalar> base =
        MakeBuffer(n, static_cast<uint64_t>(n) + 57);
    std::vector<Scalar> as, ad;

    as = base, ad = base;
    s->axpy_row(1.5, x.data(), as.data(), n);
    d.axpy_row(1.5, x.data(), ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "AxpyRow", n));

    const std::vector<Scalar> b2 = MakeBuffer(n, 1001), b3 = MakeBuffer(n, 1002);
    as = base, ad = base;
    s->axpy4_row(1.5, x.data(), -0.75, y.data(), 2.0, b2.data(), 0.125,
                 b3.data(), as.data(), n);
    d.axpy4_row(1.5, x.data(), -0.75, y.data(), 2.0, b2.data(), 0.125,
                b3.data(), ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "Axpy4Row", n));

    as = base, ad = base;
    s->add_row(as.data(), x.data(), n);
    d.add_row(ad.data(), x.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "AddRow", n));

    as = base, ad = base;
    s->scale_row(as.data(), -1.25, n);
    d.scale_row(ad.data(), -1.25, n);
    EXPECT_TRUE(BitsEqual(as, ad, "ScaleRow", n));

    as = base, ad = base;
    s->mul_row(as.data(), x.data(), n);
    d.mul_row(ad.data(), x.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "MulRow", n));

    as = base, ad = base;
    s->mul_add_row(as.data(), x.data(), y.data(), n);
    d.mul_add_row(ad.data(), x.data(), y.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "MulAddRow", n));

    as = base, ad = base;
    s->scale_add_row(as.data(), 0.9, x.data(), 1.0, n);
    d.scale_add_row(ad.data(), 0.9, x.data(), 1.0, n);
    EXPECT_TRUE(BitsEqual(as, ad, "ScaleAddRow", n));

    as.assign(static_cast<size_t>(n), 0.0);
    ad.assign(static_cast<size_t>(n), 0.0);
    s->shift_row(x.data(), 0.375, as.data(), n);
    d.shift_row(x.data(), 0.375, ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "ShiftRow", n));
  }
}

TEST(KernelBitIdentityTest, ActivationAndBackwardKernels) {
  const KernelOps* s = GetScalarOps();
  const KernelOps& d = Ops();
  for (int n = 1; n <= kMaxN; ++n) {
    const std::vector<Scalar> x = MakeBuffer(n, static_cast<uint64_t>(n));
    const std::vector<Scalar> go =
        MakeBuffer(n, static_cast<uint64_t>(n) + 11);
    const std::vector<Scalar> base =
        MakeBuffer(n, static_cast<uint64_t>(n) + 23);
    std::vector<Scalar> as(static_cast<size_t>(n)),
        ad(static_cast<size_t>(n));

    s->sigmoid_row(x.data(), as.data(), n);
    d.sigmoid_row(x.data(), ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "SigmoidRow", n));

    const std::vector<Scalar> y = as;  // forward output for the backward
    as = base, ad = base;
    s->sigmoid_bwd_row(go.data(), y.data(), as.data(), n);
    d.sigmoid_bwd_row(go.data(), y.data(), ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "SigmoidBwdRow", n));

    s->relu_row(x.data(), as.data(), n);
    d.relu_row(x.data(), ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "ReluRow", n));

    as = base, ad = base;
    s->relu_bwd_row(go.data(), x.data(), as.data(), n);
    d.relu_bwd_row(go.data(), x.data(), ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "ReluBwdRow", n));

    s->leaky_relu_row(x.data(), 0.01, as.data(), n);
    d.leaky_relu_row(x.data(), 0.01, ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "LeakyReluRow", n));

    as = base, ad = base;
    s->leaky_relu_bwd_row(go.data(), x.data(), 0.01, as.data(), n);
    d.leaky_relu_bwd_row(go.data(), x.data(), 0.01, ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "LeakyReluBwdRow", n));

    as = base, ad = base;
    s->softmax_bwd_row(go.data(), y.data(), 0.625, as.data(), n);
    d.softmax_bwd_row(go.data(), y.data(), 0.625, ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "SoftmaxBwdRow", n));

    as = base, ad = base;
    s->logsoftmax_bwd_row(go.data(), y.data(), -1.5, as.data(), n);
    d.logsoftmax_bwd_row(go.data(), y.data(), -1.5, ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "LogSoftmaxBwdRow", n));

    as = base, ad = base;
    s->axpy_div_row(0.75, y.data(), 2.5, as.data(), n);
    d.axpy_div_row(0.75, y.data(), 2.5, ad.data(), n);
    EXPECT_TRUE(BitsEqual(as, ad, "AxpyDivRow", n));
  }
}

TEST(KernelBitIdentityTest, AdamRow) {
  const KernelOps* s = GetScalarOps();
  const KernelOps& d = Ops();
  for (int n = 1; n <= kMaxN; ++n) {
    const std::vector<Scalar> g = MakeBuffer(n, static_cast<uint64_t>(n));
    std::vector<Scalar> xs = MakeBuffer(n, 101), xd = xs;
    std::vector<Scalar> ms = MakeBuffer(n, 102), md = ms;
    // Second moments must be non-negative (they feed sqrt).
    std::vector<Scalar> vs = MakeBuffer(n, 103, /*nonnegative=*/true),
                        vd = vs;
    s->adam_row(xs.data(), ms.data(), vs.data(), g.data(), 0.9, 0.1, 0.999,
                0.001, 0.2, 0.05, 1e-3, 1e-8, n);
    d.adam_row(xd.data(), md.data(), vd.data(), g.data(), 0.9, 0.1, 0.999,
               0.001, 0.2, 0.05, 1e-3, 1e-8, n);
    EXPECT_TRUE(BitsEqual(xs, xd, "AdamRow(x)", n));
    EXPECT_TRUE(BitsEqual(ms, md, "AdamRow(m)", n));
    EXPECT_TRUE(BitsEqual(vs, vd, "AdamRow(v)", n));
  }
}

TEST(KernelBitIdentityTest, DotPanel4MatchesSerialDotPerColumn) {
  const KernelOps* s = GetScalarOps();
  const KernelOps& d = Ops();
  for (int dim : {1, 2, 3, 8, 32, 33, 64}) {
    const std::vector<Scalar> h =
        MakeBuffer(dim, static_cast<uint64_t>(dim));
    const std::vector<Scalar> panel =
        MakeBuffer(4 * dim, static_cast<uint64_t>(dim) + 77);
    Scalar out_s[4], out_d[4];
    s->dot_panel4(h.data(), panel.data(), dim, out_s);
    d.dot_panel4(h.data(), panel.data(), dim, out_d);
    for (int j = 0; j < 4; ++j) {
      // De-interleave column j and check against the pinned serial Dot —
      // the panel must not change the per-output accumulation chain.
      std::vector<Scalar> col(static_cast<size_t>(dim));
      for (int k = 0; k < dim; ++k)
        col[static_cast<size_t>(k)] = panel[static_cast<size_t>(4 * k + j)];
      const Scalar ref = scalar::Dot(h.data(), col.data(), dim);
      EXPECT_TRUE(ScalarBitsEqual(ref, out_s[j], "DotPanel4 vs Dot", dim));
      EXPECT_TRUE(ScalarBitsEqual(out_s[j], out_d[j], "DotPanel4", dim));
    }
  }
}

// The old RowMax carried an "up to the sign of equal zeros" caveat; the
// trailing +0.0 normalization removes it. Pin: any arrangement of signed
// zeros as the maximum must return +0.0 exactly, in every backend.
TEST(KernelBitIdentityTest, RowMaxNormalizesSignedZeros) {
  const KernelOps* s = GetScalarOps();
  const KernelOps& d = Ops();
  const Scalar pz = 0.0, nz = -0.0;
  for (int n = 1; n <= 64; ++n) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<Scalar> x(static_cast<size_t>(n), -1.0);
      // Scatter zeros of alternating / fixed signs over the row.
      for (int i = 0; i < n; ++i) {
        if (variant == 0) x[static_cast<size_t>(i)] = nz;
        if (variant == 1) x[static_cast<size_t>(i)] = (i % 2 == 0) ? nz : pz;
        if (variant == 2 && i == n - 1) x[static_cast<size_t>(i)] = nz;
        if (variant == 3 && i == 0) x[static_cast<size_t>(i)] = nz;
      }
      const Scalar ms = s->row_max(x.data(), n);
      const Scalar md = d.row_max(x.data(), n);
      EXPECT_TRUE(ScalarBitsEqual(ms, md, "RowMax(zeros)", n));
      EXPECT_EQ(ms, 0.0);
      EXPECT_FALSE(std::signbit(ms)) << "RowMax returned -0.0 at n=" << n;
    }
  }
}

TEST(KernelExpTest, ExpDTracksStdExpWithinTwoUlp) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<Scalar> uni(-700.0, 700.0);
  for (int i = 0; i < 20000; ++i) {
    const Scalar x = uni(rng);
    const Scalar got = detail::ExpD(x);
    const Scalar want = std::exp(x);
    EXPECT_NEAR(got, want, 2e-15 * want) << "x=" << x;
  }
  EXPECT_EQ(detail::ExpD(0.0), 1.0);
  EXPECT_EQ(detail::ExpD(-0.0), 1.0);
  EXPECT_NEAR(detail::ExpD(1.0), std::exp(1.0), 2e-15 * std::exp(1.0));
}

TEST(KernelExpTest, ExpDClampEdgesMatchAcrossBackends) {
  const KernelOps* s = GetScalarOps();
  const KernelOps& d = Ops();
  const Scalar inf = std::numeric_limits<Scalar>::infinity();
  const std::vector<Scalar> edges = {-746.0, -745.5, -710.0, 709.7,
                                     709.9,  -1000.0, 1000.0, -inf,
                                     inf,    0.0,     -0.0};
  const int n = static_cast<int>(edges.size());
  std::vector<Scalar> es(edges.size()), ed(edges.size());
  s->exp_row(edges.data(), 0.0, es.data(), n);
  d.exp_row(edges.data(), 0.0, ed.data(), n);
  EXPECT_TRUE(BitsEqual(es, ed, "ExpRow(edges)", n));
  // Below the clamp everything lands on the same (underflowed) value.
  EXPECT_EQ(es[0], es[1]);
  EXPECT_EQ(es[5], es[1]);        // -1000 clamps like -746
  EXPECT_EQ(es[7], es[1]);        // -inf clamps to the low edge
  EXPECT_EQ(es[6], inf);          // 1000 overflows to inf
  EXPECT_EQ(es[8], inf);          // +inf stays inf
  EXPECT_EQ(es[9], 1.0);
  EXPECT_EQ(es[10], 1.0);
  EXPECT_GE(es[4], std::numeric_limits<Scalar>::max() / 2);  // 709.9 huge
}

// End-to-end: a small train step (MatMul -> activations -> softmax loss ->
// Adam) must produce identical parameter bits under the scalar table and
// the dispatched table. This exercises the kernels through every call
// site (tensor.cc, autograd.cc, optim.cc) rather than in isolation.
TEST(KernelBackendInvarianceTest, TrainStepBitsMatchScalarBackend) {
  auto run = [](Backend b) {
    const Backend prev = SetBackendForTest(b);
    Tensor xin(8, 6);
    Tensor target(8, 5);
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<Scalar> uni(-1.0, 1.0);
    for (int64_t i = 0; i < xin.size(); ++i) xin.data()[i] = uni(rng);
    for (int r = 0; r < 8; ++r) target.at(r, r % 5) = 1.0;

    Var w1 = Var::Param(Tensor(6, 7));
    Var w2 = Var::Param(Tensor(7, 5));
    std::mt19937_64 wrng(99);
    for (int64_t i = 0; i < w1.value().size(); ++i)
      w1.mutable_value().data()[i] = uni(wrng);
    for (int64_t i = 0; i < w2.value().size(); ++i)
      w2.mutable_value().data()[i] = uni(wrng);

    Adam opt({w1, w2}, 1e-2);
    for (int step = 0; step < 3; ++step) {
      opt.ZeroGrad();
      Var h = Sigmoid(MatMul(Var::Constant(xin), w1));
      h = Relu(h);
      Var logits = MatMul(h, w2);
      Var loss = RowCrossEntropyWithLogits(logits, target);
      Backward(loss);
      opt.Step();
    }
    std::vector<Scalar> out;
    for (int64_t i = 0; i < w1.value().size(); ++i)
      out.push_back(w1.value().data()[i]);
    for (int64_t i = 0; i < w2.value().size(); ++i)
      out.push_back(w2.value().data()[i]);
    SetBackendForTest(prev);
    return out;
  };

  const std::vector<Scalar> scalar_bits = run(Backend::kScalar);
  const std::vector<Scalar> active_bits = run(ActiveBackend());
  EXPECT_TRUE(BitsEqual(scalar_bits, active_bits, "TrainStep", 0));
}

}  // namespace
}  // namespace tgsim::nn::kernels
