// Cross-module integration tests: raw events -> binning -> training ->
// generation -> persistence -> evaluation, plus randomized invariants that
// tie the graph substrate together.

#include <cstdio>
#include <set>
#include <string>

#include "common/rng.h"
#include "config/param_map.h"
#include "core/tgae.h"
#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "eval/registry.h"
#include "graph/binning.h"
#include "gtest/gtest.h"
#include "metrics/degree_mmd.h"
#include "metrics/motifs.h"
#include "metrics/temporal_scores.h"

namespace tgsim {
namespace {

TEST(PipelineTest, RawEventsToSyntheticReplica) {
  // 1. Raw continuous-time events.
  Rng rng(100);
  std::vector<graphs::RawEvent> events;
  for (int i = 0; i < 600; ++i) {
    auto u = static_cast<graphs::NodeId>(rng.UniformInt(40));
    auto v = static_cast<graphs::NodeId>(rng.UniformInt(40));
    if (u == v) v = static_cast<graphs::NodeId>((v + 1) % 40);
    events.push_back({u, v, 1700000000 + rng.UniformInt(1000000)});
  }
  // 2. Bin into snapshots.
  graphs::BinnedGraph binned = graphs::BinEvents(events, 40, 10);
  ASSERT_EQ(binned.graph.num_edges(), 600);
  // 3. Train and generate.
  core::TgaeConfig cfg;
  cfg.epochs = 5;
  cfg.batch_centers = 8;
  core::TgaeGenerator gen(cfg);
  gen.Fit(binned.graph, rng);
  graphs::TemporalGraph synthetic = gen.Generate(rng);
  EXPECT_EQ(synthetic.num_edges(), 600);
  // 4. Persist and reload.
  std::string path = std::string(::testing::TempDir()) + "/pipeline.txt";
  ASSERT_TRUE(datasets::SaveEdgeList(synthetic, path).ok());
  Result<graphs::TemporalGraph> reloaded = datasets::LoadEdgeList(path);
  ASSERT_TRUE(reloaded.ok());
  // 5. Evaluate the reloaded replica against the binned original.
  std::vector<metrics::TemporalScore> scores =
      metrics::ScoreAllMetrics(binned.graph, reloaded.value());
  for (const metrics::TemporalScore& s : scores) {
    EXPECT_TRUE(std::isfinite(s.med));
    EXPECT_TRUE(std::isfinite(s.avg));
  }
}

TEST(PipelineTest, TgaeIsTopTierOnMotifMmd) {
  // The headline claim (Table VI shape): TGAE's motif MMD beats every
  // baseline on a DBLP-like graph with fixed seeds.
  graphs::TemporalGraph observed = datasets::MakeMimicByName("DBLP", 0.1, 41);
  double tgae_mmd = 0.0;
  double best_baseline = 1e9;
  for (const std::string method :
       {"TGAE", "TIGGER", "TagGen", "E-R", "B-A"}) {
    config::ParamMap params;
    if (method != "TGAE") params.Override("preset", "fast");
    auto gen = std::move(eval::MakeGenerator(method, params)).value();
    Rng rng(7);
    gen->Fit(observed, rng);
    graphs::TemporalGraph out = gen->Generate(rng);
    double mmd = metrics::MotifMmd(observed, out, 4, 1.0, 500000);
    if (method == "TGAE") {
      tgae_mmd = mmd;
    } else {
      best_baseline = std::min(best_baseline, mmd);
    }
  }
  EXPECT_LT(tgae_mmd, best_baseline);
}

TEST(PipelineTest, DegreeMmdRanksTgaeAboveUniform) {
  graphs::TemporalGraph observed = datasets::MakeMimicByName("MSG", 0.05, 42);
  core::TgaeConfig cfg;
  cfg.epochs = 15;
  core::TgaeGenerator tgae(cfg);
  Rng r1(3);
  tgae.Fit(observed, r1);
  graphs::TemporalGraph tgae_out = tgae.Generate(r1);

  auto er = std::move(eval::MakeGenerator("E-R")).value();
  Rng r2(3);
  er->Fit(observed, r2);
  graphs::TemporalGraph er_out = er->Generate(r2);

  EXPECT_LT(metrics::DegreeMmd(observed, tgae_out),
            metrics::DegreeMmd(observed, er_out));
}

// ---------------------------------------------------------------------------
// Randomized graph-substrate invariants.
// ---------------------------------------------------------------------------

class RandomGraphInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphInvariantTest, AdjacencyIndexesAgreeWithEdgeStream) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 5);
  const int n = 12 + GetParam();
  const int t_count = 4 + GetParam() % 5;
  std::vector<graphs::TemporalEdge> edges;
  for (int i = 0; i < 30 * (1 + GetParam() % 4); ++i) {
    auto u = static_cast<graphs::NodeId>(rng.UniformInt(n));
    auto v = static_cast<graphs::NodeId>(rng.UniformInt(n));
    edges.push_back({u, v, static_cast<graphs::Timestamp>(
                               rng.UniformInt(t_count))});
  }
  graphs::TemporalGraph g =
      graphs::TemporalGraph::FromEdges(n, t_count, edges);

  // Edge stream totals match EdgesAt slices.
  int64_t slice_total = 0;
  for (graphs::Timestamp t = 0; t < t_count; ++t)
    slice_total += static_cast<int64_t>(g.EdgesAt(t).size());
  EXPECT_EQ(slice_total, g.num_edges());

  // Out-adjacency totals equal edge count.
  int64_t out_total = 0;
  for (graphs::NodeId u = 0; u < n; ++u)
    out_total += static_cast<int64_t>(g.OutNeighbors(u).size());
  EXPECT_EQ(out_total, g.num_edges());

  // Undirected adjacency counts each non-self edge at both endpoints.
  int64_t undirected_total = 0;
  for (graphs::NodeId u = 0; u < n; ++u)
    undirected_total += static_cast<int64_t>(g.Neighbors(u).size());
  int64_t self_loops = 0;
  for (const auto& e : g.edges()) self_loops += e.u == e.v;
  EXPECT_EQ(undirected_total, 2 * g.num_edges() - self_loops);

  // TemporalNeighborhood with the full window equals Neighbors.
  for (graphs::NodeId u = 0; u < n; ++u) {
    auto full = g.TemporalNeighborhood(u, 0, t_count);
    EXPECT_EQ(full.size(), g.Neighbors(u).size());
  }

  // Accumulated snapshots are monotone in edge count.
  int64_t prev = -1;
  for (graphs::Timestamp t = 0; t < t_count; ++t) {
    int64_t m = g.SnapshotUpTo(t).num_edges();
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST_P(RandomGraphInvariantTest, GeneratorsKeepTimestampMarginals) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  graphs::TemporalGraph observed = datasets::MakeMimicByName(
      "DBLP", 0.04, static_cast<uint64_t>(GetParam()) + 50);
  // E-R and TGAE preserve the per-timestamp edge histogram exactly.
  for (const char* method : {"E-R", "TGAE"}) {
    config::ParamMap fast;
    fast.Override("preset", "fast");
    auto gen = std::move(eval::MakeGenerator(method, fast)).value();
    Rng local(9);
    gen->Fit(observed, local);
    graphs::TemporalGraph out = gen->Generate(local);
    EXPECT_EQ(out.EdgesPerTimestamp(), observed.EdgesPerTimestamp())
        << method;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphInvariantTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace tgsim
