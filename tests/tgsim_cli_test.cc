#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "datasets/io.h"
#include "datasets/synthetic.h"
#include "gtest/gtest.h"
#include "parallel/thread_pool.h"
#include "tools/tgsim_cli.h"

namespace tgsim {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Runs the CLI in-process, capturing stdout.
struct CliResult {
  int code = 0;
  std::string out;
};

CliResult RunCli(const std::vector<std::string>& args) {
  ::testing::internal::CaptureStdout();
  CliResult result;
  result.code = cli::Run(args);
  result.out = ::testing::internal::GetCapturedStdout();
  return result;
}

TEST(TgsimCliTest, NoArgsPrintsUsageAndFails) {
  CliResult r = RunCli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("Usage: tgsim"), std::string::npos);
}

TEST(TgsimCliTest, HelpSucceeds) {
  EXPECT_EQ(RunCli({"--help"}).code, 0);
  EXPECT_EQ(RunCli({"help"}).code, 0);
}

TEST(TgsimCliTest, UnknownCommandIsUsageError) {
  EXPECT_EQ(RunCli({"frobnicate"}).code, 2);
}

TEST(TgsimCliTest, MethodsListsTheFullRegistry) {
  CliResult r = RunCli({"methods"});
  EXPECT_EQ(r.code, 0);
  for (const char* name :
       {"TGAE", "TIGGER", "DYMOND", "TGGAN", "TagGen", "NetGAN", "E-R",
        "B-A", "VGAE", "Graphite", "SBMGNN", "TGAE-g", "TGAE-p"})
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
}

TEST(TgsimCliTest, MethodsVerboseShowsSchemaAndPreset) {
  CliResult r = RunCli({"methods", "--method", "TGAE"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("epochs (int, default=50)"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("preset=fast applies: epochs=5 batch_centers=16"),
            std::string::npos)
      << r.out;
}

TEST(TgsimCliTest, MethodsUnknownNameFails) {
  EXPECT_EQ(RunCli({"methods", "--method", "NoSuchMethod"}).code, 1);
}

TEST(TgsimCliTest, GenerateWritesALoadableEdgeList) {
  // The end-to-end smoke of the acceptance criteria: generate on a small
  // synthetic graph with --param overrides, reload with LoadEdgeList,
  // check the shape is preserved.
  std::string out_path = TempPath("cli_generated.txt");
  CliResult r = RunCli({"generate", "--method", "E-R", "--synthetic", "DBLP",
                        "--scale", "0.04", "--output", out_path, "--seed",
                        "11"});
  EXPECT_EQ(r.code, 0) << r.out;
  Result<graphs::TemporalGraph> reloaded = datasets::LoadEdgeList(out_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  graphs::TemporalGraph observed =
      datasets::MakeMimicByName("DBLP", 0.04, 11);
  EXPECT_EQ(reloaded.value().num_nodes(), observed.num_nodes());
  EXPECT_EQ(reloaded.value().num_timestamps(), observed.num_timestamps());
  EXPECT_EQ(reloaded.value().num_edges(), observed.num_edges());
}

TEST(TgsimCliTest, GenerateHonorsParamOverrides) {
  std::string out_path = TempPath("cli_tgae.txt");
  CliResult r = RunCli({"generate", "--method", "TGAE", "--preset", "fast",
                        "--param", "epochs=1", "--param", "batch_centers=8",
                        "--synthetic", "DBLP", "--scale", "0.03",
                        "--output", out_path, "--seed", "5"});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_TRUE(datasets::LoadEdgeList(out_path).ok());
}

TEST(TgsimCliTest, GenerateReadsConfigFiles) {
  std::string cfg_path = TempPath("cli_params.cfg");
  FILE* f = fopen(cfg_path.c_str(), "w");
  fputs("# smoke profile\npreset = fast\nepochs = 1\n", f);
  fclose(f);
  std::string out_path = TempPath("cli_cfg_out.txt");
  CliResult r = RunCli({"generate", "--method", "TIGGER", "--config",
                        cfg_path, "--synthetic", "DBLP", "--scale", "0.03",
                        "--output", out_path, "--seed", "5"});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_TRUE(datasets::LoadEdgeList(out_path).ok());
}

TEST(TgsimCliTest, GenerateFromInputFileRoundTrips) {
  // Save a mimic, feed it back through --input.
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.03, 9);
  std::string in_path = TempPath("cli_input.txt");
  ASSERT_TRUE(datasets::SaveEdgeList(g, in_path).ok());
  std::string out_path = TempPath("cli_input_out.txt");
  CliResult r = RunCli({"generate", "--method", "B-A", "--input", in_path,
                        "--output", out_path});
  EXPECT_EQ(r.code, 0) << r.out;
  Result<graphs::TemporalGraph> reloaded = datasets::LoadEdgeList(out_path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().num_edges(), g.num_edges());
}

TEST(TgsimCliTest, GenerateRejectsBadInvocations) {
  // Missing required flags.
  EXPECT_EQ(RunCli({"generate", "--method", "E-R"}).code, 2);
  // Unknown method (runtime error, not usage).
  EXPECT_EQ(RunCli({"generate", "--method", "NoSuch", "--synthetic", "DBLP",
                    "--output", TempPath("x.txt")})
                .code,
            1);
  // Unknown parameter.
  EXPECT_EQ(RunCli({"generate", "--method", "E-R", "--param", "epochs=5",
                    "--synthetic", "DBLP", "--output", TempPath("x.txt")})
                .code,
            1);
  // Both dataset sources.
  EXPECT_EQ(RunCli({"generate", "--method", "E-R", "--synthetic", "DBLP",
                    "--input", "a.txt", "--output", TempPath("x.txt")})
                .code,
            1);
  // Unknown synthetic name.
  EXPECT_EQ(RunCli({"generate", "--method", "E-R", "--synthetic", "NOPE",
                    "--output", TempPath("x.txt")})
                .code,
            1);
}

TEST(TgsimCliTest, StatsPrintsTableIiiMetrics) {
  CliResult r = RunCli({"stats", "--synthetic", "MSG", "--scale", "0.05"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("nodes"), std::string::npos);
  EXPECT_NE(r.out.find("Mean Degree"), std::string::npos) << r.out;
}

TEST(TgsimCliTest, EvalRunsASmallMatrix) {
  CliResult r = RunCli({"eval", "--methods", "E-R,B-A", "--datasets",
                        "DBLP,MSG", "--scale", "0.03", "--preset", "fast",
                        "--seed", "3"});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find("[DBLP]"), std::string::npos);
  EXPECT_NE(r.out.find("[MSG]"), std::string::npos);
  EXPECT_NE(r.out.find("E-R"), std::string::npos);
  EXPECT_NE(r.out.find("Mean Degree"), std::string::npos);
}

TEST(TgsimCliTest, UnknownFlagsAreRejectedWithSuggestion) {
  // Typos must never be silently dropped.
  EXPECT_EQ(RunCli({"eval", "--motif_mmd"}).code, 2);
  EXPECT_EQ(RunCli({"generate", "--metod", "E-R"}).code, 2);
}

TEST(TgsimCliTest, EqualsSyntaxWorksForValueFlags) {
  std::string out_path = TempPath("cli_eq.txt");
  CliResult r = RunCli({"generate", "--method=E-R", "--synthetic=DBLP",
                        "--scale=0.03", "--output=" + out_path,
                        "--seed=11"});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_TRUE(datasets::LoadEdgeList(out_path).ok());
}

TEST(TgsimCliTest, PerCommandHelpIsSpecific) {
  CliResult r = RunCli({"eval", "--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("--motif-delta"), std::string::npos) << r.out;
  CliResult g = RunCli({"generate", "--help"});
  EXPECT_EQ(g.code, 0);
  EXPECT_NE(g.out.find("tgsim generate"), std::string::npos);
}

TEST(TgsimCliTest, EvalRunsOnAnInputEdgeList) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.03, 9);
  std::string in_path = TempPath("cli_eval_input.txt");
  ASSERT_TRUE(datasets::SaveEdgeList(g, in_path).ok());
  CliResult r = RunCli({"eval", "--methods", "E-R", "--input", in_path,
                        "--seed", "3"});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find(in_path), std::string::npos) << r.out;
  // --input and --datasets are mutually exclusive.
  EXPECT_EQ(RunCli({"eval", "--methods", "E-R", "--input", in_path,
                    "--datasets", "DBLP"})
                .code,
            1);
  // --paper-scale has no Table II spec for a file input.
  EXPECT_EQ(RunCli({"eval", "--methods", "E-R", "--input", in_path,
                    "--paper-scale"})
                .code,
            1);
}

TEST(TgsimCliTest, EvalScopesParamsToDeclaringMethods) {
  // epochs targets TIGGER; parameterless E-R still runs in the same
  // matrix instead of failing the batch.
  CliResult r = RunCli({"eval", "--methods", "E-R,TIGGER", "--datasets",
                        "DBLP", "--scale", "0.03", "--preset", "fast",
                        "--param", "epochs=1", "--seed", "3"});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_NE(r.out.find("TIGGER"), std::string::npos);
  // A key no selected method declares is still an error.
  EXPECT_EQ(RunCli({"eval", "--methods", "E-R,B-A", "--datasets", "DBLP",
                    "--scale", "0.03", "--param", "epochs=1"})
                .code,
            1);
}

TEST(TgsimCliTest, EvalRejectsUnknownMethodAndDataset) {
  EXPECT_EQ(RunCli({"eval", "--methods", "NoSuch", "--datasets", "DBLP",
                    "--scale", "0.03"})
                .code,
            1);
  EXPECT_EQ(RunCli({"eval", "--methods", "E-R", "--datasets", "Nowhere"})
                .code,
            1);
}

// ---------------------------------------------------------------------------
// Model artifacts: tgsim fit + tgsim generate --model.
// ---------------------------------------------------------------------------

TEST(TgsimCliTest, FitThenGenerateFromModelMatchesDirectRun) {
  // Fit-once/serve-many end to end: `fit` then `generate --model` must
  // write the exact edge list of a single in-process `generate` run with
  // the same seed (the two halves consume independent seed streams).
  std::string model_path = TempPath("cli_model.tgsim");
  std::string from_model = TempPath("cli_from_model.txt");
  std::string direct = TempPath("cli_direct.txt");

  CliResult fit = RunCli({"fit", "--method", "TagGen", "--preset", "fast",
                          "--param", "epochs=1", "--synthetic", "DBLP",
                          "--scale", "0.03", "--output", model_path,
                          "--seed", "11"});
  ASSERT_EQ(fit.code, 0) << fit.out;
  EXPECT_NE(fit.out.find("wrote model artifact"), std::string::npos);

  CliResult gen = RunCli({"generate", "--model", model_path, "--output",
                          from_model, "--seed", "11"});
  ASSERT_EQ(gen.code, 0) << gen.out;
  EXPECT_NE(gen.out.find("method TagGen"), std::string::npos) << gen.out;

  CliResult both = RunCli({"generate", "--method", "TagGen", "--preset",
                           "fast", "--param", "epochs=1", "--synthetic",
                           "DBLP", "--scale", "0.03", "--output", direct,
                           "--seed", "11"});
  ASSERT_EQ(both.code, 0) << both.out;

  Result<graphs::TemporalGraph> a = datasets::LoadEdgeList(from_model);
  Result<graphs::TemporalGraph> b = datasets::LoadEdgeList(direct);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().num_edges(), b.value().num_edges());
  for (size_t i = 0; i < a.value().edges().size(); ++i)
    EXPECT_TRUE(a.value().edges()[i] == b.value().edges()[i])
        << "edge " << i;
}

TEST(TgsimCliTest, UpdateAbsorbsDeltaAndBumpsLineage) {
  // fit(first half) + update(second half): the updated artifact generates
  // the full edge budget and reports its update lineage on reload.
  graphs::TemporalGraph observed = datasets::MakeMimicByName("DBLP", 0.03, 11);
  const int split = observed.num_timestamps() / 2;
  std::vector<graphs::TemporalEdge> first, second;
  for (const graphs::TemporalEdge& e : observed.edges())
    (e.t < split ? first : second).push_back(e);
  std::string first_path = TempPath("cli_update_first.txt");
  std::string delta_path = TempPath("cli_update_delta.txt");
  ASSERT_TRUE(datasets::SaveEdgeList(
                  graphs::TemporalGraph::FromEdges(
                      observed.num_nodes(), observed.num_timestamps(),
                      std::move(first)),
                  first_path)
                  .ok());
  ASSERT_TRUE(datasets::SaveEdgeList(
                  graphs::TemporalGraph::FromEdges(
                      observed.num_nodes(), observed.num_timestamps(),
                      std::move(second)),
                  delta_path)
                  .ok());

  std::string model_path = TempPath("cli_update_model.tgsim");
  std::string updated_path = TempPath("cli_update_model2.tgsim");
  CliResult fit = RunCli({"fit", "--method", "E-R", "--input", first_path,
                          "--output", model_path, "--seed", "11"});
  ASSERT_EQ(fit.code, 0) << fit.out;

  CliResult update = RunCli({"update", "--model", model_path, "--input",
                             delta_path, "--output", updated_path,
                             "--seed", "11"});
  ASSERT_EQ(update.code, 0) << update.out;
  EXPECT_NE(update.out.find("wrote model artifact"), std::string::npos)
      << update.out;
  EXPECT_NE(update.out.find("update #1"), std::string::npos) << update.out;

  std::string out_path = TempPath("cli_update_generated.txt");
  CliResult gen = RunCli({"generate", "--model", updated_path, "--output",
                          out_path, "--seed", "11"});
  ASSERT_EQ(gen.code, 0) << gen.out;
  Result<graphs::TemporalGraph> g = datasets::LoadEdgeList(out_path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), observed.num_edges());
}

TEST(TgsimCliTest, UpdateRejectsBadInvocations) {
  EXPECT_EQ(RunCli({"update", "--model", "m.tgsim"}).code, 2);
  EXPECT_EQ(RunCli({"update", "--model", TempPath("no_such.tgsim"),
                    "--input", TempPath("no_delta.txt"), "--output",
                    TempPath("out.tgsim")})
                .code,
            1);
}

TEST(TgsimCliTest, MethodsMarksUpdatableMethods) {
  CliResult r = RunCli({"methods"});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("[updatable]"), std::string::npos) << r.out;
  CliResult verbose = RunCli({"methods", "--method", "TGAE"});
  ASSERT_EQ(verbose.code, 0);
  EXPECT_NE(verbose.out.find("incremental update"), std::string::npos)
      << verbose.out;
}

TEST(TgsimCliTest, GenerateModelRejectsConflictingFlags) {
  // --model with --method is a usage error; with dataset or construction
  // flags it is a runtime error (the artifact embeds all of them).
  EXPECT_EQ(RunCli({"generate", "--model", "m.tgsim", "--method", "E-R",
                    "--output", TempPath("x.txt")})
                .code,
            2);
  EXPECT_EQ(RunCli({"generate", "--model", "m.tgsim", "--synthetic", "DBLP",
                    "--output", TempPath("x.txt")})
                .code,
            1);
  EXPECT_EQ(RunCli({"generate", "--model", "m.tgsim", "--preset", "fast",
                    "--output", TempPath("x.txt")})
                .code,
            1);
}

TEST(TgsimCliTest, GenerateFromMissingOrGarbageModelFails) {
  EXPECT_EQ(RunCli({"generate", "--model", TempPath("no_such.tgsim"),
                    "--output", TempPath("x.txt")})
                .code,
            1);
  std::string garbage = TempPath("garbage.tgsim");
  FILE* f = fopen(garbage.c_str(), "w");
  fputs("not an artifact\n", f);
  fclose(f);
  EXPECT_EQ(RunCli({"generate", "--model", garbage, "--output",
                    TempPath("x.txt")})
                .code,
            1);
}

TEST(TgsimCliTest, FitRequiresMethodAndOutput) {
  EXPECT_EQ(RunCli({"fit", "--method", "E-R"}).code, 2);
  EXPECT_EQ(RunCli({"fit", "--output", TempPath("m.tgsim")}).code, 2);
  EXPECT_EQ(RunCli({"fit", "--method", "NoSuch", "--synthetic", "DBLP",
                    "--output", TempPath("m.tgsim")})
                .code,
            1);
}

// ---------------------------------------------------------------------------
// --threads: thread control without TGSIM_NUM_THREADS plumbing.
// ---------------------------------------------------------------------------

TEST(TgsimCliTest, ThreadsFlagResizesTheGlobalPool) {
  std::string out_path = TempPath("cli_threads.txt");
  CliResult r = RunCli({"generate", "--method", "E-R", "--synthetic", "DBLP",
                        "--scale", "0.03", "--output", out_path, "--seed",
                        "7", "--threads", "3"});
  EXPECT_EQ(r.code, 0) << r.out;
  EXPECT_EQ(parallel::ThreadPool::GlobalThreads(), 3);
  // Restore a deterministic default for the rest of the process.
  parallel::ThreadPool::SetGlobalThreads(
      parallel::ThreadPool::DefaultNumThreads());
}

TEST(TgsimCliTest, ThreadsFlagRejectsBadValues) {
  EXPECT_EQ(RunCli({"generate", "--method", "E-R", "--synthetic", "DBLP",
                    "--output", TempPath("x.txt"), "--threads", "0"})
                .code,
            2);
  EXPECT_EQ(RunCli({"generate", "--method", "E-R", "--synthetic", "DBLP",
                    "--output", TempPath("x.txt"), "--threads", "lots"})
                .code,
            2);
}

TEST(TgsimCliTest, ConvertRoundTripsTextAndBinary) {
  std::string text1 = TempPath("cli_conv.txt");
  std::string bin = TempPath("cli_conv.bin");
  std::string text2 = TempPath("cli_conv2.txt");
  CliResult gen = RunCli({"generate", "--method", "E-R", "--synthetic",
                          "DBLP", "--scale", "0.04", "--output", text1,
                          "--seed", "11"});
  ASSERT_EQ(gen.code, 0) << gen.out;
  CliResult to_bin = RunCli(
      {"convert", "--input", text1, "--output", bin, "--to", "binary"});
  EXPECT_EQ(to_bin.code, 0) << to_bin.out;
  EXPECT_NE(to_bin.out.find("wrote binary edge list"), std::string::npos)
      << to_bin.out;
  CliResult to_text = RunCli(
      {"convert", "--input", bin, "--output", text2, "--to", "text"});
  EXPECT_EQ(to_text.code, 0) << to_text.out;

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(text1), slurp(text2));
  EXPECT_LT(slurp(bin).size(), slurp(text1).size());

  // Downstream commands read the binary file through the same sniffing
  // load path.
  CliResult stats = RunCli({"stats", "--input", bin});
  EXPECT_EQ(stats.code, 0) << stats.out;
}

TEST(TgsimCliTest, ConvertRejectsBadInvocations) {
  std::string text = TempPath("cli_conv_bad.txt");
  CliResult gen = RunCli({"generate", "--method", "E-R", "--synthetic",
                          "DBLP", "--scale", "0.03", "--output", text,
                          "--seed", "5"});
  ASSERT_EQ(gen.code, 0) << gen.out;
  std::string out = TempPath("cli_conv_bad.bin");
  // Unknown target format.
  EXPECT_EQ(RunCli({"convert", "--input", text, "--output", out, "--to",
                    "csv"})
                .code,
            2);
  // Missing required flags.
  EXPECT_EQ(RunCli({"convert", "--input", text, "--to", "binary"}).code, 2);
  EXPECT_EQ(RunCli({"convert", "--output", out, "--to", "binary"}).code, 2);
  EXPECT_EQ(RunCli({"convert", "--input", text, "--output", out}).code, 2);
  // Unreadable input is a runtime failure, not a usage error.
  EXPECT_EQ(RunCli({"convert", "--input", "/nonexistent/in.txt", "--output",
                    out, "--to", "binary"})
                .code,
            1);
}

}  // namespace
}  // namespace tgsim
