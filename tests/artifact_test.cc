#include "eval/artifact.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "config/param_map.h"
#include "datasets/synthetic.h"
#include "eval/registry.h"
#include "gtest/gtest.h"
#include "serialize/serialization.h"

namespace tgsim::eval {
namespace {

std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  return out;
}

std::string ArtifactPath(const std::string& tag) {
  return std::string(::testing::TempDir()) + "/tgsim_artifact_" +
         Sanitize(tag) + ".tgsim";
}

void ExpectGraphsIdentical(const graphs::TemporalGraph& a,
                           const graphs::TemporalGraph& b,
                           const std::string& label) {
  EXPECT_EQ(a.num_nodes(), b.num_nodes()) << label;
  EXPECT_EQ(a.num_timestamps(), b.num_timestamps()) << label;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << label;
  for (size_t i = 0; i < a.edges().size(); ++i)
    ASSERT_TRUE(a.edges()[i] == b.edges()[i])
        << label << ": edge " << i << " differs";
}

/// Fits `method` with the fast preset, destroys the training graph, saves
/// an artifact, reloads it, and pins that the loaded generator draws a
/// bit-identical graph — the acceptance contract of the artifact format.
void RoundTripMethod(const std::string& method) {
  config::ParamMap params;
  params.Override("preset", "fast");
  auto built = MakeGenerator(method, params);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::unique_ptr<baselines::TemporalGraphGenerator> fitted =
      std::move(built).value();

  // The observed graph lives only for the Fit call: everything after this
  // block — generation, saving, loading — must work without the training
  // data (the artifact's no-training-data-needed rule).
  {
    auto observed = std::make_unique<graphs::TemporalGraph>(
        datasets::MakeMimicByName("DBLP", 0.03, 21));
    Rng fit_rng(17);
    fitted->Fit(*observed, fit_rng);
  }

  std::string path = ArtifactPath(method);
  Status saved = SaveArtifact(*fitted, method, params, path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  Result<LoadedArtifact> loaded = LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().method, method);
  EXPECT_EQ(loaded.value().params.ToString(), params.ToString());

  Rng gen_a(99), gen_b(99);
  graphs::TemporalGraph a = fitted->Generate(gen_a);
  graphs::TemporalGraph b = loaded.value().generator->Generate(gen_b);
  ExpectGraphsIdentical(a, b, method);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Round trip over every registered main-table method.
// ---------------------------------------------------------------------------

class ArtifactRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ArtifactRoundTripTest, LoadedGeneratorIsBitIdenticalWithoutData) {
  RoundTripMethod(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ArtifactRoundTripTest,
    ::testing::ValuesIn(AllMethodNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return Sanitize(info.param);
    });

TEST(ArtifactAblationTest, TgaeAblationVariantsRoundTripToo) {
  // The ablation registrations share TgaeGenerator; pin one per family
  // knob (non-probabilistic decoder, chain ego-graphs).
  RoundTripMethod("TGAE-p");
  RoundTripMethod("TGAE-g");
}

// ---------------------------------------------------------------------------
// Error paths: every failure is a Status, never a crash.
// ---------------------------------------------------------------------------

TEST(ArtifactErrorTest, SaveBeforeFitIsInvalidArgument) {
  auto gen = std::move(MakeGenerator("E-R")).value();
  std::string path = ArtifactPath("unfitted");
  Status s = SaveArtifact(*gen, "E-R", {}, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("Fit()"), std::string::npos) << s.ToString();
  // A failed save must not leave a half-written artifact (the descriptor
  // is written before the state error surfaces).
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ArtifactTest, ParamValuesWithWhitespaceRoundTrip) {
  // Overlay entries are stored as length-prefixed key/value bytes, one
  // field per entry — a value with whitespace (legal: ParamMap getters
  // trim before parsing) must survive the round trip. Regression: a
  // joined-and-resplit rendering saved fine and failed at load.
  config::ParamMap params;
  params.Override("preset", "fast");
  params.Override("epochs", " 1 ");
  params.Override("walks_per_epoch", "10");
  auto built = MakeGenerator("TIGGER", params);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto gen = std::move(built).value();
  {
    graphs::TemporalGraph observed =
        datasets::MakeMimicByName("DBLP", 0.03, 5);
    Rng rng(3);
    gen->Fit(observed, rng);
  }
  std::string path = ArtifactPath("whitespace_params");
  ASSERT_TRUE(SaveArtifact(*gen, "TIGGER", params, path).ok());
  Result<LoadedArtifact> loaded = LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_NE(loaded.value().params.FindRaw("epochs"), nullptr);
  EXPECT_EQ(*loaded.value().params.FindRaw("epochs"), " 1 ");
  Rng gen_a(4), gen_b(4);
  graphs::TemporalGraph a = gen->Generate(gen_a);
  graphs::TemporalGraph b = loaded.value().generator->Generate(gen_b);
  ExpectGraphsIdentical(a, b, "TIGGER whitespace params");
  std::filesystem::remove(path);
}

TEST(ArtifactErrorTest, SaveUnknownMethodIsNotFoundWithSuggestion) {
  auto gen = std::move(MakeGenerator("E-R")).value();
  Status s = SaveArtifact(*gen, "E-Q", {}, ArtifactPath("unknown_save"));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("E-R"), std::string::npos) << s.ToString();
}

TEST(ArtifactErrorTest, LoadMissingFileIsIoError) {
  EXPECT_EQ(LoadArtifact("/nonexistent/model.tgsim").status().code(),
            StatusCode::kIoError);
}

TEST(ArtifactErrorTest, LoadBadMagicIsInvalidArgument) {
  std::string path = ArtifactPath("bad_magic");
  std::ofstream(path) << "definitely not an artifact\n";
  Status s = LoadArtifact(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(ArtifactErrorTest, LoadWrongArchiveVersionNamesBothVersions) {
  std::string path = ArtifactPath("bad_version");
  std::ofstream(path) << "tgsim-archive 999\nend\n";
  Status s = LoadArtifact(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("999"), std::string::npos) << s.ToString();
  std::filesystem::remove(path);
}

TEST(ArtifactErrorTest, LoadWrongArtifactVersionIsInvalidArgument) {
  std::string path = ArtifactPath("bad_artifact_version");
  {
    std::ofstream out(path);
    serialize::ArchiveWriter writer(out);
    writer.BeginSection("artifact");
    writer.WriteInt("artifact_version", 999);
    writer.WriteString("method", "E-R");
    writer.WriteInt("param_count", 0);
    ASSERT_TRUE(writer.Finish().ok());
  }
  Status s = LoadArtifact(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("artifact version 999"), std::string::npos)
      << s.ToString();
  std::filesystem::remove(path);
}

TEST(ArtifactErrorTest, LoadUnknownMethodIsNotFoundWithSuggestion) {
  std::string path = ArtifactPath("unknown_method");
  {
    std::ofstream out(path);
    serialize::ArchiveWriter writer(out);
    writer.BeginSection("artifact");
    writer.WriteInt("artifact_version", kArtifactVersion);
    writer.WriteString("method", "TGAF");
    writer.WriteInt("base_fit_seed", 0);
    writer.WriteInt("update_count", 0);
    writer.WriteInt("update_epochs", 0);
    writer.WriteInt("param_count", 0);
    ASSERT_TRUE(writer.Finish().ok());
  }
  Status s = LoadArtifact(path).status();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("TGAE"), std::string::npos) << s.ToString();
  std::filesystem::remove(path);
}

TEST(ArtifactErrorTest, LoadTruncatedArtifactIsAnErrorNotACrash) {
  // A real fitted artifact cut off mid-state must fail cleanly.
  auto gen = std::move(MakeGenerator("DYMOND")).value();
  {
    graphs::TemporalGraph observed =
        datasets::MakeMimicByName("DBLP", 0.03, 5);
    Rng rng(3);
    gen->Fit(observed, rng);
  }
  std::string path = ArtifactPath("truncated");
  ASSERT_TRUE(SaveArtifact(*gen, "DYMOND", {}, path).ok());
  auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 64u);
  std::filesystem::resize_file(path, size / 2);
  Status s = LoadArtifact(path).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  std::filesystem::remove(path);
}

/// Fits a score-matrix method whose fast-preset state is large enough to
/// ride as a trailing BlockFile, saves it, and returns the path.
std::string SaveBlockBackedArtifact(const std::string& tag) {
  config::ParamMap params;
  params.Override("preset", "fast");
  auto gen = std::move(MakeGenerator("NetGAN", params)).value();
  {
    graphs::TemporalGraph observed =
        datasets::MakeMimicByName("DBLP", 0.03, 5);
    Rng rng(3);
    gen->Fit(observed, rng);
  }
  std::string path = ArtifactPath(tag);
  EXPECT_TRUE(SaveArtifact(*gen, "NetGAN", params, path).ok());
  // The artifact really holds a block container (the corruption tests
  // below poke at its region).
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_NE(bytes.find("tgsimblk"), std::string::npos);
  return path;
}

TEST(ArtifactErrorTest, TruncatedBlockPayloadIsAnErrorNotACrash) {
  std::string path = SaveBlockBackedArtifact("block_truncated");
  auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 256u);
  std::filesystem::resize_file(path, size - 128);
  Status s = LoadArtifact(path).status();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  std::filesystem::remove(path);
}

TEST(ArtifactErrorTest, FlippedBlockByteFailsTheChecksum) {
  std::string path = SaveBlockBackedArtifact("block_flipped");
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    std::string bytes((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
    // First byte of the first block: the first 8-aligned absolute offset
    // past the container's 16-byte header.
    const size_t base = bytes.find("tgsimblk");
    ASSERT_NE(base, std::string::npos);
    const size_t first_block = (base + 16 + 7) / 8 * 8;
    file.clear();
    file.seekp(static_cast<std::streamoff>(first_block));
    char flipped = static_cast<char>(bytes[first_block] ^ 0x4);
    file.write(&flipped, 1);
  }
  Status s = LoadArtifact(path).status();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.ToString();
  std::filesystem::remove(path);
}

TEST(ArtifactErrorTest, WrongBlockContainerVersionIsInvalidArgument) {
  std::string path = SaveBlockBackedArtifact("block_version");
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    std::string bytes((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
    const size_t base = bytes.find("tgsimblk");
    ASSERT_NE(base, std::string::npos);
    const int64_t version = 99;
    file.clear();
    file.seekp(static_cast<std::streamoff>(base + 8));
    file.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  Status s = LoadArtifact(path).status();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
  std::filesystem::remove(path);
}

TEST(ArtifactErrorTest, DefaultSaveStateIsInvalidArgument) {
  // Custom registrations without persistence keep constructing and
  // running; only the artifact path reports Unimplemented-style errors.
  class NoStateGenerator : public baselines::TemporalGraphGenerator {
   public:
    std::string name() const override { return "custom"; }
    void Fit(const graphs::TemporalGraph&, Rng&) override {}
    graphs::TemporalGraph Generate(Rng&) override {
      graphs::TemporalGraph g(1, 1);
      g.Finalize();
      return g;
    }
  };
  NoStateGenerator gen;
  std::stringstream stream;
  EXPECT_EQ(gen.SaveState(stream).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(gen.LoadState(stream).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tgsim::eval
