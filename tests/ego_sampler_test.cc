#include "graph/ego_sampler.h"

#include <map>
#include <set>

#include "datasets/synthetic.h"
#include "graph/bipartite.h"
#include "gtest/gtest.h"

namespace tgsim::graphs {
namespace {

TemporalGraph MakeDenseHub() {
  // Node 0 is a hub at t=1 connected to 1..9; some periphery edges at t=0/2.
  std::vector<TemporalEdge> edges;
  for (NodeId v = 1; v <= 9; ++v) edges.push_back({0, v, 1});
  edges.push_back({1, 2, 0});
  edges.push_back({3, 4, 2});
  edges.push_back({5, 6, 1});
  return TemporalGraph::FromEdges(10, 3, std::move(edges));
}

TEST(EgoSamplerTest, CenterIsFirstNodeAtDepthZero) {
  TemporalGraph g = MakeDenseHub();
  EgoGraphSampler sampler(&g, {.radius = 2, .neighbor_threshold = 5,
                               .time_window = 1});
  Rng rng(1);
  EgoGraph ego = sampler.Sample({0, 1}, rng);
  EXPECT_EQ(ego.nodes[0].node, 0);
  EXPECT_EQ(ego.nodes[0].t, 1);
  EXPECT_EQ(ego.depth[0], 0);
}

TEST(EgoSamplerTest, DepthNeverExceedsRadius) {
  TemporalGraph g = MakeDenseHub();
  for (int radius : {1, 2, 3}) {
    EgoGraphSampler sampler(&g, {.radius = radius, .neighbor_threshold = 4,
                                 .time_window = 2});
    Rng rng(2);
    EgoGraph ego = sampler.Sample({0, 1}, rng);
    for (int d : ego.depth) EXPECT_LE(d, radius);
  }
}

TEST(EgoSamplerTest, TimeWindowBoundsAllNodes) {
  TemporalGraph g = MakeDenseHub();
  EgoGraphSampler sampler(&g, {.radius = 2, .neighbor_threshold = 0,
                               .time_window = 1});
  Rng rng(3);
  EgoGraph ego = sampler.Sample({1, 0}, rng);
  for (const TemporalNodeRef& node : ego.nodes)
    EXPECT_LE(std::abs(node.t - ego.center.t), 1);
}

TEST(EgoSamplerTest, TruncationBoundsChildCount) {
  TemporalGraph g = MakeDenseHub();
  const int th = 3;
  EgoGraphSampler sampler(&g, {.radius = 1, .neighbor_threshold = th,
                               .time_window = 1});
  Rng rng(4);
  EgoGraph ego = sampler.Sample({0, 1}, rng);
  // Hub has 9 same-time neighbors; with-replacement draws give <= th.
  EXPECT_LE(ego.size(), th + 1);
  EXPECT_GE(ego.size(), 2);
}

TEST(EgoSamplerTest, NoTruncationKeepsWholeNeighborhood) {
  TemporalGraph g = MakeDenseHub();
  EgoGraphSampler sampler(&g, {.radius = 1, .neighbor_threshold = 0,
                               .time_window = 0});
  Rng rng(5);
  EgoGraph ego = sampler.Sample({0, 1}, rng);
  EXPECT_EQ(ego.size(), 10);  // Hub + its 9 exact-time neighbors.
}

TEST(EgoSamplerTest, ThresholdOneYieldsChain) {
  // The TGAE-g variant: every hop samples at most one neighbor.
  TemporalGraph g = MakeDenseHub();
  EgoGraphSampler sampler(&g, {.radius = 3, .neighbor_threshold = 1,
                               .time_window = 2});
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    EgoGraph ego = sampler.Sample({0, 1}, rng);
    std::map<int, int> per_depth;
    for (int d : ego.depth) ++per_depth[d];
    for (auto [depth, count] : per_depth) EXPECT_LE(count, 1);
  }
}

TEST(EgoSamplerTest, EdgesConnectSampledNodes) {
  TemporalGraph g = MakeDenseHub();
  EgoGraphSampler sampler(&g, {.radius = 2, .neighbor_threshold = 4,
                               .time_window = 2});
  Rng rng(7);
  EgoGraph ego = sampler.Sample({0, 1}, rng);
  for (auto [p, c] : ego.edges) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, ego.size());
    EXPECT_GE(c, 0);
    EXPECT_LT(c, ego.size());
    EXPECT_NE(p, c);
  }
}

TEST(EgoSamplerTest, DeterministicGivenSeed) {
  TemporalGraph g = MakeDenseHub();
  EgoGraphSampler sampler(&g, {.radius = 2, .neighbor_threshold = 3,
                               .time_window = 1});
  Rng r1(42), r2(42);
  EgoGraph a = sampler.Sample({0, 1}, r1);
  EgoGraph b = sampler.Sample({0, 1}, r2);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i)
    EXPECT_TRUE(a.nodes[static_cast<size_t>(i)] ==
                b.nodes[static_cast<size_t>(i)]);
}

// ---------------------------------------------------------------------------
// InitialNodeSampler.
// ---------------------------------------------------------------------------

TEST(InitialNodeSamplerTest, EnumeratesAllOccurrences) {
  TemporalGraph g = MakeDenseHub();
  InitialNodeSampler sampler(&g, /*time_window=*/1);
  // Occurrences: 0@1, 1@{0,1}, 2@{0,1}, 3@{1,2}, 4@{1,2}, 5@1, 6@1, 7..9@1.
  EXPECT_EQ(sampler.occurrences().size(), 14u);
}

TEST(InitialNodeSamplerTest, DegreeWeightedPrefersHub) {
  TemporalGraph g = MakeDenseHub();
  InitialNodeSampler sampler(&g, /*time_window=*/0);
  Rng rng(8);
  std::vector<TemporalNodeRef> draws = sampler.Sample(3000, rng);
  int hub = 0;
  for (const auto& d : draws) hub += d.node == 0;
  // The hub holds 9 of 24 endpoint slots at exact-time degree weighting.
  EXPECT_GT(hub, 3000 * 9 / 24 / 2);
  EXPECT_LT(hub, 3000 * 9 / 24 * 2);
}

TEST(InitialNodeSamplerTest, UniformVariantIsFlat) {
  TemporalGraph g = MakeDenseHub();
  InitialNodeSampler sampler(&g, 0, /*uniform=*/true);
  Rng rng(9);
  std::vector<TemporalNodeRef> draws = sampler.Sample(7000, rng);
  std::map<std::pair<int, int>, int> counts;
  for (const auto& d : draws) ++counts[{d.node, d.t}];
  // 14 occurrences -> ~500 each.
  for (const auto& [key, c] : counts) {
    EXPECT_GT(c, 250);
    EXPECT_LT(c, 1000);
  }
}

// ---------------------------------------------------------------------------
// BipartiteStack.
// ---------------------------------------------------------------------------

class BipartiteStackTest : public ::testing::TestWithParam<int> {};

TEST_P(BipartiteStackTest, InvariantsHoldOnMimic) {
  const int radius = GetParam();
  graphs::TemporalGraph g = tgsim::datasets::MakeMimicByName("DBLP", 0.05, 3);
  EgoGraphSampler sampler(&g, {.radius = radius, .neighbor_threshold = 5,
                               .time_window = 2});
  InitialNodeSampler initial(&g, 2);
  Rng rng(11);
  std::vector<EgoGraph> egos;
  for (const auto& c : initial.Sample(12, rng))
    egos.push_back(sampler.Sample(c, rng));
  BipartiteStack stack = BuildBipartiteStack(egos, radius);

  ASSERT_EQ(stack.radius(), radius);
  ASSERT_EQ(stack.layer_nodes.size(), static_cast<size_t>(radius) + 1);
  // Centers appear in S_0.
  ASSERT_EQ(stack.center_index.size(), egos.size());
  for (size_t e = 0; e < egos.size(); ++e) {
    EXPECT_TRUE(stack.layer_nodes[0][static_cast<size_t>(
                    stack.center_index[e])] == egos[e].center);
  }
  // S_{l+1} contains every node of S_l (self-message paths).
  for (int l = 0; l < radius; ++l) {
    std::set<std::pair<int, int>> next;
    for (const auto& node : stack.layer_nodes[static_cast<size_t>(l) + 1])
      next.insert({node.node, node.t});
    for (const auto& node : stack.layer_nodes[static_cast<size_t>(l)])
      EXPECT_TRUE(next.count({node.node, node.t}));
    // copy_in_next maps to the same temporal node.
    const auto& copies = stack.copy_in_next[static_cast<size_t>(l)];
    ASSERT_EQ(copies.size(), stack.layer_nodes[static_cast<size_t>(l)].size());
    for (size_t i = 0; i < copies.size(); ++i) {
      EXPECT_TRUE(stack.layer_nodes[static_cast<size_t>(l) + 1]
                                   [static_cast<size_t>(copies[i])] ==
                  stack.layer_nodes[static_cast<size_t>(l)][i]);
    }
  }
  // Edge indices are in range; every target has at least one in-edge
  // (its self-loop).
  for (int l = 0; l < radius; ++l) {
    const BipartiteLayer& layer = stack.layers[static_cast<size_t>(l)];
    std::set<int> targets;
    for (size_t i = 0; i < layer.num_edges(); ++i) {
      EXPECT_GE(layer.src[i], 0);
      EXPECT_LT(layer.src[i],
                static_cast<int>(stack.layer_nodes[static_cast<size_t>(l) + 1]
                                     .size()));
      EXPECT_GE(layer.dst[i], 0);
      EXPECT_LT(layer.dst[i],
                static_cast<int>(
                    stack.layer_nodes[static_cast<size_t>(l)].size()));
      targets.insert(layer.dst[i]);
    }
    EXPECT_EQ(targets.size(),
              stack.layer_nodes[static_cast<size_t>(l)].size());
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, BipartiteStackTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace tgsim::graphs
