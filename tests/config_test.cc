#include <cstdio>
#include <string>
#include <vector>

#include "config/param_map.h"
#include "gtest/gtest.h"

namespace tgsim::config {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---------------------------------------------------------------------------
// ParamMap parsing.
// ---------------------------------------------------------------------------

TEST(ParamMapTest, ParsesTokensAndRoundTripsThroughToString) {
  Result<ParamMap> map = ParamMap::FromTokens(
      {"epochs=5", "learning_rate=0.01", "name=TGAE", "flag=true"});
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map.value().size(), 4u);
  EXPECT_EQ(map.value().ToString(),
            "epochs=5 learning_rate=0.01 name=TGAE flag=true");

  // Round trip: parse the rendering again.
  std::vector<std::string> tokens = {"epochs=5", "learning_rate=0.01",
                                     "name=TGAE", "flag=true"};
  Result<ParamMap> again = ParamMap::FromTokens(tokens);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().ToString(), map.value().ToString());
}

TEST(ParamMapTest, KeysKeepInsertionOrder) {
  Result<ParamMap> map = ParamMap::FromTokens({"z=1", "a=2", "m=3"});
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().Keys(), (std::vector<std::string>{"z", "a", "m"}));
}

TEST(ParamMapTest, RejectsBadTokens) {
  EXPECT_FALSE(ParamMap::FromTokens({"no-equals"}).ok());
  EXPECT_FALSE(ParamMap::FromTokens({"=value"}).ok());
  EXPECT_FALSE(ParamMap::FromTokens({"bad key=1"}).ok());
}

TEST(ParamMapTest, RejectsDuplicateKeys) {
  Result<ParamMap> map = ParamMap::FromTokens({"epochs=5", "epochs=6"});
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(map.status().message().find("duplicate"), std::string::npos);
}

TEST(ParamMapTest, EmptyValueIsAllowedForStrings) {
  Result<ParamMap> map = ParamMap::FromTokens({"note="});
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map.value().GetString("note").value(), "");
}

TEST(ParamMapTest, OverrideReplacesAndAppends) {
  ParamMap map;
  ASSERT_TRUE(map.Set("a", "1").ok());
  map.Override("a", "2");
  map.Override("b", "3");
  EXPECT_EQ(map.ToString(), "a=2 b=3");
  EXPECT_FALSE(map.Set("a", "9").ok());  // Set still rejects duplicates.
}

// ---------------------------------------------------------------------------
// Typed getters.
// ---------------------------------------------------------------------------

TEST(ParamMapTest, TypedGettersParse) {
  Result<ParamMap> map = ParamMap::FromTokens(
      {"i=42", "neg=-7", "d=2.5", "dexp=1e-3", "b1=true", "b0=off",
       "s=hello", "big=3000000000"});
  ASSERT_TRUE(map.ok());
  const ParamMap& m = map.value();
  EXPECT_EQ(m.GetInt("i").value(), 42);
  EXPECT_EQ(m.GetInt("neg").value(), -7);
  EXPECT_DOUBLE_EQ(m.GetDouble("d").value(), 2.5);
  EXPECT_DOUBLE_EQ(m.GetDouble("dexp").value(), 1e-3);
  EXPECT_TRUE(m.GetBool("b1").value());
  EXPECT_FALSE(m.GetBool("b0").value());
  EXPECT_EQ(m.GetString("s").value(), "hello");
  EXPECT_EQ(m.GetInt64("big").value(), 3000000000LL);
  // An int64 beyond int range is an int error but an int64 success.
  EXPECT_FALSE(m.GetInt("big").ok());
}

TEST(ParamMapTest, TypedGettersRejectGarbage) {
  Result<ParamMap> map =
      ParamMap::FromTokens({"i=12x", "d=zzz", "b=maybe", "e="});
  ASSERT_TRUE(map.ok());
  const ParamMap& m = map.value();
  EXPECT_EQ(m.GetInt("i").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(m.GetDouble("d").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(m.GetBool("b").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(m.GetInt("e").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(m.GetInt("missing").status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Config files.
// ---------------------------------------------------------------------------

TEST(ParamMapTest, ParsesConfigFileWithCommentsAndSpacing) {
  std::string path = TempPath("params.cfg");
  FILE* f = fopen(path.c_str(), "w");
  fputs("# fast smoke profile\n"
        "epochs = 5\n"
        "\n"
        "learning_rate=0.02   # inline comment\n"
        "  batch_centers =  16\n",
        f);
  fclose(f);
  Result<ParamMap> map = ParamMap::FromFile(path);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map.value().GetInt("epochs").value(), 5);
  EXPECT_DOUBLE_EQ(map.value().GetDouble("learning_rate").value(), 0.02);
  EXPECT_EQ(map.value().GetInt("batch_centers").value(), 16);
}

TEST(ParamMapTest, ConfigFileErrorsCarryLineNumbers) {
  std::string path = TempPath("bad.cfg");
  FILE* f = fopen(path.c_str(), "w");
  fputs("epochs = 5\nnot an assignment\n", f);
  fclose(f);
  Result<ParamMap> map = ParamMap::FromFile(path);
  ASSERT_FALSE(map.ok());
  EXPECT_NE(map.status().message().find("line 2"), std::string::npos);

  FILE* g = fopen(path.c_str(), "w");
  fputs("epochs = 5\nepochs = 6\n", g);
  fclose(g);
  Result<ParamMap> dup = ParamMap::FromFile(path);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("line 2"), std::string::npos);
}

TEST(ParamMapTest, MissingConfigFileIsIoError) {
  Result<ParamMap> map = ParamMap::FromFile("/nonexistent/params.cfg");
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// ParamBinder: apply + describe modes.
// ---------------------------------------------------------------------------

struct DemoConfig {
  int epochs = 50;
  double rate = 0.01;
  bool verbose = false;
  int64_t budget = 1LL << 40;
  std::string label = "demo";

  void DefineParams(ParamBinder& binder) {
    binder.Bind("epochs", &epochs, "training epochs");
    binder.Bind("rate", &rate, "learning rate");
    binder.Bind("verbose", &verbose, "chatty output");
    binder.Bind("budget", &budget, "byte budget");
    binder.Bind("label", &label, "display label");
  }
  Status ApplyParams(const ParamMap& params);
  static ParamSchema Schema();
};

TGSIM_CONFIG_IMPLEMENT_PARAMS(DemoConfig)

TEST(ParamBinderTest, AppliesOnlyProvidedKeys) {
  DemoConfig cfg;
  Result<ParamMap> map = ParamMap::FromTokens({"epochs=7", "verbose=yes"});
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(cfg.ApplyParams(map.value()).ok());
  EXPECT_EQ(cfg.epochs, 7);
  EXPECT_TRUE(cfg.verbose);
  EXPECT_DOUBLE_EQ(cfg.rate, 0.01);  // Untouched defaults.
  EXPECT_EQ(cfg.label, "demo");
}

TEST(ParamBinderTest, UnknownKeyFailsWithSuggestion) {
  DemoConfig cfg;
  Result<ParamMap> map = ParamMap::FromTokens({"epoch=7"});
  ASSERT_TRUE(map.ok());
  Status s = cfg.ApplyParams(map.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("did you mean 'epochs'"), std::string::npos)
      << s.message();
}

TEST(ParamBinderTest, TypeErrorsSurfaceTheKey) {
  DemoConfig cfg;
  Result<ParamMap> map = ParamMap::FromTokens({"rate=fast"});
  ASSERT_TRUE(map.ok());
  Status s = cfg.ApplyParams(map.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("'rate'"), std::string::npos);
}

TEST(ParamBinderTest, SchemaRendersTypesAndDefaults) {
  ParamSchema schema = DemoConfig::Schema();
  ASSERT_EQ(schema.specs.size(), 5u);
  const ParamSpec* epochs = schema.Find("epochs");
  ASSERT_NE(epochs, nullptr);
  EXPECT_EQ(epochs->type, ParamType::kInt);
  EXPECT_EQ(epochs->default_value, "50");
  const ParamSpec* rate = schema.Find("rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->type, ParamType::kDouble);
  EXPECT_EQ(rate->default_value, "0.01");
  const ParamSpec* verbose = schema.Find("verbose");
  ASSERT_NE(verbose, nullptr);
  EXPECT_EQ(verbose->type, ParamType::kBool);
  EXPECT_EQ(verbose->default_value, "false");
  std::string description = schema.Describe();
  EXPECT_NE(description.find("epochs (int, default=50)"), std::string::npos)
      << description;
  EXPECT_NE(description.find("training epochs"), std::string::npos);
}

TEST(ParamBinderTest, SchemaDefaultsRoundTripThroughApply) {
  // Feeding every rendered default back through ApplyParams must be a
  // no-op success — the contract the registry sweep test relies on.
  ParamSchema schema = DemoConfig::Schema();
  std::vector<std::string> tokens;
  for (const ParamSpec& spec : schema.specs)
    tokens.push_back(spec.key + "=" + spec.default_value);
  Result<ParamMap> map = ParamMap::FromTokens(tokens);
  ASSERT_TRUE(map.ok());
  DemoConfig cfg;
  ASSERT_TRUE(cfg.ApplyParams(map.value()).ok());
  EXPECT_EQ(cfg.epochs, 50);
  EXPECT_DOUBLE_EQ(cfg.rate, 0.01);
  EXPECT_EQ(cfg.budget, 1LL << 40);
}

// ---------------------------------------------------------------------------
// NearestName.
// ---------------------------------------------------------------------------

TEST(NearestNameTest, FindsCloseCandidatesCaseInsensitively) {
  std::vector<std::string> names = {"TGAE", "TIGGER", "NetGAN"};
  EXPECT_EQ(NearestName("TGEA", names), "TGAE");
  EXPECT_EQ(NearestName("netgan", names), "NetGAN");
  EXPECT_EQ(NearestName("tigger", names), "TIGGER");
}

TEST(NearestNameTest, GivesUpBeyondDistanceThree) {
  std::vector<std::string> names = {"TGAE"};
  EXPECT_EQ(NearestName("CompletelyDifferent", names), "");
  EXPECT_EQ(NearestName("x", {}), "");
}

}  // namespace
}  // namespace tgsim::config
