#include "nn/tensor.h"

#include <cmath>
#include <utility>

#include "common/memory_tracker.h"
#include "gtest/gtest.h"

namespace tgsim::nn {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rows(), 0);
  EXPECT_EQ(t.cols(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(3, 4);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(t.at(r, c), 0.0);
}

TEST(TensorTest, FillConstructor) {
  Tensor t(2, 2, 7.5);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 7.5);
}

TEST(TensorTest, VectorConstructorIsRowMajor) {
  Tensor t(2, 3, std::vector<Scalar>{1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(t.at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 4.0);
}

TEST(TensorTest, CopySemantics) {
  Tensor a(2, 2, 1.0);
  Tensor b = a;
  b.at(0, 0) = 9.0;
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 9.0);
}

TEST(TensorTest, MoveSemantics) {
  Tensor a(2, 2, 3.0);
  Tensor b = std::move(a);
  EXPECT_EQ(b.rows(), 2);
  EXPECT_DOUBLE_EQ(b.at(1, 1), 3.0);
  EXPECT_EQ(a.rows(), 0);  // NOLINT(bugprone-use-after-move): documented.
}

TEST(TensorTest, CopyAssignReshapes) {
  Tensor a(1, 2, 4.0);
  Tensor b(5, 5);
  b = a;
  EXPECT_EQ(b.rows(), 1);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_DOUBLE_EQ(b.at(0, 1), 4.0);
}

TEST(TensorTest, SelfAssignIsSafe) {
  Tensor a(2, 2, 5.0);
  Tensor& ref = a;
  a = ref;
  EXPECT_DOUBLE_EQ(a.at(0, 0), 5.0);
}

TEST(TensorTest, AllocationsAreTracked) {
  MemoryTracker& g = MemoryTracker::Global();
  int64_t before = g.CurrentBytes();
  {
    Tensor t(100, 100);
    EXPECT_GE(g.CurrentBytes(),
              before + 100 * 100 * static_cast<int64_t>(sizeof(Scalar)));
  }
  EXPECT_EQ(g.CurrentBytes(), before);
}

TEST(TensorTest, IdentityFactory) {
  Tensor i = Tensor::Identity(3);
  EXPECT_DOUBLE_EQ(i.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i.Sum(), 3.0);
}

TEST(TensorTest, RandnDeterministicWithSeed) {
  Rng a(5), b(5);
  Tensor x = Tensor::Randn(a, 4, 4);
  Tensor y = Tensor::Randn(b, 4, 4);
  EXPECT_DOUBLE_EQ((x - y).MaxAbs(), 0.0);
}

TEST(TensorTest, RandUniformRespectsBounds) {
  Rng rng(6);
  Tensor x = Tensor::RandUniform(rng, 10, 10, -2.0, 3.0);
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x.data()[i], -2.0);
    EXPECT_LT(x.data()[i], 3.0);
  }
}

TEST(TensorTest, GlorotUniformScalesWithFans) {
  Rng rng(7);
  Tensor x = Tensor::GlorotUniform(rng, 100, 100);
  double limit = std::sqrt(6.0 / 200.0);
  EXPECT_LE(x.MaxAbs(), limit + 1e-12);
}

TEST(TensorTest, ArithmeticOps) {
  Tensor a(2, 2, std::vector<Scalar>{1, 2, 3, 4});
  Tensor b(2, 2, std::vector<Scalar>{5, 6, 7, 8});
  EXPECT_DOUBLE_EQ((a + b).at(0, 0), 6.0);
  EXPECT_DOUBLE_EQ((b - a).at(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.CwiseMul(b).at(1, 0), 21.0);
  EXPECT_DOUBLE_EQ((a * 2.0).at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ((2.0 * a).at(0, 1), 4.0);
}

TEST(TensorTest, InPlaceOps) {
  Tensor a(1, 3, std::vector<Scalar>{1, 2, 3});
  Tensor b(1, 3, std::vector<Scalar>{10, 20, 30});
  a.AddInPlace(b);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 33.0);
  a.Axpy(-1.0, b);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 3.0);
  a.ScaleInPlace(3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
}

TEST(TensorTest, AddRowVectorBroadcasts) {
  Tensor a(2, 3, 1.0);
  Tensor row(1, 3, std::vector<Scalar>{1, 2, 3});
  a.AddRowVectorInPlace(row);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 4.0);
}

TEST(TensorTest, TransposeRoundTrips) {
  Rng rng(8);
  Tensor a = Tensor::Randn(rng, 3, 5);
  Tensor tt = a.Transpose().Transpose();
  EXPECT_DOUBLE_EQ((a - tt).MaxAbs(), 0.0);
}

TEST(TensorTest, MatMulIdentity) {
  Rng rng(9);
  Tensor a = Tensor::Randn(rng, 4, 4);
  Tensor out = a.MatMul(Tensor::Identity(4));
  EXPECT_NEAR((a - out).MaxAbs(), 0.0, 1e-12);
}

TEST(TensorTest, MatMulAssociativity) {
  Rng rng(10);
  Tensor a = Tensor::Randn(rng, 3, 4);
  Tensor b = Tensor::Randn(rng, 4, 5);
  Tensor c = Tensor::Randn(rng, 5, 2);
  Tensor left = a.MatMul(b).MatMul(c);
  Tensor right = a.MatMul(b.MatMul(c));
  EXPECT_NEAR((left - right).MaxAbs(), 0.0, 1e-9);
}

TEST(TensorTest, GatherRowsSelects) {
  Tensor a(3, 2, std::vector<Scalar>{1, 2, 3, 4, 5, 6});
  Tensor g = a.GatherRows({2, 0});
  EXPECT_DOUBLE_EQ(g.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.at(1, 1), 2.0);
}

TEST(TensorTest, Reductions) {
  Tensor a(2, 2, std::vector<Scalar>{1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(a.Sum(), -2.0);
  EXPECT_DOUBLE_EQ(a.Mean(), -0.5);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(a.Dot(a), 30.0);
  EXPECT_DOUBLE_EQ(a.Norm(), std::sqrt(30.0));
}

TEST(TensorTest, ToStringMentionsShape) {
  Tensor a(2, 2);
  EXPECT_NE(a.ToString().find("2x2"), std::string::npos);
}

}  // namespace
}  // namespace tgsim::nn
