#include <set>
#include <string>

#include "baselines/er_ba.h"
#include "baselines/score_sampling.h"
#include "baselines/taggen.h"
#include "baselines/tggan.h"
#include "baselines/tigger.h"
#include "baselines/walks.h"
#include "datasets/synthetic.h"
#include "common/check.h"
#include "config/param_map.h"
#include "eval/registry.h"
#include "gtest/gtest.h"
#include "metrics/graph_stats.h"

namespace tgsim::baselines {
namespace {

graphs::TemporalGraph Observed() {
  static const graphs::TemporalGraph* kGraph = new graphs::TemporalGraph(
      datasets::MakeMimicByName("DBLP", 0.05, 21));
  return *kGraph;
}

/// Registry construction with the smoke-test preset.
std::unique_ptr<TemporalGraphGenerator> MakeFast(const std::string& name) {
  config::ParamMap params;
  params.Override("preset", "fast");
  auto gen = eval::MakeGenerator(name, params);
  TGSIM_CHECK(gen.ok());
  return std::move(gen).value();
}

// ---------------------------------------------------------------------------
// Generator contract, parameterized over every method in the registry.
// ---------------------------------------------------------------------------

class GeneratorContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratorContractTest, FitGenerateMatchesObservedShape) {
  graphs::TemporalGraph observed = Observed();
  auto gen = MakeFast(GetParam());
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->name(), GetParam());

  Rng rng(17);
  gen->Fit(observed, rng);
  graphs::TemporalGraph out = gen->Generate(rng);

  EXPECT_EQ(out.num_nodes(), observed.num_nodes());
  EXPECT_EQ(out.num_timestamps(), observed.num_timestamps());
  EXPECT_EQ(out.num_edges(), observed.num_edges());
  for (const graphs::TemporalEdge& e : out.edges()) {
    EXPECT_GE(e.u, 0);
    EXPECT_LT(e.u, out.num_nodes());
    EXPECT_GE(e.v, 0);
    EXPECT_LT(e.v, out.num_nodes());
    EXPECT_GE(e.t, 0);
    EXPECT_LT(e.t, out.num_timestamps());
  }
}

TEST_P(GeneratorContractTest, DeterministicForSameSeed) {
  graphs::TemporalGraph observed = Observed();
  auto make = [&](uint64_t seed) {
    auto gen = MakeFast(GetParam());
    Rng rng(seed);
    gen->Fit(observed, rng);
    return gen->Generate(rng);
  };
  graphs::TemporalGraph a = make(5);
  graphs::TemporalGraph b = make(5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.edges().size(); ++i)
    EXPECT_TRUE(a.edges()[i] == b.edges()[i]) << GetParam() << " edge " << i;
}

TEST_P(GeneratorContractTest, PaperMemoryModelIsMonotoneInScale) {
  auto gen = MakeFast(GetParam());
  int64_t small = gen->EstimatePaperMemoryBytes(1000, 10000, 20);
  int64_t large = gen->EstimatePaperMemoryBytes(100000, 1000000, 200);
  EXPECT_GE(large, small);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, GeneratorContractTest,
    ::testing::ValuesIn(eval::AllMethodNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// ---------------------------------------------------------------------------
// Method-specific behaviour.
// ---------------------------------------------------------------------------

TEST(ErdosRenyiTest, PerTimestampCountsMatchExactly) {
  graphs::TemporalGraph observed = Observed();
  ErdosRenyiGenerator gen;
  Rng rng(3);
  gen.Fit(observed, rng);
  graphs::TemporalGraph out = gen.Generate(rng);
  EXPECT_EQ(out.EdgesPerTimestamp(), observed.EdgesPerTimestamp());
  EXPECT_FALSE(gen.is_learning_based());
}

TEST(ErdosRenyiTest, NoSelfLoops) {
  graphs::TemporalGraph observed = Observed();
  ErdosRenyiGenerator gen;
  Rng rng(4);
  gen.Fit(observed, rng);
  // Bind the generated graph: iterating edges() of a temporary dangles.
  graphs::TemporalGraph out = gen.Generate(rng);
  for (const auto& e : out.edges()) EXPECT_NE(e.u, e.v);
}

TEST(BarabasiAlbertTest, ProducesHeavierTailThanErdosRenyi) {
  graphs::TemporalGraph observed = Observed();
  Rng rng(5);
  ErdosRenyiGenerator er;
  er.Fit(observed, rng);
  graphs::TemporalGraph er_out = er.Generate(rng);
  BarabasiAlbertGenerator ba;
  ba.Fit(observed, rng);
  graphs::TemporalGraph ba_out = ba.Generate(rng);
  auto max_degree = [](const graphs::TemporalGraph& g) {
    graphs::StaticGraph s = g.SnapshotUpTo(g.num_timestamps() - 1);
    int mx = 0;
    for (int d : s.Degrees()) mx = std::max(mx, d);
    return mx;
  };
  EXPECT_GT(max_degree(ba_out), max_degree(er_out));
}

TEST(TagGenTest, TrainingLossIsFinite) {
  graphs::TemporalGraph observed = Observed();
  TagGenConfig cfg;
  cfg.epochs = 3;
  cfg.walks_per_epoch = 30;
  TagGenGenerator gen(cfg);
  Rng rng(6);
  gen.Fit(observed, rng);
  EXPECT_TRUE(std::isfinite(gen.last_epoch_loss()));
  EXPECT_GT(gen.last_epoch_loss(), 0.0);
}

TEST(TiggerTest, TrainingLossDecreases) {
  graphs::TemporalGraph observed = Observed();
  Rng rng(7);
  TiggerConfig short_cfg;
  short_cfg.epochs = 1;
  short_cfg.walks_per_epoch = 60;
  TiggerGenerator short_run(short_cfg);
  short_run.Fit(observed, rng);

  Rng rng2(7);
  TiggerConfig long_cfg = short_cfg;
  long_cfg.epochs = 12;
  TiggerGenerator long_run(long_cfg);
  long_run.Fit(observed, rng2);
  EXPECT_LT(long_run.last_epoch_loss(), short_run.last_epoch_loss());
}

TEST(TgganTest, AdversarialLossesAreFinite) {
  graphs::TemporalGraph observed = Observed();
  TgganConfig cfg;
  cfg.iterations = 5;
  cfg.batch_walks = 8;
  TgganGenerator gen(cfg);
  Rng rng(8);
  gen.Fit(observed, rng);
  EXPECT_TRUE(std::isfinite(gen.last_d_loss()));
  EXPECT_TRUE(std::isfinite(gen.last_g_loss()));
  EXPECT_GT(gen.last_d_loss(), 0.0);
}

// ---------------------------------------------------------------------------
// Temporal walks.
// ---------------------------------------------------------------------------

TEST(TemporalWalkTest, StepsRespectTimeWindowOfPreviousStep) {
  graphs::TemporalGraph observed = Observed();
  const int window = 2;
  TemporalWalkSampler sampler(&observed, window);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    TemporalWalk w = sampler.Sample(6, rng);
    ASSERT_GE(w.length(), 1);
    for (size_t j = 1; j < w.steps.size(); ++j)
      EXPECT_LE(std::abs(w.steps[j].t - w.steps[j - 1].t), window);
  }
}

TEST(TemporalWalkTest, ConsecutiveStepsAreObservedEdges) {
  graphs::TemporalGraph observed = Observed();
  TemporalWalkSampler sampler(&observed, 2);
  Rng rng(10);
  std::set<std::tuple<int, int, int>> undirected;
  for (const auto& e : observed.edges()) {
    undirected.insert({std::min(e.u, e.v), std::max(e.u, e.v), e.t});
  }
  for (int i = 0; i < 30; ++i) {
    TemporalWalk w = sampler.Sample(6, rng);
    for (size_t j = 1; j < w.steps.size(); ++j) {
      int a = std::min(w.steps[j - 1].node, w.steps[j].node);
      int b = std::max(w.steps[j - 1].node, w.steps[j].node);
      EXPECT_TRUE(undirected.count({a, b, w.steps[j].t}))
          << "step " << j << " is not an observed temporal edge";
    }
  }
}

TEST(AssembleFromWalksTest, MeetsEdgeBudgetExactly) {
  std::vector<TemporalWalk> walks;
  TemporalWalk w;
  w.steps = {{0, 0}, {1, 1}, {2, 1}};
  walks.push_back(w);
  Rng rng(11);
  graphs::TemporalGraph g = AssembleFromWalks(walks, 5, 3, 10, rng);
  EXPECT_EQ(g.num_edges(), 10);  // 2 from the walk + 8 filler.
}

TEST(AssembleFromWalksTest, SkipsSelfTransitions) {
  std::vector<TemporalWalk> walks;
  TemporalWalk w;
  w.steps = {{0, 0}, {0, 1}, {1, 1}};
  walks.push_back(w);
  Rng rng(12);
  graphs::TemporalGraph g = AssembleFromWalks(walks, 4, 2, 1, rng);
  ASSERT_EQ(g.num_edges(), 1);
  EXPECT_NE(g.edges()[0].u, g.edges()[0].v);
}

// ---------------------------------------------------------------------------
// Score sampling.
// ---------------------------------------------------------------------------

TEST(ScoreSamplingTest, ProducesRequestedDistinctEdges) {
  nn::Tensor scores(4, 4, 1.0);
  Rng rng(13);
  std::vector<graphs::TemporalEdge> out;
  SampleEdgesFromScores(scores, 6, 2, rng, &out);
  EXPECT_EQ(out.size(), 6u);
  std::set<std::pair<int, int>> distinct;
  for (const auto& e : out) {
    EXPECT_NE(e.u, e.v);
    EXPECT_EQ(e.t, 2);
    distinct.insert({e.u, e.v});
  }
  EXPECT_EQ(distinct.size(), 6u);
}

TEST(ScoreSamplingTest, FollowsScoreMass) {
  nn::Tensor scores(3, 3);
  scores.at(0, 1) = 100.0;
  scores.at(1, 2) = 1.0;
  Rng rng(14);
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<graphs::TemporalEdge> out;
    SampleEdgesFromScores(scores, 1, 0, rng, &out);
    hits += out[0].u == 0 && out[0].v == 1;
  }
  EXPECT_GT(hits, 180);
}

TEST(ScoreSamplingTest, ZeroMassFallsBackToUniform) {
  nn::Tensor scores(5, 5);
  Rng rng(15);
  std::vector<graphs::TemporalEdge> out;
  SampleEdgesFromScores(scores, 4, 1, rng, &out);
  EXPECT_EQ(out.size(), 4u);
}

TEST(ScoreSamplingTest, RequestBeyondPairSpaceEmitsDuplicates) {
  // 3 nodes -> only 6 distinct ordered pairs; asking for 10 edges must
  // terminate and fill the remainder with duplicates (regression test for
  // an infinite fill loop on dense snapshots).
  nn::Tensor scores(3, 3, 1.0);
  Rng rng(16);
  std::vector<graphs::TemporalEdge> out;
  SampleEdgesFromScores(scores, 10, 0, rng, &out);
  EXPECT_EQ(out.size(), 10u);
  for (const auto& e : out) EXPECT_NE(e.u, e.v);
}

TEST(NormalizedAdjacencyTest, RowsOfRegularGraphAreStochasticLike) {
  // For a cycle (2-regular), D^{-1/2}(A+I)D^{-1/2} rows sum to 1.
  nn::Tensor a(4, 4);
  for (int i = 0; i < 4; ++i) {
    a.at(i, (i + 1) % 4) = 1.0;
    a.at((i + 1) % 4, i) = 1.0;
  }
  nn::Tensor norm = NormalizedAdjacency(a);
  for (int r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 4; ++c) sum += norm.at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DenseAdjacencyTest, SymmetricBinaryNoDiagonal) {
  std::vector<graphs::TemporalEdge> edges = {{0, 1, 0}, {1, 0, 0}, {2, 2, 0}};
  nn::Tensor a = DenseAdjacency(3, edges);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 0.0);
}

}  // namespace
}  // namespace tgsim::baselines
