#include <algorithm>
#include <set>
#include <vector>

#include "graph/static_graph.h"
#include "graph/temporal_graph.h"
#include "gtest/gtest.h"

namespace tgsim::graphs {
namespace {

TemporalGraph MakeToyGraph() {
  // 5 nodes, 3 timestamps:
  // t=0: 0->1, 1->2
  // t=1: 0->2, 3->4
  // t=2: 2->0, 0->1 (repeat pair)
  return TemporalGraph::FromEdges(
      5, 3,
      {{0, 1, 0}, {1, 2, 0}, {0, 2, 1}, {3, 4, 1}, {2, 0, 2}, {0, 1, 2}});
}

TEST(TemporalGraphTest, BasicCounts) {
  TemporalGraph g = MakeToyGraph();
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_timestamps(), 3);
  EXPECT_EQ(g.num_edges(), 6);
}

TEST(TemporalGraphTest, EdgesAreSortedAfterFinalize) {
  TemporalGraph g(3, 2);
  g.AddEdge(2, 1, 1);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 0);
  g.Finalize();
  const auto& e = g.edges();
  EXPECT_TRUE(std::is_sorted(e.begin(), e.end()));
}

TEST(TemporalGraphTest, EdgesAtSlicesByTimestamp) {
  TemporalGraph g = MakeToyGraph();
  EXPECT_EQ(g.EdgesAt(0).size(), 2u);
  EXPECT_EQ(g.EdgesAt(1).size(), 2u);
  EXPECT_EQ(g.EdgesAt(2).size(), 2u);
  EXPECT_EQ(g.EdgesAt(0)[0].u, 0);
  // Within a timestamp, edges are sorted by (u, v): (0,1,2) then (2,0,2).
  EXPECT_EQ(g.EdgesAt(2)[0].u, 0);
  EXPECT_EQ(g.EdgesAt(2)[1].u, 2);
}

TEST(TemporalGraphTest, EdgesPerTimestamp) {
  TemporalGraph g = MakeToyGraph();
  std::vector<int64_t> counts = g.EdgesPerTimestamp();
  EXPECT_EQ(counts, (std::vector<int64_t>{2, 2, 2}));
}

TEST(TemporalGraphTest, NeighborsAreBidirectionalAndTimeSorted) {
  TemporalGraph g = MakeToyGraph();
  auto nbrs = g.Neighbors(0);
  // Node 0 touches: (1,0) out, (2,1) out, (2,2) in, (1,2) out.
  ASSERT_EQ(nbrs.size(), 4u);
  for (size_t i = 1; i < nbrs.size(); ++i)
    EXPECT_LE(nbrs[i - 1].t, nbrs[i].t);
}

TEST(TemporalGraphTest, OutNeighborsAreDirected) {
  TemporalGraph g = MakeToyGraph();
  auto out0 = g.OutNeighbors(0);
  EXPECT_EQ(out0.size(), 3u);  // (1,0), (2,1), (1,2).
  auto out4 = g.OutNeighbors(4);
  EXPECT_EQ(out4.size(), 0u);  // Node 4 only receives.
}

TEST(TemporalGraphTest, OutNeighborhoodWindow) {
  TemporalGraph g = MakeToyGraph();
  auto w0 = g.OutNeighborhood(0, 0, 0);
  ASSERT_EQ(w0.size(), 1u);
  EXPECT_EQ(w0[0].node, 1);
  auto w2 = g.OutNeighborhood(0, 1, 1);
  EXPECT_EQ(w2.size(), 3u);  // All of node 0's out-edges are within +-1 of 1.
}

TEST(TemporalGraphTest, TemporalNeighborhoodRespectsWindow) {
  TemporalGraph g = MakeToyGraph();
  EXPECT_EQ(g.TemporalNeighborhood(0, 0, 0).size(), 1u);
  EXPECT_EQ(g.TemporalNeighborhood(0, 0, 1).size(), 2u);
  EXPECT_EQ(g.TemporalNeighborhood(0, 0, 2).size(), 4u);
  EXPECT_EQ(g.TemporalNeighborhood(3, 1, 0).size(), 1u);
  EXPECT_EQ(g.TemporalNeighborhood(3, 0, 0).size(), 0u);
}

TEST(TemporalGraphTest, TemporalDegreeMatchesNeighborhoodSize) {
  TemporalGraph g = MakeToyGraph();
  for (NodeId u = 0; u < 5; ++u)
    for (Timestamp t = 0; t < 3; ++t)
      for (int w = 0; w <= 2; ++w)
        EXPECT_EQ(g.TemporalDegree(u, t, w),
                  static_cast<int64_t>(g.TemporalNeighborhood(u, t, w).size()));
}

TEST(TemporalGraphTest, NumTemporalNodesCountsDistinctOccurrences) {
  TemporalGraph g = MakeToyGraph();
  // Occurrences: 0@{0,1,2}, 1@{0,2}, 2@{0,1,2}, 3@{1}, 4@{1} = 10.
  EXPECT_EQ(g.NumTemporalNodes(), 10);
}

TEST(TemporalGraphTest, SnapshotUpToAccumulates) {
  TemporalGraph g = MakeToyGraph();
  StaticGraph s0 = g.SnapshotUpTo(0);
  EXPECT_EQ(s0.num_edges(), 2);
  StaticGraph s2 = g.SnapshotUpTo(2);
  // {0,1},{1,2},{0,2},{3,4},{0,2}dup,{0,1}dup -> 4 simple edges.
  EXPECT_EQ(s2.num_edges(), 4);
}

TEST(TemporalGraphTest, SnapshotAtIsSingleTimestamp) {
  TemporalGraph g = MakeToyGraph();
  EXPECT_EQ(g.SnapshotAt(1).num_edges(), 2);
}

TEST(TemporalGraphTest, SelfLoopCountedOnceInAdjacency) {
  TemporalGraph g = TemporalGraph::FromEdges(2, 1, {{0, 0, 0}, {0, 1, 0}});
  EXPECT_EQ(g.Neighbors(0).size(), 2u);  // Self-loop once + neighbor 1.
}

TEST(TemporalGraphDeathTest, QueriesRequireFinalize) {
  TemporalGraph g(2, 2);
  g.AddEdge(0, 1, 0);
  EXPECT_DEATH(g.EdgesAt(0), "CHECK failed");
}

TEST(TemporalGraphDeathTest, AddAfterFinalizeAborts) {
  TemporalGraph g(2, 2);
  g.Finalize();
  EXPECT_DEATH(g.AddEdge(0, 1, 0), "CHECK failed");
}

TEST(TemporalGraphDeathTest, OutOfRangeEdgeAborts) {
  EXPECT_DEATH(TemporalGraph::FromEdges(2, 2, {{0, 5, 0}}), "CHECK failed");
  EXPECT_DEATH(TemporalGraph::FromEdges(2, 2, {{0, 1, 7}}), "CHECK failed");
}

// ---------------------------------------------------------------------------
// StaticGraph.
// ---------------------------------------------------------------------------

TEST(StaticGraphTest, DedupsAndDropsSelfLoops) {
  StaticGraph g = StaticGraph::FromEdgeList(
      4, {{0, 1}, {1, 0}, {2, 2}, {1, 2}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Degree(2), 1);
  EXPECT_EQ(g.Degree(3), 0);
}

TEST(StaticGraphTest, NeighborsAreSorted) {
  StaticGraph g =
      StaticGraph::FromEdgeList(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  auto nbrs = g.Neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(StaticGraphTest, HasEdgeIsSymmetric) {
  StaticGraph g = StaticGraph::FromEdgeList(3, {{0, 1}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(StaticGraphTest, ConnectedComponents) {
  StaticGraph g =
      StaticGraph::FromEdgeList(6, {{0, 1}, {1, 2}, {3, 4}});
  int count = 0;
  std::vector<int> comp = g.ConnectedComponents(&count);
  EXPECT_EQ(count, 3);  // {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[5]);
}

TEST(StaticGraphTest, EmptyGraph) {
  StaticGraph g = StaticGraph::FromEdgeList(3, {});
  EXPECT_EQ(g.num_edges(), 0);
  int count = 0;
  g.ConnectedComponents(&count);
  EXPECT_EQ(count, 3);
}

TEST(StaticGraphTest, DegreesMatchAccessor) {
  StaticGraph g = StaticGraph::FromEdgeList(4, {{0, 1}, {0, 2}, {0, 3}});
  std::vector<int> d = g.Degrees();
  EXPECT_EQ(d, (std::vector<int>{3, 1, 1, 1}));
}

// ---------------------------------------------------------------------------
// TemporalNodeRefHash: collision smoke over a dense node x time grid.
// ---------------------------------------------------------------------------

TEST(TemporalNodeRefHashTest, NoCollisionsOnDenseGrid) {
  // The splitmix64 finalizer is a bijection on the packed (node, t) word,
  // so every full 64-bit hash over the grid must be distinct.
  constexpr int kNodes = 200, kTimes = 200;
  TemporalNodeRefHash hash;
  std::set<size_t> seen;
  for (NodeId u = 0; u < kNodes; ++u)
    for (Timestamp t = 0; t < kTimes; ++t)
      seen.insert(hash(TemporalNodeRef{u, t}));
  EXPECT_EQ(seen.size(), static_cast<size_t>(kNodes) * kTimes);
}

TEST(TemporalNodeRefHashTest, LowBitsSpreadAcrossBuckets) {
  // Power-of-two hash tables use the low bits; a dense grid must fill
  // every small bucket space. The pre-splitmix multiply-based hash failed
  // exactly this: consecutive t at fixed node stepped buckets linearly.
  constexpr int kNodes = 64, kTimes = 64, kBuckets = 256;
  TemporalNodeRefHash hash;
  std::set<size_t> buckets;
  for (NodeId u = 0; u < kNodes; ++u)
    for (Timestamp t = 0; t < kTimes; ++t)
      buckets.insert(hash(TemporalNodeRef{u, t}) % kBuckets);
  EXPECT_EQ(buckets.size(), static_cast<size_t>(kBuckets));
}

}  // namespace
}  // namespace tgsim::graphs
