#include "metrics/motifs.h"

#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace tgsim::metrics {
namespace {

TEST(MotifEncodingTest, EncodeIsInjectiveOnLabels) {
  EXPECT_NE(EncodeMotif(0, 1, 0, 1, 0, 1), EncodeMotif(0, 1, 1, 0, 0, 1));
  EXPECT_NE(EncodeMotif(0, 1, 0, 2, 0, 1), EncodeMotif(0, 1, 0, 2, 0, 2));
  EXPECT_EQ(EncodeMotif(0, 1, 1, 2, 2, 0), EncodeMotif(0, 1, 1, 2, 2, 0));
}

TEST(MotifCensusTest, SingleTriangleYieldsOneMotif) {
  // Time-ordered triangle 0->1, 1->2, 2->0 within delta.
  graphs::TemporalGraph g = graphs::TemporalGraph::FromEdges(
      3, 3, {{0, 1, 0}, {1, 2, 1}, {2, 0, 2}});
  MotifCensus c = CountTemporalMotifs(g, /*delta=*/2);
  EXPECT_EQ(c.total, 1);
  ASSERT_EQ(c.counts.size(), 1u);
  EXPECT_EQ(c.counts.begin()->first, EncodeMotif(0, 1, 1, 2, 2, 0));
}

TEST(MotifCensusTest, DeltaWindowExcludesSlowMotifs) {
  graphs::TemporalGraph g = graphs::TemporalGraph::FromEdges(
      3, 10, {{0, 1, 0}, {1, 2, 4}, {2, 0, 9}});
  EXPECT_EQ(CountTemporalMotifs(g, 8).total, 0);
  EXPECT_EQ(CountTemporalMotifs(g, 9).total, 1);
}

TEST(MotifCensusTest, TwoNodeBounceIsCounted) {
  // 0->1, 1->0, 0->1: a 2-node 3-edge motif.
  graphs::TemporalGraph g = graphs::TemporalGraph::FromEdges(
      2, 3, {{0, 1, 0}, {1, 0, 1}, {0, 1, 2}});
  MotifCensus c = CountTemporalMotifs(g, 2);
  EXPECT_EQ(c.total, 1);
  EXPECT_EQ(c.counts.begin()->first, EncodeMotif(0, 1, 1, 0, 0, 1));
}

TEST(MotifCensusTest, FourNodeSpansAreExcluded) {
  graphs::TemporalGraph g = graphs::TemporalGraph::FromEdges(
      6, 3, {{0, 1, 0}, {2, 3, 1}, {4, 5, 2}});
  EXPECT_EQ(CountTemporalMotifs(g, 3).total, 0);
}

TEST(MotifCensusTest, ThreeLeafStarSpansFourNodesAndIsExcluded) {
  // Hub firing at three distinct leaves spans 4 nodes — not a {2,3}-node
  // motif (Paranjape et al. count only <= 3-node patterns).
  graphs::TemporalGraph g = graphs::TemporalGraph::FromEdges(
      4, 3, {{0, 1, 0}, {0, 2, 1}, {0, 3, 2}});
  EXPECT_EQ(CountTemporalMotifs(g, 2).total, 0);
}

TEST(MotifCensusTest, WedgeWithRepeatIsCounted) {
  // Hub 0 fires at 1, then 2, then 1 again: 3 nodes -> one wedge motif.
  graphs::TemporalGraph g = graphs::TemporalGraph::FromEdges(
      3, 3, {{0, 1, 0}, {0, 2, 1}, {0, 1, 2}});
  MotifCensus c = CountTemporalMotifs(g, 2);
  EXPECT_EQ(c.total, 1);
  EXPECT_EQ(c.counts.begin()->first, EncodeMotif(0, 1, 0, 2, 0, 1));
}

TEST(MotifCensusTest, MaxTriplesCapStopsEarly) {
  Rng rng(1);
  std::vector<graphs::TemporalEdge> edges;
  for (int i = 0; i < 60; ++i)
    edges.push_back({static_cast<graphs::NodeId>(rng.UniformInt(5)),
                     static_cast<graphs::NodeId>(rng.UniformInt(5)),
                     static_cast<graphs::Timestamp>(rng.UniformInt(4))});
  graphs::TemporalGraph g =
      graphs::TemporalGraph::FromEdges(5, 4, std::move(edges));
  MotifCensus capped = CountTemporalMotifs(g, 4, /*max_triples=*/10);
  EXPECT_EQ(capped.total, 10);
}

// Property: the windowed enumerator matches brute force on random graphs.
class MotifCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(MotifCrossCheckTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int n = 6, t_count = 5;
  std::vector<graphs::TemporalEdge> edges;
  int m = 10 + GetParam() * 3;
  for (int i = 0; i < m; ++i) {
    auto u = static_cast<graphs::NodeId>(rng.UniformInt(n));
    auto v = static_cast<graphs::NodeId>(rng.UniformInt(n));
    if (u == v) v = static_cast<graphs::NodeId>((v + 1) % n);
    edges.push_back({u, v, static_cast<graphs::Timestamp>(
                               rng.UniformInt(t_count))});
  }
  graphs::TemporalGraph g =
      graphs::TemporalGraph::FromEdges(n, t_count, std::move(edges));
  for (int delta : {1, 2, 4}) {
    MotifCensus fast = CountTemporalMotifs(g, delta);
    MotifCensus slow = CountTemporalMotifsBruteForce(g, delta);
    EXPECT_EQ(fast.total, slow.total) << "delta=" << delta;
    EXPECT_EQ(fast.counts, slow.counts) << "delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MotifCrossCheckTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Distributions / MMD.
// ---------------------------------------------------------------------------

TEST(MotifDistributionTest, NormalizesOverClassUnion) {
  graphs::TemporalGraph g = graphs::TemporalGraph::FromEdges(
      3, 3, {{0, 1, 0}, {1, 2, 1}, {2, 0, 2}});
  MotifCensus c = CountTemporalMotifs(g, 2);
  std::vector<MotifCode> classes = UnionClasses({&c});
  std::vector<double> dist = MotifDistribution(c, classes);
  double sum = 0.0;
  for (double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MotifDistributionTest, EmptyCensusIsZeroVector) {
  MotifCensus empty;
  std::vector<double> dist = MotifDistribution(empty, {1, 2, 3});
  for (double p : dist) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(TotalVariationTest, BasicProperties) {
  std::vector<double> p = {0.5, 0.5, 0.0};
  std::vector<double> q = {0.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(TotalVariation(p, p), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariation(p, q), 0.5);
  EXPECT_DOUBLE_EQ(TotalVariation(p, q), TotalVariation(q, p));
  // Disjoint distributions have TV 1.
  EXPECT_DOUBLE_EQ(
      TotalVariation({1.0, 0.0}, {0.0, 1.0}), 1.0);
}

TEST(GaussianTvKernelTest, RangeAndMonotonicity) {
  EXPECT_DOUBLE_EQ(GaussianTvKernel(0.0, 1.0), 1.0);
  EXPECT_GT(GaussianTvKernel(0.3, 1.0), GaussianTvKernel(0.6, 1.0));
  EXPECT_GT(GaussianTvKernel(0.5, 2.0), GaussianTvKernel(0.5, 1.0));
}

TEST(MmdTest, IdenticalSetsGiveZero) {
  std::vector<std::vector<double>> p = {{0.2, 0.8}, {0.5, 0.5}};
  EXPECT_NEAR(MmdSquared(p, p, 1.0), 0.0, 1e-12);
}

TEST(MmdTest, SingletonFormula) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  double mmd = MmdSquared({p}, {q}, 1.0);
  double expected = 2.0 - 2.0 * GaussianTvKernel(1.0, 1.0);
  EXPECT_NEAR(mmd, expected, 1e-12);
}

TEST(MmdTest, FartherDistributionsScoreHigher) {
  std::vector<double> base = {1.0, 0.0, 0.0};
  std::vector<double> near = {0.9, 0.1, 0.0};
  std::vector<double> far = {0.0, 0.0, 1.0};
  EXPECT_LT(MmdSquared({base}, {near}, 1.0), MmdSquared({base}, {far}, 1.0));
}

TEST(MotifMmdTest, SelfComparisonIsZero) {
  graphs::TemporalGraph g = graphs::TemporalGraph::FromEdges(
      4, 4, {{0, 1, 0}, {1, 2, 1}, {2, 0, 2}, {2, 3, 3}});
  EXPECT_NEAR(MotifMmd(g, g, 3), 0.0, 1e-12);
}

TEST(MotifMmdTest, DetectsStructuralDifference) {
  // Triangle-heavy vs. star-like temporal graphs.
  graphs::TemporalGraph tri = graphs::TemporalGraph::FromEdges(
      3, 3, {{0, 1, 0}, {1, 2, 1}, {2, 0, 2}});
  graphs::TemporalGraph star = graphs::TemporalGraph::FromEdges(
      4, 3, {{0, 1, 0}, {0, 2, 1}, {0, 3, 2}});
  EXPECT_GT(MotifMmd(tri, star, 2), 0.01);
}

}  // namespace
}  // namespace tgsim::metrics
