#include <string>

#include "datasets/synthetic.h"
#include "eval/registry.h"
#include "eval/runner.h"
#include "eval/table_printer.h"
#include "gtest/gtest.h"

namespace tgsim::eval {
namespace {

TEST(RegistryTest, MethodListMatchesPaperColumns) {
  const std::vector<std::string> expected = {
      "TGAE",   "TIGGER", "DYMOND", "TGGAN",    "TagGen", "NetGAN",
      "E-R",    "B-A",    "VGAE",   "Graphite", "SBMGNN"};
  EXPECT_EQ(AllMethodNames(), expected);
}

TEST(RegistryTest, AblationListMatchesTableVII) {
  const std::vector<std::string> expected = {"TGAE", "TGAE-g", "TGAE-t",
                                             "TGAE-n", "TGAE-p"};
  EXPECT_EQ(AblationMethodNames(), expected);
}

TEST(RegistryTest, EveryNameInstantiates) {
  for (const std::string& name : AllMethodNames()) {
    auto gen = MakeGenerator(name, Effort::kFast);
    ASSERT_NE(gen, nullptr) << name;
    EXPECT_EQ(gen->name(), name);
  }
  for (const std::string& name : AblationMethodNames()) {
    auto gen = MakeGenerator(name, Effort::kFast);
    ASSERT_NE(gen, nullptr) << name;
    EXPECT_EQ(gen->name(), name);
  }
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeGenerator("NoSuchMethod"), "CHECK failed");
}

// ---------------------------------------------------------------------------
// OOM emulation against paper-scale shapes.
// ---------------------------------------------------------------------------

struct OomCase {
  std::string method;
  std::string dataset;
  bool expect_oom;
};

class OomEmulationTest : public ::testing::TestWithParam<OomCase> {};

TEST_P(OomEmulationTest, MatchesPaperPattern) {
  const OomCase& c = GetParam();
  const datasets::DatasetSpec* spec = datasets::FindDataset(c.dataset);
  ASSERT_NE(spec, nullptr);
  auto gen = MakeGenerator(c.method, Effort::kFast);
  int64_t estimate = gen->EstimatePaperMemoryBytes(
      spec->num_nodes, spec->num_edges, spec->num_timestamps);
  bool ooms = estimate > 32LL * 1024 * 1024 * 1024;
  EXPECT_EQ(ooms, c.expect_oom)
      << c.method << " on " << c.dataset << " estimate=" << estimate;
}

// The paper's Tables IV/V/VI OOM pattern.
INSTANTIATE_TEST_SUITE_P(
    PaperPattern, OomEmulationTest,
    ::testing::Values(
        // TGAE runs everything, including UBUNTU.
        OomCase{"TGAE", "DBLP", false}, OomCase{"TGAE", "MATH", false},
        OomCase{"TGAE", "UBUNTU", false},
        // TagGen/TGGAN: run DBLP and MSG, OOM beyond.
        OomCase{"TagGen", "DBLP", false}, OomCase{"TagGen", "MSG", false},
        OomCase{"TagGen", "EMAIL", true}, OomCase{"TagGen", "MATH", true},
        OomCase{"TagGen", "UBUNTU", true}, OomCase{"TGGAN", "MSG", false},
        OomCase{"TGGAN", "MATH", true},
        // DYMOND: runs DBLP/MSG/EMAIL, OOMs MATH/BITCOIN/UBUNTU.
        OomCase{"DYMOND", "EMAIL", false}, OomCase{"DYMOND", "MSG", false},
        OomCase{"DYMOND", "MATH", true},
        OomCase{"DYMOND", "BITCOIN-A", true},
        // TIGGER: only UBUNTU is out of reach.
        OomCase{"TIGGER", "MATH", false},
        OomCase{"TIGGER", "BITCOIN-O", false},
        OomCase{"TIGGER", "UBUNTU", true},
        // NetGAN: OOMs BITCOIN-* (T^2 blowup) and UBUNTU (n^2), runs MATH.
        OomCase{"NetGAN", "MATH", false}, OomCase{"NetGAN", "EMAIL", false},
        OomCase{"NetGAN", "BITCOIN-A", true},
        OomCase{"NetGAN", "UBUNTU", true},
        // VGAE family: dense n^2 — only UBUNTU exceeds 32 GB.
        OomCase{"VGAE", "MATH", false}, OomCase{"VGAE", "BITCOIN-O", false},
        OomCase{"VGAE", "UBUNTU", true},
        OomCase{"Graphite", "UBUNTU", true},
        OomCase{"SBMGNN", "UBUNTU", true},
        // Model-based methods never OOM.
        OomCase{"E-R", "UBUNTU", false}, OomCase{"B-A", "UBUNTU", false}),
    [](const ::testing::TestParamInfo<OomCase>& info) {
      std::string name = info.param.method + "_" + info.param.dataset;
      for (char& c : name)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// ---------------------------------------------------------------------------
// RunMethod.
// ---------------------------------------------------------------------------

TEST(RunMethodTest, ScoresFastMethodEndToEnd) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.04, 3);
  RunOptions opt;
  opt.effort = Effort::kFast;
  opt.compute_motif_mmd = true;
  opt.motif_max_triples = 50000;
  RunResult r = RunMethod("E-R", g, opt);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.scores.size(), 7u);
  EXPECT_GE(r.generate_seconds, 0.0);
  EXPECT_GE(r.motif_mmd, 0.0);
}

TEST(RunMethodTest, OomSkipsExecution) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.04, 3);
  RunOptions opt;
  opt.effort = Effort::kFast;
  opt.paper_scale = *datasets::FindDataset("UBUNTU");
  RunResult r = RunMethod("TagGen", g, opt);
  EXPECT_TRUE(r.oom);
  EXPECT_TRUE(r.scores.empty());
}

TEST(RunMethodTest, PaperScaleWithinBudgetStillRuns) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.04, 3);
  RunOptions opt;
  opt.effort = Effort::kFast;
  opt.paper_scale = *datasets::FindDataset("DBLP");
  RunResult r = RunMethod("B-A", g, opt);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.scores.size(), 7u);
}

TEST(FormatCellTest, ScientificNotationAndOom) {
  EXPECT_EQ(FormatCell(0.00241, false), "2.41E-03");
  EXPECT_EQ(FormatCell(123.0, false), "1.23E+02");
  EXPECT_EQ(FormatCell(0.5, true), "OOM");
}

TEST(TablePrinterTest, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "CHECK failed");
}

TEST(TablePrinterTest, PrintsAllCells) {
  TablePrinter t({"Method", "Value"});
  t.AddRow({"TGAE", "1.0"});
  t.AddRow({"E-R", "2.0"});
  ::testing::internal::CaptureStdout();
  t.Print();
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("TGAE"), std::string::npos);
  EXPECT_NE(out.find("2.0"), std::string::npos);
}

}  // namespace
}  // namespace tgsim::eval
