#include <string>
#include <utility>

#include "common/check.h"
#include "baselines/er_ba.h"
#include "baselines/vgae.h"
#include "config/param_map.h"
#include "core/tgae.h"
#include "datasets/synthetic.h"
#include "eval/registry.h"
#include "eval/runner.h"
#include "eval/table_printer.h"
#include "gtest/gtest.h"

namespace tgsim::eval {
namespace {

TEST(RegistryTest, MethodListMatchesPaperColumns) {
  const std::vector<std::string> expected = {
      "TGAE",   "TIGGER", "DYMOND", "TGGAN",    "TagGen", "NetGAN",
      "E-R",    "B-A",    "VGAE",   "Graphite", "SBMGNN"};
  EXPECT_EQ(AllMethodNames(), expected);
}

TEST(RegistryTest, AblationListMatchesTableVII) {
  const std::vector<std::string> expected = {"TGAE", "TGAE-g", "TGAE-t",
                                             "TGAE-n", "TGAE-p"};
  EXPECT_EQ(AblationMethodNames(), expected);
}

/// Custom generator used by the registration-extension test.
class NamedErGenerator : public baselines::ErdosRenyiGenerator {
 public:
  std::string name() const override { return "TestCustom"; }
};

config::ParamMap Params(const std::vector<std::string>& tokens) {
  Result<config::ParamMap> map = config::ParamMap::FromTokens(tokens);
  TGSIM_CHECK(map.ok());
  return std::move(map).value();
}

TEST(RegistryTest, EveryNameInstantiates) {
  for (const std::string& name : RegisteredMethodNames()) {
    auto gen = MakeGenerator(name, Params({"preset=fast"}));
    ASSERT_TRUE(gen.ok()) << name << ": " << gen.status().ToString();
    ASSERT_NE(gen.value(), nullptr) << name;
    EXPECT_EQ(gen.value()->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNotFoundWithSuggestion) {
  auto gen = MakeGenerator("TGEA");
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kNotFound);
  EXPECT_NE(gen.status().message().find("did you mean 'TGAE'"),
            std::string::npos)
      << gen.status().message();
}

TEST(RegistryTest, UnknownPresetIsInvalidArgument) {
  auto gen = MakeGenerator("TGAE", Params({"preset=turbo"}));
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, UnknownParameterIsRejectedWithSuggestion) {
  auto gen = MakeGenerator("TGAE", Params({"epoch=5"}));
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(gen.status().message().find("did you mean 'epochs'"),
            std::string::npos)
      << gen.status().message();
}

TEST(RegistryTest, IllTypedParameterIsRejected) {
  auto gen = MakeGenerator("TGAE", Params({"epochs=banana"}));
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, ParameterlessMethodRejectsParams) {
  auto gen = MakeGenerator("DYMOND", Params({"epochs=5"}));
  ASSERT_FALSE(gen.ok());
  EXPECT_EQ(gen.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, ParamsOverrideConfigFields) {
  auto gen = MakeGenerator("TGAE", Params({"epochs=5", "batch_centers=16",
                                           "probabilistic=false"}));
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  auto* tgae = dynamic_cast<core::TgaeGenerator*>(gen.value().get());
  ASSERT_NE(tgae, nullptr);
  EXPECT_EQ(tgae->config().epochs, 5);
  EXPECT_EQ(tgae->config().batch_centers, 16);
  EXPECT_FALSE(tgae->config().probabilistic);
}

TEST(RegistryTest, FastPresetReproducesOldEffortConfigs) {
  // The preset=fast overlays stay pinned: the PR 3 Effort::kFast shrink
  // plus (for the TGAE family) the sparse candidate-set decoder and (for
  // the score-matrix methods) the truncated sparse score store. The
  // paper preset intentionally stays dense/untruncated — see
  // RegistryTest.SparseDecoderKnobsArePinned and
  // RegistryTest.ScoreTopkKnobsArePinned.
  const std::string tgae_fast =
      "epochs=5 batch_centers=16 sparse_decoder=true";
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"TGAE", tgae_fast},
      {"TIGGER", "epochs=3 walks_per_epoch=40"},
      {"DYMOND", ""},
      {"TGGAN", "iterations=8 batch_walks=12"},
      {"TagGen", "epochs=4 walks_per_epoch=60"},
      {"NetGAN", "epochs=15 score_topk=64"},
      {"E-R", ""},
      {"B-A", ""},
      {"VGAE", "epochs=10 score_topk=64"},
      {"Graphite", "epochs=10 score_topk=64"},
      {"SBMGNN", "epochs=10 score_topk=64"},
      {"TGAE-g", tgae_fast},
      {"TGAE-t", tgae_fast},
      {"TGAE-n", tgae_fast},
      {"TGAE-p", tgae_fast},
  };
  EXPECT_EQ(AllMethodNames().size(), 11u);
  EXPECT_EQ(AblationMethodNames().size(), 5u);
  for (const auto& [name, fast] : expected) {
    const MethodSpec* spec = FindMethod(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->fast_preset.ToString(), fast) << name;
  }
  // And the overlay actually lands on the constructed generator.
  auto fast_tgae = MakeGenerator("TGAE", Params({"preset=fast"}));
  ASSERT_TRUE(fast_tgae.ok());
  auto* tgae = dynamic_cast<core::TgaeGenerator*>(fast_tgae.value().get());
  ASSERT_NE(tgae, nullptr);
  EXPECT_EQ(tgae->config().epochs, 5);
  EXPECT_EQ(tgae->config().batch_centers, 16);
}

TEST(RegistryTest, SparseDecoderKnobsArePinned) {
  // The sparse-decoder surface is part of the schema for the whole TGAE
  // family; preset=fast flips it on, preset=paper must keep the dense
  // n-wide decode (the paper's formulation) — that invariant is relied on
  // by the paper-table benches.
  for (const std::string& name :
       {std::string("TGAE"), std::string("TGAE-g"), std::string("TGAE-p")}) {
    const MethodSpec* spec = FindMethod(name);
    ASSERT_NE(spec, nullptr) << name;
    const config::ParamSpec* sparse = spec->schema.Find("sparse_decoder");
    ASSERT_NE(sparse, nullptr) << name;
    EXPECT_EQ(sparse->type, config::ParamType::kBool) << name;
    EXPECT_EQ(sparse->default_value, "false") << name;
    const config::ParamSpec* negatives =
        spec->schema.Find("negative_samples");
    ASSERT_NE(negatives, nullptr) << name;
    EXPECT_EQ(negatives->type, config::ParamType::kInt) << name;
    EXPECT_NE(spec->fast_preset.ToString().find("sparse_decoder=true"),
              std::string::npos)
        << name;
  }
  auto paper = MakeGenerator("TGAE", Params({"preset=paper"}));
  ASSERT_TRUE(paper.ok());
  auto* dense = dynamic_cast<core::TgaeGenerator*>(paper.value().get());
  ASSERT_NE(dense, nullptr);
  EXPECT_FALSE(dense->config().sparse_decoder);
  auto fast = MakeGenerator("TGAE", Params({"preset=fast"}));
  ASSERT_TRUE(fast.ok());
  auto* sparse = dynamic_cast<core::TgaeGenerator*>(fast.value().get());
  ASSERT_NE(sparse, nullptr);
  EXPECT_TRUE(sparse->config().sparse_decoder);
  EXPECT_GT(sparse->config().negative_samples, 0);
}

TEST(RegistryTest, ScoreTopkKnobsArePinned) {
  // The sparse score store is part of the schema for every score-matrix
  // method; preset=fast truncates rows to their top-64 entries, while
  // preset=paper must keep score_topk=0 — every positive entry stored,
  // the paper-exact distribution — for the paper-table benches.
  for (const std::string& name :
       {std::string("NetGAN"), std::string("VGAE"), std::string("Graphite"),
        std::string("SBMGNN")}) {
    const MethodSpec* spec = FindMethod(name);
    ASSERT_NE(spec, nullptr) << name;
    const config::ParamSpec* topk = spec->schema.Find("score_topk");
    ASSERT_NE(topk, nullptr) << name;
    EXPECT_EQ(topk->type, config::ParamType::kInt64) << name;
    EXPECT_EQ(topk->default_value, "0") << name;
    EXPECT_NE(spec->fast_preset.ToString().find("score_topk=64"),
              std::string::npos)
        << name;
  }
  auto paper = MakeGenerator("VGAE", Params({"preset=paper"}));
  ASSERT_TRUE(paper.ok());
  auto* dense = dynamic_cast<baselines::VgaeGenerator*>(paper.value().get());
  ASSERT_NE(dense, nullptr);
  EXPECT_EQ(dense->config().score_topk, 0);
  auto fast = MakeGenerator("VGAE", Params({"preset=fast"}));
  ASSERT_TRUE(fast.ok());
  auto* sparse = dynamic_cast<baselines::VgaeGenerator*>(fast.value().get());
  ASSERT_NE(sparse, nullptr);
  EXPECT_EQ(sparse->config().score_topk, 64);
}

TEST(RegistryTest, ExplicitParamWinsOverPreset) {
  auto gen = MakeGenerator("TGAE", Params({"preset=fast", "epochs=2"}));
  ASSERT_TRUE(gen.ok());
  auto* tgae = dynamic_cast<core::TgaeGenerator*>(gen.value().get());
  ASSERT_NE(tgae, nullptr);
  EXPECT_EQ(tgae->config().epochs, 2);
  EXPECT_EQ(tgae->config().batch_centers, 16);  // Preset still applies.
}

TEST(RegistryTest, EverySchemaKeyRoundTripsThroughApplyParams) {
  // Parameterized sweep over the whole registration table: setting every
  // schema key to its own default must construct successfully.
  for (const std::string& name : RegisteredMethodNames()) {
    const MethodSpec* spec = FindMethod(name);
    ASSERT_NE(spec, nullptr) << name;
    std::vector<std::string> tokens;
    for (const config::ParamSpec& param : spec->schema.specs)
      tokens.push_back(param.key + "=" + param.default_value);
    auto gen = MakeGenerator(name, Params(tokens));
    ASSERT_TRUE(gen.ok()) << name << ": " << gen.status().ToString();
    EXPECT_EQ(gen.value()->name(), name);
  }
}

TEST(RegistryTest, CustomRegistrationIsAFirstClassMethod) {
  MethodSpec spec;
  spec.name = "TestCustom";
  spec.summary = "custom registration coverage";
  spec.factory = [](const config::ParamMap& params)
      -> Result<std::unique_ptr<baselines::TemporalGraphGenerator>> {
    if (!params.empty())
      return Status::InvalidArgument("no parameters");
    return std::unique_ptr<baselines::TemporalGraphGenerator>(
        std::make_unique<NamedErGenerator>());
  };
  // First registration wins; re-running the suite in-process would dup.
  Status registered = RegisterGenerator(std::move(spec));
  if (!registered.ok()) {
    EXPECT_NE(registered.message().find("already registered"),
              std::string::npos);
  }
  auto gen = MakeGenerator("TestCustom");
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_EQ(gen.value()->name(), "TestCustom");
  // Custom methods do not leak into the paper's table columns.
  for (const std::string& name : AllMethodNames())
    EXPECT_NE(name, "TestCustom");
  EXPECT_FALSE(RegisterGenerator(MethodSpec{}).ok());
}

// ---------------------------------------------------------------------------
// OOM emulation against paper-scale shapes.
// ---------------------------------------------------------------------------

struct OomCase {
  std::string method;
  std::string dataset;
  bool expect_oom;
};

class OomEmulationTest : public ::testing::TestWithParam<OomCase> {};

TEST_P(OomEmulationTest, MatchesPaperPattern) {
  const OomCase& c = GetParam();
  const datasets::DatasetSpec* spec = datasets::FindDataset(c.dataset);
  ASSERT_NE(spec, nullptr);
  auto gen = std::move(MakeGenerator(c.method, Params({"preset=fast"}))).value();
  int64_t estimate = gen->EstimatePaperMemoryBytes(
      spec->num_nodes, spec->num_edges, spec->num_timestamps);
  bool ooms = estimate > 32LL * 1024 * 1024 * 1024;
  EXPECT_EQ(ooms, c.expect_oom)
      << c.method << " on " << c.dataset << " estimate=" << estimate;
}

// The paper's Tables IV/V/VI OOM pattern.
INSTANTIATE_TEST_SUITE_P(
    PaperPattern, OomEmulationTest,
    ::testing::Values(
        // TGAE runs everything, including UBUNTU.
        OomCase{"TGAE", "DBLP", false}, OomCase{"TGAE", "MATH", false},
        OomCase{"TGAE", "UBUNTU", false},
        // TagGen/TGGAN: run DBLP and MSG, OOM beyond.
        OomCase{"TagGen", "DBLP", false}, OomCase{"TagGen", "MSG", false},
        OomCase{"TagGen", "EMAIL", true}, OomCase{"TagGen", "MATH", true},
        OomCase{"TagGen", "UBUNTU", true}, OomCase{"TGGAN", "MSG", false},
        OomCase{"TGGAN", "MATH", true},
        // DYMOND: runs DBLP/MSG/EMAIL, OOMs MATH/BITCOIN/UBUNTU.
        OomCase{"DYMOND", "EMAIL", false}, OomCase{"DYMOND", "MSG", false},
        OomCase{"DYMOND", "MATH", true},
        OomCase{"DYMOND", "BITCOIN-A", true},
        // TIGGER: only UBUNTU is out of reach.
        OomCase{"TIGGER", "MATH", false},
        OomCase{"TIGGER", "BITCOIN-O", false},
        OomCase{"TIGGER", "UBUNTU", true},
        // NetGAN: OOMs BITCOIN-* (T^2 blowup) and UBUNTU (n^2), runs MATH.
        OomCase{"NetGAN", "MATH", false}, OomCase{"NetGAN", "EMAIL", false},
        OomCase{"NetGAN", "BITCOIN-A", true},
        OomCase{"NetGAN", "UBUNTU", true},
        // VGAE family: dense n^2 — only UBUNTU exceeds 32 GB.
        OomCase{"VGAE", "MATH", false}, OomCase{"VGAE", "BITCOIN-O", false},
        OomCase{"VGAE", "UBUNTU", true},
        OomCase{"Graphite", "UBUNTU", true},
        OomCase{"SBMGNN", "UBUNTU", true},
        // Model-based methods never OOM.
        OomCase{"E-R", "UBUNTU", false}, OomCase{"B-A", "UBUNTU", false}),
    [](const ::testing::TestParamInfo<OomCase>& info) {
      std::string name = info.param.method + "_" + info.param.dataset;
      for (char& c : name)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// ---------------------------------------------------------------------------
// RunMethod.
// ---------------------------------------------------------------------------

TEST(RunMethodTest, ScoresFastMethodEndToEnd) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.04, 3);
  RunOptions opt;
  opt.preset = "fast";
  opt.compute_motif_mmd = true;
  opt.motif_max_triples = 50000;
  RunResult r = std::move(RunMethod("E-R", g, opt)).value();
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.scores.size(), 7u);
  EXPECT_GE(r.generate_seconds, 0.0);
  EXPECT_GE(r.motif_mmd, 0.0);
}

TEST(RunMethodTest, OomSkipsExecution) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.04, 3);
  RunOptions opt;
  opt.preset = "fast";
  opt.paper_scale = *datasets::FindDataset("UBUNTU");
  RunResult r = std::move(RunMethod("TagGen", g, opt)).value();
  EXPECT_TRUE(r.oom);
  EXPECT_TRUE(r.scores.empty());
}

TEST(RunMethodTest, PaperScaleWithinBudgetStillRuns) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.04, 3);
  RunOptions opt;
  opt.preset = "fast";
  opt.paper_scale = *datasets::FindDataset("DBLP");
  RunResult r = std::move(RunMethod("B-A", g, opt)).value();
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.scores.size(), 7u);
}

TEST(RunMethodTest, UnknownMethodIsAnErrorNotACrash) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.04, 3);
  Result<RunResult> r = RunMethod("NoSuchMethod", g, RunOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RunMethodTest, MethodParamsReachTheGenerator) {
  graphs::TemporalGraph g = datasets::MakeMimicByName("DBLP", 0.04, 3);
  RunOptions opt;
  opt.preset = "fast";
  opt.method_params = Params({"bad_knob=1"});
  Result<RunResult> r = RunMethod("TIGGER", g, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(FormatCellTest, ScientificNotationAndOom) {
  EXPECT_EQ(FormatCell(0.00241, false), "2.41E-03");
  EXPECT_EQ(FormatCell(123.0, false), "1.23E+02");
  EXPECT_EQ(FormatCell(0.5, true), "OOM");
}

TEST(TablePrinterTest, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "CHECK failed");
}

TEST(TablePrinterTest, PrintsAllCells) {
  TablePrinter t({"Method", "Value"});
  t.AddRow({"TGAE", "1.0"});
  t.AddRow({"E-R", "2.0"});
  ::testing::internal::CaptureStdout();
  t.Print();
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("TGAE"), std::string::npos);
  EXPECT_NE(out.find("2.0"), std::string::npos);
}

}  // namespace
}  // namespace tgsim::eval
