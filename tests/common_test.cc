#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "gtest/gtest.h"

namespace tgsim {
namespace {

// ---------------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.UniformInt(1000) == b.UniformInt(1000)) ++same;
  EXPECT_LT(same, 10);
}

TEST(RngTest, UniformIsInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.UniformInt(4)];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected.
}

TEST(RngTest, NormalHasApproxUnitMoments) {
  Rng rng(6);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, WeightedChoiceFollowsWeights) {
  Rng rng(8);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> seen(3, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.WeightedChoice(w)];
  EXPECT_EQ(seen[1], 0);
  EXPECT_NEAR(static_cast<double>(seen[2]) / seen[0], 3.0, 0.5);
}

TEST(RngTest, WeightedChoiceDriftGuardSkipsTrailingZeroWeights) {
  // With a min-denormal total, r = Uniform() * total rounds up to exactly
  // `total` about half the time, so the accumulation loop falls through to
  // the floating-point drift guard. The guard must return the last
  // *positive*-weight index — a zero-weight entry marks a slot the caller
  // already consumed (the without-replacement loops in generation), and
  // returning it emits a duplicate edge.
  const double denorm = std::numeric_limits<double>::denorm_min();
  std::vector<double> w = {denorm, 0.0};
  Rng rng(7);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(rng.WeightedChoice(w), 0u) << "draw " << i;
  // Same with several trailing zeros after the positive entry.
  std::vector<double> w2 = {0.0, denorm, 0.0, 0.0};
  Rng rng2(8);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(rng2.WeightedChoice(w2), 1u) << "draw " << i;
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int64_t> s = rng.SampleWithoutReplacement(20, 10);
    EXPECT_EQ(s.size(), 10u);
    std::sort(s.begin(), s.end());
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    EXPECT_GE(s.front(), 0);
    EXPECT_LT(s.back(), 20);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(10);
  std::vector<int64_t> s = rng.SampleWithoutReplacement(5, 5);
  std::sort(s.begin(), s.end());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s[static_cast<size_t>(i)], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ParetoIsAtLeastOne) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(1.5), 1.0);
}

TEST(RngTest, SameSeedSameStreamAcrossAllHelpers) {
  // Determinism must hold for every sampling helper, not just Uniform():
  // interleaving draws exercises the shared engine state.
  Rng a(77), b(77);
  std::vector<double> w = {0.5, 1.5, 2.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
    EXPECT_DOUBLE_EQ(a.Uniform(-3.0, 3.0), b.Uniform(-3.0, 3.0));
    EXPECT_EQ(a.UniformInt(1000), b.UniformInt(1000));
    EXPECT_EQ(a.UniformInt(-5, 5), b.UniformInt(-5, 5));
    EXPECT_DOUBLE_EQ(a.Normal(), b.Normal());
    EXPECT_DOUBLE_EQ(a.Normal(2.0, 0.5), b.Normal(2.0, 0.5));
    EXPECT_EQ(a.Bernoulli(0.4), b.Bernoulli(0.4));
    EXPECT_DOUBLE_EQ(a.Pareto(2.5), b.Pareto(2.5));
    EXPECT_EQ(a.WeightedChoice(w), b.WeightedChoice(w));
    EXPECT_EQ(a.SampleWithoutReplacement(30, 7),
              b.SampleWithoutReplacement(30, 7));
  }
  std::vector<int> va = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> vb = va;
  a.Shuffle(va);
  b.Shuffle(vb);
  EXPECT_EQ(va, vb);
}

TEST(RngTest, SplitIsDeterministicGivenParentSeed) {
  Rng a(21), b(21);
  std::vector<Rng> ca = a.Split(4);
  std::vector<Rng> cb = b.Split(4);
  ASSERT_EQ(ca.size(), 4u);
  for (size_t i = 0; i < ca.size(); ++i)
    for (int d = 0; d < 50; ++d)
      EXPECT_DOUBLE_EQ(ca[i].Uniform(), cb[i].Uniform());
}

TEST(RngTest, SplitChildrenAreMutuallyIndependent) {
  Rng parent(22);
  std::vector<Rng> kids = parent.Split(3);
  // No pair of child streams (nor the parent's continued stream) may be
  // replays of each other.
  std::vector<std::vector<int64_t>> streams;
  for (Rng& k : kids) {
    std::vector<int64_t> s;
    for (int d = 0; d < 50; ++d) s.push_back(k.UniformInt(1 << 30));
    streams.push_back(std::move(s));
  }
  std::vector<int64_t> ps;
  for (int d = 0; d < 50; ++d) ps.push_back(parent.UniformInt(1 << 30));
  streams.push_back(std::move(ps));
  for (size_t i = 0; i < streams.size(); ++i)
    for (size_t j = i + 1; j < streams.size(); ++j)
      EXPECT_NE(streams[i], streams[j]);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(13);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(13);
  b.Fork();
  EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  double c1 = child.Uniform();
  double p1 = a.Uniform();
  EXPECT_NE(c1, p1);
}

// ---------------------------------------------------------------------------
// Status / Result.
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, WorksWithMoveOnlyValueAccess) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// ---------------------------------------------------------------------------
// MemoryTracker.
// ---------------------------------------------------------------------------

TEST(MemoryTrackerTest, TracksAllocateRelease) {
  MemoryTracker t;
  t.Allocate(100);
  t.Allocate(50);
  EXPECT_EQ(t.CurrentBytes(), 150);
  t.Release(100);
  EXPECT_EQ(t.CurrentBytes(), 50);
  EXPECT_GE(t.PeakBytes(), 150);
}

TEST(MemoryTrackerTest, PeakResetsToCurrent) {
  MemoryTracker t;
  t.Allocate(100);
  t.Release(100);
  t.Allocate(10);
  t.ResetPeak();
  EXPECT_EQ(t.PeakBytes(), 10);
  t.Allocate(5);
  EXPECT_EQ(t.PeakBytes(), 15);
}

TEST(MemoryTrackerTest, ConcurrentUpdatesAreConsistent) {
  MemoryTracker t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t]() {
      for (int j = 0; j < 1000; ++j) {
        t.Allocate(8);
        t.Release(8);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.CurrentBytes(), 0);
}

TEST(MemoryUsageScopeTest, ObservesTensorAllocations) {
  MemoryUsageScope scope;
  EXPECT_GE(scope.PeakBytes(), 0);
  EXPECT_GE(scope.PeakMiB(), 0.0);
}

// ---------------------------------------------------------------------------
// Stopwatch & checks.
// ---------------------------------------------------------------------------

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  double t1 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GE(w.ElapsedSeconds(), t1);
  w.Restart();
  EXPECT_LT(w.ElapsedMillis(), 1000.0);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(TGSIM_CHECK(1 == 2), "CHECK failed");
  EXPECT_DEATH(TGSIM_CHECK_EQ(3, 4), "CHECK failed");
  EXPECT_DEATH(TGSIM_CHECK_LT(5, 5), "CHECK failed");
}

TEST(CheckDeathTest, EveryComparisonMacroAborts) {
  EXPECT_DEATH(TGSIM_CHECK_NE(7, 7), "CHECK failed");
  EXPECT_DEATH(TGSIM_CHECK_LE(6, 5), "CHECK failed");
  EXPECT_DEATH(TGSIM_CHECK_GT(5, 5), "CHECK failed");
  EXPECT_DEATH(TGSIM_CHECK_GE(4, 5), "CHECK failed");
}

TEST(CheckDeathTest, DiagnosticNamesFileAndExpression) {
  // The failure path must identify where and what failed, or debugging a
  // production abort is hopeless.
  EXPECT_DEATH(TGSIM_CHECK(2 + 2 == 5), "common_test");
  EXPECT_DEATH(TGSIM_CHECK(2 + 2 == 5), "2 \\+ 2 == 5");
}

TEST(CheckDeathTest, RngPreconditionsUseCheckPath) {
  // Library preconditions route through the same failure path.
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(0), "CHECK failed");
  EXPECT_DEATH(rng.UniformInt(3, 2), "CHECK failed");
}

#ifdef NDEBUG
TEST(CheckTest, DcheckIsCompiledOutInReleaseBuilds) {
  TGSIM_DCHECK(false);  // Must not abort when NDEBUG is defined.
  SUCCEED();
}
#else
TEST(CheckDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(TGSIM_DCHECK(false), "CHECK failed");
}
#endif

TEST(CheckTest, PassingChecksAreSilent) {
  TGSIM_CHECK(true);
  TGSIM_CHECK_EQ(1, 1);
  TGSIM_CHECK_GE(2, 1);
  SUCCEED();
}

}  // namespace
}  // namespace tgsim
