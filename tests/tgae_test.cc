#include "core/tgae.h"

#include <cmath>
#include <set>

#include "datasets/synthetic.h"
#include "eval/registry.h"
#include "gtest/gtest.h"
#include "metrics/motifs.h"
#include "metrics/temporal_scores.h"

namespace tgsim::core {
namespace {

graphs::TemporalGraph Observed() {
  static const graphs::TemporalGraph* kGraph = new graphs::TemporalGraph(
      datasets::MakeMimicByName("DBLP", 0.06, 31));
  return *kGraph;
}

TgaeConfig FastConfig() {
  TgaeConfig cfg;
  cfg.epochs = 6;
  cfg.batch_centers = 12;
  return cfg;
}

TEST(TgaeConfigTest, VariantsMatchPaperTableVII) {
  EXPECT_EQ(TgaeConfig::ForVariant(TgaeVariant::kFull).display_name, "TGAE");
  TgaeConfig g = TgaeConfig::ForVariant(TgaeVariant::kRandomWalk);
  EXPECT_EQ(g.display_name, "TGAE-g");
  EXPECT_EQ(g.neighbor_threshold, 1);
  TgaeConfig t = TgaeConfig::ForVariant(TgaeVariant::kNoTruncation);
  EXPECT_EQ(t.display_name, "TGAE-t");
  EXPECT_EQ(t.neighbor_threshold, 0);
  TgaeConfig n = TgaeConfig::ForVariant(TgaeVariant::kUniformSampling);
  EXPECT_EQ(n.display_name, "TGAE-n");
  EXPECT_FALSE(n.degree_weighted_sampling);
  TgaeConfig p = TgaeConfig::ForVariant(TgaeVariant::kNonProbabilistic);
  EXPECT_EQ(p.display_name, "TGAE-p");
  EXPECT_FALSE(p.probabilistic);
}

TEST(TgaeTest, GenerateMatchesObservedShape) {
  graphs::TemporalGraph observed = Observed();
  TgaeGenerator gen(FastConfig());
  Rng rng(1);
  gen.Fit(observed, rng);
  graphs::TemporalGraph out = gen.Generate(rng);
  EXPECT_EQ(out.num_nodes(), observed.num_nodes());
  EXPECT_EQ(out.num_timestamps(), observed.num_timestamps());
  EXPECT_EQ(out.num_edges(), observed.num_edges());
}

TEST(TgaeTest, PerTimestampEdgeCountsAreExact) {
  // Generation allocates each temporal node's observed out-degree, so the
  // per-snapshot edge counts must match exactly (Section IV-G).
  graphs::TemporalGraph observed = Observed();
  TgaeGenerator gen(FastConfig());
  Rng rng(2);
  gen.Fit(observed, rng);
  graphs::TemporalGraph out = gen.Generate(rng);
  EXPECT_EQ(out.EdgesPerTimestamp(), observed.EdgesPerTimestamp());
}

TEST(TgaeTest, TrainingLossDecreasesWithEpochs) {
  graphs::TemporalGraph observed = Observed();
  TgaeConfig one = FastConfig();
  one.epochs = 1;
  TgaeGenerator short_run(one);
  Rng r1(3);
  short_run.Fit(observed, r1);

  TgaeConfig many = FastConfig();
  many.epochs = 40;
  TgaeGenerator long_run(many);
  Rng r2(3);
  long_run.Fit(observed, r2);
  EXPECT_LT(long_run.last_epoch_loss(), short_run.last_epoch_loss());
}

TEST(TgaeTest, LossIsFiniteForAllVariants) {
  graphs::TemporalGraph observed = Observed();
  for (TgaeVariant v :
       {TgaeVariant::kFull, TgaeVariant::kRandomWalk,
        TgaeVariant::kNoTruncation, TgaeVariant::kUniformSampling,
        TgaeVariant::kNonProbabilistic}) {
    TgaeConfig cfg = TgaeConfig::ForVariant(v);
    cfg.epochs = 3;
    cfg.batch_centers = 8;
    TgaeGenerator gen(cfg);
    Rng rng(4);
    gen.Fit(observed, rng);
    EXPECT_TRUE(std::isfinite(gen.last_epoch_loss()))
        << cfg.display_name;
    graphs::TemporalGraph out = gen.Generate(rng);
    EXPECT_EQ(out.num_edges(), observed.num_edges()) << cfg.display_name;
  }
}

TEST(TgaeTest, UntiedDecoderAlsoTrains) {
  graphs::TemporalGraph observed = Observed();
  TgaeConfig cfg = FastConfig();
  cfg.tie_decoder = false;
  TgaeGenerator gen(cfg);
  Rng rng(5);
  gen.Fit(observed, rng);
  EXPECT_TRUE(std::isfinite(gen.last_epoch_loss()));
  EXPECT_EQ(gen.Generate(rng).num_edges(), observed.num_edges());
}

TEST(TgaeTest, TiedDecoderRequiresMatchingDims) {
  TgaeConfig cfg = FastConfig();
  cfg.hidden_dim = 16;
  cfg.embedding_dim = 32;
  cfg.tie_decoder = true;
  TgaeGenerator gen(cfg);
  graphs::TemporalGraph observed = Observed();
  Rng rng(6);
  EXPECT_DEATH(gen.Fit(observed, rng), "CHECK failed");
}

TEST(TgaeTest, DeterministicForSeed) {
  graphs::TemporalGraph observed = Observed();
  auto run = [&](uint64_t seed) {
    TgaeGenerator gen(FastConfig());
    Rng rng(seed);
    gen.Fit(observed, rng);
    return gen.Generate(rng);
  };
  graphs::TemporalGraph a = run(9);
  graphs::TemporalGraph b = run(9);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.edges().size(); ++i)
    EXPECT_TRUE(a.edges()[i] == b.edges()[i]);
}

TEST(TgaeTest, GeneratedEdgesPreferObservedSupport) {
  // With the neighborhood-restricted categorical (Section IV-G), most
  // generated edges connect pairs that interact within the window in the
  // observed graph.
  graphs::TemporalGraph observed = Observed();
  TgaeGenerator gen(FastConfig());
  Rng rng(10);
  gen.Fit(observed, rng);
  graphs::TemporalGraph out = gen.Generate(rng);
  int64_t in_support = 0;
  for (const auto& e : out.edges()) {
    for (const auto& nb : observed.OutNeighborhood(
             e.u, e.t, gen.config().generation_time_window)) {
      if (nb.node == e.v) {
        ++in_support;
        break;
      }
    }
  }
  EXPECT_GT(in_support, out.num_edges() * 9 / 10);
}

TEST(TgaeTest, SparseDecoderTrainsAndGenerates) {
  graphs::TemporalGraph observed = Observed();
  TgaeConfig cfg = FastConfig();
  cfg.sparse_decoder = true;
  cfg.negative_samples = 32;
  TgaeGenerator gen(cfg);
  Rng rng(14);
  gen.Fit(observed, rng);
  EXPECT_TRUE(std::isfinite(gen.last_epoch_loss()));
  graphs::TemporalGraph out = gen.Generate(rng);
  EXPECT_EQ(out.num_edges(), observed.num_edges());
  EXPECT_EQ(out.EdgesPerTimestamp(), observed.EdgesPerTimestamp());
}

TEST(TgaeTest, SparseAndDenseGenerationDrawIdenticalEdges) {
  // The sparse generation path decodes only the support-union columns, but
  // those columns carry the exact values of the dense decode and the
  // categorical is normalized on the support in both paths — so with the
  // same weights and the same seed the drawn edge lists must be identical.
  graphs::TemporalGraph observed = Observed();
  TgaeConfig dense_cfg = FastConfig();
  TgaeGenerator dense(dense_cfg);
  Rng rd(17);
  dense.Fit(observed, rd);
  std::string path = ::testing::TempDir() + "/tgae_sparse_pin.ckpt";
  ASSERT_TRUE(dense.SaveCheckpoint(path).ok());

  TgaeConfig sparse_cfg = dense_cfg;
  sparse_cfg.sparse_decoder = true;
  sparse_cfg.epochs = 0;  // Build parameter structures only...
  TgaeGenerator sparse(sparse_cfg);
  Rng rs(17);
  sparse.Fit(observed, rs);
  // ...then share the dense model's trained weights.
  ASSERT_TRUE(sparse.LoadCheckpoint(path).ok());

  Rng g1(99);
  Rng g2(99);
  graphs::TemporalGraph a = dense.Generate(g1);
  graphs::TemporalGraph b = sparse.Generate(g2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.edges().size(); ++i)
    EXPECT_TRUE(a.edges()[i] == b.edges()[i]) << "edge " << i;
}

TEST(TgaeTest, NextUntakenNodeScansPastTakenNodes) {
  std::vector<bool> taken = {true, false, true, true};
  EXPECT_EQ(NextUntakenNode(taken, 0), 1);
  EXPECT_EQ(NextUntakenNode(taken, 1), 1);
  EXPECT_EQ(NextUntakenNode(taken, 2), 1);  // Wraps past the end.
  EXPECT_EQ(NextUntakenNode(taken, 3), 1);
  std::vector<bool> all_taken = {true, true};
  EXPECT_EQ(NextUntakenNode(all_taken, 1), 1);  // Degenerate: start.
}

TEST(TgaeTest, EmptySupportFallbackEmitsNoSelfLoopsOrDuplicates) {
  // Node 0's only observed interactions are self-loops, so its generation
  // support is empty and all three of its edges go through the full-row
  // fallback. The old single-step collision nudge could land on a taken
  // node — including node 0 itself — emitting self-loops or duplicate
  // destinations; the fallback must produce distinct non-self targets.
  graphs::TemporalGraph g(5, 2);
  for (int r = 0; r < 3; ++r) g.AddEdge(0, 0, 0);
  g.AddEdge(1, 2, 0);
  g.AddEdge(2, 3, 1);
  g.AddEdge(3, 4, 1);
  g.Finalize();
  for (bool sparse : {false, true}) {
    TgaeConfig cfg;
    cfg.epochs = 2;
    cfg.batch_centers = 4;
    cfg.sparse_decoder = sparse;
    TgaeGenerator gen(cfg);
    Rng rng(3);
    gen.Fit(g, rng);
    graphs::TemporalGraph out = gen.Generate(rng);
    std::set<graphs::NodeId> fallback_dests;
    for (const auto& e : out.edges()) {
      EXPECT_NE(e.u, e.v) << "self-loop (sparse=" << sparse << ")";
      if (e.u == 0 && e.t == 0) {
        EXPECT_TRUE(fallback_dests.insert(e.v).second)
            << "duplicate destination " << e.v << " (sparse=" << sparse
            << ")";
      }
    }
    EXPECT_EQ(fallback_dests.size(), 3u) << "sparse=" << sparse;
  }
}

TEST(TgaeTest, PathSumParentsFallsBackToShallowerParent) {
  // Hand-built ego graph: node 1 is strictly layered under the center,
  // node 2 extends node 1's path, node 3 is reachable only through a
  // depth-skipping edge from the center (depth 0 -> depth 2), and node 4
  // only through a same-depth edge. Alg. 2 path-sum semantics: 3 anchors
  // to the shallower parent (the old first-parent tree silently dropped
  // its path to "own z only"); 4 has no shallower parent and stays -1;
  // same-depth edges never become parents, so chains cannot cycle.
  graphs::EgoGraph ego;
  ego.center = {0, 0};
  ego.nodes = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  ego.depth = {0, 1, 2, 2, 2};
  ego.edges = {{0, 1}, {1, 2}, {0, 3}, {3, 4}};
  std::vector<int> parent = PathSumParents(ego);
  ASSERT_EQ(parent.size(), 5u);
  EXPECT_EQ(parent[0], -1);  // Center.
  EXPECT_EQ(parent[1], 0);   // Strictly layered.
  EXPECT_EQ(parent[2], 1);   // Strictly layered chain.
  EXPECT_EQ(parent[3], 0);   // Shallower-depth fallback.
  EXPECT_EQ(parent[4], -1);  // Same-depth edge is never a parent.
}

TEST(TgaeIntegrationTest, BeatsErdosRenyiOnStructureAndMotifs) {
  graphs::TemporalGraph observed = Observed();
  TgaeConfig cfg;
  cfg.epochs = 25;
  TgaeGenerator tgae(cfg);
  Rng r1(11);
  tgae.Fit(observed, r1);
  graphs::TemporalGraph tgae_out = tgae.Generate(r1);

  auto er = std::move(eval::MakeGenerator("E-R")).value();
  Rng r2(11);
  er->Fit(observed, r2);
  graphs::TemporalGraph er_out = er->Generate(r2);

  auto tgae_scores = metrics::ScoreAllMetrics(observed, tgae_out);
  auto er_scores = metrics::ScoreAllMetrics(observed, er_out);
  int tgae_wins = 0;
  for (size_t i = 0; i < tgae_scores.size(); ++i)
    tgae_wins += tgae_scores[i].med <= er_scores[i].med;
  EXPECT_GE(tgae_wins, 5) << "TGAE should beat E-R on most metrics";

  double tgae_mmd = metrics::MotifMmd(observed, tgae_out, 4, 1.0, 500000);
  double er_mmd = metrics::MotifMmd(observed, er_out, 4, 1.0, 500000);
  EXPECT_LT(tgae_mmd, er_mmd);
}

}  // namespace
}  // namespace tgsim::core
