#include "core/tgae.h"

#include <cmath>

#include "datasets/synthetic.h"
#include "eval/registry.h"
#include "gtest/gtest.h"
#include "metrics/motifs.h"
#include "metrics/temporal_scores.h"

namespace tgsim::core {
namespace {

graphs::TemporalGraph Observed() {
  static const graphs::TemporalGraph* kGraph = new graphs::TemporalGraph(
      datasets::MakeMimicByName("DBLP", 0.06, 31));
  return *kGraph;
}

TgaeConfig FastConfig() {
  TgaeConfig cfg;
  cfg.epochs = 6;
  cfg.batch_centers = 12;
  return cfg;
}

TEST(TgaeConfigTest, VariantsMatchPaperTableVII) {
  EXPECT_EQ(TgaeConfig::ForVariant(TgaeVariant::kFull).display_name, "TGAE");
  TgaeConfig g = TgaeConfig::ForVariant(TgaeVariant::kRandomWalk);
  EXPECT_EQ(g.display_name, "TGAE-g");
  EXPECT_EQ(g.neighbor_threshold, 1);
  TgaeConfig t = TgaeConfig::ForVariant(TgaeVariant::kNoTruncation);
  EXPECT_EQ(t.display_name, "TGAE-t");
  EXPECT_EQ(t.neighbor_threshold, 0);
  TgaeConfig n = TgaeConfig::ForVariant(TgaeVariant::kUniformSampling);
  EXPECT_EQ(n.display_name, "TGAE-n");
  EXPECT_FALSE(n.degree_weighted_sampling);
  TgaeConfig p = TgaeConfig::ForVariant(TgaeVariant::kNonProbabilistic);
  EXPECT_EQ(p.display_name, "TGAE-p");
  EXPECT_FALSE(p.probabilistic);
}

TEST(TgaeTest, GenerateMatchesObservedShape) {
  graphs::TemporalGraph observed = Observed();
  TgaeGenerator gen(FastConfig());
  Rng rng(1);
  gen.Fit(observed, rng);
  graphs::TemporalGraph out = gen.Generate(rng);
  EXPECT_EQ(out.num_nodes(), observed.num_nodes());
  EXPECT_EQ(out.num_timestamps(), observed.num_timestamps());
  EXPECT_EQ(out.num_edges(), observed.num_edges());
}

TEST(TgaeTest, PerTimestampEdgeCountsAreExact) {
  // Generation allocates each temporal node's observed out-degree, so the
  // per-snapshot edge counts must match exactly (Section IV-G).
  graphs::TemporalGraph observed = Observed();
  TgaeGenerator gen(FastConfig());
  Rng rng(2);
  gen.Fit(observed, rng);
  graphs::TemporalGraph out = gen.Generate(rng);
  EXPECT_EQ(out.EdgesPerTimestamp(), observed.EdgesPerTimestamp());
}

TEST(TgaeTest, TrainingLossDecreasesWithEpochs) {
  graphs::TemporalGraph observed = Observed();
  TgaeConfig one = FastConfig();
  one.epochs = 1;
  TgaeGenerator short_run(one);
  Rng r1(3);
  short_run.Fit(observed, r1);

  TgaeConfig many = FastConfig();
  many.epochs = 40;
  TgaeGenerator long_run(many);
  Rng r2(3);
  long_run.Fit(observed, r2);
  EXPECT_LT(long_run.last_epoch_loss(), short_run.last_epoch_loss());
}

TEST(TgaeTest, LossIsFiniteForAllVariants) {
  graphs::TemporalGraph observed = Observed();
  for (TgaeVariant v :
       {TgaeVariant::kFull, TgaeVariant::kRandomWalk,
        TgaeVariant::kNoTruncation, TgaeVariant::kUniformSampling,
        TgaeVariant::kNonProbabilistic}) {
    TgaeConfig cfg = TgaeConfig::ForVariant(v);
    cfg.epochs = 3;
    cfg.batch_centers = 8;
    TgaeGenerator gen(cfg);
    Rng rng(4);
    gen.Fit(observed, rng);
    EXPECT_TRUE(std::isfinite(gen.last_epoch_loss()))
        << cfg.display_name;
    graphs::TemporalGraph out = gen.Generate(rng);
    EXPECT_EQ(out.num_edges(), observed.num_edges()) << cfg.display_name;
  }
}

TEST(TgaeTest, UntiedDecoderAlsoTrains) {
  graphs::TemporalGraph observed = Observed();
  TgaeConfig cfg = FastConfig();
  cfg.tie_decoder = false;
  TgaeGenerator gen(cfg);
  Rng rng(5);
  gen.Fit(observed, rng);
  EXPECT_TRUE(std::isfinite(gen.last_epoch_loss()));
  EXPECT_EQ(gen.Generate(rng).num_edges(), observed.num_edges());
}

TEST(TgaeTest, TiedDecoderRequiresMatchingDims) {
  TgaeConfig cfg = FastConfig();
  cfg.hidden_dim = 16;
  cfg.embedding_dim = 32;
  cfg.tie_decoder = true;
  TgaeGenerator gen(cfg);
  graphs::TemporalGraph observed = Observed();
  Rng rng(6);
  EXPECT_DEATH(gen.Fit(observed, rng), "CHECK failed");
}

TEST(TgaeTest, DeterministicForSeed) {
  graphs::TemporalGraph observed = Observed();
  auto run = [&](uint64_t seed) {
    TgaeGenerator gen(FastConfig());
    Rng rng(seed);
    gen.Fit(observed, rng);
    return gen.Generate(rng);
  };
  graphs::TemporalGraph a = run(9);
  graphs::TemporalGraph b = run(9);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.edges().size(); ++i)
    EXPECT_TRUE(a.edges()[i] == b.edges()[i]);
}

TEST(TgaeTest, GeneratedEdgesPreferObservedSupport) {
  // With the neighborhood-restricted categorical (Section IV-G), most
  // generated edges connect pairs that interact within the window in the
  // observed graph.
  graphs::TemporalGraph observed = Observed();
  TgaeGenerator gen(FastConfig());
  Rng rng(10);
  gen.Fit(observed, rng);
  graphs::TemporalGraph out = gen.Generate(rng);
  int64_t in_support = 0;
  for (const auto& e : out.edges()) {
    for (const auto& nb : observed.OutNeighborhood(
             e.u, e.t, gen.config().generation_time_window)) {
      if (nb.node == e.v) {
        ++in_support;
        break;
      }
    }
  }
  EXPECT_GT(in_support, out.num_edges() * 9 / 10);
}

TEST(TgaeIntegrationTest, BeatsErdosRenyiOnStructureAndMotifs) {
  graphs::TemporalGraph observed = Observed();
  TgaeConfig cfg;
  cfg.epochs = 25;
  TgaeGenerator tgae(cfg);
  Rng r1(11);
  tgae.Fit(observed, r1);
  graphs::TemporalGraph tgae_out = tgae.Generate(r1);

  auto er = std::move(eval::MakeGenerator("E-R")).value();
  Rng r2(11);
  er->Fit(observed, r2);
  graphs::TemporalGraph er_out = er->Generate(r2);

  auto tgae_scores = metrics::ScoreAllMetrics(observed, tgae_out);
  auto er_scores = metrics::ScoreAllMetrics(observed, er_out);
  int tgae_wins = 0;
  for (size_t i = 0; i < tgae_scores.size(); ++i)
    tgae_wins += tgae_scores[i].med <= er_scores[i].med;
  EXPECT_GE(tgae_wins, 5) << "TGAE should beat E-R on most metrics";

  double tgae_mmd = metrics::MotifMmd(observed, tgae_out, 4, 1.0, 500000);
  double er_mmd = metrics::MotifMmd(observed, er_out, 4, 1.0, 500000);
  EXPECT_LT(tgae_mmd, er_mmd);
}

}  // namespace
}  // namespace tgsim::core
