#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/netgan.h"
#include "baselines/score_sampling.h"
#include "baselines/state_io.h"
#include "common/rng.h"
#include "datasets/synthetic.h"
#include "gtest/gtest.h"
#include "nn/tensor.h"
#include "parallel/thread_pool.h"
#include "serialize/serialization.h"
#include "storage/block_file.h"
#include "storage/score_store.h"
#include "storage/sparse_rows.h"

namespace tgsim::storage {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

nn::Tensor MakeScores() {
  // 4x4 with negatives, zeros, and a diagonal that must all be skipped.
  nn::Tensor scores(4, 4);
  const double values[4][4] = {{9.0, 0.5, 0.25, 0.125},
                               {0.0, 9.0, -1.0, 2.0},
                               {3.0, 0.0, 9.0, 1.0},
                               {-2.0, 4.0, 4.0, 9.0}};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) scores.at(r, c) = values[r][c];
  return scores;
}

// ---------------------------------------------------------------------------
// SparseScoreRows construction.
// ---------------------------------------------------------------------------

TEST(SparseRowsTest, FromDenseKeepsPositiveOffDiagonalEntries) {
  SparseScoreRows rows = SparseScoreRows::FromDense(MakeScores(), 0);
  EXPECT_EQ(rows.rows(), 4);
  EXPECT_EQ(rows.cols(), 4);
  // Row 0: 0.5, 0.25, 0.125; row 1: 2.0; row 2: 3.0, 1.0; row 3: 4.0, 4.0.
  EXPECT_EQ(rows.nnz(), 8);
  SparseScoreRowsView v = rows.View();
  SparseScoreRowsView::Row r0 = v.row(0);
  ASSERT_EQ(r0.cols.size(), 3u);
  EXPECT_EQ(r0.cols[0], 1);
  EXPECT_EQ(r0.weights[0], 0.5);
  EXPECT_EQ(r0.remainder, 0.0);  // Untruncated rows carry exactly zero.
  SparseScoreRowsView::Row r1 = v.row(1);
  ASSERT_EQ(r1.cols.size(), 1u);
  EXPECT_EQ(r1.cols[0], 3);
  EXPECT_EQ(r1.weights[0], 2.0);
}

TEST(SparseRowsTest, TopKTruncationKeepsLargestAndSumsRemainder) {
  SparseScoreRows rows = SparseScoreRows::FromDense(MakeScores(), 2);
  SparseScoreRowsView v = rows.View();
  // Row 0 keeps 0.5 and 0.25, drops 0.125.
  SparseScoreRowsView::Row r0 = v.row(0);
  ASSERT_EQ(r0.cols.size(), 2u);
  EXPECT_EQ(r0.cols[0], 1);
  EXPECT_EQ(r0.cols[1], 2);
  EXPECT_EQ(r0.remainder, 0.125);
  // Row 2 keeps both entries: no truncation, remainder exactly 0.
  EXPECT_EQ(v.row(2).cols.size(), 2u);
  EXPECT_EQ(v.row(2).remainder, 0.0);
}

TEST(SparseRowsTest, TopKTiesBreakTowardSmallerColumn) {
  // Row 3 has equal weights 4.0 at columns 1 and 2; topk=1 must keep
  // column 1 deterministically.
  SparseScoreRows rows = SparseScoreRows::FromDense(MakeScores(), 1);
  SparseScoreRowsView::Row r3 = rows.View().row(3);
  ASSERT_EQ(r3.cols.size(), 1u);
  EXPECT_EQ(r3.cols[0], 1);
  EXPECT_EQ(r3.remainder, 4.0);
}

TEST(SparseRowsTest, TopKAtLeastRowWidthMatchesUntruncated) {
  // The bit-identity precondition: topk >= n stores exactly what topk=0
  // stores, remainder zero everywhere.
  SparseScoreRows all = SparseScoreRows::FromDense(MakeScores(), 0);
  SparseScoreRows wide = SparseScoreRows::FromDense(MakeScores(), 4);
  ASSERT_EQ(all.nnz(), wide.nnz());
  SparseScoreRowsView a = all.View(), w = wide.View();
  for (int64_t i = 0; i < all.nnz(); ++i) {
    EXPECT_EQ(a.col[static_cast<size_t>(i)], w.col[static_cast<size_t>(i)]);
    EXPECT_EQ(a.weight[static_cast<size_t>(i)],
              w.weight[static_cast<size_t>(i)]);
  }
  for (int r = 0; r < 4; ++r) EXPECT_EQ(w.row(r).remainder, 0.0);
}

TEST(SparseRowsTest, FromSubmatrixEqualsFromDenseOfEmbeddedMatrix) {
  // Active nodes {1, 3, 4} of a 6-node graph, scores in a 3x3 submatrix.
  const std::vector<int> active = {1, 3, 4};
  nn::Tensor sub(3, 3);
  double next = 0.5;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) sub.at(i, j) = (i == j) ? 0.0 : (next += 0.5);
  nn::Tensor dense(6, 6);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) dense.at(active[i], active[j]) = sub.at(i, j);
  for (int64_t topk : {int64_t{0}, int64_t{1}, int64_t{2}}) {
    SparseScoreRows scattered =
        SparseScoreRows::FromSubmatrix(6, active, sub, topk);
    SparseScoreRows embedded = SparseScoreRows::FromDense(dense, topk);
    ASSERT_EQ(scattered.nnz(), embedded.nnz()) << "topk=" << topk;
    SparseScoreRowsView s = scattered.View(), e = embedded.View();
    for (size_t i = 0; i < static_cast<size_t>(scattered.nnz()); ++i) {
      EXPECT_EQ(s.col[i], e.col[i]);
      EXPECT_EQ(s.weight[i], e.weight[i]);
    }
    for (int r = 0; r < 6; ++r)
      EXPECT_EQ(s.row(r).remainder, e.row(r).remainder) << "row " << r;
  }
}

TEST(SparseRowsTest, DegenerateSubmatrixYieldsAllEmptyRows) {
  SparseScoreRows rows = SparseScoreRows::FromSubmatrix(5, {}, nn::Tensor(),
                                                        0);
  EXPECT_EQ(rows.rows(), 5);
  EXPECT_EQ(rows.nnz(), 0);
  for (int r = 0; r < 5; ++r)
    EXPECT_EQ(rows.View().row(r).cols.size(), 0u);
}

TEST(SparseRowsTest, FromPartsRejectsEveryInvariantViolation) {
  auto expect_bad = [](Result<SparseScoreRows> r, const char* what) {
    EXPECT_FALSE(r.ok()) << what;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
  };
  expect_bad(SparseScoreRows::FromParts(2, 2, {0, 1}, {1}, {1.0}, {0.0, 0.0}),
             "row_ptr too short");
  expect_bad(
      SparseScoreRows::FromParts(2, 2, {0, 2, 1}, {1, 0}, {1.0, 1.0},
                                 {0.0, 0.0}),
      "row_ptr not monotone");
  expect_bad(SparseScoreRows::FromParts(2, 2, {0, 1, 1}, {2}, {1.0},
                                        {0.0, 0.0}),
             "column out of range");
  expect_bad(SparseScoreRows::FromParts(2, 2, {0, 1, 1}, {0}, {1.0},
                                        {0.0, 0.0}),
             "diagonal entry");
  expect_bad(SparseScoreRows::FromParts(2, 2, {0, 1, 1}, {1}, {-1.0},
                                        {0.0, 0.0}),
             "non-positive weight");
  expect_bad(SparseScoreRows::FromParts(2, 2, {0, 1, 1}, {1}, {1.0},
                                        {-0.5, 0.0}),
             "negative remainder");
  Result<SparseScoreRows> ok =
      SparseScoreRows::FromParts(2, 2, {0, 1, 1}, {1}, {1.0}, {0.0, 0.0});
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// ---------------------------------------------------------------------------
// Score block codec.
// ---------------------------------------------------------------------------

TEST(ScoreBlockTest, EncodeDecodeRoundTrips) {
  SparseScoreRows rows = SparseScoreRows::FromDense(MakeScores(), 2);
  std::string encoded = EncodeScoreBlock(rows.View());
  Result<SparseScoreRowsView> decoded =
      DecodeScoreBlock(encoded.data(), encoded.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().rows, 4);
  EXPECT_EQ(decoded.value().nnz(), rows.nnz());
  SparseScoreRows copy = SparseScoreRows::CopyOf(decoded.value());
  std::string re_encoded = EncodeScoreBlock(copy.View());
  EXPECT_EQ(encoded, re_encoded);
}

TEST(ScoreBlockTest, DecodeRejectsCorruptPayloads) {
  SparseScoreRows rows = SparseScoreRows::FromDense(MakeScores(), 0);
  std::string good = EncodeScoreBlock(rows.View());
  // Truncated.
  EXPECT_FALSE(DecodeScoreBlock(good.data(), good.size() - 8).ok());
  EXPECT_FALSE(DecodeScoreBlock(good.data(), 8).ok());
  // Header lies about nnz.
  std::string bad = good;
  int64_t huge = 1 << 20;
  std::memcpy(bad.data() + 16, &huge, sizeof(huge));
  EXPECT_FALSE(DecodeScoreBlock(bad.data(), bad.size()).ok());
  // A column steered onto the diagonal.
  bad = good;
  int64_t diag = 0;  // col of row 0's first entry -> 0 == row index.
  std::memcpy(bad.data() + 24 + 8 * 5, &diag, sizeof(diag));
  Result<SparseScoreRowsView> r = DecodeScoreBlock(bad.data(), bad.size());
  EXPECT_FALSE(r.ok());
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ScoreBlockTest, ArchiveSectionRoundTrips) {
  SparseScoreRows rows = SparseScoreRows::FromDense(MakeScores(), 2);
  std::stringstream stream;
  serialize::ArchiveWriter writer(stream);
  writer.BeginSection("sparse_scores");
  WriteSparseScores(writer, "t0", rows.View());
  ASSERT_TRUE(writer.Finish().ok());
  Result<serialize::ArchiveReader> reader =
      serialize::ArchiveReader::Parse(stream);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  Result<SparseScoreRows> loaded =
      ReadSparseScores(reader.value(), "sparse_scores", "t0");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EncodeScoreBlock(loaded.value().View()),
            EncodeScoreBlock(rows.View()));
}

// ---------------------------------------------------------------------------
// BlockFile container.
// ---------------------------------------------------------------------------

/// Writes a container holding {alpha, empty, beta} after `prefix` bytes
/// and returns the whole stream (prefix + container).
std::string WriteSampleContainer(const std::string& prefix) {
  std::ostringstream out;
  out << prefix;
  BlockFileWriter writer(out);
  writer.AddBlock("alpha", "0123456789");
  writer.AddBlock("empty", "");
  writer.AddBlock("beta", "abcdefghijklmnop");
  EXPECT_TRUE(writer.Finish().ok());
  return out.str();
}

void ExpectSampleContents(const BlockFileReader& reader) {
  EXPECT_TRUE(reader.HasBlock("alpha"));
  EXPECT_TRUE(reader.HasBlock("empty"));
  EXPECT_TRUE(reader.HasBlock("beta"));
  EXPECT_FALSE(reader.HasBlock("gamma"));
  Result<MappedBlock> alpha = reader.Map("alpha");
  ASSERT_TRUE(alpha.ok()) << alpha.status().ToString();
  EXPECT_EQ(std::string(static_cast<const char*>(alpha.value().data()),
                        alpha.value().size()),
            "0123456789");
  EXPECT_EQ(reinterpret_cast<uintptr_t>(alpha.value().data()) % 8, 0u);
  Result<MappedBlock> empty = reader.Map("empty");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().size(), 0u);
  Result<MappedBlock> missing = reader.Map("gamma");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(reader.VerifyChecksums().ok());
  EXPECT_EQ(reader.TotalBlockBytes(), 10 + 0 + 16);
}

TEST(BlockFileTest, BufferModeRoundTripsWithUnalignedPrefix) {
  // A 3-byte prefix exercises the base re-alignment path: absolute
  // offsets were 8-aligned at write time, the buffer must reproduce that.
  const std::string prefix = "xy\n";
  std::string bytes = WriteSampleContainer(prefix);
  Result<BlockFileReader> reader = BlockFileReader::FromBuffer(
      std::string_view(bytes).substr(prefix.size()),
      static_cast<int64_t>(prefix.size()));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ExpectSampleContents(reader.value());
}

TEST(BlockFileTest, FileModeMmapsBlocks) {
  const std::string prefix = "archive-stand-in\n";
  std::string bytes = WriteSampleContainer(prefix);
  std::string path = TempPath("blocks.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << bytes;
  }
  Result<BlockFileReader> reader =
      BlockFileReader::OpenFile(path, static_cast<int64_t>(prefix.size()));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ExpectSampleContents(reader.value());
  std::remove(path.c_str());
}

TEST(BlockFileTest, StructuralCorruptionIsStatusNeverCrash) {
  std::string bytes = WriteSampleContainer("");
  auto open = [](std::string data) {
    return BlockFileReader::FromBuffer(data, 0);
  };
  // Truncations at every boundary.
  for (size_t keep : {size_t{0}, size_t{10}, size_t{55},
                      bytes.size() - 1, bytes.size() - 17}) {
    Result<BlockFileReader> r = open(bytes.substr(0, keep));
    EXPECT_FALSE(r.ok()) << "kept " << keep << " bytes";
  }
  // Bad header magic.
  std::string bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(open(bad).ok());
  // Unsupported version (i64 after the 8-byte magic).
  bad = bytes;
  int64_t version = 99;
  std::memcpy(bad.data() + 8, &version, sizeof(version));
  Result<BlockFileReader> versioned = open(bad);
  ASSERT_FALSE(versioned.ok());
  EXPECT_NE(versioned.status().message().find("version"), std::string::npos)
      << versioned.status().message();
  // Bad tail magic.
  bad = bytes;
  bad[bad.size() - 1] = '?';
  EXPECT_FALSE(open(bad).ok());
  // Index checksum mismatch: flip a byte inside the index region.
  bad = bytes;
  bad[bad.size() - 41] ^= 0x1;
  EXPECT_FALSE(open(bad).ok());
}

TEST(BlockFileTest, BlockChecksumMismatchIsDetected) {
  std::string bytes = WriteSampleContainer("");
  // Flip one payload byte ("0123456789" starts right after the 16-byte
  // header); the container still parses, VerifyChecksums names the block.
  bytes[16] ^= 0x2;
  Result<BlockFileReader> reader = BlockFileReader::FromBuffer(bytes, 0);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  Status sums = reader.value().VerifyChecksums();
  ASSERT_FALSE(sums.ok());
  EXPECT_NE(sums.message().find("alpha"), std::string::npos)
      << sums.message();
}

// ---------------------------------------------------------------------------
// ScoreStore + save/load + sampling equivalence.
// ---------------------------------------------------------------------------

baselines::ObservedShape MakeShape(int n, std::vector<int64_t> per_t) {
  baselines::ObservedShape shape;
  shape.num_nodes = n;
  shape.num_timestamps = static_cast<int>(per_t.size());
  shape.edges_per_timestamp = std::move(per_t);
  return shape;
}

TEST(ScoreStoreTest, ResidentStoreBasics) {
  ScoreStore store;
  store.Reset(3);
  store.Set(1, SparseScoreRows::FromDense(MakeScores(), 0));
  EXPECT_FALSE(store.block_backed());
  EXPECT_FALSE(store.has(0));
  EXPECT_TRUE(store.has(1));
  EXPECT_EQ(store.TotalNnz(), 8);
  EXPECT_GT(store.ResidentBytes(), 0);
  EXPECT_TRUE(store.CheckSnapshot(1, 4).ok());
  EXPECT_FALSE(store.CheckSnapshot(1, 5).ok());  // Shape mismatch.
  EXPECT_TRUE(store.CheckSnapshot(0, 4).ok());   // Absent passes.
  EXPECT_EQ(store.Snapshot(1).view.nnz(), 8);
}

TEST(ScoreSamplingEquivalenceTest, SparseMatchesDenseBitForBit) {
  // The dense Tensor overload converts through FromDense(scores, 0); an
  // explicitly pre-sparsified store with topk >= n must consume the rng
  // identically and emit identical edges.
  nn::Tensor scores = MakeScores();
  SparseScoreRows sparse = SparseScoreRows::FromDense(scores, 4);
  for (uint64_t seed : {1u, 7u, 99u}) {
    std::vector<graphs::TemporalEdge> dense_edges, sparse_edges;
    Rng dense_rng(seed), sparse_rng(seed);
    baselines::SampleEdgesFromScores(scores, 5, 2, dense_rng, &dense_edges);
    baselines::SampleEdgesFromScores(sparse.View(), 5, 2, sparse_rng,
                                     &sparse_edges);
    ASSERT_EQ(dense_edges.size(), sparse_edges.size());
    for (size_t i = 0; i < dense_edges.size(); ++i) {
      EXPECT_TRUE(dense_edges[i] == sparse_edges[i]) << "seed " << seed;
    }
    // And the rng streams stayed in lockstep beyond the last draw.
    EXPECT_EQ(dense_rng.Uniform(), sparse_rng.Uniform());
  }
}

TEST(ScoreSamplingEquivalenceTest, SingleNodeGraphEmitsSelfLoops) {
  // n < 2 has no off-diagonal pair at all; the sampler must emit the only
  // representable edge rather than spin forever.
  SparseScoreRows rows = SparseScoreRows::FromDense(nn::Tensor(1, 1), 0);
  std::vector<graphs::TemporalEdge> edges;
  Rng rng(3);
  baselines::SampleEdgesFromScores(rows.View(), 3, 5, rng, &edges);
  ASSERT_EQ(edges.size(), 3u);
  for (const graphs::TemporalEdge& e : edges) {
    EXPECT_EQ(e.u, 0);
    EXPECT_EQ(e.v, 0);
    EXPECT_EQ(e.t, 5);
  }
}

TEST(ScoreStateTest, SmallModelsSaveInlineAndRoundTrip) {
  baselines::ObservedShape shape = MakeShape(4, {0, 3});
  ScoreStore store;
  store.Reset(2);
  store.Set(1, SparseScoreRows::FromDense(MakeScores(), 2));
  std::stringstream out;
  ASSERT_TRUE(
      baselines::SaveScoreState(shape, store, 2, out, "test").ok());
  // Inline mode: the whole artifact is the text archive, no binary tail.
  EXPECT_NE(out.str().find("format"), std::string::npos);
  EXPECT_NE(out.str().find("inline"), std::string::npos);
  EXPECT_EQ(out.str().find("tgsimblk"), std::string::npos);

  baselines::ObservedShape loaded_shape;
  ScoreStore loaded;
  Status s = baselines::LoadScoreState(loaded_shape, loaded, out, "", 2);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(loaded.block_backed());
  EXPECT_EQ(EncodeScoreBlock(loaded.Snapshot(1).view),
            EncodeScoreBlock(store.Snapshot(1).view));
}

/// A store big enough (nnz > 4096) to force the blocks format, plus its
/// shape. Dense random scores over 100 nodes: ~4950 positive entries in
/// the untruncated snapshot alone.
void MakeBlockScaleModel(baselines::ObservedShape& shape, ScoreStore& store) {
  const int n = 100;
  Rng rng(13);
  nn::Tensor scores(n, n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      scores.at(r, c) = rng.Uniform() - 0.5;
  shape = MakeShape(n, {40, 0, 25});
  store.Reset(3);
  store.Set(0, SparseScoreRows::FromDense(scores, 0));
  store.Set(2, SparseScoreRows::FromDense(scores, 7));
}

TEST(ScoreStateTest, LargeModelsSaveBlocksAndRoundTripBothWays) {
  baselines::ObservedShape shape;
  ScoreStore store;
  MakeBlockScaleModel(shape, store);
  std::stringstream out;
  ASSERT_TRUE(baselines::SaveScoreState(shape, store, 0, out, "test").ok());
  EXPECT_NE(out.str().find("blocks"), std::string::npos);
  EXPECT_NE(out.str().find("tgsimblk"), std::string::npos);

  // Path-less load buffers the payload; path-ful load mmaps it. Both must
  // reconstruct the same snapshots.
  baselines::ObservedShape buffered_shape;
  ScoreStore buffered;
  Status s =
      baselines::LoadScoreState(buffered_shape, buffered, out, "", 0);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(buffered.block_backed());

  std::string path = TempPath("score_state.bin");
  {
    std::ofstream file(path, std::ios::binary);
    file << out.str();
  }
  std::ifstream in(path, std::ios::binary);
  baselines::ObservedShape mapped_shape;
  ScoreStore mapped;
  s = baselines::LoadScoreState(mapped_shape, mapped, in, path, 0);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(mapped.block_backed());

  for (int t : {0, 2}) {
    const std::string original = EncodeScoreBlock(store.Snapshot(t).view);
    EXPECT_EQ(EncodeScoreBlock(buffered.Snapshot(t).view), original);
    EXPECT_EQ(EncodeScoreBlock(mapped.Snapshot(t).view), original);
  }
  EXPECT_FALSE(buffered.has(1));

  // Bit-identical generation from all three stores.
  Rng a(5), b(5), c(5);
  graphs::TemporalGraph from_store =
      baselines::GenerateFromScores(shape, store, a);
  graphs::TemporalGraph from_buffered =
      baselines::GenerateFromScores(buffered_shape, buffered, b);
  graphs::TemporalGraph from_mapped =
      baselines::GenerateFromScores(mapped_shape, mapped, c);
  ASSERT_EQ(from_store.edges().size(), from_buffered.edges().size());
  ASSERT_EQ(from_store.edges().size(), from_mapped.edges().size());
  for (size_t i = 0; i < from_store.edges().size(); ++i) {
    EXPECT_TRUE(from_store.edges()[i] == from_buffered.edges()[i]);
    EXPECT_TRUE(from_store.edges()[i] == from_mapped.edges()[i]);
  }
  std::remove(path.c_str());
}

TEST(ScoreStateTest, CorruptBlockPayloadsAreStatusErrors) {
  baselines::ObservedShape shape;
  ScoreStore store;
  MakeBlockScaleModel(shape, store);
  std::stringstream out;
  ASSERT_TRUE(baselines::SaveScoreState(shape, store, 0, out, "test").ok());
  const std::string good = out.str();

  auto load = [](std::string bytes) {
    std::stringstream in(std::move(bytes));
    baselines::ObservedShape shape_out;
    ScoreStore store_out;
    return baselines::LoadScoreState(shape_out, store_out, in, "", 0);
  };
  // Truncated block payload.
  Status s = load(good.substr(0, good.size() - 64));
  EXPECT_FALSE(s.ok());
  // Flipped byte inside the first block's data: checksum failure. The
  // first block starts at the first 8-aligned absolute offset past the
  // 16-byte container header (everything before that is padding).
  std::string bad = good;
  const size_t base = good.find("tgsimblk");
  const size_t first_block = (base + 16 + 7) / 8 * 8;
  bad[first_block] ^= 0x4;
  s = load(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.ToString();
  // Wrong container version.
  bad = good;
  int64_t version = 7;
  std::memcpy(bad.data() + good.find("tgsimblk") + 8, &version,
              sizeof(version));
  s = load(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
}

TEST(ScoreStateTest, LegacyDenseArchivesLoadAndGenerateIdentically) {
  // A pre-sparse archive stored dense n x n tensors in a "scores"
  // section. Loading must transparently compact it and generate exactly
  // what a store built via FromDense generates.
  baselines::ObservedShape shape = MakeShape(4, {3, 2});
  nn::Tensor scores = MakeScores();
  std::stringstream legacy;
  {
    serialize::ArchiveWriter writer(legacy);
    writer.BeginSection("shape");
    writer.WriteInt("num_nodes", shape.num_nodes);
    writer.WriteInt("num_timestamps", shape.num_timestamps);
    writer.WriteIntVector("edges_per_timestamp", shape.edges_per_timestamp);
    writer.BeginSection("scores");
    writer.WriteTensor("t0", scores);
    writer.WriteTensor("t1", scores);
    ASSERT_TRUE(writer.Finish().ok());
  }
  baselines::ObservedShape loaded_shape;
  ScoreStore loaded;
  Status s = baselines::LoadScoreState(loaded_shape, loaded, legacy, "", 0);
  ASSERT_TRUE(s.ok()) << s.ToString();

  ScoreStore direct;
  direct.Reset(2);
  direct.Set(0, SparseScoreRows::FromDense(scores, 0));
  direct.Set(1, SparseScoreRows::FromDense(scores, 0));
  Rng a(11), b(11);
  graphs::TemporalGraph from_legacy =
      baselines::GenerateFromScores(loaded_shape, loaded, a);
  graphs::TemporalGraph from_direct =
      baselines::GenerateFromScores(shape, direct, b);
  ASSERT_EQ(from_legacy.edges().size(), from_direct.edges().size());
  for (size_t i = 0; i < from_legacy.edges().size(); ++i)
    EXPECT_TRUE(from_legacy.edges()[i] == from_direct.edges()[i]);
}

// ---------------------------------------------------------------------------
// End-to-end: truncation knob and thread-count independence.
// ---------------------------------------------------------------------------

struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() {
    parallel::ThreadPool::SetGlobalThreads(
        parallel::ThreadPool::DefaultNumThreads());
  }
};

TEST(SparseGenerationTest, TopKAtLeastNodesIsBitIdenticalToUntruncated) {
  // Acceptance pin: with score_topk >= n the sparse path draws the same
  // edges as the paper-exact untruncated path, for the same artifact
  // + seed, at 1, 2 and 8 threads.
  graphs::TemporalGraph observed = datasets::MakeMimicByName("DBLP", 0.02, 9);
  const int n = observed.num_nodes();

  auto fit_and_generate = [&](int64_t topk) {
    baselines::NetGanConfig config;
    config.epochs = 4;
    config.score_topk = topk;
    baselines::NetGanGenerator generator(config);
    Rng fit_rng(21);
    generator.Fit(observed, fit_rng);
    Rng gen_rng(33);
    return generator.Generate(gen_rng);
  };

  GlobalThreadsGuard guard;
  graphs::TemporalGraph reference = fit_and_generate(0);
  for (int threads : {1, 2, 8}) {
    parallel::ThreadPool::SetGlobalThreads(threads);
    graphs::TemporalGraph truncated = fit_and_generate(n);
    graphs::TemporalGraph untruncated = fit_and_generate(0);
    ASSERT_EQ(truncated.edges().size(), reference.edges().size())
        << threads << " threads";
    for (size_t i = 0; i < reference.edges().size(); ++i) {
      EXPECT_TRUE(truncated.edges()[i] == reference.edges()[i])
          << threads << " threads, edge " << i;
      EXPECT_TRUE(untruncated.edges()[i] == reference.edges()[i])
          << threads << " threads, edge " << i;
    }
  }
}

}  // namespace
}  // namespace tgsim::storage
